// Ablation A1 — NIC TLB size and miss cost (§4.1, §5.2).
//
// The paper measures a ~9 ms ORDMA TLB miss and sidesteps it by ensuring
// hits ("can be reduced in NICs that have large TLBs, are integrated on the
// memory bus, or share a TLB with the host CPU"). Here we quantify what
// they avoided: ODAFS streaming throughput as the TLB covers less of the
// working set, and as the miss penalty shrinks towards an on-memory-bus
// NIC.
#include <memory>

#include "bench_util.h"
#include "nas/odafs/odafs_client.h"
#include "workload/streaming.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(8);
constexpr Bytes kBlock = KiB(4);

struct Cell {
  double throughput_MBps = 0;
  std::uint64_t tlb_misses = 0;
};

Cell run_cell(std::size_t tlb_entries, Duration miss_cost) {
  core::ClusterConfig cc;
  cc.fs.block_size = kBlock;
  cc.fs.cache_blocks = kFileSize / kBlock + 64;
  cc.nic.tlb_entries = tlb_entries;
  cc.nic.preload_tlb = false;  // translations load on first ORDMA access
  cc.cm.nic_tlb_miss = miss_cost;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, true);
  });

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kBlock;
  cfg.cache.data_blocks = 128;  // much smaller than the file → ORDMA re-reads
  cfg.cache.max_headers = 2 * kFileSize / kBlock;
  cfg.use_ordma = true;
  cfg.dafs.completion = msg::Completion::poll;
  auto client = c.make_odafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    wl::StreamConfig sc;
    sc.block = KiB(64);
    sc.window = 4;
    // Pass 1 collects refs (RPC); pass 2 takes the compulsory TLB misses.
    sc.passes = 2;
    auto warm = co_await wl::stream_read(c.client(0), *client, "f", sc);
    ORDMA_CHECK(warm.ok());
    // Measured pass: only capacity misses remain — zero when the TLB covers
    // the working set, a steady stream otherwise.
    const auto misses0 = c.server_nic().tlb().misses();
    sc.passes = 1;
    auto res = co_await wl::stream_read(c.client(0), *client, "f", sc);
    ORDMA_CHECK(res.ok());
    cell.throughput_MBps = res.value().throughput_MBps;
    cell.tlb_misses = c.server_nic().tlb().misses() - misses0;
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  const std::size_t file_pages = kFileSize / mem::kPageSize;  // 2048

  const std::size_t entries[] = {file_pages * 2, file_pages, file_pages / 2,
                                 file_pages / 8};
  struct P {
    const char* name;
    Duration d;
  };
  const P penalties[] = {P{"9 ms (paper, I/O-bus NIC)", msec(9)},
                         P{"1 ms", msec(1)},
                         P{"100 us", usec(100)},
                         P{"10 us (memory-bus NIC)", usec(10)}};
  const std::size_t kA = std::size(entries);
  // One grid for both sub-tables: A1a cells first, A1b cells after.
  auto cells = sweep(obs_session.jobs(), kA + std::size(penalties),
                     [&](std::size_t i) {
                       return i < kA ? run_cell(entries[i], msec(9))
                                     : run_cell(file_pages / 8,
                                                penalties[i - kA].d);
                     });

  Table t1("Ablation A1a: ODAFS throughput vs NIC TLB coverage"
           " (9 ms miss, lazy loading)",
           {"TLB entries", "coverage", "throughput MB/s", "misses"});
  for (std::size_t i = 0; i < kA; ++i) {
    const Cell& cell = cells[i];
    t1.add_row({std::to_string(entries[i]),
                fmt("%.0f%%", 100.0 * static_cast<double>(entries[i]) /
                                  static_cast<double>(file_pages)),
                mbps(cell.throughput_MBps), std::to_string(cell.tlb_misses)});
  }
  t1.print();

  Table t2("Ablation A1b: ODAFS throughput vs TLB miss penalty"
           " (TLB = 1/8 of working set)",
           {"miss penalty", "throughput MB/s", "misses"});
  for (std::size_t i = 0; i < std::size(penalties); ++i) {
    const Cell& cell = cells[kA + i];
    t2.add_row({penalties[i].name, mbps(cell.throughput_MBps),
                std::to_string(cell.tlb_misses)});
  }
  t2.print();
  std::printf(
      "\ntakeaway: with the paper's 9 ms I/O-bus miss penalty the TLB must"
      " cover the working set; a memory-bus NIC (§4.1's StarT-Voyager"
      " reference) makes coverage nearly irrelevant\n");
  return 0;
}
