// Table 2 — baseline network performance of the protocols over the
// simulated Myrinet: one-byte round-trip time and streaming bandwidth for
// GM, VI (polling and blocking) and UDP over Ethernet emulation.
//
//   paper:  GM       23 us   244 MB/s
//           VI poll  23 us   244 MB/s
//           VI block 53 us   244 MB/s
//           UDP/Eth  80 us   166 MB/s
#include <memory>
#include <vector>

#include "bench_util.h"
#include "host/host.h"
#include "msg/udp.h"
#include "msg/vi.h"
#include "net/fabric.h"
#include "nic/nic.h"

#include "obs/cli.h"

namespace ordma {
namespace {

struct Pair {
  sim::Engine eng;
  host::CostModel cm;
  net::Fabric fabric{eng};
  host::Host ha{eng, "a", cm};
  host::Host hb{eng, "b", cm};
  nic::Nic na{ha, fabric, {}, crypto::SipKey{1, 2}};
  nic::Nic nb{hb, fabric, {}, crypto::SipKey{3, 4}};
};

constexpr int kIters = 64;

double gm_rtt_us() {
  Pair c;
  c.eng.spawn([](Pair& c) -> sim::Task<void> {
    auto& port = c.nb.open_port(5);
    for (;;) {
      auto m = co_await port.recv();
      co_await c.hb.cpu_consume(c.cm.vi_poll_pickup);
      co_await c.nb.gm_send(m.src, 6, 0, std::move(m.data));
    }
  }(c));
  double out = 0;
  bench::drive_engine(c.eng, [&c, &out]() -> sim::Task<void> {
    auto& port = c.na.open_port(6);
    std::vector<std::byte> one(1);
    const auto t0 = c.eng.now();
    for (int i = 0; i < kIters; ++i) {
      co_await c.na.gm_send(c.nb.node_id(), 5, 0, net::Buffer::copy_of(one));
      (void)co_await port.recv();
      co_await c.ha.cpu_consume(c.cm.vi_poll_pickup);
    }
    out = (c.eng.now() - t0).to_us() / kIters;
  });
  return out;
}

double vi_rtt_us(msg::Completion mode) {
  Pair c;
  msg::ViListener listener(c.hb, 100, mode);
  c.eng.spawn([](msg::ViListener& l) -> sim::Task<void> {
    auto conn = co_await l.accept();
    for (;;) {
      auto m = co_await conn->recv();
      co_await conn->send(std::move(m));
    }
  }(listener));
  double out = 0;
  bench::drive_engine(c.eng, [&c, mode, &out]() -> sim::Task<void> {
    auto conn = co_await msg::vi_connect(c.ha, c.nb.node_id(), 100, mode);
    std::vector<std::byte> one(1);
    const auto t0 = c.eng.now();
    for (int i = 0; i < kIters; ++i) {
      co_await conn->send(net::Buffer::copy_of(one));
      (void)co_await conn->recv();
    }
    out = (c.eng.now() - t0).to_us() / kIters;
  });
  return out;
}

double udp_rtt_us() {
  Pair c;
  msg::UdpStack sa(c.ha), sb(c.hb);
  auto& cli = sa.bind(1000);
  auto& srv = sb.bind(53);
  c.eng.spawn([](msg::UdpStack::Socket& srv) -> sim::Task<void> {
    for (;;) {
      auto d = co_await srv.recv();
      co_await srv.send_to(d.src, d.src_port, std::move(d.data));
    }
  }(srv));
  double out = 0;
  bench::drive_engine(c.eng, [&c, &cli, &out]() -> sim::Task<void> {
    std::vector<std::byte> one(1);
    const auto t0 = c.eng.now();
    for (int i = 0; i < kIters; ++i) {
      co_await cli.send_to(c.nb.node_id(), 53, net::Buffer::copy_of(one));
      (void)co_await cli.recv();
    }
    out = (c.eng.now() - t0).to_us() / kIters;
  });
  return out;
}

double gm_bw_MBps() {
  Pair c;
  Bytes received = 0;
  SimTime last{};
  constexpr int count = 64;
  c.eng.spawn([](Pair& c, Bytes& received, SimTime& last) -> sim::Task<void> {
    auto& port = c.nb.open_port(5);
    for (int i = 0; i < count; ++i) {
      auto m = co_await port.recv();
      received += m.data.size();
      last = c.eng.now();
    }
  }(c, received, last));
  bench::drive_engine(c.eng, [&c]() -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      co_await c.na.gm_send(c.nb.node_id(), 5, 0,
                            net::Buffer::take(std::vector<std::byte>(KiB(512))));
    }
  });
  return throughput_MBps(received, last - SimTime{});
}

double udp_bw_MBps() {
  Pair c;
  msg::UdpStack sa(c.ha), sb(c.hb);
  auto& cli = sa.bind(1000);
  auto& srv = sb.bind(53);
  Bytes received = 0;
  SimTime last{};
  constexpr int count = 256;
  c.eng.spawn([](msg::UdpStack::Socket& srv, Pair& c, Bytes& received,
                 SimTime& last) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      auto d = co_await srv.recv();
      received += d.data.size();
      last = c.eng.now();
      // netperf-style receiver: one kernel→user copy per datagram.
      co_await c.hb.copy(d.data.size());
    }
  }(srv, c, received, last));
  bench::drive_engine(c.eng, [&c, &cli]() -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      co_await cli.send_to(c.nb.node_id(), 53,
                           net::Buffer::take(std::vector<std::byte>(KiB(64))));
    }
  });
  return throughput_MBps(received, last - SimTime{});
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  bench::Table t("Table 2: baseline network performance (paper vs measured)",
                 {"protocol", "RTT paper (us)", "RTT measured", "Δ",
                  "BW paper (MB/s)", "BW measured", "Δ"});

  // Six independent measurements, each on its own engine pair.
  double (*const measurements[])() = {
      gm_rtt_us,
      gm_bw_MBps,
      [] { return vi_rtt_us(msg::Completion::poll); },
      [] { return vi_rtt_us(msg::Completion::block); },
      udp_rtt_us,
      udp_bw_MBps,
  };
  auto vals = bench::sweep(obs_session.jobs(), std::size(measurements),
                           [&](std::size_t i) { return measurements[i](); });

  const double gm_rtt = vals[0];
  const double gm_bw = vals[1];
  t.add_row({"GM", "23", bench::us(gm_rtt), bench::vs_paper(gm_rtt, 23),
             "244", bench::mbps(gm_bw), bench::vs_paper(gm_bw, 244)});

  const double vp = vals[2];
  t.add_row({"VI (poll)", "23", bench::us(vp), bench::vs_paper(vp, 23),
             "244", bench::mbps(gm_bw), bench::vs_paper(gm_bw, 244)});

  const double vb = vals[3];
  t.add_row({"VI (block)", "53", bench::us(vb), bench::vs_paper(vb, 53),
             "244", bench::mbps(gm_bw), bench::vs_paper(gm_bw, 244)});

  const double ur = vals[4];
  const double ub = vals[5];
  t.add_row({"UDP/Ethernet", "80", bench::us(ur), bench::vs_paper(ur, 80),
             "166", bench::mbps(ub), bench::vs_paper(ub, 166)});

  t.print();
  return 0;
}
