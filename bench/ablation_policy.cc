// Ablation A8 — adaptive per-op protocol selection (policy/policy.h): one
// policy curve against every static protocol choice.
//
// Three grids, five arms each. The static arms are the four fixed protocol
// configurations the rest of the suite measures — DAFS (no ORDMA), ODAFS
// with RPC write-through, ODAFS put-through, ODAFS write-back — and the
// fifth arm is ODAFS with the adaptive engine deciding per I/O (plus the
// ARC reference directory):
//
//  * fig3-style block-size grid (4/16/64 KB ops, warm server cache): the
//    crossover between mechanisms moves with request size;
//  * fig7-style success-rate grid (server cache at 100/50/25% of the file):
//    stale references make ORDMA fault, and past the crossover a static
//    ODAFS arm burns exception round trips that RPC never pays;
//  * fault-phase crossover cells: a cap-revoke fault plan armed for a duty
//    cycle of each phase window (50%, 25%). No static arm can win both
//    phases — the engine flips mechanism mid-run and beats them all.
//
// The claim gated by BENCH_policy.json: adaptive >= best static (within
// tolerance) at EVERY grid point, and strictly better at the crossover
// cells. --json=<file> emits ordma.bench.v1 for scripts/bench_compare.py.
#include <memory>
#include <string>
#include <string_view>

#include "bench_json.h"
#include "bench_util.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"
#include "obs/timeseries.h"

#include "obs/cli.h"

namespace ordma {
namespace {

using nas::odafs::WritePolicy;

constexpr std::uint64_t kOps = 12000;
constexpr std::size_t kFileBlocks = 96;  // file size = 96 * block
constexpr unsigned kPhaseOps = 3000;     // fault duty-cycle window, in ops

struct Arm {
  const char* name;
  bool use_ordma;
  WritePolicy wp;
  bool adaptive;
};

// The four static protocol configurations, then the policy curve.
constexpr Arm kArms[] = {
    {"dafs", false, WritePolicy::rpc_through, false},
    {"odafs_rpc", true, WritePolicy::rpc_through, false},
    {"odafs_put", true, WritePolicy::put_through, false},
    {"odafs_wb", true, WritePolicy::write_back, false},
    {"adaptive", true, WritePolicy::put_through, true},
};
constexpr std::size_t kNumArms = std::size(kArms);

struct CellCfg {
  std::string label;                 // grid-point slug, e.g. "blk16k"
  Bytes block = KiB(4);              // fs block == cache block == op size
  double server_cache_fraction = 1.0;  // <1: references go stale (fig7)
  double fault_duty = 0.0;           // >0: cap-revoke plan, armed this
                                     // fraction of every kPhaseOps window
};

struct CellOut {
  double ops_per_sec = 0;
  double ordma_fraction = 0;  // fetches served by ORDMA (vs RPC)
  std::uint64_t read_flips = 0;
};

CellOut run_cell(const Arm& arm, const CellCfg& g) {
  const Bytes fsize = g.block * kFileBlocks;
  core::ClusterConfig cc;
  cc.fs.block_size = g.block;
  cc.fs.cache_blocks = std::max<std::size_t>(
      8, static_cast<std::size_t>(kFileBlocks * g.server_cache_fraction));
  cc.nic.tlb_entries = 65536;
  if (g.fault_duty > 0) {
    // A revoke storm at the server NIC faults every ORDMA resolve — gets
    // and puts alike; inline RPC (below) stays clean, so the mechanisms
    // genuinely trade places between phases.
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.nic.cap_revoke = 0.9;
    cc.faults = plan;
  }
  core::Cluster c(cc);
  if (c.fault_injector()) c.fault_injector()->set_armed(false);
  c.start_dafs({.piggyback_refs = true,
                .writable_refs = true,
                .coherence = true});
  bench::drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", fsize, g.server_cache_fraction >= 1.0);
  });

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = g.block;
  cfg.cache.data_blocks = 16;  // far below the file: fetches dominate
  cfg.cache.max_headers = 4 * kFileBlocks;
  cfg.cache.ref_policy = arm.adaptive ? "arc" : "lru";
  cfg.use_ordma = arm.use_ordma;
  cfg.inline_rpc = true;  // RPC replies carry data inline → cap-revoke-proof
  // One shot per mechanism before degrading: under a revoke storm, retrying
  // a lost put burns round trips the RPC fallback recovers in one.
  cfg.max_fetch_attempts = 1;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  cfg.write_policy = arm.wp;
  if (arm.adaptive) {
    cfg.policy.enabled = true;
    cfg.policy.allow_write_back = true;
    cfg.policy.alpha = 0.3;         // track phase changes briskly
    cfg.policy.explore_every = 24;  // recover the shunned arm within a phase
    cfg.policy.fault_decay = 0.7;   // rehabilitate it in a couple of probes
  }
  auto client = c.make_odafs_client(0, cfg);

  // Under --timeseries each (arm, grid-point) is one run document; the
  // "<client>/policy/read_pref" point gauge shows the adaptive arm's
  // mid-run mechanism flip as a step edge.
  obs::ts::RunScope ts_run(c.engine(),
                           std::string(arm.name) + "." + g.label);
  if (ts_run.active()) {
    c.export_metrics(ts_run.registry());
    c.export_file_client_metrics(ts_run.registry(), 0, *client);
    c.export_odafs_client_metrics(ts_run.registry(), 0, *client);
  }

  CellOut out;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    const std::uint64_t fh = open.value().fh;
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), g.block);
    // Warm pass, fault-free: collect references for every block (some go
    // stale as the undersized server cache churns).
    for (std::uint64_t i = 0; i < kFileBlocks; ++i) {
      (void)co_await client->fetch_block(fh, i);
    }

    fault::FaultInjector* inj = c.fault_injector();
    const unsigned armed_ops =
        static_cast<unsigned>(kPhaseOps * g.fault_duty);
    Rng rng(17);
    const SimTime t0 = c.engine().now();
    const auto ordma0 = client->ordma_reads();
    const auto rpc0 = client->rpc_reads();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      if (inj) inj->set_armed(i % kPhaseOps < armed_ops);
      const std::uint64_t blk = rng.below(kFileBlocks);
      if (rng.chance(0.3)) {
        auto n = co_await client->pwrite(fh, blk * g.block, buf, g.block);
        ORDMA_CHECK(n.ok());
      } else {
        auto n = co_await client->pread(fh, blk * g.block, buf, g.block);
        ORDMA_CHECK(n.ok());
      }
    }
    if (inj) inj->set_armed(false);
    ORDMA_CHECK((co_await client->sync()).ok());
    out.ops_per_sec = kOps / (c.engine().now() - t0).to_sec();
    const double ordma = static_cast<double>(client->ordma_reads() - ordma0);
    const double rpc = static_cast<double>(client->rpc_reads() - rpc0);
    out.ordma_fraction = ordma + rpc > 0 ? ordma / (ordma + rpc) : 0.0;
    out.read_flips = client->protocol_policy().counters().read_flips;
  });
  return out;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  // The full grid: 3 block sizes + 3 success rates + 2 fault duty cycles,
  // every point measured for all five arms. Crossover cells are the two
  // fault-phase points — the ones where no static arm can win both phases.
  std::vector<CellCfg> grid;
  for (const Bytes b : {KiB(4), KiB(16), KiB(64)}) {
    grid.push_back({"blk" + std::to_string(b / 1024) + "k", b, 1.0, 0.0});
  }
  for (const double frac : {1.0, 0.5, 0.25}) {
    grid.push_back({"cache" + std::to_string(static_cast<int>(frac * 100)),
                    KiB(4), frac, 0.0});
  }
  const std::size_t first_crossover = grid.size();
  for (const double duty : {0.5, 0.25}) {
    grid.push_back({"fault" + std::to_string(static_cast<int>(duty * 100)),
                    KiB(4), 1.0, duty});
  }

  auto cells = sweep(obs_session.jobs(), grid.size() * kNumArms,
                     [&](std::size_t i) {
                       return run_cell(kArms[i % kNumArms],
                                       grid[i / kNumArms]);
                     });

  Table t("Ablation A8: adaptive per-op protocol selection vs every static"
          " arm (mixed 70/30 read/write, ops/s)",
          {"grid point", "DAFS", "ODAFS rpc", "ODAFS put", "ODAFS wb",
           "adaptive", "vs best static", "adaptive ORDMA", "flips"});
  BenchReport report("ablation_policy");
  bool dominated = true;
  std::size_t strictly_better = 0;
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    const CellOut* row = &cells[gi * kNumArms];
    const CellOut& adaptive = row[kNumArms - 1];
    double best_static = 0;
    for (std::size_t a = 0; a + 1 < kNumArms; ++a) {
      best_static = std::max(best_static, row[a].ops_per_sec);
    }
    const double margin = adaptive.ops_per_sec / best_static;
    t.add_row({grid[gi].label, fmt("%.0f", row[0].ops_per_sec),
               fmt("%.0f", row[1].ops_per_sec),
               fmt("%.0f", row[2].ops_per_sec),
               fmt("%.0f", row[3].ops_per_sec),
               fmt("%.0f", adaptive.ops_per_sec),
               fmt("%+.1f%%", (margin - 1.0) * 100.0),
               pct(adaptive.ordma_fraction),
               fmt("%.0f", static_cast<double>(adaptive.read_flips))});
    for (std::size_t a = 0; a < kNumArms; ++a) {
      report.add(grid[gi].label + "_" + kArms[a].name + "_ops",
                 row[a].ops_per_sec, "ops/s", /*higher_is_better=*/true,
                 0.02);
    }
    // The headline series: the policy curve relative to the best static
    // arm at this grid point. >= ~1.0 everywhere is the dominance claim.
    report.add("margin_" + grid[gi].label, margin, "ratio",
               /*higher_is_better=*/true, 0.03);
    if (margin < 0.97) dominated = false;
    if (gi >= first_crossover && margin > 1.02) ++strictly_better;
  }
  t.print();
  std::printf(
      "\ntakeaway: the adaptive engine rides the best mechanism at every"
      " grid point (>=97%% of the best static arm) and wins outright at"
      " %zu/2 fault-phase crossover cells, where it flips mechanism"
      " mid-run and no static choice can follow\n",
      strictly_better);

  bool ok = true;
  if (!dominated) {
    std::fprintf(stderr,
                 "FAIL: adaptive fell below best-static tolerance at one or"
                 " more grid points\n");
    ok = false;
  }
  if (strictly_better < 2) {
    std::fprintf(stderr,
                 "FAIL: adaptive strictly beat best-static at only %zu of 2"
                 " crossover cells\n",
                 strictly_better);
    ok = false;
  }

  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
