// Shared experiment for Figures 3 and 4: one client performs asynchronous
// sequential read-ahead of a file warm in the server cache, for each block
// size and each system (NFS, NFS pre-posting, NFS hybrid, DAFS).
//
// Scaling note: the paper reads a 1.5 GB file; we read 64 MiB per cell
// (shape-identical — throughput and utilisation are rate measurements; see
// EXPERIMENTS.md).
#pragma once

#include <memory>
#include <string>

#include "bench_util.h"
#include "obs/timeseries.h"
#include "workload/streaming.h"

namespace ordma::bench {

inline constexpr Bytes kFig3FileSize = MiB(64);

enum class System { nfs, prepost, hybrid, dafs };

inline const char* system_name(System s) {
  switch (s) {
    case System::nfs: return "NFS";
    case System::prepost: return "NFS pre-posting";
    case System::hybrid: return "NFS hybrid";
    case System::dafs: return "DAFS";
  }
  return "?";
}

// Short run-label slug for --timeseries documents.
inline const char* system_slug(System s) {
  switch (s) {
    case System::nfs: return "nfs";
    case System::prepost: return "prepost";
    case System::hybrid: return "hybrid";
    case System::dafs: return "dafs";
  }
  return "?";
}

struct Fig3Cell {
  double throughput_MBps = 0;
  double cpu_util = 0;
};

inline Fig3Cell run_fig3_cell(System sys, Bytes block) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(8);
  cc.fs.cache_blocks = kFig3FileSize / KiB(8) + 64;
  cc.fs.disk_capacity = GiB(1);
  core::Cluster c(cc);

  if (sys == System::dafs) {
    c.start_dafs({.completion = msg::Completion::block});
  } else {
    c.start_nfs();
  }
  drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("stream.dat", kFig3FileSize, /*warm=*/true);
  });

  std::unique_ptr<core::FileClient> client;
  switch (sys) {
    case System::nfs:
      client = c.make_nfs_client(0, block);
      break;
    case System::prepost:
      client = c.make_prepost_client(0, block);
      break;
    case System::hybrid:
      client = c.make_hybrid_client(0, block);
      break;
    case System::dafs: {
      nas::dafs::DafsClientConfig cfg;
      cfg.completion = msg::Completion::poll;  // §5.1: DAFS polls
      client = c.make_dafs_client(0, cfg);
      break;
    }
  }

  // Under --timeseries, each (system, block) cell becomes one run document
  // labeled e.g. "dafs.64KB". Declared after cluster and client so the
  // trailing gauge sample runs while both are alive.
  obs::ts::RunScope ts_run(c.engine(),
                           std::string(system_slug(sys)) + "." +
                               std::to_string(block / 1024) + "KB");
  if (ts_run.active()) {
    c.export_metrics(ts_run.registry());
    c.export_file_client_metrics(ts_run.registry(), 0, *client);
  }

  Fig3Cell cell;
  drive(c, [&]() -> sim::Task<void> {
    wl::StreamConfig sc;
    sc.block = block;
    sc.window = 8;
    auto res = co_await wl::stream_read(c.client(0), *client, "stream.dat",
                                        sc);
    ORDMA_CHECK_MSG(res.ok(), "stream_read failed");
    cell.throughput_MBps = res.value().throughput_MBps;
    cell.cpu_util = res.value().client_cpu_util;
  });
  return cell;
}

inline const Bytes kFig3Blocks[] = {KiB(4),  KiB(8),  KiB(16), KiB(32),
                                    KiB(64), KiB(128), KiB(256), KiB(512)};

}  // namespace ordma::bench
