// Ablation A7 — ORDMA-served attribute reads (extension).
//
// §4.2.2 names "attribute accesses" among the traffic ODAFS helps most, but
// the paper's prototype never exported attributes. This repo does: the
// server keeps marshalled per-inode attribute records in an exported memory
// region, and clients getattr by client-initiated RDMA. This bench measures
// a stat-heavy workload (e.g. `ls -l`-style scans, cache revalidation) both
// ways.
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::size_t kNumFiles = 256;
constexpr std::uint64_t kStats = 4000;

struct Cell {
  double stats_per_sec = 0;
  double latency_us = 0;
  double server_cpu = 0;
};

Cell run_cell(bool use_ordma) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = 64;
  cfg.cache.max_headers = 8192;
  cfg.use_ordma = use_ordma;
  cfg.dafs.completion = msg::Completion::block;
  auto client = c.make_odafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    std::vector<std::uint64_t> fhs;
    for (std::size_t i = 0; i < kNumFiles; ++i) {
      const std::string name = "f" + std::to_string(i);
      co_await c.make_file(name, KiB(4), true, i + 1);
      auto open = co_await client->open(name);
      ORDMA_CHECK(open.ok());
      fhs.push_back(open.value().fh);
    }
    Rng rng(5);
    const auto cpu0 = c.server().sample_cpu();
    const SimTime t0 = c.engine().now();
    for (std::uint64_t i = 0; i < kStats; ++i) {
      auto attr = co_await client->getattr(fhs[rng.below(kNumFiles)]);
      ORDMA_CHECK(attr.ok());
    }
    const auto elapsed = c.engine().now() - t0;
    cell.stats_per_sec = kStats / elapsed.to_sec();
    cell.latency_us = elapsed.to_us() / kStats;
    cell.server_cpu = host::Host::utilisation(cpu0, c.server().sample_cpu());
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  auto cells = sweep(obs_session.jobs(), 2,
                     [](std::size_t i) { return run_cell(i == 1); });
  const Cell& rpc = cells[0];
  const Cell& ordma = cells[1];
  Table t("Ablation A7: getattr via ORDMA (extension; stat-heavy workload)",
          {"mechanism", "getattr latency (us)", "stats/s", "server CPU"});
  t.add_row({"RPC getattr (paper's prototype)", us(rpc.latency_us),
             fmt("%.0f", rpc.stats_per_sec), pct(rpc.server_cpu)});
  t.add_row({"ORDMA attribute read (this repo)", us(ordma.latency_us),
             fmt("%.0f", ordma.stats_per_sec), pct(ordma.server_cpu)});
  t.print();
  std::printf(
      "\ntakeaway: exporting marshalled attribute records extends ORDMA's"
      " benefit to metadata: %+.0f%% more stats/s with zero server CPU —"
      " quantifying the §4.2.2 \"attribute accesses\" claim\n",
      (ordma.stats_per_sec - rpc.stats_per_sec) / rpc.stats_per_sec * 100.0);
  return 0;
}
