// Ablation A6 — DAFS batch I/O (§2.2: "Using batch I/O, a single RPC is
// used to request a set of server-issued RDMA operations, amortizing the
// per-I/O cost of the RPC on the client").
//
// One client reads a warm file as N-extent batches vs N individual direct
// RPCs; the win is client CPU per byte and small-extent throughput.
#include <memory>

#include "bench_util.h"
#include "nas/dafs/dafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kExtent = KiB(8);
constexpr Bytes kFileSize = MiB(16);

struct Cell {
  double throughput_MBps = 0;
  double client_cpu = 0;
};

Cell run_cell(std::size_t batch) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(8);
  cc.fs.cache_blocks = kFileSize / KiB(8) + 64;
  core::Cluster c(cc);
  c.start_dafs();
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, true);
  });
  nas::dafs::DafsClientConfig cfg;
  cfg.completion = msg::Completion::poll;
  auto client = c.make_dafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kExtent * batch);
    auto reg = co_await client->ensure_registered(buf, kExtent * batch);
    ORDMA_CHECK(reg.ok());

    const auto cpu0 = h.sample_cpu();
    const SimTime t0 = c.engine().now();
    for (Bytes off = 0; off + kExtent * batch <= kFileSize;
         off += kExtent * batch) {
      if (batch == 1) {
        auto r = co_await client->read_direct(
            open.value().fh, off, kExtent, reg.value()->nic_va(buf),
            reg.value()->cap);
        ORDMA_CHECK(r.ok());
      } else {
        std::vector<nas::dafs::DafsClient::BatchEntry> entries;
        for (std::size_t i = 0; i < batch; ++i) {
          entries.push_back({open.value().fh, off + i * kExtent, kExtent,
                             reg.value()->nic_va(buf + i * kExtent),
                             reg.value()->cap});
        }
        auto r = co_await client->read_batch(entries);
        ORDMA_CHECK(r.ok());
      }
    }
    const auto elapsed = c.engine().now() - t0;
    cell.throughput_MBps = throughput_MBps(kFileSize, elapsed);
    cell.client_cpu = host::Host::utilisation(cpu0, h.sample_cpu());
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  Table t("Ablation A6: DAFS batch I/O, 8KB extents (synchronous client)",
          {"batch size", "throughput MB/s", "client CPU"});
  const std::size_t batches[] = {1, 4, 16, 64};
  auto cells = sweep(obs_session.jobs(), std::size(batches),
                     [&](std::size_t i) { return run_cell(batches[i]); });
  for (std::size_t i = 0; i < std::size(batches); ++i) {
    t.add_row({std::to_string(batches[i]), mbps(cells[i].throughput_MBps),
               pct(cells[i].client_cpu)});
  }
  t.print();
  std::printf(
      "\ntakeaway: batching amortises the per-I/O RPC (client CPU and"
      " round trips) across many server-issued RDMA writes — §2.2's"
      " client-side complement to ORDMA's server-side fix\n");
  return 0;
}
