// Figure 3 — client read throughput vs application I/O block size, four
// systems. Paper's shape: DAFS and NFS hybrid sustain ~230 MB/s for blocks
// ≥32 KB; NFS pre-posting slightly higher (~235 MB/s, 8 KB Ethernet
// fragments vs 4 KB GM fragments); standard NFS flat at ~65 MB/s,
// client-CPU-bound by memory copies.
#include "fig34_common.h"

#include "obs/cli.h"

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  constexpr System kSystems[] = {System::nfs, System::prepost, System::hybrid,
                                 System::dafs};
  constexpr std::size_t kCols = std::size(kSystems);
  constexpr std::size_t kRows = std::size(kFig3Blocks);
  auto cells = sweep(obs_session.jobs(), kRows * kCols, [&](std::size_t i) {
    return run_fig3_cell(kSystems[i % kCols], kFig3Blocks[i / kCols]);
  });

  Table t("Figure 3: client read throughput (MB/s) vs block size",
          {"block", "NFS", "NFS pre-posting", "NFS hybrid", "DAFS"});
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> row{std::to_string(kFig3Blocks[r] / 1024) + "KB"};
    for (std::size_t c = 0; c < kCols; ++c) {
      row.push_back(mbps(cells[r * kCols + c].throughput_MBps));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\npaper reference: NFS peaks ~65; pre-posting ~235 and hybrid/DAFS"
      " ~230 for >=32KB blocks\n");
  return 0;
}
