// Figure 6 — PostMark in the paper's read-only configuration: 4 KB files,
// each transaction opens a file, reads it, closes it; open delegations make
// re-opens local; the client cache size sets the hit ratio (25/50/75%).
// Paper: ODAFS ≈34% more transactions/s than DAFS, and the ODAFS server
// CPU goes idle once the client holds references to the whole file set,
// while the DAFS server burns 30/25/20% CPU.
#include <memory>

#include "bench_util.h"
#include "nas/odafs/odafs_client.h"
#include "workload/postmark.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::size_t kNumFiles = 512;  // 4 KB each → 2 MB file set
constexpr std::uint64_t kTxns = 4000;

struct Cell {
  double txns_per_sec = 0;
  double hit_ratio = 0;
  double server_cpu = 0;
};

Cell run_cell(bool use_ordma, double target_hit_ratio) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks =
      static_cast<std::size_t>(kNumFiles * target_hit_ratio);
  cfg.cache.max_headers = kNumFiles * 4;
  cfg.use_ordma = use_ordma;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;  // synchronous transactions
  auto client = c.make_odafs_client(0, cfg);

  wl::PostMarkConfig pm;
  pm.num_files = kNumFiles;
  pm.min_size = KiB(4);
  pm.max_size = KiB(4);
  pm.transactions = kTxns;
  pm.read_only = true;
  pm.io_block = KiB(4);
  wl::PostMark postmark(c.client(0), *client, pm);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    ORDMA_CHECK((co_await postmark.setup()).ok());
    // Steady state: every file touched once → delegations + (ODAFS) refs.
    ORDMA_CHECK((co_await postmark.warmup()).ok());
    const auto hits0 = client->block_cache().data_hits();
    const auto miss0 = client->block_cache().data_misses();
    const auto cpu0 = c.server().sample_cpu();
    auto res = co_await postmark.run();
    ORDMA_CHECK(res.ok());
    const auto cpu1 = c.server().sample_cpu();
    cell.txns_per_sec = res.value().txns_per_sec;
    const double h = static_cast<double>(client->block_cache().data_hits() -
                                         hits0);
    const double m = static_cast<double>(
        client->block_cache().data_misses() - miss0);
    cell.hit_ratio = h / (h + m);
    cell.server_cpu = host::Host::utilisation(cpu0, cpu1);
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  Table t("Figure 6: PostMark read-only throughput (txns/s) vs client cache"
          " hit ratio",
          {"target hit", "DAFS txns/s", "ODAFS txns/s", "ODAFS gain",
           "paper gain", "DAFS srv CPU", "ODAFS srv CPU", "measured hit"});
  const double ratios[] = {0.25, 0.50, 0.75};
  const char* paper_cpu[] = {"30%", "25%", "20%"};
  auto cells = sweep(obs_session.jobs(), std::size(ratios) * 2,
                     [&](std::size_t i) {
                       return run_cell(/*use_ordma=*/i % 2 == 1,
                                       ratios[i / 2]);
                     });
  int i = 0;
  for (double r : ratios) {
    const Cell& dafs = cells[i * 2];
    const Cell& odafs = cells[i * 2 + 1];
    t.add_row({pct(r), fmt("%.0f", dafs.txns_per_sec),
               fmt("%.0f", odafs.txns_per_sec),
               fmt("%+.0f%%", (odafs.txns_per_sec - dafs.txns_per_sec) /
                                  dafs.txns_per_sec * 100.0),
               "+34%",
               pct(dafs.server_cpu) + std::string(" (paper ") +
                   paper_cpu[i] + ")",
               pct(odafs.server_cpu), pct((dafs.hit_ratio + odafs.hit_ratio) / 2)});
    ++i;
  }
  t.print();
  std::printf(
      "\npaper reference: ODAFS ~34%% higher throughput at every hit ratio;"
      " ODAFS server CPU → ~0 once references cover the file set\n");
  return 0;
}
