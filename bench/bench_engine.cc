// Engine throughput harness — not a paper figure, but the speed limit for
// every figure: all experiments are bottlenecked by how many simulated
// events/sec the discrete-event core retires. Drives four microbenchmarks
// (pure timers, coroutine yields, channel handoffs, a mixed spawn-heavy
// workload) plus a fig6-style PostMark end-to-end run, prints events/sec
// and wall-clock for each, and (with --json=<file>) emits an ordma.bench.v1
// document that scripts/bench_compare.py diffs against the committed
// BENCH_engine.json baseline to gate CI on perf regressions.
#include <ctime>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "nas/odafs/odafs_client.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "workload/postmark.h"

#include "obs/cli.h"

namespace ordma {
namespace {

// Process CPU time, not wall-clock: the build/CI machines are heavily
// shared, and the engine is single-threaded CPU-bound work, so CPU seconds
// are the stable quantity.
double cpu_now() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}
struct Clock {
  using time_point = double;
  static time_point now() { return cpu_now(); }
};

double secs_since(Clock::time_point t0) { return cpu_now() - t0; }

struct MicroResult {
  std::string name;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec() const { return events / wall_s; }
};

// Pure schedule_fn timers at staggered future times: exercises the
// schedule → heap → fire → recycle cycle with no coroutine machinery.
MicroResult bench_timers(std::uint64_t n) {
  sim::Engine eng;
  // Self-rescheduling chains keep the heap small (like a real run) while
  // still pushing n total events through it.
  constexpr int kChains = 64;
  std::uint64_t fired = 0;
  const std::uint64_t per_chain = n / kChains;
  struct Chain {
    sim::Engine* eng;
    std::uint64_t left;
    Duration step;
    std::uint64_t* fired;
    void arm() {
      eng->schedule_fn(step, [this] {
        ++*fired;
        if (--left > 0) arm();
      });
    }
  };
  std::vector<Chain> chains;
  chains.reserve(kChains);
  for (int i = 0; i < kChains; ++i) {
    chains.push_back(Chain{&eng, per_chain, usec(1 + i % 17), &fired});
  }
  const auto t0 = Clock::now();
  for (auto& c : chains) c.arm();
  eng.run();
  return {"timer", fired, secs_since(t0)};
}

// Tight yield loops: every event is a zero-delay coroutine resumption, the
// dominant event class in NIC/RPC handoff code.
MicroResult bench_yields(std::uint64_t n) {
  sim::Engine eng;
  constexpr int kProcs = 16;
  const std::uint64_t per_proc = n / kProcs;
  for (int i = 0; i < kProcs; ++i) {
    eng.spawn([](sim::Engine& e, std::uint64_t iters) -> sim::Task<void> {
      for (std::uint64_t k = 0; k < iters; ++k) co_await e.yield();
    }(eng, per_proc));
  }
  const auto t0 = Clock::now();
  const std::uint64_t fired = eng.run();
  return {"yield", fired, secs_since(t0)};
}

// Producer/consumer pairs over Channel<int>: each message is a send, a
// waiter wake-up (zero-delay event) and a resume.
MicroResult bench_channels(std::uint64_t n) {
  sim::Engine eng;
  constexpr int kPairs = 8;
  const std::uint64_t per_pair = n / kPairs;
  std::vector<std::unique_ptr<sim::Channel<int>>> chans;
  for (int i = 0; i < kPairs; ++i) {
    chans.push_back(std::make_unique<sim::Channel<int>>(eng));
    auto& ch = *chans.back();
    eng.spawn([](sim::Channel<int>& ch, std::uint64_t iters)
                  -> sim::Task<void> {
      for (std::uint64_t k = 0; k < iters; ++k) (void)co_await ch.recv();
    }(ch, per_pair));
    eng.spawn([](sim::Engine& e, sim::Channel<int>& ch,
                 std::uint64_t iters) -> sim::Task<void> {
      for (std::uint64_t k = 0; k < iters; ++k) {
        ch.send(static_cast<int>(k));
        co_await e.yield();  // let the consumer drain (ping-pong)
      }
    }(eng, ch, per_pair));
  }
  const auto t0 = Clock::now();
  const std::uint64_t fired = eng.run();
  return {"channel", fired, secs_since(t0)};
}

// Mixed workload: short-lived spawned processes doing delays and yields —
// stresses process bookkeeping (spawn/reap) alongside the queues.
MicroResult bench_mixed(std::uint64_t n) {
  sim::Engine eng;
  constexpr int kSpawners = 4;
  const std::uint64_t children = n / (kSpawners * 8);
  for (int i = 0; i < kSpawners; ++i) {
    eng.spawn([](sim::Engine& e, std::uint64_t kids) -> sim::Task<void> {
      for (std::uint64_t k = 0; k < kids; ++k) {
        e.spawn([](sim::Engine& e2, std::uint64_t seed) -> sim::Task<void> {
          co_await e2.delay(usec(seed % 7));
          co_await e2.yield();
          co_await e2.delay(usec(seed % 3));
          co_await e2.yield();
        }(e, k));
        co_await e.delay(usec(1));
      }
    }(eng, children));
  }
  const auto t0 = Clock::now();
  const std::uint64_t fired = eng.run();
  return {"mixed", fired, secs_since(t0)};
}

// Fig6-style PostMark cell (ODAFS, 50% target hit ratio): the end-to-end
// number — full client/NIC/fabric/server stack per transaction.
MicroResult bench_postmark() {
  constexpr std::size_t kNumFiles = 512;
  constexpr std::uint64_t kTxns = 40000;

  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = kNumFiles / 2;
  cfg.cache.max_headers = kNumFiles * 4;
  cfg.use_ordma = true;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  auto client = c.make_odafs_client(0, cfg);

  wl::PostMarkConfig pm;
  pm.num_files = kNumFiles;
  pm.min_size = KiB(4);
  pm.max_size = KiB(4);
  pm.transactions = kTxns;
  pm.read_only = true;
  pm.io_block = KiB(4);
  wl::PostMark postmark(c.client(0), *client, pm);

  const auto t0 = Clock::now();
  bench::drive(c, [&]() -> sim::Task<void> {
    ORDMA_CHECK((co_await postmark.setup()).ok());
    ORDMA_CHECK((co_await postmark.warmup()).ok());
    ORDMA_CHECK((co_await postmark.run()).ok());
  });
  return {"fig6_postmark", kTxns, secs_since(t0)};
}

// The same PostMark cell with --sample-traces-style observability attached
// (recorder + tail sampler on this thread): measures the fully-sampled obs
// tax on an end-to-end run. The sampled_obs_overhead metric gates the
// "sampling costs <= 5% of obs-off throughput" budget in CI.
MicroResult bench_postmark_sampled() {
  obs::TraceRecorder rec;
  obs::TraceSampler sampler(rec);
  obs::install(&rec);
  MicroResult r = bench_postmark();
  obs::install(static_cast<obs::TraceRecorder*>(nullptr));
  sampler.finish();
  r.name = "fig6_postmark_sampled";
  return r;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  // --json=<file>: ordma.bench.v1 metrics for scripts/bench_compare.py
  // (BENCH_engine.json in the repo root is the committed baseline).
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  constexpr std::uint64_t kMicroEvents = 4'000'000;

  std::vector<MicroResult> results;
  results.push_back(bench_timers(kMicroEvents));
  results.push_back(bench_yields(kMicroEvents));
  results.push_back(bench_channels(kMicroEvents));
  results.push_back(bench_mixed(kMicroEvents));
  // The sampled/plain ratio below gates the sampling overhead budget, so
  // this pair needs walls that survive a preempted shared runner: run the
  // halves interleaved and keep each one's best wall.
  MicroResult postmark_plain = bench_postmark();
  MicroResult postmark_sampled = bench_postmark_sampled();
  for (int rep = 1; rep < 5; ++rep) {
    MicroResult p = bench_postmark();
    if (p.wall_s < postmark_plain.wall_s) postmark_plain = p;
    MicroResult s = bench_postmark_sampled();
    if (s.wall_s < postmark_sampled.wall_s) postmark_sampled = s;
  }
  results.push_back(postmark_plain);
  results.push_back(postmark_sampled);

  Table t("Engine throughput (events/sec, higher is better)",
          {"workload", "events", "wall (s)", "events/sec"});
  for (const auto& r : results) {
    t.add_row({r.name, fmt("%.0f", static_cast<double>(r.events)),
               fmt("%.3f", r.wall_s), fmt("%.3g", r.events_per_sec())});
  }
  t.print();

  // Sampled-vs-plain throughput on the same cell: both halves run in this
  // process back to back, so shared-runner noise largely cancels out of
  // the ratio.
  const double sampled_overhead =
      results[results.size() - 1].events_per_sec() /
      results[results.size() - 2].events_per_sec();
  std::printf("\nsampled obs throughput ratio (sampled/plain): %.3f\n",
              sampled_overhead);

  if (!json_path.empty()) {
    BenchReport report("bench_engine");
    for (const auto& r : results) {
      // Wall-clock rates on a shared runner swing hard: a loose band keeps
      // the gate meaningful (order-of-magnitude regressions) without
      // tripping on noisy neighbours.
      report.add(r.name + "_events_per_sec", r.events_per_sec(), "events/s",
                 /*higher_is_better=*/true, 0.6);
    }
    // The ratio is noise-cancelled (see above) so it takes a band an order
    // of magnitude tighter than the raw rates: nominal is ~0.95-1.0 (the
    // sampling budget is <= ~5% of obs-off throughput), and an 8% band
    // below the committed baseline still catches every real staging-path
    // regression while tolerating shared-runner cache pollution.
    report.add("sampled_obs_overhead", sampled_overhead, "ratio",
               /*higher_is_better=*/true, 0.08);
    if (report.write_file(json_path)) {
      std::printf("\nbench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
