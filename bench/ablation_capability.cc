// Ablation A3 — the cost of ORDMA capabilities (§4, "Ensuring safety").
//
// The paper designed but did not implement capability verification; ours is
// real (SipHash-2-4 per request at the server NIC). This bench measures
// (a) the simulated impact on ORDMA response time and small-I/O server
// throughput, and (b) the actual wall-clock cost of the MAC primitives via
// google-benchmark — evidence the check is cheap enough for NIC firmware.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "crypto/capability.h"
#include "crypto/siphash.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(8);
constexpr Bytes kBlock = KiB(4);

struct Cell {
  double latency_us = 0;
  double throughput_MBps = 0;
};

Cell run_cell(bool capabilities) {
  core::ClusterConfig cc;
  cc.fs.block_size = kBlock;
  cc.fs.cache_blocks = kFileSize / kBlock + 64;
  cc.cm.capabilities_enabled = capabilities;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, true);
  });

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kBlock;
  cfg.cache.data_blocks = 64;
  cfg.cache.max_headers = 2 * kFileSize / kBlock;
  cfg.use_ordma = true;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  auto client = c.make_odafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    const std::uint64_t blocks = kFileSize / kBlock;
    // Pass 1 collects references; pass 2 measures sequential ORDMA.
    for (std::uint64_t i = 0; i < blocks; ++i) {
      (void)co_await client->fetch_block(open.value().fh, i);
    }
    const SimTime t0 = c.engine().now();
    for (std::uint64_t i = 0; i < blocks; ++i) {
      auto hdr = co_await client->fetch_block(open.value().fh, i);
      ORDMA_CHECK(hdr.ok());
    }
    const auto elapsed = c.engine().now() - t0;
    cell.latency_us = elapsed.to_us() / static_cast<double>(blocks);
    cell.throughput_MBps = throughput_MBps(kFileSize, elapsed);
    ORDMA_CHECK(client->ordma_reads() >= blocks);
  });
  return cell;
}

void BM_SipHash24_CapabilitySized(benchmark::State& state) {
  const crypto::SipKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
  std::byte msg[29] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::siphash24(key, std::span<const std::byte>(msg, sizeof msg)));
  }
}
BENCHMARK(BM_SipHash24_CapabilitySized);

void BM_CapabilityMintVerify(benchmark::State& state) {
  const crypto::CapabilityAuthority auth(crypto::SipKey{1, 2});
  const auto cap = auth.mint(7, 0x1000, 4096, crypto::SegPerm::read, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth.verify(cap, 1));
  }
}
BENCHMARK(BM_CapabilityMintVerify);

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);
  using namespace ordma;
  using namespace ordma::bench;

  auto cells = sweep(obs_session.jobs(), 2,
                     [](std::size_t i) { return run_cell(i == 0); });
  const Cell& with = cells[0];
  const Cell& without = cells[1];
  Table t("Ablation A3: capability verification cost (4KB ORDMA reads)",
          {"configuration", "response time (us)", "throughput MB/s"});
  t.add_row({"capabilities on (this repo)", us(with.latency_us),
             mbps(with.throughput_MBps)});
  t.add_row({"capabilities off (paper's prototype)", us(without.latency_us),
             mbps(without.throughput_MBps)});
  t.print();
  std::printf(
      "\nsimulated overhead: %.1f us per ORDMA (firmware MAC check);"
      " wall-clock primitive costs follow\n\n",
      with.latency_us - without.latency_us);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
