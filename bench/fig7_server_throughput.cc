// Figure 7 — server throughput with two clients sequentially reading a
// large file warm in the server cache (second pass measured), as the cache
// block size — the unit of network I/O — sweeps 4..64 KB.
//
// Paper: ODAFS saturates the server link at every block size without using
// the server CPU; DAFS is server-CPU-bound at small blocks (interrupts),
// and even an all-polling DAFS server only reaches ~170 MB/s at 4 KB,
// leaving ODAFS a 32% win.
#include <memory>
#include <string>

#include "bench_util.h"
#include "nas/odafs/odafs_client.h"
#include "obs/timeseries.h"
#include "workload/streaming.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(48);
constexpr Bytes kAppBlock = KiB(512);  // "using a large block size"

struct Cell {
  double throughput_MBps = 0;
  double server_cpu = 0;
};

Cell run_cell(const std::string& label, bool use_ordma, Bytes cache_block,
              msg::Completion server_mode) {
  core::ClusterConfig cc;
  cc.num_clients = 2;
  cc.fs.block_size = cache_block;
  cc.fs.cache_blocks = kFileSize / cache_block + 64;
  cc.fs.disk_capacity = GiB(1);
  // The paper "ensure[s] that RDMA ... always hits in the NIC TLB": size
  // the TLB to cover the exported file (4 KB blocks → 12K+ pages).
  cc.nic.tlb_entries = 65536;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true, .completion = server_mode});
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("big.dat", kFileSize, /*warm=*/true);
  });

  std::vector<std::unique_ptr<nas::odafs::OdafsClient>> clients;
  for (unsigned i = 0; i < 2; ++i) {
    nas::odafs::OdafsClientConfig cfg;
    cfg.cache.block_size = cache_block;
    cfg.cache.data_blocks = 256;  // far smaller than the file
    cfg.cache.max_headers = 2 * kFileSize / cache_block + 1024;
    cfg.use_ordma = use_ordma;
    cfg.dafs.completion = msg::Completion::poll;
    cfg.read_ahead_window = 8;
    clients.push_back(c.make_odafs_client(i, cfg));
  }

  // Under --timeseries, watch this cell over simulated time: the server-CPU
  // rate is the phase-report key series, so the summarizer labels the
  // saturated steady state the paper's Fig. 7 argues about. Declared after
  // cluster and clients so its destructor (which samples the gauges one
  // last time) runs while they are alive.
  obs::ts::RunScope ts_run(c.engine(), label);
  if (ts_run.active()) {
    c.export_metrics(ts_run.registry());
    for (unsigned i = 0; i < 2; ++i) {
      c.export_file_client_metrics(ts_run.registry(), i, *clients[i]);
      c.export_odafs_client_metrics(ts_run.registry(), i, *clients[i]);
    }
  }

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    struct Done {
      explicit Done(sim::Engine& eng) : ev(eng) {}
      unsigned live = 2;
      Bytes bytes = 0;
      sim::Event<> ev;
    };
    // Pass 1 (unmeasured): collects references / warms delegations.
    for (int pass = 0; pass < 2; ++pass) {
      auto done = std::make_shared<Done>(c.engine());
      const auto t0 = c.engine().now();
      const auto cpu0 = c.server().sample_cpu();
      for (unsigned i = 0; i < 2; ++i) {
        c.engine().spawn(
            [](core::Cluster& c, nas::odafs::OdafsClient& client, unsigned i,
               std::shared_ptr<Done> done) -> sim::Task<void> {
              wl::StreamConfig sc;
              sc.block = kAppBlock;
              sc.window = 2;  // 2 app-level requests × 8-block internal RA
              auto res = co_await wl::stream_read(c.client(i), client,
                                                  "big.dat", sc);
              ORDMA_CHECK(res.ok());
              done->bytes += res.value().bytes;
              if (--done->live == 0) done->ev.set();
            }(c, *clients[i], i, done));
      }
      co_await done->ev.wait();
      if (pass == 1) {
        const auto cpu1 = c.server().sample_cpu();
        cell.throughput_MBps =
            throughput_MBps(done->bytes, c.engine().now() - t0);
        cell.server_cpu = host::Host::utilisation(cpu0, cpu1);
      }
    }
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  const Bytes blocks[] = {KiB(4), KiB(8), KiB(16), KiB(32), KiB(64)};
  const std::size_t kRows = std::size(blocks);
  // Grid cells 0..2*kRows-1 are the (DAFS, ODAFS) pairs per block size; the
  // last two are the §5.2 polling-server coda.
  auto cells = sweep(obs_session.jobs(), kRows * 2 + 2, [&](std::size_t i) {
    if (i == kRows * 2) {
      return run_cell("dafs_poll.4KB", false, KiB(4), msg::Completion::poll);
    }
    if (i == kRows * 2 + 1) {
      return run_cell("odafs_block.4KB", true, KiB(4),
                      msg::Completion::block);
    }
    const bool use_ordma = i % 2 == 1;
    const std::string label = std::string(use_ordma ? "odafs." : "dafs.") +
                              std::to_string(blocks[i / 2] / 1024) + "KB";
    return run_cell(label, use_ordma, blocks[i / 2], msg::Completion::block);
  });

  Table t("Figure 7: server throughput (MB/s), two clients reading a warm"
          " file, vs cache block size",
          {"cache block", "DAFS", "DAFS srv CPU", "ODAFS", "ODAFS srv CPU",
           "ODAFS gain"});
  for (std::size_t r = 0; r < kRows; ++r) {
    const Cell& dafs = cells[r * 2];
    const Cell& odafs = cells[r * 2 + 1];
    t.add_row({std::to_string(blocks[r] / 1024) + "KB",
               mbps(dafs.throughput_MBps), pct(dafs.server_cpu),
               mbps(odafs.throughput_MBps), pct(odafs.server_cpu),
               fmt("%+.0f%%",
                   (odafs.throughput_MBps - dafs.throughput_MBps) /
                       dafs.throughput_MBps * 100.0)});
  }
  t.print();

  // The paper's §5.2 coda: switching the DAFS server to polling for all
  // network events lifts 4 KB DAFS to ~170 MB/s, an ODAFS gain of ~32%.
  const Cell& dafs_poll = cells[kRows * 2];
  const Cell& odafs4 = cells[kRows * 2 + 1];
  std::printf(
      "\nDAFS with all-polling server at 4KB: %.0f MB/s (paper ~170);"
      " ODAFS gain %.0f%% (paper 32%%)\n",
      dafs_poll.throughput_MBps,
      (odafs4.throughput_MBps - dafs_poll.throughput_MBps) /
          dafs_poll.throughput_MBps * 100.0);
  return 0;
}
