// Parallel sweep scaling: run a fixed grid of independent simulations (the
// Figure-3 read-ahead experiment, four systems × eight block sizes, scaled
// down) through run/runner.h at 1/2/4/8 workers, and measure aggregate
// simulation throughput (engine events fired per wall-clock second).
//
// Two things are asserted, not just measured:
//  * Determinism: every cell folds its results (simulated end time, events
//    fired, throughput/CPU bit patterns) into an FNV-1a hash; the combined
//    grid hash must be identical at every worker count. A parallel sweep
//    that changed any bit of any simulation fails here, loudly.
//  * Scaling (CI): --json emits ordma.bench.v1 with aggregate events/s per
//    level, gated against BENCH_sweep.json by scripts/bench_compare.py.
//    Wall-clock metrics use the loose tolerance; improvements never fail.
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "bench_json.h"
#include "bench_util.h"
#include "fig34_common.h"
#include "obs/cli.h"
#include "workload/streaming.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(8);  // fig3 scaled down: many cells per level

struct CellResult {
  std::uint64_t events = 0;  // engine entries fired across the whole cell
  std::uint64_t hash = 0;    // fold of everything the cell computed
};

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof u == sizeof d);
  __builtin_memcpy(&u, &d, sizeof u);
  return u;
}

// Like bench::drive, but returns the engine's fired-entry count.
template <typename F>
std::uint64_t drive_counting(core::Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  const std::uint64_t fired = c.engine().run();
  ORDMA_CHECK_MSG(done, "sweep cell deadlocked");
  return fired;
}

CellResult run_cell(bench::System sys, Bytes block) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(8);
  cc.fs.cache_blocks = kFileSize / KiB(8) + 64;
  core::Cluster c(cc);
  if (sys == bench::System::dafs) {
    c.start_dafs({.completion = msg::Completion::block});
  } else {
    c.start_nfs();
  }

  CellResult out;
  out.events += drive_counting(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("stream.dat", kFileSize, /*warm=*/true);
  });

  std::unique_ptr<core::FileClient> client;
  switch (sys) {
    case bench::System::nfs:
      client = c.make_nfs_client(0, block);
      break;
    case bench::System::prepost:
      client = c.make_prepost_client(0, block);
      break;
    case bench::System::hybrid:
      client = c.make_hybrid_client(0, block);
      break;
    case bench::System::dafs: {
      nas::dafs::DafsClientConfig cfg;
      cfg.completion = msg::Completion::poll;
      client = c.make_dafs_client(0, cfg);
      break;
    }
  }

  // Under --timeseries each cell emits one run document at every level
  // (the global sink is mutexed and label-sorted; repeat labels across
  // levels dedup deterministically), and the grid-hash check across levels
  // then doubles as proof that sampling left the simulation untouched.
  obs::ts::RunScope ts_run(c.engine(),
                           std::string("sweep.") + bench::system_slug(sys) +
                               "." + std::to_string(block / 1024) + "KB");
  if (ts_run.active()) {
    c.export_metrics(ts_run.registry());
    c.export_file_client_metrics(ts_run.registry(), 0, *client);
  }

  double tput = 0, cpu = 0;
  out.events += drive_counting(c, [&]() -> sim::Task<void> {
    wl::StreamConfig sc;
    sc.block = block;
    sc.window = 8;
    auto res =
        co_await wl::stream_read(c.client(0), *client, "stream.dat", sc);
    ORDMA_CHECK_MSG(res.ok(), "stream_read failed");
    tput = res.value().throughput_MBps;
    cpu = res.value().client_cpu_util;
  });

  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(c.engine().now().ns));
  h = fnv1a(h, out.events);
  h = fnv1a(h, bits(tput));
  h = fnv1a(h, bits(cpu));
  out.hash = h;
  return out;
}

struct LevelResult {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t grid_hash = 0;  // fold of all cell hashes, in cell order
};

LevelResult run_level(unsigned jobs) {
  constexpr bench::System kSystems[] = {
      bench::System::nfs, bench::System::prepost, bench::System::hybrid,
      bench::System::dafs};
  constexpr std::size_t kCols = std::size(kSystems);
  constexpr std::size_t kCells = kCols * std::size(bench::kFig3Blocks);

  // Every level records into the (mutexed, label-sorted) global sinks;
  // labels repeating across levels pick up a deterministic "#n" suffix
  // because levels run strictly in sequence.
  const auto t0 = std::chrono::steady_clock::now();
  auto cells = bench::sweep(jobs, kCells, [&](std::size_t i) {
    return run_cell(kSystems[i % kCols], bench::kFig3Blocks[i / kCols]);
  });
  const auto t1 = std::chrono::steady_clock::now();

  LevelResult lvl;
  lvl.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  lvl.grid_hash = 0xcbf29ce484222325ull;
  for (const CellResult& c : cells) {
    lvl.events += c.events;
    lvl.grid_hash = fnv1a(lvl.grid_hash, c.hash);
  }
  return lvl;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  const unsigned levels[] = {1, 2, 4, 8};
  bench::Table t("Parallel sweep scaling: 32 simulations (fig3 grid, scaled)"
                 " per worker count",
                 {"jobs", "wall ms", "events/s", "ev/s/worker", "speedup",
                  "hash"});
  bench::BenchReport report("bench_sweep");
  // Informational: lets bench_compare output (and the CI scaling gate,
  // scripts/check_scaling.py) show how many cores the measuring machine
  // actually had — a speedup curve from a 1-core runner is flat by
  // physics, not by regression. Tolerance is wide open on purpose.
  report.add("hardware_jobs", run::hardware_jobs(), "cores",
             /*higher_is_better=*/true, 1e9);
  LevelResult base;
  bool hashes_ok = true;
  for (unsigned jobs : levels) {
    const LevelResult lvl = run_level(jobs);
    if (jobs == 1) base = lvl;
    const bool ok = lvl.grid_hash == base.grid_hash;
    hashes_ok = hashes_ok && ok;
    const double eps = lvl.events / (lvl.wall_ms / 1000.0);
    const double speedup = base.wall_ms / lvl.wall_ms;
    t.add_row({std::to_string(jobs), bench::fmt("%.0f", lvl.wall_ms),
               bench::fmt("%.3g", eps), bench::fmt("%.3g", eps / jobs),
               bench::fmt("%.2fx", speedup), ok ? "ok" : "MISMATCH"});
    const std::string j = std::to_string(jobs);
    report.add("events_per_sec_j" + j, eps, "events/s",
               /*higher_is_better=*/true, 0.3);
    // Per-worker throughput at every level: when scaling regresses, this
    // shows *where* the curve bends (e.g. fine at j2, collapsing at j4 ⇒
    // a 4-way shared resource), not just the j8 endpoint.
    report.add("events_per_sec_per_worker_j" + j, eps / jobs, "events/s",
               /*higher_is_better=*/true, 0.3);
    if (jobs > 1) {
      report.add("speedup_j" + j, speedup, "x",
                 /*higher_is_better=*/true, 0.3);
    }
  }
  t.print();
  ORDMA_CHECK_MSG(hashes_ok,
                  "parallel sweep altered simulation results (hash mismatch)");
  std::printf(
      "\nevery worker count produced the identical grid hash: parallel"
      " execution is bit-identical to serial\n");

  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
