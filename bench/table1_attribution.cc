// Per-I/O overhead attribution (the Table 1 decomposition applied to this
// simulation): trace a run of preads per protocol, fold every op's span
// tree into the paper's cost categories (obs/attribution.h), and print the
// average breakdown. Because the attributor sweeps each op's root interval
// and charges every instant to exactly one bucket, the six buckets (plus
// "other": queueing/sync gaps and untraced work) sum to the end-to-end
// latency — cross-checked below against the wall-clock average per read,
// which itself is validated against the paper by bench/table3_response_time.
//
// Paper context (Sec. 2, Table 1): overheads divide into per-byte,
// per-packet and per-I/O costs; direct access removes the per-byte copies
// and most per-packet work, which is exactly what the NFS → RDDP-RPC →
// DAFS → ODAFS progression below shows.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/file_client.h"
#include "nas/odafs/odafs_client.h"
#include "obs/attribution.h"
#include "obs/cli.h"
#include "obs/explain.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(8);
constexpr Bytes kServerBlock = KiB(8);

enum class Proto { nfs, prepost, dafs, odafs };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::nfs: return "NFS";
    case Proto::prepost: return "RDDP-RPC";
    case Proto::dafs: return "DAFS";
    case Proto::odafs: return "ODAFS";
  }
  return "?";
}

struct RunResult {
  obs::Breakdown avg;   // mean over measured preads
  double e2e_us = 0;    // wall-clock average per pread
  std::size_t ops = 0;  // measured preads folded in
  // Cause-level explanation of the same ops (obs/explain.h), keyed by op.
  std::map<obs::OpId, obs::CauseBreakdown> causes;
};

// Run `samples` preads of `io_size` with `proto` and attribute them. The
// measured pass runs after a warm-up pass over the same range so connection
// setup, registration and (for ODAFS) reference harvesting happen outside
// the trace. If `rec` is non-null the trace is recorded there (and kept for
// the caller, e.g. --trace output); otherwise a run-local recorder is used.
RunResult run_proto(Proto proto, Bytes io_size, int samples,
                    obs::TraceRecorder* rec = nullptr) {
  core::ClusterConfig cc;
  cc.fs.block_size = kServerBlock;
  cc.fs.cache_blocks = kFileSize / kServerBlock + 64;
  core::Cluster c(cc);

  std::unique_ptr<core::FileClient> client;
  nas::odafs::OdafsClient* odafs = nullptr;
  switch (proto) {
    case Proto::nfs:
      c.start_nfs();
      client = c.make_nfs_client(0);
      break;
    case Proto::prepost:
      c.start_nfs();
      client = c.make_prepost_client(0);
      break;
    case Proto::dafs: {
      c.start_dafs();
      nas::dafs::DafsClientConfig cfg;
      cfg.completion = msg::Completion::block;
      client = c.make_dafs_client(0, cfg);
      break;
    }
    case Proto::odafs: {
      c.start_dafs({.piggyback_refs = true});
      nas::odafs::OdafsClientConfig cfg;
      cfg.cache.block_size = kServerBlock;
      // Few data blocks, many headers: re-reads miss the data cache but
      // find harvested references and go ORDMA (the §5.2 setup).
      cfg.cache.data_blocks = 64;
      cfg.cache.max_headers = 2 * kFileSize / kServerBlock;
      cfg.dafs.completion = msg::Completion::block;
      auto oc = c.make_odafs_client(0, cfg);
      odafs = oc.get();
      client = std::move(oc);
      break;
    }
  }

  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, /*warm=*/true);
  });

  obs::TraceRecorder local;
  obs::TraceRecorder& recorder = rec ? *rec : local;

  RunResult out;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), io_size);

    const Bytes span = static_cast<Bytes>(samples) * io_size;
    ORDMA_CHECK(span <= kFileSize);
    // Warm-up pass: untraced.
    for (int i = 0; i < samples; ++i) {
      auto r = co_await client->pread(open.value().fh,
                                      static_cast<Bytes>(i) * io_size, buf,
                                      io_size);
      ORDMA_CHECK(r.ok() && r.value() == io_size);
    }

    obs::install(&recorder);
    const auto t0 = c.engine().now();
    for (int i = 0; i < samples; ++i) {
      auto r = co_await client->pread(open.value().fh,
                                      static_cast<Bytes>(i) * io_size, buf,
                                      io_size);
      ORDMA_CHECK(r.ok() && r.value() == io_size);
    }
    out.e2e_us = (c.engine().now() - t0).to_us() / samples;
    obs::install(static_cast<obs::TraceRecorder*>(nullptr));

    if (odafs) {
      ORDMA_CHECK_MSG(odafs->ordma_reads() > 0, "ORDMA path not exercised");
    }
  });

  obs::Breakdown sum;
  sum.ops = 0;
  for (const auto& [op, b] : obs::attribute(recorder)) {
    if (std::string_view(b.root_name) != "op/pread") continue;
    sum += b;
  }
  ORDMA_CHECK_MSG(sum.ops == static_cast<std::size_t>(samples),
                  "expected one op/pread root per measured read");
  out.avg = sum.averaged();
  out.ops = sum.ops;

  // The buckets must sum to the measured end-to-end latency (2% slack for
  // the op-envelope edges: syscall entry before t0 is impossible here, but
  // keep the check honest rather than exact).
  const double delta =
      std::abs(out.avg.sum_us() - out.e2e_us) / out.e2e_us;
  ORDMA_CHECK_MSG(delta <= 0.02, "attribution does not sum to e2e latency");

  // Cause-level view of the same trace; the sweep partitions each op's
  // envelope, so per-cause times must sum to its end-to-end latency too.
  for (auto& [op, bd] : obs::explain(recorder)) {
    if (std::string_view(bd.root_name) != "op/pread") continue;
    ORDMA_CHECK_MSG(std::abs(bd.sum_us() - bd.total_us) <=
                        0.02 * bd.total_us,
                    "explainer causes do not sum to op latency");
    out.causes.emplace(op, bd);
  }
  return out;
}

// Per-protocol explainer documents collected for --explain output.
struct ExplainDoc {
  std::string label;
  std::map<obs::OpId, obs::CauseBreakdown> causes;
};

// Metric name fragment: "nfs", "rddp_rpc", "dafs", "odafs".
std::string proto_key(Proto p) {
  switch (p) {
    case Proto::nfs: return "nfs";
    case Proto::prepost: return "rddp_rpc";
    case Proto::dafs: return "dafs";
    case Proto::odafs: return "odafs";
  }
  return "?";
}

void print_table(unsigned jobs, Bytes io_size, int samples,
                 obs::TraceRecorder* rec_last, bench::BenchReport* report,
                 std::vector<ExplainDoc>* explain_out) {
  bench::Table t(
      "Per-" + std::to_string(io_size / 1024) +
          "KB-read overhead attribution (us, mean of " +
          std::to_string(samples) + " warm-cache reads)",
      {"protocol", "per-byte", "per-packet", "per-I/O", "NIC", "wire", "disk",
       "other", "sum", "e2e"});
  const Proto protos[] = {Proto::nfs, Proto::prepost, Proto::dafs,
                          Proto::odafs};
  // rec_last (the --trace sink) is only non-null when the session forced
  // jobs=1, so the session recorder never crosses a thread.
  auto results = bench::sweep(jobs, std::size(protos), [&](std::size_t i) {
    obs::TraceRecorder* rec =
        (protos[i] == Proto::odafs) ? rec_last : nullptr;
    return run_proto(protos[i], io_size, samples, rec);
  });
  for (std::size_t i = 0; i < std::size(protos); ++i) {
    const Proto p = protos[i];
    RunResult& r = results[i];
    auto cell = [&r](obs::Category c) { return bench::fmt("%.1f", r.avg[c]); };
    t.add_row({proto_name(p), cell(obs::Category::per_byte),
               cell(obs::Category::per_packet), cell(obs::Category::per_io),
               cell(obs::Category::nic), cell(obs::Category::wire),
               cell(obs::Category::disk), cell(obs::Category::other),
               bench::fmt("%.1f", r.avg.sum_us()),
               bench::fmt("%.1f", r.e2e_us)});
    if (report) {
      // Simulated time reproduces bit-identically: tight tolerance.
      const std::string key =
          proto_key(p) + "_" + std::to_string(io_size / 1024) + "k";
      report->add(key + "_e2e_us", r.e2e_us, "us",
                  /*higher_is_better=*/false, 0.02);
      report->add(key + "_per_byte_us", r.avg[obs::Category::per_byte], "us",
                  /*higher_is_better=*/false, 0.02);
    }
    if (explain_out) {
      ExplainDoc doc;
      doc.label = std::string(proto_name(p)) + " " +
                  std::to_string(io_size / 1024) + "KB pread";
      doc.causes = std::move(r.causes);
      explain_out->push_back(std::move(doc));
    }
  }
  t.print();
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  using namespace ordma;
  // --trace=<file> captures the ODAFS 64KB run (the most interesting tree);
  // --metrics is accepted for interface uniformity but writes nothing here
  // (each run owns a fresh cluster). This binary adds:
  //   --json=<file>     ordma.bench.v1 metrics (see bench_json.h)
  //   --explain=<file>  JSON array of ordma.explain.v1 "p99 explainer"
  //                     documents, one per protocol, for the 8KB runs
  obs::ObsSession session(argc, argv);
  obs::install(static_cast<obs::TraceRecorder*>(nullptr));  // runs install recorders themselves

  std::string json_path, explain_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") {
      json_path = std::string(arg.substr(7));
    } else if (arg.substr(0, 10) == "--explain=") {
      explain_path = std::string(arg.substr(10));
    }
  }

  bench::BenchReport report("table1_attribution");
  std::vector<ExplainDoc> explains;
  print_table(session.jobs(), KiB(8), 256, nullptr, &report,
              explain_path.empty() ? nullptr : &explains);
  print_table(session.jobs(), KiB(64), 64, session.recorder(), &report,
              nullptr);

  std::printf(
      "\nbuckets are a full partition of each op's latency; \"other\" is\n"
      "queueing/sync time no instrumented stage was active for.\n");

  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (!explain_path.empty()) {
    std::ofstream f(explain_path);
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", explain_path.c_str());
      return 1;
    }
    f << "[\n";
    for (std::size_t i = 0; i < explains.size(); ++i) {
      obs::write_explain_json(f, explains[i].label.c_str(),
                              explains[i].causes);
      if (i + 1 < explains.size()) f << ",\n";
    }
    f << "]\n";
    std::printf("explainer json written to %s\n", explain_path.c_str());
  }
  return 0;
}
