// Shared benchmark scaffolding: a driver that runs one coroutine to
// completion on a cluster, a parallel sweep helper that fans a figure's
// grid of independent cells across the experiment runner, and a table
// printer that shows each paper number beside the measured value (the
// deliverable format for every reproduced table/figure).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "mem/arena.h"
#include "run/runner.h"

namespace ordma::bench {

// Run `body` to completion on the cluster's engine; aborts on deadlock.
template <typename F>
void drive(core::Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ORDMA_CHECK_MSG(done, "benchmark driver deadlocked");
}

// Same, for a bare engine.
template <typename F>
void drive_engine(sim::Engine& eng, F&& body) {
  bool done = false;
  eng.spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  eng.run();
  ORDMA_CHECK_MSG(done, "benchmark driver deadlocked");
}

// Run every cell of a figure/table grid through the parallel experiment
// runner (run/runner.h). `cell(i)` builds its own Cluster, drives it, and
// returns plain data; cells must not share simulation state. Results come
// back in cell-index order, so the caller's table/print loop is unchanged
// whatever the worker count. jobs == 1 (the default when an ObsSession has
// an observability sink installed) runs the cells inline in order — the
// historical serial behavior, bit-identical by construction.
// Each cell runs under a per-run arena (mem/arena.h) checked out of the
// worker thread's reusable pool: every Engine the cell builds draws its
// timer slabs and calendar storage from it, and the scope's reset returns
// the memory for the worker's next cell — zero allocator traffic between
// cells, and never a shared allocator between workers. Arenas change
// where bytes live, never what the simulation computes; the determinism
// suite pins arena-on ≡ arena-off.
template <typename Cell>
auto sweep(unsigned jobs, std::size_t cells, Cell&& cell) {
  return run::parallel_map(jobs, cells, [&cell](std::size_t i) {
    mem::ScopedSimArena arena;
    return cell(i);
  });
}

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      width[i] = columns_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        const std::string& s = i < cells.size() ? cells[i] : std::string();
        std::printf("%-*s  ", static_cast<int>(width[i]), s.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}
inline std::string mbps(double v) { return fmt("%.0f", v); }
inline std::string us(double v) { return fmt("%.0f", v); }
inline std::string pct(double v) { return fmt("%.0f%%", v * 100.0); }

// Deviation annotation: measured vs paper.
inline std::string vs_paper(double measured, double paper) {
  if (paper == 0) return "-";
  return fmt("%+.0f%%", (measured - paper) / paper * 100.0);
}

}  // namespace ordma::bench
