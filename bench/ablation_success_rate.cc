// Ablation A4 — ORDMA success rate (§4.2.2: "Low ORDMA success rate, i.e.,
// low server cache hit rates. If many ORDMAs result in failure, ODAFS
// performance is similar to that of DAFS as the cost of ORDMA exceptions
// and subsequent RPCs is masked by the high latency of server disk I/O").
//
// We shrink the server cache below the file set so references go stale at
// increasing rates, and measure ODAFS (LRU and ARC reference directories)
// against plain DAFS: the curves must converge as faults dominate.
//
// --json=<file> emits ordma.bench.v1 for perf-regression gating.
#include <memory>
#include <string_view>

#include "bench_json.h"
#include "bench_util.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(8);
constexpr Bytes kBlock = KiB(4);
constexpr std::uint64_t kReads = 3000;

struct Cell {
  double avg_latency_us = 0;
  double fault_rate = 0;  // faults / ORDMA attempts
};

Cell run_cell(bool use_ordma, const std::string& ref_policy,
              double server_cache_fraction) {
  core::ClusterConfig cc;
  cc.fs.block_size = kBlock;
  cc.fs.cache_blocks = static_cast<std::size_t>(
      (kFileSize / kBlock) * server_cache_fraction);
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  bench::drive(c, [&c, server_cache_fraction]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, server_cache_fraction >= 1.0);
  });

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kBlock;
  cfg.cache.data_blocks = 64;
  cfg.cache.max_headers = 2 * kFileSize / kBlock;
  cfg.cache.ref_policy = ref_policy;
  cfg.use_ordma = use_ordma;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  auto client = c.make_odafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    const std::uint64_t blocks = kFileSize / kBlock;
    Rng rng(11);
    // Warm pass: collect references (some will go stale as the server
    // cache churns).
    for (std::uint64_t i = 0; i < blocks; ++i) {
      (void)co_await client->fetch_block(open.value().fh, i);
    }
    const SimTime t0 = c.engine().now();
    for (std::uint64_t i = 0; i < kReads; ++i) {
      auto hdr =
          co_await client->fetch_block(open.value().fh, rng.below(blocks));
      ORDMA_CHECK(hdr.ok());
    }
    cell.avg_latency_us = (c.engine().now() - t0).to_us() / kReads;
    const double attempts = static_cast<double>(client->ordma_reads() +
                                                client->ordma_faults());
    cell.fault_rate =
        attempts > 0 ? client->ordma_faults() / attempts : 0.0;
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  Table t("Ablation A4: ODAFS vs DAFS as ORDMA success rate falls"
          " (server cache as a fraction of the file set)",
          {"server cache", "ODAFS avg read (us)", "fault rate",
           "ODAFS/arc avg read (us)", "DAFS avg read (us)",
           "ODAFS advantage"});
  // Per grid point: ODAFS with an LRU reference directory, ODAFS with ARC,
  // plain DAFS (the arms the fig7 convergence argument compares).
  struct Arm {
    bool use_ordma;
    const char* ref_policy;
  };
  const Arm arms[] = {{true, "lru"}, {true, "arc"}, {false, "lru"}};
  const double fracs[] = {1.0, 0.75, 0.5, 0.25};
  auto cells = sweep(obs_session.jobs(), std::size(fracs) * std::size(arms),
                     [&](std::size_t i) {
                       const Arm& a = arms[i % std::size(arms)];
                       return run_cell(a.use_ordma, a.ref_policy,
                                       fracs[i / std::size(arms)]);
                     });
  BenchReport report("ablation_success_rate");
  for (std::size_t i = 0; i < std::size(fracs); ++i) {
    const Cell& odafs = cells[i * std::size(arms)];
    const Cell& arc = cells[i * std::size(arms) + 1];
    const Cell& dafs = cells[i * std::size(arms) + 2];
    const double frac = fracs[i];
    t.add_row({pct(frac), us(odafs.avg_latency_us), pct(odafs.fault_rate),
               us(arc.avg_latency_us), us(dafs.avg_latency_us),
               fmt("%+.0f%%", (dafs.avg_latency_us - odafs.avg_latency_us) /
                                  dafs.avg_latency_us * 100.0)});
    const std::string key = "cache" + std::to_string(
        static_cast<int>(frac * 100));
    report.add(key + "_odafs_lru_us", odafs.avg_latency_us, "us",
               /*higher_is_better=*/false, 0.02);
    report.add(key + "_odafs_arc_us", arc.avg_latency_us, "us",
               /*higher_is_better=*/false, 0.02);
    report.add(key + "_dafs_us", dafs.avg_latency_us, "us",
               /*higher_is_better=*/false, 0.02);
  }
  t.print();
  std::printf(
      "\ntakeaway: as stale references make ORDMA fault, disk latency"
      " dominates both systems and the ODAFS advantage collapses —"
      " exactly §4.2.2's limitation (the ARC directory tracks LRU here:"
      " uniform random access has no frequency structure to exploit)\n");

  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
