// Figure 4 — client CPU utilisation during the Figure-3 read-ahead runs
// (standard NFS omitted, as in the paper — it saturates its CPU). Paper's
// shape: DAFS <15% for ≥64 KB blocks and keeps falling; NFS hybrid between;
// NFS pre-posting flattens for large blocks because its per-IP-fragment
// work is independent of block size.
#include "fig34_common.h"

#include "obs/cli.h"

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  constexpr System kSystems[] = {System::prepost, System::hybrid,
                                 System::dafs};
  constexpr std::size_t kCols = std::size(kSystems);
  constexpr std::size_t kRows = std::size(kFig3Blocks);
  auto cells = sweep(obs_session.jobs(), kRows * kCols, [&](std::size_t i) {
    return run_fig3_cell(kSystems[i % kCols], kFig3Blocks[i / kCols]);
  });

  Table t("Figure 4: client CPU utilisation vs block size",
          {"block", "NFS pre-posting", "NFS hybrid", "DAFS"});
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> row{std::to_string(kFig3Blocks[r] / 1024) + "KB"};
    for (std::size_t c = 0; c < kCols; ++c) {
      row.push_back(pct(cells[r * kCols + c].cpu_util));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\npaper reference: DAFS <15%% at >=64KB; pre-posting flattens at a"
      " per-fragment floor\n");
  return 0;
}
