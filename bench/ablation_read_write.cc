// Ablation A5 — read/write ratio (§4.2.2: "Small read–write ratio. Writes
// require the update of associated file state ... besides the actual data
// transfer" — writes always take the RPC path, diluting ODAFS's benefit).
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::size_t kNumFiles = 256;
constexpr std::uint64_t kOps = 4000;

double run_cell(bool use_ordma, double read_fraction) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = kNumFiles / 4;  // 25% hit ratio
  cfg.cache.max_headers = kNumFiles * 4;
  cfg.use_ordma = use_ordma;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  auto client = c.make_odafs_client(0, cfg);

  double out = 0;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(4));
    std::vector<std::uint64_t> fhs;
    for (std::size_t i = 0; i < kNumFiles; ++i) {
      const std::string name = "f" + std::to_string(i);
      co_await c.make_file(name, KiB(4), true, i + 1);
      auto open = co_await client->open(name);
      ORDMA_CHECK(open.ok());
      fhs.push_back(open.value().fh);
      (void)co_await client->pread(open.value().fh, 0, buf, KiB(4));
    }

    Rng rng(3);
    const SimTime t0 = c.engine().now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto fh = fhs[rng.below(kNumFiles)];
      if (rng.uniform01() < read_fraction) {
        ORDMA_CHECK((co_await client->pread(fh, 0, buf, KiB(4))).ok());
      } else {
        ORDMA_CHECK((co_await client->pwrite(fh, 0, buf, KiB(4))).ok());
      }
    }
    out = kOps / (c.engine().now() - t0).to_sec();
  });
  return out;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  Table t("Ablation A5: ODAFS gain vs read/write mix (4KB ops, 25% client"
          " cache hit ratio)",
          {"reads", "DAFS ops/s", "ODAFS ops/s", "ODAFS gain"});
  const double fracs[] = {1.0, 0.9, 0.75, 0.5};
  auto cells = sweep(obs_session.jobs(), std::size(fracs) * 2,
                     [&](std::size_t i) {
                       return run_cell(/*use_ordma=*/i % 2 == 1,
                                       fracs[i / 2]);
                     });
  for (std::size_t i = 0; i < std::size(fracs); ++i) {
    const double dafs = cells[i * 2];
    const double odafs = cells[i * 2 + 1];
    t.add_row({pct(fracs[i]), fmt("%.0f", dafs), fmt("%.0f", odafs),
               fmt("%+.0f%%", (odafs - dafs) / dafs * 100.0)});
  }
  t.print();
  std::printf(
      "\ntakeaway: writes always travel by RPC (server must update file"
      " state, §4.2.2), so the ODAFS advantage shrinks with the read"
      " fraction\n");
  return 0;
}
