// Ablation A5 — read/write ratio (§4.2.2: "Small read–write ratio. Writes
// require the update of associated file state ... besides the actual data
// transfer").
//
// Re-anchored on the ORDMA write path: the historical claim was that writes
// always travel by RPC, diluting ODAFS's benefit as the write share grows.
// With writable references the client can put bytes straight into the
// server's cache block and commit with one verified round trip — so this
// sweep now pits, at each read fraction, RPC write-through against
// optimistic put-through and write-back through the real put path (a
// coherence-mode server: versioned refs, commit bookkeeping and all).
//
// --json=<file> emits ordma.bench.v1 gated by scripts/bench_compare.py
// against the committed BENCH_write.json: the put path must keep beating
// write-through RPC at every mixed grid point.
#include <memory>
#include <string_view>

#include "bench_util.h"
#include "bench_json.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::size_t kNumFiles = 256;
constexpr std::uint64_t kOps = 4000;

using nas::odafs::WritePolicy;

double run_cell(WritePolicy policy, double read_fraction) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  core::Cluster c(cc);
  nas::dafs::DafsServerConfig scfg;
  scfg.piggyback_refs = true;
  if (policy != WritePolicy::rpc_through) {
    scfg.writable_refs = true;
    scfg.coherence = true;
  }
  c.start_dafs(scfg);

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = kNumFiles / 4;  // 25% hit ratio
  cfg.cache.max_headers = kNumFiles * 4;
  cfg.use_ordma = true;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  cfg.write_policy = policy;
  auto client = c.make_odafs_client(0, cfg);

  double out = 0;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(4));
    std::vector<std::uint64_t> fhs;
    for (std::size_t i = 0; i < kNumFiles; ++i) {
      const std::string name = "f" + std::to_string(i);
      co_await c.make_file(name, KiB(4), true, i + 1);
      auto open = co_await client->open(name);
      ORDMA_CHECK(open.ok());
      fhs.push_back(open.value().fh);
      // Warm-up read: caches some data, and — the put path's fuel — leaves
      // a piggybacked (write-capable) reference in every block header.
      (void)co_await client->pread(open.value().fh, 0, buf, KiB(4));
    }

    Rng rng(3);
    const SimTime t0 = c.engine().now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto fh = fhs[rng.below(kNumFiles)];
      if (rng.uniform01() < read_fraction) {
        ORDMA_CHECK((co_await client->pread(fh, 0, buf, KiB(4))).ok());
      } else {
        ORDMA_CHECK((co_await client->pwrite(fh, 0, buf, KiB(4))).ok());
      }
    }
    // Write-back buffers are part of the bill: flush them inside the
    // timed region so policies are compared on durable work.
    ORDMA_CHECK((co_await client->sync()).ok());
    out = kOps / (c.engine().now() - t0).to_sec();
  });
  return out;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;
  using nas::odafs::WritePolicy;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  Table t("Ablation A5: ORDMA write path vs write-through RPC by read/write"
          " mix (4KB ops, 25% client cache hit ratio)",
          {"reads", "RPC-wt ops/s", "put ops/s", "wb ops/s", "put gain",
           "wb gain"});
  BenchReport report("ablation_read_write");
  const double fracs[] = {0.9, 0.75, 0.5, 0.25};
  const WritePolicy policies[] = {WritePolicy::rpc_through,
                                  WritePolicy::put_through,
                                  WritePolicy::write_back};
  auto cells = sweep(obs_session.jobs(), std::size(fracs) * 3,
                     [&](std::size_t i) {
                       return run_cell(policies[i % 3], fracs[i / 3]);
                     });
  for (std::size_t i = 0; i < std::size(fracs); ++i) {
    const double rpc = cells[i * 3];
    const double put = cells[i * 3 + 1];
    const double wb = cells[i * 3 + 2];
    t.add_row({pct(fracs[i]), fmt("%.0f", rpc), fmt("%.0f", put),
               fmt("%.0f", wb), fmt("%+.0f%%", (put - rpc) / rpc * 100.0),
               fmt("%+.0f%%", (wb - rpc) / rpc * 100.0)});
    const std::string r = std::to_string(static_cast<int>(fracs[i] * 100));
    // Simulated-time results reproduce bit-identically: tight bands.
    report.add("ops_per_sec_rpc_r" + r, rpc, "ops/s",
               /*higher_is_better=*/true, 0.02);
    report.add("ops_per_sec_put_r" + r, put, "ops/s",
               /*higher_is_better=*/true, 0.02);
    report.add("ops_per_sec_wb_r" + r, wb, "ops/s",
               /*higher_is_better=*/true, 0.02);
    report.add("put_vs_rpc_gain_r" + r, put / rpc, "x",
               /*higher_is_better=*/true, 0.02);
    report.add("wb_vs_rpc_gain_r" + r, wb / rpc, "x",
               /*higher_is_better=*/true, 0.02);
  }
  t.print();
  std::printf(
      "\ntakeaway: with writable references a commit is one verified round"
      " trip instead of a data-bearing RPC (no per-byte server CPU), so the"
      " write share no longer erases the ODAFS advantage\n");

  if (!json_path.empty()) {
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
