// Table 3 — response time reading one 4 KB block from server memory:
//
//                         paper (us)
//   mechanism           in mem.   in cache
//   RPC in-line read      128       153
//   RPC direct read       144       144
//   ORDMA read             92        92
//
// "in mem." reads land in the application's communication/registered
// buffer; "in cache" reads go through the client file cache (which for
// in-line replies adds the communication-buffer→cache copy). The ORDMA rows
// are measured on the second pass over the file, after the first pass
// collected remote memory references (§5.2 microbenchmark setup).
#include <memory>

#include "bench_util.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr Bytes kFileSize = MiB(16);
constexpr Bytes kBlock = KiB(4);
constexpr int kSamples = 1024;

core::ClusterConfig cluster_cfg() {
  core::ClusterConfig cc;
  cc.fs.block_size = kBlock;
  cc.fs.cache_blocks = kFileSize / kBlock + 64;
  return cc;
}

nas::odafs::OdafsClientConfig cached_cfg(bool use_ordma, bool inline_rpc) {
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kBlock;
  // "a small number of data blocks but ... a large number of headers that
  // can retain remote memory references" (§5.2).
  cfg.cache.data_blocks = 64;
  cfg.cache.max_headers = 2 * kFileSize / kBlock;
  cfg.use_ordma = use_ordma;
  cfg.inline_rpc = inline_rpc;
  cfg.read_ahead_window = 1;  // strictly sequential synchronous reads
  cfg.dafs.completion = msg::Completion::block;
  return cfg;
}

// Average per-read latency for raw (uncached, "in mem.") protocol reads.
double raw_latency_us(bool direct) {
  core::Cluster c(cluster_cfg());
  c.start_dafs();
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, /*warm=*/true);
  });
  nas::dafs::DafsClientConfig cfg;
  cfg.completion = msg::Completion::block;
  auto client = c.make_dafs_client(0, cfg);

  double out = 0;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kBlock);
    auto reg = co_await client->ensure_registered(buf, kBlock);
    ORDMA_CHECK(reg.ok());

    const auto t0 = c.engine().now();
    for (int i = 0; i < kSamples; ++i) {
      const Bytes off = static_cast<Bytes>(i) * kBlock;
      if (direct) {
        auto r = co_await client->read_direct(
            open.value().fh, off, kBlock, reg.value()->nic_va(buf),
            reg.value()->cap);
        ORDMA_CHECK(r.ok());
      } else {
        auto r = co_await client->read_inline(open.value().fh, off, kBlock);
        ORDMA_CHECK(r.ok());
      }
    }
    out = (c.engine().now() - t0).to_us() / kSamples;
  });
  return out;
}

// Average per-read latency through the client file cache. With use_ordma,
// the measured pass is the second one (references collected in pass 1).
double cached_latency_us(bool use_ordma, bool inline_rpc) {
  core::Cluster c(cluster_cfg());
  c.start_dafs({.piggyback_refs = true});
  bench::drive(c, [&c]() -> sim::Task<void> {
    co_await c.make_file("f", kFileSize, true);
  });
  auto client = c.make_odafs_client(0, cached_cfg(use_ordma, inline_rpc));

  double out = 0;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    const int passes = use_ordma ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      const auto t0 = c.engine().now();
      for (int i = 0; i < kSamples; ++i) {
        auto hdr = co_await client->fetch_block(open.value().fh, i);
        ORDMA_CHECK(hdr.ok());
      }
      out = (c.engine().now() - t0).to_us() / kSamples;
      // All samples must miss the (64-block) data cache; with 1024 distinct
      // sequential blocks, they do.
    }
    if (use_ordma) {
      ORDMA_CHECK_MSG(client->ordma_reads() >= kSamples / 2,
                      "ORDMA path not exercised");
    }
  });
  return out;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  // Five independent measurements, each on a fresh cluster.
  double (*const measurements[])() = {
      [] { return raw_latency_us(/*direct=*/false); },
      [] { return cached_latency_us(false, /*inline_rpc=*/true); },
      [] { return raw_latency_us(/*direct=*/true); },
      [] { return cached_latency_us(false, /*inline_rpc=*/false); },
      [] { return cached_latency_us(true, /*inline_rpc=*/false); },
  };
  auto vals = bench::sweep(obs_session.jobs(), std::size(measurements),
                           [&](std::size_t i) { return measurements[i](); });
  const double inline_mem = vals[0];
  const double inline_cache = vals[1];
  const double direct_mem = vals[2];
  const double direct_cache = vals[3];
  const double ordma_cache = vals[4];

  Table t("Table 3: 4KB read response time (us), paper vs measured",
          {"mechanism", "in mem. paper", "measured", "Δ", "in cache paper",
           "measured", "Δ"});
  t.add_row({"RPC in-line read", "128", us(inline_mem),
             vs_paper(inline_mem, 128), "153", us(inline_cache),
             vs_paper(inline_cache, 153)});
  t.add_row({"RPC direct read", "144", us(direct_mem),
             vs_paper(direct_mem, 144), "144", us(direct_cache),
             vs_paper(direct_cache, 144)});
  t.add_row({"ORDMA read", "92", us(ordma_cache), vs_paper(ordma_cache, 92),
             "92", us(ordma_cache), vs_paper(ordma_cache, 92)});
  t.print();

  std::printf("\nimprovement of ORDMA over RPC direct: %.0f%% (paper: 36%%)\n",
              (direct_cache - ordma_cache) / direct_cache * 100.0);
  return 0;
}
