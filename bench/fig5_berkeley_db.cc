// Figure 5 — Berkeley DB (stand-in) computing an equality join with 60 KB
// records over each NAS client, with asynchronous page prefetch. The x-axis
// varies how much of each record the application copies out of the db cache
// (0..64 KB); as copying grows, throughput becomes client-CPU-bound and the
// systems order by their client CPU overhead. Standard NFS is flat and low.
//
// Scaling: 192 records of 60 KB (≈11 MB database) instead of the paper's
// larger set; rates are size-independent (see EXPERIMENTS.md).
#include <memory>

#include "bench_util.h"
#include "db/database.h"
#include "db/join.h"
#include "fig34_common.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::uint64_t kRecords = 192;
constexpr Bytes kRecordSize = KiB(60);

double run_cell(bench::System sys, Bytes copy_per_record) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(8);
  cc.fs.cache_blocks = 4096;  // 32 MB: whole db stays warm
  core::Cluster c(cc);
  if (sys == bench::System::dafs) {
    c.start_dafs({.completion = msg::Completion::block});
  } else {
    c.start_nfs();
  }

  std::unique_ptr<core::FileClient> client;
  switch (sys) {
    case bench::System::nfs:
      client = c.make_nfs_client(0, KiB(64));
      break;
    case bench::System::prepost:
      client = c.make_prepost_client(0, KiB(64));
      break;
    case bench::System::hybrid:
      client = c.make_hybrid_client(0, KiB(64));
      break;
    case bench::System::dafs: {
      nas::dafs::DafsClientConfig cfg;
      cfg.completion = msg::Completion::poll;
      client = c.make_dafs_client(0, cfg);
      break;
    }
  }

  double out = 0;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto db = co_await db::Database::create(c.client(0), *client, "join.db",
                                            db::PagerConfig{KiB(8), 512});
    ORDMA_CHECK(db.ok());
    ORDMA_CHECK((co_await db::load_records(*db.value(), kRecords,
                                           kRecordSize))
                    .ok());
    auto keys = co_await db.value()->keys();
    ORDMA_CHECK(keys.ok());

    db::JoinConfig jc;
    jc.record_size = kRecordSize;
    jc.copy_per_record = copy_per_record;
    jc.window = 8;
    auto res = co_await db::run_join(c.client(0), *db.value(), keys.value(),
                                     jc);
    ORDMA_CHECK(res.ok());
    out = res.value().throughput_MBps;
  });
  return out;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  const Bytes copies[] = {0, KiB(8), KiB(16), KiB(32), KiB(60)};
  constexpr System kSystems[] = {System::nfs, System::prepost, System::hybrid,
                                 System::dafs};
  constexpr std::size_t kCols = std::size(kSystems);
  const std::size_t kRows = std::size(copies);
  auto cells = sweep(obs_session.jobs(), kRows * kCols, [&](std::size_t i) {
    return run_cell(kSystems[i % kCols], copies[i / kCols]);
  });

  Table t("Figure 5: Berkeley DB join throughput (MB/s) vs data copied per"
          " 60KB record",
          {"copied/record", "NFS", "NFS pre-posting", "NFS hybrid", "DAFS"});
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> row{std::to_string(copies[r] / 1024) + "KB"};
    for (std::size_t c = 0; c < kCols; ++c) {
      row.push_back(mbps(cells[r * kCols + c]));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\npaper reference: near-wire (~230) for the three RDDP systems at 0"
      " copy, NFS flat ~65; all decline as copying loads the client CPU\n");
  return 0;
}
