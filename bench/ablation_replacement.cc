// Ablation A2 — replacement policy for the ORDMA reference directory
// (§4.2: "we assume ... LRU ... a more appropriate strategy would be
// similar to the multi-queue algorithm for storage server caches").
//
// A skewed PostMark-like workload (80% of reads hit 20% of files) with a
// reference directory smaller than the file set: MQ protects the hot
// files' references from the scan of cold files, so more misses go via
// ORDMA instead of falling back to RPC. ARC (cache/policy.h) adapts its
// recency/frequency split online and is the third arm.
//
// --json=<file> emits ordma.bench.v1 for perf-regression gating.
#include <memory>
#include <string_view>

#include "bench_json.h"
#include "bench_util.h"
#include "common/rng.h"
#include "nas/odafs/odafs_client.h"

#include "obs/cli.h"

namespace ordma {
namespace {

constexpr std::size_t kNumFiles = 1024;  // 4 KB each
constexpr std::uint64_t kTxns = 6000;

struct Cell {
  double txns_per_sec = 0;
  double ordma_fraction = 0;  // misses served by ORDMA (vs RPC)
};

Cell run_cell(const std::string& ref_policy) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  core::Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = 64;          // tiny data cache: most reads miss
  cfg.cache.max_headers = kNumFiles / 2;  // directory covers half the set
  cfg.cache.ref_policy = ref_policy;
  cfg.use_ordma = true;
  cfg.dafs.completion = msg::Completion::block;
  cfg.read_ahead_window = 1;
  auto client = c.make_odafs_client(0, cfg);

  Cell cell;
  bench::drive(c, [&]() -> sim::Task<void> {
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(4));

    // Build the file set server-side and open every file once.
    std::vector<std::uint64_t> fhs;
    for (std::size_t i = 0; i < kNumFiles; ++i) {
      const std::string name = "f" + std::to_string(i);
      co_await c.make_file(name, KiB(4), true, i + 1);
      auto open = co_await client->open(name);
      ORDMA_CHECK(open.ok());
      fhs.push_back(open.value().fh);
    }

    // Skewed access (80% of reads to the hottest 10% of files) polluted by
    // periodic sequential scans over cold files — the access pattern the
    // multi-queue paper targets: recency alone evicts the hot entries on
    // every scan, frequency keeps them.
    Rng rng(7);
    const SimTime t0 = c.engine().now();
    const auto ordma0 = client->ordma_reads();
    const auto rpc0 = client->rpc_reads();
    const std::size_t hot = kNumFiles / 10;
    std::size_t scan_pos = hot;
    std::uint64_t t = 0;
    std::uint64_t work_ordma = 0, work_rpc = 0;
    while (t < kTxns) {
      // Working phase: 256 skewed transactions (the phase we care about).
      const auto po = client->ordma_reads();
      const auto pr = client->rpc_reads();
      for (int k = 0; k < 256 && t < kTxns; ++k, ++t) {
        const std::size_t idx = rng.chance(0.8)
                                    ? rng.below(hot)
                                    : hot + rng.below(kNumFiles - hot);
        auto n = co_await client->pread(fhs[idx], 0, buf, KiB(4));
        ORDMA_CHECK(n.ok());
      }
      work_ordma += client->ordma_reads() - po;
      work_rpc += client->rpc_reads() - pr;
      // Burst scan longer than the directory: one touch per cold file.
      // LRU loses every hot reference to the scan; MQ's frequency queues
      // keep them.
      for (int k = 0; k < 640 && t < kTxns; ++k, ++t) {
        auto n = co_await client->pread(fhs[scan_pos], 0, buf, KiB(4));
        ORDMA_CHECK(n.ok());
        scan_pos = scan_pos + 1 >= kNumFiles ? hot : scan_pos + 1;
      }
    }
    (void)ordma0;
    (void)rpc0;
    const auto elapsed = c.engine().now() - t0;
    cell.txns_per_sec = kTxns / elapsed.to_sec();
    cell.ordma_fraction =
        static_cast<double>(work_ordma) /
        static_cast<double>(work_ordma + work_rpc);
  });
  return cell;
}

}  // namespace
}  // namespace ordma

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  using namespace ordma;
  using namespace ordma::bench;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 7) == "--json=") json_path = std::string(arg.substr(7));
  }

  Table t("Ablation A2: ORDMA directory replacement policy"
          " (skewed access, directory covers half the file set)",
          {"policy", "txns/s", "working-set misses via ORDMA"});
  const char* policies[] = {"lru", "mq", "arc"};
  auto cells = sweep(obs_session.jobs(), std::size(policies),
                     [&](std::size_t i) { return run_cell(policies[i]); });
  const Cell& lru = cells[0];
  const Cell& mq = cells[1];
  const Cell& arc = cells[2];
  t.add_row({"LRU (paper)", fmt("%.0f", lru.txns_per_sec),
             pct(lru.ordma_fraction)});
  t.add_row({"Multi-Queue (paper's suggestion)", fmt("%.0f", mq.txns_per_sec),
             pct(mq.ordma_fraction)});
  t.add_row({"ARC (ghost lists, self-tuning)", fmt("%.0f", arc.txns_per_sec),
             pct(arc.ordma_fraction)});
  t.print();
  std::printf(
      "\ntakeaway: under scan pressure MQ keeps hot references resident,"
      " serving %.0f%% of working-set misses by ORDMA vs %.0f%% for LRU;"
      " ARC (%.0f%%) tracks LRU here — a pure scan re-hits its ghost lists"
      " too rarely to move the recency/frequency split; it self-tunes only"
      " when the miss history has structure to learn\n",
      mq.ordma_fraction * 100.0, lru.ordma_fraction * 100.0,
      arc.ordma_fraction * 100.0);

  if (!json_path.empty()) {
    BenchReport report("ablation_replacement");
    for (std::size_t i = 0; i < std::size(policies); ++i) {
      const std::string p = policies[i];
      report.add(p + "_txns_per_sec", cells[i].txns_per_sec, "txns/s",
                 /*higher_is_better=*/true, 0.02);
      report.add(p + "_ordma_fraction", cells[i].ordma_fraction, "fraction",
                 /*higher_is_better=*/true, 0.02);
    }
    if (report.write_file(json_path)) {
      std::printf("bench json written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
