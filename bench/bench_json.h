// Machine-readable bench results, schema "ordma.bench.v1".
//
// Every bench binary that participates in perf-regression gating writes one
// of these documents (typically behind a --json=<file> flag). The committed
// baselines (BENCH_engine.json, BENCH_table1.json) are the same format;
// scripts/bench_compare.py diffs a fresh run against a baseline and fails
// CI when any metric moves past its tolerance in the losing direction.
//
//   {
//     "schema": "ordma.bench.v1",
//     "bench": "<binary name>",
//     "metrics": {
//       "<name>": {"value": N, "unit": "...", "higher_is_better": bool,
//                  "tolerance": R},
//       ...
//     }
//   }
//
// `tolerance` is the relative noise band the comparator allows before
// failing. Pick it by what the metric measures, not by optimism:
//  * deterministic simulated-time results (Table-1 bucket sums, e2e
//    latencies) reproduce bit-identically — use a tight band (~0.02) so a
//    real regression can't hide;
//  * wall-clock rates (events/sec on a shared CI runner) are hostage to
//    the neighbours — use a loose band (~0.6) so the gate never cries wolf.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ordma::bench {

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
  bool higher_is_better = false;
  double tolerance = 0.02;  // relative; see header comment
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void add(std::string name, double value, std::string unit,
           bool higher_is_better, double tolerance) {
    metrics_.push_back(Metric{std::move(name), value, std::move(unit),
                              higher_is_better, tolerance});
  }

  const std::vector<Metric>& metrics() const { return metrics_; }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"schema\": \"ordma.bench.v1\",\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n  \"metrics\": {\n",
                 bench_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f,
                   "    \"%s\": {\"value\": %.17g, \"unit\": \"%s\", "
                   "\"higher_is_better\": %s, \"tolerance\": %g}%s\n",
                   m.name.c_str(), m.value, m.unit.c_str(),
                   m.higher_is_better ? "true" : "false", m.tolerance,
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  std::string bench_;
  std::vector<Metric> metrics_;
};

}  // namespace ordma::bench
