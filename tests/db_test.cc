// Unit tests for the embedded database: pager, B+-tree (splits, overflow
// chains, persistence across cache resets), and the join driver — all over
// an in-memory fake FileClient so no cluster is needed.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "db/database.h"
#include "db/join.h"
#include "host/host.h"
#include "sim/engine.h"

namespace ordma::db {
namespace {

// A loopback FileClient: files are plain byte vectors, no network.
class FakeFileClient final : public core::FileClient {
 public:
  explicit FakeFileClient(host::Host& host) : host_(host) {}

  sim::Task<Result<core::OpenResult>> open(const std::string& path) override {
    co_await host_.engine().delay(usec(1));
    auto it = files_.find(path);
    if (it == files_.end()) co_return Errc::not_found;
    co_return core::OpenResult{it->second.fh, it->second.data.size()};
  }
  sim::Task<Status> close(std::uint64_t) override {
    co_return Status::Ok();
  }
  sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                 mem::Vaddr user_va, Bytes len) override {
    co_await host_.engine().delay(usec(10));
    auto* f = by_fh(fh);
    if (!f) co_return Errc::stale;
    if (off >= f->data.size()) co_return Bytes{0};
    const Bytes n = std::min<Bytes>(len, f->data.size() - off);
    if (!host_.user_as()
             .write(user_va,
                    std::span<const std::byte>(f->data.data() + off, n))
             .ok()) {
      co_return Errc::access_fault;
    }
    co_return n;
  }
  sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                  mem::Vaddr user_va, Bytes len) override {
    co_await host_.engine().delay(usec(10));
    auto* f = by_fh(fh);
    if (!f) co_return Errc::stale;
    if (f->data.size() < off + len) f->data.resize(off + len);
    std::vector<std::byte> tmp(len);
    if (!host_.user_as().read(user_va, tmp).ok()) {
      co_return Errc::access_fault;
    }
    std::copy(tmp.begin(), tmp.end(), f->data.begin() + off);
    co_return len;
  }
  sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) override {
    auto* f = by_fh(fh);
    if (!f) co_return Errc::stale;
    fs::Attr a;
    a.ino = fh;
    a.size = f->data.size();
    co_return a;
  }
  sim::Task<Result<core::OpenResult>> create(const std::string& path)
      override {
    co_await host_.engine().delay(usec(1));
    if (files_.count(path)) co_return Errc::already_exists;
    auto& f = files_[path];
    f.fh = next_fh_++;
    co_return core::OpenResult{f.fh, 0};
  }
  sim::Task<Status> unlink(const std::string& path) override {
    files_.erase(path);
    co_return Status::Ok();
  }
  const char* protocol_name() const override { return "fake"; }

 private:
  struct File {
    std::uint64_t fh = 0;
    std::vector<std::byte> data;
  };
  File* by_fh(std::uint64_t fh) {
    for (auto& [name, f] : files_) {
      if (f.fh == fh) return &f;
    }
    return nullptr;
  }
  host::Host& host_;
  std::map<std::string, File> files_;
  std::uint64_t next_fh_ = 1;
};

class DbTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  host::Host host_{eng_, "app", cm_, {MiB(256)}};
  FakeFileClient file_{host_};

  template <typename F>
  void drive(F&& body) {
    bool done = false;
    eng_.spawn([](F body, bool& done) -> sim::Task<void> {
      co_await body();
      done = true;
    }(std::forward<F>(body), done));
    eng_.run();
    ASSERT_TRUE(done);
  }

  static std::vector<std::byte> value(std::size_t n, int seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
    }
    return v;
  }
};

TEST_F(DbTest, PutGetSmallValues) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    EXPECT_TRUE(db.ok());
    for (Key k = 1; k <= 50; ++k) {
      EXPECT_TRUE((co_await db.value()->put(k, value(100, k))).ok());
    }
    for (Key k = 1; k <= 50; ++k) {
      auto got = co_await db.value()->get(k);
      EXPECT_TRUE(got.ok());
      EXPECT_EQ(got.value(), value(100, k));
    }
    auto missing = co_await db.value()->get(999);
    EXPECT_EQ(missing.code(), Errc::not_found);
  });
}

TEST_F(DbTest, OverwriteReplacesValue) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    EXPECT_TRUE((co_await db.value()->put(7, value(64, 1))).ok());
    EXPECT_TRUE((co_await db.value()->put(7, value(64, 2))).ok());
    auto got = co_await db.value()->get(7);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value(64, 2));
  });
}

TEST_F(DbTest, LargeValuesUseOverflowChains) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    const auto v = value(KiB(60), 9);  // the paper's record size
    EXPECT_TRUE((co_await db.value()->put(1, v)).ok());
    auto got = co_await db.value()->get(1);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value().size(), KiB(60));
    EXPECT_EQ(got.value(), v);
    // pages_for must cover tree path + ~8 overflow pages.
    auto pages = co_await db.value()->pages_for(1);
    EXPECT_TRUE(pages.ok());
    EXPECT_GE(pages.value().size(), 8u);
  });
}

TEST_F(DbTest, ManyInsertsCauseSplitsAndStaySorted) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    // Insert in scrambled order; enough to split leaves and grow height.
    for (Key i = 0; i < 500; ++i) {
      const Key k = (i * 2654435761u) % 100000;
      EXPECT_TRUE((co_await db.value()->put(k, value(200, k))).ok());
    }
    auto keys = co_await db.value()->keys();
    EXPECT_TRUE(keys.ok());
    EXPECT_TRUE(std::is_sorted(keys.value().begin(), keys.value().end()));
    EXPECT_GE(db.value()->tree().height(), 2u);
  });
}

TEST_F(DbTest, PersistsAcrossFlushAndReopen) {
  drive([&]() -> sim::Task<void> {
    {
      auto db = co_await Database::create(host_, file_, "db");
      for (Key k = 1; k <= 100; ++k) {
        EXPECT_TRUE((co_await db.value()->put(k, value(300, k))).ok());
      }
      EXPECT_TRUE((co_await db.value()->sync()).ok());
    }
    auto db2 = co_await Database::open(host_, file_, "db");
    EXPECT_TRUE(db2.ok());
    for (Key k = 1; k <= 100; ++k) {
      auto got = co_await db2.value()->get(k);
      EXPECT_TRUE(got.ok());
      EXPECT_EQ(got.value(), value(300, k));
    }
  });
}

TEST_F(DbTest, CacheResetForcesReRead) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    EXPECT_TRUE((co_await db.value()->put(1, value(100, 1))).ok());
    EXPECT_TRUE((co_await db.value()->reset_cache()).ok());
    const auto misses0 = db.value()->pager().misses();
    auto got = co_await db.value()->get(1);
    EXPECT_TRUE(got.ok());
    EXPECT_GT(db.value()->pager().misses(), misses0);
  });
}

TEST_F(DbTest, PrefetchOverlapsAndJoinsInflight) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(host_, file_, "db");
    EXPECT_TRUE((co_await db.value()->put(1, value(KiB(60), 1))).ok());
    auto pages = co_await db.value()->pages_for(1);
    EXPECT_TRUE((co_await db.value()->reset_cache()).ok());

    for (auto p : pages.value()) db.value()->pager().prefetch(p);
    EXPECT_GT(db.value()->pager().inflight(), 0u);
    auto got = co_await db.value()->get(1);  // joins in-flight I/O
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), value(KiB(60), 1));
  });
}

TEST_F(DbTest, JoinDriverRetrievesEveryRecord) {
  drive([&]() -> sim::Task<void> {
    auto db = co_await Database::create(
        host_, file_, "db", PagerConfig{KiB(8), 256});
    EXPECT_TRUE((co_await load_records(*db.value(), 20, KiB(60))).ok());
    auto keys = co_await db.value()->keys();
    EXPECT_TRUE(keys.ok());
    EXPECT_EQ(keys.value().size(), 20u);

    JoinConfig cfg;
    cfg.copy_per_record = KiB(16);
    cfg.window = 4;
    auto res = co_await run_join(host_, *db.value(), keys.value(), cfg);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.value().records, 20u);
    EXPECT_EQ(res.value().record_bytes, 20 * KiB(60));
    EXPECT_GT(res.value().throughput_MBps, 0.0);
  });
}

}  // namespace
}  // namespace ordma::db
