// Unit tests for the messaging layer: VI connections (both completion
// modes) and the UDP stack.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "host/host.h"
#include "msg/udp.h"
#include "msg/vi.h"
#include "net/fabric.h"
#include "nic/nic.h"
#include "sim/engine.h"

namespace ordma::msg {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 37 + seed) & 0xff);
  }
  return v;
}

class MsgTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  net::Fabric fabric_{eng_};
  host::Host ha_{eng_, "a", cm_};
  host::Host hb_{eng_, "b", cm_};
  nic::Nic na_{ha_, fabric_, {}, crypto::SipKey{1, 2}};
  nic::Nic nb_{hb_, fabric_, {}, crypto::SipKey{3, 4}};
};

TEST_F(MsgTest, ViConnectAndEcho) {
  constexpr std::uint32_t kListen = 100;
  ViListener listener(hb_, kListen, Completion::poll);
  const auto msg = pattern(10000);
  std::vector<std::byte> echoed;

  eng_.spawn([](ViListener& l, const std::vector<std::byte>& msg)
                 -> sim::Task<void> {
    auto conn = co_await l.accept();
    auto got = co_await conn->recv();
    EXPECT_EQ(got.size(), msg.size());
    co_await conn->send(std::move(got));  // echo back
  }(listener, msg));

  eng_.spawn([](host::Host& h, net::NodeId server,
                const std::vector<std::byte>& msg,
                std::vector<std::byte>& echoed) -> sim::Task<void> {
    auto conn = co_await vi_connect(h, server, kListen, Completion::poll);
    co_await conn->send(net::Buffer::copy_of(msg));
    auto back = co_await conn->recv();
    echoed.assign(back.view().begin(), back.view().end());
  }(ha_, nb_.node_id(), msg, echoed));

  eng_.run();
  EXPECT_EQ(echoed, msg);
}

TEST_F(MsgTest, ViBlockingModeIsSlowerThanPolling) {
  constexpr std::uint32_t kListen = 100;

  auto rtt = [&](Completion mode) {
    // Fresh engine state per run would be cleaner, but ports are distinct
    // per connection so reusing the cluster is fine.
    Duration result{};
    ViListener* listener = new ViListener(hb_, kListen + (mode == Completion::block ? 1 : 0), mode);
    eng_.spawn([](ViListener& l) -> sim::Task<void> {
      auto conn = co_await l.accept();
      for (int i = 0; i < 8; ++i) {
        auto m = co_await conn->recv();
        co_await conn->send(std::move(m));
      }
    }(*listener));
    eng_.spawn([](host::Host& h, net::NodeId server, std::uint32_t port,
                  Completion mode, Duration& out) -> sim::Task<void> {
      auto conn = co_await vi_connect(h, server, port, mode);
      const auto t0 = h.engine().now();
      for (int i = 0; i < 8; ++i) {
        co_await conn->send(net::Buffer::copy_of(pattern(1)));
        (void)co_await conn->recv();
      }
      out = Duration{(h.engine().now() - t0).ns / 8};
    }(ha_, nb_.node_id(), kListen + (mode == Completion::block ? 1 : 0),
      mode, result));
    eng_.run();
    delete listener;
    return result;
  };

  const Duration poll = rtt(Completion::poll);
  const Duration block = rtt(Completion::block);
  EXPECT_GT(block.ns, poll.ns + usec(20).ns);  // 2x ~15us wakeups
}

TEST_F(MsgTest, UdpRoundTripPreservesData) {
  UdpStack sa(ha_), sb(hb_);
  auto& client = sa.bind(2000);
  auto& server = sb.bind(53);
  const auto msg = pattern(30000);  // multi-fragment datagram
  std::vector<std::byte> echoed;

  eng_.spawn([](UdpStack::Socket& server) -> sim::Task<void> {
    auto d = co_await server.recv();
    co_await server.send_to(d.src, d.src_port, std::move(d.data));
  }(server));
  eng_.spawn([](UdpStack::Socket& client, net::NodeId dst,
                const std::vector<std::byte>& msg,
                std::vector<std::byte>& echoed) -> sim::Task<void> {
    co_await client.send_to(dst, 53, net::Buffer::copy_of(msg));
    auto d = co_await client.recv();
    echoed.assign(d.data.view().begin(), d.data.view().end());
  }(client, nb_.node_id(), msg, echoed));

  eng_.run();
  EXPECT_EQ(echoed, msg);
}

TEST_F(MsgTest, UdpToUnboundPortIsDropped) {
  UdpStack sa(ha_), sb(hb_);
  auto& client = sa.bind(2000);
  bool got = false;
  eng_.spawn([](UdpStack::Socket& client, net::NodeId dst)
                 -> sim::Task<void> {
    co_await client.send_to(dst, 999, net::Buffer::copy_of(pattern(64)));
  }(client, nb_.node_id()));
  eng_.run();
  EXPECT_FALSE(got);
  EXPECT_TRUE(eng_.idle());
}

TEST_F(MsgTest, UdpRddpPlacementFlowsThroughSocket) {
  UdpStack sa(ha_), sb(hb_);
  auto& client = sa.bind(2001);
  auto& server = sb.bind(54);
  (void)server;

  // Client pre-posts a buffer for xid 5; "server" (host a→b direction here:
  // we send b→a, so client a pre-posts) — send from b to a.
  auto& bsock = sb.bind(2002);
  const Bytes hdr = 32, dlen = 8192;
  const auto rpc_hdr = pattern(hdr, 2);
  const auto data = pattern(dlen, 3);
  std::vector<std::byte> dgram = rpc_hdr;
  dgram.insert(dgram.end(), data.begin(), data.end());

  const mem::Vaddr va = ha_.map_new(ha_.user_as(), dlen);
  na_.prepost(5, ha_.user_as(), va, dlen);

  std::optional<UdpDatagram> got;
  eng_.spawn([](UdpStack::Socket& s, std::optional<UdpDatagram>& got)
                 -> sim::Task<void> {
    got = co_await s.recv();
  }(client, got));
  eng_.spawn([](UdpStack::Socket& s, net::NodeId dst,
                std::vector<std::byte> dgram, Bytes hdr,
                Bytes dlen) -> sim::Task<void> {
    co_await s.send_to(dst, 2001, net::Buffer::take(std::move(dgram)), 5,
                       hdr, dlen);
  }(bsock, na_.node_id(), std::move(dgram), hdr, dlen));
  eng_.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->rddp_placed);
  EXPECT_EQ(got->data.size(), hdr);  // header only reached the stack
  std::vector<std::byte> placed(dlen);
  ASSERT_TRUE(ha_.user_as().read(va, placed).ok());
  EXPECT_EQ(placed, data);
}

}  // namespace
}  // namespace ordma::msg
