// Tail-latency explainer (obs/explain.h) over real cluster runs: the cause
// sweep must partition every op's envelope (per-cause times sum to the
// end-to-end latency within 2%), clean runs must charge time to the causes
// the protocol actually exercises, and a lossy run must blame its tail on
// rpc_retransmit dead air.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "common/assert.h"
#include "core/cluster.h"
#include "core/file_client.h"
#include "fault/fault.h"
#include "nas/odafs/odafs_client.h"
#include "obs/explain.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

constexpr Bytes kIo = KiB(8);

// Drive a coroutine to completion.
template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver did not finish (deadlock?)";
}

// Run `samples` preads of kIo twice — an untraced warm-up pass, then a
// traced measured pass — and explain the trace. Setup (file creation, open,
// warm-up) always runs with the fault injector disarmed; when
// `arm_measured` is set, faults fire only during the traced pass.
std::map<obs::OpId, obs::CauseBreakdown> run_and_explain(
    Cluster& c, core::FileClient& client, int samples,
    bool arm_measured = false) {
  fault::FaultInjector* inj = c.fault_injector();
  if (inj) inj->set_armed(false);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", static_cast<Bytes>(samples) * kIo,
                         /*warm=*/true);
  });

  obs::TraceRecorder rec;
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client.open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kIo);
    for (int i = 0; i < samples; ++i) {
      auto r = co_await client.pread(open.value().fh,
                                     static_cast<Bytes>(i) * kIo, buf, kIo);
      ORDMA_CHECK(r.ok() && r.value() == kIo);
    }
    if (inj && arm_measured) inj->set_armed(true);
    obs::install(&rec);
    for (int i = 0; i < samples; ++i) {
      auto r = co_await client.pread(open.value().fh,
                                     static_cast<Bytes>(i) * kIo, buf, kIo);
      ORDMA_CHECK(r.ok() && r.value() == kIo);
    }
    obs::install(static_cast<obs::TraceRecorder*>(nullptr));
    if (inj) inj->set_armed(false);
  });

  auto ops = obs::explain(rec);
  for (auto it = ops.begin(); it != ops.end();) {
    if (std::string_view(it->second.root_name) != "op/pread") {
      it = ops.erase(it);
    } else {
      ++it;
    }
  }
  return ops;
}

// The partition property: causes sum to the op's end-to-end latency.
void check_sums(const std::map<obs::OpId, obs::CauseBreakdown>& ops,
                int samples) {
  ASSERT_EQ(ops.size(), static_cast<std::size_t>(samples));
  for (const auto& [op, bd] : ops) {
    EXPECT_GT(bd.total_us, 0.0) << "op " << op;
    EXPECT_NEAR(bd.sum_us(), bd.total_us, 0.02 * bd.total_us)
        << "op " << op << " causes do not sum to its latency";
  }
}

double total(const std::map<obs::OpId, obs::CauseBreakdown>& ops,
             obs::Cause c) {
  double t = 0;
  for (const auto& [op, bd] : ops) t += bd[c];
  return t;
}

TEST(Explain, NfsCleanRunSumsAndBlamesRealWork) {
  Cluster c;
  c.start_nfs();
  auto client = c.make_nfs_client(0);
  const auto ops = run_and_explain(c, *client, 16);
  check_sums(ops, 16);
  // A clean warm-cache NFS read spends time on both hosts' CPUs, the NIC
  // and the wire — and on nothing pathological.
  EXPECT_GT(total(ops, obs::Cause::client_cpu), 0.0);
  EXPECT_GT(total(ops, obs::Cause::server_cpu), 0.0);
  EXPECT_GT(total(ops, obs::Cause::nic), 0.0);
  EXPECT_GT(total(ops, obs::Cause::wire), 0.0);
  EXPECT_EQ(total(ops, obs::Cause::rpc_retransmit), 0.0);
  EXPECT_EQ(total(ops, obs::Cause::disk_media), 0.0);
  EXPECT_EQ(total(ops, obs::Cause::disk_queue), 0.0);
}

TEST(Explain, DafsCleanRunSums) {
  Cluster c;
  c.start_dafs();
  nas::dafs::DafsClientConfig cfg;
  cfg.completion = msg::Completion::block;
  auto client = c.make_dafs_client(0, cfg);
  const auto ops = run_and_explain(c, *client, 16);
  check_sums(ops, 16);
  EXPECT_GT(total(ops, obs::Cause::nic), 0.0);
  EXPECT_GT(total(ops, obs::Cause::wire), 0.0);
}

TEST(Explain, OdafsCleanRunSumsAndSeesCacheFills) {
  ClusterConfig cc;
  cc.fs.block_size = kIo;
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kIo;
  // Fewer data blocks than the measured range: the traced pass misses the
  // data cache, finds harvested references and goes ORDMA (the §5.2 setup).
  cfg.cache.data_blocks = 8;
  cfg.cache.max_headers = 64;
  cfg.dafs.completion = msg::Completion::block;
  auto client = c.make_odafs_client(0, cfg);
  auto* odafs = client.get();
  const auto ops = run_and_explain(c, *client, 16);
  check_sums(ops, 16);
  EXPECT_GT(odafs->ordma_reads(), 0u);
  EXPECT_GT(total(ops, obs::Cause::cache_fill), 0.0);
  EXPECT_GT(total(ops, obs::Cause::wire), 0.0);
}

TEST(Explain, LossyRunBlamesTheTailOnRetransmits) {
  ClusterConfig cc;
  cc.faults = fault::FaultPlan{};  // deterministic seed 1
  cc.faults->eth.drop = 0.05;
  cc.rpc_retry.timeout = usec(500);
  cc.rpc_retry.max_attempts = 8;
  Cluster c(cc);
  c.start_nfs();
  auto client = c.make_nfs_client(0);
  const auto ops = run_and_explain(c, *client, 48, /*arm_measured=*/true);
  check_sums(ops, 48);

  // The seeded drops forced at least one retransmit, and the slowest op is
  // dominated by its backoff dead air — the explainer names the culprit.
  EXPECT_GT(total(ops, obs::Cause::rpc_retransmit), 0.0);
  const auto top = obs::slowest(ops, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_GT(top[0][obs::Cause::rpc_retransmit], 0.0);
  EXPECT_EQ(top[0].dominant(), obs::Cause::rpc_retransmit)
      << "slowest op dominated by " << obs::cause_name(top[0].dominant());
}

// With the tail sampler between the clients and the recorder, the explain
// document's per-cause "exemplars" are op ids whose traces were *kept* —
// the reader can jump from cause to retained trace.
TEST(Explain, ExemplarsAreKeptOpIdsUnderSampling) {
  ClusterConfig cc;
  cc.faults = fault::FaultPlan{};  // deterministic seed 1
  cc.faults->eth.drop = 0.05;
  cc.rpc_retry.timeout = usec(500);
  cc.rpc_retry.max_attempts = 8;
  Cluster c(cc);
  c.start_nfs();
  auto client = c.make_nfs_client(0);

  fault::FaultInjector* inj = c.fault_injector();
  inj->set_armed(false);
  constexpr int kSamples = 48;
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", static_cast<Bytes>(kSamples) * kIo,
                         /*warm=*/true);
  });

  obs::TraceRecorder rec;
  obs::TraceSampler sampler(rec);
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kIo);
    inj->set_armed(true);
    obs::install(&rec);
    for (int i = 0; i < kSamples; ++i) {
      auto r = co_await client->pread(open.value().fh,
                                      static_cast<Bytes>(i) * kIo, buf, kIo);
      ORDMA_CHECK(r.ok() && r.value() == kIo);
    }
    obs::install(static_cast<obs::TraceRecorder*>(nullptr));
    inj->set_armed(false);
  });
  sampler.finish();

  // The recorder now holds only kept ops; the seeded drops guarantee at
  // least one retried (hence kept) op.
  ASSERT_GT(sampler.ops_kept(), 0u);
  ASSERT_LT(sampler.ops_kept(), sampler.ops_decided());
  auto ops = obs::explain(rec);
  ASSERT_FALSE(ops.empty());
  for (const auto& [op, bd] : ops) {
    EXPECT_TRUE(sampler.kept(op)) << "explained op " << op << " not kept";
  }

  std::ostringstream os;
  obs::write_explain_json(os, "sampled", ops);
  const std::string doc = os.str();
  const auto ex = doc.find("\"exemplars\"");
  ASSERT_NE(ex, std::string::npos);
  // The retransmit-dominated tail has a nonzero exemplar, and it is kept.
  const auto key = doc.find("\"rpc_retransmit\": ", ex);
  ASSERT_NE(key, std::string::npos);
  const obs::OpId exemplar = std::stoull(
      doc.substr(key + std::string_view("\"rpc_retransmit\": ").size()));
  EXPECT_NE(exemplar, 0u);
  EXPECT_TRUE(sampler.kept(exemplar));
}

}  // namespace
}  // namespace ordma
