// Parallel experiment runner: bit-identical results and thread isolation.
//
// The tentpole claim of run/runner.h is that a sweep of independent
// simulations run at jobs=8 produces byte-for-byte the same per-run results
// as the historical serial loop — hashes, metrics snapshots, explain
// documents, everything. These tests pin that claim, plus the isolation
// that makes it true: concurrent simulations never observe each other's
// trace spans, flight rings, metrics entries, or log levels, because every
// observability install is thread-local.
#include <gtest/gtest.h>

#include <barrier>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/cluster.h"
#include "mem/arena.h"
#include "obs/explain.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "run/runner.h"

namespace ordma {
namespace {

void fold(std::uint64_t& h, std::uint64_t v) {
  h = (h ^ v) * 0x100000001b3ull;
}

// One self-contained simulation: a small NFS cluster reading a file with a
// per-run block size, fully observed (trace + metrics installed on the
// executing thread). Returns every kind of result a sweep could want, all
// as plain data.
struct RunOutput {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  std::size_t trace_events = 0;
  std::string metrics_json;
  std::string explain_json;
};

RunOutput observed_run(std::size_t index) {
  obs::TraceRecorder rec;
  obs::install(&rec);
  obs::MetricsRegistry reg;
  obs::install(&reg);

  RunOutput out;
  {
    core::ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    core::Cluster c(cc);
    c.start_nfs();
    c.export_metrics(reg);

    // Per-index workload variation so runs are genuinely distinct.
    const Bytes io = KiB(4) * (1 + index % 4);
    const Bytes fsize = KiB(64);

    bool done = false;
    c.engine().spawn([](core::Cluster& c, Bytes io, Bytes fsize,
                        RunOutput& out, bool& done) -> sim::Task<void> {
      co_await c.make_file("f", fsize, /*warm=*/true);
      auto client = c.make_nfs_client(0, io);
      auto open = co_await client->open("f");
      ORDMA_CHECK(open.ok());
      auto& h = c.client(0);
      const mem::Vaddr buf = h.map_new(h.user_as(), io);
      for (Bytes off = 0; off + io <= fsize; off += io) {
        auto n = co_await client->pread(open.value().fh, off, buf, io);
        ORDMA_CHECK(n.ok());
        fold(out.hash, n.value());
        fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
      }
      done = true;
    }(c, io, fsize, out, done));
    fold(out.hash, c.engine().run());
    ORDMA_CHECK(done);
    fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));

    // Snapshot metrics while the cluster (and its gauges) is alive.
    std::ostringstream ms;
    reg.write_json(ms);
    out.metrics_json = ms.str();
  }

  out.trace_events = rec.event_count();
  std::ostringstream es;
  obs::write_explain_json(es, "parallel determinism probe",
                          obs::explain(rec));
  out.explain_json = es.str();

  obs::install(static_cast<obs::TraceRecorder*>(nullptr));
  obs::install(static_cast<obs::MetricsRegistry*>(nullptr));
  return out;
}

TEST(ParallelDeterminism, ParallelRunsAreBitIdenticalToSerial) {
  constexpr std::size_t kRuns = 16;
  const auto serial = run::parallel_map(1, kRuns, observed_run);
  const auto parallel = run::parallel_map(8, kRuns, observed_run);

  ASSERT_EQ(serial.size(), kRuns);
  ASSERT_EQ(parallel.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(serial[i].hash, parallel[i].hash) << "run " << i;
    EXPECT_GT(serial[i].trace_events, 0u) << "run " << i;
    EXPECT_EQ(serial[i].trace_events, parallel[i].trace_events)
        << "run " << i;
    EXPECT_EQ(serial[i].metrics_json, parallel[i].metrics_json)
        << "run " << i;
    EXPECT_EQ(serial[i].explain_json, parallel[i].explain_json)
        << "run " << i;
  }
  // The workload variation must have produced distinct runs, or the
  // comparison proves less than it claims.
  EXPECT_NE(serial[0].hash, serial[1].hash);
}

// The per-run arena (mem/arena.h) relocates the engine's timer slabs and
// calendar storage; it must never change what a simulation computes. Pin
// the full observed output — golden hash, trace, metrics, explain — of
// arena-backed runs (including a *reused* arena, the steady state of a
// sweep) against bare heap-backed runs.
TEST(ParallelDeterminism, ArenaOnMatchesArenaOffBitForBit) {
  constexpr std::size_t kRuns = 4;
  const auto bare = run::parallel_map(1, kRuns, observed_run);
  auto arena_run = [](std::size_t i) {
    mem::ScopedSimArena arena;
    return observed_run(i);
  };
  const auto arena_first = run::parallel_map(1, kRuns, arena_run);
  // Second pass reuses the reset arenas out of the thread's pool.
  const auto arena_reused = run::parallel_map(1, kRuns, arena_run);

  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(bare[i].hash, arena_first[i].hash) << "run " << i;
    EXPECT_EQ(bare[i].hash, arena_reused[i].hash) << "run " << i;
    EXPECT_EQ(bare[i].trace_events, arena_first[i].trace_events)
        << "run " << i;
    EXPECT_EQ(bare[i].metrics_json, arena_first[i].metrics_json)
        << "run " << i;
    EXPECT_EQ(bare[i].explain_json, arena_first[i].explain_json)
        << "run " << i;
    EXPECT_EQ(bare[i].metrics_json, arena_reused[i].metrics_json)
        << "run " << i;
  }
}

// One sweep cell producing a timeseries document: installs its own
// thread-local TimeseriesSink (the TlsCtx isolation contract — each worker
// is its own timeseries domain), runs a small observed cluster workload
// under a RunScope, and returns the serialized document.
std::string timeseries_run(std::size_t index) {
  mem::ScopedSimArena arena;
  obs::ts::TimeseriesConfig cfg;
  cfg.interval = usec(20);
  obs::ts::TimeseriesSink sink(obs::ts::TimeseriesSink::Format::json, cfg);
  obs::ts::install(&sink);

  {
    core::ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    core::Cluster c(cc);
    c.start_nfs();
    const Bytes io = KiB(4) * (1 + index % 4);
    const Bytes fsize = KiB(64);
    auto client = c.make_nfs_client(0, io);

    obs::ts::RunScope ts_run(c.engine(), "cell" + std::to_string(index));
    EXPECT_TRUE(ts_run.active());
    c.export_metrics(ts_run.registry());

    bool done = false;
    c.engine().spawn([](core::Cluster& c, core::FileClient& client, Bytes io,
                        Bytes fsize, bool& done) -> sim::Task<void> {
      co_await c.make_file("f", fsize, /*warm=*/true);
      auto open = co_await client.open("f");
      ORDMA_CHECK(open.ok());
      auto& h = c.client(0);
      const mem::Vaddr buf = h.map_new(h.user_as(), io);
      for (Bytes off = 0; off + io <= fsize; off += io) {
        auto n = co_await client.pread(open.value().fh, off, buf, io);
        ORDMA_CHECK(n.ok());
      }
      done = true;
    }(c, *client, io, fsize, done));
    c.engine().run();
    EXPECT_TRUE(done);
  }

  obs::ts::install(nullptr);
  EXPECT_EQ(sink.runs(), 1u);
  return sink.runs() ? sink.doc(0) : std::string();
}

TEST(ParallelDeterminism, TimeseriesDocumentsAreBitIdenticalToSerial) {
  constexpr std::size_t kRuns = 8;
  const auto serial = run::parallel_map(1, kRuns, timeseries_run);
  const auto parallel = run::parallel_map(8, kRuns, timeseries_run);
  ASSERT_EQ(serial.size(), kRuns);
  ASSERT_EQ(parallel.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_FALSE(serial[i].empty()) << "run " << i;
    EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
  }
  // Distinct workloads produced distinct documents, so byte-equality above
  // is meaningful.
  EXPECT_NE(serial[0], serial[1]);
}

// The same observed run, but with a TraceSampler between the clients and
// the recorder (the --sample-traces path). Returns the golden hash plus
// the sampler's decision accounting — everything a worker-count change
// could perturb.
struct SampledOutput {
  std::uint64_t hash = 0;
  std::uint64_t ops_decided = 0;
  std::uint64_t ops_kept = 0;
  std::uint64_t events_kept = 0;
  std::size_t trace_events = 0;
  std::string explain_json;
};

SampledOutput sampled_run(std::size_t index) {
  obs::TraceRecorder rec;
  obs::TraceSampler sampler(rec);
  obs::install(&rec);

  SampledOutput out;
  out.hash = 0xcbf29ce484222325ull;
  {
    core::ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    core::Cluster c(cc);
    c.start_nfs();

    // The workload mirrors observed_run exactly (same construction order,
    // same I/O sequence) so the two golden hashes are comparable.
    const Bytes io = KiB(4) * (1 + index % 4);
    const Bytes fsize = KiB(64);

    bool done = false;
    c.engine().spawn([](core::Cluster& c, Bytes io, Bytes fsize,
                        SampledOutput& out, bool& done) -> sim::Task<void> {
      co_await c.make_file("f", fsize, /*warm=*/true);
      auto client = c.make_nfs_client(0, io);
      auto open = co_await client->open("f");
      ORDMA_CHECK(open.ok());
      auto& h = c.client(0);
      const mem::Vaddr buf = h.map_new(h.user_as(), io);
      for (Bytes off = 0; off + io <= fsize; off += io) {
        auto n = co_await client->pread(open.value().fh, off, buf, io);
        ORDMA_CHECK(n.ok());
        fold(out.hash, n.value());
        fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
      }
      done = true;
    }(c, io, fsize, out, done));
    fold(out.hash, c.engine().run());
    ORDMA_CHECK(done);
    fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
  }
  obs::install(static_cast<obs::TraceRecorder*>(nullptr));

  sampler.finish();
  out.ops_decided = sampler.ops_decided();
  out.ops_kept = sampler.ops_kept();
  out.events_kept = sampler.events_kept();
  out.trace_events = rec.event_count();
  std::ostringstream es;
  obs::write_explain_json(es, "sampled parallel determinism probe",
                          obs::explain(rec));
  out.explain_json = es.str();
  return out;
}

// --sample-traces at jobs=8 vs jobs=1: bit-identical golden hashes,
// decisions, kept sets, and explain documents — and the golden hash
// matches the *unsampled* runs, pinning "sampling never perturbs the
// simulation" across worker counts.
TEST(ParallelDeterminism, SampledRunsAreBitIdenticalToSerial) {
  constexpr std::size_t kRuns = 8;
  const auto serial = run::parallel_map(1, kRuns, sampled_run);
  const auto parallel = run::parallel_map(8, kRuns, sampled_run);
  const auto unsampled = run::parallel_map(8, kRuns, observed_run);

  ASSERT_EQ(serial.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(serial[i].hash, parallel[i].hash) << "run " << i;
    EXPECT_EQ(serial[i].hash, unsampled[i].hash) << "run " << i;
    EXPECT_EQ(serial[i].ops_decided, parallel[i].ops_decided) << "run " << i;
    EXPECT_EQ(serial[i].ops_kept, parallel[i].ops_kept) << "run " << i;
    EXPECT_EQ(serial[i].events_kept, parallel[i].events_kept)
        << "run " << i;
    EXPECT_EQ(serial[i].trace_events, parallel[i].trace_events)
        << "run " << i;
    EXPECT_EQ(serial[i].explain_json, parallel[i].explain_json)
        << "run " << i;
    // Sampling genuinely dropped something and kept something.
    EXPECT_GT(serial[i].ops_decided, 0u) << "run " << i;
    EXPECT_GT(serial[i].ops_kept, 0u) << "run " << i;
    EXPECT_LT(serial[i].trace_events, unsampled[i].trace_events)
        << "run " << i;
  }
}

// Health documents collected through the process-global HealthSink are
// byte-identical whether the sweep ran serial or 8-wide: the sink is
// mutexed and label-sorted, so worker interleaving cannot reorder output.
std::string health_run(std::size_t index) {
  mem::ScopedSimArena arena;
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  core::Cluster c(cc);
  c.start_nfs();
  const Bytes io = KiB(4) * (1 + index % 4);
  const Bytes fsize = KiB(64);
  auto client = c.make_nfs_client(0, io);

  obs::MetricsRegistry reg;
  c.export_metrics(reg);
  c.export_file_client_metrics(reg, 0, *client);
  obs::health::HealthMonitor mon(reg);
  mon.arm(c.engine(), usec(20));

  bool done = false;
  c.engine().spawn([](core::Cluster& c, core::FileClient& client, Bytes io,
                      Bytes fsize, bool& done) -> sim::Task<void> {
    co_await c.make_file("f", fsize, /*warm=*/true);
    auto open = co_await client.open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), io);
    for (Bytes off = 0; off + io <= fsize; off += io) {
      auto n = co_await client.pread(open.value().fh, off, buf, io);
      ORDMA_CHECK(n.ok());
    }
    done = true;
  }(c, *client, io, fsize, done));
  c.engine().run();
  ORDMA_CHECK(done);

  std::ostringstream os;
  mon.write_json(os, "cell" + std::to_string(index));
  return os.str();
}

TEST(ParallelDeterminism, HealthDocumentsAreBitIdenticalToSerial) {
  constexpr std::size_t kRuns = 8;
  const auto serial = run::parallel_map(1, kRuns, health_run);
  const auto parallel = run::parallel_map(8, kRuns, health_run);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_FALSE(serial[i].empty()) << "run " << i;
    EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
    EXPECT_NE(serial[i].find("\"schema\":\"ordma.health.v1\""),
              std::string::npos)
        << "run " << i;
  }
}

// One ODAFS run with the adaptive protocol-selection engine in a given
// state: a mixed read/write workload against a coherent, writable-refs
// server, fully observed. The policy engine decides per-op mechanisms from
// observed history only (no RNG, no sim time), so its presence must never
// perturb parallel determinism — and with enabled=false it must leave the
// simulation bit-identical to one that predates the engine.
RunOutput odafs_run(std::size_t index, const policy::PolicyConfig& pol) {
  mem::ScopedSimArena arena;
  obs::MetricsRegistry reg;
  obs::install(&reg);

  RunOutput out;
  {
    core::ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    core::Cluster c(cc);
    c.start_dafs({.piggyback_refs = true,
                  .writable_refs = true,
                  .coherence = true});

    nas::odafs::OdafsClientConfig cfg;
    cfg.cache.block_size = KiB(4);
    cfg.cache.data_blocks = 16;  // small: plenty of refetches to decide on
    cfg.cache.ref_policy = "arc";
    cfg.dafs.completion = msg::Completion::block;
    cfg.read_ahead_window = 1;
    cfg.write_policy = nas::odafs::WritePolicy::put_through;
    cfg.policy = pol;
    auto client = c.make_odafs_client(0, cfg);
    c.export_metrics(reg);
    c.export_file_client_metrics(reg, 0, *client);
    c.export_odafs_client_metrics(reg, 0, *client);

    const Bytes io = KiB(4);
    const Bytes fsize = KiB(4) * 48 * (1 + index % 2);

    bool done = false;
    c.engine().spawn([](core::Cluster& c, nas::odafs::OdafsClient& client,
                        Bytes io, Bytes fsize, RunOutput& out,
                        bool& done) -> sim::Task<void> {
      co_await c.make_file("f", fsize, /*warm=*/true);
      auto open = co_await client.open("f");
      ORDMA_CHECK(open.ok());
      auto& h = c.client(0);
      const mem::Vaddr buf = h.map_new(h.user_as(), io);
      // Two passes (second one re-reads through held references, so the
      // engine sees real ORDMA latencies) with a write every 4th op.
      for (int pass = 0; pass < 2; ++pass) {
        for (Bytes off = 0; off + io <= fsize; off += io) {
          if ((off / io) % 4 == 3) {
            auto n = co_await client.pwrite(open.value().fh, off, buf, io);
            ORDMA_CHECK(n.ok());
            fold(out.hash, 0x77);
          } else {
            auto n = co_await client.pread(open.value().fh, off, buf, io);
            ORDMA_CHECK(n.ok());
            fold(out.hash, n.value());
          }
          fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
        }
      }
      ORDMA_CHECK((co_await client.sync()).ok());
      done = true;
    }(c, *client, io, fsize, out, done));
    fold(out.hash, c.engine().run());
    ORDMA_CHECK(done);
    fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
    fold(out.hash, client->ordma_reads());
    fold(out.hash, client->rpc_reads());
    fold(out.hash, client->puts_issued());
    fold(out.hash, client->protocol_policy().counters().read_decisions);
    fold(out.hash, client->protocol_policy().counters().write_decisions);

    std::ostringstream ms;
    reg.write_json(ms);
    out.metrics_json = ms.str();
  }
  obs::install(static_cast<obs::MetricsRegistry*>(nullptr));
  return out;
}

// Adaptive policy on: jobs=8 bit-identical to jobs=1 — the engine's
// decisions are pure functions of per-run history, so worker count cannot
// perturb them.
TEST(ParallelDeterminism, AdaptivePolicyRunsAreBitIdenticalToSerial) {
  constexpr std::size_t kRuns = 8;
  auto adaptive = [](std::size_t i) {
    policy::PolicyConfig pol;
    pol.enabled = true;
    pol.explore_every = 16;
    return odafs_run(i, pol);
  };
  const auto serial = run::parallel_map(1, kRuns, adaptive);
  const auto parallel = run::parallel_map(8, kRuns, adaptive);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(serial[i].hash, parallel[i].hash) << "run " << i;
    EXPECT_EQ(serial[i].metrics_json, parallel[i].metrics_json)
        << "run " << i;
  }
  EXPECT_NE(serial[0].hash, serial[1].hash);
}

// Policy off: the engine must be invisible. A config that never mentions
// the policy and one with enabled=false but wildly different tunables must
// produce byte-identical runs (no decisions, no extra state transitions,
// no RNG draws either way).
TEST(ParallelDeterminism, DisabledPolicyLeavesRunsBitIdentical) {
  constexpr std::size_t kRuns = 4;
  const auto plain = run::parallel_map(8, kRuns, [](std::size_t i) {
    return odafs_run(i, policy::PolicyConfig{});
  });
  const auto tuned_off = run::parallel_map(8, kRuns, [](std::size_t i) {
    policy::PolicyConfig pol;  // enabled stays false
    pol.prior_ordma_us = 999.0;
    pol.guard_band = 0.5;
    pol.explore_every = 1;
    return odafs_run(i, pol);
  });
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(plain[i].hash, tuned_off[i].hash) << "run " << i;
    EXPECT_EQ(plain[i].metrics_json, tuned_off[i].metrics_json)
        << "run " << i;
  }
}

TEST(ParallelDeterminism, ResultsArriveInSubmissionOrder) {
  auto out = run::parallel_map(4, 64, [](std::size_t i) { return i * 3; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(ParallelDeterminism, FirstJobExceptionPropagates) {
  EXPECT_THROW(
      run::parallel_map(4, 16,
                        [](std::size_t i) -> int {
                          if (i == 7) throw std::runtime_error("job 7");
                          return 0;
                        }),
      std::runtime_error);
}

// What each concurrently-running job observed of the per-thread
// observability state, collected while all jobs were provably in flight
// (barrier-synchronized) and asserted on the main thread.
struct IsolationProbe {
  std::size_t rings_before = 0;   // live flight rings before creating ours
  std::string flight_dump;        // dump_all while every job held a ring
  std::size_t trace_events = 0;   // events in this thread's recorder
  std::size_t metrics_entries = 0;
  std::string run_label;
  int log_level = 0;
};

TEST(ParallelDeterminism, ConcurrentSimulationsNeverObserveEachOther) {
  constexpr unsigned kJobs = 4;
  // With exactly one job per worker no stealing happens, so all four run
  // concurrently and the barriers cannot deadlock.
  std::barrier gate(kJobs);
  run::ParallelRunner runner(kJobs);
  auto probes = runner.map(kJobs, [&gate](std::size_t i) {
    IsolationProbe p;
    const LogLevel prev_level = Log::level();
    Log::level() = static_cast<LogLevel>(i % 3);
    obs::flight::set_run_label("iso" + std::to_string(i));

    obs::TraceRecorder rec;
    obs::install(&rec);
    obs::MetricsRegistry reg;
    obs::install(&reg);

    p.rings_before = [] {
      // Count rings indirectly: a dump with no rings is header + "end".
      return obs::flight::dump_all_string("probe").find("ring ") ==
                     std::string::npos
                 ? 0
                 : 1;
    }();

    obs::flight::Ring ring("ring" + std::to_string(i), 64);
    ring.record(0, obs::flight::Ev::cache_hit, i);

    obs::Track track("host" + std::to_string(i), "cpu");
    obs::span(track, obs::new_op(), "io/probe", SimTime{0},
              SimTime{static_cast<std::int64_t>(i + 1)});
    reg.counter("job" + std::to_string(i) + "/count").inc();

    // Every job now holds a live ring, recorder and registry. Only after
    // all of them do, snapshot what this thread can see.
    gate.arrive_and_wait();
    p.flight_dump = obs::flight::dump_all_string("isolation");
    p.trace_events = rec.event_count();
    p.metrics_entries = reg.size();
    p.run_label = obs::flight::run_label();
    p.log_level = static_cast<int>(Log::level());
    gate.arrive_and_wait();  // no teardown until everyone has snapshotted

    obs::install(static_cast<obs::TraceRecorder*>(nullptr));
    obs::install(static_cast<obs::MetricsRegistry*>(nullptr));
    obs::flight::set_run_label({});
    Log::level() = prev_level;  // worker 0 is the calling thread
    return p;
  });

  ASSERT_EQ(probes.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    const IsolationProbe& p = probes[i];
    EXPECT_EQ(p.rings_before, 0u) << "job " << i;
    // The dump names this job's ring — and nobody else's.
    EXPECT_NE(p.flight_dump.find("ring ring" + std::to_string(i)),
              std::string::npos)
        << "job " << i;
    for (std::size_t j = 0; j < kJobs; ++j) {
      if (j == i) continue;
      EXPECT_EQ(p.flight_dump.find("ring ring" + std::to_string(j)),
                std::string::npos)
          << "job " << i << " saw job " << j << "'s ring";
    }
    EXPECT_NE(p.flight_dump.find("job=iso" + std::to_string(i)),
              std::string::npos)
        << "job " << i;
    EXPECT_EQ(p.trace_events, 1u) << "job " << i;
    EXPECT_EQ(p.metrics_entries, 1u) << "job " << i;
    EXPECT_EQ(p.run_label, "iso" + std::to_string(i));
    EXPECT_EQ(p.log_level, static_cast<int>(i % 3)) << "job " << i;
  }
  // The main thread's state was never touched by any worker.
  EXPECT_EQ(obs::recorder(), nullptr);
  EXPECT_EQ(obs::registry(), nullptr);
  EXPECT_TRUE(obs::flight::run_label().empty());
}

TEST(ParallelDeterminism, LogLevelDefaultsAreThreadLocal) {
  const LogLevel before = Log::level();
  Log::set_default_level(LogLevel::info);
  // A fresh thread starts from the process-wide default, and changing its
  // own level must not leak into this thread. (A bare std::thread rather
  // than the runner, because the runner's worker 0 IS this thread.)
  int spawned_initial = -1;
  std::thread t([&spawned_initial] {
    spawned_initial = static_cast<int>(Log::level());
    Log::level() = LogLevel::trace;
  });
  t.join();
  EXPECT_EQ(spawned_initial, static_cast<int>(LogLevel::info));
  EXPECT_EQ(Log::level(), LogLevel::info);
  Log::set_default_level(before);
}

}  // namespace
}  // namespace ordma
