// Cross-module integration tests live in this directory; this smoke test
// keeps the binary non-empty while modules land.
#include <gtest/gtest.h>

#include "sim/engine.h"

TEST(Smoke, EngineRuns) {
  ordma::sim::Engine eng;
  bool fired = false;
  eng.schedule_fn(ordma::usec(1), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
}
