// Sharing oracle for the ORDMA write path: several clients hammer one file
// with whole-block self-describing writes while a shadow of every commit
// (version, writer, time, content fingerprint) is recorded off the server's
// commit observer. Every read is then checked against the commit history:
//
//  * no torn blocks — a block's bytes always decode to exactly one write;
//  * no stale committed reads — content may be observed only while it is
//    the latest committed version, OR while its write is still in flight
//    (optimistic puts place bytes before they commit, and write-back holds
//    dirty data locally), never after a newer commit's invalidations have
//    been acknowledged;
//  * no lost writes — the server's final content per block is the
//    highest-version commit's content.
//
// Runs across seeds, write policies (put_through, write_back, mixed with
// plain RPC write-through) and a revoke-during-put fault plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "nas/wire_util.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;
namespace odafs = nas::odafs;

constexpr Bytes kBlock = KiB(4);  // server block == client block
constexpr std::uint64_t kBlocks = 6;
constexpr Bytes kFileSize = kBlocks * kBlock;

// Self-describing whole-block content: the 64-bit write id in the first 8
// bytes, the remainder a keyed LCG stream. Decoding recovers the id;
// re-encoding and comparing catches torn (mixed-version) blocks.
std::vector<std::byte> encode_block(std::uint64_t id) {
  std::vector<std::byte> out(kBlock);
  for (unsigned i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((id >> (8 * i)) & 0xff);
  }
  std::uint64_t x = id * 0x9E3779B97F4A7C15ull + 1;
  for (Bytes i = 8; i < kBlock; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

std::uint64_t decode_id(std::span<const std::byte> b) {
  std::uint64_t id = 0;
  for (unsigned i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
  return id;
}

struct CommitRec {
  std::uint64_t version = 0;
  std::uint64_t writer = 0;
  std::uint64_t t = 0;  // ns; post-invalidation-ack commit point
  std::uint32_t cksum = 0;
};

struct WriteRec {
  std::uint64_t id = 0;
  std::uint64_t t_start = 0;
  bool acked = false;  // pwrite returned success
};

struct ReadRec {
  unsigned client = 0;
  std::uint64_t block = 0;
  std::uint64_t id = 0;
  std::uint64_t t0 = 0, t1 = 0;
  bool torn = false;
};

struct Oracle {
  std::map<std::uint64_t, std::vector<CommitRec>> commits;  // block → log
  std::map<std::uint64_t, std::vector<WriteRec>> writes;    // block → writes
  std::map<std::uint32_t, std::uint64_t> id_by_cksum;
  std::vector<ReadRec> reads;

  void note_content(std::uint64_t id) {
    id_by_cksum[nas::data_checksum(encode_block(id))] = id;
  }

  // Was content `id` plausibly observable somewhere in [t0, t1]?
  bool observable(std::uint64_t block, std::uint64_t id, std::uint64_t t0,
                  std::uint64_t t1) const {
    auto wit = writes.find(block);
    if (wit == writes.end()) return false;
    bool placed = false;
    for (const auto& w : wit->second) {
      if (w.id == id && w.t_start <= t1) placed = true;
    }
    if (!placed) return false;
    // Highest version this content committed at (0 = uncommitted: an
    // optimistic put in flight or local dirty data — always allowed).
    std::uint64_t v = 0;
    auto cit = commits.find(block);
    if (cit == commits.end()) return true;
    for (const auto& cr : cit->second) {
      auto idit = id_by_cksum.find(cr.cksum);
      if (idit != id_by_cksum.end() && idit->second == id) {
        v = std::max(v, cr.version);
      }
    }
    if (v == 0) return true;
    // Obsolete once any higher version reaches its commit point: by then
    // every stale copy has acknowledged its invalidation.
    std::uint64_t obsolete_t = ~std::uint64_t{0};
    for (const auto& cr : cit->second) {
      if (cr.version > v) obsolete_t = std::min(obsolete_t, cr.t);
    }
    return obsolete_t >= t0;
  }
};

template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver did not finish (deadlock?)";
}

odafs::OdafsClientConfig client_cfg(odafs::WritePolicy policy) {
  odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = kBlock;
  cfg.cache.data_blocks = 32;
  cfg.cache.max_headers = 1 << 14;
  cfg.use_ordma = true;
  cfg.write_policy = policy;
  return cfg;
}

struct RunConfig {
  std::uint64_t seed = 1;
  std::vector<odafs::WritePolicy> policies;  // one per client
  unsigned rounds = 40;
  bool faults = false;       // revoke-during-put + frame duplication
  bool strict_final = true;  // final content must be the last commit
};

void run_sharing_oracle(const RunConfig& rc) {
  ClusterConfig cc;
  cc.num_clients = static_cast<unsigned>(rc.policies.size());
  cc.fs.block_size = kBlock;
  if (rc.faults) {
    fault::FaultPlan plan;  // targeted: puts revoked mid-flight, dup frames
    plan.seed = rc.seed;
    plan.nic.put_cap_revoke = 0.05;
    plan.gm.duplicate = 0.02;
    cc.faults = plan;
  }
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true,
                .writable_refs = true,
                .coherence = true});

  Oracle oracle;
  fs::Ino ino = 0;

  // Setup: every block starts as a known write (id = 1000 + block).
  drive(c, [&]() -> sim::Task<void> {
    auto created =
        c.server_fs().create(fs::ServerFs::kRootIno, "f", fs::FileType::regular);
    ORDMA_CHECK(created.ok());
    ino = created.value();
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      const std::uint64_t id = 1000 + b;
      oracle.note_content(id);
      oracle.writes[b].push_back({id, 0, true});
      const auto bytes = encode_block(id);
      auto n = co_await c.server_fs().write(ino, b * kBlock, bytes);
      ORDMA_CHECK(n.ok() && n.value() == kBlock);
    }
    ORDMA_CHECK((co_await c.server_fs().warm(ino)).ok());
  });

  c.dafs_server().set_commit_observer(
      [&oracle](fs::Ino, std::uint64_t fbn, std::uint64_t version,
                std::uint64_t writer, SimTime when, std::uint32_t cksum) {
        oracle.commits[fbn].push_back({version, writer, when.ns, cksum});
      });

  std::vector<std::unique_ptr<odafs::OdafsClient>> clients;
  for (unsigned i = 0; i < cc.num_clients; ++i) {
    clients.push_back(c.make_odafs_client(i, client_cfg(rc.policies[i])));
  }

  // Concurrent client mix: each client interleaves reads and whole-block
  // writes over a shared block set, driven by its own deterministic LCG.
  unsigned finished = 0;
  for (unsigned ci = 0; ci < cc.num_clients; ++ci) {
    c.engine().spawn([](Cluster& c, Oracle& oracle, odafs::OdafsClient& cl,
                        unsigned ci, const RunConfig& rc,
                        unsigned& finished) -> sim::Task<void> {
      std::uint64_t rng = rc.seed * 0x9E3779B97F4A7C15ull + ci + 1;
      auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 16;
      };
      auto open = co_await cl.open("f");
      ORDMA_CHECK(open.ok());
      const std::uint64_t fh = open.value().fh;
      auto& h = c.client(ci);
      const mem::Vaddr buf = h.map_new(h.user_as(), kBlock);

      std::uint64_t seq = 0;
      for (unsigned r = 0; r < rc.rounds; ++r) {
        const std::uint64_t b = next() % kBlocks;
        if (next() % 2 == 0) {
          // Whole-block write with a globally unique, decodable id.
          const std::uint64_t id =
              (static_cast<std::uint64_t>(ci + 1) << 32) | ++seq;
          oracle.note_content(id);
          auto& rec =
              oracle.writes[b].emplace_back(WriteRec{id, 0, false});
          rec.t_start = c.engine().now().ns;
          const auto bytes = encode_block(id);
          ORDMA_CHECK(h.user_as().write(buf, bytes).ok());
          Result<Bytes> n = Errc::io_error;
          for (unsigned attempt = 0; attempt < 6 && !n.ok(); ++attempt) {
            n = co_await cl.pwrite(fh, b * kBlock, buf, kBlock);
          }
          if (!rc.faults) {
            EXPECT_TRUE(n.ok()) << "client " << ci << " write " << id;
          }
          // emplace_back reference may be stale after re-entrant writes:
          // find by id.
          for (auto& w : oracle.writes[b]) {
            if (w.id == id) w.acked = n.ok();
          }
        } else {
          const std::uint64_t t0 = c.engine().now().ns;
          auto n = co_await cl.pread(fh, b * kBlock, buf, kBlock);
          const std::uint64_t t1 = c.engine().now().ns;
          if (!rc.faults) EXPECT_TRUE(n.ok());
          if (!n.ok() || n.value() != kBlock) continue;
          std::vector<std::byte> got(kBlock);
          ORDMA_CHECK(h.user_as().read(buf, got).ok());
          const std::uint64_t id = decode_id(got);
          oracle.reads.push_back(
              {ci, b, id, t0, t1, got != encode_block(id)});
        }
      }
      auto st = co_await cl.sync();
      if (!rc.faults) EXPECT_TRUE(st.ok());
      st = co_await cl.close(fh);
      if (!rc.faults) EXPECT_TRUE(st.ok());
      ++finished;
    }(c, oracle, *clients[ci], ci, rc, finished));
  }
  c.engine().run();
  ASSERT_EQ(finished, cc.num_clients) << "a client coroutine deadlocked";

  // --- the oracle ----------------------------------------------------------
  // Commit versions per block form a contiguous chain, and every committed
  // content is one of the issued writes (no torn or invented bytes reached
  // a commit point). The observer log is in commit-point order, which may
  // differ from version order when two commits' invalidation rounds
  // overlap — sort by version before checking the chain.
  for (auto& [block, log] : oracle.commits) {
    std::sort(log.begin(), log.end(),
              [](const CommitRec& a, const CommitRec& b) {
                return a.version < b.version;
              });
    std::uint64_t expect = 1;
    for (const auto& cr : log) {
      EXPECT_EQ(cr.version, expect++) << "block " << block;
      EXPECT_TRUE(oracle.id_by_cksum.count(cr.cksum))
          << "block " << block << " v" << cr.version
          << " committed unknown content";
    }
  }
  // No torn reads, no stale committed reads.
  for (const auto& rd : oracle.reads) {
    EXPECT_FALSE(rd.torn) << "client " << rd.client << " block " << rd.block
                          << " read torn content (id " << rd.id << ")";
    if (rd.torn) continue;
    EXPECT_TRUE(oracle.observable(rd.block, rd.id, rd.t0, rd.t1))
        << "client " << rd.client << " read stale/unknown id " << rd.id
        << " on block " << rd.block << " at [" << rd.t0 << ", " << rd.t1
        << "]";
  }

  // Zero lost writes: final server content per block is the highest-version
  // commit's content (initial content where nothing ever committed).
  drive(c, [&]() -> sim::Task<void> {
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      std::vector<std::byte> got(kBlock);
      auto n = co_await c.server_fs().read(ino, b * kBlock, got);
      EXPECT_TRUE(n.ok() && n.value() == kBlock) << "final read, block " << b;
      if (!n.ok() || n.value() != kBlock) continue;
      const std::uint64_t id = decode_id(got);
      EXPECT_EQ(got, encode_block(id)) << "final block " << b << " torn";
      auto cit = oracle.commits.find(b);
      if (cit == oracle.commits.end() || cit->second.empty()) {
        EXPECT_EQ(id, 1000 + b) << "block " << b;
      } else if (rc.strict_final) {
        const auto& last = cit->second.back();
        auto idit = oracle.id_by_cksum.find(last.cksum);
        EXPECT_TRUE(idit != oracle.id_by_cksum.end());
        if (idit != oracle.id_by_cksum.end()) {
          EXPECT_EQ(id, idit->second)
              << "block " << b << ": final content is not the last commit";
        }
      } else {
        // Faulty runs may leave a placed-but-never-committed put as the
        // final bytes; it must still be one of the issued writes.
        bool known = false;
        for (const auto& w : oracle.writes[b]) known |= w.id == id;
        EXPECT_TRUE(known) << "block " << b << " holds invented bytes";
      }
    }
  });

  // The run must have actually exercised sharing: at least one commit and,
  // in coherence mode with >1 client, at least one invalidation.
  std::size_t total_commits = 0;
  for (const auto& [block, log] : oracle.commits) total_commits += log.size();
  EXPECT_GT(total_commits, 0u);
  if (cc.num_clients > 1 && !rc.faults) {
    EXPECT_GT(c.dafs_server().invalidations_sent(), 0u);
  }
}

TEST(SharingOracle, PutThroughMultiClient) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    run_sharing_oracle({.seed = seed,
                        .policies = {odafs::WritePolicy::put_through,
                                     odafs::WritePolicy::put_through,
                                     odafs::WritePolicy::put_through}});
  }
}

TEST(SharingOracle, WriteBackMultiClient) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    run_sharing_oracle({.seed = seed,
                        .policies = {odafs::WritePolicy::write_back,
                                     odafs::WritePolicy::write_back,
                                     odafs::WritePolicy::write_back}});
  }
}

TEST(SharingOracle, MixedPoliciesShareOneTruth) {
  for (const std::uint64_t seed : {5ull, 23ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    run_sharing_oracle({.seed = seed,
                        .policies = {odafs::WritePolicy::put_through,
                                     odafs::WritePolicy::write_back,
                                     odafs::WritePolicy::rpc_through}});
  }
}

TEST(SharingOracle, RevokeDuringPutStaysCoherent) {
  for (const std::uint64_t seed : {2ull, 13ull}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    run_sharing_oracle({.seed = seed,
                        .policies = {odafs::WritePolicy::put_through,
                                     odafs::WritePolicy::write_back},
                        .rounds = 30,
                        .faults = true,
                        .strict_final = false});
  }
}

TEST(SharingOracle, SingleClientPutThroughIsSequential) {
  // Degenerate sharing: one writer — every read must observe exactly the
  // latest commit (its own writes), the strictest form of the oracle.
  run_sharing_oracle(
      {.seed = 9, .policies = {odafs::WritePolicy::put_through}});
}

}  // namespace
}  // namespace ordma
