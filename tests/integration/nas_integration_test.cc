// Cross-module integration tests: every protocol client moves the right
// bytes end-to-end through NIC, fabric, RPC/VI and the server file system;
// ODAFS's optimistic path and its exception fallback preserve correctness.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

// Must match Cluster::make_file's generator exactly (one running LCG).
std::vector<std::byte> file_pattern(Bytes size, std::uint64_t seed = 1) {
  std::vector<std::byte> out(size);
  std::uint64_t x = seed;
  for (Bytes i = 0; i < size; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

// Drive a coroutine to completion.
template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver did not finish (deadlock?)";
}

// Generic end-to-end read check for any FileClient.
void check_read_roundtrip(Cluster& c, core::FileClient& client,
                          const std::string& fname, Bytes fsize) {
  const auto expect = file_pattern(fsize);
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client.open(fname);
    EXPECT_TRUE(open.ok());
    if (!open.ok()) co_return;
    EXPECT_EQ(open.value().size, fsize);

    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), fsize);
    auto n = co_await client.pread(open.value().fh, 0, buf, fsize);
    EXPECT_TRUE(n.ok());
    if (!n.ok()) co_return;
    EXPECT_EQ(n.value(), fsize);

    std::vector<std::byte> got(fsize);
    EXPECT_TRUE(h.user_as().read(buf, got).ok());
    EXPECT_EQ(got, expect);
    EXPECT_TRUE((co_await client.close(open.value().fh)).ok());
  });
}

TEST(NasIntegration, NfsStandardReadsExactBytes) {
  Cluster c;
  c.start_nfs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(200) + 123, /*warm=*/true);
  });
  auto client = c.make_nfs_client(0, KiB(64));
  check_read_roundtrip(c, *client, "f", KiB(200) + 123);
}

TEST(NasIntegration, NfsPrepostReadsExactBytes) {
  Cluster c;
  c.start_nfs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(200) + 123, true);
  });
  auto client = c.make_prepost_client(0, KiB(64));
  check_read_roundtrip(c, *client, "f", KiB(200) + 123);
}

TEST(NasIntegration, NfsHybridReadsExactBytes) {
  Cluster c;
  c.start_nfs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(200) + 123, true);
  });
  auto client = c.make_hybrid_client(0, KiB(64));
  check_read_roundtrip(c, *client, "f", KiB(200) + 123);
  // One registration per distinct 64 KB chunk range of the buffer; the
  // registration cache prevents re-registration when the buffer is reused.
  const auto regs = client->registrations();
  EXPECT_LE(regs, 4u);
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());
    // check_read_roundtrip used the most recent map_new region; reuse a
    // fresh buffer once, then read it again — only the first read of this
    // buffer may add registrations.
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(200) + 123);
    (void)co_await client->pread(open.value().fh, 0, buf, KiB(200) + 123);
    const auto after_first = client->registrations();
    (void)co_await client->pread(open.value().fh, 0, buf, KiB(200) + 123);
    EXPECT_EQ(client->registrations(), after_first);
  });
}

TEST(NasIntegration, NfsWriteReadBack) {
  Cluster c;
  c.start_nfs();
  auto client = c.make_nfs_client(0, KiB(64));
  const auto data = file_pattern(KiB(100), 7);
  drive(c, [&]() -> sim::Task<void> {
    auto created = co_await client->create("new.dat");
    EXPECT_TRUE(created.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), data.size());
    EXPECT_TRUE(h.user_as().write(buf, data).ok());
    auto n = co_await client->pwrite(created.value().fh, 0, buf, data.size());
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), data.size());

    const mem::Vaddr rbuf = h.map_new(h.user_as(), data.size());
    auto r = co_await client->pread(created.value().fh, 0, rbuf, data.size());
    EXPECT_TRUE(r.ok());
    std::vector<std::byte> got(data.size());
    EXPECT_TRUE(h.user_as().read(rbuf, got).ok());
    EXPECT_EQ(got, data);
  });
}

TEST(NasIntegration, DafsDirectReadsExactBytes) {
  Cluster c;
  c.start_dafs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(300) + 5, true);
  });
  auto client = c.make_dafs_client(0);
  check_read_roundtrip(c, *client, "f", KiB(300) + 5);
}

TEST(NasIntegration, DafsInlineReadsExactBytes) {
  Cluster c;
  c.start_dafs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(64) + 9, true);
  });
  nas::dafs::DafsClientConfig cfg;
  cfg.direct_reads = false;
  auto client = c.make_dafs_client(0, cfg);
  check_read_roundtrip(c, *client, "f", KiB(64) + 9);
}

TEST(NasIntegration, DafsWriteDirectRoundTrip) {
  Cluster c;
  c.start_dafs();
  auto client = c.make_dafs_client(0);
  const auto data = file_pattern(KiB(48), 3);
  drive(c, [&]() -> sim::Task<void> {
    auto created = co_await client->create("w.dat");
    EXPECT_TRUE(created.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), data.size());
    EXPECT_TRUE(h.user_as().write(buf, data).ok());
    auto n = co_await client->pwrite(created.value().fh, 0, buf, data.size());
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), data.size());
    const mem::Vaddr rbuf = h.map_new(h.user_as(), data.size());
    auto r = co_await client->pread(created.value().fh, 0, rbuf, data.size());
    EXPECT_TRUE(r.ok());
    std::vector<std::byte> got(data.size());
    EXPECT_TRUE(h.user_as().read(rbuf, got).ok());
    EXPECT_EQ(got, data);
  });
}

TEST(NasIntegration, DafsOpenDelegationMakesReopenLocal) {
  Cluster c;
  c.start_dafs();
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(4), true);
  });
  auto client = c.make_dafs_client(0);
  drive(c, [&]() -> sim::Task<void> {
    auto o1 = co_await client->open("f");
    EXPECT_TRUE(o1.ok());
    const auto rpcs = client->rpcs_issued();
    auto o2 = co_await client->open("f");  // delegated: local
    EXPECT_TRUE(o2.ok());
    EXPECT_EQ(client->rpcs_issued(), rpcs);
    EXPECT_TRUE((co_await client->close(o2.value().fh)).ok());
    EXPECT_EQ(client->rpcs_issued(), rpcs);  // close local too
  });
}

TEST(NasIntegration, DafsBatchIoReadsManyExtentsInOneRpc) {
  Cluster c;
  c.start_dafs();
  const Bytes fsize = KiB(64);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", fsize, true);
  });
  const auto expect = file_pattern(fsize);
  auto client = c.make_dafs_client(0);
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());
    auto& h = c.client(0);
    const Bytes chunk = KiB(8);
    const mem::Vaddr buf = h.map_new(h.user_as(), fsize);
    auto reg = co_await client->ensure_registered(buf, fsize);
    EXPECT_TRUE(reg.ok());

    std::vector<nas::dafs::DafsClient::BatchEntry> entries;
    for (Bytes off = 0; off < fsize; off += chunk) {
      entries.push_back({open.value().fh, off, chunk,
                         reg.value()->nic_va(buf + off), reg.value()->cap});
    }
    const auto rpcs_before = client->rpcs_issued();
    auto ns = co_await client->read_batch(entries);
    EXPECT_TRUE(ns.ok());
    EXPECT_EQ(client->rpcs_issued(), rpcs_before + 1);  // one RPC total
    for (auto n : ns.value()) EXPECT_EQ(n, chunk);

    std::vector<std::byte> got(fsize);
    EXPECT_TRUE(h.user_as().read(buf, got).ok());
    EXPECT_EQ(got, expect);
  });
}

// --- ODAFS ------------------------------------------------------------------

nas::odafs::OdafsClientConfig small_cache_cfg(bool use_ordma,
                                              Bytes block = KiB(4),
                                              std::size_t blocks = 16) {
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = block;
  cfg.cache.data_blocks = blocks;
  cfg.cache.max_headers = 1 << 16;
  cfg.use_ordma = use_ordma;
  return cfg;
}

TEST(NasIntegration, OdafsSecondPassUsesOrdma) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8192;
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  const Bytes fsize = KiB(256);  // 64 blocks ≫ 16-block client cache
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", fsize, true);
  });
  const auto expect = file_pattern(fsize);
  auto client = c.make_odafs_client(0, small_cache_cfg(true));

  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), fsize);

    // Pass 1: all RPC (no refs yet); collects references.
    auto n1 = co_await client->pread(open.value().fh, 0, buf, fsize);
    EXPECT_TRUE(n1.ok());
    EXPECT_EQ(n1.value(), fsize);
    EXPECT_EQ(client->ordma_reads(), 0u);
    EXPECT_GT(client->rpc_reads(), 0u);
    EXPECT_GT(client->block_cache().refs_held(), 0u);

    // Pass 2: cache too small to hold data, but headers hold refs → ORDMA.
    const auto rpc_before = client->rpc_reads();
    auto n2 = co_await client->pread(open.value().fh, 0, buf, fsize);
    EXPECT_TRUE(n2.ok());
    EXPECT_GT(client->ordma_reads(), 0u);
    EXPECT_EQ(client->ordma_faults(), 0u);
    EXPECT_EQ(client->rpc_reads(), rpc_before);  // no RPCs needed

    std::vector<std::byte> got(fsize);
    EXPECT_TRUE(h.user_as().read(buf, got).ok());
    EXPECT_EQ(got, expect);
  });
}

TEST(NasIntegration, OrdmaIdleServerCpuOnSecondPass) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  const Bytes fsize = KiB(128);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", fsize, true);
  });
  auto client = c.make_odafs_client(0, small_cache_cfg(true));
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), fsize);
    (void)co_await client->pread(open.value().fh, 0, buf, fsize);

    const auto before = c.server().sample_cpu();
    (void)co_await client->pread(open.value().fh, 0, buf, fsize);
    const auto after = c.server().sample_cpu();
    // "ODAFS uses no server CPU after it manages to collect remote memory
    // references for the entire server cache" (§5.2).
    EXPECT_EQ((after.busy - before.busy).ns, 0);
  });
}

TEST(NasIntegration, OdafsStaleRefFaultsThenRecoversViaRpc) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 32;  // tiny server cache → eviction pressure
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  // 32 file blocks ≫ the 16-block client cache, so re-reads need ORDMA.
  const Bytes fsize = KiB(128);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", fsize, true);
    co_await c.make_file("g", KiB(256), false);  // eviction driver
  });
  const auto expect = file_pattern(fsize);
  auto client = c.make_odafs_client(0, small_cache_cfg(true));
  auto client2 = c.make_odafs_client(0, small_cache_cfg(false));

  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), fsize);
    (void)co_await client->pread(open.value().fh, 0, buf, fsize);
    EXPECT_GT(client->block_cache().refs_held(), 0u);

    // Evict f's blocks from the *server* cache by streaming g through it.
    auto og = co_await client2->open("g");
    const mem::Vaddr gbuf = h.map_new(h.user_as(), KiB(256));
    (void)co_await client2->pread(og.value().fh, 0, gbuf, KiB(256));

    // Now f's refs are stale: ORDMA must fault (never return wrong bytes)
    // and the client must transparently recover via RPC.
    auto n = co_await client->pread(open.value().fh, 0, buf, fsize);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), fsize);
    EXPECT_GT(client->ordma_faults(), 0u);

    std::vector<std::byte> got(fsize);
    EXPECT_TRUE(h.user_as().read(buf, got).ok());
    EXPECT_EQ(got, expect);  // correctness held through the fault path
  });
}

TEST(NasIntegration, OdafsWriteThroughKeepsCoherence) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(16), true);
  });
  auto client = c.make_odafs_client(0, small_cache_cfg(true));
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(16));
    (void)co_await client->pread(open.value().fh, 0, buf, KiB(16));

    // Overwrite the middle through the same client.
    std::vector<std::byte> patch(KiB(4), std::byte{0xEE});
    const mem::Vaddr pbuf = h.map_new(h.user_as(), patch.size());
    EXPECT_TRUE(h.user_as().write(pbuf, patch).ok());
    auto w = co_await client->pwrite(open.value().fh, KiB(4), pbuf,
                                     patch.size());
    EXPECT_TRUE(w.ok());

    // Read back via ORDMA (refs still valid: server updated in place).
    auto n = co_await client->pread(open.value().fh, 0, buf, KiB(16));
    EXPECT_TRUE(n.ok());
    std::vector<std::byte> got(KiB(16));
    EXPECT_TRUE(h.user_as().read(buf, got).ok());
    for (Bytes i = KiB(4); i < KiB(8); ++i) {
      EXPECT_EQ(got[i], std::byte{0xEE}) << "offset " << i;
    }
  });
}

TEST(NasIntegration, CachedDafsDoesNotUseOrdma) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(64), true);
  });
  auto client = c.make_odafs_client(0, small_cache_cfg(false));
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(64));
    (void)co_await client->pread(open.value().fh, 0, buf, KiB(64));
    (void)co_await client->pread(open.value().fh, 0, buf, KiB(64));
    EXPECT_EQ(client->ordma_reads(), 0u);
    EXPECT_GT(client->rpc_reads(), 0u);
  });
}

}  // namespace
}  // namespace ordma
