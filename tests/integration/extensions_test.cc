// Integration tests for the extensions beyond the paper's prototype:
// ORDMA-served attribute reads (§4.2.2 motivates them; the paper never
// built them) and disk fault injection through the full read path.
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver deadlocked";
}

nas::odafs::OdafsClientConfig odafs_cfg() {
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = 32;
  cfg.cache.max_headers = 1 << 14;
  cfg.use_ordma = true;
  return cfg;
}

TEST(AttrOrdma, GetattrServedFromServerMemoryWithoutServerCpu) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(12) + 34, true);
  });
  auto client = c.make_odafs_client(0, odafs_cfg());

  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());

    const auto cpu0 = c.server().sample_cpu();
    for (int i = 0; i < 5; ++i) {
      auto attr = co_await client->getattr(open.value().fh);
      EXPECT_TRUE(attr.ok());
      EXPECT_EQ(attr.value().size, KiB(12) + 34);
      EXPECT_EQ(attr.value().ino, open.value().fh);
    }
    const auto cpu1 = c.server().sample_cpu();
    EXPECT_EQ(client->attr_ordma(), 5u);
    EXPECT_EQ((cpu1.busy - cpu0.busy).ns, 0);  // no server CPU at all
  });
}

TEST(AttrOrdma, AttributesStayFreshAcrossWrites) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  auto client = c.make_odafs_client(0, odafs_cfg());
  drive(c, [&]() -> sim::Task<void> {
    auto created = co_await client->create("grow");
    EXPECT_TRUE(created.ok());
    auto open = co_await client->open("grow");
    EXPECT_TRUE(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(8));

    for (Bytes target : {KiB(1), KiB(5), KiB(8)}) {
      auto n = co_await client->pwrite(open.value().fh, 0, buf, target);
      EXPECT_TRUE(n.ok());
      // The server re-marshals the record on each mutation; the ORDMA read
      // must see the new size immediately.
      auto attr = co_await client->getattr(open.value().fh);
      EXPECT_TRUE(attr.ok());
      EXPECT_EQ(attr.value().size, target);
    }
    EXPECT_GT(client->attr_ordma(), 0u);
  });
}

TEST(AttrOrdma, ReusedSlotDetectedAndFallsBackToRpc) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  auto client = c.make_odafs_client(0, odafs_cfg());
  auto client2 = c.make_odafs_client(0, odafs_cfg());
  drive(c, [&]() -> sim::Task<void> {
    // client opens "a" and holds its attr ref.
    co_await c.make_file("a", KiB(4), true, 1);
    auto open = co_await client->open("a");
    EXPECT_TRUE(open.ok());
    auto warm = co_await client->getattr(open.value().fh);
    EXPECT_TRUE(warm.ok());

    // Server-side: remove "a" (releases its attr slot) and create "b",
    // which reuses the slot with a different ino.
    EXPECT_TRUE(c.server_fs().remove(fs::ServerFs::kRootIno, "a").ok());
    co_await c.make_file("b", KiB(8), true, 2);
    (void)co_await client2->open("b");  // ensures b's record is marshalled

    // client's stale attribute reference must never yield b's attributes:
    // the embedded-ino check rejects the record and the client falls back
    // to RPC, which reports the file as gone.
    const auto attr_hits = client->attr_ordma();
    auto stale = co_await client->getattr(open.value().fh);
    EXPECT_FALSE(stale.ok());
    EXPECT_EQ(client->attr_ordma(), attr_hits);  // not served optimistically
  });
}

TEST(AttrOrdma, PlainDafsServerSendsNoAttrRefs) {
  Cluster c;
  c.start_dafs();  // piggyback_refs off
  auto client = c.make_odafs_client(0, odafs_cfg());
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(4), true);
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());
    auto attr = co_await client->getattr(open.value().fh);
    EXPECT_TRUE(attr.ok());
    EXPECT_EQ(client->attr_ordma(), 0u);  // RPC path used
  });
}

TEST(FaultInjection, DiskErrorPropagatesThroughDafsRead) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8;  // small cache so reads hit the disk
  Cluster c(cc);
  c.start_dafs();
  auto client = c.make_dafs_client(0);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(64), false);  // cold cache
    auto open = co_await client->open("f");
    EXPECT_TRUE(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(32));

    c.server_fs().disk().inject_failures(1000);
    auto n = co_await client->pread(open.value().fh, 0, buf, KiB(32));
    EXPECT_FALSE(n.ok());
    EXPECT_EQ(n.code(), Errc::io_error);

    // Once the medium recovers, the same read succeeds.
    c.server_fs().disk().inject_failures(0);
    auto ok = co_await client->pread(open.value().fh, 0, buf, KiB(32));
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), KiB(32));
  });
}

TEST(FaultInjection, OdafsSurfacesDiskErrorOnRpcFallback) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  cc.fs.cache_blocks = 8;
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  auto client = c.make_odafs_client(0, odafs_cfg());
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(64), false);
    auto open = co_await client->open("f");
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(16));

    c.server_fs().disk().inject_failures(1000);
    auto n = co_await client->pread(open.value().fh, 0, buf, KiB(16));
    EXPECT_FALSE(n.ok());
    c.server_fs().disk().inject_failures(0);
    auto ok = co_await client->pread(open.value().fh, 0, buf, KiB(16));
    EXPECT_TRUE(ok.ok());
  });
}

}  // namespace
}  // namespace ordma
