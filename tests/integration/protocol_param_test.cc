// Parameterized cross-protocol conformance tests: every FileClient variant
// must satisfy the same contract — byte-exact reads at arbitrary offsets,
// short reads at EOF, zero-length I/O, create/unlink semantics — over the
// full simulated stack.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/cluster.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

enum class Proto { nfs, prepost, hybrid, dafs, dafs_inline, odafs, cached_dafs };

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::nfs: return "nfs";
    case Proto::prepost: return "prepost";
    case Proto::hybrid: return "hybrid";
    case Proto::dafs: return "dafs";
    case Proto::dafs_inline: return "dafs_inline";
    case Proto::odafs: return "odafs";
    case Proto::cached_dafs: return "cached_dafs";
  }
  return "?";
}

std::vector<std::byte> file_pattern(Bytes size, std::uint64_t seed = 1) {
  std::vector<std::byte> out(size);
  std::uint64_t x = seed;
  for (Bytes i = 0; i < size; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

struct Rig {
  explicit Rig(Proto p) {
    ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    cluster = std::make_unique<Cluster>(cc);
    switch (p) {
      case Proto::nfs:
        cluster->start_nfs();
        client = cluster->make_nfs_client(0, KiB(32));
        break;
      case Proto::prepost:
        cluster->start_nfs();
        client = cluster->make_prepost_client(0, KiB(32));
        break;
      case Proto::hybrid:
        cluster->start_nfs();
        client = cluster->make_hybrid_client(0, KiB(32));
        break;
      case Proto::dafs:
        cluster->start_dafs();
        client = cluster->make_dafs_client(0);
        break;
      case Proto::dafs_inline: {
        cluster->start_dafs();
        nas::dafs::DafsClientConfig cfg;
        cfg.direct_reads = false;
        client = cluster->make_dafs_client(0, cfg);
        break;
      }
      case Proto::odafs:
      case Proto::cached_dafs: {
        cluster->start_dafs({.piggyback_refs = true});
        nas::odafs::OdafsClientConfig cfg;
        cfg.cache.block_size = KiB(4);
        cfg.cache.data_blocks = 24;
        cfg.cache.max_headers = 1 << 14;
        cfg.use_ordma = p == Proto::odafs;
        client = cluster->make_odafs_client(0, cfg);
        break;
      }
    }
  }

  template <typename F>
  void drive(F&& body) {
    bool done = false;
    cluster->engine().spawn([](F body, bool& done) -> sim::Task<void> {
      co_await body();
      done = true;
    }(std::forward<F>(body), done));
    cluster->engine().run();
    ASSERT_TRUE(done) << "driver deadlocked";
  }

  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<core::FileClient> client;
};

class ProtocolConformance : public ::testing::TestWithParam<Proto> {};

TEST_P(ProtocolConformance, ReadsExactBytesAtArbitraryOffsets) {
  Rig rig(GetParam());
  const Bytes fsize = KiB(96) + 321;
  const auto expect = file_pattern(fsize);
  rig.drive([&]() -> sim::Task<void> {
    co_await rig.cluster->make_file("f", fsize, true);
    auto open = co_await rig.client->open("f");
    EXPECT_TRUE(open.ok());
    auto& h = rig.cluster->client(0);
    // Offsets chosen to hit: block-aligned, straddling, tail, sub-block.
    const std::pair<Bytes, Bytes> cases[] = {
        {0, KiB(4)},          {KiB(4), KiB(8)},       {123, 4567},
        {KiB(32) - 1, KiB(8)}, {fsize - 100, 100},    {KiB(64) + 7, 1},
        {0, fsize},
    };
    for (const auto& [off, len] : cases) {
      const mem::Vaddr buf = h.map_new(h.user_as(), len);
      auto n = co_await rig.client->pread(open.value().fh, off, buf, len);
      EXPECT_TRUE(n.ok());
      if (!n.ok()) continue;
      EXPECT_EQ(n.value(), len) << "off=" << off << " len=" << len;
      std::vector<std::byte> got(n.value());
      EXPECT_TRUE(h.user_as().read(buf, got).ok());
      EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin() + off))
          << "off=" << off << " len=" << len;
    }
  });
}

TEST_P(ProtocolConformance, ShortReadAtEofAndZeroLength) {
  Rig rig(GetParam());
  const Bytes fsize = KiB(10) + 77;
  rig.drive([&]() -> sim::Task<void> {
    co_await rig.cluster->make_file("f", fsize, true);
    auto open = co_await rig.client->open("f");
    EXPECT_TRUE(open.ok());
    auto& h = rig.cluster->client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(8));

    auto short_read =
        co_await rig.client->pread(open.value().fh, fsize - 50, buf, KiB(8));
    EXPECT_TRUE(short_read.ok());
    EXPECT_EQ(short_read.value(), 50u);

    auto at_eof = co_await rig.client->pread(open.value().fh, fsize, buf,
                                             KiB(8));
    EXPECT_TRUE(at_eof.ok());
    EXPECT_EQ(at_eof.value(), 0u);

    auto past_eof = co_await rig.client->pread(open.value().fh,
                                               fsize + KiB(64), buf, KiB(4));
    EXPECT_TRUE(past_eof.ok());
    EXPECT_EQ(past_eof.value(), 0u);
  });
}

TEST_P(ProtocolConformance, WriteThenReadBackAcrossBlocks) {
  Rig rig(GetParam());
  const auto data = file_pattern(KiB(20) + 11, 9);
  rig.drive([&]() -> sim::Task<void> {
    auto created = co_await rig.client->create("w");
    EXPECT_TRUE(created.ok());
    auto& h = rig.cluster->client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), data.size());
    EXPECT_TRUE(h.user_as().write(buf, data).ok());
    auto n = co_await rig.client->pwrite(created.value().fh, 0, buf,
                                         data.size());
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), data.size());

    const mem::Vaddr rbuf = h.map_new(h.user_as(), data.size());
    auto r = co_await rig.client->pread(created.value().fh, 0, rbuf,
                                        data.size());
    EXPECT_TRUE(r.ok());
    std::vector<std::byte> got(data.size());
    EXPECT_TRUE(h.user_as().read(rbuf, got).ok());
    EXPECT_EQ(got, data);

    // Overwrite a straddling range and re-verify.
    const auto patch = file_pattern(KiB(6), 17);
    const mem::Vaddr pbuf = h.map_new(h.user_as(), patch.size());
    EXPECT_TRUE(h.user_as().write(pbuf, patch).ok());
    auto w2 = co_await rig.client->pwrite(created.value().fh, KiB(3), pbuf,
                                          patch.size());
    EXPECT_TRUE(w2.ok());
    auto r2 = co_await rig.client->pread(created.value().fh, 0, rbuf,
                                         data.size());
    EXPECT_TRUE(r2.ok());
    EXPECT_TRUE(h.user_as().read(rbuf, got).ok());
    for (Bytes i = 0; i < data.size(); ++i) {
      const std::byte want = (i >= KiB(3) && i < KiB(3) + patch.size())
                                 ? patch[i - KiB(3)]
                                 : data[i];
      EXPECT_EQ(got[i], want) << "offset " << i;
    }
  });
}

TEST_P(ProtocolConformance, OpenMissingFileFails) {
  Rig rig(GetParam());
  rig.drive([&]() -> sim::Task<void> {
    auto open = co_await rig.client->open("nope");
    EXPECT_FALSE(open.ok());
    EXPECT_EQ(open.code(), Errc::not_found);
  });
}

TEST_P(ProtocolConformance, GetattrReportsSize) {
  Rig rig(GetParam());
  const Bytes fsize = KiB(12) + 5;
  rig.drive([&]() -> sim::Task<void> {
    co_await rig.cluster->make_file("f", fsize, true);
    auto open = co_await rig.client->open("f");
    EXPECT_TRUE(open.ok());
    EXPECT_EQ(open.value().size, fsize);
    auto attr = co_await rig.client->getattr(open.value().fh);
    EXPECT_TRUE(attr.ok());
    EXPECT_EQ(attr.value().size, fsize);
  });
}

TEST_P(ProtocolConformance, UnlinkRemovesFile) {
  Rig rig(GetParam());
  rig.drive([&]() -> sim::Task<void> {
    auto created = co_await rig.client->create("gone");
    EXPECT_TRUE(created.ok());
    EXPECT_TRUE((co_await rig.client->unlink("gone")).ok());
    auto open = co_await rig.client->open("gone");
    EXPECT_FALSE(open.ok());
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolConformance,
    ::testing::Values(Proto::nfs, Proto::prepost, Proto::hybrid, Proto::dafs,
                      Proto::dafs_inline, Proto::odafs, Proto::cached_dafs),
    [](const ::testing::TestParamInfo<Proto>& info) {
      return proto_name(info.param);
    });

}  // namespace
}  // namespace ordma
