// Per-run arena (mem/arena.h): bump/reset/reuse semantics, allocator
// plumbing, thread-local installation, and the pin that an arena-backed
// engine computes exactly what a heap-backed one does.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/units.h"
#include "mem/arena.h"
#include "run/runner.h"
#include "sim/engine.h"

namespace ordma {
namespace {

TEST(Arena, BumpsWithinOneChunkAndHonorsAlignment) {
  mem::Arena a;
  void* p1 = a.allocate(24, 8);
  void* p2 = a.allocate(1, 1);
  void* p3 = a.allocate(64, 64);
  ASSERT_NE(p1, nullptr);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p3) % 64, 0u);
  EXPECT_EQ(a.chunk_count(), 1u);  // all three fit the first chunk
  // Arena memory is writable and distinct.
  std::memset(p1, 0xab, 24);
  std::memset(p3, 0xcd, 64);
  EXPECT_EQ(*static_cast<unsigned char*>(p1), 0xab);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  mem::Arena a;
  a.allocate(16, 8);
  void* big = a.allocate(4 * mem::Arena::kMaxChunk, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(a.chunk_count(), 2u);
  EXPECT_GE(a.bytes_reserved(), 4 * mem::Arena::kMaxChunk);
}

TEST(Arena, ResetRetainsChunksAndReusesThem) {
  mem::Arena a;
  // Force several chunks.
  for (int i = 0; i < 64; ++i) a.allocate(mem::Arena::kMinChunk / 2, 8);
  const std::size_t chunks = a.chunk_count();
  const std::size_t reserved = a.bytes_reserved();
  ASSERT_GT(chunks, 1u);

  a.reset();
  EXPECT_EQ(a.bytes_used(), 0u);
  EXPECT_EQ(a.chunk_count(), chunks);  // storage retained

  // Same fill pattern again: no new chunks, no new reservation.
  for (int i = 0; i < 64; ++i) a.allocate(mem::Arena::kMinChunk / 2, 8);
  EXPECT_EQ(a.chunk_count(), chunks);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, ResetMakesAllocationsIndependentAcrossCells) {
  // Two "cells" writing distinct patterns into recycled memory never see
  // each other's bytes (the second cell re-acquires and fully rewrites).
  mem::Arena a;
  auto* p = static_cast<unsigned char*>(a.allocate(1024, 8));
  std::memset(p, 0x11, 1024);
  a.reset();
  auto* q = static_cast<unsigned char*>(a.allocate(1024, 8));
  std::memset(q, 0x22, 1024);
  for (int i = 0; i < 1024; ++i) ASSERT_EQ(q[i], 0x22);
}

TEST(Arena, ArenaAllocatorBacksStdVector) {
  mem::Arena a;
  std::vector<int, mem::ArenaAllocator<int>> v{mem::ArenaAllocator<int>(&a)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(a.bytes_used(), 10000 * sizeof(int) - 1);
}

TEST(Arena, InstallAndScopedInstallNest) {
  EXPECT_EQ(mem::current_arena(), nullptr);
  {
    mem::ScopedSimArena outer;
    mem::Arena* outer_arena = mem::current_arena();
    EXPECT_EQ(outer_arena, &outer.arena());
    {
      mem::ScopedSimArena inner;
      EXPECT_EQ(mem::current_arena(), &inner.arena());
      EXPECT_NE(mem::current_arena(), outer_arena);
    }
    EXPECT_EQ(mem::current_arena(), outer_arena);
  }
  EXPECT_EQ(mem::current_arena(), nullptr);
}

TEST(Arena, ScopedArenaIsResetAndReusedBetweenCells) {
  std::size_t reserved_after_first = 0;
  mem::Arena* first = nullptr;
  {
    mem::ScopedSimArena cell;
    first = &cell.arena();
    cell.arena().allocate(256 * 1024, 8);
    reserved_after_first = cell.arena().bytes_reserved();
  }
  {
    mem::ScopedSimArena cell;
    // LIFO pool on one thread: the same arena comes back, already reset,
    // with its chunk storage intact.
    EXPECT_EQ(&cell.arena(), first);
    EXPECT_EQ(cell.arena().bytes_used(), 0u);
    EXPECT_EQ(cell.arena().bytes_reserved(), reserved_after_first);
  }
}

// A deterministic mini-simulation: fires a self-rescheduling cascade of
// timers and folds the exact fire order into a hash.
std::uint64_t timer_cascade_hash() {
  sim::Engine eng;
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](std::uint64_t v) { h = (h ^ v) * 0x100000001b3ull; };
  for (int i = 0; i < 50; ++i) {
    eng.schedule_fn(usec(1 + i % 7), [&eng, &fold, i] {
      fold(static_cast<std::uint64_t>(i));
      fold(static_cast<std::uint64_t>(eng.now().ns));
      for (int k = 0; k < 3; ++k) {
        eng.schedule_fn(usec(1 + (i * 3 + k) % 11), [&fold, i, k] {
          fold(static_cast<std::uint64_t>(i * 100 + k));
        });
      }
    });
  }
  const std::uint64_t fired = eng.run();
  fold(fired);
  return h;
}

TEST(Arena, EngineUnderArenaIsBitIdenticalToEngineWithout) {
  const std::uint64_t without = timer_cascade_hash();
  std::uint64_t with_arena = 0;
  {
    mem::ScopedSimArena arena;
    with_arena = timer_cascade_hash();
  }
  EXPECT_EQ(without, with_arena);
  // And a reused (reset) arena still computes the same thing.
  {
    mem::ScopedSimArena arena;
    EXPECT_EQ(timer_cascade_hash(), without);
  }
}

TEST(StealRange, IsCacheLinePaddedAndAligned) {
  // Compile-time layout pins live in run/runner.h next to the type; this
  // re-states them where a failure is reported by name, and checks the
  // runtime addresses of a materialized array.
  static_assert(alignof(run::detail::Range) == 64);
  static_assert(sizeof(run::detail::Range) == 64);
  std::vector<run::detail::Range> ranges(4);
  for (const auto& r : ranges) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&r) % 64, 0u);
  }
}

}  // namespace
}  // namespace ordma
