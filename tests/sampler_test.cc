// Tail-based trace sampling (obs/sampler.h): the determinism contract
// (bit-identical simulation with sampling on vs off), the retention
// guarantees (100% of errored, retried, and above-threshold ops kept), the
// bounded-memory staging accounting, and the exemplar plumbing into
// latency histograms.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "core/file_client.h"
#include "fault/fault.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;
using obs::TraceRecorder;
using obs::TraceSampler;

constexpr Bytes kIo = KiB(8);

void fold(std::uint64_t& h, std::uint64_t v) {
  h = (h ^ v) * 0x100000001b3ull;
}

template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver did not finish (deadlock?)";
}

// One lossy NFS run: `samples` preads under seeded packet drops. Folds a
// golden hash over every simulation-visible value (per-op completion time,
// result size, final clock, event count) — the values a perturbing
// observer would disturb. Optionally attaches a TraceSampler to a
// recorder installed for the measured pass.
struct GoldenRun {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  core::FileClient::OpStats stats;
};

GoldenRun lossy_run(int samples, TraceRecorder* rec,
                    TraceSampler* sampler) {
  ClusterConfig cc;
  cc.faults = fault::FaultPlan{};  // deterministic seed 1
  cc.faults->eth.drop = 0.05;
  cc.rpc_retry.timeout = usec(500);
  cc.rpc_retry.max_attempts = 8;
  Cluster c(cc);
  c.start_nfs();
  auto client = c.make_nfs_client(0);

  GoldenRun out;
  fault::FaultInjector* inj = c.fault_injector();
  inj->set_armed(false);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", static_cast<Bytes>(samples) * kIo,
                         /*warm=*/true);
  });
  drive(c, [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kIo);
    inj->set_armed(true);
    if (rec != nullptr) obs::install(rec);
    for (int i = 0; i < samples; ++i) {
      auto r = co_await client->pread(open.value().fh,
                                      static_cast<Bytes>(i) * kIo, buf, kIo);
      ORDMA_CHECK(r.ok() && r.value() == kIo);
      fold(out.hash, r.value());
      fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
    }
    obs::install(static_cast<TraceRecorder*>(nullptr));
    inj->set_armed(false);
  });
  fold(out.hash, static_cast<std::uint64_t>(c.engine().now().ns));
  if (sampler != nullptr) sampler->finish();
  out.stats = client->op_stats();
  return out;
}

// The determinism contract: sampling on, sampling off, and full (unsampled)
// tracing all produce bit-identical simulations.
TEST(Sampler, GoldenHashIdenticalOnAndOff) {
  constexpr int kSamples = 48;
  const GoldenRun off = lossy_run(kSamples, nullptr, nullptr);

  TraceRecorder rec_full;
  const GoldenRun full = lossy_run(kSamples, &rec_full, nullptr);

  TraceRecorder rec_sampled;
  TraceSampler sampler(rec_sampled);
  const GoldenRun sampled = lossy_run(kSamples, &rec_sampled, &sampler);

  EXPECT_EQ(off.hash, full.hash);
  EXPECT_EQ(off.hash, sampled.hash);
  // Sampling genuinely dropped traces (it is not trivially keeping all).
  EXPECT_GT(sampler.ops_decided(), 0u);
  EXPECT_LT(sampler.ops_kept(), sampler.ops_decided());
  EXPECT_LT(rec_sampled.event_count(), rec_full.event_count());
  EXPECT_GT(rec_sampled.event_count(), 0u);
}

// Retention invariants, observed through the decision hook on a lossy run:
// every errored, retried, or above-rolling-threshold op is kept — 100%,
// not probabilistically.
TEST(Sampler, LossyRunRetainsEveryMarkedAndTailOp) {
  TraceRecorder rec;
  TraceSampler sampler(rec);
  std::vector<TraceSampler::Decision> decisions;
  sampler.set_decision_hook(&decisions,
                            [](void* ctx, const TraceSampler::Decision& d) {
                              static_cast<std::vector<
                                  TraceSampler::Decision>*>(ctx)
                                  ->push_back(d);
                            });
  constexpr int kSamples = 48;
  const GoldenRun run = lossy_run(kSamples, &rec, &sampler);

  ASSERT_EQ(decisions.size(), static_cast<std::size_t>(kSamples));
  unsigned retried = 0, tail = 0;
  for (const auto& d : decisions) {
    if (d.reasons & TraceSampler::kRetry) ++retried;
    if (d.reasons & TraceSampler::kTail) ++tail;
    if (d.reasons &
        (TraceSampler::kError | TraceSampler::kRetry |
         TraceSampler::kException)) {
      EXPECT_TRUE(d.kept) << "marked op " << d.op << " dropped";
    }
    if (d.latency_ns >= d.threshold_ns) {
      EXPECT_TRUE(d.kept) << "tail op " << d.op << " dropped";
    }
    EXPECT_EQ(d.kept, sampler.kept(d.op) || d.op == 0);
  }
  // The run exercised both retention causes, and every op completed.
  EXPECT_GT(retried, 0u);
  EXPECT_GT(tail, 0u);
  EXPECT_EQ(run.stats.ops, static_cast<std::uint64_t>(kSamples));
}

// Bounded memory: staging never exceeds max_staged_ops slots or
// max_events_per_op events per op; overflow is counted, not grown.
TEST(Sampler, StagingIsBoundedByConstruction) {
  TraceRecorder rec;
  const obs::TrackId trk = rec.track("test", "test");
  TraceSampler::Config cfg;
  cfg.max_staged_ops = 4;
  cfg.max_events_per_op = 2;
  cfg.reservoir_n = 1;  // keep everything that reaches a decision
  TraceSampler sampler(rec, cfg);

  // Stage 6 events for each of 8 concurrent ops: 4 ops evicted (FIFO),
  // each survivor's ring holds only its last 2 events.
  for (obs::OpId op = 1; op <= 8; ++op) {
    for (int e = 0; e < 6; ++e) {
      sampler.stage(TraceRecorder::Kind::span, trk, op, "io/x", e * 10,
                    e * 10 + 5);
    }
  }
  EXPECT_EQ(sampler.ops_evicted(), 4u);
  EXPECT_EQ(sampler.events_staged(), 48u);
  EXPECT_EQ(sampler.events_overwritten(), 8u * 4u);

  // Complete the surviving ops; each decision commits at most
  // max_events_per_op staged events + the root.
  for (obs::OpId op = 5; op <= 8; ++op) {
    sampler.stage(TraceRecorder::Kind::root, trk, op, "op/x", 0, 100);
  }
  EXPECT_EQ(sampler.ops_decided(), 4u);
  EXPECT_EQ(sampler.ops_kept(), 4u);
  EXPECT_EQ(sampler.events_kept(), 4u * (2u + 1u));

  // An evicted op's decision still happens — with an empty ring.
  sampler.stage(TraceRecorder::Kind::root, trk, 1, "op/x", 0, 100);
  EXPECT_EQ(sampler.ops_decided(), 5u);
  EXPECT_EQ(sampler.events_kept(), 4u * 3u + 1u);

  sampler.finish();
  EXPECT_EQ(rec.event_count(), 4u * 3u + 1u);
}

// Ambient (op-0) events are dropped and counted under sampling, and
// reservoir_n = 0 disables the reservoir (only marked/tail ops kept).
TEST(Sampler, AmbientDropsAndZeroReservoir) {
  TraceRecorder rec;
  const obs::TrackId trk = rec.track("test", "test");
  TraceSampler::Config cfg;
  cfg.reservoir_n = 0;
  TraceSampler sampler(rec, cfg);

  sampler.stage(TraceRecorder::Kind::span, trk, /*op=*/0, "nic/dma", 0, 5);
  sampler.stage(TraceRecorder::Kind::span, trk, /*op=*/0, "nic/dma", 5, 9);
  EXPECT_EQ(sampler.ambient_dropped(), 2u);

  // Op 1 completes first: kept (tail — no history). Op 2 is faster than
  // the now-nonzero threshold and unmarked: dropped. Op 3 is marked
  // (retry): kept despite being fast.
  sampler.stage(TraceRecorder::Kind::root, trk, 1, "op/a", 0, 1000000);
  sampler.stage(TraceRecorder::Kind::root, trk, 2, "op/b", 0, 10);
  sampler.note_retry(3);
  sampler.stage(TraceRecorder::Kind::root, trk, 3, "op/c", 0, 10);
  EXPECT_TRUE(sampler.kept(1));
  EXPECT_FALSE(sampler.kept(2));
  EXPECT_TRUE(sampler.kept(3));
}

// exemplar_for(): a histogram exemplar may only name an op whose trace is
// actually retained — kept ops (or any op when tracing is unsampled).
TEST(Sampler, ExemplarForRespectsKeepDecision) {
  // No recorder installed: no exemplars at all.
  EXPECT_EQ(obs::exemplar_for(7), 0u);

  TraceRecorder rec;
  obs::install(&rec);
  // Unsampled tracing: every traced op is inspectable.
  EXPECT_EQ(obs::exemplar_for(7), 7u);

  {
    const obs::TrackId trk = rec.track("test", "test");
    TraceSampler::Config cfg;
    cfg.reservoir_n = 0;
    TraceSampler sampler(rec, cfg);
    sampler.stage(TraceRecorder::Kind::root, trk, 1, "op/a", 0, 1000000);
    sampler.stage(TraceRecorder::Kind::root, trk, 2, "op/b", 0, 10);
    EXPECT_EQ(obs::exemplar_for(1), 1u);  // kept
    EXPECT_EQ(obs::exemplar_for(2), 0u);  // dropped
    EXPECT_EQ(obs::exemplar_for(0), 0u);  // ambient
  }
  obs::install(static_cast<TraceRecorder*>(nullptr));

  // And the histogram carries the exemplar per bucket.
  LatencyHistogram h;
  h.add(usec(3), /*exemplar=*/11);
  h.add(usec(700), /*exemplar=*/0);  // dropped op: bucket keeps no tag
  const std::size_t b3 = LatencyHistogram::bucket_for(usec(3));
  const std::size_t b700 = LatencyHistogram::bucket_for(usec(700));
  EXPECT_EQ(h.bucket_exemplar(b3), 11u);
  EXPECT_EQ(h.bucket_exemplar(b700), 0u);
  h.add(usec(3), /*exemplar=*/13);  // most recent tag wins
  EXPECT_EQ(h.bucket_exemplar(b3), 13u);
}

// Same run sampled twice keeps the same ops (fixed private seed), and the
// kept subset replays through the recorder in valid lane order.
TEST(Sampler, SamplingIsReproducible) {
  constexpr int kSamples = 32;
  TraceRecorder rec_a;
  TraceSampler sampler_a(rec_a);
  const GoldenRun a = lossy_run(kSamples, &rec_a, &sampler_a);

  TraceRecorder rec_b;
  TraceSampler sampler_b(rec_b);
  const GoldenRun b = lossy_run(kSamples, &rec_b, &sampler_b);

  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(sampler_a.ops_kept(), sampler_b.ops_kept());
  EXPECT_EQ(sampler_a.events_kept(), sampler_b.events_kept());
  EXPECT_EQ(rec_a.event_count(), rec_b.event_count());
}

}  // namespace
}  // namespace ordma
