// Calibration tests: the cost model must land on the paper's own baseline
// measurements (Table 2). Tolerances are ±15% — the reproduction's goal is
// shape fidelity, and these anchors keep every derived experiment honest.
//
//   Table 2:  GM       23 us RTT   244 MB/s
//             VI poll  23 us RTT   244 MB/s
//             VI block 53 us RTT   244 MB/s
//             UDP/Eth  80 us RTT   166 MB/s
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/host.h"
#include "msg/udp.h"
#include "msg/vi.h"
#include "net/fabric.h"
#include "nic/nic.h"
#include "sim/engine.h"

namespace ordma {
namespace {

std::vector<std::byte> zeros(std::size_t n) {
  return std::vector<std::byte>(n);
}

struct Cluster {
  sim::Engine eng;
  host::CostModel cm;
  net::Fabric fabric{eng};
  host::Host ha{eng, "client", cm};
  host::Host hb{eng, "server", cm};
  nic::Nic na{ha, fabric, {}, crypto::SipKey{1, 2}};
  nic::Nic nb{hb, fabric, {}, crypto::SipKey{3, 4}};
};

constexpr int kPingIters = 32;

// --- GM ping-pong (polling pickup, as gm_allsize does) ---------------------
double gm_roundtrip_us() {
  Cluster c;
  c.eng.spawn([](Cluster& c) -> sim::Task<void> {  // server echo
    auto& port = c.nb.open_port(5);
    for (;;) {
      auto m = co_await port.recv();
      co_await c.hb.cpu_consume(c.cm.vi_poll_pickup);
      co_await c.nb.gm_send(m.src, 6, 0, std::move(m.data));
    }
  }(c));
  double out = 0;
  c.eng.spawn([](Cluster& c, double& out) -> sim::Task<void> {
    auto& port = c.na.open_port(6);
    const auto t0 = c.eng.now();
    for (int i = 0; i < kPingIters; ++i) {
      co_await c.na.gm_send(c.nb.node_id(), 5, 0,
                            net::Buffer::copy_of(zeros(1)));
      auto m = co_await port.recv();
      co_await c.ha.cpu_consume(c.cm.vi_poll_pickup);
      (void)m;
    }
    out = (c.eng.now() - t0).to_us() / kPingIters;
  }(c, out));
  c.eng.run();
  return out;
}

// --- VI ping-pong -----------------------------------------------------------
double vi_roundtrip_us(msg::Completion mode) {
  Cluster c;
  msg::ViListener listener(c.hb, 100, mode);
  c.eng.spawn([](msg::ViListener& l) -> sim::Task<void> {
    auto conn = co_await l.accept();
    for (;;) {
      auto m = co_await conn->recv();
      co_await conn->send(std::move(m));
    }
  }(listener));
  double out = 0;
  c.eng.spawn([](Cluster& c, msg::Completion mode, double& out)
                  -> sim::Task<void> {
    auto conn = co_await msg::vi_connect(c.ha, c.nb.node_id(), 100, mode);
    const auto t0 = c.eng.now();
    for (int i = 0; i < kPingIters; ++i) {
      co_await conn->send(net::Buffer::copy_of(zeros(1)));
      (void)co_await conn->recv();
    }
    out = (c.eng.now() - t0).to_us() / kPingIters;
  }(c, mode, out));
  c.eng.run();
  return out;
}

// --- UDP ping-pong ----------------------------------------------------------
double udp_roundtrip_us() {
  Cluster c;
  msg::UdpStack sa(c.ha), sb(c.hb);
  auto& cli = sa.bind(1000);
  auto& srv = sb.bind(53);
  c.eng.spawn([](msg::UdpStack::Socket& srv) -> sim::Task<void> {
    for (;;) {
      auto d = co_await srv.recv();
      co_await srv.send_to(d.src, d.src_port, std::move(d.data));
    }
  }(srv));
  double out = 0;
  c.eng.spawn([](Cluster& c, msg::UdpStack::Socket& cli, double& out)
                  -> sim::Task<void> {
    const auto t0 = c.eng.now();
    for (int i = 0; i < kPingIters; ++i) {
      co_await cli.send_to(c.nb.node_id(), 53, net::Buffer::copy_of(zeros(1)));
      (void)co_await cli.recv();
    }
    out = (c.eng.now() - t0).to_us() / kPingIters;
  }(c, cli, out));
  c.eng.run();
  return out;
}

// --- streaming bandwidth -----------------------------------------------------
// Payload MB/s for a one-way stream of `msg_size` messages.
double gm_bandwidth_MBps(Bytes msg_size, int count) {
  Cluster c;
  Bytes received = 0;
  SimTime last{};
  c.eng.spawn([](Cluster& c, Bytes& received, SimTime& last, int count)
                  -> sim::Task<void> {
    auto& port = c.nb.open_port(5);
    for (int i = 0; i < count; ++i) {
      auto m = co_await port.recv();
      received += m.data.size();
      last = c.eng.now();
    }
  }(c, received, last, count));
  c.eng.spawn([](Cluster& c, Bytes msg_size, int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      co_await c.na.gm_send(c.nb.node_id(), 5, 0,
                            net::Buffer::copy_of(zeros(msg_size)));
    }
  }(c, msg_size, count));
  c.eng.run();
  return throughput_MBps(received, last - SimTime{});
}

double udp_bandwidth_MBps(Bytes msg_size, int count) {
  Cluster c;
  msg::UdpStack sa(c.ha), sb(c.hb);
  auto& cli = sa.bind(1000);
  auto& srv = sb.bind(53);
  Bytes received = 0;
  SimTime last{};
  c.eng.spawn([](msg::UdpStack::Socket& srv, Cluster& c, Bytes& received,
                 SimTime& last, int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      auto d = co_await srv.recv();
      received += d.data.size();
      last = c.eng.now();
    }
  }(srv, c, received, last, count));
  c.eng.spawn([](msg::UdpStack::Socket& cli, Cluster& c, Bytes msg_size,
                 int count) -> sim::Task<void> {
    for (int i = 0; i < count; ++i) {
      co_await cli.send_to(c.nb.node_id(), 53,
                           net::Buffer::copy_of(zeros(msg_size)));
    }
  }(cli, c, msg_size, count));
  c.eng.run();
  return throughput_MBps(received, last - SimTime{});
}

TEST(CalibrationTable2, GmRoundTrip23us) {
  const double rt = gm_roundtrip_us();
  RecordProperty("measured_us", static_cast<int>(rt * 100));
  EXPECT_NEAR(rt, 23.0, 23.0 * 0.15) << "GM 1-byte RTT";
}

TEST(CalibrationTable2, ViPollRoundTrip23us) {
  const double rt = vi_roundtrip_us(msg::Completion::poll);
  EXPECT_NEAR(rt, 23.0, 23.0 * 0.15) << "VI poll RTT";
}

TEST(CalibrationTable2, ViBlockRoundTrip53us) {
  const double rt = vi_roundtrip_us(msg::Completion::block);
  EXPECT_NEAR(rt, 53.0, 53.0 * 0.15) << "VI block RTT";
}

TEST(CalibrationTable2, UdpRoundTrip80us) {
  const double rt = udp_roundtrip_us();
  EXPECT_NEAR(rt, 80.0, 80.0 * 0.15) << "UDP/Ethernet RTT";
}

TEST(CalibrationTable2, GmBandwidth244MBps) {
  const double bw = gm_bandwidth_MBps(KiB(512), 48);
  EXPECT_NEAR(bw, 244.0, 244.0 * 0.08) << "GM streaming bandwidth";
}

TEST(CalibrationTable2, UdpBandwidth166MBps) {
  const double bw = udp_bandwidth_MBps(KiB(64), 192);
  EXPECT_NEAR(bw, 166.0, 166.0 * 0.15) << "UDP streaming bandwidth";
}

}  // namespace
}  // namespace ordma
