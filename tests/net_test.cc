// Unit tests for the fabric: buffers, link serialisation/latency, switch
// forwarding, and port contention.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/fabric.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/engine.h"

namespace ordma::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  }
  return v;
}

TEST(Buffer, CopySliceView) {
  auto data = pattern(100);
  Buffer b = Buffer::copy_of(data);
  EXPECT_EQ(b.size(), 100u);
  Buffer s = b.slice(10, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(std::equal(s.view().begin(), s.view().end(),
                         data.begin() + 10));
  Buffer s2 = s.slice(5, 5);  // slice of slice
  EXPECT_TRUE(std::equal(s2.view().begin(), s2.view().end(),
                         data.begin() + 15));
}

TEST(Buffer, EmptyBufferIsSafe) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.view().size(), 0u);
}

TEST(Buffer, ZeroLengthSlices) {
  auto data = pattern(64);
  Buffer b = Buffer::copy_of(data);
  // Zero-length slices are legal at every offset, including one-past-end.
  for (std::size_t off : {std::size_t{0}, std::size_t{32}, std::size_t{64}}) {
    Buffer z = b.slice(off, 0);
    EXPECT_TRUE(z.empty());
    EXPECT_EQ(z.view().size(), 0u);
  }
  // Zero-length inputs to the constructors are fine too.
  EXPECT_TRUE(Buffer::copy_of({}).empty());
  EXPECT_TRUE(Buffer::take({}).empty());
  EXPECT_TRUE(Buffer::alloc(0).view().empty());
}

TEST(Buffer, SliceOfSliceAtBoundaries) {
  auto data = pattern(100);
  Buffer b = Buffer::copy_of(data);
  Buffer full = b.slice(0, 100);  // identity slice
  EXPECT_TRUE(std::equal(full.view().begin(), full.view().end(),
                         data.begin()));
  Buffer tail = b.slice(90, 10);  // runs exactly to the end
  EXPECT_TRUE(std::equal(tail.view().begin(), tail.view().end(),
                         data.begin() + 90));
  Buffer tail_of_tail = tail.slice(9, 1);  // last byte via two levels
  EXPECT_EQ(tail_of_tail.view()[0], data[99]);
  Buffer empty_end = tail.slice(10, 0);  // one-past-end of a slice
  EXPECT_TRUE(empty_end.empty());
}

TEST(Buffer, SliceKeepsBackingStoreAlive) {
  Buffer s;
  {
    Buffer b = Buffer::copy_of(pattern(32, 7));
    s = b.slice(8, 8);
  }  // b destroyed; s must still see valid bytes
  const auto data = pattern(32, 7);
  EXPECT_TRUE(std::equal(s.view().begin(), s.view().end(), data.begin() + 8));
}

TEST(Buffer, PoolReuseReturnsZeroedBuffers) {
  // Dirty a Rep, return it to the pool, and re-acquire: alloc() promises
  // zeroed bytes even when the backing store lived a previous life.
  for (int round = 0; round < 3; ++round) {
    Buffer b = Buffer::alloc(256);
    for (const std::byte byte : b.view()) {
      EXPECT_EQ(byte, std::byte{0});
    }
    auto m = b.mutable_view();
    std::fill(m.begin(), m.end(), std::byte{0xff});
  }  // each b returns its Rep to the pool dirty
}

TEST(Buffer, PoolChurnSurvivesManyLiveBuffers) {
  // Push well past any free-list watermark with interleaved lifetimes:
  // contents must stay intact and distinct per buffer.
  std::vector<Buffer> live;
  for (int i = 0; i < 300; ++i) {
    Buffer b = Buffer::copy_of(pattern(64, i));
    live.push_back(b.slice(i % 32, 32));
    if (i % 3 == 0 && !live.empty()) live.erase(live.begin());
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].size(), 32u);
  }
  // Spot-check the newest survivor against its generating pattern.
  const auto data = pattern(64, 299);
  const Buffer& last = live.back();
  EXPECT_TRUE(std::equal(last.view().begin(), last.view().end(),
                         data.begin() + 299 % 32));
}

TEST(Link, DeliversAfterSerialisationPlusLatency) {
  sim::Engine eng;
  Link link(eng, MBps(100), usec(5), "l");
  SimTime delivered{};
  link.set_sink([&](Packet) { delivered = eng.now(); });

  Packet p;
  p.header_bytes = 0;
  p.payload = Buffer::copy_of(pattern(1000));  // 10us at 100MB/s
  link.send(std::move(p));
  eng.run();
  EXPECT_EQ(delivered, SimTime{} + usec(15));
}

TEST(Link, BackToBackPacketsPipelineSerialisation) {
  sim::Engine eng;
  Link link(eng, MBps(100), usec(5), "l");
  std::vector<std::int64_t> times;
  link.set_sink([&](Packet) { times.push_back(eng.now().ns); });
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.payload = Buffer::copy_of(pattern(1000));
    link.send(std::move(p));
  }
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  // Serialisations at 10,20,30us; each +5us propagation.
  EXPECT_EQ(times[0], usec(15).ns);
  EXPECT_EQ(times[1], usec(25).ns);
  EXPECT_EQ(times[2], usec(35).ns);
}

TEST(Link, HeaderBytesCostBandwidth) {
  sim::Engine eng;
  Link link(eng, MBps(100), Duration{0}, "l");
  SimTime delivered{};
  link.set_sink([&](Packet) { delivered = eng.now(); });
  Packet p;
  p.header_bytes = 500;
  p.payload = Buffer::copy_of(pattern(500));
  link.send(std::move(p));
  eng.run();
  EXPECT_EQ(delivered, SimTime{} + usec(10));  // 1000 wire bytes
}

class FabricTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  FabricConfig cfg_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::vector<Packet>> received_;

  NodeId add(const std::string& name) {
    const auto idx = received_.size();
    received_.emplace_back();
    return fabric_->add_node(name, [this, idx](Packet p) {
      received_[idx].push_back(std::move(p));
    });
  }

  void SetUp() override { fabric_ = std::make_unique<Fabric>(eng_, cfg_); }
};

TEST_F(FabricTest, DeliversToAddressedNodeOnly) {
  const NodeId a = add("a"), b = add("b"), c = add("c");
  Packet p;
  p.src = a;
  p.dst = b;
  p.payload = Buffer::copy_of(pattern(64));
  fabric_->send(std::move(p));
  eng_.run();
  EXPECT_EQ(received_[a].size(), 0u);
  ASSERT_EQ(received_[b].size(), 1u);
  EXPECT_EQ(received_[c].size(), 0u);
  EXPECT_EQ(received_[b][0].payload.size(), 64u);
}

TEST_F(FabricTest, PayloadBytesSurviveTransit) {
  const NodeId a = add("a"), b = add("b");
  const auto data = pattern(5000, 3);
  Packet p;
  p.src = a;
  p.dst = b;
  p.payload = Buffer::copy_of(data);
  fabric_->send(std::move(p));
  eng_.run();
  ASSERT_EQ(received_[b].size(), 1u);
  const auto v = received_[b][0].payload.view();
  EXPECT_TRUE(std::equal(v.begin(), v.end(), data.begin()));
}

TEST(FabricContention, TwoSendersShareOneDownlink) {
  // Both a and b stream to c; c's downlink (2 Gb/s) is the bottleneck, so
  // the total delivery time is roughly double a single sender's.
  auto run = [](bool both) {
    sim::Engine eng;
    Fabric fabric(eng);
    const NodeId a = fabric.add_node("a", [](Packet) {});
    const NodeId b = fabric.add_node("b", [](Packet) {});
    const NodeId c = fabric.add_node("c", [](Packet) {});
    for (int i = 0; i < 64; ++i) {
      Packet p;
      p.src = a;
      p.dst = c;
      p.payload = Buffer::copy_of(pattern(4096));
      fabric.send(std::move(p));
      if (both) {
        Packet q;
        q.src = b;
        q.dst = c;
        q.payload = Buffer::copy_of(pattern(4096));
        fabric.send(std::move(q));
      }
    }
    eng.run();
    return eng.now().ns;
  };
  const auto t1 = run(false);
  const auto t2 = run(true);
  EXPECT_GT(t2, t1 * 18 / 10);  // ~2x, allowing pipeline edge effects
  EXPECT_LT(t2, t1 * 22 / 10);
}

TEST_F(FabricTest, FifoOrderPreservedPerFlow) {
  const NodeId a = add("a"), b = add("b");
  for (std::uint32_t i = 0; i < 10; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.frag_index = i;
    p.payload = Buffer::copy_of(pattern(128));
    fabric_->send(std::move(p));
  }
  eng_.run();
  ASSERT_EQ(received_[b].size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(received_[b][i].frag_index, i);
  }
}

}  // namespace
}  // namespace ordma::net
