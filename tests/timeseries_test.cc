// Windowed time-series telemetry tests (obs/timeseries.h):
//
//   * MetricsRegistry::delta_snapshot — counter/cumulative-gauge deltas,
//     point gauges, per-bucket histogram deltas, and the partition property
//     for entries that appear mid-run;
//   * histogram_quantile_from_counts — nearest-rank pins and the finite
//     overflow clamp;
//   * the engine's periodic sampling hook — grid boundary semantics, the
//     fires-before-same-instant-events rule, and zero perturbation;
//   * TimeseriesSampler — window sums partition run totals exactly,
//     trailing partial windows, ring drop behavior, JSON/CSV rendering;
//   * summarize_phases — warmup/steady/saturation/degraded labeling on
//     synthetic series;
//   * a full-cluster run pinned bit-identical with sampling on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/engine.h"

namespace ordma {
namespace {

using obs::MetricsRegistry;

// --- delta snapshots --------------------------------------------------------

TEST(MetricsDelta, CountersBecomeWindowDeltas) {
  MetricsRegistry reg;
  auto& ops = reg.counter("app/ops");
  MetricsRegistry::DeltaCursor cur;
  std::vector<MetricsRegistry::Delta> out;

  ops.inc(5);
  reg.delta_snapshot(cur, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0].path, "app/ops");
  EXPECT_EQ(out[0].kind, MetricsRegistry::Kind::counter);
  EXPECT_EQ(out[0].value, 5.0);

  ops.inc(3);
  reg.delta_snapshot(cur, out);
  EXPECT_EQ(out[0].value, 3.0);

  // Quiet window: the delta is zero, not a repeat of the total.
  reg.delta_snapshot(cur, out);
  EXPECT_EQ(out[0].value, 0.0);
}

TEST(MetricsDelta, CumulativeGaugesDifferencePointGaugesSample) {
  MetricsRegistry reg;
  double busy = 100.0;  // monotone total (e.g. cpu busy time)
  double depth = 7.0;   // instantaneous level (e.g. queue depth)
  reg.gauge("host/busy_us", [&busy] { return busy; }, /*cumulative=*/true);
  reg.gauge("host/queue", [&depth] { return depth; });
  MetricsRegistry::DeltaCursor cur;
  std::vector<MetricsRegistry::Delta> out;

  reg.delta_snapshot(cur, out);
  ASSERT_EQ(out.size(), 2u);  // path-sorted: busy_us, queue
  EXPECT_EQ(out[0].kind, MetricsRegistry::Kind::cumulative_gauge);
  EXPECT_EQ(out[0].value, 100.0);  // first window absorbs history
  EXPECT_EQ(out[1].kind, MetricsRegistry::Kind::gauge);
  EXPECT_EQ(out[1].value, 7.0);

  busy = 130.0;
  depth = 2.0;
  reg.delta_snapshot(cur, out);
  EXPECT_EQ(out[0].value, 30.0);  // differenced
  EXPECT_EQ(out[1].value, 2.0);   // point sample, not a delta
}

TEST(MetricsDelta, HistogramsDifferencePerBucket) {
  MetricsRegistry reg;
  auto& h = reg.histogram("op/lat_us");
  MetricsRegistry::DeltaCursor cur;
  std::vector<MetricsRegistry::Delta> out;

  h.add(usec(3));   // bucket [2,4)
  h.add(usec(3));
  h.add(usec(100));  // bucket [64,128)
  reg.delta_snapshot(cur, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, MetricsRegistry::Kind::histogram);
  EXPECT_EQ(out[0].value, 3.0);  // delta event count
  EXPECT_DOUBLE_EQ(out[0].h_sum_us, 106.0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < LatencyHistogram::bucket_count(); ++b) {
    total += out[0].h_buckets[b];
  }
  EXPECT_EQ(total, 3u);

  // Next window only sees the new events.
  h.add(usec(5));  // bucket [4,8)
  reg.delta_snapshot(cur, out);
  EXPECT_EQ(out[0].value, 1.0);
  EXPECT_DOUBLE_EQ(out[0].h_sum_us, 5.0);
  EXPECT_EQ(out[0].h_buckets[3], 1u);  // [4,8) is bucket 3
  EXPECT_EQ(out[0].h_buckets[2], 0u);  // earlier window's events gone
}

TEST(MetricsDelta, EntryAddedMidRunDeliversFullTotalOnce) {
  // The partition property: however late an entry appears, the sum of its
  // window deltas equals its final total — the first delta after creation
  // is the entire total so far.
  MetricsRegistry reg;
  reg.counter("a").inc(2);
  MetricsRegistry::DeltaCursor cur;
  std::vector<MetricsRegistry::Delta> out;
  reg.delta_snapshot(cur, out);
  ASSERT_EQ(out.size(), 1u);

  reg.counter("b").inc(9);  // appears between snapshots
  reg.counter("a").inc(1);
  reg.delta_snapshot(cur, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*out[0].path, "a");
  EXPECT_EQ(out[0].value, 1.0);
  EXPECT_EQ(*out[1].path, "b");
  EXPECT_EQ(out[1].value, 9.0);  // full total, exactly once

  reg.delta_snapshot(cur, out);
  EXPECT_EQ(out[1].value, 0.0);
}

// --- nearest-rank quantiles -------------------------------------------------

TEST(Timeseries, HistogramQuantileNearestRank) {
  constexpr std::size_t n = LatencyHistogram::bucket_count();
  std::uint64_t counts[n] = {};
  EXPECT_EQ(histogram_quantile_from_counts(counts, n, 0.5), 0.0);

  // 10 events in bucket 2 ([2,4) us), 10 in bucket 6 ([32,64) us): the
  // median sits in bucket 2 (rank 10 of 20), p99 in bucket 6.
  counts[2] = 10;
  counts[6] = 10;
  EXPECT_EQ(histogram_quantile_from_counts(counts, n, 0.5),
            LatencyHistogram::upper_edge_us(2));
  EXPECT_EQ(histogram_quantile_from_counts(counts, n, 0.99),
            LatencyHistogram::upper_edge_us(6));
  EXPECT_EQ(histogram_quantile_from_counts(counts, n, 0.0),
            LatencyHistogram::upper_edge_us(2));  // rank clamps to 1

  // Overflow bucket: no finite upper edge, so the quantile reports the
  // bucket's lower edge — finite and JSON-safe.
  std::uint64_t over[n] = {};
  over[n - 1] = 4;
  const double q = histogram_quantile_from_counts(over, n, 0.99);
  EXPECT_TRUE(std::isfinite(q));
  EXPECT_EQ(q, std::ldexp(1.0, static_cast<int>(n) - 2));
}

// --- flag parsing -----------------------------------------------------------

TEST(Timeseries, ParseDuration) {
  Duration d{};
  EXPECT_TRUE(obs::ts::parse_duration("500us", &d));
  EXPECT_EQ(d.ns, 500'000);
  EXPECT_TRUE(obs::ts::parse_duration("2ms", &d));
  EXPECT_EQ(d.ns, 2'000'000);
  EXPECT_TRUE(obs::ts::parse_duration("1s", &d));
  EXPECT_EQ(d.ns, 1'000'000'000);
  EXPECT_TRUE(obs::ts::parse_duration("250000ns", &d));
  EXPECT_EQ(d.ns, 250'000);
  EXPECT_TRUE(obs::ts::parse_duration("123", &d));  // bare ns
  EXPECT_EQ(d.ns, 123);
  EXPECT_FALSE(obs::ts::parse_duration("", &d));
  EXPECT_FALSE(obs::ts::parse_duration("ts.json", &d));
  EXPECT_FALSE(obs::ts::parse_duration("0ms", &d));
  EXPECT_FALSE(obs::ts::parse_duration("-5us", &d));
  EXPECT_FALSE(obs::ts::parse_duration("5min", &d));
}

// --- engine sampling hook ---------------------------------------------------

struct HookLog {
  sim::Engine* eng;
  std::vector<std::int64_t> fired_at;
};

TEST(EngineSamplingHook, FiresAtEveryCrossedGridBoundary) {
  sim::Engine eng;
  HookLog log{&eng, {}};
  std::vector<std::int64_t> events_at;
  eng.schedule_fn(usec(25), [&] { events_at.push_back(eng.now().ns); });
  eng.schedule_fn(usec(75), [&] { events_at.push_back(eng.now().ns); });
  eng.set_sampling_hook(usec(10), &log, +[](void* ctx) {
    auto* l = static_cast<HookLog*>(ctx);
    l->fired_at.push_back(l->eng->now().ns);
  });
  eng.run();
  // One firing per boundary in (0, 75], each with now() set to the
  // boundary — including boundaries crossed in one jump (30..70 between
  // the two events).
  const std::vector<std::int64_t> want{10'000, 20'000, 30'000, 40'000,
                                       50'000, 60'000, 70'000};
  EXPECT_EQ(log.fired_at, want);
  EXPECT_EQ(events_at, (std::vector<std::int64_t>{25'000, 75'000}));
  eng.clear_sampling_hook();
}

TEST(EngineSamplingHook, BoundaryCoincidingWithEventFiresFirst) {
  // A boundary that lands exactly on an event instant closes its window
  // *before* the events at that instant run: those events belong to the
  // window the boundary opens.
  sim::Engine eng;
  std::vector<std::string> order;
  struct Ctx {
    std::vector<std::string>* order;
  } ctx{&order};
  eng.schedule_fn(usec(10), [&] { order.push_back("event@10us"); });
  eng.set_sampling_hook(usec(10), &ctx, +[](void* c) {
    static_cast<Ctx*>(c)->order->push_back("hook@boundary");
  });
  eng.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"hook@boundary", "event@10us"}));
  eng.clear_sampling_hook();
}

TEST(EngineSamplingHook, DoesNotPerturbEventOrderOrClock) {
  // The hook rides time advancement without touching the event queues: the
  // same workload must see identical timestamps and final clock with the
  // hook armed and without.
  auto run_workload = [](bool hooked) {
    sim::Engine eng;
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < 32; ++i) {
      eng.schedule_fn(usec(3 * i + 1), [&eng, &h] {
        h = (h ^ static_cast<std::uint64_t>(eng.now().ns)) *
            0x100000001b3ull;
      });
    }
    unsigned fired = 0;
    if (hooked) {
      eng.set_sampling_hook(usec(7), &fired, +[](void* c) {
        ++*static_cast<unsigned*>(c);
      });
    }
    eng.run();
    if (hooked) {
      EXPECT_GT(fired, 0u);
      eng.clear_sampling_hook();
    }
    h = (h ^ static_cast<std::uint64_t>(eng.now().ns)) * 0x100000001b3ull;
    return h;
  };
  EXPECT_EQ(run_workload(false), run_workload(true));
}

// --- sampler ----------------------------------------------------------------

TEST(TimeseriesSampler, WindowsPartitionRunTotalsExactly) {
  sim::Engine eng;
  MetricsRegistry reg;
  auto& ops = reg.counter("app/ops");
  for (int i = 1; i <= 100; ++i) {
    eng.schedule_fn(usec(7 * i), [&ops] { ops.inc(); });
  }
  obs::ts::TimeseriesConfig cfg;
  cfg.interval = usec(50);
  obs::ts::TimeseriesSampler s(eng, reg, cfg);
  eng.run();  // last event at 700us, exactly on a grid boundary
  s.finish();

  // Boundaries 50..700 give 14 windows; finish() always adds the trailing
  // partial window (here holding only the op at 700us itself, which the
  // boundary firing first pushed past window 13).
  ASSERT_EQ(s.windows(), 15u);
  EXPECT_EQ(s.dropped_windows(), 0u);
  double sum = 0;
  for (std::size_t w = 0; w < s.windows(); ++w) {
    sum += s.value("app/ops", w);
  }
  EXPECT_EQ(sum, 100.0);
  EXPECT_EQ(s.value("app/ops", 14), 1.0);  // the boundary-instant op
}

TEST(TimeseriesSampler, RingKeepsNewestWindowsAndCountsDropped) {
  sim::Engine eng;
  MetricsRegistry reg;
  auto& ops = reg.counter("app/ops");
  for (int i = 0; i < 10; ++i) {
    eng.schedule_fn(usec(10 * i + 5), [&ops] { ops.inc(); });
  }
  obs::ts::TimeseriesConfig cfg;
  cfg.interval = usec(10);
  cfg.max_windows = 4;
  obs::ts::TimeseriesSampler s(eng, reg, cfg);
  eng.run();  // events at 5,15,...,95us: one per window
  s.finish();

  // Boundaries 10..90 (9 windows) + trailing partial = 10; capacity 4.
  ASSERT_EQ(s.windows(), 10u);
  EXPECT_EQ(s.dropped_windows(), 6u);
  for (std::size_t w = 6; w < 10; ++w) {
    EXPECT_EQ(s.value("app/ops", w), 1.0) << "window " << w;
  }
}

TEST(TimeseriesSampler, JsonDocumentCarriesGridSeriesAndPhases) {
  sim::Engine eng;
  MetricsRegistry reg;
  auto& ops = reg.counter("app/ops");
  auto& lat = reg.histogram("app/lat_us");
  double level = 3.0;
  reg.gauge("app/level", [&level] { return level; });
  for (int i = 0; i < 40; ++i) {
    eng.schedule_fn(usec(5 * i + 2), [&ops, &lat] {
      ops.inc(2);
      lat.add(usec(3));
    });
  }
  obs::ts::TimeseriesConfig cfg;
  cfg.interval = usec(20);
  cfg.phase_series = "app/ops";
  obs::ts::TimeseriesSampler s(eng, reg, cfg);
  eng.run();
  std::ostringstream os;
  s.write_json(os, "unit.run");
  const std::string j = os.str();

  EXPECT_NE(j.find(R"("schema":"ordma.timeseries.v1")"), std::string::npos);
  EXPECT_NE(j.find(R"("run":"unit.run")"), std::string::npos);
  EXPECT_NE(j.find(R"("interval_ns":20000)"), std::string::npos);
  EXPECT_NE(j.find(R"("app/ops":{"kind":"delta")"), std::string::npos);
  EXPECT_NE(j.find(R"("app/level":{"kind":"sample")"), std::string::npos);
  EXPECT_NE(j.find(R"("app/lat_us":{"kind":"hist","count":)"),
            std::string::npos);
  EXPECT_NE(j.find(R"("p99_us":)"), std::string::npos);
  EXPECT_NE(j.find(R"("phases":{"series":"app/ops")"), std::string::npos);
  EXPECT_NE(j.find(R"("label":"steady")"), std::string::npos);
  // Valid window grid: t_ns starts at 0 and steps by the interval.
  EXPECT_NE(j.find(R"("t_ns":[0,20000,40000)"), std::string::npos);
}

TEST(TimeseriesSampler, CsvBlockExpandsHistogramColumns) {
  sim::Engine eng;
  MetricsRegistry reg;
  auto& lat = reg.histogram("app/lat_us");
  eng.schedule_fn(usec(5), [&lat] { lat.add(usec(3)); });
  obs::ts::TimeseriesConfig cfg;
  cfg.interval = usec(10);
  obs::ts::TimeseriesSampler s(eng, reg, cfg);
  eng.run();
  std::ostringstream os;
  s.write_csv(os, "unit.csv");
  const std::string c = os.str();
  EXPECT_NE(c.find("# run unit.csv interval_ns 10000"), std::string::npos);
  EXPECT_NE(c.find("t_ns,app/lat_us.count,app/lat_us.sum_us,"
                   "app/lat_us.p50_us,app/lat_us.p99_us"),
            std::string::npos);
  EXPECT_NE(c.find("# phase "), std::string::npos);
}

// --- phase summarizer -------------------------------------------------------

TEST(PhaseSummarizer, LabelsWarmupSteadySaturation) {
  std::vector<double> v;
  for (int i = 0; i < 5; ++i) v.push_back(1.0);    // ramp
  for (int i = 0; i < 20; ++i) v.push_back(10.0);  // plateau (longest)
  for (int i = 0; i < 8; ++i) v.push_back(20.0);   // peak
  const auto segs = obs::ts::summarize_phases(v);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].label, obs::ts::Phase::warmup);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 5u);
  EXPECT_EQ(segs[1].label, obs::ts::Phase::steady);
  EXPECT_EQ(segs[1].begin, 5u);
  EXPECT_EQ(segs[1].end, 25u);
  EXPECT_DOUBLE_EQ(segs[1].mean, 10.0);
  EXPECT_EQ(segs[2].label, obs::ts::Phase::saturation);
  EXPECT_EQ(segs[2].end, 33u);
}

TEST(PhaseSummarizer, LabelsDegradedCollapse) {
  std::vector<double> v(20, 10.0);
  for (int i = 0; i < 4; ++i) v.push_back(2.0);  // collapse below 75%
  const auto segs = obs::ts::summarize_phases(v);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].label, obs::ts::Phase::steady);
  EXPECT_EQ(segs[1].label, obs::ts::Phase::degraded);
  EXPECT_DOUBLE_EQ(segs[1].mean, 2.0);
}

TEST(PhaseSummarizer, SingleWindowBlipIsAbsorbed) {
  std::vector<double> v(10, 5.0);
  v[4] = 50.0;  // one-window spike, below the confirm run length
  const auto segs = obs::ts::summarize_phases(v);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].label, obs::ts::Phase::steady);
  EXPECT_EQ(segs[0].begin, 0u);
  EXPECT_EQ(segs[0].end, 10u);
  // The blip sits inside the segment's span but not its mean, so the
  // phase's own windows keep conforming to it.
  EXPECT_DOUBLE_EQ(segs[0].mean, 5.0);
}

TEST(PhaseSummarizer, EmptySeriesYieldsNoSegments) {
  EXPECT_TRUE(obs::ts::summarize_phases({}).empty());
}

// --- full-cluster zero perturbation + partition ----------------------------

struct ClusterRunResult {
  std::int64_t end_ns = 0;
  std::uint64_t reads = 0;
  std::string doc;  // empty when sampling was off
};

ClusterRunResult cluster_run(bool sampled) {
  core::ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  core::Cluster c(cc);
  c.start_nfs();
  auto client = c.make_nfs_client(0, KiB(16));

  std::unique_ptr<MetricsRegistry> reg;
  std::unique_ptr<obs::ts::TimeseriesSampler> sampler;
  if (sampled) {
    reg = std::make_unique<MetricsRegistry>();
    c.export_metrics(*reg);
    obs::ts::TimeseriesConfig cfg;
    cfg.interval = usec(20);
    sampler = std::make_unique<obs::ts::TimeseriesSampler>(c.engine(), *reg,
                                                           cfg);
  }

  ClusterRunResult out;
  bool done = false;
  c.engine().spawn([](core::Cluster& c, core::FileClient& client,
                      ClusterRunResult& out, bool& done) -> sim::Task<void> {
    co_await c.make_file("f", Bytes{KiB(64)}, /*warm=*/true);
    auto open = co_await client.open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(16));
    for (int i = 0; i < 16; ++i) {
      auto r = co_await client.pread(open.value().fh,
                                     (static_cast<Bytes>(i) * KiB(16)) %
                                         KiB(64),
                                     buf, KiB(16));
      ORDMA_CHECK(r.ok());
      ++out.reads;
    }
    done = true;
  }(c, *client, out, done));
  c.engine().run();
  EXPECT_TRUE(done);
  out.end_ns = c.engine().now().ns;

  if (sampled) {
    sampler->finish();
    // Partition property on real cluster series: summing the per-window
    // deltas of a cumulative gauge reproduces its final total.
    MetricsRegistry::DeltaCursor fresh;
    std::vector<MetricsRegistry::Delta> totals;
    reg->delta_snapshot(fresh, totals);
    for (const auto& d : totals) {
      if (d.kind != MetricsRegistry::Kind::counter &&
          d.kind != MetricsRegistry::Kind::cumulative_gauge) {
        continue;
      }
      double sum = 0;
      for (std::size_t w = 0; w < sampler->windows(); ++w) {
        sum += sampler->value(*d.path, w);
      }
      EXPECT_NEAR(sum, d.value, 1e-6) << *d.path;
    }
    std::ostringstream os;
    sampler->write_json(os, "cluster.unit");
    out.doc = os.str();
    sampler.reset();
    reg.reset();
  }
  return out;
}

TEST(TimeseriesSampler, ClusterRunIsBitIdenticalWithSamplingOnAndOff) {
  const ClusterRunResult off = cluster_run(false);
  const ClusterRunResult on = cluster_run(true);
  EXPECT_EQ(off.end_ns, on.end_ns);
  EXPECT_EQ(off.reads, on.reads);
  EXPECT_NE(on.doc.find(R"("schema":"ordma.timeseries.v1")"),
            std::string::npos);
  // And sampling is itself deterministic: same run, same document.
  const ClusterRunResult again = cluster_run(true);
  EXPECT_EQ(on.doc, again.doc);
}

}  // namespace
}  // namespace ordma
