// Seed-driven torture harness for the ORDMA/RPC fallback paths.
//
// Each run builds a full cluster with a deterministic FaultInjector, drives
// a seeded mixed read/write workload through one protocol client while the
// adversarial fault plan drops, duplicates, corrupts and delays frames and
// injects spurious NIC exceptions — then verifies:
//
//   * no lost or duplicated completions (every op returns exactly once and
//     the driver runs to the end — a hung recovery path shows up as the
//     engine draining with the workload unfinished);
//   * data integrity: every successful read matches a byte-exact reference
//     model, and a final fault-free sweep re-verifies the whole file;
//   * bounded retries: under a plan hostile enough to defeat them, ops
//     surface clean errors instead of hanging;
//   * bit-determinism: the same seed produces an identical event-stream
//     hash, with and without tracing, and a zero-probability plan behaves
//     identically to no injector at all.
//
// Seed matrix control:
//   TORTURE_SEEDS=<n>     run seeds 1..n per protocol (default 6; CI: 32)
//   TORTURE_SEED=<s>      replay exactly one seed (failing-seed repro)
//   TORTURE_JOBS=<n>      worker threads for the seed matrix (default: all
//                         cores; 1 = the historical serial run). Results
//                         are bit-identical at any worker count — each run
//                         is a self-contained simulation and every
//                         observability install is thread-local.
//   TORTURE_FAIL_FILE=<p> append "proto seed" lines for failing runs
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "mem/arena.h"
#include "obs/flight.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "rpc/xdr.h"
#include "run/runner.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

// odafs_put / odafs_wb run the ORDMA write path (optimistic put-through /
// write-back) against a coherence server; plain odafs keeps the historical
// RPC write-through behavior. odafs_policy layers the adaptive per-op
// protocol-selection engine (policy/policy.h, all arms unlocked including
// write-back) plus the ARC reference directory on top of the coherence
// server — the faults must not confuse the engine into losing data.
enum class Proto {
  nfs, prepost, dafs, odafs, odafs_put, odafs_wb, odafs_policy
};

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::nfs: return "nfs";
    case Proto::prepost: return "prepost";
    case Proto::dafs: return "dafs";
    case Proto::odafs: return "odafs";
    case Proto::odafs_put: return "odafs_put";
    case Proto::odafs_wb: return "odafs_wb";
    case Proto::odafs_policy: return "odafs_policy";
  }
  return "?";
}

// Must match Cluster::make_file's content generator.
std::vector<std::byte> file_pattern(Bytes size, std::uint64_t seed = 1) {
  std::vector<std::byte> out(size);
  std::uint64_t x = seed;
  for (Bytes i = 0; i < size; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

void fold(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a-style fold, one 64-bit lane at a time.
  h = (h ^ v) * 0x100000001b3ull;
}

struct TortureOptions {
  Proto proto = Proto::nfs;
  std::uint64_t seed = 1;
  bool tracing = false;
  // Fault source: none (no injector at all), zero (all-zero plan installed:
  // must behave identically to `none`), adversarial, or brutal (defeats the
  // bounded retries so give-up paths surface errors).
  enum class Faults { none, zero, adversarial, brutal } faults =
      Faults::adversarial;
  unsigned ops = 32;
  // Verify reads against the reference model. Off for brutal runs: a write
  // that gave up may still have executed server-side, so the model is
  // unknowable there by design.
  bool verify = true;
};

struct TortureResult {
  bool completed = false;            // driver ran to the end
  std::uint64_t completions = 0;     // ops that returned (exactly once each)
  std::uint64_t failures = 0;        // ops that returned an error
  std::uint64_t integrity_violations = 0;
  std::uint64_t hash = 0xcbf29ce484222325ull;  // golden event-stream hash
  std::uint64_t injected = 0;        // total faults the injector fired
  // Flight-recorder postmortem, captured before the cluster (and its rings)
  // is torn down whenever the run looks wrong; report_failure() writes it
  // next to TORTURE_FAIL_FILE so CI uploads it with the failing seeds.
  std::string flight_dump;
};

TortureResult run_torture(const TortureOptions& opt) {
  // Name this run for flight-recorder postmortems: a parallel matrix job
  // that dies identifies its (proto, seed) in the dump header and path.
  obs::flight::ScopedRunLabel label(std::string(proto_name(opt.proto)) +
                                    ".seed" + std::to_string(opt.seed));
  obs::TraceRecorder rec;
  if (opt.tracing) obs::install(&rec);

  TortureResult out;
  {
    ClusterConfig cc;
    cc.fs.block_size = KiB(4);
    switch (opt.faults) {
      case TortureOptions::Faults::none:
        break;
      case TortureOptions::Faults::zero:
        cc.faults = fault::FaultPlan{};  // all probabilities zero
        break;
      case TortureOptions::Faults::adversarial:
        cc.faults = fault::FaultPlan::adversarial(opt.seed);
        break;
      case TortureOptions::Faults::brutal: {
        auto plan = fault::FaultPlan::adversarial(opt.seed);
        plan.gm.drop = 0.5;
        plan.eth.drop = 0.5;
        cc.faults = plan;
        break;
      }
    }
    // Recovery knobs, identical across fault modes so the zero-plan and
    // no-injector runs are comparable event-for-event.
    cc.rpc_retry.timeout = msec(2);
    cc.rpc_retry.max_attempts = 8;
    cc.rpc_retry.backoff = 2.0;
    cc.rpc_retry.max_timeout = msec(50);
    cc.nic.op_timeout = msec(50);
    if (opt.faults == TortureOptions::Faults::brutal) {
      cc.rpc_retry.max_attempts = 3;  // let the give-up paths fire
    }

    Cluster cluster(cc);
    fault::FaultInjector* inj = cluster.fault_injector();
    if (inj) inj->set_armed(false);  // setup runs fault-free

    nas::dafs::DafsClientConfig dafs_cfg;
    dafs_cfg.retry = cc.rpc_retry;
    dafs_cfg.max_io_attempts =
        opt.faults == TortureOptions::Faults::brutal ? 2 : 6;
    std::unique_ptr<core::FileClient> client;
    switch (opt.proto) {
      case Proto::nfs:
        cluster.start_nfs();
        client = cluster.make_nfs_client(0, KiB(32));
        break;
      case Proto::prepost:
        cluster.start_nfs();
        client = cluster.make_prepost_client(0, KiB(32));
        break;
      case Proto::dafs:
        cluster.start_dafs();
        client = cluster.make_dafs_client(0, dafs_cfg);
        break;
      case Proto::odafs:
      case Proto::odafs_put:
      case Proto::odafs_wb:
      case Proto::odafs_policy: {
        nas::dafs::DafsServerConfig scfg;
        scfg.piggyback_refs = true;
        if (opt.proto != Proto::odafs) {
          scfg.writable_refs = true;
          scfg.coherence = true;
        }
        cluster.start_dafs(scfg);
        nas::odafs::OdafsClientConfig cfg;
        cfg.cache.block_size = KiB(4);
        cfg.cache.data_blocks = 24;
        cfg.cache.max_headers = 1 << 14;
        cfg.dafs = dafs_cfg;
        cfg.max_fetch_attempts =
            opt.faults == TortureOptions::Faults::brutal ? 2 : 4;
        if (opt.proto == Proto::odafs_put) {
          cfg.write_policy = nas::odafs::WritePolicy::put_through;
        } else if (opt.proto == Proto::odafs_wb) {
          cfg.write_policy = nas::odafs::WritePolicy::write_back;
        } else if (opt.proto == Proto::odafs_policy) {
          // Every arm unlocked under fire: the engine may flip between
          // RPC, put and write-back mid-run while the ARC directory churns
          // references; integrity and bounded retries must hold anyway.
          cfg.cache.ref_policy = "arc";
          cfg.write_policy = nas::odafs::WritePolicy::put_through;
          cfg.policy.enabled = true;
          cfg.policy.allow_write_back = true;
          cfg.policy.explore_every = 8;  // faults per-arm stay observed
        }
        client = cluster.make_odafs_client(0, cfg);
        break;
      }
    }

    // Timeseries: inert unless the calling thread installed a sink
    // (TimeseriesDoesNotPerturbTheRun does); then this run becomes one
    // windowed document under the same (proto, seed) label as the flight
    // recorder's. Declared after the cluster so the trailing gauge sample
    // runs before teardown.
    obs::ts::RunScope ts_run(cluster.engine(),
                             std::string(proto_name(opt.proto)) + ".seed" +
                                 std::to_string(opt.seed));
    if (ts_run.active()) cluster.export_metrics(ts_run.registry());

    const Bytes fsize = KiB(160);
    std::vector<std::byte> model = file_pattern(fsize);
    const Bytes max_len = KiB(12);

    cluster.engine().spawn([](Cluster& cluster, core::FileClient& client,
                              fault::FaultInjector* inj,
                              const TortureOptions& opt, Bytes fsize,
                              Bytes max_len, std::vector<std::byte>& model,
                              TortureResult& out) -> sim::Task<void> {
      auto& h = cluster.client(0);
      co_await cluster.make_file("t", fsize, /*warm=*/true);
      auto open = co_await client.open("t");
      ORDMA_CHECK(open.ok());
      const std::uint64_t fh = open.value().fh;
      const mem::Vaddr rbuf = h.map_new(h.user_as(), max_len);
      const mem::Vaddr wbuf = h.map_new(h.user_as(), max_len);

      if (inj) inj->set_armed(true);  // workload runs under fire
      Rng rng(0x517cc1b727220a95ull ^ opt.seed);

      for (unsigned i = 0; i < opt.ops; ++i) {
        const bool is_write = rng.below(4) == 3;  // 25% writes
        Bytes off = rng.below(fsize);
        Bytes len = 1 + rng.below(max_len - 1);
        if (off + len > fsize) len = fsize - off;  // keep the size fixed

        if (is_write) {
          std::vector<std::byte> data(len);
          std::uint64_t x = rng.below(~std::uint64_t{0});
          for (Bytes j = 0; j < len; ++j) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            data[j] = static_cast<std::byte>(x >> 56);
          }
          ORDMA_CHECK(h.user_as().write(wbuf, data).ok());
          auto n = co_await client.pwrite(fh, off, wbuf, len);
          ++out.completions;
          fold(out.hash, i);
          fold(out.hash, 1);
          fold(out.hash, off);
          fold(out.hash, len);
          fold(out.hash, static_cast<std::uint64_t>(n.code()));
          fold(out.hash, n.ok() ? n.value() : 0);
          if (n.ok() && n.value() == len) {
            std::copy(data.begin(), data.end(), model.begin() + off);
          } else {
            ++out.failures;
          }
        } else {
          auto n = co_await client.pread(fh, off, rbuf, len);
          ++out.completions;
          fold(out.hash, i);
          fold(out.hash, 0);
          fold(out.hash, off);
          fold(out.hash, len);
          fold(out.hash, static_cast<std::uint64_t>(n.code()));
          fold(out.hash, n.ok() ? n.value() : 0);
          if (!n.ok()) {
            ++out.failures;
          } else {
            std::vector<std::byte> got(n.value());
            ORDMA_CHECK(h.user_as().read(rbuf, got).ok());
            fold(out.hash, rpc::checksum32(got));
            if (opt.verify &&
                (n.value() != len ||
                 !std::equal(got.begin(), got.end(), model.begin() + off))) {
              ++out.integrity_violations;
            }
          }
        }
        fold(out.hash, static_cast<std::uint64_t>(
                           cluster.engine().now().ns));
      }

      // Flush while still under fire (write-back buffers; a no-op for
      // write-through protocols). A failed flush counts as a failed op.
      {
        auto st = co_await client.sync();
        fold(out.hash, static_cast<std::uint64_t>(st.code()));
        if (!st.ok()) ++out.failures;
      }

      // Final sweep with faults off: the file must match the model exactly
      // (catches damage that in-flight verification couldn't see, e.g. a
      // write torn server-side).
      if (inj) inj->set_armed(false);
      if (opt.verify) {
        for (Bytes off = 0; off < fsize; off += max_len) {
          const Bytes len = std::min<Bytes>(max_len, fsize - off);
          auto n = co_await client.pread(fh, off, rbuf, len);
          if (!n.ok() || n.value() != len) {
            ++out.integrity_violations;
            continue;
          }
          std::vector<std::byte> got(len);
          ORDMA_CHECK(h.user_as().read(rbuf, got).ok());
          fold(out.hash, rpc::checksum32(got));
          if (!std::equal(got.begin(), got.end(), model.begin() + off)) {
            ++out.integrity_violations;
          }
        }
      }
      fold(out.hash, static_cast<std::uint64_t>(cluster.engine().now().ns));
      out.completed = true;
    }(cluster, *client, inj, opt, fsize, max_len, model, out));

    cluster.engine().run();
    if (inj) {
      out.injected = inj->frames_dropped() + inj->frames_corrupt_dropped() +
                     inj->frames_corrupted() + inj->frames_duplicated() +
                     inj->frames_delayed() + inj->doorbell_stalls() +
                     inj->cap_revokes() + inj->tlb_invalidates() +
                     inj->disk_errors() + inj->disk_spikes();
    }
    if (!out.completed || out.completions != opt.ops ||
        out.integrity_violations > 0 || out.failures > 0) {
      out.flight_dump = obs::flight::dump_all_string("torture failure");
    }
  }

  if (opt.tracing) EXPECT_GT(rec.event_count(), 0u);
  return out;  // `rec` uninstalls itself on destruction
}

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

void report_failure(Proto proto, std::uint64_t seed,
                    const std::string& flight_dump = {}) {
  std::string dump_path;
  if (const char* path = std::getenv("TORTURE_FAIL_FILE"); path && *path) {
    std::ofstream f(path, std::ios::app);
    f << proto_name(proto) << ' ' << seed << '\n';
    if (!flight_dump.empty()) {
      // The postmortem goes next to the fail file, one per failing run, so
      // CI can upload the whole directory as a single artifact.
      dump_path = std::string(path) + ".flight." + proto_name(proto) + "." +
                  std::to_string(seed) + ".txt";
      std::ofstream d(dump_path);
      d << flight_dump;
    }
  }
  ADD_FAILURE() << "torture run failed for proto=" << proto_name(proto)
                << " seed=" << seed << "\nreproduce with: TORTURE_SEED="
                << seed << " ./torture_tests --gtest_filter='Torture.Seed*'"
                << (dump_path.empty()
                        ? ""
                        : "\nflight-recorder postmortem: " + dump_path);
}

constexpr Proto kAllProtos[] = {Proto::nfs,       Proto::prepost,
                                Proto::dafs,      Proto::odafs,
                                Proto::odafs_put, Proto::odafs_wb,
                                Proto::odafs_policy};

// --- the seed matrix --------------------------------------------------------

TEST(Torture, SeedMatrixSurvivesAdversarialPlan) {
  std::vector<std::uint64_t> seeds;
  if (const char* one = std::getenv("TORTURE_SEED"); one && *one) {
    seeds.push_back(std::strtoull(one, nullptr, 10));
  } else {
    const unsigned n = env_unsigned("TORTURE_SEEDS", 6);
    for (std::uint64_t s = 1; s <= n; ++s) seeds.push_back(s);
  }

  // Flatten the (proto × seed) matrix into independent jobs and fan them
  // over the experiment runner. Workers only produce TortureResults; all
  // gtest assertions and failure reporting stay on this thread.
  struct Job {
    Proto proto;
    std::uint64_t seed;
  };
  std::vector<Job> matrix;
  for (const Proto proto : kAllProtos) {
    for (const std::uint64_t seed : seeds) matrix.push_back({proto, seed});
  }
  run::ParallelRunner runner(run::env_jobs_named("TORTURE_JOBS"));
  auto results = runner.map(matrix.size(), [&matrix](std::size_t i) {
    // Per-trial arena, reset and reused between a worker's trials — same
    // discipline as bench::sweep cells.
    mem::ScopedSimArena arena;
    TortureOptions opt;
    opt.proto = matrix[i].proto;
    opt.seed = matrix[i].seed;
    return run_torture(opt);
  });

  std::size_t i = 0;
  for (const Proto proto : kAllProtos) {
    std::uint64_t injected = 0;
    for (const std::uint64_t seed : seeds) {
      const TortureResult& r = results[i++];
      const TortureOptions opt;  // for the op count only
      const bool ok = r.completed && r.completions == opt.ops &&
                      r.failures == 0 && r.integrity_violations == 0;
      if (!ok) {
        report_failure(proto, seed, r.flight_dump);
        EXPECT_TRUE(r.completed) << "lost completion (driver hung)";
        EXPECT_EQ(r.completions, opt.ops);
        EXPECT_EQ(r.failures, 0u);
        EXPECT_EQ(r.integrity_violations, 0u);
      }
      injected += r.injected;
    }
    // Across the matrix the plan must actually have been firing faults —
    // otherwise these runs prove nothing about the recovery paths.
    EXPECT_GT(injected, 0u) << proto_name(proto);
  }
}

// --- determinism ------------------------------------------------------------

TEST(Torture, SameSeedSameHash) {
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 5;
    const TortureResult a = run_torture(opt);
    const TortureResult b = run_torture(opt);
    EXPECT_TRUE(a.completed && b.completed) << proto_name(proto);
    EXPECT_EQ(a.hash, b.hash) << proto_name(proto);
    EXPECT_EQ(a.injected, b.injected) << proto_name(proto);
  }
}

TEST(Torture, TracingDoesNotPerturbTheRun) {
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 7;
    const TortureResult plain = run_torture(opt);
    opt.tracing = true;
    const TortureResult traced = run_torture(opt);
    EXPECT_TRUE(plain.completed && traced.completed) << proto_name(proto);
    EXPECT_EQ(plain.hash, traced.hash) << proto_name(proto);
  }
}

TEST(Torture, FlightRecorderDoesNotPerturbTheRun) {
  // The recorder is an observer: golden hashes must be identical with it on
  // (the default) and off, under the full adversarial plan. It must also
  // draw no randomness — `injected` counts every RNG-driven decision that
  // fired and must match exactly.
  ASSERT_TRUE(obs::flight::enabled());
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 9;
    const TortureResult on = run_torture(opt);
    obs::flight::set_enabled(false);
    const TortureResult off = run_torture(opt);
    obs::flight::set_enabled(true);
    EXPECT_TRUE(on.completed && off.completed) << proto_name(proto);
    EXPECT_EQ(on.hash, off.hash) << proto_name(proto);
    EXPECT_EQ(on.injected, off.injected) << proto_name(proto);
  }
}

TEST(Torture, TimeseriesDoesNotPerturbTheRun) {
  // The windowed sampler rides the engine's time-advance hook: it adds no
  // events, draws no randomness, and allocates only at series creation —
  // so the golden hash and the injector's fired-fault count must be
  // identical with a sink installed and without, under the full
  // adversarial plan.
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 13;
    const TortureResult plain = run_torture(opt);

    obs::ts::TimeseriesConfig cfg;
    cfg.interval = usec(100);
    obs::ts::TimeseriesSink sink(obs::ts::TimeseriesSink::Format::json, cfg);
    obs::ts::install(&sink);
    const TortureResult sampled = run_torture(opt);
    obs::ts::install(nullptr);

    EXPECT_TRUE(plain.completed && sampled.completed) << proto_name(proto);
    EXPECT_EQ(plain.hash, sampled.hash) << proto_name(proto);
    EXPECT_EQ(plain.injected, sampled.injected) << proto_name(proto);
    ASSERT_EQ(sink.runs(), 1u) << proto_name(proto);
    EXPECT_NE(sink.doc(0).find("\"schema\":\"ordma.timeseries.v1\""),
              std::string::npos)
        << proto_name(proto);
  }
}

TEST(Torture, ZeroPlanIsIdenticalToNoInjector) {
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 3;
    opt.faults = TortureOptions::Faults::none;
    const TortureResult none = run_torture(opt);
    opt.faults = TortureOptions::Faults::zero;
    const TortureResult zero = run_torture(opt);
    EXPECT_TRUE(none.completed && zero.completed) << proto_name(proto);
    EXPECT_EQ(none.failures, 0u) << proto_name(proto);
    EXPECT_EQ(none.hash, zero.hash) << proto_name(proto);
    EXPECT_EQ(zero.injected, 0u) << proto_name(proto);
  }
}

// --- bounded retries --------------------------------------------------------

TEST(Torture, BrutalPlanSurfacesCleanErrorsWithoutHanging) {
  for (const Proto proto : kAllProtos) {
    TortureOptions opt;
    opt.proto = proto;
    opt.seed = 11;
    opt.faults = TortureOptions::Faults::brutal;
    opt.verify = false;  // failed writes make the reference model unknowable
    TortureResult r = run_torture(opt);
    EXPECT_TRUE(r.completed)
        << proto_name(proto) << ": an op hung instead of giving up";
    EXPECT_EQ(r.completions, opt.ops) << proto_name(proto);
    EXPECT_GT(r.failures, 0u)
        << proto_name(proto)
        << ": a 50% drop rate with weak retries must defeat some ops";
    // Giving up is still deterministic: same seed, same outcome.
    EXPECT_EQ(run_torture(opt).hash, r.hash) << proto_name(proto);
  }
}

}  // namespace
}  // namespace ordma
