// Unit tests for the NIC: GM messaging, ORDMA get/put with capabilities and
// faults, TPT/TLB pin semantics, Ethernet pre-posting with header split.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "host/host.h"
#include "net/fabric.h"
#include "nic/nic.h"
#include "sim/engine.h"

namespace ordma::nic {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 37 + seed) & 0xff);
  }
  return v;
}

class NicTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  net::Fabric fabric_{eng_};
  std::optional<host::Host> ha_, hb_;
  std::optional<Nic> na_, nb_;

  void make_hosts(NicConfig cfg = {}) {
    ha_.emplace(eng_, "a", cm_);
    hb_.emplace(eng_, "b", cm_);
    na_.emplace(*ha_, fabric_, cfg, crypto::SipKey{1, 2});
    nb_.emplace(*hb_, fabric_, cfg, crypto::SipKey{3, 4});
  }

  void SetUp() override { make_hosts(); }

  // Map + fill a buffer in host b's user space; export it; return cap.
  crypto::Capability export_buffer(const std::vector<std::byte>& data,
                                   crypto::SegPerm perm, bool pin_now = true) {
    const mem::Vaddr va = hb_->map_new(hb_->user_as(), data.size());
    ORDMA_CHECK(hb_->user_as().write(va, data).ok());
    auto cap = nb_->export_segment(hb_->user_as(), va, data.size(), perm,
                                   pin_now);
    ORDMA_CHECK(cap.ok());
    exported_va_ = va;
    return cap.value();
  }

  mem::Vaddr exported_va_ = 0;
};

TEST_F(NicTest, GmSendDeliversExactBytesAcrossFragments) {
  auto& port = nb_->open_port(7);
  const auto data = pattern(20000);  // 5 GM fragments

  std::optional<Nic::GmMessage> got;
  eng_.spawn([](sim::Channel<Nic::GmMessage>& port,
                std::optional<Nic::GmMessage>& got) -> sim::Task<void> {
    got = co_await port.recv();
  }(port, got));
  eng_.spawn(na_->gm_send(nb_->node_id(), 7, 42,
                          net::Buffer::copy_of(data)));
  eng_.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, na_->node_id());
  EXPECT_EQ(got->user_tag, 42u);
  const auto v = got->data.view();
  ASSERT_EQ(v.size(), data.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), data.begin()));
}

TEST_F(NicTest, GmSendZeroLengthMessage) {
  auto& port = nb_->open_port(1);
  std::optional<Nic::GmMessage> got;
  eng_.spawn([](sim::Channel<Nic::GmMessage>& port,
                std::optional<Nic::GmMessage>& got) -> sim::Task<void> {
    got = co_await port.recv();
  }(port, got));
  eng_.spawn(na_->gm_send(nb_->node_id(), 1, 9, net::Buffer()));
  eng_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data.size(), 0u);
}

TEST_F(NicTest, GetReadsExportedMemory) {
  const auto data = pattern(8192);
  const auto cap = export_buffer(data, crypto::SegPerm::read);

  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base, cap.length, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();

  ASSERT_TRUE(res.ok());
  const auto v = res.value().view();
  ASSERT_EQ(v.size(), data.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), data.begin()));
  EXPECT_EQ(nb_->ordma_served(), 1u);
  EXPECT_EQ(nb_->ordma_faults(), 0u);
}

TEST_F(NicTest, GetSubRangeWithinSegment) {
  const auto data = pattern(8192);
  const auto cap = export_buffer(data, crypto::SegPerm::read);

  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base + 1000, 2000, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  ASSERT_TRUE(res.ok());
  const auto v = res.value().view();
  ASSERT_EQ(v.size(), 2000u);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), data.begin() + 1000));
}

TEST_F(NicTest, GetBeyondSegmentFaults) {
  const auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base + 2048, 4096, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  EXPECT_EQ(res.code(), Errc::access_fault);
  EXPECT_EQ(nb_->ordma_faults(), 1u);
}

TEST_F(NicTest, ForgedCapabilityRejected) {
  auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  cap.length = 1 << 20;  // forged: widen the grant without re-MAC
  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base, 4096, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  EXPECT_EQ(res.code(), Errc::revoked);
}

TEST_F(NicTest, RevokedSegmentFaultsFutureGets) {
  const auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  nb_->revoke_segment(cap.segment_id);
  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base, cap.length, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  EXPECT_EQ(res.code(), Errc::access_fault);
}

TEST_F(NicTest, RevokedSegmentPutLeavesMemoryUntouched) {
  // Isolation half of revocation: a put against a revoked capability must
  // fail with access_fault AND leave the target bytes exactly as they were
  // — no partial DMA, even for a multi-fragment transfer.
  const auto initial = pattern(20000, 3);
  const auto cap = export_buffer(initial, crypto::SegPerm::read_write);
  nb_->revoke_segment(cap.segment_id);

  Status st = Status::Ok();
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Status& out) -> sim::Task<void> {
    out = co_await nic.gm_put(dst, cap.base,
                              net::Buffer::copy_of(pattern(20000, 9)), cap);
  }(*na_, nb_->node_id(), cap, st));
  eng_.run();

  EXPECT_EQ(st.code(), Errc::access_fault);
  std::vector<std::byte> now(initial.size());
  ASSERT_TRUE(hb_->user_as().read(exported_va_, now).ok());
  EXPECT_TRUE(now == initial) << "revoked put landed bytes";
}

TEST_F(NicTest, MidTransferRevokeNeverPartiallyLands) {
  // Revoke while the put's fragments are still on the wire. The target NIC
  // resolves the capability only after full reassembly, so the transfer
  // must either land completely (revoke arrived too late) or not at all —
  // and with the revoke scheduled before the first fragment's delivery it
  // must be not-at-all, surfaced as access_fault.
  const auto initial = pattern(20000, 3);
  const auto cap = export_buffer(initial, crypto::SegPerm::read_write);

  Status st = Status::Ok();
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Status& out) -> sim::Task<void> {
    out = co_await nic.gm_put(dst, cap.base,
                              net::Buffer::copy_of(pattern(20000, 9)), cap);
  }(*na_, nb_->node_id(), cap, st));
  // 20000 bytes at 2 Gb/s is tens of microseconds of serialisation; 1 us is
  // comfortably before the first fragment is delivered.
  eng_.schedule_fn(usec(1), [this, &cap] { nb_->revoke_segment(cap.segment_id); });
  eng_.run();

  EXPECT_EQ(st.code(), Errc::access_fault);
  std::vector<std::byte> now(initial.size());
  ASSERT_TRUE(hb_->user_as().read(exported_va_, now).ok());
  EXPECT_TRUE(now == initial) << "partial DMA from a mid-transfer revoke";
}

TEST_F(NicTest, RevokeUnpinsPages) {
  const auto cap = export_buffer(pattern(8192), crypto::SegPerm::read);
  // Registration (pin_now) pinned both pages via TLB residency.
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(exported_va_))->pin_count, 1);
  nb_->revoke_segment(cap.segment_id);
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(exported_va_))->pin_count, 0);
  EXPECT_EQ(
      hb_->user_as().lookup(mem::page_of(exported_va_) + 1)->pin_count, 0);
}

TEST_F(NicTest, PutWritesRemoteMemory) {
  const auto initial = pattern(4096, 1);
  const auto cap = export_buffer(initial, crypto::SegPerm::read_write);
  const auto update = pattern(512, 9);

  Status st(Errc::timed_out);
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                net::Buffer data, Status& out) -> sim::Task<void> {
    out = co_await nic.gm_put(dst, cap.base + 100, std::move(data), cap);
  }(*na_, nb_->node_id(), cap, net::Buffer::copy_of(update), st));
  eng_.run();

  ASSERT_TRUE(st.ok());
  std::vector<std::byte> now(4096);
  ASSERT_TRUE(hb_->user_as().read(exported_va_, now).ok());
  for (std::size_t i = 0; i < 4096; ++i) {
    const std::byte expect =
        (i >= 100 && i < 612) ? update[i - 100] : initial[i];
    ASSERT_EQ(now[i], expect) << "offset " << i;
  }
}

TEST_F(NicTest, PutToReadOnlySegmentFaults) {
  const auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  Status st = Status::Ok();
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Status& out) -> sim::Task<void> {
    out = co_await nic.gm_put(dst, cap.base, net::Buffer::copy_of(pattern(64)),
                              cap);
  }(*na_, nb_->node_id(), cap, st));
  eng_.run();
  EXPECT_EQ(st.code(), Errc::access_fault);
}

TEST_F(NicTest, CapabilitiesDisabledSkipsVerification) {
  cm_.capabilities_enabled = false;
  make_hosts();
  auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  cap.mac ^= 0xdeadbeef;  // forged MAC goes unnoticed when disabled
  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base, cap.length, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  EXPECT_TRUE(res.ok());
}

TEST_F(NicTest, LazyExportMissesThenHits) {
  NicConfig cfg;
  cfg.preload_tlb = false;
  make_hosts(cfg);
  cm_.nic_tlb_miss = usec(50);  // keep the test fast
  const auto data = pattern(4096);
  const auto cap = export_buffer(data, crypto::SegPerm::read,
                                 /*pin_now=*/false);
  EXPECT_EQ(nb_->tlb().size(), 0u);

  auto get_once = [&]() {
    Result<net::Buffer> res = Errc::timed_out;
    eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                  Result<net::Buffer>& out) -> sim::Task<void> {
      out = co_await nic.gm_get(dst, cap.base, cap.length, cap);
    }(*na_, nb_->node_id(), cap, res));
    eng_.run();
    return res;
  };

  auto first = get_once();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(nb_->tlb().misses(), 1u);
  EXPECT_EQ(nb_->tlb().size(), 1u);
  // Page pinned while its translation is TLB-resident (§4.1).
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(exported_va_))->pin_count, 1);

  const auto misses_before = nb_->tlb().misses();
  auto second = get_once();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(nb_->tlb().misses(), misses_before);  // hit this time
}

TEST_F(NicTest, TlbEvictionUnpinsLruPage) {
  NicConfig cfg;
  cfg.tlb_entries = 2;
  make_hosts(cfg);
  // Export 3 single-page segments with preload: third insert evicts LRU.
  std::vector<mem::Vaddr> vas;
  for (int i = 0; i < 3; ++i) {
    const auto va = hb_->map_new(hb_->user_as(), mem::kPageSize);
    vas.push_back(va);
    auto cap = nb_->export_segment(hb_->user_as(), va, mem::kPageSize,
                                   crypto::SegPerm::read, true);
    ASSERT_TRUE(cap.ok());
  }
  EXPECT_EQ(nb_->tlb().size(), 2u);
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(vas[0]))->pin_count, 0);
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(vas[1]))->pin_count, 1);
  EXPECT_EQ(hb_->user_as().lookup(mem::page_of(vas[2]))->pin_count, 1);
}

TEST_F(NicTest, EthSendDeliversDatagram) {
  const auto data = pattern(20000);  // 3 Ethernet fragments
  std::optional<Nic::EthDatagram> got;
  nb_->set_eth_sink([&](Nic::EthDatagram d) -> sim::Task<void> {
    got = std::move(d);
    co_return;
  });
  eng_.spawn(na_->eth_send(nb_->node_id(), net::Buffer::copy_of(data)));
  eng_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->rddp_placed);
  const auto v = got->data.view();
  ASSERT_EQ(v.size(), data.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), data.begin()));
}

TEST_F(NicTest, PrepostedBufferReceivesHeaderSplitPayload) {
  // Datagram layout: 128-byte RPC header + 16000-byte payload.
  const Bytes hdr_len = 128;
  const auto payload = pattern(16000, 5);
  auto dgram = pattern(hdr_len, 7);
  dgram.insert(dgram.end(), payload.begin(), payload.end());

  // b pre-posts a user buffer tagged xid=77.
  const mem::Vaddr va = hb_->map_new(hb_->user_as(), payload.size());
  nb_->prepost(77, hb_->user_as(), va, payload.size());

  std::optional<Nic::EthDatagram> got;
  nb_->set_eth_sink([&](Nic::EthDatagram d) -> sim::Task<void> {
    got = std::move(d);
    co_return;
  });
  eng_.spawn(na_->eth_send(nb_->node_id(), net::Buffer::take(dgram), 77,
                           hdr_len, payload.size()));
  eng_.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->rddp_placed);
  EXPECT_EQ(got->rddp_data_len, payload.size());
  // Host stack sees only the header...
  EXPECT_EQ(got->data.size(), hdr_len);
  // ...and the payload landed in the user buffer without host copies.
  std::vector<std::byte> placed(payload.size());
  ASSERT_TRUE(hb_->user_as().read(va, placed).ok());
  EXPECT_EQ(placed, payload);
}

TEST_F(NicTest, UnmatchedXidDeliversWholeDatagram) {
  const auto payload = pattern(4000, 5);
  auto dgram = pattern(64, 7);
  dgram.insert(dgram.end(), payload.begin(), payload.end());
  std::optional<Nic::EthDatagram> got;
  nb_->set_eth_sink([&](Nic::EthDatagram d) -> sim::Task<void> {
    got = std::move(d);
    co_return;
  });
  // xid 99 was never pre-posted.
  eng_.spawn(na_->eth_send(nb_->node_id(), net::Buffer::take(dgram), 99, 64,
                           payload.size()));
  eng_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->rddp_placed);
  EXPECT_EQ(got->data.size(), 64 + payload.size());
}

TEST_F(NicTest, OrdmaDoesNotUseTargetHostCpu) {
  const auto cap = export_buffer(pattern(4096), crypto::SegPerm::read);
  const auto before = hb_->sample_cpu();
  Result<net::Buffer> res = Errc::timed_out;
  eng_.spawn([](Nic& nic, net::NodeId dst, crypto::Capability cap,
                Result<net::Buffer>& out) -> sim::Task<void> {
    out = co_await nic.gm_get(dst, cap.base, cap.length, cap);
  }(*na_, nb_->node_id(), cap, res));
  eng_.run();
  ASSERT_TRUE(res.ok());
  const auto after = hb_->sample_cpu();
  // The paper's central claim: the server CPU is not involved in ORDMA.
  EXPECT_EQ((after.busy - before.busy).ns, 0);
}

}  // namespace
}  // namespace ordma::nic
