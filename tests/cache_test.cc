// Unit tests for the client cache: replacement policies, header/data block
// separation, remote-reference retention across data eviction, delegations.
#include <gtest/gtest.h>

#include <vector>

#include "cache/client_cache.h"
#include "cache/policy.h"
#include "host/host.h"
#include "sim/engine.h"

namespace ordma::cache {
namespace {

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  LruPolicy p;
  PolicyNode a, b, c;
  p.insert(&a);
  p.insert(&b);
  p.insert(&c);
  EXPECT_EQ(p.victim(), &a);
  p.touch(&a);  // a becomes MRU
  EXPECT_EQ(p.victim(), &b);
  p.erase(&b);
  EXPECT_EQ(p.victim(), &c);
}

TEST(MultiQueuePolicy, FrequentlyUsedNodesOutrankOneHitWonders) {
  MultiQueuePolicy p(4, 64);
  PolicyNode hot, cold;
  p.insert(&hot);
  p.insert(&cold);
  for (int i = 0; i < 10; ++i) p.touch(&hot);  // freq 11 → queue 3
  // cold (freq 1, queue 0) must be the victim even though hot was touched
  // more recently *and* earlier.
  EXPECT_EQ(p.victim(), &cold);
}

TEST(MultiQueuePolicy, IdleNodesAreDemoted) {
  MultiQueuePolicy p(4, 4);  // short lifetime
  PolicyNode once_hot, churner;
  p.insert(&once_hot);
  for (int i = 0; i < 7; ++i) p.touch(&once_hot);  // queue 3
  p.insert(&churner);
  // Lots of churner activity ages once_hot past its lifetime.
  for (int i = 0; i < 64; ++i) p.touch(&churner);
  // once_hot should have been demoted at least one level by now; both are
  // candidates but the demotions must not lose nodes.
  EXPECT_NE(p.victim(), nullptr);
  p.erase(&once_hot);
  EXPECT_EQ(p.victim(), &churner);
}

TEST(Policy, FactoryNames) {
  EXPECT_STREQ(make_policy("lru")->name(), "lru");
  EXPECT_STREQ(make_policy("mq")->name(), "multi-queue");
}

class ClientCacheTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  host::Host host_{eng_, "client", cm_, {MiB(64)}};

  ClientCache::Config small_cfg() {
    ClientCache::Config cfg;
    cfg.data_blocks = 2;
    cfg.block_size = KiB(4);
    cfg.max_headers = 8;
    return cfg;
  }

  std::vector<std::byte> pattern(std::size_t n, int seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i + seed) & 0xff);
    }
    return v;
  }
};

TEST_F(ClientCacheTest, DataRoundTrip) {
  ClientCache cache(host_, small_cfg());
  auto& h = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h, KiB(4));
  const auto data = pattern(KiB(4), 3);
  cache.write_block(h, data);
  std::vector<std::byte> out(KiB(4));
  cache.read_block(h, out);
  EXPECT_EQ(out, data);
}

TEST_F(ClientCacheTest, EvictedDataBlockKeepsHeaderAndRef) {
  ClientCache cache(host_, small_cfg());
  RemoteRef ref;
  ref.seg_id = 7;
  ref.va = 0x1000;
  ref.len = KiB(4);

  auto& h0 = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h0, KiB(4));
  cache.set_ref(h0, ref);
  auto& h1 = cache.ensure(BlockKey{1, 1});
  cache.attach_data(h1, KiB(4));
  // Third data block steals h0's slot (LRU)...
  auto& h2 = cache.ensure(BlockKey{1, 2});
  cache.attach_data(h2, KiB(4));

  EXPECT_FALSE(h0.has_data());  // ..."empty" header...
  ASSERT_TRUE(h0.ref.has_value());  // ...which retains the remote ref.
  EXPECT_EQ(h0.ref->seg_id, 7u);
  EXPECT_EQ(cache.refs_held(), 1u);
}

TEST_F(ClientCacheTest, HeaderEvictionDropsRef) {
  auto cfg = small_cfg();
  cfg.max_headers = 3;
  ClientCache cache(host_, cfg);
  RemoteRef ref;
  ref.seg_id = 1;
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.set_ref(cache.ensure(BlockKey{1, i}), ref);
  }
  EXPECT_EQ(cache.refs_held(), 3u);
  cache.ensure(BlockKey{1, 99});  // evicts the coldest header
  EXPECT_EQ(cache.headers(), 3u);
  EXPECT_EQ(cache.refs_held(), 2u);
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
}

TEST_F(ClientCacheTest, FindCountsHitsAndMisses) {
  ClientCache cache(host_, small_cfg());
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_EQ(cache.data_misses(), 1u);
  auto& h = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h, KiB(4));
  EXPECT_NE(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_EQ(cache.data_hits(), 1u);
}

TEST_F(ClientCacheTest, DropFileRemovesAllItsBlocks) {
  ClientCache cache(host_, small_cfg());
  cache.set_ref(cache.ensure(BlockKey{1, 0}), RemoteRef{});
  cache.set_ref(cache.ensure(BlockKey{1, 1}), RemoteRef{});
  cache.set_ref(cache.ensure(BlockKey{2, 0}), RemoteRef{});
  cache.drop_file(1);
  EXPECT_EQ(cache.headers(), 1u);
  EXPECT_EQ(cache.refs_held(), 1u);
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_NE(cache.find(BlockKey{2, 0}), nullptr);
}

TEST_F(ClientCacheTest, MultiQueueDirectoryKeepsHotRefs) {
  auto cfg = small_cfg();
  cfg.max_headers = 4;
  cfg.ref_policy = "mq";
  ClientCache cache(host_, cfg);
  RemoteRef ref;
  auto& hot = cache.ensure(BlockKey{1, 0});
  cache.set_ref(hot, ref);
  for (int i = 0; i < 8; ++i) cache.find(BlockKey{1, 0});  // heat it up
  for (std::uint64_t i = 1; i < 16; ++i) {
    cache.set_ref(cache.ensure(BlockKey{1, i}), ref);
  }
  // The hot header survived the scan of one-hit wonders.
  EXPECT_NE(cache.find(BlockKey{1, 0}), nullptr);
}

TEST(DelegationTable, GrantAndDrop) {
  DelegationTable t;
  EXPECT_FALSE(t.has(5));
  t.grant(5);
  EXPECT_TRUE(t.has(5));
  EXPECT_EQ(t.size(), 1u);
  t.drop(5);
  EXPECT_FALSE(t.has(5));
}

}  // namespace
}  // namespace ordma::cache
