// Unit tests for the client cache: replacement policies, header/data block
// separation, remote-reference retention across data eviction, delegations.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/client_cache.h"
#include "cache/policy.h"
#include "common/rng.h"
#include "host/host.h"
#include "sim/engine.h"

namespace ordma::cache {
namespace {

TEST(LruPolicy, EvictsLeastRecentlyUsed) {
  LruPolicy p;
  PolicyNode a, b, c;
  p.insert(&a);
  p.insert(&b);
  p.insert(&c);
  EXPECT_EQ(p.victim(), &a);
  p.touch(&a);  // a becomes MRU
  EXPECT_EQ(p.victim(), &b);
  p.erase(&b);
  EXPECT_EQ(p.victim(), &c);
}

TEST(MultiQueuePolicy, FrequentlyUsedNodesOutrankOneHitWonders) {
  MultiQueuePolicy p(4, 64);
  PolicyNode hot, cold;
  p.insert(&hot);
  p.insert(&cold);
  for (int i = 0; i < 10; ++i) p.touch(&hot);  // freq 11 → queue 3
  // cold (freq 1, queue 0) must be the victim even though hot was touched
  // more recently *and* earlier.
  EXPECT_EQ(p.victim(), &cold);
}

TEST(MultiQueuePolicy, IdleNodesAreDemoted) {
  MultiQueuePolicy p(4, 4);  // short lifetime
  PolicyNode once_hot, churner;
  p.insert(&once_hot);
  for (int i = 0; i < 7; ++i) p.touch(&once_hot);  // queue 3
  p.insert(&churner);
  // Lots of churner activity ages once_hot past its lifetime.
  for (int i = 0; i < 64; ++i) p.touch(&churner);
  // once_hot should have been demoted at least one level by now; both are
  // candidates but the demotions must not lose nodes.
  EXPECT_NE(p.victim(), nullptr);
  p.erase(&once_hot);
  EXPECT_EQ(p.victim(), &churner);
}

TEST(Policy, FactoryNames) {
  EXPECT_STREQ(make_policy("lru", 16)->name(), "lru");
  EXPECT_STREQ(make_policy("mq", 16)->name(), "multi-queue");
  EXPECT_STREQ(make_policy("arc", 16)->name(), "arc");
}

// --- ARC -------------------------------------------------------------------

TEST(ArcPolicy, GhostHitPromotesToFrequencyList) {
  ArcPolicy p(3);
  PolicyNode a, b, c;
  a.key = 1;
  b.key = 2;
  c.key = 3;
  p.insert(&a);
  p.insert(&b);
  p.insert(&c);  // T1 = {a, b, c}
  EXPECT_EQ(p.t1_size(), 3u);
  EXPECT_EQ(p.victim(), &a);
  p.erase(&a);  // leaves a ghost on B1
  EXPECT_EQ(p.b1_size(), 1u);
  PolicyNode a2;
  a2.key = 1;     // same identity, fresh node (the old header is gone)
  p.insert(&a2);  // B1 ghost hit: resurrected straight into T2...
  EXPECT_EQ(p.t2_size(), 1u);
  EXPECT_EQ(p.t1_size(), 2u);
  EXPECT_EQ(p.b1_size(), 0u);
  EXPECT_EQ(p.target_t1(), 1u);  // ...and p adapted toward recency.
  // T1 (2 entries) still exceeds its grown target (1): the oldest one-hit
  // wonder b is the victim, never the resurrected frequency entry a2.
  EXPECT_EQ(p.victim(), &b);
}

TEST(ArcPolicy, AdaptationParameterStaysBounded) {
  ArcPolicy p(4);
  std::vector<std::unique_ptr<PolicyNode>> keep;
  // insert → (optionally touch into T2) → erase → re-insert: the second
  // insert of the same key is a ghost hit on whichever history list the
  // erase fed.
  auto cycle = [&](std::uint64_t key, bool through_t2) {
    auto n = std::make_unique<PolicyNode>();
    n->key = key;
    p.insert(n.get());
    if (through_t2 && n->queue == 0) p.touch(n.get());
    p.erase(n.get());
    keep.push_back(std::move(n));
  };
  // Hammer B1 ghost hits with fresh keys (each resurrection lands in T2, so
  // a key only ever yields one B1 hit): every hit pushes the T1 target up;
  // it must saturate at capacity instead of growing without bound.
  for (std::uint64_t k = 1; k <= 16; ++k) {
    cycle(k, /*through_t2=*/false);  // T1 eviction -> B1 ghost
    cycle(k, /*through_t2=*/false);  // B1 hit -> T2 -> B2 ghost
    EXPECT_LE(p.target_t1(), p.capacity());
  }
  EXPECT_EQ(p.target_t1(), p.capacity());  // saturated high...
  // ...then hammer B2 ghost hits (touch → T2 → erase → re-insert): p walks
  // back down and, being unsigned, must never wrap below zero.
  for (std::uint64_t k = 100; k < 116; ++k) {
    cycle(k, /*through_t2=*/true);  // T2 eviction -> B2 ghost
    cycle(k, /*through_t2=*/true);  // B2 hit
    EXPECT_LE(p.target_t1(), p.capacity());
  }
  EXPECT_EQ(p.target_t1(), 0u);  // saturated low
}

TEST(ArcPolicy, GhostListsRespectCapacityInvariants) {
  constexpr std::size_t kCap = 8;
  ArcPolicy p(kCap);
  Rng rng(42);
  std::vector<std::unique_ptr<PolicyNode>> pool;
  std::unordered_map<std::uint64_t, PolicyNode*> resident;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.below(32) + 1;
    if (auto it = resident.find(key); it != resident.end()) {
      p.touch(it->second);
    } else {
      pool.push_back(std::make_unique<PolicyNode>());
      pool.back()->key = key;
      p.insert(pool.back().get());
      resident.emplace(key, pool.back().get());
      while (resident.size() > kCap) {
        auto* v = p.victim();
        ASSERT_NE(v, nullptr);
        p.erase(v);
        resident.erase(v->key);
      }
    }
    // The ARC invariants: |T1|+|B1| <= c, everything <= 2c, p in [0, c].
    ASSERT_LE(p.t1_size() + p.b1_size(), kCap);
    ASSERT_LE(p.t1_size() + p.t2_size() + p.b1_size() + p.b2_size(),
              2 * kCap);
    ASSERT_LE(p.target_t1(), kCap);
    ASSERT_EQ(p.t1_size() + p.t2_size(), resident.size());
  }
  // The workload has reuse, so history must actually have been consulted.
  EXPECT_GT(p.t2_size(), 0u);
}

TEST(ArcPolicy, EvictionSequenceIsDeterministic) {
  auto run = [] {
    ArcPolicy p(8);
    Rng rng(7);
    std::vector<std::unique_ptr<PolicyNode>> pool;
    std::unordered_map<std::uint64_t, PolicyNode*> resident;
    std::vector<std::uint64_t> victims;
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t key = rng.below(24) + 1;
      if (auto it = resident.find(key); it != resident.end()) {
        p.touch(it->second);
        continue;
      }
      pool.push_back(std::make_unique<PolicyNode>());
      pool.back()->key = key;
      p.insert(pool.back().get());
      resident.emplace(key, pool.back().get());
      if (resident.size() > 8) {
        auto* v = p.victim();
        victims.push_back(v->key);
        p.erase(v);
        resident.erase(v->key);
      }
    }
    return victims;
  };
  const auto a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

class ClientCacheTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  host::Host host_{eng_, "client", cm_, {MiB(64)}};

  ClientCache::Config small_cfg() {
    ClientCache::Config cfg;
    cfg.data_blocks = 2;
    cfg.block_size = KiB(4);
    cfg.max_headers = 8;
    return cfg;
  }

  std::vector<std::byte> pattern(std::size_t n, int seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i + seed) & 0xff);
    }
    return v;
  }
};

TEST_F(ClientCacheTest, DataRoundTrip) {
  ClientCache cache(host_, small_cfg());
  auto& h = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h, KiB(4));
  const auto data = pattern(KiB(4), 3);
  cache.write_block(h, data);
  std::vector<std::byte> out(KiB(4));
  cache.read_block(h, out);
  EXPECT_EQ(out, data);
}

TEST_F(ClientCacheTest, EvictedDataBlockKeepsHeaderAndRef) {
  ClientCache cache(host_, small_cfg());
  RemoteRef ref;
  ref.seg_id = 7;
  ref.va = 0x1000;
  ref.len = KiB(4);

  auto& h0 = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h0, KiB(4));
  cache.set_ref(h0, ref);
  auto& h1 = cache.ensure(BlockKey{1, 1});
  cache.attach_data(h1, KiB(4));
  // Third data block steals h0's slot (LRU)...
  auto& h2 = cache.ensure(BlockKey{1, 2});
  cache.attach_data(h2, KiB(4));

  EXPECT_FALSE(h0.has_data());  // ..."empty" header...
  ASSERT_TRUE(h0.ref.has_value());  // ...which retains the remote ref.
  EXPECT_EQ(h0.ref->seg_id, 7u);
  EXPECT_EQ(cache.refs_held(), 1u);
}

TEST_F(ClientCacheTest, HeaderEvictionDropsRef) {
  auto cfg = small_cfg();
  cfg.max_headers = 3;
  ClientCache cache(host_, cfg);
  RemoteRef ref;
  ref.seg_id = 1;
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.set_ref(cache.ensure(BlockKey{1, i}), ref);
  }
  EXPECT_EQ(cache.refs_held(), 3u);
  cache.ensure(BlockKey{1, 99});  // evicts the coldest header
  EXPECT_EQ(cache.headers(), 3u);
  EXPECT_EQ(cache.refs_held(), 2u);
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
}

TEST_F(ClientCacheTest, FindCountsHitsAndMisses) {
  ClientCache cache(host_, small_cfg());
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_EQ(cache.data_misses(), 1u);
  auto& h = cache.ensure(BlockKey{1, 0});
  cache.attach_data(h, KiB(4));
  EXPECT_NE(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_EQ(cache.data_hits(), 1u);
}

TEST_F(ClientCacheTest, DropFileRemovesAllItsBlocks) {
  ClientCache cache(host_, small_cfg());
  cache.set_ref(cache.ensure(BlockKey{1, 0}), RemoteRef{});
  cache.set_ref(cache.ensure(BlockKey{1, 1}), RemoteRef{});
  cache.set_ref(cache.ensure(BlockKey{2, 0}), RemoteRef{});
  cache.drop_file(1);
  EXPECT_EQ(cache.headers(), 1u);
  EXPECT_EQ(cache.refs_held(), 1u);
  EXPECT_EQ(cache.find(BlockKey{1, 0}), nullptr);
  EXPECT_NE(cache.find(BlockKey{2, 0}), nullptr);
}

TEST_F(ClientCacheTest, MultiQueueDirectoryKeepsHotRefs) {
  auto cfg = small_cfg();
  cfg.max_headers = 4;
  cfg.ref_policy = "mq";
  ClientCache cache(host_, cfg);
  RemoteRef ref;
  auto& hot = cache.ensure(BlockKey{1, 0});
  cache.set_ref(hot, ref);
  for (int i = 0; i < 8; ++i) cache.find(BlockKey{1, 0});  // heat it up
  for (std::uint64_t i = 1; i < 16; ++i) {
    cache.set_ref(cache.ensure(BlockKey{1, i}), ref);
  }
  // The hot header survived the scan of one-hit wonders.
  EXPECT_NE(cache.find(BlockKey{1, 0}), nullptr);
}

TEST_F(ClientCacheTest, ArcDirectoryKeepsHotRefsUnderScan) {
  auto cfg = small_cfg();
  cfg.max_headers = 4;
  cfg.ref_policy = "arc";
  ClientCache cache(host_, cfg);
  RemoteRef ref;
  auto& hot = cache.ensure(BlockKey{1, 0});
  cache.set_ref(hot, ref);
  for (int i = 0; i < 3; ++i) cache.find(BlockKey{1, 0});  // → T2
  // A one-touch scan twice the directory size: ARC evicts from the recency
  // side, so the hot header's reference survives the whole sweep.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    cache.set_ref(cache.ensure(BlockKey{1, i}), ref);
  }
  EXPECT_NE(cache.find(BlockKey{1, 0}), nullptr);
}

TEST(DelegationTable, GrantAndDrop) {
  DelegationTable t;
  EXPECT_FALSE(t.has(5));
  t.grant(5);
  EXPECT_TRUE(t.has(5));
  EXPECT_EQ(t.size(), 1u);
  t.drop(5);
  EXPECT_FALSE(t.has(5));
}

}  // namespace
}  // namespace ordma::cache
