// Online SLO evaluation (obs/health.h): synthetic ratio and p99 SLOs over
// hand-driven metric windows (trip/clear mechanics, auto-calibration,
// ordma.health.v1 document shape), and a fault-injected cluster run whose
// degraded phase names the violated SLO in the timeseries phase report.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "core/cluster.h"
#include "core/file_client.h"
#include "fault/fault.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ordma {
namespace {

using obs::MetricsRegistry;
using obs::health::HealthMonitor;
using obs::health::HealthSink;
using obs::health::SloSpec;

// A ratio SLO over synthetic counters: trips when both burn windows fire,
// clears when the fast window recovers, and the trip range is recorded.
TEST(Health, RatioSloTripsAndClears) {
  MetricsRegistry reg;
  auto& errors = reg.counter("client0/io/errors");
  auto& ops = reg.counter("client0/io/ops");

  SloSpec spec;
  spec.name = "io_errors";
  spec.kind = SloSpec::Kind::ratio;
  spec.series_suffix = "io/errors";
  spec.total_suffix = "io/ops";
  spec.threshold = 0.01;
  spec.budget = 0.1;
  spec.fast_windows = 3;
  spec.slow_windows = 12;
  HealthMonitor mon(reg, {spec});

  auto window = [&](std::uint64_t e, std::uint64_t o) {
    errors.inc(e);
    ops.inc(o);
    mon.sample_window(static_cast<std::int64_t>(mon.windows()) * 1000);
  };

  // 4 clean windows: healthy.
  for (int i = 0; i < 4; ++i) window(0, 100);
  EXPECT_TRUE(mon.healthy());
  // 3 violating windows (10% errors >> 1% threshold). A 10% budget means a
  // single bad window already burns the fast (1/3 / 0.1 = 3.3x) and slow
  // (1/5 / 0.1 = 2x) windows past threshold: the alert trips at window 4.
  for (int i = 0; i < 3; ++i) window(10, 100);
  ASSERT_EQ(mon.trips().size(), 1u);
  EXPECT_EQ(mon.trips()[0].slo, "io_errors");
  EXPECT_EQ(mon.trips()[0].component, "client0");
  EXPECT_EQ(mon.trips()[0].begin, 4u);
  EXPECT_GT(mon.trips()[0].peak_burn, 1.0);
  // Clean windows: the alert clears once the trailing fast window holds no
  // bad windows at all (window 9, three clean windows after the last bad).
  for (int i = 0; i < 3; ++i) window(0, 100);
  EXPECT_EQ(mon.trips().size(), 1u);
  EXPECT_EQ(mon.trips()[0].end, 9u);
  EXPECT_FALSE(mon.healthy()) << "a recorded trip keeps the run unhealthy";

  // Empty windows (no ops at all) are not judged.
  const auto evaluated_before = mon.windows();
  mon.sample_window(99000);
  EXPECT_EQ(mon.windows(), evaluated_before + 1);
}

// p99 SLO with threshold 0: auto-calibrates to auto_multiplier x the
// median window-p99 of the first calib_windows non-empty windows, then
// judges subsequent windows against it.
TEST(Health, P99AutoCalibratesThenTrips) {
  MetricsRegistry reg;
  auto& h = reg.histogram("client0/io/latency_us");

  SloSpec spec;
  spec.name = "io_p99";
  spec.kind = SloSpec::Kind::p99_latency;
  spec.series_suffix = "io/latency_us";
  spec.threshold = 0;  // auto
  spec.auto_multiplier = 4.0;
  spec.calib_windows = 3;
  spec.budget = 0.25;
  spec.fast_windows = 2;
  spec.slow_windows = 4;
  HealthMonitor mon(reg, {spec});

  auto window = [&](Duration sample) {
    for (int i = 0; i < 8; ++i) h.add(sample);
    mon.sample_window(static_cast<std::int64_t>(mon.windows()) * 1000);
  };

  // 3 calibration windows at ~100us: window p99 is the 128us bucket edge,
  // so the threshold calibrates to 512us. Calibration windows are never
  // judged bad.
  for (int i = 0; i < 3; ++i) window(usec(100));
  EXPECT_TRUE(mon.healthy());
  // A 300us window sits under the calibrated threshold: still healthy.
  window(usec(300));
  EXPECT_TRUE(mon.healthy());
  // Two 1000us windows (p99 = 1024us > 512us): burn_fast = (2/2)/0.25 = 4,
  // burn_slow = (2/3)/0.25 > 1 -> trip.
  window(usec(1000));
  window(usec(1000));
  ASSERT_EQ(mon.trips().size(), 1u);
  EXPECT_EQ(mon.trips()[0].slo, "io_p99");

  std::ostringstream os;
  mon.write_json(os, "synthetic");
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\":\"ordma.health.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"io_p99\""), std::string::npos);
  EXPECT_NE(doc.find("\"calibrated\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"threshold\":512"), std::string::npos);
  EXPECT_NE(doc.find("\"trips\":[{\"slo\":\"io_p99\""), std::string::npos);
}

// A fixed (non-auto) threshold never calibrates off the data, and a run
// with zero violations serializes as healthy with an empty trips array.
TEST(Health, FixedThresholdHealthyRun) {
  MetricsRegistry reg;
  auto& h = reg.histogram("client7/io/latency_us");
  SloSpec spec;
  spec.name = "io_p99";
  spec.kind = SloSpec::Kind::p99_latency;
  spec.series_suffix = "io/latency_us";
  spec.threshold = 5000;  // us, fixed
  HealthMonitor mon(reg, {spec});
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 4; ++i) h.add(usec(200));
    mon.sample_window(w * 1000);
  }
  EXPECT_TRUE(mon.healthy());
  std::ostringstream os;
  mon.write_json(os, "clean");
  EXPECT_NE(os.str().find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(os.str().find("\"trips\":[]"), std::string::npos);
  EXPECT_NE(os.str().find("\"component\":\"client7\""), std::string::npos);
}

// The acceptance-criterion integration path: a fault-injected cluster run
// under RunScope trips a stock-style SLO, the health document records it,
// and the timeseries phase report labels the overlapping phase "degraded"
// naming that SLO.
TEST(Health, DegradedPhaseNamesTheViolatedSlo) {
  using core::Cluster;
  using core::ClusterConfig;

  // A tightened io_p99 so a short test run calibrates and trips quickly.
  SloSpec spec;
  spec.name = "io_p99";
  spec.kind = SloSpec::Kind::p99_latency;
  spec.series_suffix = "io/latency_us";
  spec.threshold = 0;
  spec.auto_multiplier = 4.0;
  spec.calib_windows = 3;
  spec.budget = 0.25;
  spec.fast_windows = 2;
  spec.slow_windows = 4;

  obs::ts::TimeseriesConfig tcfg;
  tcfg.interval = usec(500);
  obs::ts::TimeseriesSink ts_sink(obs::ts::TimeseriesSink::Format::json,
                                  tcfg);
  obs::ts::install(&ts_sink);
  HealthSink h_sink(usec(500), {spec});
  obs::health::install_health_sink(&h_sink);

  {
    ClusterConfig cc;
    cc.faults = fault::FaultPlan{};  // deterministic seed 1
    cc.faults->eth.drop = 0.25;     // heavy loss while armed
    cc.rpc_retry.timeout = usec(500);
    cc.rpc_retry.max_attempts = 10;
    Cluster c(cc);
    c.start_nfs();
    auto client = c.make_nfs_client(0);
    c.fault_injector()->set_armed(false);

    obs::ts::RunScope run(c.engine(), "lossy");
    ASSERT_TRUE(run.active());
    c.export_metrics(run.registry());
    c.export_file_client_metrics(run.registry(), 0, *client);

    constexpr Bytes kIo = KiB(8);
    constexpr int kPhase = 48;
    bool done = false;
    c.engine().spawn([](Cluster& c, core::FileClient& cl, bool& done)
                         -> sim::Task<void> {
      co_await c.make_file("f", static_cast<Bytes>(3 * kPhase) * kIo,
                           /*warm=*/true);
      auto open = co_await cl.open("f");
      ORDMA_CHECK(open.ok());
      auto& h = c.client(0);
      const mem::Vaddr buf = h.map_new(h.user_as(), kIo);
      for (int i = 0; i < 3 * kPhase; ++i) {
        if (i == kPhase) c.fault_injector()->set_armed(true);
        if (i == 2 * kPhase) c.fault_injector()->set_armed(false);
        auto r = co_await cl.pread(open.value().fh,
                                   static_cast<Bytes>(i) * kIo, buf, kIo);
        ORDMA_CHECK(r.ok() && r.value() == kIo);
      }
      done = true;
    }(c, *client, done));
    c.engine().run();
    ASSERT_TRUE(done);
  }  // RunScope destructor: health + timeseries docs land in the sinks

  obs::ts::install(nullptr);
  obs::health::install_health_sink(nullptr);

  ASSERT_EQ(h_sink.runs(), 1u);
  EXPECT_TRUE(h_sink.any_trips());
  std::ostringstream hs;
  h_sink.write(hs);
  const std::string health_doc = hs.str();
  EXPECT_NE(health_doc.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(health_doc.find("\"trips\":[{\"slo\":\"io_p99\""),
            std::string::npos)
      << health_doc;

  ASSERT_EQ(ts_sink.runs(), 1u);
  const std::string ts_doc = ts_sink.doc(0);
  EXPECT_NE(ts_doc.find("\"label\":\"degraded\""), std::string::npos)
      << ts_doc;
  EXPECT_NE(ts_doc.find("\"slo\":\"io_p99\""), std::string::npos)
      << ts_doc;
}

}  // namespace
}  // namespace ordma
