// Property-based tests (parameterized over seeds): randomized operation
// sequences against reference models and invariants that must hold for any
// schedule.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cache/client_cache.h"
#include "cache/policy.h"
#include "common/rng.h"
#include "host/host.h"
#include "nic/tpt.h"
#include "rpc/xdr.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace ordma {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

// --- Resource invariants under random concurrent load -----------------------

TEST_P(Seeded, ResourceNeverExceedsCapacityAndServesEveryone) {
  sim::Engine eng;
  Rng rng(GetParam());
  const unsigned capacity = 1 + rng.below(4);
  sim::Resource res(eng, capacity, "r");
  int completed = 0;
  bool over_capacity = false;
  const int kJobs = 60;

  for (int i = 0; i < kJobs; ++i) {
    eng.spawn([](sim::Engine& eng, sim::Resource& res, Duration start,
                 Duration hold, int& completed, bool& over,
                 unsigned capacity) -> sim::Task<void> {
      co_await eng.delay(start);
      co_await res.acquire();
      sim::Resource::ReleaseGuard guard(res);
      if (res.in_use() > capacity) over = true;
      co_await eng.delay(hold);
      ++completed;
    }(eng, res, usec(rng.below(200)), usec(1 + rng.below(50)), completed,
      over_capacity, capacity));
  }
  eng.run();
  EXPECT_EQ(completed, kJobs);
  EXPECT_FALSE(over_capacity);
  EXPECT_EQ(res.in_use(), 0u);
  EXPECT_EQ(res.queue_length(), 0u);
}

// --- Channel: no loss, no duplication, per-sender FIFO -----------------------

TEST_P(Seeded, ChannelDeliversEveryMessageExactlyOnceInSendOrder) {
  sim::Engine eng;
  Rng rng(GetParam());
  sim::Channel<int> ch(eng);
  std::vector<int> received;
  const int kMsgs = 200;

  eng.spawn([](sim::Channel<int>& ch, std::vector<int>& received)
                -> sim::Task<void> {
    for (int i = 0; i < kMsgs; ++i) received.push_back(co_await ch.recv());
  }(ch, received));
  // Senders fire at random times but tagged with a global sequence assigned
  // at send time, so ordering is checkable.
  auto shared_seq = std::make_shared<int>(0);
  for (int i = 0; i < kMsgs; ++i) {
    eng.schedule_fn(usec(rng.below(500)),
                    [&ch, shared_seq] { ch.send((*shared_seq)++); });
  }
  eng.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(received[i], i);
}

// --- Replacement policies: never lose or duplicate nodes --------------------

TEST_P(Seeded, PoliciesTrackEveryNodeExactlyOnce) {
  Rng rng(GetParam());
  for (const char* name : {"lru", "mq", "arc"}) {
    auto policy = cache::make_policy(name, 64);
    std::vector<std::unique_ptr<cache::PolicyNode>> nodes;
    std::set<cache::PolicyNode*> inside;

    for (int step = 0; step < 2000; ++step) {
      const auto op = rng.below(4);
      if (op == 0 || inside.empty()) {
        nodes.push_back(std::make_unique<cache::PolicyNode>());
        // Distinct identities so ARC's ghost lists behave as in the cache.
        nodes.back()->key = nodes.size();
        policy->insert(nodes.back().get());
        inside.insert(nodes.back().get());
      } else if (op == 1) {
        auto it = inside.begin();
        std::advance(it, rng.below(inside.size()));
        policy->touch(*it);
      } else if (op == 2) {
        auto it = inside.begin();
        std::advance(it, rng.below(inside.size()));
        policy->erase(*it);
        inside.erase(it);
      } else {
        cache::PolicyNode* v = policy->victim();
        if (inside.empty()) {
          EXPECT_EQ(v, nullptr) << name;
        } else {
          ASSERT_NE(v, nullptr) << name;
          EXPECT_TRUE(inside.count(v)) << name << ": victim not tracked";
        }
      }
    }
    // Drain: every tracked node must be evictable exactly once.
    std::size_t drained = 0;
    while (auto* v = policy->victim()) {
      ASSERT_TRUE(inside.count(v));
      policy->erase(v);
      inside.erase(v);
      ++drained;
      ASSERT_LE(drained, nodes.size());
    }
    EXPECT_TRUE(inside.empty()) << name;
  }
}

// --- ClientCache vs reference model ------------------------------------------

TEST_P(Seeded, ClientCacheMatchesReferenceModel) {
  sim::Engine eng;
  host::CostModel cm;
  host::Host hostm(eng, "c", cm, {MiB(64)});
  Rng rng(GetParam());

  cache::ClientCache::Config cfg;
  cfg.data_blocks = 8;
  cfg.block_size = 512;
  cfg.max_headers = 64;
  cache::ClientCache cc(hostm, cfg);

  // Reference: the last value written per key, if the cache claims to have
  // data it must match; refs_held must equal our count.
  std::map<cache::BlockKey, std::vector<std::byte>,
           decltype([](const cache::BlockKey& a, const cache::BlockKey& b) {
             return std::tie(a.file, a.idx) < std::tie(b.file, b.idx);
           })>
      model;

  for (int step = 0; step < 3000; ++step) {
    const cache::BlockKey key{1 + rng.below(3), rng.below(40)};
    const auto op = rng.below(3);
    if (op == 0) {
      // Write data.
      std::vector<std::byte> data(cfg.block_size);
      for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
      auto& h = cc.ensure(key);
      cc.attach_data(h, data.size());
      cc.write_block(h, data);
      model[key] = std::move(data);
    } else if (op == 1) {
      // Read: if data present, it must be the last write.
      if (auto* h = cc.find(key); h && h->has_data() && model.count(key)) {
        std::vector<std::byte> got(cfg.block_size);
        cc.read_block(*h, got);
        EXPECT_EQ(got, model[key]);
      }
    } else {
      cc.set_ref(cc.ensure(key), cache::RemoteRef{rng.next(), 0, 512, {}});
    }
    EXPECT_LE(cc.headers(), cfg.max_headers);
  }
  // refs_held agrees with a direct scan.
  std::size_t refs = 0;
  for (std::uint64_t f = 1; f <= 3; ++f) {
    for (std::uint64_t i = 0; i < 40; ++i) {
      if (auto* h = cc.find(cache::BlockKey{f, i}); h && h->ref) ++refs;
    }
  }
  EXPECT_EQ(refs, cc.refs_held());
}

// --- XDR decoder: arbitrary truncation never reads out of bounds -------------

TEST_P(Seeded, XdrDecoderSurvivesRandomTruncation) {
  Rng rng(GetParam());
  rpc::XdrEncoder enc;
  enc.u32(42);
  enc.str("some name");
  std::vector<std::byte> payload(rng.below(300));
  enc.opaque(payload);
  enc.u64(rng.next());
  auto full = enc.take();

  for (int trial = 0; trial < 100; ++trial) {
    const auto cut = rng.below(full.size() + 1);
    rpc::XdrDecoder dec(
        std::span<const std::byte>(full.data(), cut));
    (void)dec.u32();
    (void)dec.str();
    (void)dec.opaque();
    (void)dec.u64();
    if (cut < full.size()) EXPECT_FALSE(dec.ok());
  }
}

// --- TPT/TLB: pin accounting balances under random churn ---------------------

TEST_P(Seeded, TlbInsertEvictBalancesPins) {
  Rng rng(GetParam());
  nic::NicTlb tlb(8);
  std::map<mem::Vpn, int> pinned;  // modelled pin counts

  for (int step = 0; step < 1000; ++step) {
    const mem::Vpn vpn = rng.below(32);
    if (auto* e = tlb.lookup(vpn)) {
      (void)e;  // hit: nothing changes
      continue;
    }
    nic::NicTlb::Entry e;
    e.nic_vpn = vpn;
    e.seg_id = 1 + vpn / 4;
    e.host_vpn = vpn;
    ++pinned[vpn];
    if (auto evicted = tlb.insert(e)) --pinned[evicted->host_vpn];
    if (rng.chance(0.1)) {
      for (const auto& victim : tlb.invalidate_segment(1 + rng.below(8))) {
        --pinned[victim.host_vpn];
      }
    }
    EXPECT_LE(tlb.size(), tlb.capacity());
  }
  // Every pin not yet released corresponds to a live TLB entry.
  std::size_t live_pins = 0;
  for (const auto& [vpn, count] : pinned) {
    EXPECT_GE(count, 0);
    EXPECT_LE(count, 1);
    live_pins += count;
  }
  EXPECT_EQ(live_pins, tlb.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ordma
