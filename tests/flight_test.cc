// Flight recorder (obs/flight.h): ring mechanics, the enabled gate, dump
// format, and the give-up postmortem path.
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "host/cost_model.h"
#include "host/host.h"
#include "sim/engine.h"

namespace ordma {
namespace {

using obs::flight::Ev;
using obs::flight::Ring;

TEST(Flight, RecordsInOrder) {
  Ring r("t");
  for (int i = 0; i < 5; ++i) {
    r.record(i * 10, Ev::rpc_call, 100 + i, 7, i);
  }
  EXPECT_EQ(r.recorded(), 5u);
  EXPECT_EQ(r.dropped(), 0u);
  std::vector<std::uint64_t> seqs;
  r.for_each([&](std::uint64_t seq, const Ring::Record& rec) {
    seqs.push_back(seq);
    EXPECT_EQ(rec.t_ns, static_cast<std::int64_t>(seq) * 10);
    EXPECT_EQ(rec.a, 100 + seq);
    EXPECT_EQ(rec.code, Ev::rpc_call);
  });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Flight, WrapKeepsTheNewestCapacityEvents) {
  Ring r("t", 8);
  EXPECT_EQ(r.capacity(), 8u);
  for (int i = 0; i < 20; ++i) r.record(i, Ev::nic_dma, i);
  EXPECT_EQ(r.recorded(), 20u);
  EXPECT_EQ(r.dropped(), 12u);
  std::vector<std::uint64_t> seqs;
  r.for_each([&](std::uint64_t seq, const Ring::Record& rec) {
    seqs.push_back(seq);
    EXPECT_EQ(rec.a, seq);  // the retained window is the newest events
  });
  ASSERT_EQ(seqs.size(), 8u);
  EXPECT_EQ(seqs.front(), 12u);
  EXPECT_EQ(seqs.back(), 19u);
}

TEST(Flight, CapacityRoundsUpToPowerOfTwo) {
  Ring r("t", 100);
  EXPECT_EQ(r.capacity(), 128u);
}

TEST(Flight, DisabledRecordsNothing) {
  Ring r("t");
  obs::flight::set_enabled(false);
  r.record(1, Ev::rpc_call, 1);
  obs::flight::set_enabled(true);
  EXPECT_EQ(r.recorded(), 0u);
  r.record(2, Ev::rpc_call, 2);
  EXPECT_EQ(r.recorded(), 1u);
}

// The acceptance bar: a host's always-on ring must replay at least the last
// 4096 events.
TEST(Flight, HostRingIsAtLeast4kDeep) {
  static_assert(Ring::kDefaultCapacity >= 4096);
  sim::Engine eng;
  host::CostModel cm;
  host::Host h(eng, "h", cm, host::HostConfig{MiB(16)});
  EXPECT_GE(h.flight().capacity(), 4096u);
}

TEST(Flight, DumpFormatRoundTrips) {
  Ring r("demo", 4);
  for (int i = 0; i < 6; ++i) r.record(i * 5, Ev::cache_miss, 1, i);
  const std::string dump = obs::flight::dump_all_string("unit test");
  // Header, one ring line per live ring (other fixtures' rings are gone by
  // now), records, trailer.
  EXPECT_EQ(dump.rfind("ordma-flight-dump v1 reason=unit test\n", 0), 0u);
  EXPECT_NE(dump.find("ring demo recorded=6 capacity=4 dropped=2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("2 10 cache_miss a=1 b=2 aux=0\n"), std::string::npos);
  EXPECT_NE(dump.find("5 25 cache_miss a=1 b=5 aux=0\n"), std::string::npos);
  EXPECT_EQ(dump.substr(dump.size() - 4), "end\n");
}

TEST(Flight, GiveupWritesOnePostmortem) {
  const std::string path =
      testing::TempDir() + "/flight_giveup_test_dump.txt";
  std::remove(path.c_str());
  obs::flight::set_giveup_dump_path(path);
  Ring r("client");
  obs::flight::note_giveup(r, 100, 42, 5);
  obs::flight::note_giveup(r, 200, 43, 5);  // second must not rewrite
  obs::flight::set_giveup_dump_path("");

  EXPECT_EQ(r.recorded(), 2u);  // both give-ups are ring events
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string dump = ss.str();
  EXPECT_NE(dump.find("reason=clean-error give-up"), std::string::npos);
  EXPECT_NE(dump.find("op_giveup a=42 b=5"), std::string::npos);
  // Dumped at the first give-up: the second is not in the file.
  EXPECT_EQ(dump.find("op_giveup a=43"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ordma
