// Unit tests for the discrete-event engine and coroutine primitives:
// ordering, determinism, cancellation safety, resource accounting.
#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace ordma::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now().ns, 0);
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, ScheduleFnFiresInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_fn(usec(30), [&] { order.push_back(3); });
  eng.schedule_fn(usec(10), [&] { order.push_back(1); });
  eng.schedule_fn(usec(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), SimTime{} + usec(30));
}

TEST(Engine, SameTickFiresInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.schedule_fn(usec(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CancelledTimerDoesNotFire) {
  Engine eng;
  bool fired = false;
  auto* node = eng.schedule_fn(usec(1), [&] { fired = true; });
  node->cancelled = true;
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilStopsAtBound) {
  Engine eng;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule_fn(usec(i * 10), [&] { ++count; });
  }
  eng.run_until(SimTime{} + usec(50));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), SimTime{} + usec(50));
  eng.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, DelayResumesCoroutineAtRightTime) {
  Engine eng;
  SimTime resumed{};
  eng.spawn([](Engine& e, SimTime& out) -> Task<void> {
    co_await e.delay(usec(42));
    out = e.now();
  }(eng, resumed));
  eng.run();
  EXPECT_EQ(resumed, SimTime{} + usec(42));
  EXPECT_EQ(eng.live_processes(), 0u);
}

TEST(Engine, NestedTasksReturnValues) {
  Engine eng;
  int result = 0;

  struct Helper {
    static Task<int> leaf(Engine& e) {
      co_await e.delay(usec(1));
      co_return 21;
    }
    static Task<int> mid(Engine& e) {
      int a = co_await leaf(e);
      int b = co_await leaf(e);
      co_return a + b;
    }
  };

  eng.spawn([](Engine& e, int& out) -> Task<void> {
    out = co_await Helper::mid(e);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(eng.now(), SimTime{} + usec(2));
}

TEST(Engine, SpawnedProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<std::pair<int, std::int64_t>> log;

  auto proc = [](Engine& e, int id, Duration step,
                 std::vector<std::pair<int, std::int64_t>>& log)
      -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(step);
      log.emplace_back(id, e.now().ns);
    }
  };
  eng.spawn(proc(eng, 1, usec(10), log));
  eng.spawn(proc(eng, 2, usec(15), log));
  eng.run();

  ASSERT_EQ(log.size(), 6u);
  // t=10(p1), 15(p2), 20(p1); at t=30 p2's timer was scheduled earlier
  // (at t=15 vs t=20) so its sequence number wins; then 45(p2).
  EXPECT_EQ(log[0], (std::pair<int, std::int64_t>{1, usec(10).ns}));
  EXPECT_EQ(log[1], (std::pair<int, std::int64_t>{2, usec(15).ns}));
  EXPECT_EQ(log[2], (std::pair<int, std::int64_t>{1, usec(20).ns}));
  EXPECT_EQ(log[3], (std::pair<int, std::int64_t>{2, usec(30).ns}));
  EXPECT_EQ(log[4], (std::pair<int, std::int64_t>{1, usec(30).ns}));
  EXPECT_EQ(log[5], (std::pair<int, std::int64_t>{2, usec(45).ns}));
}

TEST(Engine, DestroyingEngineWithSuspendedProcessesIsSafe) {
  auto eng = std::make_unique<Engine>();
  eng->spawn([](Engine& e) -> Task<void> {
    co_await e.delay(sec(100));  // never fires
  }(*eng));
  eng->run_until(SimTime{} + usec(1));
  EXPECT_EQ(eng->live_processes(), 1u);
  eng.reset();  // must not crash or leak (ASAN-checked in CI-style runs)
}

TEST(Event, WakesAllWaitersWithValue) {
  Engine eng;
  Event<int> ev(eng);
  std::vector<int> got;

  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine&, Event<int>& ev, std::vector<int>& got)
                  -> Task<void> {
      got.push_back(co_await ev.wait());
    }(eng, ev, got));
  }
  eng.schedule_fn(usec(5), [&] { ev.set(7); });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{7, 7, 7}));
}

TEST(Event, WaitAfterSetCompletesImmediately) {
  Engine eng;
  Event<int> ev(eng);
  ev.set(9);
  int got = 0;
  eng.spawn([](Event<int>& ev, int& got) -> Task<void> {
    got = co_await ev.wait();
  }(ev, got));
  eng.run();
  EXPECT_EQ(got, 9);
}

TEST(Event, VoidEventWorks) {
  Engine eng;
  Event<> ev(eng);
  bool done = false;
  eng.spawn([](Event<>& ev, bool& done) -> Task<void> {
    co_await ev.wait();
    done = true;
  }(ev, done));
  eng.schedule_fn(usec(1), [&] { ev.set(); });
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Channel, FifoDelivery) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    for (int i = 0; i < 4; ++i) got.push_back(co_await ch.recv());
  }(ch, got));
  eng.schedule_fn(usec(1), [&] {
    ch.send(1);
    ch.send(2);
  });
  eng.schedule_fn(usec(2), [&] {
    ch.send(3);
    ch.send(4);
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Channel, MultipleReceiversServedInOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 2; ++r) {
    eng.spawn([](Channel<int>& ch, int r,
                 std::vector<std::pair<int, int>>& got) -> Task<void> {
      got.emplace_back(r, co_await ch.recv());
    }(ch, r, got));
  }
  eng.schedule_fn(usec(1), [&] {
    ch.send(100);
    ch.send(200);
  });
  eng.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
}

TEST(Channel, TryRecvNonBlocking) {
  Engine eng;
  Channel<int> ch(eng);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Resource, SerialisesWorkBeyondCapacity) {
  Engine eng;
  Resource cpu(eng, 1, "cpu");
  std::vector<std::int64_t> completion_times;

  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, Resource& cpu,
                 std::vector<std::int64_t>& out) -> Task<void> {
      co_await cpu.consume(usec(10));
      out.push_back(e.now().ns);
    }(eng, cpu, completion_times));
  }
  eng.run();
  ASSERT_EQ(completion_times.size(), 3u);
  EXPECT_EQ(completion_times[0], usec(10).ns);
  EXPECT_EQ(completion_times[1], usec(20).ns);
  EXPECT_EQ(completion_times[2], usec(30).ns);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Engine eng;
  Resource r(eng, 2, "dual");
  std::vector<std::int64_t> completion_times;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Resource& r,
                 std::vector<std::int64_t>& out) -> Task<void> {
      co_await r.consume(usec(10));
      out.push_back(e.now().ns);
    }(eng, r, completion_times));
  }
  eng.run();
  ASSERT_EQ(completion_times.size(), 4u);
  EXPECT_EQ(completion_times[0], usec(10).ns);
  EXPECT_EQ(completion_times[1], usec(10).ns);
  EXPECT_EQ(completion_times[2], usec(20).ns);
  EXPECT_EQ(completion_times[3], usec(20).ns);
}

TEST(Resource, BusyTimeAccountsUtilisation) {
  Engine eng;
  Resource cpu(eng, 1, "cpu");
  // 30us of work over a 100us window → 30% utilisation.
  eng.spawn([](Engine& e, Resource& cpu) -> Task<void> {
    co_await e.delay(usec(10));
    co_await cpu.consume(usec(30));
  }(eng, cpu));
  eng.schedule_fn(usec(100), [] {});  // extend the run to 100us
  eng.run();
  const Duration busy = cpu.busy_time();
  EXPECT_EQ(busy, usec(30));
  EXPECT_DOUBLE_EQ(Resource::utilisation(Duration{}, busy, SimTime{},
                                         SimTime{} + usec(100), 1),
                   0.3);
}

TEST(Resource, FifoOrderUnderContention) {
  Engine eng;
  Resource r(eng, 1, "r");
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](Resource& r, int i, std::vector<int>& order) -> Task<void> {
      co_await r.consume(usec(1));
      order.push_back(i);
    }(r, i, order));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Determinism: two identical runs produce identical event traces.
TEST(Engine, RunsAreBitReproducible) {
  auto run_once = [] {
    Engine eng;
    Resource cpu(eng, 1, "cpu");
    Channel<int> ch(eng);
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 8; ++i) {
      eng.spawn([](Engine& e, Resource& cpu, Channel<int>& ch, int i,
                   std::vector<std::int64_t>& trace) -> Task<void> {
        co_await e.delay(usec(i % 3));
        co_await cpu.consume(usec(2 + i % 2));
        ch.send(i);
        trace.push_back(e.now().ns * 100 + i);
      }(eng, cpu, ch, i, trace));
    }
    eng.spawn([](Channel<int>& ch, std::vector<std::int64_t>& trace)
                  -> Task<void> {
      for (int i = 0; i < 8; ++i) {
        trace.push_back(1000000 + co_await ch.recv());
      }
    }(ch, trace));
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ordma::sim
