// Observability subsystem tests: trace recorder track/lane behavior and
// Chrome JSON export, metrics registry snapshots, the attribution sweep,
// and — the property everything else depends on — that installing a
// recorder does not perturb the simulation by a single nanosecond.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ordma {
namespace {

template <typename F>
void drive(sim::Engine& eng, F&& body) {
  bool done = false;
  eng.spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  eng.run();
  ASSERT_TRUE(done) << "workload deadlocked";
}

// --- recorder ---------------------------------------------------------------

TEST(TraceRecorder, TrackInterning) {
  obs::TraceRecorder rec;
  const auto a = rec.track("server", "cpu");
  const auto b = rec.track("server", "nic.fw");
  const auto c = rec.track("client0", "cpu");
  EXPECT_EQ(rec.track("server", "cpu"), a);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(rec.track_process(a), "server");
  EXPECT_EQ(rec.track_component(b), "nic.fw");
  EXPECT_EQ(rec.track_count(), 3u);
}

TEST(TraceRecorder, OverflowLanesKeepSlicesDisjoint) {
  obs::TraceRecorder rec;
  const auto t = rec.track("host", "cpu");
  using K = obs::TraceRecorder::Kind;
  // Nondecreasing end order (the recorder's contract). The second span
  // overlaps the first → lane "cpu~2"; the third is disjoint → lane 1.
  rec.record(K::span, t, 1, "io/a", 0, 100);
  rec.record(K::span, t, 2, "io/b", 50, 150);
  rec.record(K::span, t, 3, "io/c", 200, 300);

  std::vector<obs::TraceRecorder::Event> evs;
  rec.for_each_event([&](const auto& e) { evs.push_back(e); });
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].track, t);
  EXPECT_NE(evs[1].track, t);
  EXPECT_EQ(rec.track_component(evs[1].track), "cpu~2");
  EXPECT_EQ(evs[2].track, t);

  // Per lane, slices must be disjoint (Chrome rendering requirement).
  std::map<obs::TrackId, std::int64_t> last_end;
  rec.for_each_event([&](const auto& e) {
    auto it = last_end.find(e.track);
    if (it != last_end.end()) EXPECT_GE(e.begin_ns, it->second);
    last_end[e.track] = e.end_ns;
  });
}

TEST(TraceRecorder, ClearRetainsTracksDropsEvents) {
  obs::TraceRecorder rec;
  const auto t = rec.track("host", "cpu");
  rec.record(obs::TraceRecorder::Kind::span, t, 1, "io/a", 0, 10);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_EQ(rec.track("host", "cpu"), t);
  // last_end was reset: a span starting at 0 stays on the base lane.
  rec.record(obs::TraceRecorder::Kind::span, t, 1, "io/a", 0, 10);
  rec.for_each_event([&](const auto& e) { EXPECT_EQ(e.track, t); });
}

TEST(TraceRecorder, ChromeJsonShape) {
  obs::TraceRecorder rec;
  const auto cpu = rec.track("client0", "cpu");
  const auto fw = rec.track("server", "nic.fw");
  using K = obs::TraceRecorder::Kind;
  const obs::OpId op = rec.new_op();
  rec.record(K::flow, cpu, op, "send", 10, 10);
  rec.record(K::span, cpu, op, "io/syscall", 0, 20);
  rec.record(K::flow, fw, op, "recv", 30, 30);
  rec.record(K::span, fw, op, "nic/rx_frag", 30, 40);
  rec.record(K::root, cpu, op, "op/pread", 0, 50);

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find(R"("ph":"M","name":"process_name")"), std::string::npos);
  EXPECT_NE(j.find(R"("name":"client0")"), std::string::npos);
  EXPECT_NE(j.find(R"("name":"nic.fw")"), std::string::npos);
  EXPECT_NE(j.find(R"("ph":"X","name":"op/pread")"), std::string::npos);
  // The two flow points become an s → f arrow keyed by the op id.
  EXPECT_NE(j.find(R"("ph":"s","cat":"flow")"), std::string::npos);
  EXPECT_NE(j.find(R"("ph":"f","cat":"flow")"), std::string::npos);
  EXPECT_EQ(j.back(), '\n');
  EXPECT_EQ(j[j.size() - 2], ']');
}

TEST(TraceRecorder, SinglePointFlowsAreDropped) {
  obs::TraceRecorder rec;
  const auto t = rec.track("h", "cpu");
  rec.record(obs::TraceRecorder::Kind::flow, t, 7, "lonely", 5, 5);
  std::ostringstream os;
  rec.write_chrome_json(os);
  EXPECT_EQ(os.str().find(R"("cat":"flow")"), std::string::npos);
}

// --- helpers are a single branch when disabled ------------------------------

TEST(TraceHelpers, NoopWhenDisabled) {
  ASSERT_FALSE(obs::enabled());
  EXPECT_EQ(obs::new_op(), 0u);  // untraced ops have no identity
  obs::Track trk("host", "cpu");
  obs::span(trk, 1, "io/x", SimTime{0}, SimTime{10});  // must not crash
}

TEST(TraceHelpers, TrackCacheSurvivesReinstall) {
  obs::Track trk("host", "cpu");
  auto rec1 = std::make_unique<obs::TraceRecorder>();
  obs::install(rec1.get());
  obs::span(trk, 1, "io/x", SimTime{0}, SimTime{10});
  EXPECT_EQ(rec1->event_count(), 1u);
  auto rec2 = std::make_unique<obs::TraceRecorder>();
  obs::install(rec2.get());  // epoch bump → cache re-resolves
  obs::span(trk, 1, "io/y", SimTime{10}, SimTime{20});
  EXPECT_EQ(rec2->event_count(), 1u);
  EXPECT_EQ(rec1->event_count(), 1u);
  rec2.reset();  // uninstalls itself
  EXPECT_FALSE(obs::enabled());
}

// --- metrics registry -------------------------------------------------------

TEST(Metrics, RegistrySnapshotNestsPaths) {
  obs::MetricsRegistry reg;
  reg.counter("server/nic/tpt_miss").inc(3);
  reg.gauge("server/cpu/busy_us", [] { return 12.5; });
  reg.histogram("client0/pread_us").add(usec(3));
  EXPECT_EQ(reg.size(), 3u);
  // Entry references are stable.
  reg.counter("server/nic/tpt_miss").inc();
  std::ostringstream os;
  reg.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find(R"("server":{"cpu":{"busy_us":12.5},"nic":{"tpt_miss":4}})"),
            std::string::npos);
  EXPECT_NE(j.find(R"("client0":{"pread_us":{"count":1)"), std::string::npos);
  EXPECT_NE(j.find(R"("buckets":[{"le_us":4,"n":1}])"), std::string::npos);
}

TEST(Metrics, FaultAndRecoveryCountersAppearInSnapshot) {
  // A faulted cluster must export its injector and recovery counters so a
  // torture run's behaviour is inspectable from the metrics snapshot alone.
  core::ClusterConfig cc;
  cc.faults = fault::FaultPlan::adversarial(42);
  cc.rpc_retry.timeout = msec(2);
  cc.rpc_retry.max_attempts = 8;
  core::Cluster c(cc);
  ASSERT_NE(c.fault_injector(), nullptr);
  c.fault_injector()->set_armed(false);  // setup runs fault-free
  c.start_nfs();
  auto client = c.make_nfs_client(0, KiB(32));
  drive(c.engine(), [&]() -> sim::Task<void> {
    co_await c.make_file("f", Bytes{KiB(128)}, /*warm=*/true);
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(32));
    c.fault_injector()->set_armed(true);
    for (int i = 0; i < 64; ++i) {
      auto r = co_await client->pread(
          open.value().fh, (static_cast<Bytes>(i) * KiB(32)) % KiB(128), buf,
          KiB(32));
      ORDMA_CHECK(r.ok());
    }
  });

  obs::MetricsRegistry reg;
  c.export_metrics(reg);
  std::ostringstream os;
  reg.write_json(os);
  const std::string j = os.str();
  for (const char* key :
       {"frames_dropped", "frames_corrupted", "frames_duplicated",
        "frames_delayed", "doorbell_stalls", "cap_revokes", "tlb_invalidates",
        "disk_errors", "dup_replays", "dup_drops", "cksum_drops",
        "ordma_timeouts"}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing metric: " << key;
  }
  // The adversarial plan over 64 reads must have fired at least once (the
  // seed is fixed, so this is deterministic), and the gauges must reflect
  // it — not just exist as zero.
  const fault::FaultInjector& inj = *c.fault_injector();
  EXPECT_GT(inj.frames_dropped() + inj.frames_corrupt_dropped() +
                inj.frames_corrupted() + inj.frames_duplicated() +
                inj.frames_delayed() + inj.doorbell_stalls(),
            0u);
}

// --- attribution ------------------------------------------------------------

TEST(Attribution, CategorizeByPrefix) {
  EXPECT_EQ(obs::categorize("byte/copy"), obs::Category::per_byte);
  EXPECT_EQ(obs::categorize("pkt/udp_tx"), obs::Category::per_packet);
  EXPECT_EQ(obs::categorize("io/syscall"), obs::Category::per_io);
  EXPECT_EQ(obs::categorize("nic/dma"), obs::Category::nic);
  EXPECT_EQ(obs::categorize("wire/tx"), obs::Category::wire);
  EXPECT_EQ(obs::categorize("disk/io"), obs::Category::disk);
  EXPECT_EQ(obs::categorize("op/pread"), obs::Category::other);
  EXPECT_EQ(obs::categorize("mystery"), obs::Category::other);
}

TEST(Attribution, SweepPartitionsRootExactly) {
  obs::TraceRecorder rec;
  const auto t = rec.track("h", "cpu");
  using K = obs::TraceRecorder::Kind;
  const obs::OpId op = 1;
  // Root [0, 1000]. Leaves (ns):
  //   io   [  0, 400]
  //   byte [100, 300]   — outranks io where they overlap
  //   wire [350, 600]
  //   disk [500, 700]   — outranks wire where they overlap
  // Expected: io [0,100)+[300,350) = 150; byte [100,300) = 200;
  // wire [350,500) = 150; disk [500,700) = 200; other [700,1000) = 300.
  rec.record(K::span, t, op, "byte/x", 100, 300);
  rec.record(K::span, t, op, "io/x", 0, 400);
  rec.record(K::span, t, op, "wire/x", 350, 600);
  rec.record(K::span, t, op, "disk/x", 500, 700);
  rec.record(K::root, t, op, "op/pread", 0, 1000);

  const auto result = obs::attribute(rec);
  ASSERT_EQ(result.size(), 1u);
  const obs::Breakdown& b = result.at(op);
  EXPECT_STREQ(b.root_name, "op/pread");
  EXPECT_DOUBLE_EQ(b[obs::Category::per_io], 0.150);
  EXPECT_DOUBLE_EQ(b[obs::Category::per_byte], 0.200);
  EXPECT_DOUBLE_EQ(b[obs::Category::wire], 0.150);
  EXPECT_DOUBLE_EQ(b[obs::Category::disk], 0.200);
  EXPECT_DOUBLE_EQ(b[obs::Category::other], 0.300);
  EXPECT_DOUBLE_EQ(b.sum_us(), b.total_us);
}

TEST(Attribution, AmbientSpansChargedToOverlappingOps) {
  obs::TraceRecorder rec;
  const auto t = rec.track("h", "cpu");
  using K = obs::TraceRecorder::Kind;
  // An op-0 interrupt inside op 1's envelope, another outside it.
  rec.record(K::span, t, 0, "pkt/interrupt", 100, 150);
  rec.record(K::root, t, 1, "op/pread", 0, 1000);
  rec.record(K::span, t, 0, "pkt/interrupt", 2000, 2050);

  const auto result = obs::attribute(rec);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result.at(1)[obs::Category::per_packet], 0.050);
  EXPECT_DOUBLE_EQ(result.at(1).sum_us(), result.at(1).total_us);
}

TEST(Attribution, LeavesClampedToRootWindow) {
  obs::TraceRecorder rec;
  const auto t = rec.track("h", "cpu");
  using K = obs::TraceRecorder::Kind;
  rec.record(K::span, t, 1, "io/x", 0, 500);  // extends past the root
  rec.record(K::root, t, 1, "op/pread", 100, 300);
  const auto result = obs::attribute(rec);
  EXPECT_DOUBLE_EQ(result.at(1)[obs::Category::per_io], 0.200);
  EXPECT_DOUBLE_EQ(result.at(1).sum_us(), 0.200);
}

// --- end-to-end: tracing must not perturb the simulation --------------------

// Run the same NFS read workload on a fresh cluster; returns the final
// simulated time. `rec` non-null → tracing enabled for the run.
std::int64_t run_nfs_reads(obs::TraceRecorder* rec, int reads = 8,
                           Bytes io = KiB(32)) {
  core::Cluster c;
  c.start_nfs();
  auto client = c.make_nfs_client(0);
  drive(c.engine(), [&]() -> sim::Task<void> {
    co_await c.make_file("f", Bytes{KiB(256)}, /*warm=*/true);
  });
  if (rec) obs::install(rec);
  std::int64_t end_ns = 0;
  drive(c.engine(), [&]() -> sim::Task<void> {
    auto open = co_await client->open("f");
    ORDMA_CHECK(open.ok());
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), io);
    for (int i = 0; i < reads; ++i) {
      auto r = co_await client->pread(open.value().fh,
                                      (static_cast<Bytes>(i) * io) % KiB(256),
                                      buf, io);
      ORDMA_CHECK(r.ok() && r.value() == io);
    }
    end_ns = c.engine().now().ns;
  });
  if (rec) obs::install(static_cast<obs::TraceRecorder*>(nullptr));
  return end_ns;
}

TEST(ObsEndToEnd, TracingDoesNotChangeSimulatedTime) {
  const std::int64_t off = run_nfs_reads(nullptr);
  obs::TraceRecorder rec;
  const std::int64_t on = run_nfs_reads(&rec);
  EXPECT_EQ(on, off);
  EXPECT_GT(rec.event_count(), 0u);
}

TEST(ObsEndToEnd, PreadSpanTreesAreWellFormed) {
  obs::TraceRecorder rec;
  run_nfs_reads(&rec, /*reads=*/4);

  // One root per pread, plus the open's getattr-free ops (open uses lookup
  // RPCs without a FileClient root) — so exactly 4 op/pread roots.
  std::map<obs::OpId, const char*> roots;
  std::map<obs::OpId, std::pair<std::int64_t, std::int64_t>> windows;
  rec.for_each_event([&](const obs::TraceRecorder::Event& e) {
    if (e.kind == obs::TraceRecorder::Kind::root) {
      roots[e.op] = e.name;
      windows[e.op] = {e.begin_ns, e.end_ns};
    }
  });
  int preads = 0;
  for (const auto& [op, name] : roots) {
    if (std::string(name) == "op/pread") ++preads;
  }
  EXPECT_EQ(preads, 4);

  // Every traced leaf of a rooted op lies inside its root window.
  rec.for_each_event([&](const obs::TraceRecorder::Event& e) {
    if (e.kind != obs::TraceRecorder::Kind::span || e.op == 0) return;
    auto it = windows.find(e.op);
    if (it == windows.end()) return;
    EXPECT_GE(e.begin_ns, it->second.first);
    EXPECT_LE(e.end_ns, it->second.second);
  });

  // And the attribution of every pread is a full partition with real work
  // in the per-byte bucket (NFS stages copies) and on the wire.
  for (const auto& [op, b] : obs::attribute(rec)) {
    if (std::string(b.root_name) != "op/pread") continue;
    EXPECT_NEAR(b.sum_us(), b.total_us, 1e-9);
    EXPECT_GT(b[obs::Category::per_byte], 0.0);
    EXPECT_GT(b[obs::Category::wire], 0.0);
  }
}

}  // namespace
}  // namespace ordma
