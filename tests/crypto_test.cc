// Unit tests for SipHash-2-4 (reference vectors) and capability mint/verify.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/capability.h"
#include "crypto/siphash.h"

namespace ordma::crypto {
namespace {

// Reference test vectors from the SipHash paper / reference implementation:
// key = 00 01 ... 0f, input = 00 01 ... (n-1).
SipKey reference_key() {
  // k0 = bytes 00..07 little-endian, k1 = bytes 08..0f.
  return SipKey{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
}

std::vector<std::byte> sequential(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i);
  return v;
}

TEST(SipHash, ReferenceVectors) {
  const SipKey key = reference_key();
  // First entries of the official vectors_sip64 table.
  struct Vec {
    std::size_t len;
    std::uint64_t expect;
  };
  const Vec vecs[] = {
      {0, 0x726fdb47dd0e0e31ull},  {1, 0x74f839c593dc67fdull},
      {2, 0x0d6c8009d9a94f5aull},  {3, 0x85676696d7fb7e2dull},
      {4, 0xcf2794e0277187b7ull},  {5, 0x18765564cd99a68dull},
      {6, 0xcbc9466e58fee3ceull},  {7, 0xab0200f58b01d137ull},
      {8, 0x93f5f5799a932462ull},  {15, 0xa129ca6149be45e5ull},
  };
  for (const auto& v : vecs) {
    const auto data = sequential(v.len);
    EXPECT_EQ(siphash24(key, data), v.expect) << "len=" << v.len;
  }
}

TEST(SipHash, KeySensitivity) {
  const auto data = sequential(32);
  const auto a = siphash24(SipKey{1, 2}, data);
  const auto b = siphash24(SipKey{1, 3}, data);
  EXPECT_NE(a, b);
}

TEST(SipHash, DataSensitivity) {
  const SipKey key{42, 43};
  auto data = sequential(32);
  const auto a = siphash24(key, data);
  data[31] = std::byte{0xFF};
  const auto b = siphash24(key, data);
  EXPECT_NE(a, b);
}

TEST(Capability, MintVerifyRoundTrip) {
  CapabilityAuthority auth(SipKey{0xdead, 0xbeef});
  const auto cap = auth.mint(7, 0x1000, 4096, SegPerm::read, 1);
  EXPECT_TRUE(auth.verify(cap, 1));
}

TEST(Capability, ForgedMacRejected) {
  CapabilityAuthority auth(SipKey{0xdead, 0xbeef});
  auto cap = auth.mint(7, 0x1000, 4096, SegPerm::read, 1);
  cap.mac ^= 1;
  EXPECT_FALSE(auth.verify(cap, 1));
}

TEST(Capability, TamperedFieldsRejected) {
  CapabilityAuthority auth(SipKey{1, 2});
  const auto good = auth.mint(7, 0x1000, 4096, SegPerm::read, 3);

  auto widened = good;
  widened.length = 1 << 20;  // try to widen the grant
  EXPECT_FALSE(auth.verify(widened, 3));

  auto moved = good;
  moved.base = 0x2000;
  EXPECT_FALSE(auth.verify(moved, 3));

  auto escalated = good;
  escalated.perm = SegPerm::read_write;
  EXPECT_FALSE(auth.verify(escalated, 3));
}

TEST(Capability, RevocationByGenerationBump) {
  CapabilityAuthority auth(SipKey{5, 6});
  const auto cap = auth.mint(9, 0, 4096, SegPerm::read_write, 1);
  EXPECT_TRUE(auth.verify(cap, 1));
  // Server revokes by bumping the segment generation: old caps die.
  EXPECT_FALSE(auth.verify(cap, 2));
  // A re-minted capability under the new generation works.
  const auto fresh = auth.mint(9, 0, 4096, SegPerm::read_write, 2);
  EXPECT_TRUE(auth.verify(fresh, 2));
}

TEST(Capability, DifferentAuthorityKeysDontCrossVerify) {
  CapabilityAuthority a(SipKey{1, 1}), b(SipKey{2, 2});
  const auto cap = a.mint(1, 0, 64, SegPerm::read, 0);
  EXPECT_FALSE(b.verify(cap, 0));
}

TEST(Capability, PermLattice) {
  EXPECT_TRUE(allows(SegPerm::read_write, SegPerm::read));
  EXPECT_TRUE(allows(SegPerm::read_write, SegPerm::write));
  EXPECT_TRUE(allows(SegPerm::read, SegPerm::read));
  EXPECT_FALSE(allows(SegPerm::read, SegPerm::write));
  EXPECT_FALSE(allows(SegPerm::write, SegPerm::read));
}

}  // namespace
}  // namespace ordma::crypto
