// Unit tests for the workload generators and host model pieces not covered
// elsewhere: PostMark bookkeeping (both modes), streaming read-ahead
// accounting, host interrupt/copy charging, and disk fault injection at the
// device level.
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "fs/disk.h"
#include "workload/postmark.h"
#include "workload/streaming.h"

namespace ordma {
namespace {

using core::Cluster;
using core::ClusterConfig;

template <typename F>
void drive(Cluster& c, F&& body) {
  bool done = false;
  c.engine().spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  c.engine().run();
  ASSERT_TRUE(done) << "driver deadlocked";
}

TEST(HostModel, InterruptChargesCpuAndRunsHandler) {
  sim::Engine eng;
  host::CostModel cm;
  host::Host h(eng, "h", cm);
  bool ran = false;
  h.post_interrupt([&ran, &h]() -> sim::Task<void> {
    ran = true;
    co_await h.cpu_consume(usec(10));
  });
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(h.cpu().busy_time(), cm.cpu_interrupt + usec(10));
}

TEST(HostModel, CopyCostScalesWithSize) {
  host::CostModel cm;
  const auto small = cm.copy_cost(KiB(1));
  const auto big = cm.copy_cost(KiB(64));
  EXPECT_GT(big.ns, small.ns * 30);  // roughly linear beyond the fixed part
  EXPECT_EQ(cm.copy_cost(0), cm.copy_fixed);
}

TEST(HostModel, MapNewReturnsDistinctZeroedRanges) {
  sim::Engine eng;
  host::CostModel cm;
  host::Host h(eng, "h", cm, {MiB(16)});
  const auto a = h.map_new(h.user_as(), KiB(8));
  const auto b = h.map_new(h.user_as(), KiB(8));
  EXPECT_GE(b, a + KiB(8));  // no overlap
  std::vector<std::byte> out(KiB(8), std::byte{0xff});
  ASSERT_TRUE(h.user_as().read(a, out).ok());
  for (auto byte : out) EXPECT_EQ(byte, std::byte{0});
}

TEST(DiskFaults, InjectionFailsExactlyNOperations) {
  sim::Engine eng;
  host::CostModel cm;
  host::Host h(eng, "h", cm, {MiB(16)});
  fs::Disk disk(h, MiB(1), KiB(8));
  disk.inject_failures(2);
  int failures = 0, successes = 0;
  bool done = false;
  eng.spawn([](fs::Disk& disk, int& failures, int& successes,
               bool& done) -> sim::Task<void> {
    std::vector<std::byte> buf(KiB(8));
    for (int i = 0; i < 5; ++i) {
      auto st = co_await disk.read(static_cast<fs::BlockNo>(i), buf);
      (st.ok() ? successes : failures)++;
    }
    done = true;
  }(disk, failures, successes, done));
  eng.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(disk.injected_remaining(), 0u);
}

TEST(PostMarkFull, RunsMixedWorkloadAndCountsEveryOp) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = 64;
  cfg.cache.max_headers = 4096;
  auto client = c.make_odafs_client(0, cfg);

  wl::PostMarkConfig pm;
  pm.num_files = 32;
  pm.min_size = KiB(1);
  pm.max_size = KiB(6);
  pm.transactions = 120;
  pm.read_only = false;
  wl::PostMark postmark(c.client(0), *client, pm);

  drive(c, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await postmark.setup()).ok());
    auto res = co_await postmark.run();
    EXPECT_TRUE(res.ok());
    const auto& r = res.value();
    EXPECT_EQ(r.transactions, 120u);
    // Each transaction does one read-or-append AND one create-or-delete.
    EXPECT_EQ(r.reads + r.appends, 120u);
    EXPECT_EQ(r.creates + r.deletes, 120u);
    EXPECT_GT(r.bytes_read + r.bytes_written, 0u);
    EXPECT_GT(r.txns_per_sec, 0.0);
  });
}

TEST(PostMarkReadOnly, WarmupMakesOpensLocalAndStatsReset) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(4);
  Cluster c(cc);
  c.start_dafs({.piggyback_refs = true});
  nas::odafs::OdafsClientConfig cfg;
  cfg.cache.block_size = KiB(4);
  cfg.cache.data_blocks = 16;
  cfg.cache.max_headers = 4096;
  auto client = c.make_odafs_client(0, cfg);

  wl::PostMarkConfig pm;
  pm.num_files = 24;
  pm.min_size = KiB(4);
  pm.max_size = KiB(4);
  pm.transactions = 100;
  pm.read_only = true;
  wl::PostMark postmark(c.client(0), *client, pm);

  drive(c, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await postmark.setup()).ok());
    EXPECT_TRUE((co_await postmark.warmup()).ok());
    auto res = co_await postmark.run();
    EXPECT_TRUE(res.ok());
    // run() resets stats: exactly the measured transactions counted.
    EXPECT_EQ(res.value().transactions, 100u);
    EXPECT_EQ(res.value().reads, 100u);
    EXPECT_EQ(res.value().creates, 0u);
    EXPECT_EQ(res.value().deletes, 0u);
  });
}

TEST(Streaming, MultiPassMeasuresOnlyLastPass) {
  ClusterConfig cc;
  cc.fs.block_size = KiB(8);
  Cluster c(cc);
  c.start_dafs();
  auto client = c.make_dafs_client(0);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(256), true);
    wl::StreamConfig one;
    one.block = KiB(32);
    one.window = 4;
    auto single = co_await wl::stream_read(c.client(0), *client, "f", one);
    EXPECT_TRUE(single.ok());
    EXPECT_EQ(single.value().bytes, KiB(256));

    wl::StreamConfig two = one;
    two.passes = 2;
    two.measure_last_pass_only = true;
    auto last = co_await wl::stream_read(c.client(0), *client, "f", two);
    EXPECT_TRUE(last.ok());
    EXPECT_EQ(last.value().bytes, KiB(256));  // only pass 2 counted
    EXPECT_GT(last.value().throughput_MBps, 0.0);
  });
}

TEST(Streaming, LimitBoundsBytesRead) {
  Cluster c;
  c.start_dafs();
  auto client = c.make_dafs_client(0);
  drive(c, [&]() -> sim::Task<void> {
    co_await c.make_file("f", KiB(128), true);
    wl::StreamConfig sc;
    sc.block = KiB(16);
    sc.window = 2;
    sc.limit = KiB(64);
    auto res = co_await wl::stream_read(c.client(0), *client, "f", sc);
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.value().bytes, KiB(64));
  });
}

}  // namespace
}  // namespace ordma
