// Unit tests for XDR marshalling and the RPC layer (including the RDDP-RPC
// pre-posted direct placement path).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "host/host.h"
#include "msg/udp.h"
#include "net/fabric.h"
#include "nic/nic.h"
#include "rpc/rpc.h"
#include "rpc/xdr.h"
#include "sim/engine.h"

namespace ordma::rpc {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 41 + seed) & 0xff);
  }
  return v;
}

TEST(Xdr, IntegerRoundTrip) {
  XdrEncoder enc;
  enc.u32(0xDEADBEEF);
  enc.u64(0x0123456789ABCDEFull);
  enc.i64(-42);
  auto buf = enc.finish();
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(Xdr, BigEndianOnTheWire) {
  XdrEncoder enc;
  enc.u32(0x01020304);
  auto buf = enc.finish();
  const auto v = buf.view();
  EXPECT_EQ(v[0], std::byte{1});
  EXPECT_EQ(v[3], std::byte{4});
}

TEST(Xdr, OpaqueAndStringRoundTrip) {
  XdrEncoder enc;
  enc.str("hello/world");
  const auto data = pattern(100);
  enc.opaque(data);
  auto buf = enc.finish();
  XdrDecoder dec(buf);
  EXPECT_EQ(dec.str(), "hello/world");
  auto got = dec.opaque();
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));
  EXPECT_TRUE(dec.ok());
}

TEST(Xdr, TruncatedInputFailsSafely) {
  XdrEncoder enc;
  enc.u32(5);  // claims 5-byte opaque follows, but nothing does
  auto buf = enc.finish();
  XdrDecoder dec(buf);
  auto got = dec.opaque();
  EXPECT_TRUE(got.empty());
  EXPECT_FALSE(dec.ok());
}

class RpcTest : public ::testing::Test {
 public:
  sim::Engine eng_;
  host::CostModel cm_;
  net::Fabric fabric_{eng_};
  host::Host hc_{eng_, "client", cm_};  // NOLINT
  host::Host hs_{eng_, "server", cm_};
  nic::Nic nc_{hc_, fabric_, {}, crypto::SipKey{1, 2}};
  nic::Nic ns_{hs_, fabric_, {}, crypto::SipKey{3, 4}};
  msg::UdpStack stc_{hc_};
  msg::UdpStack sts_{hs_};
};

TEST_F(RpcTest, EchoCall) {
  RpcServer server(hs_, sts_, 2049);
  server.register_handler(7, [](const RpcCallCtx& ctx)
                                 -> sim::Task<RpcServerReply> {
    RpcServerReply r;
    r.results.u32(static_cast<std::uint32_t>(ctx.args.size()));
    r.results.raw(ctx.args.view());
    co_return r;
  });
  RpcClient client(hc_, stc_, 900);

  std::optional<RpcReplyInfo> got;
  eng_.spawn([](RpcClient& client, net::NodeId server,
                std::optional<RpcReplyInfo>& got) -> sim::Task<void> {
    XdrEncoder args;
    args.str("ping");
    auto res = co_await client.call(server, 2049, 7, args.finish());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    got = res.value();
  }(client, ns_.node_id(), got));
  eng_.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 0u);
  XdrDecoder dec(got->results);
  EXPECT_EQ(dec.u32(), 8u);  // "ping" as XDR string: len + 4 bytes
  XdrDecoder inner(dec.rest());
  EXPECT_EQ(inner.str(), "ping");
}

TEST_F(RpcTest, UnknownProcReturnsNotSupported) {
  RpcServer server(hs_, sts_, 2049);
  RpcClient client(hc_, stc_, 900);
  std::optional<std::uint32_t> status;
  eng_.spawn([](RpcClient& client, net::NodeId server,
                std::optional<std::uint32_t>& status) -> sim::Task<void> {
    auto res = co_await client.call(server, 2049, 99, net::Buffer());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    status = res.value().status;
  }(client, ns_.node_id(), status));
  eng_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, static_cast<std::uint32_t>(Errc::not_supported));
}

TEST_F(RpcTest, ConcurrentCallsMatchByXid) {
  RpcServer server(hs_, sts_, 2049);
  server.register_handler(1, [this](const RpcCallCtx& ctx)
                                 -> sim::Task<RpcServerReply> {
    XdrDecoder dec(ctx.args);
    const std::uint32_t v = dec.u32();
    // Vary service time inversely with v so replies come back out of order.
    co_await hs_.engine().delay(usec(100 - v * 10));
    RpcServerReply r;
    r.results.u32(v * 2);
    co_return r;
  });
  RpcClient client(hc_, stc_, 900);

  std::vector<std::uint32_t> results(5, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    eng_.spawn([](RpcClient& client, net::NodeId server, std::uint32_t i,
                  std::vector<std::uint32_t>& results) -> sim::Task<void> {
      XdrEncoder args;
      args.u32(i);
      auto res = co_await client.call(server, 2049, 1, args.finish());
      EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
      XdrDecoder dec(res.value().results);
      results[i] = dec.u32();
    }(client, ns_.node_id(), i, results));
  }
  eng_.run();
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST_F(RpcTest, PrepostedCallPlacesBulkDataDirectly) {
  const auto payload = pattern(KiB(32), 9);
  RpcServer server(hs_, sts_, 2049);
  server.register_handler(2, [&](const RpcCallCtx&)
                                 -> sim::Task<RpcServerReply> {
    RpcServerReply r;
    r.results.u32(static_cast<std::uint32_t>(payload.size()));
    r.bulk = net::Buffer::copy_of(payload);
    co_return r;
  });
  RpcClient client(hc_, stc_, 900);

  const mem::Vaddr va = hc_.map_new(hc_.user_as(), payload.size());
  bool placed = false;
  eng_.spawn([](RpcTest* t, RpcClient& client, net::NodeId server,
                mem::Vaddr va, Bytes len, bool& placed) -> sim::Task<void> {
    Prepost pp{&t->hc_.user_as(), va, len};
    auto res = co_await client.call(server, 2049, 2, net::Buffer(), &pp);
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    placed = res.value().rddp_placed;
    EXPECT_EQ(res.value().rddp_data_len, len);
    XdrDecoder dec(res.value().results);
    EXPECT_EQ(dec.u32(), len);
  }(this, client, ns_.node_id(), va, payload.size(), placed));
  eng_.run();

  EXPECT_TRUE(placed);
  std::vector<std::byte> got(payload.size());
  ASSERT_TRUE(hc_.user_as().read(va, got).ok());
  EXPECT_EQ(got, payload);
}

TEST_F(RpcTest, BulkWithoutPrepostArrivesInline) {
  const auto payload = pattern(KiB(8), 3);
  RpcServer server(hs_, sts_, 2049);
  server.register_handler(2, [&](const RpcCallCtx&)
                                 -> sim::Task<RpcServerReply> {
    RpcServerReply r;
    r.bulk = net::Buffer::copy_of(payload);
    co_return r;
  });
  RpcClient client(hc_, stc_, 900);

  std::vector<std::byte> got;
  eng_.spawn([](RpcClient& client, net::NodeId server,
                std::vector<std::byte>& got) -> sim::Task<void> {
    auto res = co_await client.call(server, 2049, 2, net::Buffer());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_FALSE(res.value().rddp_placed);
    const auto v = res.value().results.view();
    got.assign(v.begin(), v.end());
  }(client, ns_.node_id(), got));
  eng_.run();
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace ordma::rpc
