// Unit tests for the memory substrate: physical memory, page tables,
// pin/lock semantics, registrations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/address_space.h"
#include "mem/physical_memory.h"

namespace ordma::mem {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> xs) {
  std::vector<std::byte> v;
  for (int x : xs) v.push_back(static_cast<std::byte>(x));
  return v;
}

TEST(PhysicalMemory, ReadsOfUntouchedMemoryAreZero) {
  PhysicalMemory pm(16);
  std::vector<std::byte> out(64);
  pm.read(100, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(pm.frames_touched(), 0u);
}

TEST(PhysicalMemory, WriteReadRoundTrip) {
  PhysicalMemory pm(16);
  const auto data = bytes({1, 2, 3, 4, 5});
  pm.write(1000, data);
  std::vector<std::byte> out(5);
  pm.read(1000, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(pm.frames_touched(), 1u);
}

TEST(PhysicalMemory, CrossFrameTransfer) {
  PhysicalMemory pm(16);
  std::vector<std::byte> data(kPageSize + 100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i & 0xff);
  }
  const Paddr addr = kPageSize - 50;  // straddles frames 0,1,2
  pm.write(addr, data);
  std::vector<std::byte> out(data.size());
  pm.read(addr, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(pm.frames_touched(), 3u);
}

TEST(PhysicalMemory, FrameDataGivesWholePage) {
  PhysicalMemory pm(4);
  auto f = pm.frame_data(2);
  EXPECT_EQ(f.size(), kPageSize);
  f[0] = std::byte{0xAB};
  std::vector<std::byte> out(1);
  pm.read(frame_base(2), out);
  EXPECT_EQ(out[0], std::byte{0xAB});
}

TEST(FrameAllocator, AllocatesDistinctFramesAndRecycles) {
  FrameAllocator alloc(10, 3);
  auto a = alloc.allocate();
  auto b = alloc.allocate();
  auto c = alloc.allocate();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(alloc.allocate().code(), Errc::no_space);
  alloc.free(b.value());
  auto d = alloc.allocate();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), b.value());
}

TEST(FrameAllocator, TracksFreeCount) {
  FrameAllocator alloc(0, 5);
  EXPECT_EQ(alloc.free_frames(), 5u);
  auto a = alloc.allocate();
  EXPECT_EQ(alloc.free_frames(), 4u);
  alloc.free(a.value());
  EXPECT_EQ(alloc.free_frames(), 5u);
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory pm_{64};
  AddressSpace as_{pm_};
};

TEST_F(AddressSpaceTest, TranslateMappedPage) {
  as_.map(5, 9);
  auto pa = as_.translate(5 * kPageSize + 123, false);
  ASSERT_TRUE(pa.ok());
  EXPECT_EQ(pa.value(), 9 * kPageSize + 123);
}

TEST_F(AddressSpaceTest, TranslateUnmappedFaults) {
  EXPECT_EQ(as_.translate(kPageSize, false).code(), Errc::access_fault);
}

TEST_F(AddressSpaceTest, WriteProtectionFaultsWritesOnly) {
  as_.map(1, 2, /*writable=*/false);
  EXPECT_TRUE(as_.translate(kPageSize, false).ok());
  EXPECT_EQ(as_.translate(kPageSize, true).code(), Errc::access_fault);
  as_.protect(1, /*writable=*/true);
  EXPECT_TRUE(as_.translate(kPageSize, true).ok());
}

TEST_F(AddressSpaceTest, ReadWriteThroughPageTable) {
  as_.map(0, 3);
  as_.map(1, 7);  // non-contiguous frames behind contiguous va
  std::vector<std::byte> data(kPageSize + 32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 7) & 0xff);
  }
  // Starting at vpn0 end, the range spans vpns 0..2; vpn 2 is unmapped.
  EXPECT_FALSE(as_.write(kPageSize - 16, data).ok());
  as_.map(2, 9);
  ASSERT_TRUE(as_.write(kPageSize - 16, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(as_.read(kPageSize - 16, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(AddressSpaceTest, PinPreventsUnmapUntilUnpinned) {
  as_.map(4, 8);
  as_.pin(4);
  EXPECT_TRUE(as_.lookup(4)->pinned());
  as_.unpin(4);
  EXPECT_FALSE(as_.lookup(4)->pinned());
  EXPECT_EQ(as_.unmap(4), Pfn{8});
}

TEST_F(AddressSpaceTest, PinRangeValidatesBeforePinning) {
  as_.map(0, 1);
  // Range extends into unmapped vpn 1: must fail with no pins taken.
  EXPECT_EQ(as_.pin_range(100, kPageSize * 2).code(), Errc::access_fault);
  EXPECT_EQ(as_.lookup(0)->pin_count, 0);
  EXPECT_TRUE(as_.pin_range(0, kPageSize).ok());
  EXPECT_EQ(as_.lookup(0)->pin_count, 1);
  as_.unpin_range(0, kPageSize);
  EXPECT_EQ(as_.lookup(0)->pin_count, 0);
}

TEST_F(AddressSpaceTest, LockFlagToggles) {
  as_.map(2, 5);
  EXPECT_FALSE(as_.lookup(2)->locked);
  as_.lock(2);
  EXPECT_TRUE(as_.lookup(2)->locked);
  as_.unlock(2);
  EXPECT_FALSE(as_.lookup(2)->locked);
}

TEST_F(AddressSpaceTest, RegistrationPinsAndUnpinsRaii) {
  as_.map(0, 1);
  as_.map(1, 2);
  {
    Registration reg(as_, 100, kPageSize);  // spans vpn 0 and 1
    EXPECT_EQ(as_.lookup(0)->pin_count, 1);
    EXPECT_EQ(as_.lookup(1)->pin_count, 1);
  }
  EXPECT_EQ(as_.lookup(0)->pin_count, 0);
  EXPECT_EQ(as_.lookup(1)->pin_count, 0);
}

TEST_F(AddressSpaceTest, PageHelpers) {
  EXPECT_EQ(page_of(0), 0u);
  EXPECT_EQ(page_of(kPageSize - 1), 0u);
  EXPECT_EQ(page_of(kPageSize), 1u);
  EXPECT_EQ(page_offset(kPageSize + 17), 17u);
  EXPECT_EQ(frame_base(3), 3 * kPageSize);
}

}  // namespace
}  // namespace ordma::mem
