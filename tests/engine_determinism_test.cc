// Determinism regression for the event engine.
//
// The engine's contract is bit-reproducible firing order: entries fire in
// (when, seq) order, where seq is global scheduling order. The queue-split
// engine (current-tick FIFO ring + future-time min-heap) must preserve the
// exact order the original single-heap engine produced. This test drives a
// mixed timer / yield / spawn / channel / event / resource workload,
// records the full (time, tag) firing trace, and checks
//   (a) two identical runs produce byte-identical traces, and
//   (b) the trace hash equals the golden hash captured from the seed
//       (single-heap) engine before the queue split — so any reordering
//       introduced by a future engine change fails loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace ordma::sim {
namespace {

struct TraceEntry {
  std::int64_t ns;
  std::uint32_t tag;
  bool operator==(const TraceEntry&) const = default;
};

using Trace = std::vector<TraceEntry>;

// FNV-1a over the raw (ns, tag) stream: a compact byte-identity witness.
std::uint64_t trace_hash(const Trace& t) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& e : t) {
    mix(static_cast<std::uint64_t>(e.ns));
    mix(e.tag);
  }
  return h;
}

// Mixed workload exercising every scheduling source: plain timers (some
// cancelled), 0-delay yields, nested spawns, channel handoffs, event
// broadcast, and FIFO resource contention.
Trace run_workload() {
  Engine eng;
  Trace trace;
  auto rec = [&trace, &eng](std::uint32_t tag) {
    trace.push_back({eng.now().ns, tag});
  };

  Channel<int> ch(eng);
  Event<int> ev(eng);
  Resource res(eng, 2, "res");

  // Plain timers at staggered times, every 5th cancelled before run().
  std::vector<Engine::TimerNode*> nodes;
  for (std::uint32_t i = 0; i < 40; ++i) {
    nodes.push_back(
        eng.schedule_fn(usec((i * 13) % 17), [rec, i] { rec(1000 + i); }));
  }
  for (std::uint32_t i = 0; i < 40; i += 5) nodes[i]->cancelled = true;

  // Producers: delay, compute, send, yield.
  for (std::uint32_t p = 0; p < 6; ++p) {
    eng.spawn([](Engine& e, Channel<int>& ch, Resource& res,
                 decltype(rec) rec, std::uint32_t p) -> Task<void> {
      for (std::uint32_t k = 0; k < 8; ++k) {
        co_await e.delay(usec((p * 7 + k * 3) % 11));
        co_await res.consume(usec(1 + (p + k) % 3));
        ch.send(static_cast<int>(p * 100 + k));
        rec(2000 + p * 10 + k);
        co_await e.yield();
      }
    }(eng, ch, res, rec, p));
  }

  // Consumer of all 48 sends.
  eng.spawn([](Channel<int>& ch, decltype(rec) rec) -> Task<void> {
    for (int k = 0; k < 48; ++k) {
      const int v = co_await ch.recv();
      rec(3000 + static_cast<std::uint32_t>(v % 997));
    }
  }(ch, rec));

  // Event broadcast mid-run; three waiters plus a late waiter.
  for (std::uint32_t w = 0; w < 3; ++w) {
    eng.spawn([](Event<int>& ev, decltype(rec) rec,
                 std::uint32_t w) -> Task<void> {
      const int v = co_await ev.wait();
      rec(4000 + w * 10 + static_cast<std::uint32_t>(v));
    }(ev, rec, w));
  }
  eng.schedule_fn(usec(9), [&ev] { ev.set(5); });

  // Nested spawn: processes that spawn children at the same instant.
  eng.spawn([](Engine& e, decltype(rec) rec) -> Task<void> {
    for (std::uint32_t k = 0; k < 10; ++k) {
      e.spawn([](Engine& e2, decltype(rec) rec,
                 std::uint32_t k) -> Task<void> {
        co_await e2.delay(usec(k % 4));
        rec(5000 + k);
        co_await e2.yield();
        rec(5100 + k);
      }(e, rec, k));
      co_await e.delay(usec(2));
    }
  }(eng, rec));

  eng.run();
  return trace;
}

TEST(EngineDeterminism, TwoRunsProduceByteIdenticalTraces) {
  const Trace a = run_workload();
  const Trace b = run_workload();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
}

// Golden hash captured from the seed single-heap engine (pre queue-split).
// If this fails, the engine's (when, seq) firing order changed — that is a
// correctness regression for every recorded experiment, not a flaky test.
constexpr std::uint64_t kSeedEngineTraceHash = 0x6c062660ba7b9bbdull;

TEST(EngineDeterminism, FiringOrderMatchesSeedEngine) {
  const Trace t = run_workload();
  EXPECT_EQ(trace_hash(t), kSeedEngineTraceHash)
      << "event firing order diverged from the seed engine ("
      << t.size() << " entries)";
}

// Observability must be pure observation: with a TraceRecorder installed,
// the engine's firing order (and therefore every simulated timestamp) must
// be byte-identical to the untraced run — pinned against the same golden
// hash. Instrumentation records spans with explicit timestamps and never
// schedules, so any divergence here means a tracing hook leaked into the
// simulation's event flow.
TEST(EngineDeterminism, FiringOrderUnchangedByTracing) {
  obs::TraceRecorder rec;
  obs::install(&rec);
  const Trace t = run_workload();
  obs::install(static_cast<obs::TraceRecorder*>(nullptr));
  EXPECT_EQ(trace_hash(t), kSeedEngineTraceHash)
      << "installing a trace recorder changed the event firing order";
}

// Pool stress: schedule and cancel 100k timers in waves, interleaved with
// firing ones; under ASan this proves the node pool neither leaks nor
// double-recycles. Also covers destroying an engine with a loaded queue.
TEST(EngineDeterminism, ScheduleCancelStress) {
  std::uint64_t fired = 0;
  {
    Engine eng;
    std::vector<Engine::TimerNode*> live;
    for (int wave = 0; wave < 10; ++wave) {
      live.clear();
      for (int i = 0; i < 10000; ++i) {
        live.push_back(
            eng.schedule_fn(usec(1 + i % 7), [&fired] { ++fired; }));
      }
      // Cancel every other one, then drain.
      for (std::size_t i = 0; i < live.size(); i += 2) {
        live[i]->cancelled = true;
      }
      eng.run();
    }
    EXPECT_EQ(fired, 10u * 10000u / 2u);
    // Leave a loaded queue behind: schedule another wave and destroy the
    // engine without running it (dtor must release all pooled nodes).
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_fn(usec(5), [&fired] { ++fired; });
      eng.spawn([](Engine& e) -> Task<void> {
        co_await e.delay(usec(3));
      }(eng));
    }
  }
  EXPECT_EQ(fired, 10u * 10000u / 2u);  // the last wave never ran
}

}  // namespace
}  // namespace ordma::sim
