// Unit tests for the adaptive per-op protocol selection engine
// (policy/policy.h): hysteresis (no flapping inside the guard band),
// convergence (flips once evidence clears it), deterministic forced
// exploration, write-arm gating, and decision determinism.
#include <gtest/gtest.h>

#include <vector>

#include "obs/signals.h"
#include "policy/policy.h"

namespace ordma::policy {
namespace {

PolicyConfig enabled_config() {
  PolicyConfig cfg;
  cfg.enabled = true;
  cfg.explore_every = 0;  // most tests want no exploration noise
  return cfg;
}

TEST(PolicyEngine, DisabledByDefaultAndGatesWriteBack) {
  PolicyConfig def;
  EXPECT_FALSE(def.enabled);
  PolicyEngine off(def, nullptr);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.adapts_writes());
  EXPECT_FALSE(off.may_write_back());

  PolicyConfig on = enabled_config();
  PolicyEngine eng(on, nullptr);
  EXPECT_TRUE(eng.enabled());
  EXPECT_TRUE(eng.adapts_writes());
  // allow_write_back defaults off: write-back changes durability semantics.
  EXPECT_FALSE(eng.may_write_back());
}

TEST(PolicyEngine, HoldsPreferenceInsideGuardBand) {
  PolicyConfig cfg = enabled_config();
  cfg.guard_band = 0.15;
  PolicyEngine eng(cfg, nullptr);
  ASSERT_EQ(eng.read_pref(), ReadMech::ordma);
  // Make RPC slightly cheaper than ORDMA — but within the guard band, so
  // the incumbent must hold (no flapping at the crossover).
  for (int i = 0; i < 64; ++i) {
    eng.observe_read(ReadMech::ordma, 50.0, /*faulted=*/false);
    eng.observe_read(ReadMech::rpc, 45.0, /*faulted=*/false);
  }
  EXPECT_LT(eng.read_cost(ReadMech::rpc), eng.read_cost(ReadMech::ordma));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(eng.choose_read(), ReadMech::ordma);
  EXPECT_EQ(eng.counters().read_flips, 0u);
}

TEST(PolicyEngine, FlipsOncePastGuardBandAndFlipsBack) {
  PolicyConfig cfg = enabled_config();
  PolicyEngine eng(cfg, nullptr);
  // Faulting ORDMA: every attempt burns an exception round trip, so the
  // modeled ORDMA cost climbs well past RPC's.
  for (int i = 0; i < 64; ++i) {
    eng.observe_read(ReadMech::ordma, 30.0, /*faulted=*/true);
    eng.observe_read(ReadMech::rpc, 80.0, /*faulted=*/false);
  }
  EXPECT_EQ(eng.choose_read(), ReadMech::rpc);
  EXPECT_EQ(eng.read_pref(), ReadMech::rpc);
  EXPECT_EQ(eng.counters().read_flips, 1u);
  EXPECT_GE(eng.exception_rate(), 0.9);
  // Faults clear (references fresh again): preference recovers.
  for (int i = 0; i < 64; ++i) {
    eng.observe_read(ReadMech::ordma, 30.0, /*faulted=*/false);
  }
  EXPECT_EQ(eng.choose_read(), ReadMech::ordma);
  EXPECT_EQ(eng.counters().read_flips, 2u);
}

TEST(PolicyEngine, ExplorationCadenceIsDeterministic) {
  PolicyConfig cfg = enabled_config();
  cfg.explore_every = 4;
  PolicyEngine eng(cfg, nullptr);
  std::vector<ReadMech> picks;
  for (int i = 0; i < 12; ++i) picks.push_back(eng.choose_read());
  // Every 4th decision (1-indexed) must issue the disfavored mechanism.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(picks[i], (i + 1) % 4 == 0 ? ReadMech::rpc : ReadMech::ordma)
        << "decision " << i;
  }
  EXPECT_EQ(eng.counters().read_explored, 3u);
  EXPECT_EQ(eng.counters().read_flips, 0u);
}

TEST(PolicyEngine, WriteBackArmRequiresOptIn) {
  PolicyConfig cfg = enabled_config();
  cfg.explore_every = 8;
  PolicyEngine eng(cfg, nullptr);
  // Make write-back look free; without the opt-in it must never be picked,
  // not even by exploration.
  for (int i = 0; i < 64; ++i) eng.observe_write(WriteArm::write_back, 1.0,
                                                 /*fell_back=*/false);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(eng.choose_write(), WriteArm::write_back);
  }

  cfg.allow_write_back = true;
  PolicyEngine eng2(cfg, nullptr);
  for (int i = 0; i < 64; ++i) {
    eng2.observe_write(WriteArm::write_back, 1.0, /*fell_back=*/false);
    eng2.observe_flush(1.0);
  }
  bool saw_wb = false;
  for (int i = 0; i < 8 && !saw_wb; ++i) {
    saw_wb = eng2.choose_write() == WriteArm::write_back;
  }
  EXPECT_TRUE(saw_wb);
}

TEST(PolicyEngine, PutDegradationShiftsWritePreferenceToRpc) {
  PolicyConfig cfg = enabled_config();
  PolicyEngine eng(cfg, nullptr);
  ASSERT_EQ(eng.write_pref(), WriteArm::put);
  // Every put degrades to RPC (no usable reference): modeled put cost is
  // put + fallback-rate * rpc, which overtakes plain RPC.
  for (int i = 0; i < 64; ++i) {
    eng.observe_write(WriteArm::put, 130.0, /*fell_back=*/true);
    eng.observe_write(WriteArm::rpc, 80.0, /*fell_back=*/false);
  }
  EXPECT_EQ(eng.choose_write(), WriteArm::rpc);
  EXPECT_EQ(eng.write_pref(), WriteArm::rpc);
}

TEST(PolicyEngine, ServerCpuKneeScalesRpcCost) {
  obs::OpSignals sig;
  PolicyConfig cfg = enabled_config();
  cfg.server_cpu_knee = 0.85;
  cfg.server_cpu_weight = 2.0;
  PolicyEngine eng(cfg, &sig);
  const double idle = eng.read_cost(ReadMech::rpc);
  sig.server_cpu.update(1.0);  // saturated server
  const double loaded = eng.read_cost(ReadMech::rpc);
  EXPECT_GT(loaded, idle * 1.2);
  EXPECT_DOUBLE_EQ(loaded, idle * (1.0 + 2.0 * (1.0 - 0.85)));
}

TEST(PolicyEngine, IdenticalHistoryGivesIdenticalDecisions) {
  PolicyConfig cfg = enabled_config();
  cfg.explore_every = 8;
  PolicyEngine a(cfg, nullptr), b(cfg, nullptr);
  // Interleave decisions and observations; both engines see the same
  // history and must produce the same choice sequence (determinism is what
  // keeps golden hashes stable at any worker count).
  std::vector<int> seq_a, seq_b;
  for (int i = 0; i < 200; ++i) {
    const bool fault = (i / 16) % 2 == 1;  // alternating fault regimes
    for (PolicyEngine* e : {&a, &b}) {
      auto& out = e == &a ? seq_a : seq_b;
      out.push_back(static_cast<int>(e->choose_read()));
      e->observe_read(ReadMech::ordma, fault ? 30.0 : 40.0, fault);
      out.push_back(static_cast<int>(e->choose_write()));
      e->observe_write(WriteArm::put, 50.0, /*fell_back=*/false);
    }
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(a.counters().read_flips, b.counters().read_flips);
  EXPECT_EQ(a.counters().read_explored, b.counters().read_explored);
}

}  // namespace
}  // namespace ordma::policy
