// Unit tests for common utilities: units, Result, RNG, stats, intrusive list.
#include <gtest/gtest.h>

#include <set>

#include "common/intrusive_list.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace ordma {
namespace {

TEST(Units, DurationArithmetic) {
  EXPECT_EQ(usec(1), nsec(1000));
  EXPECT_EQ(msec(1), usec(1000));
  EXPECT_EQ(sec(1), msec(1000));
  EXPECT_EQ((usec(3) + usec(4)).ns, usec(7).ns);
  EXPECT_EQ((usec(10) - usec(4)).ns, usec(6).ns);
  EXPECT_DOUBLE_EQ(usec(1500).to_ms(), 1.5);
  EXPECT_EQ(usec_f(2.5), nsec(2500));
}

TEST(Units, BandwidthTimeForSize) {
  // 250 MB/s: 4 KiB in 4096/250e6 s = 16.384 us (ceil to ns)
  const Bandwidth bw = MBps(250);
  EXPECT_EQ(bw.time_for(4096).ns, 16384);
  EXPECT_EQ(bw.time_for(0).ns, 0);
  // 2 Gb/s == 250 MB/s
  EXPECT_EQ(Gbps(2).bytes_per_sec, MBps(250).bytes_per_sec);
}

TEST(Units, ThroughputComputation) {
  EXPECT_DOUBLE_EQ(throughput_MBps(MiB(100), sec(1)),
                   static_cast<double>(MiB(100)) / 1e6);
  EXPECT_DOUBLE_EQ(throughput_MBps(1000, Duration{0}), 0.0);
}

TEST(Result, OkAndErrorPaths) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), Errc::ok);

  Result<int> err = Errc::not_found;
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::not_found);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, StatusNames) {
  EXPECT_STREQ(Status(Errc::access_fault).name(), "access_fault");
  EXPECT_STREQ(Status().name(), "ok");
  EXPECT_TRUE(Status().ok());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_equal &= (va == b.next());
    any_diff_c |= (va != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, BelowIsInRangeAndCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(42);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
}

TEST(Stats, LatencyHistogramBuckets) {
  LatencyHistogram h;
  h.add(usec(1));
  h.add(usec(3));
  h.add(usec(100));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean_us(), (1 + 3 + 100) / 3.0, 0.01);
  EXPECT_FALSE(h.to_string().empty());
}

struct Item : ListNode {
  explicit Item(int v) : value(v) {}
  int value;
};

TEST(IntrusiveList, PushPopOrder) {
  IntrusiveList<Item> l;
  Item a(1), b(2), c(3);
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.pop_front()->value, 1);
  EXPECT_EQ(l.pop_front()->value, 2);
  EXPECT_EQ(l.pop_front()->value, 3);
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, EraseMiddleAndTouch) {
  IntrusiveList<Item> l;
  Item a(1), b(2), c(3);
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  l.erase(&b);
  EXPECT_EQ(l.size(), 2u);
  EXPECT_FALSE(b.linked());
  l.touch(&a);  // move a to MRU (back)
  EXPECT_EQ(l.front()->value, 3);
  EXPECT_EQ(l.back()->value, 1);
}

TEST(IntrusiveList, ForEachVisitsAll) {
  IntrusiveList<Item> l;
  Item a(1), b(2), c(3);
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  int sum = 0;
  l.for_each([&](Item* it) { sum += it->value; });
  EXPECT_EQ(sum, 6);
}

}  // namespace
}  // namespace ordma
