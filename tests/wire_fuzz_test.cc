// Seeded property tests for the wire layer: XDR round-trips, decoder
// behaviour on truncated and bit-corrupted inputs (no crash, no over-read,
// clean ok()==false on any short field), and checksum chainability. These
// are the decoders every fault-injected torture frame flows through.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nas/wire_util.h"
#include "rpc/xdr.h"

namespace ordma {
namespace {

using rpc::XdrDecoder;
using rpc::XdrEncoder;

// A random script of encode operations, replayable against a decoder.
struct Token {
  enum class Kind { u32, u64, i64, opaque, str } kind;
  std::uint64_t value = 0;
  std::vector<std::byte> bytes;
  std::string text;
};

std::vector<Token> random_script(Rng& rng) {
  std::vector<Token> script(1 + rng.below(12));
  for (Token& t : script) {
    switch (rng.below(5)) {
      case 0:
        t.kind = Token::Kind::u32;
        t.value = rng.below(1ull << 32);
        break;
      case 1:
        t.kind = Token::Kind::u64;
        t.value = rng.below(~std::uint64_t{0});
        break;
      case 2:
        t.kind = Token::Kind::i64;
        t.value = rng.below(~std::uint64_t{0});
        break;
      case 3: {
        t.kind = Token::Kind::opaque;
        t.bytes.resize(rng.below(64));
        for (auto& b : t.bytes) b = static_cast<std::byte>(rng.below(256));
        break;
      }
      default: {
        t.kind = Token::Kind::str;
        t.text.resize(rng.below(32));
        for (auto& c : t.text)
          c = static_cast<char>('a' + rng.below(26));
        break;
      }
    }
  }
  return script;
}

std::vector<std::byte> encode_script(const std::vector<Token>& script) {
  XdrEncoder enc;
  for (const Token& t : script) {
    switch (t.kind) {
      case Token::Kind::u32:
        enc.u32(static_cast<std::uint32_t>(t.value));
        break;
      case Token::Kind::u64:
        enc.u64(t.value);
        break;
      case Token::Kind::i64:
        enc.i64(static_cast<std::int64_t>(t.value));
        break;
      case Token::Kind::opaque:
        enc.opaque(t.bytes);
        break;
      case Token::Kind::str:
        enc.str(t.text);
        break;
    }
  }
  return enc.take();
}

// Replay the script against `data`; returns the decoder's final ok() state.
// Must never crash or read outside `data` regardless of its contents.
bool decode_script(const std::vector<Token>& script,
                   std::span<const std::byte> data, bool check_values) {
  XdrDecoder dec(data);
  for (const Token& t : script) {
    switch (t.kind) {
      case Token::Kind::u32: {
        const std::uint32_t v = dec.u32();
        if (check_values) EXPECT_EQ(v, static_cast<std::uint32_t>(t.value));
        break;
      }
      case Token::Kind::u64: {
        const std::uint64_t v = dec.u64();
        if (check_values) EXPECT_EQ(v, t.value);
        break;
      }
      case Token::Kind::i64: {
        const std::int64_t v = dec.i64();
        if (check_values) EXPECT_EQ(v, static_cast<std::int64_t>(t.value));
        break;
      }
      case Token::Kind::opaque: {
        const auto s = dec.opaque();
        if (check_values) {
          EXPECT_EQ(s.size(), t.bytes.size());
          EXPECT_TRUE(s.size() == t.bytes.size() &&
                      std::equal(s.begin(), s.end(), t.bytes.begin()));
        }
        break;
      }
      case Token::Kind::str: {
        const std::string s = dec.str();
        if (check_values) EXPECT_EQ(s, t.text);
        break;
      }
    }
  }
  return dec.ok();
}

TEST(WireFuzz, RandomScriptsRoundTrip) {
  Rng rng(0xf00dull);
  for (int iter = 0; iter < 200; ++iter) {
    const auto script = random_script(rng);
    const auto bytes = encode_script(script);
    EXPECT_TRUE(decode_script(script, bytes, /*check_values=*/true));
  }
}

TEST(WireFuzz, EveryTruncationFailsCleanly) {
  // A script needs exactly `bytes.size()` input bytes, so decoding any
  // strict prefix must end with ok()==false — never a crash or over-read.
  Rng rng(0xbeefull);
  for (int iter = 0; iter < 100; ++iter) {
    const auto script = random_script(rng);
    const auto bytes = encode_script(script);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode_script(script, {bytes.data(), cut},
                                 /*check_values=*/false))
          << "prefix of " << cut << '/' << bytes.size()
          << " bytes decoded as complete";
    }
  }
}

TEST(WireFuzz, BitCorruptionNeverCrashesTheDecoder) {
  // Flipped bits may garble values (that's the RPC checksum's job to catch)
  // but the decoder itself must stay memory-safe and terminate. Length
  // prefixes are the dangerous bits: a flipped opaque length must fail the
  // bounds check, not walk off the end of the buffer.
  Rng rng(0xc0ffeeull);
  for (int iter = 0; iter < 300; ++iter) {
    const auto script = random_script(rng);
    auto bytes = encode_script(script);
    if (bytes.empty()) continue;
    const unsigned flips = 1 + rng.below(4);
    for (unsigned f = 0; f < flips; ++f) {
      const std::size_t i = rng.below(bytes.size());
      bytes[i] ^= static_cast<std::byte>(1u << rng.below(8));
    }
    decode_script(script, bytes, /*check_values=*/false);  // must not crash
  }
}

TEST(WireFuzz, StructDecodersSurviveArbitraryBytes) {
  Rng rng(0xdecafull);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::byte> junk(rng.below(96));
    for (auto& b : junk) b = static_cast<std::byte>(rng.below(256));
    {
      XdrDecoder dec(junk);
      (void)nas::decode_attr(dec);
      if (junk.size() < 32) EXPECT_FALSE(dec.ok());
    }
    {
      XdrDecoder dec(junk);
      (void)nas::decode_cap(dec);
      if (junk.size() < 40) EXPECT_FALSE(dec.ok());
    }
    {
      XdrDecoder dec(junk);
      (void)nas::decode_ref(dec);
      if (junk.size() < 64) EXPECT_FALSE(dec.ok());
    }
  }
}

TEST(WireFuzz, StructRoundTrips) {
  Rng rng(0x5eedull);
  for (int iter = 0; iter < 100; ++iter) {
    fs::Attr a;
    a.ino = rng.below(~std::uint64_t{0});
    a.type = static_cast<fs::FileType>(rng.below(2));
    a.size = rng.below(~std::uint64_t{0});
    a.mtime = SimTime{static_cast<std::int64_t>(rng.below(1ull << 62))};
    a.nlink = static_cast<std::uint32_t>(rng.below(1ull << 32));

    cache::RemoteRef r;
    r.seg_id = rng.below(~std::uint64_t{0});
    r.va = rng.below(~std::uint64_t{0});
    r.len = rng.below(~std::uint64_t{0});
    r.cap.segment_id = rng.below(~std::uint64_t{0});
    r.cap.base = rng.below(~std::uint64_t{0});
    r.cap.length = rng.below(~std::uint64_t{0});
    r.cap.perm = static_cast<crypto::SegPerm>(rng.below(4));
    r.cap.generation = static_cast<std::uint32_t>(rng.below(1ull << 32));
    r.cap.mac = rng.below(~std::uint64_t{0});

    XdrEncoder enc;
    nas::encode_attr(enc, a);
    nas::encode_ref(enc, r);
    const auto bytes = enc.take();

    XdrDecoder dec(bytes);
    const fs::Attr a2 = nas::decode_attr(dec);
    const cache::RemoteRef r2 = nas::decode_ref(dec);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.remaining(), 0u);
    EXPECT_EQ(a2.ino, a.ino);
    EXPECT_EQ(a2.type, a.type);
    EXPECT_EQ(a2.size, a.size);
    EXPECT_EQ(a2.mtime.ns, a.mtime.ns);
    EXPECT_EQ(a2.nlink, a.nlink);
    EXPECT_EQ(r2.seg_id, r.seg_id);
    EXPECT_EQ(r2.va, r.va);
    EXPECT_EQ(r2.len, r.len);
    EXPECT_EQ(r2.cap.segment_id, r.cap.segment_id);
    EXPECT_EQ(r2.cap.base, r.cap.base);
    EXPECT_EQ(r2.cap.length, r.cap.length);
    EXPECT_EQ(r2.cap.perm, r.cap.perm);
    EXPECT_EQ(r2.cap.generation, r.cap.generation);
    EXPECT_EQ(r2.cap.mac, r.cap.mac);
  }
}

TEST(WireFuzz, WritePathStructsRoundTrip) {
  // The ORDMA write-path messages: put-commit args, server→client
  // invalidations, and version-carrying piggybacked references.
  Rng rng(0x9412ull);
  for (int iter = 0; iter < 100; ++iter) {
    nas::PutCommitArgs p;
    p.fh = rng.below(~std::uint64_t{0});
    p.fbn = rng.below(~std::uint64_t{0});
    p.off = static_cast<std::uint32_t>(rng.below(1ull << 32));
    p.len = static_cast<std::uint32_t>(rng.below(1ull << 32));
    p.cksum = static_cast<std::uint32_t>(rng.below(1ull << 32));
    p.flags = static_cast<std::uint32_t>(rng.below(1ull << 32));

    nas::InvalidateMsg m;
    m.ino = rng.below(~std::uint64_t{0});
    m.fbn = rng.below(~std::uint64_t{0});
    m.version = rng.below(~std::uint64_t{0});

    nas::VersionedRef v;
    v.fbn = rng.below(~std::uint64_t{0});
    v.version = rng.below(~std::uint64_t{0});
    v.ref.seg_id = rng.below(~std::uint64_t{0});
    v.ref.va = rng.below(~std::uint64_t{0});
    v.ref.len = rng.below(~std::uint64_t{0});
    v.ref.cap.segment_id = rng.below(~std::uint64_t{0});
    v.ref.cap.base = rng.below(~std::uint64_t{0});
    v.ref.cap.length = rng.below(~std::uint64_t{0});
    v.ref.cap.perm = static_cast<crypto::SegPerm>(rng.below(4));
    v.ref.cap.generation = static_cast<std::uint32_t>(rng.below(1ull << 32));
    v.ref.cap.mac = rng.below(~std::uint64_t{0});

    XdrEncoder enc;
    nas::encode_put_commit(enc, p);
    nas::encode_invalidate(enc, m);
    nas::encode_versioned_ref(enc, v);
    const auto bytes = enc.take();

    XdrDecoder dec(bytes);
    const nas::PutCommitArgs p2 = nas::decode_put_commit(dec);
    const nas::InvalidateMsg m2 = nas::decode_invalidate(dec);
    const nas::VersionedRef v2 = nas::decode_versioned_ref(dec);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.remaining(), 0u);
    EXPECT_EQ(p2.fh, p.fh);
    EXPECT_EQ(p2.fbn, p.fbn);
    EXPECT_EQ(p2.off, p.off);
    EXPECT_EQ(p2.len, p.len);
    EXPECT_EQ(p2.cksum, p.cksum);
    EXPECT_EQ(p2.flags, p.flags);
    EXPECT_EQ(m2.ino, m.ino);
    EXPECT_EQ(m2.fbn, m.fbn);
    EXPECT_EQ(m2.version, m.version);
    EXPECT_EQ(v2.fbn, v.fbn);
    EXPECT_EQ(v2.version, v.version);
    EXPECT_EQ(v2.ref.seg_id, v.ref.seg_id);
    EXPECT_EQ(v2.ref.va, v.ref.va);
    EXPECT_EQ(v2.ref.len, v.ref.len);
    EXPECT_EQ(v2.ref.cap.segment_id, v.ref.cap.segment_id);
    EXPECT_EQ(v2.ref.cap.base, v.ref.cap.base);
    EXPECT_EQ(v2.ref.cap.length, v.ref.cap.length);
    EXPECT_EQ(v2.ref.cap.perm, v.ref.cap.perm);
    EXPECT_EQ(v2.ref.cap.generation, v.ref.cap.generation);
    EXPECT_EQ(v2.ref.cap.mac, v.ref.cap.mac);

    // Truncation: every strict prefix of the concatenation must end with
    // ok()==false when replayed through the same decode sequence.
    for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
      XdrDecoder cutdec(std::span<const std::byte>(bytes.data(), cut));
      (void)nas::decode_put_commit(cutdec);
      (void)nas::decode_invalidate(cutdec);
      (void)nas::decode_versioned_ref(cutdec);
      EXPECT_FALSE(cutdec.ok()) << "prefix " << cut << " decoded complete";
    }
  }
}

TEST(WireFuzz, WritePathDecodersSurviveCorruptBytes) {
  // Bit-flipped and arbitrary junk frames must never crash the write-path
  // decoders (the NIC/fault layer feeds them exactly this under torture).
  Rng rng(0x7a31ull);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::byte> junk(rng.below(96));
    for (auto& b : junk) b = static_cast<std::byte>(rng.below(256));
    {
      XdrDecoder dec(junk);
      (void)nas::decode_put_commit(dec);
      if (junk.size() < 32) EXPECT_FALSE(dec.ok());
    }
    {
      XdrDecoder dec(junk);
      (void)nas::decode_invalidate(dec);
      if (junk.size() < 24) EXPECT_FALSE(dec.ok());
    }
    {
      XdrDecoder dec(junk);
      (void)nas::decode_versioned_ref(dec);
      if (junk.size() < 80) EXPECT_FALSE(dec.ok());
    }
  }
}

TEST(WireFuzz, Checksum32ChainsAcrossRegions) {
  // checksum32(a ++ b) == checksum32(b, checksum32(a)) — the property the
  // RPC layer relies on to checksum header + results + RDDP-placed bulk
  // data as one stream without concatenating them.
  Rng rng(0xcafeull);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::byte> a(rng.below(128)), b(rng.below(128));
    for (auto& x : a) x = static_cast<std::byte>(rng.below(256));
    for (auto& x : b) x = static_cast<std::byte>(rng.below(256));
    std::vector<std::byte> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(rpc::checksum32(ab), rpc::checksum32(b, rpc::checksum32(a)));
    // And the empty region is the identity under chaining.
    EXPECT_EQ(rpc::checksum32({}, rpc::checksum32(a)), rpc::checksum32(a));
  }
}

}  // namespace
}  // namespace ordma
