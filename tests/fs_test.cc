// Unit tests for the storage substrate: disk model, buffer cache (LRU,
// write-back, pinning, evict hooks), and the server file system.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "fs/buffer_cache.h"
#include "fs/disk.h"
#include "fs/server_fs.h"
#include "host/host.h"
#include "sim/engine.h"

namespace ordma::fs {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 97 + seed) & 0xff);
  }
  return v;
}

// Run a coroutine to completion on a fresh engine.
template <typename F>
void run(sim::Engine& eng, F&& body) {
  bool done = false;
  eng.spawn([](F body, bool& done) -> sim::Task<void> {
    co_await body();
    done = true;
  }(std::forward<F>(body), done));
  eng.run();
  ASSERT_TRUE(done) << "driver coroutine did not finish";
}

class FsTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  host::Host host_{eng_, "server", cm_, {MiB(64)}};
};

TEST_F(FsTest, DiskReadWriteRoundTrip) {
  Disk disk(host_, MiB(1), KiB(8));
  const auto data = pattern(KiB(8));
  run(eng_, [&]() -> sim::Task<void> {
    EXPECT_TRUE((co_await disk.write(3, data)).ok());
    std::vector<std::byte> out(KiB(8));
    EXPECT_TRUE((co_await disk.read(3, out)).ok());
    EXPECT_EQ(out, data);
  });
}

TEST_F(FsTest, DiskUnwrittenBlocksReadZero) {
  Disk disk(host_, MiB(1), KiB(8));
  run(eng_, [&]() -> sim::Task<void> {
    std::vector<std::byte> out(KiB(8), std::byte{0xff});
    EXPECT_TRUE((co_await disk.read(0, out)).ok());
    for (auto b : out) EXPECT_EQ(b, std::byte{0});
  });
}

TEST_F(FsTest, DiskSequentialAccessSkipsSeek) {
  Disk disk(host_, MiB(1), KiB(8));
  run(eng_, [&]() -> sim::Task<void> {
    const auto data = pattern(KiB(8));
    const auto t0 = eng_.now();
    (void)co_await disk.write(0, data);
    const auto first = eng_.now() - t0;  // seek + transfer
    const auto t1 = eng_.now();
    (void)co_await disk.write(1, data);
    const auto second = eng_.now() - t1;  // transfer only
    EXPECT_GT(first.ns, second.ns + cm_.disk_seek.ns / 2);
  });
}

TEST_F(FsTest, DiskOutOfRangeRejected) {
  Disk disk(host_, KiB(64), KiB(8));  // 8 blocks
  run(eng_, [&]() -> sim::Task<void> {
    std::vector<std::byte> out(KiB(8));
    EXPECT_EQ((co_await disk.read(8, out)).code(), Errc::invalid_argument);
  });
}

TEST_F(FsTest, CacheHitAvoidsDisk) {
  Disk disk(host_, MiB(1), KiB(8));
  BufferCache cache(host_, disk, 4, KiB(8));
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await cache.get(CacheKey{1, 0}, 0, false);
    const auto reads_after_miss = disk.reads();
    (void)co_await cache.get(CacheKey{1, 0}, 0, false);
    EXPECT_EQ(disk.reads(), reads_after_miss);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
  });
}

TEST_F(FsTest, CacheEvictsLruAndWritesBackDirty) {
  Disk disk(host_, MiB(1), KiB(8));
  BufferCache cache(host_, disk, 2, KiB(8));
  const auto data = pattern(KiB(8), 7);
  run(eng_, [&]() -> sim::Task<void> {
    auto b0 = co_await cache.get(CacheKey{1, 0}, 10, true);
    EXPECT_TRUE(b0.ok());
    EXPECT_TRUE(host_.kernel_as().write(b0.value()->va, data).ok());
    cache.mark_dirty(*b0.value());

    (void)co_await cache.get(CacheKey{1, 1}, 11, true);
    // Third block forces eviction of (1,0) — dirty, so it must hit disk.
    (void)co_await cache.get(CacheKey{1, 2}, 12, true);
    EXPECT_EQ(cache.peek(CacheKey{1, 0}), nullptr);
    EXPECT_GE(disk.writes(), 1u);

    std::vector<std::byte> out(KiB(8));
    EXPECT_TRUE((co_await disk.read(10, out)).ok());
    EXPECT_EQ(out, data);
  });
}

TEST_F(FsTest, CachePinnedBlocksAreNotEvicted) {
  Disk disk(host_, MiB(1), KiB(8));
  BufferCache cache(host_, disk, 2, KiB(8));
  run(eng_, [&]() -> sim::Task<void> {
    auto b0 = co_await cache.get(CacheKey{1, 0}, 0, true);
    auto b1 = co_await cache.get(CacheKey{1, 1}, 1, true);
    BufferCache::pin(*b0.value());
    BufferCache::pin(*b1.value());
    auto b2 = co_await cache.get(CacheKey{1, 2}, 2, true);
    EXPECT_EQ(b2.code(), Errc::no_space);  // everything pinned
    BufferCache::unpin(*b0.value());
    auto b3 = co_await cache.get(CacheKey{1, 2}, 2, true);
    EXPECT_TRUE(b3.ok());
  });
}

TEST_F(FsTest, CacheEvictHookFiresOnEvictionAndInvalidation) {
  Disk disk(host_, MiB(1), KiB(8));
  BufferCache cache(host_, disk, 2, KiB(8));
  std::vector<CacheKey> evicted;
  cache.set_evict_hook([&](CacheBlock& b) { evicted.push_back(b.key); });
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await cache.get(CacheKey{1, 0}, 0, true);
    (void)co_await cache.get(CacheKey{1, 1}, 1, true);
    (void)co_await cache.get(CacheKey{1, 2}, 2, true);  // evicts (1,0)
    cache.invalidate(CacheKey{1, 1});
  });
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], (CacheKey{1, 0}));
  EXPECT_EQ(evicted[1], (CacheKey{1, 1}));
}

class ServerFsTest : public ::testing::Test {
 protected:
  sim::Engine eng_;
  host::CostModel cm_;
  host::Host host_{eng_, "server", cm_, {MiB(128)}};
  ServerFs fs_{host_, {MiB(256), KiB(8), 512}};
};

TEST_F(ServerFsTest, CreateLookupRemove) {
  auto ino = fs_.create(ServerFs::kRootIno, "file.txt", FileType::regular);
  ASSERT_TRUE(ino.ok());
  auto found = fs_.lookup(ServerFs::kRootIno, "file.txt");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), ino.value());

  EXPECT_EQ(fs_.create(ServerFs::kRootIno, "file.txt", FileType::regular)
                .code(),
            Errc::already_exists);
  EXPECT_TRUE(fs_.remove(ServerFs::kRootIno, "file.txt").ok());
  EXPECT_EQ(fs_.lookup(ServerFs::kRootIno, "file.txt").code(),
            Errc::not_found);
}

TEST_F(ServerFsTest, SubdirectoriesWork) {
  auto dir = fs_.create(ServerFs::kRootIno, "sub", FileType::directory);
  ASSERT_TRUE(dir.ok());
  auto f = fs_.create(dir.value(), "inner", FileType::regular);
  ASSERT_TRUE(f.ok());
  auto names = fs_.readdir(dir.value());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"inner"});
  // Removing a non-empty directory fails.
  EXPECT_EQ(fs_.remove(ServerFs::kRootIno, "sub").code(),
            Errc::invalid_argument);
}

TEST_F(ServerFsTest, WriteReadBackAcrossBlocks) {
  auto ino = fs_.create(ServerFs::kRootIno, "data", FileType::regular);
  ASSERT_TRUE(ino.ok());
  const auto data = pattern(KiB(8) * 3 + 777, 5);  // unaligned length
  run(eng_, [&]() -> sim::Task<void> {
    auto wrote = co_await fs_.write(ino.value(), 0, data);
    EXPECT_TRUE(wrote.ok());
    EXPECT_EQ(wrote.value(), data.size());
    std::vector<std::byte> out(data.size());
    auto got = co_await fs_.read(ino.value(), 0, out);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data.size());
    EXPECT_EQ(out, data);
  });
  auto attr = fs_.getattr(ino.value());
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, data.size());
}

TEST_F(ServerFsTest, UnalignedOffsetsReadCorrectly) {
  auto ino = fs_.create(ServerFs::kRootIno, "d", FileType::regular);
  const auto data = pattern(KiB(32), 3);
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), 0, data);
    std::vector<std::byte> out(5000);
    auto got = co_await fs_.read(ino.value(), 7321, out);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 5000u);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 7321));
  });
}

TEST_F(ServerFsTest, ReadPastEofIsShort) {
  auto ino = fs_.create(ServerFs::kRootIno, "short", FileType::regular);
  const auto data = pattern(1000);
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), 0, data);
    std::vector<std::byte> out(4096);
    auto got = co_await fs_.read(ino.value(), 500, out);
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 500u);
    auto eof = co_await fs_.read(ino.value(), 5000, out);
    EXPECT_TRUE(eof.ok());
    EXPECT_EQ(eof.value(), 0u);
  });
}

TEST_F(ServerFsTest, SparseWriteZeroFillsGap) {
  auto ino = fs_.create(ServerFs::kRootIno, "sparse", FileType::regular);
  const auto data = pattern(100, 9);
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), KiB(20), data);
    std::vector<std::byte> out(100);
    auto got = co_await fs_.read(ino.value(), 0, out);
    EXPECT_TRUE(got.ok());
    for (auto b : out) EXPECT_EQ(b, std::byte{0});
  });
}

TEST_F(ServerFsTest, TruncateFreesAndShrinks) {
  auto ino = fs_.create(ServerFs::kRootIno, "t", FileType::regular);
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), 0, pattern(KiB(64)));
    EXPECT_TRUE((co_await fs_.truncate(ino.value(), KiB(8))).ok());
    EXPECT_EQ(fs_.getattr(ino.value()).value().size, KiB(8));
    std::vector<std::byte> out(KiB(16));
    auto got = co_await fs_.read(ino.value(), 0, out);
    EXPECT_EQ(got.value(), KiB(8));
  });
}

TEST_F(ServerFsTest, WarmLoadsAllBlocksIntoCache) {
  auto ino = fs_.create(ServerFs::kRootIno, "warm", FileType::regular);
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), 0, pattern(KiB(64)));
    EXPECT_TRUE((co_await fs_.warm(ino.value())).ok());
    const auto hits0 = fs_.cache().hits();
    std::vector<std::byte> out(KiB(64));
    (void)co_await fs_.read(ino.value(), 0, out);
    EXPECT_EQ(fs_.cache().hits(), hits0 + 8);  // all 8 blocks hit
  });
}

TEST_F(ServerFsTest, RemoveInvalidatesCacheEntries) {
  auto ino = fs_.create(ServerFs::kRootIno, "gone", FileType::regular);
  std::set<std::uint64_t> evicted_fbns;
  fs_.cache().set_evict_hook(
      [&](CacheBlock& b) { evicted_fbns.insert(b.key.fbn); });
  run(eng_, [&]() -> sim::Task<void> {
    (void)co_await fs_.write(ino.value(), 0, pattern(KiB(24)));
    EXPECT_TRUE(fs_.remove(ServerFs::kRootIno, "gone").ok());
  });
  EXPECT_EQ(evicted_fbns.size(), 3u);  // 3 x 8 KB blocks invalidated
}

}  // namespace
}  // namespace ordma::fs
