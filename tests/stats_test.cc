// Regression pins for common/stats.h: the nearest-rank percentile
// convention and the latency-histogram bucket edges. These are load-bearing
// for every bench table and for metrics snapshots, so the conventions are
// pinned here rather than re-derived per caller.
#include "common/stats.h"

#include <gtest/gtest.h>

namespace ordma {
namespace {

TEST(Samples, PercentileNearestRank) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  // Nearest rank: smallest x with at least ceil(q*N) samples <= x.
  EXPECT_EQ(s.percentile(0.0), 1.0);    // rank clamps to 1 → minimum
  EXPECT_EQ(s.percentile(0.01), 1.0);   // ceil(1) = 1
  EXPECT_EQ(s.percentile(0.5), 50.0);   // ceil(50) = 50
  EXPECT_EQ(s.percentile(0.99), 99.0);  // ceil(99) = 99
  EXPECT_EQ(s.percentile(1.0), 100.0);  // maximum
  EXPECT_EQ(s.median(), 50.0);
}

TEST(Samples, PercentileSmallCounts) {
  Samples one;
  one.add(42.0);
  EXPECT_EQ(one.percentile(0.0), 42.0);
  EXPECT_EQ(one.percentile(0.5), 42.0);
  EXPECT_EQ(one.percentile(1.0), 42.0);

  Samples two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_EQ(two.percentile(0.0), 10.0);
  EXPECT_EQ(two.percentile(0.5), 10.0);   // ceil(0.5*2) = 1
  EXPECT_EQ(two.percentile(0.51), 20.0);  // ceil(1.02) = 2
  EXPECT_EQ(two.percentile(1.0), 20.0);

  Samples empty;
  EXPECT_EQ(empty.percentile(0.5), 0.0);
}

TEST(Samples, PercentileReturnsActualSamples) {
  // No interpolation: results are members of the sample set.
  Samples s;
  s.add(1.0);
  s.add(1000.0);
  EXPECT_EQ(s.percentile(0.5), 1.0);
  EXPECT_EQ(s.percentile(0.75), 1000.0);
}

TEST(Samples, PercentileUnsortedInsertOrder) {
  Samples s;
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(x);
  EXPECT_EQ(s.percentile(0.2), 1.0);  // ceil(1) = 1
  EXPECT_EQ(s.percentile(0.6), 3.0);  // ceil(3) = 3
  EXPECT_EQ(s.percentile(1.0), 5.0);
}

TEST(LatencyHistogram, BucketEdges) {
  // Bucket 0 = [0,1) us; bucket b = [2^(b-1), 2^b) us; last = overflow.
  EXPECT_EQ(LatencyHistogram::upper_edge_us(0), 1.0);
  EXPECT_EQ(LatencyHistogram::upper_edge_us(1), 2.0);
  EXPECT_EQ(LatencyHistogram::upper_edge_us(2), 4.0);
  EXPECT_EQ(LatencyHistogram::upper_edge_us(10), 1024.0);
  EXPECT_TRUE(std::isinf(
      LatencyHistogram::upper_edge_us(LatencyHistogram::bucket_count() - 1)));
}

TEST(LatencyHistogram, BucketAssignment) {
  LatencyHistogram h;
  h.add(nsec(0));        // 0 us → bucket 0
  h.add(nsec(999));      // 0.999 us → bucket 0
  h.add(usec(1));        // lower edge inclusive → bucket 1
  h.add(nsec(1999));     // 1.999 us → bucket 1
  h.add(usec(2));        // → bucket 2
  h.add(nsec(3999));     // 3.999 us → bucket 2
  h.add(usec(4));        // → bucket 3
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 2u);
  EXPECT_EQ(h.bucket_value(3), 1u);
  EXPECT_EQ(h.count(), 7u);
}

TEST(LatencyHistogram, OverflowBucket) {
  LatencyHistogram h;
  h.add(sec(10));  // 1e7 us, beyond the top finite edge
  EXPECT_EQ(h.bucket_value(LatencyHistogram::bucket_count() - 1), 1u);
  EXPECT_EQ(h.max_us(), 1e7);
}

}  // namespace
}  // namespace ordma
