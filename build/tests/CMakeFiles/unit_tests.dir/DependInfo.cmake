
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/unit_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/unit_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/unit_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/unit_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/unit_tests.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/db_test.cc.o.d"
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/unit_tests.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/fs_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/unit_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/msg_test.cc" "tests/CMakeFiles/unit_tests.dir/msg_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/msg_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/unit_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/nic_test.cc" "tests/CMakeFiles/unit_tests.dir/nic_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/nic_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/unit_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rpc_test.cc" "tests/CMakeFiles/unit_tests.dir/rpc_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/rpc_test.cc.o.d"
  "/root/repo/tests/sim_engine_test.cc" "tests/CMakeFiles/unit_tests.dir/sim_engine_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/sim_engine_test.cc.o.d"
  "/root/repo/tests/workload_host_test.cc" "tests/CMakeFiles/unit_tests.dir/workload_host_test.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/workload_host_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ordma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
