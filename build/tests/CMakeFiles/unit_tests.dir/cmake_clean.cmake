file(REMOVE_RECURSE
  "CMakeFiles/unit_tests.dir/cache_test.cc.o"
  "CMakeFiles/unit_tests.dir/cache_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/calibration_test.cc.o"
  "CMakeFiles/unit_tests.dir/calibration_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/common_test.cc.o"
  "CMakeFiles/unit_tests.dir/common_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/crypto_test.cc.o"
  "CMakeFiles/unit_tests.dir/crypto_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/db_test.cc.o"
  "CMakeFiles/unit_tests.dir/db_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/fs_test.cc.o"
  "CMakeFiles/unit_tests.dir/fs_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/mem_test.cc.o"
  "CMakeFiles/unit_tests.dir/mem_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/msg_test.cc.o"
  "CMakeFiles/unit_tests.dir/msg_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/net_test.cc.o"
  "CMakeFiles/unit_tests.dir/net_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/nic_test.cc.o"
  "CMakeFiles/unit_tests.dir/nic_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/property_test.cc.o"
  "CMakeFiles/unit_tests.dir/property_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/rpc_test.cc.o"
  "CMakeFiles/unit_tests.dir/rpc_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/sim_engine_test.cc.o"
  "CMakeFiles/unit_tests.dir/sim_engine_test.cc.o.d"
  "CMakeFiles/unit_tests.dir/workload_host_test.cc.o"
  "CMakeFiles/unit_tests.dir/workload_host_test.cc.o.d"
  "unit_tests"
  "unit_tests.pdb"
  "unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
