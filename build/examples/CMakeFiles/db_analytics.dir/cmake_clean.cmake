file(REMOVE_RECURSE
  "CMakeFiles/db_analytics.dir/db_analytics.cc.o"
  "CMakeFiles/db_analytics.dir/db_analytics.cc.o.d"
  "db_analytics"
  "db_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
