# Empty dependencies file for db_analytics.
# This may be replaced when dependencies are built.
