# Empty compiler generated dependencies file for streaming_read.
# This may be replaced when dependencies are built.
