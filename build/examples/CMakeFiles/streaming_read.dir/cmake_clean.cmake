file(REMOVE_RECURSE
  "CMakeFiles/streaming_read.dir/streaming_read.cc.o"
  "CMakeFiles/streaming_read.dir/streaming_read.cc.o.d"
  "streaming_read"
  "streaming_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
