# Empty dependencies file for fault_recovery.
# This may be replaced when dependencies are built.
