file(REMOVE_RECURSE
  "CMakeFiles/postmark_run.dir/postmark_run.cc.o"
  "CMakeFiles/postmark_run.dir/postmark_run.cc.o.d"
  "postmark_run"
  "postmark_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postmark_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
