# Empty compiler generated dependencies file for postmark_run.
# This may be replaced when dependencies are built.
