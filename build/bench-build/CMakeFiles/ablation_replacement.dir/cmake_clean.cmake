file(REMOVE_RECURSE
  "../bench/ablation_replacement"
  "../bench/ablation_replacement.pdb"
  "CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o"
  "CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
