# Empty dependencies file for ablation_replacement.
# This may be replaced when dependencies are built.
