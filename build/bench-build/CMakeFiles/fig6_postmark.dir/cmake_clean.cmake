file(REMOVE_RECURSE
  "../bench/fig6_postmark"
  "../bench/fig6_postmark.pdb"
  "CMakeFiles/fig6_postmark.dir/fig6_postmark.cc.o"
  "CMakeFiles/fig6_postmark.dir/fig6_postmark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
