# Empty compiler generated dependencies file for fig6_postmark.
# This may be replaced when dependencies are built.
