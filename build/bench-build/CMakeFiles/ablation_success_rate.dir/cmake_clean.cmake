file(REMOVE_RECURSE
  "../bench/ablation_success_rate"
  "../bench/ablation_success_rate.pdb"
  "CMakeFiles/ablation_success_rate.dir/ablation_success_rate.cc.o"
  "CMakeFiles/ablation_success_rate.dir/ablation_success_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
