# Empty compiler generated dependencies file for ablation_success_rate.
# This may be replaced when dependencies are built.
