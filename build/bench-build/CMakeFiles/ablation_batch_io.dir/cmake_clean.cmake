file(REMOVE_RECURSE
  "../bench/ablation_batch_io"
  "../bench/ablation_batch_io.pdb"
  "CMakeFiles/ablation_batch_io.dir/ablation_batch_io.cc.o"
  "CMakeFiles/ablation_batch_io.dir/ablation_batch_io.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
