# Empty dependencies file for ablation_batch_io.
# This may be replaced when dependencies are built.
