file(REMOVE_RECURSE
  "../bench/fig7_server_throughput"
  "../bench/fig7_server_throughput.pdb"
  "CMakeFiles/fig7_server_throughput.dir/fig7_server_throughput.cc.o"
  "CMakeFiles/fig7_server_throughput.dir/fig7_server_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_server_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
