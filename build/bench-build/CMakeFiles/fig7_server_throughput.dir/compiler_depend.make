# Empty compiler generated dependencies file for fig7_server_throughput.
# This may be replaced when dependencies are built.
