# Empty compiler generated dependencies file for ablation_read_write.
# This may be replaced when dependencies are built.
