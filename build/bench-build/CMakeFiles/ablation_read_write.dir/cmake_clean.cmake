file(REMOVE_RECURSE
  "../bench/ablation_read_write"
  "../bench/ablation_read_write.pdb"
  "CMakeFiles/ablation_read_write.dir/ablation_read_write.cc.o"
  "CMakeFiles/ablation_read_write.dir/ablation_read_write.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
