# Empty dependencies file for table2_baseline.
# This may be replaced when dependencies are built.
