file(REMOVE_RECURSE
  "../bench/table2_baseline"
  "../bench/table2_baseline.pdb"
  "CMakeFiles/table2_baseline.dir/table2_baseline.cc.o"
  "CMakeFiles/table2_baseline.dir/table2_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
