file(REMOVE_RECURSE
  "../bench/ablation_capability"
  "../bench/ablation_capability.pdb"
  "CMakeFiles/ablation_capability.dir/ablation_capability.cc.o"
  "CMakeFiles/ablation_capability.dir/ablation_capability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
