# Empty dependencies file for ablation_capability.
# This may be replaced when dependencies are built.
