file(REMOVE_RECURSE
  "../bench/fig5_berkeley_db"
  "../bench/fig5_berkeley_db.pdb"
  "CMakeFiles/fig5_berkeley_db.dir/fig5_berkeley_db.cc.o"
  "CMakeFiles/fig5_berkeley_db.dir/fig5_berkeley_db.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_berkeley_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
