# Empty compiler generated dependencies file for fig5_berkeley_db.
# This may be replaced when dependencies are built.
