# Empty dependencies file for table3_response_time.
# This may be replaced when dependencies are built.
