file(REMOVE_RECURSE
  "../bench/table3_response_time"
  "../bench/table3_response_time.pdb"
  "CMakeFiles/table3_response_time.dir/table3_response_time.cc.o"
  "CMakeFiles/table3_response_time.dir/table3_response_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
