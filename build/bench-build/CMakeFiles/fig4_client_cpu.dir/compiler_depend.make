# Empty compiler generated dependencies file for fig4_client_cpu.
# This may be replaced when dependencies are built.
