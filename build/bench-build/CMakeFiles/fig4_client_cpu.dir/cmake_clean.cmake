file(REMOVE_RECURSE
  "../bench/fig4_client_cpu"
  "../bench/fig4_client_cpu.pdb"
  "CMakeFiles/fig4_client_cpu.dir/fig4_client_cpu.cc.o"
  "CMakeFiles/fig4_client_cpu.dir/fig4_client_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_client_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
