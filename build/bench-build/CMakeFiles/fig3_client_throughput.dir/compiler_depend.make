# Empty compiler generated dependencies file for fig3_client_throughput.
# This may be replaced when dependencies are built.
