file(REMOVE_RECURSE
  "../bench/fig3_client_throughput"
  "../bench/fig3_client_throughput.pdb"
  "CMakeFiles/fig3_client_throughput.dir/fig3_client_throughput.cc.o"
  "CMakeFiles/fig3_client_throughput.dir/fig3_client_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_client_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
