# Empty dependencies file for ablation_attr_ordma.
# This may be replaced when dependencies are built.
