file(REMOVE_RECURSE
  "../bench/ablation_attr_ordma"
  "../bench/ablation_attr_ordma.pdb"
  "CMakeFiles/ablation_attr_ordma.dir/ablation_attr_ordma.cc.o"
  "CMakeFiles/ablation_attr_ordma.dir/ablation_attr_ordma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attr_ordma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
