# Empty compiler generated dependencies file for ablation_nic_tlb.
# This may be replaced when dependencies are built.
