file(REMOVE_RECURSE
  "../bench/ablation_nic_tlb"
  "../bench/ablation_nic_tlb.pdb"
  "CMakeFiles/ablation_nic_tlb.dir/ablation_nic_tlb.cc.o"
  "CMakeFiles/ablation_nic_tlb.dir/ablation_nic_tlb.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
