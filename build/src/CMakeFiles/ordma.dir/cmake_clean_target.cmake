file(REMOVE_RECURSE
  "libordma.a"
)
