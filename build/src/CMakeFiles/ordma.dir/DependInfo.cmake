
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/client_cache.cc" "src/CMakeFiles/ordma.dir/cache/client_cache.cc.o" "gcc" "src/CMakeFiles/ordma.dir/cache/client_cache.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ordma.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ordma.dir/common/stats.cc.o.d"
  "/root/repo/src/crypto/capability.cc" "src/CMakeFiles/ordma.dir/crypto/capability.cc.o" "gcc" "src/CMakeFiles/ordma.dir/crypto/capability.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "src/CMakeFiles/ordma.dir/crypto/siphash.cc.o" "gcc" "src/CMakeFiles/ordma.dir/crypto/siphash.cc.o.d"
  "/root/repo/src/db/btree.cc" "src/CMakeFiles/ordma.dir/db/btree.cc.o" "gcc" "src/CMakeFiles/ordma.dir/db/btree.cc.o.d"
  "/root/repo/src/db/join.cc" "src/CMakeFiles/ordma.dir/db/join.cc.o" "gcc" "src/CMakeFiles/ordma.dir/db/join.cc.o.d"
  "/root/repo/src/db/pager.cc" "src/CMakeFiles/ordma.dir/db/pager.cc.o" "gcc" "src/CMakeFiles/ordma.dir/db/pager.cc.o.d"
  "/root/repo/src/fs/buffer_cache.cc" "src/CMakeFiles/ordma.dir/fs/buffer_cache.cc.o" "gcc" "src/CMakeFiles/ordma.dir/fs/buffer_cache.cc.o.d"
  "/root/repo/src/fs/disk.cc" "src/CMakeFiles/ordma.dir/fs/disk.cc.o" "gcc" "src/CMakeFiles/ordma.dir/fs/disk.cc.o.d"
  "/root/repo/src/fs/server_fs.cc" "src/CMakeFiles/ordma.dir/fs/server_fs.cc.o" "gcc" "src/CMakeFiles/ordma.dir/fs/server_fs.cc.o.d"
  "/root/repo/src/host/host.cc" "src/CMakeFiles/ordma.dir/host/host.cc.o" "gcc" "src/CMakeFiles/ordma.dir/host/host.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/ordma.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/ordma.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/CMakeFiles/ordma.dir/mem/physical_memory.cc.o" "gcc" "src/CMakeFiles/ordma.dir/mem/physical_memory.cc.o.d"
  "/root/repo/src/msg/udp.cc" "src/CMakeFiles/ordma.dir/msg/udp.cc.o" "gcc" "src/CMakeFiles/ordma.dir/msg/udp.cc.o.d"
  "/root/repo/src/nas/dafs/dafs_client.cc" "src/CMakeFiles/ordma.dir/nas/dafs/dafs_client.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nas/dafs/dafs_client.cc.o.d"
  "/root/repo/src/nas/dafs/dafs_server.cc" "src/CMakeFiles/ordma.dir/nas/dafs/dafs_server.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nas/dafs/dafs_server.cc.o.d"
  "/root/repo/src/nas/nfs/nfs_client.cc" "src/CMakeFiles/ordma.dir/nas/nfs/nfs_client.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nas/nfs/nfs_client.cc.o.d"
  "/root/repo/src/nas/nfs/nfs_server.cc" "src/CMakeFiles/ordma.dir/nas/nfs/nfs_server.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nas/nfs/nfs_server.cc.o.d"
  "/root/repo/src/nas/odafs/odafs_client.cc" "src/CMakeFiles/ordma.dir/nas/odafs/odafs_client.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nas/odafs/odafs_client.cc.o.d"
  "/root/repo/src/nic/nic.cc" "src/CMakeFiles/ordma.dir/nic/nic.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nic/nic.cc.o.d"
  "/root/repo/src/nic/tpt.cc" "src/CMakeFiles/ordma.dir/nic/tpt.cc.o" "gcc" "src/CMakeFiles/ordma.dir/nic/tpt.cc.o.d"
  "/root/repo/src/rpc/rpc.cc" "src/CMakeFiles/ordma.dir/rpc/rpc.cc.o" "gcc" "src/CMakeFiles/ordma.dir/rpc/rpc.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/ordma.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/ordma.dir/sim/engine.cc.o.d"
  "/root/repo/src/workload/postmark.cc" "src/CMakeFiles/ordma.dir/workload/postmark.cc.o" "gcc" "src/CMakeFiles/ordma.dir/workload/postmark.cc.o.d"
  "/root/repo/src/workload/streaming.cc" "src/CMakeFiles/ordma.dir/workload/streaming.cc.o" "gcc" "src/CMakeFiles/ordma.dir/workload/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
