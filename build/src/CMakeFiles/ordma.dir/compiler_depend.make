# Empty compiler generated dependencies file for ordma.
# This may be replaced when dependencies are built.
