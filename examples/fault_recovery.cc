// Fault-recovery walkthrough: the heart of *optimistic* RDMA. A client
// collects remote memory references, the server's cache churns (references
// go stale), and the client's next ORDMA faults at the server NIC — a
// recoverable NIC-to-NIC exception — and recovers transparently via RPC,
// never observing reused memory.
//
//   ./build/examples/fault_recovery
#include <cstdio>

#include "core/cluster.h"
#include "obs/timeseries.h"

#include "obs/cli.h"

using namespace ordma;

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);

  core::ClusterConfig cfg;
  cfg.fs.block_size = KiB(4);
  cfg.fs.cache_blocks = 48;  // tiny server cache → heavy churn
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cc;
  cc.cache.block_size = KiB(4);
  cc.cache.data_blocks = 16;
  cc.cache.max_headers = 8192;
  cc.read_ahead_window = 1;
  auto client = cluster.make_odafs_client(0, cc);

  // Under --timeseries: the ORDMA fault/recovery storm below shows up as a
  // spike window in client0/nic/ordma_faults and client0/odafs/rpc_reads
  // (the run lasts ~520ms of simulated time; --timeseries=ts.json:5ms
  // gives a readable ~100-window grid). Scoped so the trailing gauge
  // sample happens while cluster and client are alive.
  obs::ts::RunScope ts_run(cluster.engine(), "fault_recovery");
  if (ts_run.active()) {
    cluster.export_metrics(ts_run.registry());
    cluster.export_file_client_metrics(ts_run.registry(), 0, *client);
    cluster.export_odafs_client_metrics(ts_run.registry(), 0, *client);
  }

  bool done = false;
  cluster.engine().spawn([](core::Cluster& c,
                            nas::odafs::OdafsClient& client,
                            bool& done) -> sim::Task<void> {
    co_await c.make_file("a.dat", KiB(128), true, /*seed=*/1);
    co_await c.make_file("b.dat", KiB(192), false, /*seed=*/2);
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), KiB(192));

    auto a = co_await client.open("a.dat");
    ORDMA_CHECK(a.ok());
    (void)co_await client.pread(a.value().fh, 0, buf, KiB(128));
    std::printf("pass 1 over a.dat: %llu RPC reads, %zu references"
                " collected\n",
                static_cast<unsigned long long>(client.rpc_reads()),
                client.block_cache().refs_held());

    // Server cache churn: stream b.dat through the 48-block server cache,
    // evicting a.dat's blocks. Every eviction revokes the exported segment.
    auto b = co_await client.open("b.dat");
    (void)co_await client.pread(b.value().fh, 0, buf, KiB(192));
    std::printf("streamed b.dat: server cache now holds b's blocks;"
                " a's references are stale\n");

    // The client still holds a.dat references and optimistically tries
    // ORDMA; the server NIC faults each stale access and the client falls
    // back to RPC, collecting fresh references.
    const auto faults0 = client.ordma_faults();
    auto n = co_await client.pread(a.value().fh, 0, buf, KiB(128));
    ORDMA_CHECK(n.ok());
    std::printf("pass 2 over a.dat: %llu ORDMA faults caught and recovered"
                " via RPC\n",
                static_cast<unsigned long long>(client.ordma_faults() -
                                                faults0));

    // Verify content integrity end-to-end (generator from Cluster::make_file).
    std::vector<std::byte> got(KiB(128));
    ORDMA_CHECK(h.user_as().read(buf, got).ok());
    std::uint64_t x = 1;
    bool intact = true;
    for (auto& byte : got) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      intact &= byte == static_cast<std::byte>(x >> 56);
    }
    std::printf("data integrity across the fault path: %s\n",
                intact ? "INTACT" : "CORRUPTED");
    ORDMA_CHECK(intact);
    done = true;
  }(cluster, *client, done));
  cluster.engine().run();
  return done ? 0 : 1;
}
