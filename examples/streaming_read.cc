// Streaming example: the media-server scenario from the paper's intro —
// one client streams a large file with asynchronous read-ahead, over the
// protocol and block size of your choice.
//
//   ./build/examples/streaming_read [nfs|prepost|hybrid|dafs] [block_KB]
//   e.g. ./build/examples/streaming_read dafs 64
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/cluster.h"
#include "workload/streaming.h"

#include "obs/cli.h"

using namespace ordma;

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);
  const std::string proto = argc > 1 ? argv[1] : "dafs";
  const Bytes block = KiB(argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64);
  const Bytes file_size = MiB(32);

  core::ClusterConfig cfg;
  cfg.fs.block_size = KiB(8);
  cfg.fs.cache_blocks = file_size / KiB(8) + 64;
  core::Cluster cluster(cfg);

  std::unique_ptr<core::FileClient> client;
  if (proto == "dafs") {
    cluster.start_dafs();
    client = cluster.make_dafs_client(0);
  } else {
    cluster.start_nfs();
    if (proto == "nfs") {
      client = cluster.make_nfs_client(0, block);
    } else if (proto == "prepost") {
      client = cluster.make_prepost_client(0, block);
    } else if (proto == "hybrid") {
      client = cluster.make_hybrid_client(0, block);
    } else {
      std::fprintf(stderr, "unknown protocol %s\n", proto.c_str());
      return 1;
    }
  }

  bool done = false;
  cluster.engine().spawn([](core::Cluster& c, core::FileClient& client,
                            Bytes file_size, Bytes block, bool& done)
                             -> sim::Task<void> {
    co_await c.make_file("movie.dat", file_size, /*warm=*/true);
    wl::StreamConfig sc;
    sc.block = block;
    sc.window = 8;
    auto res = co_await wl::stream_read(c.client(0), client, "movie.dat",
                                        sc);
    ORDMA_CHECK(res.ok());
    std::printf("%-16s block=%lluKB  throughput=%.0f MB/s  client CPU=%.0f%%\n",
                client.protocol_name(),
                static_cast<unsigned long long>(block / 1024),
                res.value().throughput_MBps,
                res.value().client_cpu_util * 100.0);
    done = true;
  }(cluster, *client, file_size, block, done));
  cluster.engine().run();
  return done ? 0 : 1;
}
