// Tail-latency walkthrough: why is the p99 ODAFS read slow?
//
// The mean warm-cache read is explained by Table-1 style costs (copies,
// NIC work, wire time). The *tail* is explained by contention and
// recovery: this example runs ODAFS over a lossy fabric against a server
// cache smaller than the file, so the measured pass mixes clean ORDMA
// gets with retransmitted requests, faulted-and-recovered stale
// references, disk refills and arm queueing — then lets the explainer
// (obs/explain.h) name each op's dominant cause.
//
//   ./build/examples/tail_explain [--explain=<file>] [--trace=<file>]
//                                 [--flight=<file>]
//
// --explain writes the ordma.explain.v1 "p99 explainer" document (the
// same format bench/table1_attribution --explain emits for clean runs).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cluster.h"
#include "nas/odafs/odafs_client.h"
#include "obs/cli.h"
#include "obs/explain.h"

using namespace ordma;

int main(int argc, char** argv) {
  obs::ObsSession session(argc, argv);
  obs::install(static_cast<obs::TraceRecorder*>(nullptr));

  std::string explain_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--explain=", 10) == 0) {
      explain_path = argv[i] + 10;
    }
  }

  constexpr Bytes kBlock = KiB(8);
  constexpr int kBlocks = 128;
  constexpr Bytes kFile = static_cast<Bytes>(kBlocks) * kBlock;

  core::ClusterConfig cfg;
  cfg.fs.block_size = kBlock;
  cfg.fs.cache_blocks = 64;  // half the file: re-reads churn through disk
  cfg.nic.op_timeout = usec(500);  // lost ORDMA fragments must time out
  cfg.faults = fault::FaultPlan{};  // deterministic seed 1
  cfg.faults->gm.drop = 0.02;             // lossy fabric → retransmits
  cfg.faults->disk.latency_spike = 0.05;  // occasional slow media op
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cc;
  cc.cache.block_size = kBlock;
  cc.cache.data_blocks = 32;  // client data cache misses on re-read
  cc.cache.max_headers = 4096;
  cc.dafs.completion = msg::Completion::block;
  cc.dafs.retry.timeout = usec(500);
  cc.dafs.retry.max_attempts = 8;
  auto client = cluster.make_odafs_client(0, cc);

  obs::TraceRecorder local;
  obs::TraceRecorder& rec = session.recorder() ? *session.recorder() : local;

  bool done = false;
  cluster.engine().spawn([](core::Cluster& c,
                            nas::odafs::OdafsClient& client,
                            obs::TraceRecorder& rec,
                            bool& done) -> sim::Task<void> {
    // Setup runs without faults: create the file cold, then a first pass
    // by RPC that fills the server cache and harvests references.
    c.fault_injector()->set_armed(false);
    co_await c.make_file("f", kFile, /*warm=*/false);
    auto& h = c.client(0);
    const mem::Vaddr buf = h.map_new(h.user_as(), kBlock);
    auto open = co_await client.open("f");
    ORDMA_CHECK(open.ok());
    for (int i = 0; i < kBlocks; ++i) {
      auto r = co_await client.pread(open.value().fh,
                                     static_cast<Bytes>(i) * kBlock, buf,
                                     kBlock);
      ORDMA_CHECK(r.ok() && r.value() == kBlock);
    }
    std::printf("warm-up: %llu RPC reads, %zu references harvested\n",
                static_cast<unsigned long long>(client.rpc_reads()),
                client.block_cache().refs_held());

    // Measured pass under fire, in reverse order so the reads span every
    // regime: the newest blocks hit the client cache, the middle of the
    // file is served by clean ORDMA gets, and the oldest blocks carry
    // stale references — NIC fault, RPC recovery, disk refill — all over
    // a fabric that drops frames.
    c.fault_injector()->set_armed(true);
    obs::install(&rec);
    for (int i = kBlocks - 1; i >= 0; --i) {
      auto r = co_await client.pread(open.value().fh,
                                     static_cast<Bytes>(i) * kBlock, buf,
                                     kBlock);
      ORDMA_CHECK(r.ok() && r.value() == kBlock);
    }
    obs::install(static_cast<obs::TraceRecorder*>(nullptr));
    c.fault_injector()->set_armed(false);
    done = true;
  }(cluster, *client, rec, done));
  cluster.engine().run();
  ORDMA_CHECK(done);

  std::printf("measured: %llu ORDMA reads, %llu faults recovered, "
              "%llu RPC reads\n",
              static_cast<unsigned long long>(client->ordma_reads()),
              static_cast<unsigned long long>(client->ordma_faults()),
              static_cast<unsigned long long>(client->rpc_reads()));

  auto ops = obs::explain(rec);
  for (auto it = ops.begin(); it != ops.end();) {
    if (std::string(it->second.root_name) != "op/pread") {
      it = ops.erase(it);
    } else {
      ++it;
    }
  }

  double causes[obs::kCauseCount] = {};
  for (const auto& [op, bd] : ops) {
    for (std::size_t i = 0; i < obs::kCauseCount; ++i) causes[i] += bd.us[i];
  }
  std::printf("\naggregate causes over %zu reads (us):\n", ops.size());
  for (std::size_t i = 0; i < obs::kCauseCount; ++i) {
    if (causes[i] <= 0) continue;
    std::printf("  %-15s %10.1f\n",
                obs::cause_name(static_cast<obs::Cause>(i)), causes[i]);
  }

  std::printf("\nslowest reads, dominant cause first:\n");
  for (const auto& bd : obs::slowest(ops, 5)) {
    std::printf("  op %-4llu %8.1f us  dominated by %s (%.1f us)\n",
                static_cast<unsigned long long>(bd.op), bd.total_us,
                obs::cause_name(bd.dominant()), bd[bd.dominant()]);
  }

  if (!explain_path.empty()) {
    if (!obs::write_explain_json_file(explain_path, "ODAFS 8KB lossy pread",
                                      ops)) {
      std::fprintf(stderr, "failed to write %s\n", explain_path.c_str());
      return 1;
    }
    std::printf("\nexplainer json written to %s\n", explain_path.c_str());
  }
  session.flush();
  return 0;
}
