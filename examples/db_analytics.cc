// Database example: the OLTP/analytics scenario from the paper's intro — an
// embedded key/value store (the Berkeley DB stand-in) whose database file
// lives on the NAS server. Loads a table of records, then runs the
// equality-join retrieval with asynchronous prefetch over ODAFS.
//
//   ./build/examples/db_analytics [records] [record_KB]
#include <cstdio>
#include <cstdlib>

#include "core/cluster.h"
#include "db/database.h"
#include "db/join.h"

#include "obs/cli.h"

using namespace ordma;

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);
  const std::uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
  const Bytes record_size =
      KiB(argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60);

  core::ClusterConfig cfg;
  cfg.fs.block_size = KiB(8);
  cfg.fs.cache_blocks = 8192;
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cc;
  cc.cache.block_size = KiB(8);
  cc.cache.data_blocks = 512;
  cc.cache.max_headers = 65536;
  auto client = cluster.make_odafs_client(0, cc);

  bool done = false;
  cluster.engine().spawn([](core::Cluster& c,
                            nas::odafs::OdafsClient& client,
                            std::uint64_t records, Bytes record_size,
                            bool& done) -> sim::Task<void> {
    auto db = co_await db::Database::create(c.client(0), client, "table.db",
                                            db::PagerConfig{KiB(8), 512});
    ORDMA_CHECK(db.ok());
    std::printf("loading %llu records of %llu KB...\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(record_size / 1024));
    ORDMA_CHECK(
        (co_await db::load_records(*db.value(), records, record_size)).ok());
    std::printf("B+-tree height %u, %u pages\n",
                db.value()->tree().height(), db.value()->pager().num_pages());

    auto keys = co_await db.value()->keys();
    ORDMA_CHECK(keys.ok());
    db::JoinConfig jc;
    jc.record_size = record_size;
    jc.copy_per_record = KiB(16);
    jc.window = 8;
    auto res =
        co_await db::run_join(c.client(0), *db.value(), keys.value(), jc);
    ORDMA_CHECK(res.ok());
    std::printf(
        "join retrieval: %llu records, %.1f MB in %.1f ms → %.0f MB/s\n",
        static_cast<unsigned long long>(res.value().records),
        static_cast<double>(res.value().record_bytes) / 1e6,
        res.value().elapsed.to_ms(), res.value().throughput_MBps);
    std::printf("db cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(db.value()->pager().hits()),
                static_cast<unsigned long long>(
                    db.value()->pager().misses()));
    done = true;
  }(cluster, *client, records, record_size, done));
  cluster.engine().run();
  return done ? 0 : 1;
}
