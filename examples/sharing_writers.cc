// Sharing writers: three clients over one file, watching the coherence
// protocol work. One writer commits ORDMA puts into a hot block set while
// two other clients keep reading the same blocks — every commit invalidates
// the readers' cached copies, and their next read must revalidate: re-fetch
// the block through the retained reference (client-initiated ORDMA against
// the server's now-newer cache block) or over RPC. That feedback loop is a
// revalidation storm, and it is the price of write sharing under
// invalidation-based coherence.
//
//   ./build/examples/sharing_writers
//   ./build/examples/sharing_writers --timeseries=storm.json:20us
//   python3 scripts/plot_timeseries.py storm.json -o storm.md
//
// The timeseries run exports every cluster + per-client ODAFS series, so
// the storm is visible as paired ramps: server/dafs/invalidations_sent
// against each reader's odafs/invalidates_rx and rpc_reads.
#include <cstdio>

#include "core/cluster.h"
#include "obs/cli.h"

using namespace ordma;

namespace {

constexpr std::uint64_t kBlocks = 8;  // file size, in 4 KB blocks
constexpr std::uint64_t kHot = 4;     // blocks the writer hammers
constexpr unsigned kRounds = 64;

sim::Task<void> run(core::Cluster& c,
                    std::vector<std::unique_ptr<nas::odafs::OdafsClient>>& cl,
                    bool& done) {
  const fs::Ino ino =
      co_await c.make_file("shared.dat", kBlocks * KiB(4), true);
  (void)ino;

  // Phase 1 — everyone reads everything: each client caches the blocks and
  // holds a piggybacked (write-capable, versioned) reference per block.
  std::vector<std::uint64_t> fhs;
  std::vector<mem::Vaddr> bufs;
  for (unsigned i = 0; i < cl.size(); ++i) {
    auto open = co_await cl[i]->open("shared.dat");
    ORDMA_CHECK(open.ok());
    fhs.push_back(open.value().fh);
    auto& h = c.client(i);
    bufs.push_back(h.map_new(h.user_as(), KiB(4)));
    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      ORDMA_CHECK(
          (co_await cl[i]->pread(fhs[i], b * KiB(4), bufs[i], KiB(4))).ok());
    }
  }
  std::printf("after warm-up: every client holds %zu refs, server sent "
              "%llu invalidations\n",
              cl[0]->block_cache().refs_held(),
              static_cast<unsigned long long>(
                  c.dafs_server().invalidations_sent()));

  // Phase 2 — the storm. Client 0 writes the hot blocks by ORDMA put +
  // commit; clients 1 and 2 read them right back. Each commit invalidates
  // both readers (two invalidation round trips before the commit point),
  // and each read after that is a miss that must re-fetch the block.
  for (unsigned r = 0; r < kRounds; ++r) {
    const std::uint64_t b = r % kHot;
    ORDMA_CHECK(
        (co_await cl[0]->pwrite(fhs[0], b * KiB(4), bufs[0], KiB(4))).ok());
    for (unsigned i = 1; i < cl.size(); ++i) {
      ORDMA_CHECK(
          (co_await cl[i]->pread(fhs[i], b * KiB(4), bufs[i], KiB(4))).ok());
    }
  }

  // Phase 3 — quiesce: with the writer silent, reads settle back into the
  // cache (and ORDMA re-fetches through the refreshed references).
  for (unsigned r = 0; r < kRounds / 4; ++r) {
    for (unsigned i = 1; i < cl.size(); ++i) {
      ORDMA_CHECK((co_await cl[i]->pread(fhs[i], (r % kHot) * KiB(4),
                                         bufs[i], KiB(4)))
                      .ok());
    }
  }
  done = true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs_session(argc, argv);

  core::ClusterConfig cfg;
  cfg.num_clients = 3;
  cfg.fs.block_size = KiB(4);
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true,
                      .writable_refs = true,
                      .coherence = true});

  std::vector<std::unique_ptr<nas::odafs::OdafsClient>> clients;
  for (unsigned i = 0; i < cfg.num_clients; ++i) {
    nas::odafs::OdafsClientConfig cc;
    cc.cache.block_size = KiB(4);
    cc.cache.data_blocks = 64;
    cc.cache.max_headers = 4096;
    cc.use_ordma = true;
    cc.write_policy = nas::odafs::WritePolicy::put_through;
    clients.push_back(cluster.make_odafs_client(i, cc));
  }

  bool done = false;
  {
    obs::ts::RunScope ts_run(cluster.engine(), "sharing_writers");
    if (ts_run.active()) {
      cluster.export_metrics(ts_run.registry());
      for (unsigned i = 0; i < cfg.num_clients; ++i) {
        cluster.export_file_client_metrics(ts_run.registry(), i, *clients[i]);
        cluster.export_odafs_client_metrics(ts_run.registry(), i, *clients[i]);
      }
    }
    cluster.engine().spawn(run(cluster, clients, done));
    cluster.engine().run();
  }
  ORDMA_CHECK(done);

  std::printf("\n%-8s %12s %12s %14s %12s %10s %12s\n", "client",
              "puts_issued", "put_commits", "invalidates_rx", "inval_drops",
              "rpc_reads", "ordma_reads");
  for (unsigned i = 0; i < cfg.num_clients; ++i) {
    std::printf("%-8u %12llu %12llu %14llu %12llu %10llu %12llu\n", i,
                static_cast<unsigned long long>(clients[i]->puts_issued()),
                static_cast<unsigned long long>(clients[i]->put_commits()),
                static_cast<unsigned long long>(clients[i]->invalidates_rx()),
                static_cast<unsigned long long>(clients[i]->inval_drops()),
                static_cast<unsigned long long>(clients[i]->rpc_reads()),
                static_cast<unsigned long long>(clients[i]->ordma_reads()));
  }
  std::printf("\nserver: put_commits=%llu invalidations_sent=%llu "
              "nic puts_served=%llu\n",
              static_cast<unsigned long long>(
                  cluster.dafs_server().put_commits()),
              static_cast<unsigned long long>(
                  cluster.dafs_server().invalidations_sent()),
              static_cast<unsigned long long>(
                  cluster.server().nic().puts_served()));
  std::printf("simulated time elapsed: %.1f us\n",
              cluster.engine().now().to_us());
  obs_session.flush();
  return 0;
}
