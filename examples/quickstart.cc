// Quickstart: bring up a simulated two-node cluster, serve a directory tree
// over ODAFS, and do file I/O through the client — watching the optimistic
// RDMA machinery work.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --trace=quickstart.json to record a Chrome trace of every span the
// I/O below touches (open in https://ui.perfetto.dev), and
// --metrics=metrics.json for a counter/gauge snapshot of the whole cluster.
#include <cstdio>

#include "core/cluster.h"
#include "obs/cli.h"

using namespace ordma;

namespace {

sim::Task<void> run(core::Cluster& c, nas::odafs::OdafsClient& client,
                    bool& done) {
  auto& h = c.client(0);

  // 1. Create a file through the protocol and write into it.
  auto created = co_await client.create("hello.txt");
  ORDMA_CHECK(created.ok());
  const char msg[] = "hello, direct-access network attached storage!";
  const mem::Vaddr wbuf = h.map_new(h.user_as(), sizeof msg);
  ORDMA_CHECK(h.user_as()
                  .write(wbuf, std::span<const std::byte>(
                                   reinterpret_cast<const std::byte*>(msg),
                                   sizeof msg))
                  .ok());
  auto n = co_await client.pwrite(created.value().fh, 0, wbuf, sizeof msg);
  ORDMA_CHECK(n.ok());
  std::printf("wrote %llu bytes via %s\n",
              static_cast<unsigned long long>(n.value()),
              client.protocol_name());

  // 2. First read: the client cache misses and fetches over RPC; the server
  //    piggybacks a remote memory reference to its cache block.
  const mem::Vaddr rbuf = h.map_new(h.user_as(), sizeof msg);
  (void)co_await client.pread(created.value().fh, 0, rbuf, sizeof msg);
  std::printf("after first read:  rpc_reads=%llu ordma_reads=%llu "
              "refs_held=%zu\n",
              static_cast<unsigned long long>(client.rpc_reads()),
              static_cast<unsigned long long>(client.ordma_reads()),
              client.block_cache().refs_held());

  // 3. Push the block out of the (tiny) client data cache, then read again:
  //    the retained reference lets the client fetch it with client-initiated
  //    RDMA — zero server CPU.
  auto other = co_await client.create("filler.dat");
  ORDMA_CHECK(other.ok());
  const mem::Vaddr filler = h.map_new(h.user_as(), KiB(64));
  (void)co_await client.pwrite(other.value().fh, 0, filler, KiB(64));
  (void)co_await client.pread(other.value().fh, 0, filler, KiB(64));

  const auto server_cpu_before = c.server().sample_cpu();
  auto again = co_await client.pread(created.value().fh, 0, rbuf, sizeof msg);
  ORDMA_CHECK(again.ok());
  const auto server_cpu_after = c.server().sample_cpu();

  std::vector<std::byte> got(sizeof msg);
  ORDMA_CHECK(h.user_as().read(rbuf, got).ok());
  std::printf("after second read: rpc_reads=%llu ordma_reads=%llu  "
              "(server CPU used: %lld ns)\n",
              static_cast<unsigned long long>(client.rpc_reads()),
              static_cast<unsigned long long>(client.ordma_reads()),
              static_cast<long long>(
                  (server_cpu_after.busy - server_cpu_before.busy).ns));
  std::printf("read back: \"%s\"\n",
              reinterpret_cast<const char*>(got.data()));
  done = true;
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsSession obs_session(argc, argv);

  // A cluster: one server (file system + DAFS/ODAFS service), one client
  // host, a 2 Gb/s fabric — all simulated, all deterministic.
  core::ClusterConfig cfg;
  cfg.fs.block_size = KiB(4);
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true});  // ODAFS mode

  nas::odafs::OdafsClientConfig cc;
  cc.cache.block_size = KiB(4);
  cc.cache.data_blocks = 8;  // tiny on purpose: force re-fetches
  cc.cache.max_headers = 4096;
  cc.use_ordma = true;
  auto client = cluster.make_odafs_client(0, cc);

  bool done = false;
  {
    // Under --timeseries: per-interval deltas of every cluster series for
    // this run (the whole quickstart lasts ~a millisecond of simulated
    // time, so pass a sub-millisecond interval, e.g.
    // --timeseries=ts.json:50us). Scoped so the final gauge sample runs
    // while cluster and client are alive.
    obs::ts::RunScope ts_run(cluster.engine(), "quickstart");
    if (ts_run.active()) {
      cluster.export_metrics(ts_run.registry());
      cluster.export_file_client_metrics(ts_run.registry(), 0, *client);
      cluster.export_odafs_client_metrics(ts_run.registry(), 0, *client);
    }
    cluster.engine().spawn(run(cluster, *client, done));
    cluster.engine().run();
  }
  ORDMA_CHECK(done);

  std::printf("\nsimulated time elapsed: %.1f us\n",
              cluster.engine().now().to_us());
  // Flush while the cluster (whose components back the gauges) is alive.
  obs_session.flush();
  return 0;
}
