// PostMark example: the small-file/transactional scenario (mail spools,
// news servers) the paper motivates for ORDMA. Runs the *full* PostMark
// benchmark — creates, deletes, reads and appends — over DAFS and ODAFS
// and prints the comparison. (The paper's Fig. 6 uses the read-only
// configuration; see bench/fig6_postmark.)
//
//   ./build/examples/postmark_run [transactions]
#include <cstdio>
#include <cstdlib>

#include "core/cluster.h"
#include "workload/postmark.h"

#include "obs/cli.h"

using namespace ordma;

namespace {

wl::PostMarkResult run_once(bool use_ordma, std::uint64_t txns) {
  core::ClusterConfig cfg;
  cfg.fs.block_size = KiB(4);
  core::Cluster cluster(cfg);
  cluster.start_dafs({.piggyback_refs = true});

  nas::odafs::OdafsClientConfig cc;
  cc.cache.block_size = KiB(4);
  cc.cache.data_blocks = 128;
  cc.cache.max_headers = 8192;
  cc.use_ordma = use_ordma;
  cc.dafs.completion = msg::Completion::block;
  cc.read_ahead_window = 1;
  auto client = cluster.make_odafs_client(0, cc);

  wl::PostMarkConfig pm;
  pm.num_files = 256;
  pm.min_size = KiB(1);
  pm.max_size = KiB(7);
  pm.transactions = txns;
  pm.read_only = false;  // the full benchmark
  wl::PostMark postmark(cluster.client(0), *client, pm);

  wl::PostMarkResult result;
  bool done = false;
  cluster.engine().spawn([](wl::PostMark& postmark,
                            wl::PostMarkResult& result,
                            bool& done) -> sim::Task<void> {
    ORDMA_CHECK((co_await postmark.setup()).ok());
    ORDMA_CHECK((co_await postmark.warmup()).ok());
    auto res = co_await postmark.run();
    ORDMA_CHECK(res.ok());
    result = res.value();
    done = true;
  }(postmark, result, done));
  cluster.engine().run();
  ORDMA_CHECK(done);
  return result;
}

void print(const char* name, const wl::PostMarkResult& r) {
  std::printf(
      "%-6s %8.0f txns/s  (%llu reads, %llu appends, %llu creates,"
      " %llu deletes; %.1f MB read, %.1f MB written)\n",
      name, r.txns_per_sec, static_cast<unsigned long long>(r.reads),
      static_cast<unsigned long long>(r.appends),
      static_cast<unsigned long long>(r.creates),
      static_cast<unsigned long long>(r.deletes),
      static_cast<double>(r.bytes_read) / 1e6,
      static_cast<double>(r.bytes_written) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  ordma::obs::ObsSession obs_session(argc, argv);
  const std::uint64_t txns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  std::printf("PostMark (full benchmark, %llu transactions)\n\n",
              static_cast<unsigned long long>(txns));
  const auto dafs = run_once(false, txns);
  const auto odafs = run_once(true, txns);
  print("DAFS", dafs);
  print("ODAFS", odafs);
  std::printf("\nODAFS speedup: %+.0f%%\n",
              (odafs.txns_per_sec - dafs.txns_per_sec) / dafs.txns_per_sec *
                  100.0);
  return 0;
}
