#!/usr/bin/env python3
"""Validate an ordma.timeseries.v1 file produced by --timeseries=<file>
(src/obs/timeseries.h).

Input is a JSON array of run documents (or a single document). Checked per
run:
  * schema is "ordma.timeseries.v1" and interval_ns > 0;
  * len(t_ns) == windows, and t_ns is strictly increasing on a constant
    grid: t_ns[i+1] - t_ns[i] == interval_ns exactly (entries are window
    *start* times, so the grid holds even when the final window is the
    partial one closed at end_ns);
  * start_ns == t_ns[0] and end_ns >= the last window start (the trailing
    partial window never ends before it begins);
  * every series value array has exactly `windows` entries (histograms:
    all four of count/sum_us/p50_us/p99_us do);
  * kind is one of delta / sample / hist;
  * delta-kind series are non-negative in every window (counters and
    cumulative gauges are monotone, so their per-window differences are
    rates and can never go negative);
  * histogram count/sum_us are non-negative and every value is finite;
  * the phase report's key series exists, segment labels belong to the
    known vocabulary, segments tile [0, windows) in order (each begins
    where the previous ended), and segment begin_ns/end_ns stay inside
    [start_ns, end_ns].

With --expect-runs N, additionally require at least N run documents (an
empty array "validates" trivially otherwise; binaries without a RunScope
produce one).

Usage: python3 scripts/validate_timeseries.py [--expect-runs N] <ts.json>
Exit status 0 iff all checks pass. Stdlib only.
"""
import json
import math
import sys

PHASES = {"warmup", "steady", "saturation", "degraded"}
KINDS = {"delta", "sample", "hist"}


def fail(msg):
    print(f"validate_timeseries: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_values(run, name, col, values, windows, nonneg):
    if not isinstance(values, list):
        fail(f"{run}: series '{name}' {col} is not an array")
    if len(values) != windows:
        fail(f"{run}: series '{name}' {col} has {len(values)} values, "
             f"want windows={windows}")
    for i, v in enumerate(values):
        if v is None or not isinstance(v, (int, float)):
            fail(f"{run}: series '{name}' {col}[{i}] is not a finite number")
        if not math.isfinite(v):
            fail(f"{run}: series '{name}' {col}[{i}] = {v} is not finite")
        if nonneg and v < 0:
            fail(f"{run}: series '{name}' {col}[{i}] = {v} is negative")


def check_run(doc, idx):
    run = doc.get("run", f"<run {idx}>")
    if doc.get("schema") != "ordma.timeseries.v1":
        fail(f"{run}: schema is {doc.get('schema')!r}, "
             "want 'ordma.timeseries.v1'")
    interval = doc.get("interval_ns")
    if not isinstance(interval, int) or interval <= 0:
        fail(f"{run}: interval_ns {interval!r} is not a positive integer")
    windows = doc.get("windows")
    if not isinstance(windows, int) or windows < 1:
        fail(f"{run}: windows {windows!r} is not a positive integer")
    dropped = doc.get("dropped_windows", 0)
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"{run}: dropped_windows {dropped!r} is not a non-negative "
             "integer")

    t = doc.get("t_ns")
    if not isinstance(t, list) or len(t) != windows:
        fail(f"{run}: t_ns has {len(t) if isinstance(t, list) else '?'} "
             f"entries, want windows={windows}")
    for i in range(1, windows):
        if t[i] - t[i - 1] != interval:
            fail(f"{run}: t_ns[{i}] - t_ns[{i - 1}] = {t[i] - t[i - 1]}, "
                 f"want constant interval {interval}")
    if doc.get("start_ns") != t[0]:
        fail(f"{run}: start_ns {doc.get('start_ns')} != t_ns[0] {t[0]}")
    end = doc.get("end_ns")
    if not isinstance(end, int) or end < t[-1]:
        fail(f"{run}: end_ns {end!r} precedes the last window start {t[-1]}")

    series = doc.get("series")
    if not isinstance(series, dict) or not series:
        fail(f"{run}: series is missing or empty")
    for name, s in series.items():
        kind = s.get("kind")
        if kind not in KINDS:
            fail(f"{run}: series '{name}' kind {kind!r} not in {KINDS}")
        if kind == "hist":
            check_values(run, name, "count", s.get("count"), windows, True)
            check_values(run, name, "sum_us", s.get("sum_us"), windows, True)
            check_values(run, name, "p50_us", s.get("p50_us"), windows, True)
            check_values(run, name, "p99_us", s.get("p99_us"), windows, True)
        else:
            check_values(run, name, "v", s.get("v"), windows,
                         nonneg=(kind == "delta"))

    phases = doc.get("phases")
    if not isinstance(phases, dict):
        fail(f"{run}: phases report missing")
    key = phases.get("series")
    if key not in series:
        fail(f"{run}: phase key series {key!r} not among the run's series")
    segs = phases.get("segments")
    if not isinstance(segs, list) or not segs:
        fail(f"{run}: phases.segments missing or empty")
    prev_end = 0
    for i, seg in enumerate(segs):
        if seg.get("label") not in PHASES:
            fail(f"{run}: segment {i} label {seg.get('label')!r} "
                 f"not in {PHASES}")
        b, e = seg.get("begin"), seg.get("end")
        if b != prev_end:
            fail(f"{run}: segment {i} begins at {b}, want {prev_end} "
                 "(segments must tile the run)")
        if not isinstance(e, int) or e <= b:
            fail(f"{run}: segment {i} [{b}, {e}) is empty or malformed")
        prev_end = e
        if seg.get("begin_ns", t[0]) < t[0] or seg.get("end_ns", end) > end:
            fail(f"{run}: segment {i} time range escapes "
                 f"[{t[0]}, {end}]")
        m = seg.get("mean")
        if m is not None and not math.isfinite(m):
            fail(f"{run}: segment {i} mean {m} is not finite")
    if prev_end != windows:
        fail(f"{run}: segments end at {prev_end}, want windows={windows}")
    return run


def main():
    args = sys.argv[1:]
    expect_runs = 0
    if args and args[0] == "--expect-runs":
        if len(args) < 3:
            fail("--expect-runs needs a count and a file")
        expect_runs = int(args[1])
        args = args[2:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(args[0]) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")
    docs = data if isinstance(data, list) else [data]
    if len(docs) < expect_runs:
        fail(f"{len(docs)} run documents, want at least {expect_runs}")
    names = [check_run(doc, i) for i, doc in enumerate(docs)]
    print(f"validate_timeseries: OK: {len(docs)} run(s)"
          + (f" ({', '.join(names[:6])}{', ...' if len(names) > 6 else ''})"
             if names else ""))


if __name__ == "__main__":
    main()
