#!/usr/bin/env python3
"""Validate a Chrome trace produced by --trace=<file> (src/obs/trace.h).

Checks, beyond "it parses":
  * every slice sits on a named track (thread_name / process_name metadata);
  * slices on one track are disjoint (the recorder's overflow-lane
    invariant: a lane never holds overlapping slices);
  * each traced op (args.op > 0) has exactly one root slice (name "op/...")
    and every other slice of that op starts at or after the root starts —
    i.e. the per-I/O span tree is causally well-formed. (Slices may end
    after the root closes: asynchronous work such as read-ahead is charged
    to the op that issued it; the attributor clamps these to the root
    window. Spills are counted and reported, not errors.);
  * with --expect-roots, at least one op root exists (an empty trace
    "validates" trivially otherwise). Traces from binaries that drive
    sub-op primitives directly (e.g. ablation_capability's fetch_block
    loop) are all-ambient and carry no roots, so this is opt-in;
  * flow chains (s/t/f) have >= 2 points, in nondecreasing time order.

With --flight, the input is instead a flight-recorder postmortem dump
(src/obs/flight.h, "ordma-flight-dump v1 ..."). Checked per ring:
  * the header line parses and recorded/capacity/dropped are consistent
    (dropped == max(0, recorded - capacity));
  * the number of dumped records equals min(recorded, capacity);
  * sequence numbers are contiguous starting at `dropped`;
  * timestamps are nondecreasing (simulated time never runs backwards);
  * every event name belongs to the known vocabulary.

Usage: python3 scripts/validate_trace.py [--expect-roots] <trace.json>
       python3 scripts/validate_trace.py --flight <dump.txt>
Exit status 0 iff all checks pass. Stdlib only.
"""
import json
import re
import sys

EPS = 1e-6  # us; slack for ns -> us float rounding


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# Event vocabulary of src/obs/flight.h (ev_name()).
FLIGHT_EVENTS = {
    "none", "rpc_call", "rpc_reply", "rpc_retransmit", "rpc_timeout",
    "rpc_cksum_drop", "rpc_giveup", "srv_serve", "srv_dup_replay",
    "srv_dup_drop", "srv_cksum_drop", "nic_doorbell", "nic_dma",
    "nic_tlb_miss", "nic_ordma_fault", "nic_ordma_timeout", "nic_cap_revoke",
    "cache_hit", "cache_miss", "disk_read", "disk_write", "fault_drop",
    "fault_corrupt", "fault_duplicate", "fault_delay", "fault_stall",
    "fault_cap_revoke", "fault_tlb_inval", "fault_disk_error",
    "fault_disk_spike", "op_giveup", "sample_keep", "sample_drop",
    "slo_trip", "slo_clear",
}

RING_RE = re.compile(
    r"^ring (?P<name>\S+) recorded=(?P<recorded>\d+) "
    r"capacity=(?P<capacity>\d+) dropped=(?P<dropped>\d+)$")
RECORD_RE = re.compile(
    r"^(?P<seq>\d+) (?P<t>-?\d+) (?P<ev>\S+) "
    r"a=(?P<a>\d+) b=(?P<b>\d+) aux=(?P<aux>\d+)$")


def validate_flight(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot load {path}: {e}")
    if not lines or not lines[0].startswith("ordma-flight-dump v1 reason="):
        fail("missing 'ordma-flight-dump v1 reason=...' header")
    if not lines[-1] == "end":
        fail("dump does not finish with 'end'")

    rings = 0
    records = 0
    ring = None       # current ring header match
    expect_seq = None
    kept = 0
    last_t = None

    def close_ring():
        if ring is None:
            return
        want = min(int(ring["recorded"]), int(ring["capacity"]))
        if kept != want:
            fail(f"ring {ring['name']!r}: dumped {kept} records, header "
                 f"implies min(recorded, capacity) = {want}")

    for i, line in enumerate(lines[1:-1], start=2):
        m = RING_RE.match(line)
        if m:
            close_ring()
            ring, rings = m, rings + 1
            recorded, capacity = int(m["recorded"]), int(m["capacity"])
            dropped = int(m["dropped"])
            if capacity < 1 or capacity & (capacity - 1):
                fail(f"ring {m['name']!r}: capacity {capacity} "
                     "is not a power of two")
            if dropped != max(0, recorded - capacity):
                fail(f"ring {m['name']!r}: dropped={dropped} inconsistent "
                     f"with recorded={recorded} capacity={capacity}")
            expect_seq, kept, last_t = dropped, 0, None
            continue
        m = RECORD_RE.match(line)
        if not m:
            fail(f"line {i}: unparseable: {line!r}")
        if ring is None:
            fail(f"line {i}: record before any ring header")
        if int(m["seq"]) != expect_seq:
            fail(f"ring {ring['name']!r}: seq {m['seq']} "
                 f"(expected {expect_seq})")
        t = int(m["t"])
        if last_t is not None and t < last_t:
            fail(f"ring {ring['name']!r}: timestamp {t} after {last_t} — "
                 "simulated time ran backwards")
        if m["ev"] not in FLIGHT_EVENTS:
            fail(f"ring {ring['name']!r}: unknown event {m['ev']!r}")
        expect_seq += 1
        kept += 1
        records += 1
        last_t = t
    close_ring()

    print(f"validate_trace: OK — flight dump with {rings} rings, "
          f"{records} records")


def main():
    args = sys.argv[1:]
    expect_roots = "--expect-roots" in args
    flight = "--flight" in args
    args = [a for a in args if a not in ("--expect-roots", "--flight")]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if flight:
        validate_flight(args[0])
        return
    try:
        with open(args[0]) as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")
    if not isinstance(events, list):
        fail("top-level JSON is not an array of events")

    processes = {}  # pid -> name
    tracks = {}     # (pid, tid) -> name
    slices = []     # (pid, tid, ts, dur, name, op)
    flows = {}      # id -> [(ph, ts)]

    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            if e["name"] == "process_name":
                processes[e["pid"]] = e["args"]["name"]
            elif e["name"] == "thread_name":
                tracks[(e["pid"], e["tid"])] = e["args"]["name"]
        elif ph == "X":
            ts, dur = e["ts"], e["dur"]
            if dur < 0 or ts < 0:
                fail(f"event {i} ({e['name']}): negative ts/dur")
            slices.append((e["pid"], e["tid"], ts, dur, e["name"],
                           e.get("args", {}).get("op", 0)))
        elif ph in ("s", "t", "f"):
            flows.setdefault(e["id"], []).append((ph, e["ts"]))
        else:
            fail(f"event {i}: unknown phase {ph!r}")

    # Every slice on a named track inside a named process.
    for pid, tid, ts, dur, name, op in slices:
        if pid not in processes:
            fail(f"slice {name!r}: pid {pid} has no process_name metadata")
        if (pid, tid) not in tracks:
            fail(f"slice {name!r}: (pid {pid}, tid {tid}) has no thread_name")

    # Per-track disjointness.
    by_track = {}
    for pid, tid, ts, dur, name, op in slices:
        by_track.setdefault((pid, tid), []).append((ts, dur, name))
    for key, lst in by_track.items():
        lst.sort()
        for (a_ts, a_dur, a_name), (b_ts, _, b_name) in zip(lst, lst[1:]):
            if b_ts < a_ts + a_dur - EPS:
                fail(f"track {tracks[key]!r}: slices {a_name!r} and "
                     f"{b_name!r} overlap ({a_ts}+{a_dur} > {b_ts})")

    # Per-op span trees.
    roots = {}  # op -> (ts, dur, name)
    for pid, tid, ts, dur, name, op in slices:
        if name.startswith("op/"):
            if op == 0:
                fail(f"root slice {name!r} has no op id")
            if op in roots:
                fail(f"op {op}: more than one root slice")
            roots[op] = (ts, dur, name)
    if expect_roots and not roots:
        fail("no op roots (name 'op/...') found — nothing was attributed")
    spills = 0
    for pid, tid, ts, dur, name, op in slices:
        if op == 0 or name.startswith("op/"):
            continue
        if op not in roots:
            fail(f"slice {name!r} references op {op} which has no root")
        r_ts, r_dur, r_name = roots[op]
        if ts < r_ts - EPS:
            fail(f"slice {name!r} at {ts} starts before its root "
                 f"{r_name!r} at {r_ts} (op {op}) — acausal attribution")
        if ts + dur > r_ts + r_dur + EPS:
            spills += 1  # async work (e.g. read-ahead) outliving its op

    # Flow chains.
    for fid, pts in flows.items():
        if len(pts) < 2:
            fail(f"flow {fid}: single-point chain (should have been dropped)")
        phs = [p for p, _ in pts]
        if phs[0] != "s" or phs[-1] != "f" or any(p != "t" for p in phs[1:-1]):
            fail(f"flow {fid}: bad phase sequence {phs}")
        tss = [t for _, t in pts]
        if tss != sorted(tss):
            fail(f"flow {fid}: timestamps not nondecreasing")

    print(f"validate_trace: OK — {len(slices)} slices on {len(by_track)} "
          f"tracks, {len(roots)} op roots, {len(flows)} flows, "
          f"{spills} async spills past root end")


if __name__ == "__main__":
    main()
