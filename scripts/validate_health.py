#!/usr/bin/env python3
"""Validate an ordma.health.v1 document produced by --health=<file>
(src/obs/health.h).

The file is a JSON array of per-run health documents (one per RunScope /
sweep cell). Checked per document, beyond "it parses":
  * schema is "ordma.health.v1" and the run label is a nonempty string;
  * windows is a nonnegative integer;
  * every SLO instance has a name, a known kind ("p99_latency" or
    "ratio"), a series path, numeric threshold/burn rates, and
    evaluated <= windows (an instance cannot be judged more often than
    windows closed);
  * bad_windows <= evaluated (a window must be evaluated to be bad);
  * an uncalibrated instance (still collecting its auto-threshold
    baseline) reports threshold 0 and no bad windows blamed on it;
  * trips reference a declared SLO name, carry window ranges with
    begin < end <= windows, and peak_burn > 0;
  * healthy is true iff the trips array is empty (the summary bit and
    the evidence must agree);
  * with --expect-healthy / --expect-trips, assert fleet-wide health or
    at least one trip across all documents (opt-in, for CI smoke runs).

Usage: python3 scripts/validate_health.py [--expect-healthy|--expect-trips] <health.json>
Exit status 0 iff all checks pass. Stdlib only.
"""
import json
import sys

KINDS = {"p99_latency", "ratio"}


def fail(msg):
    print(f"validate_health: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_doc(doc, i):
    where = f"doc[{i}]"
    if not isinstance(doc, dict):
        fail(f"{where}: not an object")
    if doc.get("schema") != "ordma.health.v1":
        fail(f"{where}: schema is {doc.get('schema')!r}")
    run = doc.get("run")
    if not isinstance(run, str) or not run:
        fail(f"{where}: run label missing or empty")
    where = f"doc[{i}] ({run})"
    windows = doc.get("windows")
    if not isinstance(windows, int) or windows < 0:
        fail(f"{where}: windows is {windows!r}")
    slos = doc.get("slos")
    trips = doc.get("trips")
    if not isinstance(slos, list) or not isinstance(trips, list):
        fail(f"{where}: slos/trips missing")

    names = set()
    for s in slos:
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: SLO without a name")
        names.add(name)
        if s.get("kind") not in KINDS:
            fail(f"{where}: SLO {name}: unknown kind {s.get('kind')!r}")
        if not isinstance(s.get("series"), str) or not s["series"]:
            fail(f"{where}: SLO {name}: missing series")
        for k in ("threshold", "burn_fast", "burn_slow"):
            if not is_num(s.get(k)):
                fail(f"{where}: SLO {name}: {k} is {s.get(k)!r}")
        evaluated = s.get("evaluated")
        bad = s.get("bad_windows")
        if not isinstance(evaluated, int) or not isinstance(bad, int):
            fail(f"{where}: SLO {name}: evaluated/bad_windows not ints")
        if evaluated > windows:
            fail(f"{where}: SLO {name}: evaluated {evaluated} > "
                 f"windows {windows}")
        if bad > evaluated:
            fail(f"{where}: SLO {name}: bad_windows {bad} > "
                 f"evaluated {evaluated}")
        if s.get("calibrated") is False:
            if s["threshold"] != 0:
                fail(f"{where}: SLO {name}: uncalibrated but "
                     f"threshold {s['threshold']}")
            if bad != 0:
                fail(f"{where}: SLO {name}: uncalibrated but "
                     f"{bad} bad windows")

    for t in trips:
        slo = t.get("slo")
        if slo not in names:
            fail(f"{where}: trip references unknown SLO {slo!r}")
        b, e = t.get("begin"), t.get("end")
        if not isinstance(b, int) or not isinstance(e, int):
            fail(f"{where}: trip {slo}: begin/end not ints")
        if not (0 <= b < e <= windows):
            fail(f"{where}: trip {slo}: window range [{b}, {e}) outside "
                 f"[0, {windows})")
        if not is_num(t.get("peak_burn")) or t["peak_burn"] <= 0:
            fail(f"{where}: trip {slo}: peak_burn {t.get('peak_burn')!r}")

    healthy = doc.get("healthy")
    if healthy is not (len(trips) == 0):
        fail(f"{where}: healthy={healthy!r} but {len(trips)} trips")
    return len(trips)


def main(argv):
    expect_healthy = "--expect-healthy" in argv
    expect_trips = "--expect-trips" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if len(paths) != 1 or (expect_healthy and expect_trips):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(paths[0]) as f:
            docs = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {paths[0]}: {e}")
    if not isinstance(docs, list):
        fail("top level is not an array of health documents")
    if not docs:
        fail("no health documents (empty array)")
    trips = sum(check_doc(d, i) for i, d in enumerate(docs))
    if expect_healthy and trips:
        fail(f"--expect-healthy but {trips} trip(s) recorded")
    if expect_trips and not trips:
        fail("--expect-trips but every document is healthy")
    print(f"validate_health: OK: {len(docs)} run(s), {trips} trip(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
