#!/usr/bin/env python3
"""Compare an ordma.bench.v1 run against a committed baseline.

Usage:
    bench_compare.py BASELINE CURRENT [CURRENT2 ...] [--update]
    bench_compare.py BASELINE --timeseries TS.json [CURRENT ...] [--update]

CURRENT files are ordma.bench.v1 documents (see bench/bench_json.h). For
every metric present in the baseline, the current value must not move past
the metric's relative tolerance in the losing direction (lower for
higher_is_better metrics, higher otherwise). Improvements never fail,
however large. Metrics new in the current run are reported but don't fail;
metrics missing from the current run do fail (a silently dropped benchmark
is how regressions hide).

A baseline metric may instead carry a "source" describing how to derive its
current value from an ordma.timeseries.v1 file (--timeseries), gating on
summary statistics of a run's windowed series — e.g. the steady-phase mean
server-CPU utilisation of fig7's dafs.4KB cell:

    "source": {"type": "timeseries", "run": "dafs.4KB",
               "series": "server/cpu/busy_us", "phase": "steady",
               "stat": "mean_util"}

`phase` selects the windows of the named run-phase segments (omit it for
the whole run); `stat` is one of:
    mean            mean per-window value
    mean_rate_per_s sum over the windows / their simulated-time span
    mean_util       for cumulative busy-time series in us: fraction of the
                    windows' span spent busy
Since the simulation is deterministic, derived metrics support tight
tolerances — simulated time does not wobble with CI load.

More than one CURRENT file runs the gate best-of-N: per metric, the best
value across the runs (highest for higher_is_better, lowest otherwise) is
compared. Repeated runs de-noise wall-clock metrics on shared CI runners
without loosening the tolerance band itself.

Tolerances live in the baseline: each metric carries the noise band chosen
for what it measures (tight for deterministic simulated-time results, loose
for wall-clock rates on shared CI runners).

--update rewrites BASELINE's values from CURRENT (keeping the baseline's
tolerances and direction flags) after printing the comparison — for
refreshing a baseline once an intended perf change lands.

Exit status: 0 = within tolerance, 1 = regression or structural problem.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "ordma.bench.v1":
        sys.exit(f"{path}: not an ordma.bench.v1 document "
                 f"(schema={doc.get('schema')!r})")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"{path}: no metrics")
    for name, m in metrics.items():
        for field in ("value", "unit", "higher_is_better", "tolerance"):
            if field not in m:
                sys.exit(f"{path}: metric {name!r} missing {field!r}")
        if m["tolerance"] < 0:
            sys.exit(f"{path}: metric {name!r} has negative tolerance")
    return doc


def load_timeseries(path):
    with open(path) as f:
        data = json.load(f)
    docs = data if isinstance(data, list) else [data]
    for doc in docs:
        if doc.get("schema") != "ordma.timeseries.v1":
            sys.exit(f"{path}: not ordma.timeseries.v1 "
                     f"(schema={doc.get('schema')!r})")
    return docs


def derive_from_timeseries(ts_docs, name, src):
    """Compute one baseline metric's current value from a timeseries file."""
    run, series, stat = src.get("run"), src.get("series"), src.get("stat")
    doc = next((d for d in ts_docs if d.get("run") == run), None)
    if doc is None:
        sys.exit(f"metric {name!r}: run {run!r} not in the timeseries file "
                 f"(have: {', '.join(d.get('run', '?') for d in ts_docs)})")
    s = doc["series"].get(series)
    if s is None:
        sys.exit(f"metric {name!r}: series {series!r} not in run {run!r}")
    values = s["count"] if s["kind"] == "hist" else s["v"]
    phase = src.get("phase")
    if phase:
        idxs = [i for g in doc["phases"]["segments"] if g["label"] == phase
                for i in range(g["begin"], g["end"])]
        if not idxs:
            sys.exit(f"metric {name!r}: run {run!r} has no {phase!r} "
                     "phase segment")
    else:
        idxs = range(doc["windows"])
    vals = [values[i] for i in idxs]
    span_ns = len(vals) * doc["interval_ns"]
    if stat == "mean":
        return sum(vals) / len(vals)
    if stat == "mean_rate_per_s":
        return sum(vals) / (span_ns / 1e9)
    if stat == "mean_util":  # cumulative busy-time series in us
        return sum(vals) * 1e3 / span_ns
    sys.exit(f"metric {name!r}: unknown stat {stat!r} "
             "(want mean | mean_rate_per_s | mean_util)")


def merge_best(docs, baseline_metrics):
    """Fold N runs into one metrics dict, keeping each metric's best value.

    Direction comes from the baseline when it knows the metric (the
    authority the gate compares against), else from the run itself.
    """
    merged = {}
    for doc in docs:
        for name, m in doc["metrics"].items():
            if name not in merged:
                merged[name] = dict(m)
                continue
            higher = baseline_metrics.get(name, m)["higher_is_better"]
            best = merged[name]["value"]
            if (m["value"] > best) == bool(higher) and m["value"] != best:
                merged[name]["value"] = m["value"]
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="*",
                    help="one or more runs; >1 gates best-of-N per metric")
    ap.add_argument("--timeseries", metavar="TS",
                    help="ordma.timeseries.v1 file for source-derived metrics")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BASELINE values from CURRENT after comparing")
    args = ap.parse_args()

    base = load(args.baseline)
    bm = base["metrics"]
    sourced = {n: m for n, m in bm.items()
               if m.get("source", {}).get("type") == "timeseries"}
    if sourced and not args.timeseries:
        sys.exit(f"{args.baseline}: {len(sourced)} metric(s) derive from a "
                 "timeseries; pass --timeseries TS.json")
    if not args.current and not sourced:
        sys.exit("no CURRENT files and no timeseries-derived metrics")

    cm = merge_best([load(p) for p in args.current], bm)
    if args.timeseries:
        ts_docs = load_timeseries(args.timeseries)
        for name, m in sourced.items():
            cm[name] = {"value": derive_from_timeseries(ts_docs, name,
                                                        m["source"]),
                        "unit": m["unit"],
                        "higher_is_better": m["higher_is_better"]}
    if len(args.current) > 1:
        print(f"best of {len(args.current)} runs per metric\n")

    failures = []
    rows = []
    for name, b in bm.items():
        if name not in cm:
            failures.append(f"{name}: missing from current run")
            continue
        bv, cv = b["value"], cm[name]["value"]
        tol = b["tolerance"]
        higher = b["higher_is_better"]
        if bv == 0:
            delta = 0.0 if cv == 0 else float("inf")
        else:
            delta = (cv - bv) / abs(bv)
        # Loss is the delta in the losing direction; gains are clamped to 0.
        loss = max(0.0, -delta if higher else delta)
        ok = loss <= tol
        arrow = "+" if delta >= 0 else ""
        rows.append((name, bv, cv, f"{arrow}{delta * 100:.1f}%",
                     f"{tol * 100:.0f}%", "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                f"{name}: {bv:g} -> {cv:g} ({delta * 100:+.1f}%, "
                f"tolerance {tol * 100:.0f}% {'down' if higher else 'up'})")
    for name in cm:
        if name not in bm:
            rows.append((name, "-", cm[name]["value"], "new", "-", "ok"))

    widths = [max(len(str(r[i])) for r in rows + [("metric", "baseline",
              "current", "delta", "tol", "")]) for i in range(6)]
    header = ("metric", "baseline", "current", "delta", "tol", "")
    for r in [header] + rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(r, widths)).rstrip())

    if args.update:
        for name, m in bm.items():
            if name in cm:
                m["value"] = cm[name]["value"]
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=2)
            f.write("\n")
        print(f"\nupdated {args.baseline}")

    if failures:
        print(f"\n{len(failures)} perf regression(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nall {len(bm)} baseline metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
