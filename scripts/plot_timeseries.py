#!/usr/bin/env python3
"""Render an ordma.timeseries.v1 file as a markdown report with unicode
sparklines and the run-phase annotation.

For each run document: a header with the window grid, one sparkline row per
selected series (delta/sample series plot their values; histograms plot the
per-window p99), and a phase strip aligned under the key series marking
warmup (.), steady (=), saturation (^) and degraded (!) windows.

Usage:
  python3 scripts/plot_timeseries.py ts.json                # all runs, key
                                                            # series + top 5
  python3 scripts/plot_timeseries.py ts.json -s 'server/'   # series filter
  python3 scripts/plot_timeseries.py ts.json -r dafs.4KB    # one run
  python3 scripts/plot_timeseries.py ts.json -o report.md

Stdlib only.
"""
import argparse
import json
import sys

TICKS = " ▁▂▃▄▅▆▇█"
PHASE_MARK = {"warmup": ".", "steady": "=", "saturation": "^",
              "degraded": "!"}
WIDTH = 96  # sparkline columns; longer series are max-pooled into bins


def binned(values, reduce):
    if len(values) <= WIDTH:
        return list(values)
    out = []
    for c in range(WIDTH):
        lo = c * len(values) // WIDTH
        hi = max(lo + 1, (c + 1) * len(values) // WIDTH)
        out.append(reduce(values[lo:hi]))
    return out


def sparkline(values):
    values = binned(values, max)
    lo, hi = min(values), max(values)
    if hi <= lo:
        return TICKS[1] * len(values)
    span = hi - lo
    return "".join(
        TICKS[1 + int((v - lo) / span * (len(TICKS) - 2))] for v in values)


def series_values(s):
    return s["p99_us"] if s["kind"] == "hist" else s["v"]


def fmt_si(v):
    for div, suf in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= div:
            return f"{v / div:.3g}{suf}"
    return f"{v:.3g}"


def phase_strip(doc):
    marks = []
    for seg in doc["phases"]["segments"]:
        marks.extend(PHASE_MARK.get(seg["label"], "?") *
                     (seg["end"] - seg["begin"]))
    # Bin exactly like the sparklines so the strip stays column-aligned;
    # a bin takes the label of its first window.
    return "".join(binned(marks, lambda chunk: chunk[0]))


def interesting(doc, pattern, limit):
    """Key series first, then the series with the most variation."""
    names = list(doc["series"])
    if pattern:
        names = [n for n in names if pattern in n]
        return names
    key = doc["phases"]["series"]
    ranked = sorted(
        (n for n in names if n != key),
        key=lambda n: -(max(series_values(doc["series"][n])) -
                        min(series_values(doc["series"][n]))))
    picked = ([key] if key in doc["series"] else []) + ranked
    return picked[:limit]


def render_run(doc, out, pattern, limit):
    iv_us = doc["interval_ns"] / 1000.0
    dur_ms = (doc["end_ns"] - doc["start_ns"]) / 1e6
    out.append(f"### {doc['run']}")
    out.append("")
    out.append(f"{doc['windows']} windows × {iv_us:g} us "
               f"({dur_ms:.3g} ms simulated"
               + (f", {doc['dropped_windows']} oldest windows dropped"
                  if doc.get("dropped_windows") else "") + ")")
    out.append("")
    names = interesting(doc, pattern, limit)
    if not names:
        out.append("_no series match the filter_")
        out.append("")
        return
    width = max(len(n) for n in names)
    hist_note = any(doc["series"][n]["kind"] == "hist" for n in names)
    out.append("```")
    for n in names:
        s = doc["series"][n]
        vals = series_values(s)
        tag = {"delta": "Δ", "sample": "·", "hist": "⌛"}[s["kind"]]
        out.append(f"{n:<{width}} {tag} |{sparkline(vals)}| "
                   f"max {fmt_si(max(vals))}")
    key = doc["phases"]["series"]
    out.append(f"{'phases (' + key + ')':<{width}}   |{phase_strip(doc)}|")
    out.append("```")
    if hist_note:
        out.append("")
        out.append("_⌛ histogram series plot per-window p99 (us)_")
    out.append("")
    segs = doc["phases"]["segments"]
    out.append("| phase | windows | sim time (ms) | mean |")
    out.append("|---|---|---|---|")
    for seg in segs:
        out.append(
            f"| {seg['label']} | [{seg['begin']}, {seg['end']}) "
            f"| {seg['begin_ns'] / 1e6:.3g} – {seg['end_ns'] / 1e6:.3g} "
            f"| {fmt_si(seg['mean'])} |")
    out.append("")


def main():
    ap = argparse.ArgumentParser(
        description="markdown sparkline report for ordma.timeseries.v1")
    ap.add_argument("file")
    ap.add_argument("-s", "--series", default=None,
                    help="substring filter for series names")
    ap.add_argument("-r", "--run", default=None,
                    help="only runs whose label contains this substring")
    ap.add_argument("-n", "--top", type=int, default=6,
                    help="series per run when no filter is given")
    ap.add_argument("-o", "--out", default=None, help="write to file")
    args = ap.parse_args()

    with open(args.file) as f:
        data = json.load(f)
    docs = data if isinstance(data, list) else [data]
    if args.run:
        docs = [d for d in docs if args.run in d.get("run", "")]
    if not docs:
        print("plot_timeseries: no matching runs", file=sys.stderr)
        sys.exit(1)

    out = [f"## Timeseries report: {args.file}", ""]
    for doc in docs:
        render_run(doc, out, args.series, args.top)
    text = "\n".join(out)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"plot_timeseries: wrote {args.out} ({len(docs)} run(s))")
    else:
        print(text)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
