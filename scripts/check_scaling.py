#!/usr/bin/env python3
"""Hardware-adaptive parallel-scaling gate for bench_sweep output.

bench_compare.py gates metric values against a committed baseline; this
script gates the *shape* of the scaling curve against physics, adapting to
whatever machine ran the bench. A fixed "speedup_j8 >= 4x" assertion would
be meaningless on the 2-core runner GitHub hands out on a bad day and
vacuous on a 16-core one, so the gate keys off the `hardware_jobs` metric
the bench records about its own host:

    cores >= 8  ->  speedup_j8 >= 4.0x   (near-linear up to memory b/w)
    cores >= 4  ->  speedup_j4 >= 1.5x
    cores >= 2  ->  speedup_j2 >= 1.2x
    cores <  2  ->  skip (a 1-core host cannot exhibit parallel speedup;
                     exit 0 with an explicit SKIP so CI logs say why)

Exactly one gate applies — the largest the hardware supports. With
multiple input files (best-of-N runs), each metric's best value across
files is used, mirroring bench_compare.py.

Usage:
    check_scaling.py sweep.1.json [sweep.2.json ...] [--summary=out.md]

Exit status: 0 pass/skip, 1 fail, 2 bad input. --summary writes a short
markdown table (speedups, per-worker throughput, verdict) suitable for
$GITHUB_STEP_SUMMARY or an uploaded artifact.
"""

import json
import sys

GATES = [  # (min cores, metric, threshold) — first match wins
    (8, "speedup_j8", 4.0),
    (4, "speedup_j4", 1.5),
    (2, "speedup_j2", 1.2),
]


def load_best(paths):
    merged = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != "ordma.bench.v1":
            sys.exit(f"check_scaling: {path}: not an ordma.bench.v1 document")
        for name, m in doc["metrics"].items():
            v = m["value"]
            if name not in merged:
                merged[name] = dict(m)
            elif m.get("higher_is_better", False):
                merged[name]["value"] = max(merged[name]["value"], v)
            else:
                merged[name]["value"] = min(merged[name]["value"], v)
    return merged


def main(argv):
    summary_path = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--summary="):
            summary_path = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2

    metrics = load_best(paths)
    if "hardware_jobs" not in metrics:
        print("check_scaling: input lacks a hardware_jobs metric "
              "(bench_sweep too old?)", file=sys.stderr)
        return 2
    cores = int(metrics["hardware_jobs"]["value"])

    gate = next(((m, thr) for need, m, thr in GATES if cores >= need), None)

    lines = [f"### Parallel sweep scaling ({cores} cores)", ""]
    lines.append("| jobs | events/s | per-worker | speedup |")
    lines.append("|-----:|---------:|-----------:|--------:|")
    for j in (1, 2, 4, 8):
        eps = metrics.get(f"events_per_sec_j{j}", {}).get("value")
        pw = metrics.get(f"events_per_sec_per_worker_j{j}", {}).get("value")
        sp = 1.0 if j == 1 else metrics.get(f"speedup_j{j}", {}).get("value")
        if eps is None:
            continue
        pw_s = f"{pw:,.0f}" if pw is not None else "n/a"
        sp_s = f"{sp:.2f}x" if sp is not None else "n/a"
        lines.append(f"| {j} | {eps:,.0f} | {pw_s} | {sp_s} |")

    if gate is None:
        verdict = (f"SKIP: {cores} core(s) — parallel speedup is not "
                   "measurable on this host; gate needs >= 2 cores")
        print(verdict)
        rc = 0
    else:
        metric, threshold = gate
        if metric not in metrics:
            print(f"check_scaling: missing metric {metric}", file=sys.stderr)
            return 2
        value = metrics[metric]["value"]
        ok = value >= threshold
        verdict = (f"{'PASS' if ok else 'FAIL'}: {metric} = {value:.2f}x "
                   f"(threshold {threshold:.1f}x on a {cores}-core host)")
        print(verdict)
        rc = 0 if ok else 1

    lines += ["", verdict, ""]
    if summary_path:
        with open(summary_path, "w") as f:
            f.write("\n".join(lines) + "\n")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
