// One-shot broadcast event with an optional value — the simulator's future.
//
// Any number of coroutines may co_await wait(); set() wakes them all (in
// wait order, at the current instant). Waiters that are destroyed mid-wait
// unlink themselves, and waiters already scheduled for wake-up cancel their
// timer, so destroying a consumer never leaves a dangling resumption.
#pragma once

#include <coroutine>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/assert.h"
#include "common/intrusive_list.h"
#include "sim/engine.h"

namespace ordma::sim {

namespace detail {
struct Unit {};
template <typename T>
using EventStorage = std::conditional_t<std::is_void_v<T>, Unit, T>;
}  // namespace detail

template <typename T = void>
class Event {
 public:
  explicit Event(Engine& eng) : eng_(eng) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  // Detach any still-suspended waiters: their awaiter destructors then see
  // an unlinked node and do nothing, so an Event may be destroyed before the
  // engine tears down the coroutines waiting on it.
  ~Event() {
    while (waiters_.pop_front()) {
    }
  }

  bool is_set() const { return set_; }

  template <typename U = T>
    requires(!std::is_void_v<U>)
  void set(U value) {
    ORDMA_CHECK_MSG(!set_, "Event::set called twice");
    value_.emplace(std::move(value));
    set_ = true;
    wake_all();
  }

  template <typename U = T>
    requires(std::is_void_v<U>)
  void set() {
    ORDMA_CHECK_MSG(!set_, "Event::set called twice");
    value_.emplace();
    set_ = true;
    wake_all();
  }

  // Value access after set (only for non-void T).
  template <typename U = T>
    requires(!std::is_void_v<U>)
  const U& peek() const {
    ORDMA_CHECK(set_);
    return *value_;
  }

  class Awaiter;
  Awaiter wait() { return Awaiter(*this); }

  class TimedAwaiter;
  // Timed wait: resumes with the value once set() fires, or with
  // std::nullopt after `d` if it has not. The caller owns recovery (e.g. a
  // retransmit); the event itself stays armed and may still fire later.
  TimedAwaiter wait_for(Duration d) { return TimedAwaiter(*this, d); }

  class Awaiter {
   public:
    explicit Awaiter(Event& ev) : ev_(ev) {}
    Awaiter(const Awaiter&) = delete;
    Awaiter& operator=(const Awaiter&) = delete;
    ~Awaiter() {
      if (node_.linked()) {
        ev_.waiters_.erase(&node_);
      } else if (node_.timer) {
        node_.timer->cancelled = true;
      }
    }

    bool await_ready() const noexcept { return ev_.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      node_.h = h;
      ev_.waiters_.push_back(&node_);
    }
    T await_resume() {
      node_.timer = nullptr;
      if constexpr (!std::is_void_v<T>) {
        ORDMA_CHECK(ev_.value_.has_value());
        return *ev_.value_;  // copies: multiple waiters may consume it
      }
    }

   private:
    friend class Event;
    struct Node : ListNode {
      std::coroutine_handle<> h{};
      Engine::TimerNode* timer = nullptr;
    };
    Event& ev_;
    Node node_;
  };

  class TimedAwaiter {
   public:
    TimedAwaiter(Event& ev, Duration d) : ev_(ev), d_(d) {}
    TimedAwaiter(const TimedAwaiter&) = delete;
    TimedAwaiter& operator=(const TimedAwaiter&) = delete;
    ~TimedAwaiter() {
      if (node_.linked()) {
        ev_.waiters_.erase(&node_);
      } else if (node_.timer) {
        node_.timer->cancelled = true;
      }
      if (timeout_) timeout_->cancelled = true;
    }

    bool await_ready() const noexcept { return ev_.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      node_.h = h;
      ev_.waiters_.push_back(&node_);
      timeout_ = ev_.eng_.schedule_fn(d_, [this] {
        timeout_ = nullptr;  // the engine recycles this TimerNode after firing
        if (node_.linked()) {
          ev_.waiters_.erase(&node_);
          node_.h.resume();
        }
        // else: set() already unlinked us and scheduled the normal wake-up.
      });
    }
    std::optional<detail::EventStorage<T>> await_resume() {
      node_.timer = nullptr;
      if (timeout_) {
        timeout_->cancelled = true;
        timeout_ = nullptr;
      }
      if (!ev_.set_) return std::nullopt;
      return *ev_.value_;
    }

   private:
    friend class Event;
    Event& ev_;
    Duration d_;
    typename Awaiter::Node node_;
    Engine::TimerNode* timeout_ = nullptr;
  };

 private:
  friend class Awaiter;
  friend class TimedAwaiter;

  void wake_all() {
    while (auto* n = waiters_.pop_front()) {
      n->timer = eng_.schedule_coro(Duration{0}, n->h);
    }
  }

  Engine& eng_;
  bool set_ = false;
  std::optional<detail::EventStorage<T>> value_;
  IntrusiveList<typename Awaiter::Node> waiters_;
};

}  // namespace ordma::sim
