// Unbounded FIFO channel between coroutines.
//
// send() never blocks; recv() suspends until a value is available. Receivers
// are served in arrival order. Used for NIC work queues, RPC dispatch
// queues, interrupt delivery, etc.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/intrusive_list.h"
#include "sim/engine.h"

namespace ordma::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  // Detach suspended receivers so the channel may die before its waiters'
  // coroutine frames do (the engine destroys those at teardown).
  ~Channel() {
    while (waiters_.pop_front()) {
    }
  }

  void send(T v) {
    if (auto* w = waiters_.pop_front()) {
      w->value.emplace(std::move(v));
      w->timer = eng_.schedule_coro(Duration{0}, w->h);
    } else {
      items_.push_back(std::move(v));
    }
  }

  std::size_t pending() const { return items_.size(); }
  bool has_waiters() const { return !waiters_.empty(); }

  class RecvAwaiter;
  RecvAwaiter recv() { return RecvAwaiter(*this); }

  // Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  class RecvAwaiter {
   public:
    explicit RecvAwaiter(Channel& ch) : ch_(ch) {}
    RecvAwaiter(const RecvAwaiter&) = delete;
    RecvAwaiter& operator=(const RecvAwaiter&) = delete;
    ~RecvAwaiter() {
      if (node_.linked()) {
        ch_.waiters_.erase(&node_);
      } else if (node_.timer) {
        // Granted a value but the receiver died before resuming: the value
        // is dropped with the awaiter (the sender cannot tell), and the
        // timer must not fire.
        node_.timer->cancelled = true;
      }
    }

    bool await_ready() const noexcept { return !ch_.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      node_.h = h;
      ch_.waiters_.push_back(&node_);
    }
    T await_resume() {
      // The engine recycles TimerNodes after firing; the handle must never
      // be touched once this coroutine has been resumed.
      node_.timer = nullptr;
      if (node_.value.has_value()) {
        return std::move(*node_.value);  // handed off directly by send()
      }
      ORDMA_CHECK(!ch_.items_.empty());
      T v = std::move(ch_.items_.front());
      ch_.items_.pop_front();
      return v;
    }

   private:
    friend class Channel;
    struct Node : ListNode {
      std::coroutine_handle<> h{};
      Engine::TimerNode* timer = nullptr;
      std::optional<T> value;
    };
    Channel& ch_;
    Node node_;
  };

 private:
  friend class RecvAwaiter;
  Engine& eng_;
  std::deque<T> items_;
  IntrusiveList<typename RecvAwaiter::Node> waiters_;
};

}  // namespace ordma::sim
