// Deterministic discrete-event engine.
//
// All simulated activity is driven by one Engine. Scheduling is split by
// delay into two structures that together preserve exact global (when, seq)
// order, where seq is the order schedule_* calls were made:
//
//  * current-tick ring — a FIFO of entries scheduled with zero delay
//    (yield(), channel/event/resource wake-ups: the dominant event class).
//    Pushing and popping is O(1) with no comparisons.
//  * future calendar — entries scheduled with a positive delay are chained
//    FIFO into a per-timestamp bucket (open-addressing hash table keyed by
//    absolute nanosecond), and a min-heap holds each *distinct* timestamp
//    once. Sim workloads collide heavily on timestamps (cost constants are
//    quantized), so the O(log n) heap sift — the dominant cost of a classic
//    event heap, being branch-mispredict bound — amortizes over every event
//    sharing the instant; the per-event cost is a hash probe and two pointer
//    writes.
//
// Ordering guarantee: entries fire in nondecreasing time; entries for the
// same instant fire in scheduling order. The split preserves this exactly:
//
//  * within one bucket, FIFO chaining is scheduling (seq) order;
//  * a bucket entry firing at time T was scheduled strictly before T (its
//    delay is positive), while every ring entry for T was scheduled at T —
//    so when time advances to T the engine first drains T's bucket (older
//    seq), then ring entries (newer seq);
//  * no entry can join T's bucket once time has advanced to T (delays are
//    strictly positive), so the bucket is detached whole and drained as a
//    plain list; ring entries only ever fire at the instant they were
//    scheduled, so the ring is empty whenever time advances.
//
// This is bit-identical to the original single-heap (when, seq) engine
// (tests/engine_determinism_test.cc holds the trace hash of the seed
// implementation).
//
// The hot path is allocation-free in steady state: timer nodes are
// recycled through a slab-backed free list, and callbacks are stored
// inline in the node (InlineFn) rather than via std::function.
//
// Detached top-level activities ("processes") are spawned with spawn(); the
// engine owns their frames and destroys them when they finish or when the
// engine is destroyed (in which case any still-suspended process chain is
// destroyed safely — every awaiter deregisters itself from its wait list or
// cancels its timer in its destructor).
#pragma once

#include <coroutine>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "mem/arena.h"
#include "sim/inline_fn.h"
#include "sim/task.h"

namespace ordma::sim {

class Engine {
 public:
  // A cancellable handle to a scheduled entry. The engine owns the node; a
  // holder may set `cancelled` any time before the node fires. Nodes are
  // recycled after firing, so a handle must not be touched once its entry
  // has fired (every awaiter in this codebase clears its handle on resume).
  struct TimerNode {
    std::coroutine_handle<> coro{};  // resumed if set (and not cancelled)
    bool cancelled = false;

   private:
    friend class Engine;
    // Intrusive link: bucket-FIFO chain while queued, free-list link while
    // recycled (the two states are disjoint). Declared before fn so the
    // scheduling metadata (coro, cancelled, next, fn's dispatch pointers)
    // packs into the node's first cache line; fn's inline capture buffer
    // is the cold tail.
    TimerNode* next = nullptr;

   public:
    InlineFn fn;  // called if coro is not set
  };

  // Construction installs this engine as the Log simulation clock (see
  // common/log.h); destruction clears it.
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime now() const { return now_; }

  // --- scheduling -----------------------------------------------------
  TimerNode* schedule_coro(Duration after, std::coroutine_handle<> h) {
    TimerNode* node = alloc_node();
    node->coro = h;
    return enqueue(after, node);
  }

  template <typename F>
  TimerNode* schedule_fn(Duration after, F&& f) {
    TimerNode* node = alloc_node();
    node->fn.emplace(std::forward<F>(f));
    return enqueue(after, node);
  }

  // --- coroutine awaitables -------------------------------------------
  // co_await eng.delay(d): resume this coroutine after d of simulated time.
  // Always suspends (even for d == 0) so same-tick ordering stays FIFO.
  class DelayAwaiter {
   public:
    DelayAwaiter(Engine& eng, Duration d) : eng_(eng), d_(d) {}
    DelayAwaiter(const DelayAwaiter&) = delete;
    DelayAwaiter& operator=(const DelayAwaiter&) = delete;
    ~DelayAwaiter() {
      if (node_) node_->cancelled = true;  // frame destroyed mid-wait
    }
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      node_ = eng_.schedule_coro(d_, h);
    }
    void await_resume() noexcept { node_ = nullptr; }

   private:
    Engine& eng_;
    Duration d_;
    TimerNode* node_ = nullptr;
  };
  DelayAwaiter delay(Duration d) {
    ORDMA_CHECK(d.ns >= 0);
    return DelayAwaiter(*this, d);
  }
  // Yield the current tick slice: reschedule at the same instant, behind
  // everything already queued for it.
  DelayAwaiter yield() { return DelayAwaiter(*this, Duration{0}); }

  // --- detached processes ----------------------------------------------
  // Takes ownership of the task and schedules its first resumption at the
  // current instant. Returns a process id (for debugging only).
  std::uint64_t spawn(Task<void> t);

  // Number of processes spawned and not yet finished.
  std::size_t live_processes() const { return processes_.size(); }

  // --- run loop ---------------------------------------------------------
  // Run until both queues are exhausted. Returns the number of entries
  // fired.
  std::uint64_t run();
  // Run until the queues are exhausted or simulated time would pass
  // `until`.
  std::uint64_t run_until(SimTime until);
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  bool idle() const {
    return heap_.empty() && ring_empty() && cur_head_ == nullptr;
  }

  // --- periodic sampling hook -------------------------------------------
  // Observer-only callback on a fixed simulated-time grid (multiples of
  // `interval`, anchored at t=0), used by obs/timeseries.h. The hook lives
  // *outside* the event queues: the run loop invokes it whenever advancing
  // the clock to the next event instant crosses one or more grid
  // boundaries, with now() set to each boundary in turn before its call.
  // Arming it therefore adds no queue entries, changes no (when, seq)
  // firing order, and cannot keep run() alive past the last real event —
  // zero perturbation by construction (pinned by golden-hash tests). A
  // boundary coinciding with an event instant fires *before* the entries
  // at that instant, so those events land in the window the boundary
  // opens, not the one it closes. The callback must not schedule, spawn or
  // otherwise touch simulation state; reading lazily-integrated component
  // counters (resource busy time) is safe because the clock already sits
  // on the boundary when it runs.
  using SampleFn = void (*)(void* ctx);
  void set_sampling_hook(Duration interval, void* ctx, SampleFn fn) {
    ORDMA_CHECK(interval.ns > 0);
    ORDMA_CHECK(sample_fn_ == nullptr);  // one sampler per engine
    sample_interval_ns_ = interval.ns;
    next_sample_ns_ = (now_.ns / interval.ns + 1) * interval.ns;
    sample_ctx_ = ctx;
    sample_fn_ = fn;
  }
  void clear_sampling_hook() {
    sample_fn_ = nullptr;
    sample_ctx_ = nullptr;
  }
  std::int64_t sampling_interval_ns() const { return sample_interval_ns_; }

 private:
  // --- future calendar --------------------------------------------------
  // Hand-rolled 4-ary min-heap over distinct timestamps: half the depth of
  // a binary heap, 8-byte entries, and all four children share a cache
  // line. Each timestamp appears exactly once; the nodes for it hang off
  // the matching table bucket in FIFO order.
  void heap_push(std::int64_t when) {
    std::size_t i = heap_.size();
    heap_.push_back(when);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (when >= heap_[parent]) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = when;
  }

  void heap_pop() {  // pre: !heap_.empty(); top is heap_[0]
    const std::int64_t last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t c = (i << 2) + 1;
        if (c >= n) break;
        std::size_t m = c;
        const std::size_t cend = c + 4 < n ? c + 4 : n;
        for (std::size_t k = c + 1; k < cend; ++k) {
          if (heap_[k] < heap_[m]) m = k;
        }
        if (heap_[m] >= last) break;
        heap_[i] = heap_[m];
        i = m;
      }
      heap_[i] = last;
    }
  }

  // Open-addressing timestamp → bucket table (linear probing, power-of-two
  // capacity, backward-shift deletion). Flat storage, no per-bucket
  // allocation.
  struct Bucket {
    std::int64_t when;
    TimerNode* head;
    TimerNode* tail;
  };
  static constexpr std::int64_t kNoBucket =
      std::numeric_limits<std::int64_t>::min();
  static std::size_t bucket_hash(std::int64_t when) {
    auto x = static_cast<std::uint64_t>(when) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(x ^ (x >> 29));
  }

  // Append `node` to the bucket for `when`, creating it (and pushing the
  // new distinct timestamp onto the heap) if absent. The last-bucket memo
  // skips the hash probe for the common burst pattern of many schedules
  // onto one instant (a NIC fanning a message's fragments out, a resource
  // waking all waiters). The memo self-validates by re-checking the slot's
  // timestamp — a timestamp names at most one bucket, so a slot that still
  // holds `when` *is* the bucket, however backward-shift deletion has
  // rearranged its neighbours; grow_table() renumbers slots and drops the
  // memo wholesale.
  void push_future(std::int64_t when, TimerNode* node) {
    node->next = nullptr;
    if (when == memo_when_ && table_[memo_idx_].when == when) {
      Bucket& b = table_[memo_idx_];
      b.tail->next = node;
      b.tail = node;
      return;
    }
    if ((table_count_ + 1) * 4 >= table_.size() * 3) grow_table();
    std::size_t i = bucket_hash(when) & table_mask_;
    for (;;) {
      Bucket& b = table_[i];
      if (b.when == when) {
        b.tail->next = node;
        b.tail = node;
        memo_when_ = when;
        memo_idx_ = i;
        return;
      }
      if (b.when == kNoBucket) {
        b = Bucket{when, node, node};
        ++table_count_;
        heap_push(when);
        memo_when_ = when;
        memo_idx_ = i;
        return;
      }
      i = (i + 1) & table_mask_;
    }
  }

  // Detach and return the FIFO chain for `when`, erasing its bucket.
  TimerNode* take_bucket(std::int64_t when) {
    std::size_t i = bucket_hash(when) & table_mask_;
    while (table_[i].when != when) i = (i + 1) & table_mask_;
    TimerNode* head = table_[i].head;
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones: slide each follower home-ward while legal.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & table_mask_;
      const Bucket& bj = table_[j];
      if (bj.when == kNoBucket) break;
      const std::size_t home = bucket_hash(bj.when) & table_mask_;
      if (((j - home) & table_mask_) >= ((j - i) & table_mask_)) {
        table_[i] = bj;
        i = j;
      }
    }
    table_[i].when = kNoBucket;
    --table_count_;
    return head;
  }
  void grow_table();

  // --- node pool --------------------------------------------------------
  static constexpr std::size_t kSlabNodes = 512;

  TimerNode* alloc_node() {
    if (!free_nodes_) grow_pool();
    TimerNode* n = free_nodes_;
    free_nodes_ = n->next;
    n->next = nullptr;
    return n;
  }
  void recycle(TimerNode* n) {
    n->coro = {};
    n->fn.reset();
    n->cancelled = false;
    n->next = free_nodes_;
    free_nodes_ = n;
  }
  void grow_pool();

  // --- current-tick ring ------------------------------------------------
  bool ring_empty() const { return ring_head_ == ring_tail_; }
  void ring_push(TimerNode* n) {
    if (ring_tail_ - ring_head_ == ring_.size()) grow_ring();
    ring_[ring_tail_ & ring_mask_] = n;
    ++ring_tail_;
  }
  TimerNode* ring_pop() {
    TimerNode* n = ring_[ring_head_ & ring_mask_];
    ++ring_head_;
    return n;
  }
  void grow_ring();

  TimerNode* enqueue(Duration after, TimerNode* node) {
    ORDMA_CHECK(after.ns >= 0);
    if (after.ns == 0) {
      ring_push(node);
    } else {
      push_future(now_.ns + after.ns, node);
    }
    return node;
  }

  void fire(TimerNode* node);
  void reap_finished();

  // Advance the clock to `to`, invoking the sampling hook at every grid
  // boundary crossed (see set_sampling_hook for the ordering contract).
  void advance_clock(std::int64_t to) {
    if (sample_fn_) {
      while (next_sample_ns_ <= to) {
        now_.ns = next_sample_ns_;
        next_sample_ns_ += sample_interval_ns_;
        sample_fn_(sample_ctx_);
      }
    }
    now_.ns = to;
  }

  // All engine-internal bulk storage (timer slabs, calendar heap, bucket
  // table, ring) draws from one arena: the thread's installed per-run
  // arena when a harness put one up (mem::ScopedSimArena), else a private
  // fallback so a bare Engine behaves identically. Resolved exactly once
  // here — never a TLS lookup on the hot path. Declaration order matters:
  // the vectors below are constructed with allocators over arena_.
  template <typename T>
  using ArenaVec = std::vector<T, mem::ArenaAllocator<T>>;

  std::unique_ptr<mem::Arena> owned_arena_;  // set iff no installed arena
  mem::Arena* arena_;

  SimTime now_{};
  ArenaVec<std::int64_t> heap_;  // distinct future timestamps
  ArenaVec<Bucket> table_;       // open-addressing, power-of-two
  std::size_t table_mask_ = 0;
  std::size_t table_count_ = 0;
  // Last bucket appended to (see push_future). kNoBucket = no memo.
  std::int64_t memo_when_ = kNoBucket;
  std::size_t memo_idx_ = 0;
  // Remainder of the bucket being drained at the current instant. Nothing
  // can be appended to it (delays are strictly positive), so it lives
  // outside the table.
  TimerNode* cur_head_ = nullptr;
  ArenaVec<TimerNode*> ring_;  // power-of-two circular buffer
  std::size_t ring_mask_ = 0;
  std::size_t ring_head_ = 0;  // monotonically increasing; masked on access
  std::size_t ring_tail_ = 0;

  // Slabs (arena memory, placement-newed) own every node for the engine's
  // lifetime; fired nodes are recycled through free_nodes_ instead of
  // delete. ~Engine destroys the nodes explicitly — a pending InlineFn may
  // hold non-trivial captures — before the arena reclaims the bytes.
  std::vector<TimerNode*> slabs_;
  TimerNode* free_nodes_ = nullptr;

  // Periodic sampling hook (cold: only the run loop's time advance reads
  // it, and only when armed).
  std::int64_t sample_interval_ns_ = 0;
  std::int64_t next_sample_ns_ = 0;
  void* sample_ctx_ = nullptr;
  SampleFn sample_fn_ = nullptr;

  // Detached process bookkeeping -----------------------------------------
  struct ProcessState {
    Task<void> task;  // owns the coroutine frame
    bool finished = false;
  };
  std::uint64_t next_pid_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<ProcessState>> processes_;
  std::vector<std::uint64_t> reap_list_;

  // Wrapper coroutine that runs a task to completion and reports back.
  Task<void> run_process(std::uint64_t pid, Task<void> body);
};

}  // namespace ordma::sim
