// Deterministic discrete-event engine.
//
// All simulated activity is driven by one Engine: a min-heap of timed
// entries, each either a coroutine resumption or a plain callback. Entries
// scheduled for the same instant fire in scheduling order (monotonic
// sequence number), so runs are bit-reproducible.
//
// Detached top-level activities ("processes") are spawned with spawn(); the
// engine owns their frames and destroys them when they finish or when the
// engine is destroyed (in which case any still-suspended process chain is
// destroyed safely — every awaiter deregisters itself from its wait list or
// cancels its timer in its destructor).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace ordma::sim {

class Engine {
 public:
  // A cancellable handle to a scheduled entry. The engine owns the node; a
  // holder may set `cancelled` any time before the node fires.
  struct TimerNode {
    std::coroutine_handle<> coro{};   // resumed if set (and not cancelled)
    std::function<void()> fn{};       // called otherwise
    bool cancelled = false;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  SimTime now() const { return now_; }

  // --- scheduling -----------------------------------------------------
  TimerNode* schedule_coro(Duration after, std::coroutine_handle<> h);
  TimerNode* schedule_fn(Duration after, std::function<void()> f);

  // --- coroutine awaitables -------------------------------------------
  // co_await eng.delay(d): resume this coroutine after d of simulated time.
  // Always suspends (even for d == 0) so same-tick ordering stays FIFO.
  class DelayAwaiter {
   public:
    DelayAwaiter(Engine& eng, Duration d) : eng_(eng), d_(d) {}
    DelayAwaiter(const DelayAwaiter&) = delete;
    DelayAwaiter& operator=(const DelayAwaiter&) = delete;
    ~DelayAwaiter() {
      if (node_) node_->cancelled = true;  // frame destroyed mid-wait
    }
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      node_ = eng_.schedule_coro(d_, h);
    }
    void await_resume() noexcept { node_ = nullptr; }

   private:
    Engine& eng_;
    Duration d_;
    TimerNode* node_ = nullptr;
  };
  DelayAwaiter delay(Duration d) {
    ORDMA_CHECK(d.ns >= 0);
    return DelayAwaiter(*this, d);
  }
  // Yield the current tick slice: reschedule at the same instant, behind
  // everything already queued for it.
  DelayAwaiter yield() { return DelayAwaiter(*this, Duration{0}); }

  // --- detached processes ----------------------------------------------
  // Takes ownership of the task and schedules its first resumption at the
  // current instant. Returns a process id (for debugging only).
  std::uint64_t spawn(Task<void> t);

  // Number of processes spawned and not yet finished.
  std::size_t live_processes() const { return processes_.size(); }

  // --- run loop ---------------------------------------------------------
  // Run until the heap is exhausted. Returns the number of entries fired.
  std::uint64_t run();
  // Run until the heap is exhausted or simulated time would pass `until`.
  std::uint64_t run_until(SimTime until);
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  bool idle() const { return heap_.empty(); }

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    TimerNode* node;  // owned by the heap entry; deleted when popped
    bool operator>(const HeapEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  struct ProcessRecord;

  TimerNode* push(Duration after, TimerNode* node);
  void fire(TimerNode* node);
  void reap_finished();

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;

  // Detached process bookkeeping -----------------------------------------
  friend struct ProcessReaper;
  struct ProcessState {
    Task<void> task;     // owns the coroutine frame
    bool finished = false;
  };
  std::uint64_t next_pid_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<ProcessState>> processes_;
  std::vector<std::uint64_t> reap_list_;

  // Wrapper coroutine that runs a task to completion and reports back.
  Task<void> run_process(std::uint64_t pid, Task<void> body);
};

}  // namespace ordma::sim
