// Lazy coroutine task for the simulator.
//
// Task<T> is the unit of composition for protocol logic: a coroutine that
// starts suspended, is resumed when first awaited, and resumes its awaiter
// (via symmetric transfer) when it completes. Ownership is strict: the Task
// object owns the frame; destroying a Task destroys a suspended child chain,
// and every awaiter in this codebase deregisters itself on destruction, so
// tearing down a half-finished simulation is safe. Awaiters that hold an
// Engine::TimerNode* additionally clear it on resume — the engine recycles
// nodes after firing, so a handle is only valid while its entry is queued.
//
// Simulation code never throws across coroutine boundaries: protocol errors
// are Result values, programming errors abort (see common/result.h), so
// unhandled_exception terminates.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/assert.h"

namespace ordma::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& c = h.promise().continuation;
      return c ? c : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::abort(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      reset();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return h_ && h_.done(); }

  // Awaiting a Task starts (or resumes) it and suspends the caller until the
  // task completes; the task's result is returned from co_await.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          ORDMA_CHECK_MSG(h.promise().value.has_value(),
                          "Task finished without a value");
          return std::move(*h.promise().value);
        }
      }
    };
    return Awaiter{h_};
  }

  // Release ownership of the frame (used by Engine::spawn, which takes over
  // lifetime management of detached processes).
  Handle release() { return std::exchange(h_, {}); }

  // Non-owning access to the frame (Engine needs the handle to schedule the
  // first resumption of a process it owns).
  Handle raw_handle() const { return h_; }

 private:
  void reset() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace ordma::sim
