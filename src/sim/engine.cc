#include "sim/engine.h"

#include "common/assert.h"
#include "common/log.h"

namespace ordma::sim {

Engine::Engine()
    : arena_(mem::current_arena()
                 ? mem::current_arena()
                 : (owned_arena_ = std::make_unique<mem::Arena>()).get()),
      heap_(mem::ArenaAllocator<std::int64_t>(arena_)),
      table_(mem::ArenaAllocator<Bucket>(arena_)),
      ring_(mem::ArenaAllocator<TimerNode*>(arena_)) {
  // Make log lines carry simulated time (last constructed engine wins; the
  // destructor only clears its own registration).
  Log::set_clock(
      [](const void* e) {
        return static_cast<long long>(
            static_cast<const Engine*>(e)->now().ns);
      },
      this);
}

Engine::~Engine() {
  Log::clear_clock(this);
  // Destroy still-live processes first (their awaiter destructors cancel any
  // timers / unlink from wait queues — the nodes they touch stay alive until
  // the slab sweep below). Then run the TimerNode destructors explicitly:
  // the nodes live in arena memory, so nothing else will, and a pending
  // callback's InlineFn may own resources (captured Buffers, coroutine
  // frames' awaitable state).
  processes_.clear();
  for (TimerNode* slab : slabs_) {
    for (std::size_t i = 0; i < kSlabNodes; ++i) slab[i].~TimerNode();
  }
}

void Engine::grow_pool() {
  TimerNode* slab = arena_->allocate_array<TimerNode>(kSlabNodes);
  for (std::size_t i = kSlabNodes; i-- > 0;) {
    ::new (static_cast<void*>(&slab[i])) TimerNode();
    slab[i].next = free_nodes_;
    free_nodes_ = &slab[i];
  }
  slabs_.push_back(slab);
}

void Engine::grow_table() {
  ArenaVec<Bucket> old = std::move(table_);
  const std::size_t new_cap = old.empty() ? 64 : old.size() * 2;
  table_.assign(new_cap, Bucket{kNoBucket, nullptr, nullptr});
  table_mask_ = new_cap - 1;
  memo_when_ = kNoBucket;  // slot indices renumbered
  for (const Bucket& b : old) {
    if (b.when == kNoBucket) continue;
    std::size_t i = bucket_hash(b.when) & table_mask_;
    while (table_[i].when != kNoBucket) i = (i + 1) & table_mask_;
    table_[i] = b;
  }
}

void Engine::grow_ring() {
  const std::size_t old_cap = ring_.size();
  const std::size_t new_cap = old_cap == 0 ? 1024 : old_cap * 2;
  ArenaVec<TimerNode*> bigger(new_cap,
                              mem::ArenaAllocator<TimerNode*>(arena_));
  const std::size_t count = ring_tail_ - ring_head_;
  for (std::size_t i = 0; i < count; ++i) {
    bigger[i] = ring_[(ring_head_ + i) & ring_mask_];
  }
  ring_ = std::move(bigger);
  ring_mask_ = new_cap - 1;
  ring_head_ = 0;
  ring_tail_ = count;
}

void Engine::fire(TimerNode* node) {
  if (!node->cancelled) {
    if (node->coro) {
      node->coro.resume();
    } else if (node->fn) {
      node->fn();
    }
  }
}

Task<void> Engine::run_process(std::uint64_t pid, Task<void> body) {
  co_await std::move(body);
  auto it = processes_.find(pid);
  ORDMA_CHECK(it != processes_.end());
  it->second->finished = true;
  reap_list_.push_back(pid);
}

std::uint64_t Engine::spawn(Task<void> t) {
  const std::uint64_t pid = next_pid_++;
  auto state = std::make_unique<ProcessState>();
  state->task = run_process(pid, std::move(t));
  const auto handle = state->task.raw_handle();
  processes_.emplace(pid, std::move(state));
  schedule_coro(Duration{0}, handle);
  return pid;
}

void Engine::reap_finished() {
  // A finishing process can itself spawn processes that finish at the same
  // instant, so drain iteratively.
  while (!reap_list_.empty()) {
    const std::uint64_t pid = reap_list_.back();
    reap_list_.pop_back();
    auto it = processes_.find(pid);
    if (it != processes_.end() && it->second->finished) {
      processes_.erase(it);  // Task dtor destroys the (final-suspended) frame
    }
  }
}

std::uint64_t Engine::run() {
  std::uint64_t fired = 0;
  for (;;) {
    TimerNode* node;
    if (cur_head_) {
      // Current instant's bucket: scheduled before `now` (positive delay),
      // so these precede everything in the ring (scheduled at `now`).
      node = cur_head_;
      cur_head_ = node->next;
    } else if (!ring_empty()) {
      node = ring_pop();
    } else if (!heap_.empty()) {
      const std::int64_t when = heap_[0];
      heap_pop();
      ORDMA_CHECK(when >= now_.ns);
      advance_clock(when);
      cur_head_ = take_bucket(when);
      node = cur_head_;
      cur_head_ = node->next;
    } else {
      break;
    }
    fire(node);
    recycle(node);
    ++fired;
    reap_finished();
  }
  return fired;
}

std::uint64_t Engine::run_until(SimTime until) {
  std::uint64_t fired = 0;
  // Bucket/ring entries fire at `now`, so they are in bounds iff
  // now_ <= until (run_until may be called with `until` in the past;
  // nothing fires then).
  for (;;) {
    TimerNode* node;
    if (cur_head_ && now_ <= until) {
      node = cur_head_;
      cur_head_ = node->next;
    } else if (!ring_empty() && now_ <= until) {
      node = ring_pop();
    } else if (!heap_.empty() && heap_[0] <= until.ns) {
      const std::int64_t when = heap_[0];
      heap_pop();
      ORDMA_CHECK(when >= now_.ns);
      advance_clock(when);
      cur_head_ = take_bucket(when);
      node = cur_head_;
      cur_head_ = node->next;
    } else {
      break;
    }
    fire(node);
    recycle(node);
    ++fired;
    reap_finished();
  }
  if (now_ < until) advance_clock(until.ns);
  return fired;
}

}  // namespace ordma::sim
