#include "sim/engine.h"

#include "common/assert.h"

namespace ordma::sim {

Engine::~Engine() {
  // Destroy still-live processes first (their awaiter destructors cancel any
  // timers / unlink from wait queues), then drain the heap nodes.
  processes_.clear();
  while (!heap_.empty()) {
    delete heap_.top().node;
    heap_.pop();
  }
}

Engine::TimerNode* Engine::push(Duration after, TimerNode* node) {
  ORDMA_CHECK(after.ns >= 0);
  heap_.push(HeapEntry{now_ + after, next_seq_++, node});
  return node;
}

Engine::TimerNode* Engine::schedule_coro(Duration after,
                                         std::coroutine_handle<> h) {
  auto* node = new TimerNode;
  node->coro = h;
  return push(after, node);
}

Engine::TimerNode* Engine::schedule_fn(Duration after,
                                       std::function<void()> f) {
  auto* node = new TimerNode;
  node->fn = std::move(f);
  return push(after, node);
}

void Engine::fire(TimerNode* node) {
  if (!node->cancelled) {
    if (node->coro) {
      node->coro.resume();
    } else if (node->fn) {
      node->fn();
    }
  }
}

Task<void> Engine::run_process(std::uint64_t pid, Task<void> body) {
  co_await std::move(body);
  auto it = processes_.find(pid);
  ORDMA_CHECK(it != processes_.end());
  it->second->finished = true;
  reap_list_.push_back(pid);
}

std::uint64_t Engine::spawn(Task<void> t) {
  const std::uint64_t pid = next_pid_++;
  auto state = std::make_unique<ProcessState>();
  state->task = run_process(pid, std::move(t));
  const auto handle = state->task.raw_handle();
  processes_.emplace(pid, std::move(state));
  schedule_coro(Duration{0}, handle);
  return pid;
}

void Engine::reap_finished() {
  // A finishing process can itself spawn processes that finish at the same
  // instant, so drain iteratively.
  while (!reap_list_.empty()) {
    const std::uint64_t pid = reap_list_.back();
    reap_list_.pop_back();
    auto it = processes_.find(pid);
    if (it != processes_.end() && it->second->finished) {
      processes_.erase(it);  // Task dtor destroys the (final-suspended) frame
    }
  }
}

std::uint64_t Engine::run() {
  std::uint64_t fired = 0;
  while (!heap_.empty()) {
    HeapEntry e = heap_.top();
    heap_.pop();
    ORDMA_CHECK(e.when.ns >= now_.ns);
    now_ = e.when;
    fire(e.node);
    delete e.node;
    ++fired;
    reap_finished();
  }
  return fired;
}

std::uint64_t Engine::run_until(SimTime until) {
  std::uint64_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    HeapEntry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    fire(e.node);
    delete e.node;
    ++fired;
    reap_finished();
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace ordma::sim
