// Small-buffer-optimised one-shot callback for the event engine.
//
// std::function<void()> heap-allocates for captures beyond ~2 words and
// drags in copy machinery the engine never uses. InlineFn stores the
// callable inline (up to kInlineSize bytes — sized so a captured
// net::Packet fits), falls back to the heap only for oversized captures,
// and supports move-only callables. It is deliberately immobile: timer
// nodes live at stable addresses in the engine's slab pool, so the
// callback is only ever emplaced, invoked and reset in place.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.h"

namespace ordma::sim {

class InlineFn {
 public:
  // Large enough for a lambda capturing a net::Packet (the fabric delivery
  // path) plus a couple of pointers. Packet carries its link-protocol
  // control words inline (net::CtrlAny, ~96 bytes) precisely so that no
  // path heap-allocates per packet — this buffer must keep fitting it or
  // the oversized-capture fallback below would put the allocation right
  // back. Kept as tight as that constraint allows: timer nodes are the
  // engine's unit of cache traffic, and the pure-timer microbenchmark
  // (bench_engine) moves with sizeof(TimerNode).
  static constexpr std::size_t kInlineSize = 224;

  InlineFn() = default;
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    ORDMA_CHECK(invoke_ == nullptr);  // one-shot: reset before reuse
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(static_cast<Fn*>(s)))(); };
      if constexpr (std::is_trivially_destructible_v<Fn>) {
        destroy_ = nullptr;
      } else {
        destroy_ = [](void* s) { std::launder(static_cast<Fn*>(s))->~Fn(); };
      }
    } else {
      // Oversized capture: one heap allocation, pointer stored inline.
      auto* p = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) Fn*(p);
      invoke_ = [](void* s) { (**std::launder(static_cast<Fn**>(s)))(); };
      destroy_ = [](void* s) { delete *std::launder(static_cast<Fn**>(s)); };
    }
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() {
    ORDMA_CHECK(invoke_ != nullptr);
    invoke_(storage_);
  }

  void reset() {
    if (destroy_) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  // Dispatch pointers come *before* the buffer: firing a node reads
  // invoke_ (and the enclosing TimerNode's links) far more often than the
  // buffer's tail, so the hot metadata must share the object's first cache
  // line instead of sitting kInlineSize bytes away.
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineSize];
};

}  // namespace ordma::sim
