// A contended resource with FIFO admission and busy-time accounting.
//
// Models CPUs, NIC firmware processors, DMA engines and disk arms: a fixed
// number of service slots, a FIFO of waiting coroutines, and an integral of
// slots-in-use over time from which utilisation is computed — the
// measurement behind the paper's CPU-utilisation figures (Fig. 4) and
// server-saturation results (Fig. 7).
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <string>

#include "common/assert.h"
#include "common/intrusive_list.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace ordma::sim {

class Resource {
 public:
  Resource(Engine& eng, unsigned capacity, std::string name = "resource")
      : eng_(eng), capacity_(capacity), name_(std::move(name)) {
    ORDMA_CHECK(capacity_ >= 1);
    // Trace track from the dotted name: "server.nic.fw" → process "server",
    // component "nic.fw" (undotted names become their own process).
    const auto dot = name_.find('.');
    if (dot == std::string::npos) {
      trace_track_.set(name_, "run");
      queue_track_.set(name_, "run.q");
    } else {
      trace_track_.set(name_.substr(0, dot), name_.substr(dot + 1));
      queue_track_.set(name_.substr(0, dot), name_.substr(dot + 1) + ".q");
    }
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;
  // Detach queued acquirers (see Event/Channel destructors).
  ~Resource() {
    while (waiters_.pop_front()) {
    }
  }

  const std::string& name() const { return name_; }
  unsigned capacity() const { return capacity_; }
  unsigned in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  // --- acquisition ------------------------------------------------------
  class AcquireAwaiter;
  AcquireAwaiter acquire() { return AcquireAwaiter(*this); }

  void release() {
    ORDMA_CHECK(in_use_ > 0);
    account();
    --in_use_;
    if (auto* w = waiters_.pop_front()) {
      // Hand the slot directly to the first waiter (slot counted as in use
      // from this instant — FIFO handoff, no barging).
      ++in_use_;
      w->timer = eng_.schedule_coro(Duration{0}, w->h);
    }
  }

  // Acquire a slot, hold it for `d`, release. The canonical way to charge
  // CPU time: co_await cpu.consume(cost).
  Task<void> consume(Duration d) {
    co_await acquire();
    ReleaseGuard guard(*this);
    co_await eng_.delay(d);
  }

  // consume() plus a trace span over the *hold* (service time, not queue
  // wait: holds of a capacity-1 resource are serialized, so their spans
  // never partially overlap on the track). `label`'s prefix picks the
  // attribution bucket (obs/attribution.h); `op` ties it to a file op.
  Task<void> consume(Duration d, obs::OpId op, const char* label) {
    const SimTime q0 = eng_.now();
    co_await acquire();
    ReleaseGuard guard(*this);
    const SimTime b = eng_.now();
    if (b.ns != q0.ns) obs::span(queue_track_, op, "queue/wait", q0, b);
    co_await eng_.delay(d);
    obs::span(trace_track_, op, label, b, eng_.now());
  }

  // One hold partitioned into separately-labelled sub-spans — for call
  // sites that charge several logically distinct costs in one slice (e.g.
  // UDP tx: syscall + per-fragment stack work + copy). The hold and its
  // total duration are identical whether tracing is on or off.
  struct Part {
    Duration d;
    const char* label;
  };
  template <std::size_t N>
  Task<void> consume_parts(obs::OpId op, std::array<Part, N> parts) {
    const SimTime q0 = eng_.now();
    co_await acquire();
    ReleaseGuard guard(*this);
    if (eng_.now().ns != q0.ns) {
      obs::span(queue_track_, op, "queue/wait", q0, eng_.now());
    }
    for (const Part& p : parts) {
      const SimTime b = eng_.now();
      co_await eng_.delay(p.d);
      obs::span(trace_track_, op, p.label, b, eng_.now());
    }
  }

  // Track for manually recorded spans over holds of this resource (e.g. a
  // disk access that computes its cost after acquiring the arm).
  obs::Track& trace_track() { return trace_track_; }
  // Companion "<component>.q" track carrying "queue/wait" spans: the time a
  // traced consumer spent queued for a slot. Queue spans categorize to
  // `other` in the Table-1 buckets (no double counting) but are first-class
  // input to the tail explainer (obs/explain.h). Waits may overlap, which
  // the recorder resolves with overflow lanes.
  obs::Track& queue_track() { return queue_track_; }

  // --- utilisation accounting -------------------------------------------
  // Total slot-seconds consumed so far (updated lazily).
  Duration busy_time() {
    account();
    return busy_;
  }
  // Utilisation of the whole resource over [t0, t1] given busy_time samples
  // b0, b1 taken at those instants.
  static double utilisation(Duration b0, Duration b1, SimTime t0, SimTime t1,
                            unsigned capacity) {
    const double elapsed = (t1 - t0).to_sec() * capacity;
    if (elapsed <= 0) return 0.0;
    return (b1 - b0).to_sec() / elapsed;
  }

  class ReleaseGuard {
   public:
    explicit ReleaseGuard(Resource& r) : r_(&r) {}
    ReleaseGuard(const ReleaseGuard&) = delete;
    ReleaseGuard& operator=(const ReleaseGuard&) = delete;
    ~ReleaseGuard() {
      if (r_) r_->release();
    }
    void dismiss() { r_ = nullptr; }

   private:
    Resource* r_;
  };

  class AcquireAwaiter {
   public:
    explicit AcquireAwaiter(Resource& r) : r_(r) {}
    AcquireAwaiter(const AcquireAwaiter&) = delete;
    AcquireAwaiter& operator=(const AcquireAwaiter&) = delete;
    ~AcquireAwaiter() {
      if (node_.linked()) {
        r_.waiters_.erase(&node_);          // gave up while queued
      } else if (node_.timer) {
        node_.timer->cancelled = true;       // granted but died: give back
        r_.release();
      }
    }

    bool await_ready() noexcept {
      if (r_.in_use_ < r_.capacity_ && r_.waiters_.empty()) {
        r_.account();
        ++r_.in_use_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      node_.h = h;
      r_.waiters_.push_back(&node_);
    }
    void await_resume() noexcept {
      // Slot already counted by release()'s handoff. Clearing the handle is
      // mandatory: the engine recycles TimerNodes after firing, so it must
      // never be touched once this coroutine has been resumed.
      node_.timer = nullptr;
    }

   private:
    friend class Resource;
    struct Node : ListNode {
      std::coroutine_handle<> h{};
      Engine::TimerNode* timer = nullptr;
    };
    Resource& r_;
    Node node_;
  };

 private:
  friend class AcquireAwaiter;

  void account() {
    const SimTime t = eng_.now();
    busy_ += Duration{(t - last_change_).ns * static_cast<std::int64_t>(
                          in_use_)};
    last_change_ = t;
  }

  Engine& eng_;
  unsigned capacity_;
  unsigned in_use_ = 0;
  std::string name_;
  obs::Track trace_track_;
  obs::Track queue_track_;
  Duration busy_{};
  SimTime last_change_{};
  IntrusiveList<AcquireAwaiter::Node> waiters_;
};

}  // namespace ordma::sim
