// Minimal intrusive doubly-linked list.
//
// Used for wait queues (awaiters must unlink themselves in O(1) when a
// coroutine frame is destroyed mid-wait) and for cache LRU chains.
#pragma once

#include <cstddef>

#include "common/assert.h"

namespace ordma {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  ListNode() = default;
  // Copying a node never copies its list membership.
  ListNode(const ListNode&) {}
  ListNode& operator=(const ListNode&) { return *this; }

  bool linked() const { return prev != nullptr; }

  void unlink() {
    ORDMA_CHECK(linked());
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

// T must derive from ListNode (possibly through a named hook member — see
// MemberHookList below for the member-hook variant).
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() { head_.prev = head_.next = &head_; }

  bool empty() const { return head_.next == &head_; }

  void push_back(T* x) {
    ListNode* n = x;
    ORDMA_CHECK(!n->linked());
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
    ++size_;
  }

  void push_front(T* x) {
    ListNode* n = x;
    ORDMA_CHECK(!n->linked());
    n->next = head_.next;
    n->prev = &head_;
    head_.next->prev = n;
    head_.next = n;
    ++size_;
  }

  T* front() const {
    return empty() ? nullptr : static_cast<T*>(head_.next);
  }
  T* back() const {
    return empty() ? nullptr : static_cast<T*>(head_.prev);
  }

  T* pop_front() {
    T* x = front();
    if (x) erase(x);
    return x;
  }
  T* pop_back() {
    T* x = back();
    if (x) erase(x);
    return x;
  }

  void erase(T* x) {
    static_cast<ListNode*>(x)->unlink();
    --size_;
  }

  // Move to MRU position (back).
  void touch(T* x) {
    erase(x);
    push_back(x);
  }

  std::size_t size() const { return size_; }

  // Iteration (forward). Safe against erasing the current element if the
  // next pointer is captured first; helpers below do that.
  template <typename F>
  void for_each(F&& f) const {
    for (ListNode* n = head_.next; n != &head_;) {
      ListNode* next = n->next;
      f(static_cast<T*>(n));
      n = next;
    }
  }

 private:
  ListNode head_;
  std::size_t size_ = 0;
};

}  // namespace ordma
