// CRC-32 (ISO-HDLC, reflected polynomial 0xEDB88320), slicing-by-8.
//
// This backs the end-to-end message checksum (rpc::checksum32). The
// previous implementation was byte-serial FNV-1a: a dependent multiply per
// byte (~4 cycles/byte of pure latency), which profiling showed was the
// single largest cost in a protocol sweep — every data block is
// checksummed at least twice (sealed by the sender, verified by the
// receiver). Slicing-by-8 breaks the byte dependency chain: eight table
// lookups per 8-byte word, all independent, ~0.5 cycles/byte.
//
// Why CRC rather than a faster hash: the checksum must be *chainable at
// arbitrary split points* — `crc32(a ++ b) == crc32(b, crc32(a))` for any
// split — because sealer and verifier walk the same byte stream in
// different chunks (e.g. an RDDP reply is sealed over header+results+data
// in one pass but verified over header+results then the separately-landed
// bulk bytes). CRC's register-update formulation gives that for free, and
// its linearity guarantees detection of any single corrupted byte and any
// burst shorter than 32 bits — strictly stronger than FNV for the
// single-flip corruptions the fault injector produces. The property is
// pinned by tests/wire_fuzz_test.cc.
//
// The tables are computed at compile time (constexpr), so there is no init
// ordering, no runtime generation, and the 8 KiB lands in .rodata shared
// across threads (read-only: no false sharing).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace ordma {

namespace detail {

struct Crc32Tables {
  std::uint32_t t[8][256];
};

constexpr Crc32Tables make_crc32_tables() {
  Crc32Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0);
    }
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int s = 1; s < 8; ++s) {
      tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xff];
    }
  }
  return tb;
}

inline constexpr Crc32Tables kCrc32 = make_crc32_tables();

}  // namespace detail

// Advance the CRC register `crc` over `data`. Plain register update with no
// pre/post inversion, so updates compose: crc32_update over a byte stream
// yields the same register whatever the chunking.
inline std::uint32_t crc32_update(std::uint32_t crc,
                                  std::span<const std::byte> data) {
  const auto& t = detail::kCrc32.t;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
            t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
            t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ std::to_integer<std::uint32_t>(*p++)) &
                            0xff];
  }
  return crc;
}

}  // namespace ordma
