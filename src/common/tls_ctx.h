// One cache line of per-thread simulation context.
//
// The isolation contract (run/runner.h) makes every cross-cutting install
// thread-local: the trace recorder, metrics registry, flight-recorder
// enable bit, log level/clock, and the CHECK failure hook. They used to be
// five separate `thread_local` objects scattered across translation units
// — so a hot path touching two of them (say a flight record inside a
// logged region) paid two TLS address resolutions landing on two distinct
// cache lines. Consolidating them into one aligned POD gives every
// consumer the same single line, and lets per-run objects cache `&tls()`
// once at construction (obs::flight::Ring does) so their hot path is one
// plain pointer indirection with no TLS machinery at all.
//
// This header is foundation-level: it may not include anything above
// common/, so the obs types appear as forward declarations only.
#pragma once

#include <cstdint>

namespace ordma::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace ordma::obs

namespace ordma::obs::ts {
class TimeseriesSink;
}  // namespace ordma::obs::ts

namespace ordma {

// Log verbosity, lazily initialized per thread from the process-wide
// default (see common/log.h, which owns the semantics).
enum class LogLevel { off = 0, error, info, trace };

struct alignas(64) TlsCtx {
  // --- tracing (obs/trace.h) — hot null check per span helper ---------
  obs::TraceRecorder* recorder = nullptr;
  std::uint32_t trace_epoch = 0;  // bumped per install; validates Track caches

  // --- flight recorder (obs/flight.h) — hot branch per record ---------
  bool flight_enabled = true;

  // --- logging (common/log.h) -----------------------------------------
  bool log_level_init = false;  // level picks up the default on first use
  LogLevel log_level = LogLevel::error;
  long long (*clock_fn)(const void*) = nullptr;  // simulated-time prefix
  const void* clock_ctx = nullptr;

  // --- metrics (obs/metrics.h) — snapshot-time only --------------------
  obs::MetricsRegistry* registry = nullptr;

  // --- time-series telemetry (obs/timeseries.h) — window-boundary only --
  obs::ts::TimeseriesSink* ts_sink = nullptr;

  // --- invariant checking (common/assert.h) — failure path only --------
  void (*check_failed_hook)() noexcept = nullptr;
};

inline thread_local TlsCtx g_tls_ctx;

inline TlsCtx& tls() { return g_tls_ctx; }

}  // namespace ordma
