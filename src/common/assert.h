// Lightweight always-on invariant checking.
//
// The simulator is deterministic; an invariant violation is a programming
// error, never an environmental condition, so we abort with context rather
// than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common/tls_ctx.h"

namespace ordma {

// tls().check_failed_hook is installed by the flight recorder
// (obs/flight.cc) while any ring is live: it writes a postmortem event
// dump before the abort so a CHECK failure leaves evidence of what the
// cluster was doing. Thread-local (part of the consolidated TLS context)
// so a failure on a parallel-runner worker (run/runner.h) dumps that
// worker's own rings.

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "ORDMA_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg && *msg ? " — " : "", msg ? msg : "");
  if (auto hook = tls().check_failed_hook) hook();
  std::abort();
}

}  // namespace ordma

#define ORDMA_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) ::ordma::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define ORDMA_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::ordma::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
