// Tiny leveled logger. Off by default; enabled per-run for debugging.
// Protocol tracing goes through this so benches stay quiet and fast.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace ordma {

enum class LogLevel { off = 0, error, info, trace };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::error;
    return lvl;
  }

  static void write(LogLevel lvl, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (lvl > level()) return;
    std::fprintf(stderr, "[%s] ", tag);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
  }
};

}  // namespace ordma

#define ORDMA_LOG_ERROR(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::error, tag, __VA_ARGS__)
#define ORDMA_LOG_INFO(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::info, tag, __VA_ARGS__)
#define ORDMA_LOG_TRACE(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::trace, tag, __VA_ARGS__)
