// Tiny leveled logger. Off by default; enabled per-run for debugging.
// Protocol tracing goes through this so benches stay quiet and fast.
//
// When a simulation clock is installed (the Engine installs itself on
// construction), every line is prefixed with the *simulated* time in
// microseconds in addition to the component tag, so ORDMA_LOG_TRACE output
// lines up with trace spans (obs/trace.h) recorded at the same instants.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace ordma {

enum class LogLevel { off = 0, error, info, trace };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::error;
    return lvl;
  }

  // Simulation clock hook: returns current simulated nanoseconds. Kept as a
  // plain function pointer + context so this header stays free of sim/
  // dependencies (sim::Engine installs itself; last constructed wins).
  using ClockFn = long long (*)(const void* ctx);
  static void set_clock(ClockFn fn, const void* ctx) {
    clock_fn() = fn;
    clock_ctx() = ctx;
  }
  static void clear_clock(const void* ctx) {
    if (clock_ctx() == ctx) {
      clock_fn() = nullptr;
      clock_ctx() = nullptr;
    }
  }

  static void write(LogLevel lvl, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (lvl > level()) return;
    if (ClockFn fn = clock_fn()) {
      const long long ns = fn(clock_ctx());
      std::fprintf(stderr, "[%6lld.%03lldus] [%s] ", ns / 1000,
                   ns % 1000, tag);
    } else {
      std::fprintf(stderr, "[%s] ", tag);
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
  }

 private:
  static ClockFn& clock_fn() {
    static ClockFn fn = nullptr;
    return fn;
  }
  static const void*& clock_ctx() {
    static const void* ctx = nullptr;
    return ctx;
  }
};

}  // namespace ordma

#define ORDMA_LOG_ERROR(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::error, tag, __VA_ARGS__)
#define ORDMA_LOG_INFO(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::info, tag, __VA_ARGS__)
#define ORDMA_LOG_TRACE(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::trace, tag, __VA_ARGS__)
