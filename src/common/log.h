// Tiny leveled logger. Off by default; enabled per-run for debugging.
// Protocol tracing goes through this so benches stay quiet and fast.
//
// When a simulation clock is installed (the Engine installs itself on
// construction), every line is prefixed with the *simulated* time in
// microseconds in addition to the component tag, so ORDMA_LOG_TRACE output
// lines up with trace spans (obs/trace.h) recorded at the same instants.
//
// Thread isolation (run/runner.h): the level and the clock hook are
// thread-local, like the net::packet.h buffer pool, so concurrent
// simulations on worker threads neither share a clock nor race on the
// level. The level has a process-wide *default* (set_default_level(),
// normally called by obs::ObsSession before any worker starts); each
// thread's level initializes from the default the first time that thread
// logs and can be overridden per thread via level(). The clock always
// reads the calling thread's engine, so a log line's simulated timestamp
// is the time of the simulation that emitted it.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "common/tls_ctx.h"

namespace ordma {

// LogLevel itself lives in common/tls_ctx.h (the per-thread level is part
// of the consolidated TLS context); this header owns its semantics.

class Log {
 public:
  // The calling thread's level (mutable reference). Lazily initialized
  // from the process-wide default on the thread's first use.
  static LogLevel& level() {
    TlsCtx& t = tls();
    if (!t.log_level_init) {
      t.log_level = static_cast<LogLevel>(
          default_level().load(std::memory_order_relaxed));
      t.log_level_init = true;
    }
    return t.log_level;
  }

  // Process-wide default for threads that have not logged yet. Call before
  // spawning workers (worker threads inherit it on first use); also sets
  // the calling thread's level.
  static void set_default_level(LogLevel lvl) {
    default_level().store(static_cast<int>(lvl), std::memory_order_relaxed);
    level() = lvl;
  }

  // Simulation clock hook: returns current simulated nanoseconds. Kept as a
  // plain function pointer + context so this header stays free of sim/
  // dependencies. sim::Engine installs itself per thread; the last engine
  // constructed *on this thread* wins, so a worker's log lines carry its
  // own simulation's time.
  using ClockFn = long long (*)(const void* ctx);
  static void set_clock(ClockFn fn, const void* ctx) {
    clock_fn() = fn;
    clock_ctx() = ctx;
  }
  static void clear_clock(const void* ctx) {
    if (clock_ctx() == ctx) {
      clock_fn() = nullptr;
      clock_ctx() = nullptr;
    }
  }

  static void write(LogLevel lvl, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (lvl > level()) return;
    if (ClockFn fn = clock_fn()) {
      const long long ns = fn(clock_ctx());
      std::fprintf(stderr, "[%6lld.%03lldus] [%s] ", ns / 1000,
                   ns % 1000, tag);
    } else {
      std::fprintf(stderr, "[%s] ", tag);
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
  }

 private:
  static std::atomic<int>& default_level() {
    static std::atomic<int> lvl{static_cast<int>(LogLevel::error)};
    return lvl;
  }
  // Clock hook storage is the consolidated TLS context (common/tls_ctx.h).
  static ClockFn& clock_fn() { return tls().clock_fn; }
  static const void*& clock_ctx() { return tls().clock_ctx; }
};

}  // namespace ordma

#define ORDMA_LOG_ERROR(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::error, tag, __VA_ARGS__)
#define ORDMA_LOG_INFO(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::info, tag, __VA_ARGS__)
#define ORDMA_LOG_TRACE(tag, ...) \
  ::ordma::Log::write(::ordma::LogLevel::trace, tag, __VA_ARGS__)
