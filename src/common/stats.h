// Statistics collection used by benchmarks and by instrumented resources:
// running mean/variance, reservoir-free percentile tracking via a sorted
// sample vector (workloads here are small enough to keep all samples), and
// fixed-bucket histograms for latency distributions.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace ordma {

// Welford running mean / variance, O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps every sample; exact percentiles. Fine for the sample counts in this
// project (<= a few million doubles).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  // q in [0, 1]; nearest-rank convention: the result is the smallest sample
  // x such that at least ceil(q * N) samples are <= x (rank clamped to
  // [1, N], so percentile(0) is the minimum and percentile(1) the maximum).
  // Every returned value is an actual sample — no interpolation.
  // Regression-pinned by tests/stats_test.cc.
  double percentile(double q) {
    ORDMA_CHECK(q >= 0.0 && q <= 1.0);
    if (xs_.empty()) return 0.0;
    sort();
    const auto n = static_cast<double>(xs_.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), xs_.size());
    return xs_[rank - 1];
  }
  double median() { return percentile(0.5); }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  std::vector<double> xs_;
  RunningStats stats_;
  bool sorted_ = true;
};

// Log-scaled latency histogram (power-of-two microsecond buckets).
//
// Bucket convention (regression-pinned by tests/stats_test.cc): bucket 0
// holds [0, 1) us; bucket b in [1, kBuckets-2] holds [2^(b-1), 2^b) us —
// lower edge inclusive, upper edge exclusive; the last bucket is the
// overflow [2^(kBuckets-2), inf). upper_edge_us(b) returns the exclusive
// upper edge of bucket b.
class LatencyHistogram {
 public:
  void add(Duration d) { add(d, 0); }

  // `exemplar` optionally tags the bucket this sample lands in with an
  // opaque reference (obs uses the trace op id of a *retained* op, so a
  // p99 bucket in the metrics JSON links to an inspectable trace). 0 means
  // "no exemplar"; the most recent non-zero exemplar per bucket wins.
  void add(Duration d, std::uint64_t exemplar) {
    const std::size_t b = bucket_for(d);
    ++buckets_[b];
    if (exemplar != 0) exemplars_[b] = exemplar;
    stats_.add(d.to_us());
  }

  // Bucket index a sample of duration d lands in. Branch-free bit math
  // rather than an edge-doubling loop: this runs per recorded sample, and
  // under trace sampling once per completed op.
  static constexpr std::size_t bucket_for(Duration d) {
    const double us = d.to_us();
    if (us < 1.0) return 0;  // also catches negatives, defensively
    const auto b =
        static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(us)));
    return b < kBuckets - 1 ? b : kBuckets - 1;
  }

  std::uint64_t count() const { return stats_.count(); }
  double mean_us() const { return stats_.mean(); }
  double max_us() const { return stats_.max(); }
  // Exact running sum of all recorded latencies, in microseconds. Together
  // with count() this lets a windowed consumer (obs/timeseries.h) recover
  // the per-window mean from two cumulative totals.
  double sum_us() const { return stats_.sum(); }

  static constexpr std::size_t bucket_count() { return kBuckets; }
  std::uint64_t bucket_value(std::size_t b) const { return buckets_[b]; }
  // Most recent exemplar tag recorded into bucket b (0 = none).
  std::uint64_t bucket_exemplar(std::size_t b) const { return exemplars_[b]; }
  static double upper_edge_us(std::size_t b) {
    if (b + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, static_cast<int>(b));  // 2^b
  }

  std::string to_string() const;

 private:
  static constexpr std::size_t kBuckets = 24;  // up to ~2^22 us ≈ 4 s
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t exemplars_[kBuckets] = {};
  RunningStats stats_;
};

// Nearest-rank quantile over a vector of LatencyHistogram bucket counts —
// the shape obs::MetricsRegistry::delta_snapshot() hands out per window.
// Returns the (exclusive) upper edge of the bucket holding the rank'th
// event, i.e. a conservative bound, matching the resolution the histogram
// actually has. The overflow bucket has no finite upper edge, so it reports
// its *lower* edge (2^(n-2) us) instead — every result is finite and
// JSON-safe. Zero total counts yield 0.
inline double histogram_quantile_from_counts(const std::uint64_t* counts,
                                             std::size_t n_buckets,
                                             double q) {
  ORDMA_CHECK(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) total += counts[b];
  if (total == 0) return 0.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    cum += counts[b];
    if (cum >= rank) {
      if (b + 1 >= n_buckets) {  // overflow bucket: clamp to its lower edge
        return std::ldexp(1.0, static_cast<int>(n_buckets) - 2);
      }
      return LatencyHistogram::upper_edge_us(b);
    }
  }
  return LatencyHistogram::upper_edge_us(n_buckets - 1);  // unreachable
}

// Simple event counters keyed by name (benchmark bookkeeping).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_ += by; }
  std::uint64_t get() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

}  // namespace ordma
