// Statistics collection used by benchmarks and by instrumented resources:
// running mean/variance, reservoir-free percentile tracking via a sorted
// sample vector (workloads here are small enough to keep all samples), and
// fixed-bucket histograms for latency distributions.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace ordma {

// Welford running mean / variance, O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps every sample; exact percentiles. Fine for the sample counts in this
// project (<= a few million doubles).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
    stats_.add(x);
  }

  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  // q in [0, 1]; nearest-rank.
  double percentile(double q) {
    ORDMA_CHECK(q >= 0.0 && q <= 1.0);
    if (xs_.empty()) return 0.0;
    sort();
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(xs_.size() - 1) + 0.5);
    return xs_[std::min(idx, xs_.size() - 1)];
  }
  double median() { return percentile(0.5); }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  std::vector<double> xs_;
  RunningStats stats_;
  bool sorted_ = true;
};

// Log-scaled latency histogram (power-of-two microsecond buckets).
class LatencyHistogram {
 public:
  void add(Duration d) {
    const double us = d.to_us();
    std::size_t b = 0;
    double edge = 1.0;
    while (b + 1 < kBuckets && us >= edge) {
      edge *= 2.0;
      ++b;
    }
    ++buckets_[b];
    stats_.add(us);
  }

  std::uint64_t count() const { return stats_.count(); }
  double mean_us() const { return stats_.mean(); }
  double max_us() const { return stats_.max(); }

  std::string to_string() const;

 private:
  static constexpr std::size_t kBuckets = 24;  // up to ~2^22 us ≈ 4 s
  std::uint64_t buckets_[kBuckets] = {};
  RunningStats stats_;
};

// Simple event counters keyed by name (benchmark bookkeeping).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_ += by; }
  std::uint64_t get() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

}  // namespace ordma
