// Minimal expected-style result type used across the protocol stacks.
//
// Errors in this codebase are *modelled protocol outcomes* (e.g. an ORDMA
// access fault, a missing file), not programming errors, so they are values,
// not exceptions. Programming errors use ORDMA_CHECK.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace ordma {

enum class Errc {
  ok = 0,
  not_found,         // no such file / inode / key
  already_exists,    // create over an existing name
  invalid_argument,  // malformed request
  no_space,          // disk or table full
  io_error,          // disk-level failure (fault injection)
  access_fault,      // ORDMA recoverable remote-memory access fault
  revoked,           // capability revoked
  not_supported,     // operation not implemented by this protocol variant
  stale,             // handle/delegation no longer valid
  timed_out,
};

inline const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::access_fault: return "access_fault";
    case Errc::revoked: return "revoked";
    case Errc::not_supported: return "not_supported";
    case Errc::stale: return "stale";
    case Errc::timed_out: return "timed_out";
  }
  return "unknown";
}

class Status {
 public:
  Status() : code_(Errc::ok) {}
  explicit Status(Errc code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Errc::ok; }
  Errc code() const { return code_; }
  const char* name() const { return errc_name(code_); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Errc code_;
};

template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Errc code) : v_(Status(code)) {             // NOLINT implicit
    ORDMA_CHECK(code != Errc::ok);
  }
  Result(Status s) : v_(s) { ORDMA_CHECK(!s.ok()); }  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Errc code() const {
    return ok() ? Errc::ok : std::get<Status>(v_).code();
  }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(v_);
  }

  T& value() & {
    ORDMA_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  const T& value() const& {
    ORDMA_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T&& value() && {
    ORDMA_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace ordma
