// Core value types shared by every module: simulated time, byte counts and
// rates. Simulated time is kept in integer nanoseconds so that event ordering
// is exact and runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <compare>

namespace ordma {

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

// A duration in simulated nanoseconds.
struct Duration {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration& operator+=(Duration o) { ns += o.ns; return *this; }
  constexpr Duration& operator-=(Duration o) { ns -= o.ns; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return {ns * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ns / k}; }

  constexpr double to_us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns) / 1e9; }
};

constexpr Duration nsec(std::int64_t n) { return {n}; }
constexpr Duration usec(std::int64_t n) { return {n * 1000}; }
constexpr Duration msec(std::int64_t n) { return {n * 1000 * 1000}; }
constexpr Duration sec(std::int64_t n) { return {n * 1000 * 1000 * 1000}; }
// Fractional microseconds, e.g. usec_f(2.5).
constexpr Duration usec_f(double us) {
  return {static_cast<std::int64_t>(us * 1e3 + 0.5)};
}

// An absolute point on the simulated clock.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return {ns + d.ns}; }
  constexpr Duration operator-(SimTime o) const { return {ns - o.ns}; }

  constexpr double to_us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double to_sec() const { return static_cast<double>(ns) / 1e9; }
};

// ---------------------------------------------------------------------------
// Bytes and rates
// ---------------------------------------------------------------------------

using Bytes = std::uint64_t;

constexpr Bytes KiB(std::uint64_t n) { return n << 10; }
constexpr Bytes MiB(std::uint64_t n) { return n << 20; }
constexpr Bytes GiB(std::uint64_t n) { return n << 30; }

// A transfer rate. Stored as bytes per second to make time-for-size exact
// in integer math.
struct Bandwidth {
  std::uint64_t bytes_per_sec = 0;

  // Time to move `n` bytes at this rate (rounded up to whole ns).
  constexpr Duration time_for(Bytes n) const {
    if (bytes_per_sec == 0) return {0};
    // n * 1e9 / rate, computed without overflow for n < ~16 GiB.
    const auto num = static_cast<__int128>(n) * 1'000'000'000;
    return {static_cast<std::int64_t>((num + bytes_per_sec - 1) /
                                      bytes_per_sec)};
  }

  constexpr double to_MBps() const {
    return static_cast<double>(bytes_per_sec) / 1e6;
  }
};

constexpr Bandwidth MBps(std::uint64_t n) { return {n * 1'000'000}; }
constexpr Bandwidth GBps(std::uint64_t n) { return {n * 1'000'000'000}; }
// Network link rates are usually quoted in bits.
constexpr Bandwidth Gbps(std::uint64_t n) { return {n * 1'000'000'000 / 8}; }

// Throughput observed over a window: bytes / elapsed, in MB/s.
constexpr double throughput_MBps(Bytes bytes, Duration elapsed) {
  if (elapsed.ns <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / elapsed.to_sec();
}

}  // namespace ordma
