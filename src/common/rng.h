// Deterministic, seedable random number generation.
//
// The simulator never uses std::random_device or global state: every
// stochastic component takes an explicit Rng so runs are reproducible and
// components can be given independent streams.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace ordma {

// SplitMix64 — used to expand a single seed into independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** — the main generator. Fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  // Derive an independent stream (e.g. one per host).
  Rng fork() { return Rng(next()); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    ORDMA_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    ORDMA_CHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ordma
