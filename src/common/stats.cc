#include "common/stats.h"

#include <cstdio>

namespace ordma {

std::string LatencyHistogram::to_string() const {
  std::string out;
  double lo = 0.0, hi = 1.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] != 0) {
      char line[128];
      std::snprintf(line, sizeof line, "[%8.0f, %8.0f) us: %llu\n", lo, hi,
                    static_cast<unsigned long long>(buckets_[b]));
      out += line;
    }
    lo = hi;
    hi *= 2.0;
  }
  return out;
}

}  // namespace ordma
