// Work-stealing parallel experiment runner.
//
// The paper's results are sweeps: every figure and table runs a grid of
// independent (protocol × block-size × client-count) simulations, and the
// torture harness replays a seed matrix. Each trial is a self-contained,
// bit-deterministic, single-threaded simulation — so trials can execute
// concurrently on a thread pool with *zero* effect on their results,
// provided nothing a simulation touches is shared between threads.
//
// The isolation contract (what makes parallel == serial, bit for bit):
//  * every process-wide observability install is thread-local — the
//    obs::trace recorder, obs::metrics registry, obs::flight ring list and
//    run label, common/log.h level/clock, and the common/assert.h failure
//    hook (all following the net::packet.h thread_local Pool precedent);
//  * a job builds everything it needs (Cluster, recorders, registries)
//    inside its closure, on the worker thread that runs it, and returns
//    plain data. net::Buffer and other pool-backed objects must not
//    escape the job: their free lists are thread-local too.
//
// Scheduling: job indices [0, n) are split into contiguous per-worker
// ranges; a worker pops from the front of its own range and, when empty,
// steals the back half of the largest remaining victim range (classic
// iteration stealing — coarse jobs make the CAS traffic irrelevant, but
// stealing keeps 8 workers busy when one range holds all the slow cells).
// Results land in a preallocated slot per index, so collection order is
// submission order regardless of which worker ran what.
//
// Serial fallback: jobs == 1 runs every job inline on the calling thread,
// in index order, spawning nothing — the exact pre-runner behavior. This
// is the --jobs=1 / ORDMA_JOBS=1 escape hatch, and what the determinism
// tests (tests/integration/parallel_determinism_test.cc) compare against.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace ordma::run {

namespace detail {

// One worker's contiguous slice of the job index space, packed
// begin<<32|end into a single atomic so pop/steal race through one CAS
// each. The owner pops from the front; thieves take the back half, so
// owner and thief only collide on the last item of a slice.
//
// Each Range is alone on its cache line: workers CAS their own range on
// every pop, and a thief scanning for victims loads all of them — if two
// ranges shared a line, every pop would invalidate the neighbour worker's
// line too (false sharing). The static_asserts pin the layout so a future
// member addition can't silently pack two ranges per line.
struct alignas(64) Range {
  std::atomic<std::uint64_t> bits{0};

  static constexpr std::uint64_t pack(std::uint32_t b, std::uint32_t e) {
    return (static_cast<std::uint64_t>(b) << 32) | e;
  }
  static constexpr std::uint32_t begin(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32);
  }
  static constexpr std::uint32_t end(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }
};
static_assert(alignof(Range) == 64,
              "steal ranges must be cache-line aligned");
static_assert(sizeof(Range) == 64,
              "adjacent steal ranges must not share a cache line");

}  // namespace detail

// max(1, std::thread::hardware_concurrency).
unsigned hardware_jobs();

// Worker count from the environment: ORDMA_JOBS if set and nonzero, else
// `fallback` (0 meaning hardware_jobs()).
unsigned env_jobs(unsigned fallback = 0);

// Worker count for a named harness knob (e.g. "TORTURE_JOBS"), falling
// back to ORDMA_JOBS, then to `fallback` (0 meaning hardware_jobs()).
unsigned env_jobs_named(const char* name, unsigned fallback = 0);

class ParallelRunner {
 public:
  // `jobs` == 0 means hardware_jobs().
  explicit ParallelRunner(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  // Execute fn(i) for every i in [0, n), each exactly once, distributed
  // across the pool; returns results in index order. fn must be invocable
  // concurrently from distinct threads for distinct indices (independent
  // simulations are; see the isolation contract above). Each job runs
  // under a flight-recorder run label "job<i>" unless it sets its own.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "map requires a result; use for_each for side effects");
    std::vector<R> out(n);
    run_indexed(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // Same distribution, no results.
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) {
    run_indexed(n, [&fn](std::size_t i) { fn(i); });
  }

 private:
  // Type-erased core: runs body(i) for all i in [0, n).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

  unsigned jobs_;
};

// One-shot helper: run fn(i) for i in [0, n) on `jobs` workers, results in
// index order.
template <typename Fn>
auto parallel_map(unsigned jobs, std::size_t n, Fn&& fn) {
  return ParallelRunner(jobs).map(n, std::forward<Fn>(fn));
}

}  // namespace ordma::run
