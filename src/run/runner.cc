#include "run/runner.h"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "obs/flight.h"

namespace ordma::run {

unsigned hardware_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

namespace {

// Parse a positive integer from env var `name`; 0 on unset/garbage.
unsigned env_uint(const char* name) {
  const char* v = std::getenv(name);
  if (!v || !*v) return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return static_cast<unsigned>(n);
}

}  // namespace

unsigned env_jobs(unsigned fallback) {
  if (unsigned n = env_uint("ORDMA_JOBS")) return n;
  return fallback == 0 ? hardware_jobs() : fallback;
}

unsigned env_jobs_named(const char* name, unsigned fallback) {
  if (unsigned n = env_uint(name)) return n;
  return env_jobs(fallback);
}

ParallelRunner::ParallelRunner(unsigned jobs)
    : jobs_(jobs == 0 ? hardware_jobs() : jobs) {}

namespace {

using detail::Range;

struct Pool {
  std::vector<Range> ranges;
  // First job exception wins; the rest of the pool drains without running
  // further bodies and the winner rethrows on the calling thread. `failed`
  // sits on its own cache line: every worker polls it between jobs, and
  // sharing a line with the ranges vector's header would let unrelated
  // writes on this struct turn each poll into a coherence miss.
  alignas(64) std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  explicit Pool(unsigned workers) : ranges(workers) {}

  void note_error() noexcept {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  }

  // Pop the front index of worker w's own range. False when empty.
  bool pop(unsigned w, std::uint32_t& idx) {
    Range& r = ranges[w];
    std::uint64_t v = r.bits.load(std::memory_order_acquire);
    while (Range::begin(v) < Range::end(v)) {
      const std::uint64_t next = Range::pack(Range::begin(v) + 1, Range::end(v));
      if (r.bits.compare_exchange_weak(v, next, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        idx = Range::begin(v);
        return true;
      }
    }
    return false;
  }

  // Steal the back half of the largest victim range into worker w's (empty)
  // range. False when every range is empty — pool is drained.
  bool steal(unsigned w) {
    while (true) {
      unsigned victim = w;
      std::uint32_t best = 0;
      for (unsigned v = 0; v < ranges.size(); ++v) {
        if (v == w) continue;
        const std::uint64_t bits = ranges[v].bits.load(std::memory_order_acquire);
        const std::uint32_t len = Range::end(bits) - Range::begin(bits);
        // A length-1 range has only its owner's next pop to give; taking
        // half of it would take nothing. Leave it alone.
        if (len >= 2 && len > best) {
          best = len;
          victim = v;
        }
      }
      if (victim == w) return false;

      Range& r = ranges[victim];
      std::uint64_t v = r.bits.load(std::memory_order_acquire);
      const std::uint32_t b = Range::begin(v), e = Range::end(v);
      if (e - b < 2 || b >= e) continue;  // shrank under us; rescan
      const std::uint32_t mid = b + (e - b + 1) / 2;
      if (!r.bits.compare_exchange_weak(v, Range::pack(b, mid),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        continue;  // lost the race; rescan
      }
      ranges[w].bits.store(Range::pack(mid, e), std::memory_order_release);
      return true;
    }
  }
};

void work(Pool& pool, unsigned w,
          const std::function<void(std::size_t)>& body) {
  do {
    std::uint32_t idx;
    while (pool.pop(w, idx)) {
      if (pool.failed.load(std::memory_order_acquire)) return;
      // Default label so a crashing job's postmortem is at least
      // distinguishable; jobs that know their (config, seed) identity
      // overwrite it with set_run_label().
      obs::flight::ScopedRunLabel label("job" + std::to_string(idx));
      try {
        body(idx);
      } catch (...) {
        pool.note_error();
        return;
      }
    }
  } while (pool.steal(w));
}

}  // namespace

void ParallelRunner::run_indexed(std::size_t n,
                                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  // Serial fallback: inline, in order, no threads, no labels — byte-for-byte
  // the pre-runner code path.
  if (jobs_ == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  ORDMA_CHECK(n <= 0xffffffffu);  // packed 32-bit index ranges
  const unsigned workers =
      static_cast<unsigned>(jobs_ < n ? jobs_ : n);  // never idle threads
  Pool pool(workers);
  // Contiguous initial split, remainder spread over the low workers —
  // deterministic, so the no-steal case touches each index exactly once in
  // a predictable place.
  const std::uint32_t total = static_cast<std::uint32_t>(n);
  const std::uint32_t base = total / workers, rem = total % workers;
  std::uint32_t at = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint32_t len = base + (w < rem ? 1 : 0);
    pool.ranges[w].bits.store(Range::pack(at, at + len),
                              std::memory_order_relaxed);
    at += len;
  }

  // The calling thread is worker 0; spawn only workers-1 threads.
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    threads.emplace_back([&pool, w, &body] { work(pool, w, body); });
  }
  work(pool, 0, body);
  for (std::thread& t : threads) t.join();

  if (pool.first_error) std::rethrow_exception(pool.first_error);
}

}  // namespace ordma::run
