// The server-local file system the NAS protocols export: inodes with block
// lists, a bitmap block allocator, hierarchical directories, and all data
// I/O staged through the buffer cache. Metadata structures are kept in
// memory (the paper's experiments never run metadata cold); data blocks live
// on the simulated disk and move through real cache memory, which is what
// the protocols export, DMA and ORDMA against.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fs/buffer_cache.h"
#include "fs/disk.h"
#include "host/host.h"
#include "sim/task.h"

namespace ordma::fs {

enum class FileType : std::uint8_t { regular, directory };

struct Attr {
  Ino ino = 0;
  FileType type = FileType::regular;
  Bytes size = 0;
  SimTime mtime{};
  std::uint32_t nlink = 1;
};

struct ServerFsConfig {
  Bytes disk_capacity = GiB(4);
  Bytes block_size = KiB(8);
  std::size_t cache_blocks = 4096;  // 32 MB at 8 KB blocks
};

class ServerFs {
 public:
  static constexpr Ino kRootIno = 1;

  ServerFs(host::Host& host, ServerFsConfig cfg = {});
  ServerFs(const ServerFs&) = delete;
  ServerFs& operator=(const ServerFs&) = delete;

  Bytes block_size() const { return cfg_.block_size; }
  BufferCache& cache() { return cache_; }
  Disk& disk() { return disk_; }

  // --- namespace -----------------------------------------------------------
  Result<Ino> create(Ino parent, const std::string& name, FileType type);
  Result<Ino> lookup(Ino parent, const std::string& name) const;
  // Unlink: frees blocks and invalidates cache entries (fires evict hooks).
  Status remove(Ino parent, const std::string& name);
  Result<std::vector<std::string>> readdir(Ino dir) const;

  Result<Attr> getattr(Ino ino) const;

  // --- data ------------------------------------------------------------------
  // `trace_op` charges miss-path disk I/O to a file op (obs/trace.h).
  // Read up to len bytes at off into out; returns bytes read (short at EOF).
  sim::Task<Result<Bytes>> read(Ino ino, Bytes off, std::span<std::byte> out,
                                obs::OpId trace_op = 0);
  // Write (extends the file as needed).
  sim::Task<Result<Bytes>> write(Ino ino, Bytes off,
                                 std::span<const std::byte> data,
                                 obs::OpId trace_op = 0);
  sim::Task<Status> truncate(Ino ino, Bytes new_size);

  // Fault a file's blocks into the cache (warm-cache experiment setup).
  sim::Task<Status> warm(Ino ino);

  // Resolve (ino, file block) → cache block, loading from disk if needed.
  // Exposed for the DAFS server, which exports cache blocks directly.
  sim::Task<Result<CacheBlock*>> get_cache_block(Ino ino, std::uint64_t fbn,
                                                 bool for_write,
                                                 obs::OpId trace_op = 0);

  // An ORDMA put landed directly in a resident cache block (DAFS
  // kPutCommit): fold in the metadata effects of a write — size extension
  // within the block and mtime — without touching the data path.
  Status note_put_commit(Ino ino, std::uint64_t fbn, Bytes valid_end);

  // --- attribute store -------------------------------------------------------
  // Marshalled per-inode attribute records in kernel memory, kept in sync
  // with every metadata mutation, so a NIC can serve getattr by remote
  // memory read (the ODAFS attribute extension of §4.2.2). Records embed
  // the inode number; a reader of a reused slot detects the mismatch and
  // falls back to RPC.
  static constexpr Bytes kAttrRecordSize = 64;
  mem::Vaddr attr_region() const { return attr_region_; }
  Bytes attr_region_len() const {
    return static_cast<Bytes>(attr_slots_) * kAttrRecordSize;
  }
  // Byte offset of this inode's record within the region.
  Result<Bytes> attr_offset(Ino ino) const;

  static void encode_attr_record(const Attr& a,
                                 std::span<std::byte> out /* 64 bytes */);
  // Fails (stale) if the record's embedded ino differs from `expect_ino`.
  static Result<Attr> decode_attr_record(std::span<const std::byte> rec,
                                         Ino expect_ino);

 private:
  struct Inode {
    Attr attr;
    std::vector<BlockNo> blocks;                 // file block → disk block
    std::map<std::string, Ino> dirents;          // directories only
  };

  Inode* inode(Ino ino);
  const Inode* inode(Ino ino) const;
  Result<BlockNo> alloc_block();
  void sync_attr(Ino ino);
  void release_attr_slot(Ino ino);

  host::Host& host_;
  ServerFsConfig cfg_;
  Disk disk_;
  BufferCache cache_;
  std::map<Ino, std::unique_ptr<Inode>> inodes_;
  Ino next_ino_ = kRootIno + 1;
  std::vector<BlockNo> free_blocks_;
  BlockNo next_fresh_block_ = 0;

  mem::Vaddr attr_region_ = 0;
  std::size_t attr_slots_ = 8192;
  std::map<Ino, std::size_t> attr_slot_;
  std::vector<std::size_t> free_attr_slots_;
  std::size_t next_attr_slot_ = 0;
};

}  // namespace ordma::fs
