#include "fs/disk.h"

#include <cstring>

namespace ordma::fs {

sim::Task<void> Disk::access(BlockNo b, obs::OpId trace_op) {
  const SimTime q0 = host_.engine().now();
  co_await arm_.acquire();
  sim::Resource::ReleaseGuard guard(arm_);
  if (host_.engine().now().ns != q0.ns) {
    obs::span(arm_.queue_track(), trace_op, "queue/wait", q0,
              host_.engine().now());
  }
  const auto& cm = host_.costs();
  Duration cost = cm.disk_bw.time_for(block_size_);
  if (b != next_sequential_) cost += cm.disk_seek;
  next_sequential_ = b + 1;
  if (faults_) {
    // Service-time outlier (remapped sector, thermal recalibration, ...).
    cost = cost + faults_->disk_latency_spike();
  }
  const SimTime begin = host_.engine().now();
  co_await host_.engine().delay(cost);
  obs::span(arm_.trace_track(), trace_op, "disk/io", begin,
            host_.engine().now());
}

sim::Task<Status> Disk::read(BlockNo b, std::span<std::byte> out,
                             obs::OpId trace_op) {
  if (b >= num_blocks_ || out.size() > block_size_) {
    co_return Status(Errc::invalid_argument);
  }
  co_await access(b, trace_op);
  ++reads_;
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::disk_read,
                        b);
  if (inject_failures_ > 0) {
    --inject_failures_;
    co_return Status(Errc::io_error);
  }
  if (faults_ && faults_->disk_transient_error()) {
    ++transient_errors_;
    co_return Status(Errc::io_error);
  }
  auto it = blocks_.find(b);
  if (it == blocks_.end()) {
    std::memset(out.data(), 0, out.size());
  } else {
    std::memcpy(out.data(), it->second.data(), out.size());
  }
  co_return Status::Ok();
}

sim::Task<Status> Disk::write(BlockNo b, std::span<const std::byte> data,
                              obs::OpId trace_op) {
  if (b >= num_blocks_ || data.size() > block_size_) {
    co_return Status(Errc::invalid_argument);
  }
  co_await access(b, trace_op);
  ++writes_;
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::disk_write,
                        b);
  if (inject_failures_ > 0) {
    --inject_failures_;
    co_return Status(Errc::io_error);
  }
  if (faults_ && faults_->disk_transient_error()) {
    ++transient_errors_;
    co_return Status(Errc::io_error);
  }
  auto& blk = blocks_[b];
  if (blk.size() != block_size_) blk.assign(block_size_, std::byte{0});
  std::memcpy(blk.data(), data.data(), data.size());
  co_return Status::Ok();
}

}  // namespace ordma::fs
