#include "fs/server_fs.h"

#include <algorithm>

namespace ordma::fs {

ServerFs::ServerFs(host::Host& host, ServerFsConfig cfg)
    : host_(host),
      cfg_(cfg),
      disk_(host, cfg.disk_capacity, cfg.block_size),
      cache_(host, disk_, cfg.cache_blocks, cfg.block_size) {
  attr_region_ = host_.map_new(host_.kernel_as(), attr_region_len());
  auto root = std::make_unique<Inode>();
  root->attr.ino = kRootIno;
  root->attr.type = FileType::directory;
  inodes_.emplace(kRootIno, std::move(root));
  sync_attr(kRootIno);
}

// --- attribute store ---------------------------------------------------------

namespace {
void put_be(std::span<std::byte> out, std::size_t off, std::uint64_t v,
            int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[off + i] =
        static_cast<std::byte>((v >> (8 * (bytes - 1 - i))) & 0xff);
  }
}
std::uint64_t get_be(std::span<const std::byte> in, std::size_t off,
                     int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v = (v << 8) | std::to_integer<std::uint64_t>(in[off + i]);
  }
  return v;
}
constexpr std::uint32_t kAttrMagic = 0xA77Au;
}  // namespace

void ServerFs::encode_attr_record(const Attr& a, std::span<std::byte> out) {
  ORDMA_CHECK(out.size() >= kAttrRecordSize);
  std::fill(out.begin(), out.begin() + kAttrRecordSize, std::byte{0});
  put_be(out, 0, kAttrMagic, 4);
  put_be(out, 4, a.ino, 8);
  put_be(out, 12, static_cast<std::uint64_t>(a.type), 4);
  put_be(out, 16, a.size, 8);
  put_be(out, 24, static_cast<std::uint64_t>(a.mtime.ns), 8);
  put_be(out, 32, a.nlink, 4);
}

Result<Attr> ServerFs::decode_attr_record(std::span<const std::byte> rec,
                                          Ino expect_ino) {
  if (rec.size() < kAttrRecordSize) return Errc::invalid_argument;
  if (get_be(rec, 0, 4) != kAttrMagic) return Errc::stale;
  Attr a;
  a.ino = get_be(rec, 4, 8);
  if (a.ino != expect_ino) return Errc::stale;  // slot was reused
  a.type = static_cast<FileType>(get_be(rec, 12, 4));
  a.size = get_be(rec, 16, 8);
  a.mtime = SimTime{static_cast<std::int64_t>(get_be(rec, 24, 8))};
  a.nlink = static_cast<std::uint32_t>(get_be(rec, 32, 4));
  return a;
}

Result<Bytes> ServerFs::attr_offset(Ino ino) const {
  auto it = attr_slot_.find(ino);
  if (it == attr_slot_.end()) return Errc::not_found;
  return static_cast<Bytes>(it->second) * kAttrRecordSize;
}

void ServerFs::sync_attr(Ino ino) {
  const Inode* node = inode(ino);
  ORDMA_CHECK(node != nullptr);
  auto it = attr_slot_.find(ino);
  std::size_t slot;
  if (it != attr_slot_.end()) {
    slot = it->second;
  } else if (!free_attr_slots_.empty()) {
    slot = free_attr_slots_.back();
    free_attr_slots_.pop_back();
    attr_slot_.emplace(ino, slot);
  } else if (next_attr_slot_ < attr_slots_) {
    slot = next_attr_slot_++;
    attr_slot_.emplace(ino, slot);
  } else {
    return;  // region full: this inode simply has no exported record
  }
  std::byte rec[kAttrRecordSize];
  encode_attr_record(node->attr, rec);
  ORDMA_CHECK(host_.kernel_as()
                  .write(attr_region_ + slot * kAttrRecordSize, rec)
                  .ok());
}

void ServerFs::release_attr_slot(Ino ino) {
  auto it = attr_slot_.find(ino);
  if (it == attr_slot_.end()) return;
  // Zero the record so stale readers see neither the magic nor the ino.
  const std::byte zeros[kAttrRecordSize] = {};
  ORDMA_CHECK(host_.kernel_as()
                  .write(attr_region_ + it->second * kAttrRecordSize, zeros)
                  .ok());
  free_attr_slots_.push_back(it->second);
  attr_slot_.erase(it);
}

ServerFs::Inode* ServerFs::inode(Ino ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}
const ServerFs::Inode* ServerFs::inode(Ino ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

Result<BlockNo> ServerFs::alloc_block() {
  if (!free_blocks_.empty()) {
    const BlockNo b = free_blocks_.back();
    free_blocks_.pop_back();
    return b;
  }
  if (next_fresh_block_ < disk_.num_blocks()) return next_fresh_block_++;
  return Errc::no_space;
}

Result<Ino> ServerFs::create(Ino parent, const std::string& name,
                             FileType type) {
  Inode* dir = inode(parent);
  if (!dir || dir->attr.type != FileType::directory) return Errc::not_found;
  if (name.empty() || name.find('/') != std::string::npos) {
    return Errc::invalid_argument;
  }
  if (dir->dirents.count(name)) return Errc::already_exists;

  const Ino ino = next_ino_++;
  auto node = std::make_unique<Inode>();
  node->attr.ino = ino;
  node->attr.type = type;
  node->attr.mtime = host_.engine().now();
  inodes_.emplace(ino, std::move(node));
  dir->dirents.emplace(name, ino);
  dir->attr.mtime = host_.engine().now();
  sync_attr(ino);
  sync_attr(parent);
  return ino;
}

Result<Ino> ServerFs::lookup(Ino parent, const std::string& name) const {
  const Inode* dir = inode(parent);
  if (!dir || dir->attr.type != FileType::directory) return Errc::not_found;
  auto it = dir->dirents.find(name);
  if (it == dir->dirents.end()) return Errc::not_found;
  return it->second;
}

Status ServerFs::remove(Ino parent, const std::string& name) {
  Inode* dir = inode(parent);
  if (!dir || dir->attr.type != FileType::directory) {
    return Status(Errc::not_found);
  }
  auto it = dir->dirents.find(name);
  if (it == dir->dirents.end()) return Status(Errc::not_found);
  Inode* node = inode(it->second);
  ORDMA_CHECK(node != nullptr);
  if (node->attr.type == FileType::directory && !node->dirents.empty()) {
    return Status(Errc::invalid_argument);  // non-empty directory
  }
  // Drop cache blocks (fires evict hooks → ODAFS revocation) and free disk.
  for (std::uint64_t fbn = 0; fbn < node->blocks.size(); ++fbn) {
    cache_.invalidate(CacheKey{node->attr.ino, fbn});
    free_blocks_.push_back(node->blocks[fbn]);
  }
  release_attr_slot(node->attr.ino);
  inodes_.erase(node->attr.ino);
  dir->dirents.erase(it);
  dir->attr.mtime = host_.engine().now();
  sync_attr(dir->attr.ino);
  return Status::Ok();
}

Result<std::vector<std::string>> ServerFs::readdir(Ino ino) const {
  const Inode* dir = inode(ino);
  if (!dir || dir->attr.type != FileType::directory) return Errc::not_found;
  std::vector<std::string> names;
  names.reserve(dir->dirents.size());
  for (const auto& [name, child] : dir->dirents) names.push_back(name);
  return names;
}

Result<Attr> ServerFs::getattr(Ino ino) const {
  const Inode* node = inode(ino);
  if (!node) return Errc::stale;
  return node->attr;
}

sim::Task<Result<CacheBlock*>> ServerFs::get_cache_block(Ino ino,
                                                         std::uint64_t fbn,
                                                         bool for_write,
                                                         obs::OpId trace_op) {
  Inode* node = inode(ino);
  if (!node) co_return Errc::stale;
  const bool fresh = fbn >= node->blocks.size();
  if (fresh) {
    if (!for_write) co_return Errc::invalid_argument;  // read past blocks
    while (node->blocks.size() <= fbn) {
      auto b = alloc_block();
      if (!b.ok()) co_return b.status();
      node->blocks.push_back(b.value());
    }
  }
  co_return co_await cache_.get(CacheKey{ino, fbn}, node->blocks[fbn],
                                /*zero_fill=*/fresh, trace_op);
}

sim::Task<Result<Bytes>> ServerFs::read(Ino ino, Bytes off,
                                        std::span<std::byte> out,
                                        obs::OpId trace_op) {
  Inode* node = inode(ino);
  if (!node) co_return Errc::stale;
  if (off >= node->attr.size) co_return Bytes{0};
  const Bytes len = std::min<Bytes>(out.size(), node->attr.size - off);

  Bytes done = 0;
  while (done < len) {
    const Bytes pos = off + done;
    const std::uint64_t fbn = pos / cfg_.block_size;
    const Bytes boff = pos % cfg_.block_size;
    const Bytes chunk = std::min<Bytes>(len - done, cfg_.block_size - boff);
    auto blk = co_await get_cache_block(ino, fbn, /*for_write=*/false,
                                        trace_op);
    if (!blk.ok()) co_return blk.status();
    CacheBlock* b = blk.value();
    BufferCache::pin(*b);
    ORDMA_CHECK(host_.kernel_as()
                    .read(b->va + boff, out.subspan(done, chunk))
                    .ok());
    BufferCache::unpin(*b);
    done += chunk;
  }
  co_return done;
}

sim::Task<Result<Bytes>> ServerFs::write(Ino ino, Bytes off,
                                         std::span<const std::byte> data,
                                         obs::OpId trace_op) {
  Inode* node = inode(ino);
  if (!node) co_return Errc::stale;
  if (node->attr.type != FileType::regular) co_return Errc::invalid_argument;

  Bytes done = 0;
  while (done < data.size()) {
    const Bytes pos = off + done;
    const std::uint64_t fbn = pos / cfg_.block_size;
    const Bytes boff = pos % cfg_.block_size;
    const Bytes chunk =
        std::min<Bytes>(data.size() - done, cfg_.block_size - boff);
    auto blk = co_await get_cache_block(ino, fbn, /*for_write=*/true,
                                        trace_op);
    if (!blk.ok()) co_return blk.status();
    CacheBlock* b = blk.value();
    BufferCache::pin(*b);
    ORDMA_CHECK(host_.kernel_as()
                    .write(b->va + boff, data.subspan(done, chunk))
                    .ok());
    cache_.mark_dirty(*b);
    BufferCache::unpin(*b);
    done += chunk;
  }
  node->attr.size = std::max<Bytes>(node->attr.size, off + data.size());
  node->attr.mtime = host_.engine().now();
  sync_attr(ino);
  co_return done;
}

Status ServerFs::note_put_commit(Ino ino, std::uint64_t fbn,
                                 Bytes valid_end) {
  Inode* node = inode(ino);
  if (!node) return Status(Errc::stale);
  if (node->attr.type != FileType::regular) {
    return Status(Errc::invalid_argument);
  }
  if (fbn >= node->blocks.size() || valid_end > cfg_.block_size) {
    return Status(Errc::invalid_argument);  // puts only hit resident blocks
  }
  node->attr.size = std::max<Bytes>(node->attr.size,
                                    fbn * cfg_.block_size + valid_end);
  node->attr.mtime = host_.engine().now();
  sync_attr(ino);
  return Status::Ok();
}

sim::Task<Status> ServerFs::truncate(Ino ino, Bytes new_size) {
  Inode* node = inode(ino);
  if (!node) co_return Status(Errc::stale);
  const auto keep_blocks =
      (new_size + cfg_.block_size - 1) / cfg_.block_size;
  while (node->blocks.size() > keep_blocks) {
    const std::uint64_t fbn = node->blocks.size() - 1;
    cache_.invalidate(CacheKey{ino, fbn});
    free_blocks_.push_back(node->blocks.back());
    node->blocks.pop_back();
  }
  node->attr.size = new_size;
  node->attr.mtime = host_.engine().now();
  sync_attr(ino);
  co_return Status::Ok();
}

sim::Task<Status> ServerFs::warm(Ino ino) {
  Inode* node = inode(ino);
  if (!node) co_return Status(Errc::stale);
  for (std::uint64_t fbn = 0; fbn < node->blocks.size(); ++fbn) {
    auto blk = co_await get_cache_block(ino, fbn, /*for_write=*/false);
    if (!blk.ok()) co_return blk.status();
  }
  co_return Status::Ok();
}

}  // namespace ordma::fs
