#include "fs/buffer_cache.h"

namespace ordma::fs {

namespace {
// Media transients (fault plan) are retried a bounded number of times at
// this layer — the classic block-layer requeue — before the error surfaces
// to the protocol above.
constexpr unsigned kDiskAttempts = 3;
}  // namespace

BufferCache::BufferCache(host::Host& host, Disk& disk,
                         std::size_t capacity_blocks, Bytes block_size)
    : host_(host),
      disk_(disk),
      capacity_(capacity_blocks),
      block_size_(block_size),
      blocks_(capacity_blocks) {
  ORDMA_CHECK(block_size % mem::kPageSize == 0 ||
              mem::kPageSize % block_size == 0);
  ORDMA_CHECK(block_size == disk.block_size());
  for (auto& b : blocks_) {
    b.va = host_.map_new(host_.kernel_as(), block_size_);
    free_.push_back(&b);
  }
}

CacheBlock* BufferCache::peek(CacheKey key) {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second;
}

sim::Task<Result<CacheBlock*>> BufferCache::evict_one(obs::OpId trace_op) {
  // First unpinned block from the LRU end.
  CacheBlock* victim = nullptr;
  lru_.for_each([&](CacheBlock* cand) {
    if (!victim && cand->pin == 0) victim = cand;
  });
  if (!victim) co_return Errc::no_space;  // everything pinned

  // Detach before any await so a concurrent eviction cannot pick the same
  // victim; the hook (ODAFS revocation) also fires before the write-back
  // await, so no ORDMA can observe the block once we commit to reuse.
  if (evict_hook_) evict_hook_(*victim);
  map_.erase(victim->key);
  lru_.erase(victim);
  victim->valid = false;
  victim->export_seg = 0;

  if (victim->dirty) {
    std::vector<std::byte> data(block_size_);
    ORDMA_CHECK(host_.kernel_as().read(victim->va, data).ok());
    Status st = Status::Ok();
    for (unsigned attempt = 0; attempt < kDiskAttempts; ++attempt) {
      st = co_await disk_.write(victim->disk_block, data, trace_op);
      if (st.ok() || st.code() != Errc::io_error) break;
    }
    if (!st.ok()) co_return st;
    victim->dirty = false;
  }
  co_return victim;
}

sim::Task<Result<CacheBlock*>> BufferCache::get(CacheKey key,
                                                BlockNo disk_block,
                                                bool zero_fill,
                                                obs::OpId trace_op) {
  if (auto* b = peek(key)) {
    ++hits_;
    host_.flight().record(host_.engine().now().ns,
                          obs::flight::Ev::cache_hit, key.ino, key.fbn);
    lru_.touch(b);
    co_return b;
  }
  ++misses_;
  host_.flight().record(host_.engine().now().ns, obs::flight::Ev::cache_miss,
                        key.ino, key.fbn);

  CacheBlock* b = free_.pop_front();
  if (!b) {
    auto evicted = co_await evict_one(trace_op);
    if (!evicted.ok()) co_return evicted.status();
    b = evicted.value();
  }

  b->key = key;
  b->disk_block = disk_block;
  b->dirty = false;
  b->valid_len = block_size_;
  if (zero_fill) {
    const std::vector<std::byte> zeros(block_size_);
    ORDMA_CHECK(host_.kernel_as().write(b->va, zeros).ok());
  } else {
    std::vector<std::byte> data(block_size_);
    Status st = Status::Ok();
    for (unsigned attempt = 0; attempt < kDiskAttempts; ++attempt) {
      st = co_await disk_.read(disk_block, data, trace_op);
      if (st.ok() || st.code() != Errc::io_error) break;
    }
    if (!st.ok()) {
      free_.push_back(b);
      co_return st;
    }
    ORDMA_CHECK(host_.kernel_as().write(b->va, data).ok());
  }
  b->valid = true;

  // The block may have been faulted in concurrently while we read the disk;
  // keep the established entry (it may already be pinned or exported) and
  // return our freshly loaded descriptor to the free list.
  if (auto* existing = peek(key)) {
    b->valid = false;
    free_.push_back(b);
    lru_.touch(existing);
    co_return existing;
  }
  map_[key] = b;
  lru_.push_back(b);
  co_return b;
}

void BufferCache::invalidate(CacheKey key) {
  auto* b = peek(key);
  if (!b) return;
  ORDMA_CHECK_MSG(b->pin == 0, "invalidate of pinned cache block");
  if (evict_hook_) evict_hook_(*b);
  map_.erase(key);
  lru_.erase(b);
  b->valid = false;
  b->dirty = false;
  b->export_seg = 0;
  free_.push_back(b);
}

sim::Task<Status> BufferCache::sync() {
  std::vector<CacheBlock*> dirty;
  lru_.for_each([&](CacheBlock* b) {
    if (b->dirty) dirty.push_back(b);
  });
  for (CacheBlock* b : dirty) {
    std::vector<std::byte> data(block_size_);
    ORDMA_CHECK(host_.kernel_as().read(b->va, data).ok());
    Status st = Status::Ok();
    for (unsigned attempt = 0; attempt < kDiskAttempts; ++attempt) {
      st = co_await disk_.write(b->disk_block, data);
      if (st.ok() || st.code() != Errc::io_error) break;
    }
    if (!st.ok()) co_return st;
    b->dirty = false;
  }
  co_return Status::Ok();
}

}  // namespace ordma::fs
