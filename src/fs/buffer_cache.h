// The server file cache: fixed-size blocks of kernel memory fronting the
// disk, LRU replacement, write-back of dirty blocks, and hooks that tell the
// ODAFS server when a block's memory is about to be reused — the event that
// must revoke exported memory references (§4.2: "invalid ORDMAs are caught
// at the server NIC").
//
// Cache blocks live at stable kernel virtual addresses holding real bytes;
// the NIC exports/DMAs these pages directly.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "common/result.h"
#include "fs/disk.h"
#include "host/host.h"
#include "sim/task.h"

namespace ordma::fs {

using Ino = std::uint64_t;

struct CacheKey {
  Ino ino = 0;
  std::uint64_t fbn = 0;  // file block number
  bool operator==(const CacheKey&) const = default;
};
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return std::hash<std::uint64_t>()(k.ino * 0x9E3779B97F4A7C15ull ^ k.fbn);
  }
};

struct CacheBlock : ListNode {
  CacheKey key;
  mem::Vaddr va = 0;        // stable kernel address of the block's memory
  BlockNo disk_block = 0;   // backing location
  bool valid = false;
  bool dirty = false;
  int pin = 0;              // held by in-flight operations
  Bytes valid_len = 0;      // bytes meaningful in this block (tail blocks)

  // ODAFS bookkeeping: the NIC segment currently exporting this block
  // (0 = not exported). Owned by the DAFS server, carried here so the
  // eviction path can find it.
  std::uint64_t export_seg = 0;
};

class BufferCache {
 public:
  // `capacity_blocks` blocks of `block_size` bytes each, carved out of the
  // host's kernel address space once at construction.
  BufferCache(host::Host& host, Disk& disk, std::size_t capacity_blocks,
              Bytes block_size);
  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  Bytes block_size() const { return block_size_; }
  std::size_t capacity() const { return capacity_; }

  // Called just before a block's memory is reused or dropped; the ODAFS
  // server revokes the block's exported segment here.
  using EvictHook = std::function<void(CacheBlock&)>;
  void set_evict_hook(EvictHook h) { evict_hook_ = std::move(h); }

  // Find or load the block. `disk_block` is the backing block to read on a
  // miss (the fs layer resolves file→disk mapping). If `zero_fill`, a miss
  // materialises a zeroed block without touching the disk (fresh writes).
  // The returned pointer stays valid while the caller holds `pin`.
  // `trace_op` charges any miss-path disk I/O to a file op (obs/trace.h).
  sim::Task<Result<CacheBlock*>> get(CacheKey key, BlockNo disk_block,
                                     bool zero_fill, obs::OpId trace_op = 0);

  // Pin/unpin across await points.
  static void pin(CacheBlock& b) { ++b.pin; }
  static void unpin(CacheBlock& b) {
    ORDMA_CHECK(b.pin > 0);
    --b.pin;
  }

  void mark_dirty(CacheBlock& b) { b.dirty = true; }

  // Drop a block (e.g. file truncation/removal). Write-back is skipped —
  // the data is going away. Fires the evict hook.
  void invalidate(CacheKey key);

  // Write all dirty blocks back to disk.
  sim::Task<Status> sync();

  // Lookup without faulting in (nullptr on miss); does not touch LRU.
  CacheBlock* peek(CacheKey key);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t resident() const { return map_.size(); }

  mem::AddressSpace& space() { return host_.kernel_as(); }

 private:
  sim::Task<Result<CacheBlock*>> evict_one(obs::OpId trace_op);

  host::Host& host_;
  Disk& disk_;
  std::size_t capacity_;
  Bytes block_size_;
  std::vector<CacheBlock> blocks_;           // fixed arena of descriptors
  IntrusiveList<CacheBlock> free_;           // never-used descriptors
  IntrusiveList<CacheBlock> lru_;            // valid blocks, front = LRU
  std::unordered_map<CacheKey, CacheBlock*, CacheKeyHash> map_;
  EvictHook evict_hook_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ordma::fs
