// Block-device model: a single arm (seek cost for non-sequential access) and
// a streaming transfer rate, storing real bytes lazily. Most of the paper's
// experiments run with warm server caches, but cold-start paths, write-back
// and the ORDMA-miss economics (§4.2.2: disk latency masks fallback cost)
// need a real device underneath.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "fault/fault.h"
#include "host/host.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace ordma::fs {

using BlockNo = std::uint64_t;

class Disk {
 public:
  Disk(host::Host& host, Bytes capacity, Bytes block_size)
      : host_(host),
        block_size_(block_size),
        num_blocks_(capacity / block_size),
        arm_(host.engine(), 1, host.name() + ".disk") {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  Bytes block_size() const { return block_size_; }
  BlockNo num_blocks() const { return num_blocks_; }

  // `trace_op` ties the arm hold's "disk/io" span to a file op
  // (obs/trace.h; 0 = untraced).
  sim::Task<Status> read(BlockNo b, std::span<std::byte> out,
                         obs::OpId trace_op = 0);
  sim::Task<Status> write(BlockNo b, std::span<const std::byte> data,
                          obs::OpId trace_op = 0);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  // --- fault injection ------------------------------------------------------
  // Fail the next `n` I/Os with Errc::io_error (after their simulated
  // latency, like a real medium error). Used by failure-path tests.
  void inject_failures(std::uint64_t n) { inject_failures_ = n; }
  std::uint64_t injected_remaining() const { return inject_failures_; }

  // Probabilistic transient errors and service-time outliers from a
  // deterministic plan (not owned; must outlive the disk).
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }
  std::uint64_t transient_errors() const { return transient_errors_; }

 private:
  sim::Task<void> access(BlockNo b, obs::OpId trace_op);

  host::Host& host_;
  Bytes block_size_;
  BlockNo num_blocks_;
  sim::Resource arm_;
  BlockNo next_sequential_ = ~BlockNo{0};
  std::unordered_map<BlockNo, std::vector<std::byte>> blocks_;
  fault::FaultInjector* faults_ = nullptr;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t inject_failures_ = 0;
  std::uint64_t transient_errors_ = 0;
};

}  // namespace ordma::fs
