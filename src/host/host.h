// A simulated end-system host: one CPU (a contended resource), physical
// memory with a frame allocator, kernel and user address spaces, and an
// attached NIC. All protocol CPU charges flow through cpu(), which is where
// utilisation (Fig. 4) and server saturation (Fig. 7) come from.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/units.h"
#include "host/cost_model.h"
#include "mem/address_space.h"
#include "mem/physical_memory.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace ordma::nic {
class Nic;
}

namespace ordma::host {

struct HostConfig {
  Bytes memory = MiB(512);  // scaled from the paper's 2 GB (see DESIGN.md)
};

class Host {
 public:
  Host(sim::Engine& eng, std::string name, const CostModel& cm,
       HostConfig cfg = {});
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Engine& engine() { return eng_; }
  const CostModel& costs() const { return cm_; }
  const std::string& name() const { return name_; }

  sim::Resource& cpu() { return cpu_; }
  // This host's flight-recorder ring (obs/flight.h). Components attached to
  // the host (NIC, RPC endpoints, caches, disk) record their breadcrumbs
  // here; record() is a branch plus a few stores, so call freely.
  obs::flight::Ring& flight() { return flight_; }
  mem::PhysicalMemory& phys() { return phys_; }
  mem::FrameAllocator& frames() { return frames_; }
  mem::AddressSpace& kernel_as() { return kernel_as_; }
  mem::AddressSpace& user_as() { return user_as_; }

  void attach_nic(nic::Nic* n) { nic_ = n; }
  nic::Nic& nic() {
    ORDMA_CHECK_MSG(nic_, "host has no NIC attached");
    return *nic_;
  }

  // --- CPU charging helpers ----------------------------------------------
  sim::Task<void> cpu_consume(Duration d) { return cpu_.consume(d); }
  // Traced variant: records a span labelled `label` over the hold,
  // attributed to file op `op` (see obs/trace.h; no-op when tracing is
  // disabled).
  sim::Task<void> cpu_consume(Duration d, obs::OpId op, const char* label) {
    return cpu_.consume(d, op, label);
  }
  // Charge a memory copy of n bytes to this CPU.
  sim::Task<void> copy(Bytes n) { return cpu_.consume(cm_.copy_cost(n)); }
  sim::Task<void> copy(Bytes n, obs::OpId op) {
    return cpu_.consume(cm_.copy_cost(n), op, "byte/copy");
  }

  // Deliver an interrupt: the handler runs on this CPU after the interrupt
  // entry cost. Handlers that do more work charge it themselves.
  void post_interrupt(std::function<sim::Task<void>()> handler);

  // --- memory management --------------------------------------------------
  // Allocate `len` bytes (rounded up to pages) of fresh, zeroed memory
  // mapped at a new virtual address in `as`. Aborts on out-of-memory (the
  // experiments size memory explicitly).
  mem::Vaddr map_new(mem::AddressSpace& as, Bytes len);
  // Unmap a map_new'd range and return its frames to the allocator.
  void unmap(mem::AddressSpace& as, mem::Vaddr va, Bytes len);

  // --- utilisation sampling ----------------------------------------------
  struct CpuSample {
    Duration busy;
    SimTime at;
  };
  CpuSample sample_cpu() { return {cpu_.busy_time(), eng_.now()}; }
  static double utilisation(const CpuSample& a, const CpuSample& b) {
    return sim::Resource::utilisation(a.busy, b.busy, a.at, b.at, 1);
  }

 private:
  sim::Engine& eng_;
  std::string name_;
  const CostModel& cm_;
  sim::Resource cpu_;
  obs::flight::Ring flight_;
  mem::PhysicalMemory phys_;
  mem::FrameAllocator frames_;
  mem::AddressSpace kernel_as_;
  mem::AddressSpace user_as_;
  nic::Nic* nic_ = nullptr;
  mem::Vaddr next_va_ = mem::kPageSize;  // keep 0 unmapped
};

}  // namespace ordma::host
