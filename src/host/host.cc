#include "host/host.h"

#include "nic/nic.h"

namespace ordma::host {

Host::Host(sim::Engine& eng, std::string name, const CostModel& cm,
           HostConfig cfg)
    : eng_(eng),
      name_(std::move(name)),
      cm_(cm),
      cpu_(eng, 1, name_ + ".cpu"),
      flight_(name_),
      phys_(cfg.memory / mem::kPageSize),
      frames_(0, cfg.memory / mem::kPageSize),
      kernel_as_(phys_),
      user_as_(phys_) {}

Host::~Host() = default;

void Host::post_interrupt(std::function<sim::Task<void>()> handler) {
  eng_.spawn([](Host& h, std::function<sim::Task<void>()> handler)
                 -> sim::Task<void> {
    // Ambient (op-0) span: interrupts are coalesced across datagrams, so
    // no single file op owns the entry cost; the attributor charges it to
    // whichever op's envelope it falls inside.
    co_await h.cpu_consume(h.costs().cpu_interrupt, 0, "pkt/interrupt");
    co_await handler();
  }(*this, std::move(handler)));
}

mem::Vaddr Host::map_new(mem::AddressSpace& as, Bytes len) {
  const auto pages = (len + mem::kPageSize - 1) / mem::kPageSize;
  const mem::Vaddr va = next_va_;
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto frame = frames_.allocate();
    ORDMA_CHECK_MSG(frame.ok(), "host out of physical memory");
    as.map(mem::page_of(va) + i, frame.value());
  }
  next_va_ += pages * mem::kPageSize;
  return va;
}

void Host::unmap(mem::AddressSpace& as, mem::Vaddr va, Bytes len) {
  const auto pages = (len + mem::kPageSize - 1) / mem::kPageSize;
  for (std::uint64_t i = 0; i < pages; ++i) {
    frames_.free(as.unmap(mem::page_of(va) + i));
  }
}

}  // namespace ordma::host
