// Every simulated cost in one place.
//
// Values are calibrated against the paper's own measurements on its testbed
// (1 GHz Pentium III, ServerWorks LE, LANai9.2 on 64/66 PCI, FreeBSD 4.6):
//   * Table 2 — GM 1-byte RTT 23 us / 244 MB/s; VI poll 23 us, block 53 us;
//     UDP/Ethernet 80 us / 166 MB/s.
//   * Table 3 — 4 KB read response: RPC in-line 128/153 us, RPC direct
//     144 us, ORDMA 92 us.
//   * §5.1 — standard NFS peaks at 65 MB/s (client CPU saturated by copies);
//     NFS pre-posting 235 MB/s; DAFS/NFS-hybrid 230 MB/s.
// tests/calibration_test.cc asserts the Table 2/3 targets against this model.
#pragma once

#include "common/units.h"

namespace ordma::host {

struct CostModel {
  // --- host CPU ------------------------------------------------------------
  // Interrupt entry/exit + handler dispatch (FreeBSD 4.6 on PIII).
  Duration cpu_interrupt = usec_f(6.0);
  // Context switch / blocked-thread wakeup.
  Duration cpu_schedule = usec_f(5.0);
  // Trap into the kernel and back.
  Duration cpu_syscall = usec_f(1.5);
  // Memory copy: PIII + PC133 SDRAM sustains ~350 MB/s for large copies.
  Bandwidth mem_copy_bw = MBps(350);
  // Per-copy fixed cost (cache effects, call overhead).
  Duration copy_fixed = usec_f(0.3);

  Duration copy_cost(Bytes n) const {
    return copy_fixed + mem_copy_bw.time_for(n);
  }

  // --- NIC (LANai9.2, 200 MHz) ----------------------------------------------
  // Host PIO doorbell + descriptor write to start a NIC operation.
  Duration nic_doorbell = usec_f(1.5);
  // Firmware processing per transmitted / received fragment.
  Duration nic_tx_frag = usec_f(2.3);
  Duration nic_rx_frag = usec_f(2.3);
  // DMA engine: setup per transfer + PCI streaming rate (paper: 450 MB/s).
  Duration nic_dma_setup = usec_f(1.15);
  Bandwidth nic_dma_bw = MBps(450);
  // Servicing a GM get/put request in firmware. Low enough that the NIC
  // alone saturates a 2 Gb/s link with 4 KB gets (Fig. 7's ODAFS line);
  // the rest of ORDMA's 92 us response time (Table 3) is client-side.
  Duration nic_get_service = usec_f(8.0);
  Duration nic_put_service = usec_f(8.0);
  // TPT/TLB (§4.1): hit lookup on the NIC; miss interrupts the host, which
  // loads the entry by programmed I/O. Paper: "about 9 ms" per miss.
  Duration nic_tlb_hit = usec_f(0.3);
  Duration nic_tlb_miss = msec(9);
  // Capability MAC verification in firmware (SipHash over ~29 bytes at
  // 200 MHz). The paper's prototype skipped this; ours can too (flag below).
  Duration nic_cap_verify = usec_f(0.8);
  bool capabilities_enabled = true;

  // --- VI completion (§5, Table 2: poll 23 us vs block 53 us RTT) ----------
  // Polling descriptor pickup.
  Duration vi_poll_pickup = usec_f(1.4);
  // Blocking pickup: together with cpu_interrupt this puts the blocking
  // completion ≈ (53-23)/2 us above polling per side (Table 2).
  Duration vi_block_wakeup = usec_f(10.5);

  // --- UDP/IP over Ethernet emulation (Table 2: 80 us RTT, 166 MB/s) -------
  // Send-side stack traversal per datagram (socket + UDP + IP).
  Duration udp_tx_dgram = usec_f(7.0);
  // Per transmitted fragment after the first (IP fragmentation loop).
  Duration udp_tx_frag = usec_f(25.0);
  // Receive-side IP input + reassembly work per fragment.
  Duration udp_rx_frag = usec_f(6.0);
  // Socket wakeup & delivery per datagram.
  Duration udp_rx_dgram = usec_f(6.0);

  // --- RPC and file protocol processing -------------------------------------
  // Client: build/issue an RPC request (marshalling charged separately).
  Duration rpc_client_issue = usec_f(3.0);
  // Client: match & complete an RPC response.
  Duration rpc_client_complete = usec_f(2.5);
  // Server: dispatch a request to its handler (demux, thread handoff).
  Duration rpc_server_dispatch = usec_f(3.0);
  // NFS per-request protocol handler (vnode layer, cache lookup, reply).
  Duration nfs_server_proc = usec_f(6.0);
  Duration nfs_client_proc = usec_f(6.0);
  // Standard NFS receive staging: socket-buffer mbuf chain → buffer cache.
  // Much slower than a straight bcopy (per-mbuf traversal on FreeBSD 4.6);
  // this is the copy chain that pins standard NFS at ~65 MB/s (§5.1).
  Bandwidth nfs_stage_bw = MBps(88);
  // DAFS kernel-server per-request handler. Calibrated so a polling DAFS
  // server saturates at ~170 MB/s with 4 KB direct reads (§5.2) and the
  // 4 KB direct-RPC response time lands at ~144 us (Table 3).
  Duration dafs_server_proc = usec_f(14.0);
  Duration dafs_client_proc = usec_f(3.0);
  // User-level client file cache: lookup on a hit; block allocation,
  // replacement and completion handling on a miss.
  Duration cache_hit_proc = usec_f(1.0);
  Duration cache_miss_proc = usec_f(4.0);
  // Registering / deregistering one buffer with the NIC (on-the-fly pinning,
  // §3: "a performance penalty in the data transfer path").
  Duration memory_register = usec_f(4.0);
  Duration memory_deregister = usec_f(2.0);
  // Pre-posting one receive buffer descriptor to the NIC (RDDP-RPC, §3.2).
  Duration nic_prepost = usec_f(1.5);

  // --- disk (server storage; most experiments run warm-cache) --------------
  Duration disk_seek = msec(5);
  Bandwidth disk_bw = MBps(40);

  // --- wire framing ----------------------------------------------------------
  // GM fragments: 4 KB MTU, ~96 B of link+GM headers per fragment. With
  // 4 KB payload per 4192-byte wire unit a 2 Gb/s link yields 244 MB/s —
  // exactly the paper's GM/VI bandwidth.
  Bytes gm_mtu = 4096;
  Bytes gm_header = 96;
  // Ethernet emulation: 9 KB MTU. Fragment payload capacity leaves room
  // for an 8 KB NFS page plus RPC/UDP headers in a single fragment (§5.1's
  // "8KB IP fragments" carry 8 KB of file data each).
  Bytes eth_mtu = 8832;
  Bytes eth_header = 82;  // 14 eth + 20 ip + 8 udp + 40 slack/ifg equivalent
};

}  // namespace ordma::host
