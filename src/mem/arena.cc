#include "mem/arena.h"

#include <utility>

namespace ordma::mem {

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  // Advance through retained chunks (a reset arena reuses them in order)
  // until one fits the aligned request; append a fresh chunk when none
  // does. Alignment up to the chunk's natural alignment is guaranteed by
  // re-running the bump logic against the chosen chunk.
  for (;;) {
    if (!chunks_.empty() && cur_ + 1 < chunks_.size()) {
      ++cur_;
    } else {
      std::size_t cap = chunks_.empty() ? kMinChunk
                        : chunks_.back().cap >= kMaxChunk
                            ? kMaxChunk
                            : chunks_.back().cap * 2;
      if (cap < size + align) cap = size + align;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(cap), cap});
      reserved_ += cap;
      cur_ = chunks_.size() - 1;
    }
    Chunk& c = chunks_[cur_];
    ptr_ = c.mem.get();
    end_ = c.mem.get() + c.cap;
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr_);
    p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + size <= reinterpret_cast<std::uintptr_t>(end_)) {
      ptr_ = reinterpret_cast<std::byte*>(p + size);
      used_ += size;
      return reinterpret_cast<void*>(p);
    }
    // Chunk too small for this request (can only happen while skipping
    // through small retained chunks); loop appends a big-enough one.
  }
}

void Arena::reset() {
  cur_ = 0;
  used_ = 0;
  if (chunks_.empty()) {
    ptr_ = end_ = nullptr;
  } else {
    ptr_ = chunks_[0].mem.get();
    end_ = ptr_ + chunks_[0].cap;
  }
}

namespace {

thread_local Arena* g_current = nullptr;

// Reusable arenas for this thread, stack-ordered so nested ScopedSimArena
// scopes each get their own. A worker thread's pool dies with the thread;
// the main thread's lives for the process — both are bounded by the
// deepest nesting ever seen (in practice: one).
thread_local std::vector<std::unique_ptr<Arena>>* g_pool = nullptr;

std::vector<std::unique_ptr<Arena>>& pool() {
  thread_local std::vector<std::unique_ptr<Arena>> p;
  g_pool = &p;
  return p;
}

}  // namespace

Arena* current_arena() { return g_current; }

Arena* install_arena(Arena* a) { return std::exchange(g_current, a); }

ScopedSimArena::ScopedSimArena() {
  auto& p = pool();
  if (p.empty()) {
    arena_ = new Arena();
  } else {
    arena_ = p.back().release();
    p.pop_back();
  }
  prev_ = install_arena(arena_);
}

ScopedSimArena::~ScopedSimArena() {
  install_arena(prev_);
  arena_->reset();
  pool().push_back(std::unique_ptr<Arena>(arena_));
}

}  // namespace ordma::mem
