#include "mem/physical_memory.h"

#include <algorithm>
#include <cstring>

namespace ordma::mem {

PhysicalMemory::Frame& PhysicalMemory::materialise(Pfn f) const {
  ORDMA_CHECK_MSG(f < num_frames_, "physical frame out of range");
  auto& slot = frames_[f];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(std::byte{0});
  }
  return *slot;
}

void PhysicalMemory::write(Paddr addr, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const Pfn f = frame_of(addr + done);
    const std::uint64_t off = page_offset(addr + done);
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - done, kPageSize - off);
    Frame& frame = materialise(f);
    std::memcpy(frame.data() + off, data.data() + done, chunk);
    done += chunk;
  }
}

void PhysicalMemory::read(Paddr addr, std::span<std::byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const Pfn f = frame_of(addr + done);
    const std::uint64_t off = page_offset(addr + done);
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageSize - off);
    ORDMA_CHECK_MSG(f < num_frames_, "physical frame out of range");
    auto it = frames_.find(f);
    if (it == frames_.end()) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, it->second->data() + off, chunk);
    }
    done += chunk;
  }
}

std::span<std::byte> PhysicalMemory::frame_data(Pfn f) {
  Frame& frame = materialise(f);
  return {frame.data(), frame.size()};
}

std::span<const std::byte> PhysicalMemory::frame_data(Pfn f) const {
  Frame& frame = materialise(f);
  return {frame.data(), frame.size()};
}

}  // namespace ordma::mem
