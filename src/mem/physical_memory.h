// Simulated host physical memory holding real bytes.
//
// Frames are 4 KiB and allocated lazily on first write, so a "2 GB" host
// costs only what the workload actually touches. Every DMA, memcpy and file
// block in the simulation reads and writes these bytes for real — data
// integrity is testable end-to-end.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/assert.h"
#include "common/units.h"

namespace ordma::mem {

using Paddr = std::uint64_t;  // physical byte address
using Vaddr = std::uint64_t;  // virtual byte address
using Pfn = std::uint64_t;    // physical frame number
using Vpn = std::uint64_t;    // virtual page number

inline constexpr Bytes kPageSize = 4096;
inline constexpr std::uint64_t kPageShift = 12;

constexpr Pfn frame_of(Paddr a) { return a >> kPageShift; }
constexpr Vpn page_of(Vaddr a) { return a >> kPageShift; }
constexpr std::uint64_t page_offset(std::uint64_t a) {
  return a & (kPageSize - 1);
}
constexpr Paddr frame_base(Pfn f) { return f << kPageShift; }

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint64_t num_frames)
      : num_frames_(num_frames) {}
  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  std::uint64_t num_frames() const { return num_frames_; }
  Bytes size() const { return num_frames_ * kPageSize; }

  // Byte-granularity access; may cross frame boundaries. Reads of frames
  // never written return zeroes (fresh memory).
  void write(Paddr addr, std::span<const std::byte> data);
  void read(Paddr addr, std::span<std::byte> out) const;

  // Direct frame access for page-sized operations (DMA fast path).
  std::span<std::byte> frame_data(Pfn f);
  std::span<const std::byte> frame_data(Pfn f) const;

  // Number of frames actually backed by host RAM (observability).
  std::size_t frames_touched() const { return frames_.size(); }

 private:
  using Frame = std::array<std::byte, kPageSize>;
  Frame& materialise(Pfn f) const;

  std::uint64_t num_frames_;
  mutable std::unordered_map<Pfn, std::unique_ptr<Frame>> frames_;
};

}  // namespace ordma::mem
