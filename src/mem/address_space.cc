#include "mem/address_space.h"

#include <algorithm>

namespace ordma::mem {

void AddressSpace::map(Vpn vpn, Pfn pfn, bool writable) {
  auto [it, inserted] = table_.try_emplace(vpn);
  ORDMA_CHECK_MSG(inserted, "vpn already mapped");
  it->second.pfn = pfn;
  it->second.present = true;
  it->second.writable = writable;
}

Pfn AddressSpace::unmap(Vpn vpn) {
  auto it = table_.find(vpn);
  ORDMA_CHECK_MSG(it != table_.end(), "unmap of unmapped vpn");
  ORDMA_CHECK_MSG(!it->second.pinned(), "unmap of pinned page");
  const Pfn f = it->second.pfn;
  table_.erase(it);
  return f;
}

const PageEntry* AddressSpace::lookup(Vpn vpn) const {
  auto it = table_.find(vpn);
  return it == table_.end() ? nullptr : &it->second;
}

PageEntry* AddressSpace::lookup_mutable(Vpn vpn) {
  auto it = table_.find(vpn);
  return it == table_.end() ? nullptr : &it->second;
}

void AddressSpace::pin(Vpn vpn) {
  auto* e = lookup_mutable(vpn);
  ORDMA_CHECK_MSG(e && e->present, "pin of non-resident page");
  ++e->pin_count;
}

void AddressSpace::unpin(Vpn vpn) {
  auto* e = lookup_mutable(vpn);
  ORDMA_CHECK_MSG(e && e->pin_count > 0, "unbalanced unpin");
  --e->pin_count;
}

void AddressSpace::lock(Vpn vpn) {
  auto* e = lookup_mutable(vpn);
  ORDMA_CHECK_MSG(e, "lock of unmapped page");
  e->locked = true;
}

void AddressSpace::unlock(Vpn vpn) {
  auto* e = lookup_mutable(vpn);
  ORDMA_CHECK_MSG(e, "unlock of unmapped page");
  e->locked = false;
}

void AddressSpace::protect(Vpn vpn, bool writable) {
  auto* e = lookup_mutable(vpn);
  ORDMA_CHECK_MSG(e, "protect of unmapped page");
  e->writable = writable;
}

Result<Paddr> AddressSpace::translate(Vaddr va, bool for_write) const {
  const auto* e = lookup(page_of(va));
  if (!e || !e->present) return Errc::access_fault;
  if (for_write && !e->writable) return Errc::access_fault;
  return frame_base(e->pfn) + page_offset(va);
}

Status AddressSpace::write(Vaddr va, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t off = page_offset(va + done);
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - done, kPageSize - off);
    auto pa = translate(va + done, /*for_write=*/true);
    if (!pa.ok()) return pa.status();
    phys_.write(pa.value(), data.subspan(done, chunk));
    done += chunk;
  }
  return Status::Ok();
}

Status AddressSpace::read(Vaddr va, std::span<std::byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t off = page_offset(va + done);
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageSize - off);
    auto pa = translate(va + done, /*for_write=*/false);
    if (!pa.ok()) return pa.status();
    phys_.read(pa.value(), out.subspan(done, chunk));
    done += chunk;
  }
  return Status::Ok();
}

Status AddressSpace::pin_range(Vaddr va, Bytes len) {
  if (len == 0) return Status::Ok();
  const Vpn first = page_of(va);
  const Vpn last = page_of(va + len - 1);
  // Validate first so failure has no side effects.
  for (Vpn v = first; v <= last; ++v) {
    const auto* e = lookup(v);
    if (!e || !e->present) return Status(Errc::access_fault);
  }
  for (Vpn v = first; v <= last; ++v) pin(v);
  return Status::Ok();
}

void AddressSpace::unpin_range(Vaddr va, Bytes len) {
  if (len == 0) return;
  const Vpn first = page_of(va);
  const Vpn last = page_of(va + len - 1);
  for (Vpn v = first; v <= last; ++v) unpin(v);
}

}  // namespace ordma::mem
