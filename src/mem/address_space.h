// Virtual address spaces and frame allocation.
//
// Three roles in the reproduction:
//  * kernel/user address spaces on each host (buffer cache pages, user
//    buffers that must be pinned for DMA — §3 of the paper);
//  * the ODAFS server's private 64-bit NIC-only address space, where file
//    cache blocks are mapped "for long periods of time" (§4.2.1);
//  * the source of translations loaded into the NIC TPT (§2.1).
//
// Pages carry residency, protection, pin and lock state. Pinned pages cannot
// be reclaimed; locked pages fault ORDMA accesses (recoverable, §4).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mem/physical_memory.h"

namespace ordma::mem {

struct PageEntry {
  Pfn pfn = 0;
  bool present = false;
  bool writable = true;
  bool locked = false;  // transiently locked by the host (e.g. during I/O)
  int pin_count = 0;    // pinned for DMA / NIC TLB residency

  bool pinned() const { return pin_count > 0; }
};

// Free-frame pool shared by everything on one host. Keeps the "minimum free
// page threshold" the paper's OS must maintain for NIC TLB pinning (§4.1).
class FrameAllocator {
 public:
  FrameAllocator(Pfn first_frame, std::uint64_t count)
      : next_(first_frame), end_(first_frame + count) {}

  Result<Pfn> allocate() {
    if (!free_list_.empty()) {
      const Pfn f = free_list_.back();
      free_list_.pop_back();
      return f;
    }
    if (next_ < end_) return next_++;
    return Errc::no_space;
  }

  void free(Pfn f) { free_list_.push_back(f); }

  std::uint64_t free_frames() const {
    return (end_ - next_) + free_list_.size();
  }

 private:
  Pfn next_;
  Pfn end_;
  std::vector<Pfn> free_list_;
};

class AddressSpace {
 public:
  explicit AddressSpace(PhysicalMemory& phys) : phys_(phys) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // --- mapping ----------------------------------------------------------
  void map(Vpn vpn, Pfn pfn, bool writable = true);
  // Unmap; returns the frame that was mapped (caller returns it to the
  // allocator if appropriate). Fails a check if pinned.
  Pfn unmap(Vpn vpn);
  bool is_mapped(Vpn vpn) const { return table_.count(vpn) != 0; }

  const PageEntry* lookup(Vpn vpn) const;
  PageEntry* lookup_mutable(Vpn vpn);

  // --- page state ---------------------------------------------------------
  void pin(Vpn vpn);
  void unpin(Vpn vpn);
  void lock(Vpn vpn);
  void unlock(Vpn vpn);
  void protect(Vpn vpn, bool writable);

  // --- translation & data access ------------------------------------------
  // Translate one byte address; respects presence and (for writes)
  // protection. The NIC and CPU both go through this.
  Result<Paddr> translate(Vaddr va, bool for_write) const;

  // Copy data in/out through the page table (may span pages). Fails if any
  // page is missing/protected; partial progress is not rolled back (matches
  // real memcpy-through-VM semantics; callers pre-validate).
  Status write(Vaddr va, std::span<const std::byte> data);
  Status read(Vaddr va, std::span<std::byte> out) const;

  // Pin/unpin a byte range (registration helper). Fails (without side
  // effects) if any page is unmapped.
  Status pin_range(Vaddr va, Bytes len);
  void unpin_range(Vaddr va, Bytes len);

  std::size_t mapped_pages() const { return table_.size(); }
  PhysicalMemory& phys() { return phys_; }

 private:
  PhysicalMemory& phys_;
  std::unordered_map<Vpn, PageEntry> table_;
};

// A registered memory region: the product of "registering and pinning
// user-level buffers" (§3). RAII: deregistration unpins.
class Registration {
 public:
  Registration(AddressSpace& as, Vaddr va, Bytes len)
      : as_(&as), va_(va), len_(len) {
    ORDMA_CHECK(as.pin_range(va, len).ok());
  }
  Registration(Registration&& o) noexcept
      : as_(std::exchange(o.as_, nullptr)), va_(o.va_), len_(o.len_) {}
  Registration& operator=(Registration&& o) noexcept {
    if (this != &o) {
      reset();
      as_ = std::exchange(o.as_, nullptr);
      va_ = o.va_;
      len_ = o.len_;
    }
    return *this;
  }
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;
  ~Registration() { reset(); }

  Vaddr va() const { return va_; }
  Bytes len() const { return len_; }

 private:
  void reset() {
    if (as_) {
      as_->unpin_range(va_, len_);
      as_ = nullptr;
    }
  }
  AddressSpace* as_;
  Vaddr va_ = 0;
  Bytes len_ = 0;
};

}  // namespace ordma::mem
