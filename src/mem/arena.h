// Per-simulation bump arena.
//
// A sweep runs thousands of short-lived simulations; each one builds an
// Engine (timer slabs, calendar heap, bucket table, ring), a Cluster and a
// pile of vectors, then throws it all away. Doing that through the process
// allocator has two costs the profiler sees: malloc/free cycles per cell,
// and — under the parallel runner — every worker contending on one shared
// allocator. The arena removes both: allocation is a pointer bump into
// thread-private chunks, deallocation is free (reset() rewinds the bump
// pointer and keeps the chunks), and a worker's arena is reused from one
// sweep cell to the next so steady state touches the process allocator
// zero times per cell.
//
// Contract:
//  * Arena::allocate never returns memory to the system until the Arena
//    dies; reset() makes every previous allocation invalid but keeps the
//    chunk storage for reuse.
//  * An Arena is single-threaded (one simulation = one thread, the same
//    isolation contract as net::packet.h's Buffer pool).
//  * Objects with non-trivial destructors placed in arena memory must be
//    destroyed explicitly before reset()/destruction — the arena only
//    hands out bytes (sim::Engine's ~Engine sweeps its timer slabs).
//
// Installation mirrors obs::trace: a thread-local current arena that
// consumers (sim::Engine) resolve once at construction. ScopedSimArena is
// the harness-facing RAII: it checks a reusable arena out of a per-thread
// pool, installs it, and on scope exit resets it and returns it. Harnesses
// wrap each sweep cell in one (bench/bench_util.h, tests/torture_test.cc);
// code built without an installed arena (unit tests constructing a bare
// Engine) falls back to an engine-owned arena and behaves identically —
// pinned by tests/arena_test.cc and the determinism suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/assert.h"

namespace ordma::mem {

class Arena {
 public:
  // First chunk size; subsequent chunks double up to kMaxChunk. Oversized
  // requests get a dedicated chunk of exactly their size.
  static constexpr std::size_t kMinChunk = 64 * 1024;
  static constexpr std::size_t kMaxChunk = 1024 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align) {
    ORDMA_CHECK(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(ptr_);
    p = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + size <= reinterpret_cast<std::uintptr_t>(end_)) {
      ptr_ = reinterpret_cast<std::byte*>(p + size);
      used_ += size;
      return reinterpret_cast<void*>(p);
    }
    return allocate_slow(size, align);
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Invalidate every outstanding allocation and rewind to the first chunk;
  // chunk storage is retained, so the next fill allocates nothing.
  void reset();

  // Telemetry for tests and the profile summary.
  std::size_t bytes_reserved() const { return reserved_; }
  std::size_t bytes_used() const { return used_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t cap = 0;
  };

  void* allocate_slow(std::size_t size, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;  // chunk currently being bumped (when !chunks_.empty())
  std::byte* ptr_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t reserved_ = 0;
  std::size_t used_ = 0;
};

// The calling thread's installed arena, or nullptr. sim::Engine resolves
// this once at construction (never per allocation).
Arena* current_arena();
// Install `a` (nullptr uninstalls); returns the previous arena.
Arena* install_arena(Arena* a);

// Minimal std-allocator over a specific Arena, for the engine's internal
// vectors. deallocate is a no-op: the memory comes back at reset(). Growing
// a vector therefore leaks its old block into the arena until the run ends
// — fine for the engine's monotonically-sized structures, wrong for
// containers that churn capacity.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* a) : a_(a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : a_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(a_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return a_; }

  friend bool operator==(const ArenaAllocator& x, const ArenaAllocator& y) {
    return x.a_ == y.a_;
  }

 private:
  Arena* a_;
};

// RAII for one simulation (one sweep cell, one torture trial): checks a
// reusable arena out of the calling thread's pool, installs it, and on
// destruction resets it and returns it to the pool, restoring whatever was
// installed before (scopes nest). Every Engine constructed inside the
// scope draws its timer slabs and calendar storage from the same arena.
class ScopedSimArena {
 public:
  ScopedSimArena();
  ~ScopedSimArena();
  ScopedSimArena(const ScopedSimArena&) = delete;
  ScopedSimArena& operator=(const ScopedSimArena&) = delete;

  Arena& arena() { return *arena_; }

 private:
  Arena* arena_;
  Arena* prev_;
};

}  // namespace ordma::mem
