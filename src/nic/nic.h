// The simulated network interface controller — the analogue of the paper's
// LANai9.2 running modified GM-2.0 firmware.
//
// Exposes three personalities used by the NAS systems above it:
//  * GM messaging: tagged message sends to ports, plus RDMA get/put with the
//    paper's recoverable-exception extension (ORDMA, §4.1);
//  * segment export: a private 64-bit NIC-only address space backed by a
//    host-resident TPT and a bounded on-NIC TLB with pin-while-loaded
//    semantics (§4.1, §4.2.1);
//  * Ethernet emulation: datagram fragmentation for the UDP/IP path, with
//    RDDP-RPC support — pre-posted, tagged application buffers into which
//    the NIC header-splits RPC payloads (§3.2).
//
// All firmware work runs on a single fw resource (the 200 MHz LANai) and all
// host-memory transfers on a single DMA engine, so the NIC saturates
// realistically and independently of the host CPU.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "crypto/capability.h"
#include "host/host.h"
#include "mem/address_space.h"
#include "net/fabric.h"
#include "nic/tpt.h"
#include "nic/wire.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "sim/resource.h"

namespace ordma::nic {

struct NicConfig {
  std::size_t tlb_entries = 8192;
  // Load TPT entries into the TLB at export time (the paper's benchmarks
  // "ensure that RDMA ... always hits in the NIC TLB"; the TLB ablation
  // bench turns this off).
  bool preload_tlb = true;
  // How long gm_get / gm_put(wait_ack) wait for completion before giving
  // up with Errc::timed_out. Zero waits forever (lossless-fabric default);
  // set it when a fault plan can lose fragments, so initiators recover.
  Duration op_timeout{0};
};

class Nic {
 public:
  Nic(host::Host& host, net::Fabric& fabric, NicConfig cfg,
      crypto::SipKey cap_key);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  net::NodeId node_id() const { return node_id_; }
  host::Host& host() { return host_; }
  NicTlb& tlb() { return tlb_; }
  Tpt& tpt() { return tpt_; }

  // ---------------------------------------------------------------------
  // GM messaging
  // ---------------------------------------------------------------------
  struct GmMessage {
    net::NodeId src = net::kInvalidNode;
    std::uint32_t user_tag = 0;
    net::Buffer data;
    obs::OpId trace_op = 0;  // file-op trace context from the sender
  };

  // Open a receive port; messages sent to (this node, port) arrive on the
  // returned channel. Completion-pickup CPU cost is charged by the consumer
  // (poll vs block — the VI layer's business).
  sim::Channel<GmMessage>& open_port(std::uint32_t port);

  // Allocate a fresh (unused) port number for dynamic endpoints.
  std::uint32_t alloc_port() { return next_port_++; }

  // Send a message. Returns when the local NIC has pushed the last fragment
  // onto the wire (GM send-completion semantics). `trace_op` rides along as
  // trace context: packets, NIC work and the delivered GmMessage carry it.
  sim::Task<void> gm_send(net::NodeId dst, std::uint32_t port,
                          std::uint32_t user_tag, net::Buffer data,
                          obs::OpId trace_op = 0);

  // RDMA read/write against a remote exported segment. Completes when the
  // data (or ack) has fully arrived; a remote access fault completes with
  // Errc::access_fault (the recoverable NIC-to-NIC exception of §4.1).
  sim::Task<Result<net::Buffer>> gm_get(net::NodeId dst, mem::Vaddr va,
                                        Bytes len,
                                        const crypto::Capability& cap,
                                        obs::OpId trace_op = 0);
  // wait_ack=false returns once the last fragment is pushed (VI
  // reliable-delivery semantics: in-order delivery means a subsequent
  // message arrives after the written data); the ack is then ignored.
  sim::Task<Status> gm_put(net::NodeId dst, mem::Vaddr va, net::Buffer data,
                           const crypto::Capability& cap,
                           bool wait_ack = true, obs::OpId trace_op = 0);

  // ---------------------------------------------------------------------
  // Segment export (TPT / capabilities)
  // ---------------------------------------------------------------------
  // Export [host_va, host_va+len) of `as` into the NIC address space and
  // mint its capability. If pin_now, pages are pinned and TLB entries
  // loaded immediately (classic buffer registration); otherwise entries load
  // lazily on first access with the TLB-miss penalty (ODAFS cache exports).
  // host_va and len must be page-aligned.
  Result<crypto::Capability> export_segment(mem::AddressSpace& as,
                                            mem::Vaddr host_va, Bytes len,
                                            crypto::SegPerm perm,
                                            bool pin_now);

  // Revoke a segment: bump its generation (killing outstanding
  // capabilities), drop its TPT and TLB entries, unpin. Subsequent ORDMA
  // against it faults. Safe to call for unknown ids (idempotent).
  void revoke_segment(std::uint64_t seg_id);

  // Re-mint the current capability of a live segment.
  Result<crypto::Capability> capability_for(std::uint64_t seg_id) const;

  // Per-segment record of the most recent inbound put the NIC landed:
  // who wrote, where, how much, and the checksum of the landed bytes
  // (computed during placement — free of host CPU). A server commits an
  // optimistic client put by comparing this record against the client's
  // claim: O(1), no per-byte work on the authorize path. Erased when the
  // segment is revoked (a revoked put can never commit).
  struct PutRecord {
    net::NodeId src = net::kInvalidNode;
    std::uint64_t op_id = 0;
    mem::Vaddr va = 0;
    Bytes len = 0;
    std::uint32_t cksum = 0;
  };
  const PutRecord* last_put(std::uint64_t seg_id) const {
    auto it = last_put_.find(seg_id);
    return it == last_put_.end() ? nullptr : &it->second;
  }

  // ---------------------------------------------------------------------
  // Ethernet emulation + RDDP-RPC pre-posting
  // ---------------------------------------------------------------------
  struct EthDatagram {
    net::NodeId src = net::kInvalidNode;
    net::Buffer data;        // full datagram, or header-only if RDDP-placed
    std::uint32_t rddp_xid = 0;
    bool rddp_placed = false;  // payload was deposited directly by the NIC
    Bytes rddp_data_len = 0;
    obs::OpId trace_op = 0;  // file-op trace context from the sender
  };
  using EthSink = std::function<sim::Task<void>(EthDatagram)>;

  // The host IP stack's input function; runs inside the (coalesced) receive
  // interrupt on the host CPU.
  void set_eth_sink(EthSink sink) { eth_sink_ = std::move(sink); }

  // Transmit a datagram; the NIC fragments at the Ethernet MTU. The
  // rddp_* fields describe where bulk data lies inside the datagram so a
  // pre-posting receiver NIC can split it out (zero for ordinary traffic).
  sim::Task<void> eth_send(net::NodeId dst, net::Buffer dgram,
                           std::uint32_t rddp_xid = 0,
                           Bytes rddp_data_offset = 0,
                           Bytes rddp_data_len = 0,
                           obs::OpId trace_op = 0);

  // Pre-post an application buffer tagged by RPC xid (§3.2). The NIC will
  // deposit the matching response's payload directly at (as, va). One-shot:
  // consumed by the match or explicitly cancelled.
  void prepost(std::uint32_t xid, mem::AddressSpace& as, mem::Vaddr va,
               Bytes len);
  void cancel_prepost(std::uint32_t xid);

  // --- fault injection ----------------------------------------------------
  // Optional deterministic misbehaviour source (doorbell stalls, spurious
  // TLB shootdowns, spurious capability revocation). Not owned.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  // --- observability ------------------------------------------------------
  std::uint64_t ordma_served() const { return ordma_served_; }
  std::uint64_t ordma_faults() const { return ordma_faults_; }
  std::uint64_t ordma_timeouts() const { return ordma_timeouts_; }
  std::uint64_t puts_served() const { return puts_served_; }
  // Replayed put frames discarded by the (src, op_id) dedup window — a
  // duplicated frame arriving after reassembly completed must not re-apply
  // stale bytes over newer data.
  std::uint64_t put_dups_dropped() const { return put_dups_dropped_; }
  Duration fw_busy() { return fw_.busy_time(); }
  // Packets delivered by the fabric and not yet pulled by the firmware
  // loop — the instantaneous receive queue depth a time-series sampler
  // wants for incast analysis.
  std::size_t rx_backlog() const { return rx_queue_.pending(); }

 private:
  struct PendingOp {
    explicit PendingOp(sim::Engine& eng) : done(eng) {}
    sim::Event<Result<net::Buffer>> done;  // get: data; put: empty buffer
    net::Buffer reassembly;  // pooled; filled in place as fragments arrive
    Bytes received = 0;
    std::vector<bool> frag_seen;  // per-fragment dedup (links may duplicate)
  };

  struct EthReassembly {
    net::Buffer bytes;  // header (+payload unless RDDP-placed)
    Bytes received = 0;
    Bytes placed = 0;
    bool rddp_active = false;
    std::uint32_t rddp_xid = 0;
    Bytes rddp_data_len = 0;
    std::vector<bool> frag_seen;  // per-fragment dedup
  };

  struct PrepostEntry {
    mem::AddressSpace* as = nullptr;
    mem::Vaddr va = 0;
    Bytes len = 0;
  };

  // --- firmware processes -------------------------------------------------
  sim::Task<void> rx_loop();
  sim::Task<void> handle_gm_data(net::Packet p);
  sim::Task<void> service_get(net::Packet p);
  sim::Task<void> handle_put_req(net::Packet p);
  sim::Task<void> handle_get_reply(net::Packet p);
  void handle_put_ack(net::Packet p);
  sim::Task<void> handle_eth(net::Packet p);

  // DMA a transfer of n bytes between host memory and the NIC.
  sim::Task<void> dma_transfer(Bytes n, obs::OpId trace_op = 0);

  // Charge the doorbell cost (plus any injected stall).
  sim::Task<void> ring_doorbell(obs::OpId trace_op);

  // Send the fragments of one GM message/reply. `make_ctrl` customises the
  // control word per message.
  sim::Task<void> send_fragments(net::NodeId dst, net::Buffer payload,
                                 GmCtrl ctrl, bool charge_dma,
                                 obs::OpId trace_op = 0);
  void send_ctrl_packet(net::NodeId dst, GmCtrl ctrl, Bytes extra_bytes = 0,
                        obs::OpId trace_op = 0);

  // Resolve all pages of [va, va+len) for an ORDMA access. On success fills
  // `frames` with (pfn, offset-in-page, chunk) triples; returns Errc
  // describing the first fault otherwise. Charges TLB costs on fw_.
  struct PageRun {
    mem::Pfn pfn;
    std::uint64_t offset;
    Bytes chunk;
  };
  sim::Task<Result<std::vector<PageRun>>> resolve_ordma(
      mem::Vaddr va, Bytes len, const crypto::Capability& cap, bool write,
      obs::OpId trace_op = 0);

  // Load a TPT translation into the TLB (miss path: host interrupt + PIO).
  sim::Task<Result<NicTlb::Entry*>> tlb_load(const Segment& seg,
                                             mem::Vpn nic_vpn,
                                             obs::OpId trace_op = 0);
  void tlb_insert_pinned(const Segment& seg, mem::Vpn nic_vpn, mem::Pfn pfn);
  void unpin_evicted(const NicTlb::Entry& e);

  void raise_eth_interrupt();

  host::Host& host_;
  net::Fabric& fabric_;
  NicConfig cfg_;
  const host::CostModel& cm_;
  sim::Engine& eng_;

  net::NodeId node_id_;
  sim::Resource fw_;   // LANai processor
  sim::Resource dma_;  // DMA engine on the PCI bus
  sim::Channel<net::Packet> rx_queue_;

  // GM
  std::unordered_map<std::uint32_t, std::unique_ptr<sim::Channel<GmMessage>>>
      ports_;
  std::uint32_t next_port_ = 1024;
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingOp>> pending_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t next_msg_id_ = 1;
  struct RxKey {
    net::NodeId src;
    std::uint64_t msg_id;
    bool operator==(const RxKey&) const = default;
  };
  struct RxKeyHash {
    std::size_t operator()(const RxKey& k) const {
      return std::hash<std::uint64_t>()((std::uint64_t(k.src) << 48) ^
                                        k.msg_id);
    }
  };
  // Reassembly progress for an inbound GM message: fragment count plus a
  // per-fragment bitmap so a duplicated frame cannot complete a message
  // that still has holes.
  struct FragTracker {
    Bytes got = 0;
    std::vector<bool> seen;
  };
  std::unordered_map<RxKey, net::Buffer, RxKeyHash> gm_rx_;
  std::unordered_map<RxKey, FragTracker, RxKeyHash> gm_rx_received_;

  // Export
  Tpt tpt_;
  NicTlb tlb_;
  crypto::CapabilityAuthority authority_;
  std::uint64_t next_seg_id_ = 1;
  mem::Vaddr next_nic_va_ = mem::kPageSize;

  // Ethernet
  EthSink eth_sink_;
  std::unordered_map<RxKey, EthReassembly, RxKeyHash> eth_rx_;
  std::unordered_map<std::uint32_t, PrepostEntry> preposts_;
  std::deque<EthDatagram> eth_pending_;
  bool eth_intr_pending_ = false;
  std::uint64_t next_dgram_id_ = 1;

  fault::FaultInjector* faults_ = nullptr;

  // ORDMA write-path state: last landed put per segment, and a bounded
  // FIFO of recently completed (src, op_id) puts so a duplicated frame
  // that resurrects an erased fragment tracker cannot re-apply its bytes.
  static constexpr std::size_t kPutDedupCap = 512;
  std::unordered_map<std::uint64_t, PutRecord> last_put_;
  std::unordered_map<RxKey, bool, RxKeyHash> put_done_;
  std::deque<RxKey> put_done_order_;

  std::uint64_t ordma_served_ = 0;
  std::uint64_t ordma_faults_ = 0;
  std::uint64_t ordma_timeouts_ = 0;
  std::uint64_t puts_served_ = 0;
  std::uint64_t put_dups_dropped_ = 0;
};

}  // namespace ordma::nic
