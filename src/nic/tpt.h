// Translation and Protection Table (TPT) and the on-NIC TLB (§2.1, §4.1).
//
// The TPT is the host-memory-resident table mapping pages of the NIC's
// private virtual address space to (address space, host page) for every
// exported segment, with the segment's capability generation. The NIC
// caches entries in a bounded TLB; pages with translations loaded in the
// TLB are treated as pinned and locked (the paper's synchronisation choice),
// so the host pins on TLB load and unpins on eviction.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "common/result.h"
#include "crypto/capability.h"
#include "mem/address_space.h"

namespace ordma::nic {

struct Segment {
  std::uint64_t id = 0;
  mem::AddressSpace* as = nullptr;
  mem::Vaddr host_va = 0;  // base in the exporting address space
  mem::Vaddr nic_va = 0;   // base in the NIC's private 64-bit space
  Bytes len = 0;
  crypto::SegPerm perm = crypto::SegPerm::read;
  std::uint32_t generation = 0;
  bool pinned_on_export = false;  // classic registration vs lazy ODAFS export
};

class Tpt {
 public:
  // Install a segment's page translations. Pages must be page-aligned.
  void install(const Segment& seg);
  // Remove a segment; returns it (for unpinning bookkeeping by the caller).
  std::optional<Segment> remove(std::uint64_t seg_id);

  const Segment* find_segment(std::uint64_t seg_id) const;
  Segment* find_segment_mutable(std::uint64_t seg_id);

  // Translate one NIC-virtual page to its owning segment; nullptr if the
  // page is not covered by any valid segment.
  const Segment* segment_of_page(mem::Vpn nic_vpn) const;

  std::size_t num_segments() const { return segments_.size(); }

 private:
  std::unordered_map<std::uint64_t, Segment> segments_;
  std::unordered_map<mem::Vpn, std::uint64_t> page_to_seg_;
};

// Bounded TLB with LRU replacement. Entries cache the physical frame so the
// NIC can DMA without touching host page tables; insertion pins the host
// page, eviction unpins it (done by the Nic, which owns the pin calls).
class NicTlb {
 public:
  struct Entry : ListNode {
    mem::Vpn nic_vpn = 0;
    mem::Pfn pfn = 0;
    std::uint64_t seg_id = 0;
    mem::AddressSpace* as = nullptr;
    mem::Vpn host_vpn = 0;
  };

  explicit NicTlb(std::size_t capacity) : capacity_(capacity) {}
  ~NicTlb();
  NicTlb(const NicTlb&) = delete;
  NicTlb& operator=(const NicTlb&) = delete;

  // Lookup; touches LRU on hit.
  Entry* lookup(mem::Vpn nic_vpn);

  // Insert a new entry; if at capacity, the LRU entry is evicted and
  // returned so the caller can unpin its page.
  std::optional<Entry> insert(const Entry& e);

  // Drop all entries belonging to a segment; returns them for unpinning.
  std::vector<Entry> invalidate_segment(std::uint64_t seg_id);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Stats for the TLB ablation bench.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void count_miss() { ++misses_; }

 private:
  std::size_t capacity_;
  std::unordered_map<mem::Vpn, Entry*> map_;
  IntrusiveList<Entry> lru_;  // front = LRU, back = MRU
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ordma::nic
