#include "nic/nic.h"

#include <algorithm>

#include "common/log.h"
#include "rpc/xdr.h"

namespace ordma::nic {

namespace {
constexpr std::uint32_t kMaxU32 = 0xffffffffu;
}

// Doorbell writes cross the PCI bus; a faulty NIC can stall them (fault
// plan). Charged as extra host-visible latency at ring time.
sim::Task<void> Nic::ring_doorbell(obs::OpId trace_op) {
  host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_doorbell,
                        trace_op);
  co_await host_.cpu_consume(cm_.nic_doorbell, trace_op, "nic/doorbell");
  if (faults_) {
    const Duration stall = faults_->doorbell_stall();
    if (stall.ns > 0) co_await eng_.delay(stall);
  }
}

Nic::Nic(host::Host& host, net::Fabric& fabric, NicConfig cfg,
         crypto::SipKey cap_key)
    : host_(host),
      fabric_(fabric),
      cfg_(cfg),
      cm_(host.costs()),
      eng_(host.engine()),
      node_id_(kMaxU32),
      fw_(eng_, 1, host.name() + ".nic.fw"),
      dma_(eng_, 1, host.name() + ".nic.dma"),
      rx_queue_(eng_),
      tlb_(cfg.tlb_entries),
      authority_(cap_key) {
  node_id_ = fabric_.add_node(host.name(),
                              [this](net::Packet p) { rx_queue_.send(std::move(p)); });
  host_.attach_nic(this);
  eng_.spawn(rx_loop());
}

sim::Task<void> Nic::dma_transfer(Bytes n, obs::OpId trace_op) {
  const SimTime q0 = eng_.now();
  co_await dma_.acquire();
  sim::Resource::ReleaseGuard guard(dma_);
  const SimTime b = eng_.now();
  if (b.ns != q0.ns) obs::span(dma_.queue_track(), trace_op, "queue/wait", q0, b);
  host_.flight().record(b.ns, obs::flight::Ev::nic_dma, n, trace_op);
  co_await eng_.delay(cm_.nic_dma_setup + cm_.nic_dma_bw.time_for(n));
  obs::span(dma_.trace_track(), trace_op, "nic/dma", b, eng_.now());
}

// ---------------------------------------------------------------------------
// GM send path
// ---------------------------------------------------------------------------

sim::Task<void> Nic::send_fragments(net::NodeId dst, net::Buffer payload,
                                    GmCtrl ctrl, bool charge_dma,
                                    obs::OpId trace_op) {
  const std::uint64_t msg_id = next_msg_id_++;
  const Bytes total = payload.size();
  const Bytes mtu = cm_.gm_mtu;
  const std::uint32_t nfrags =
      total == 0 ? 1 : static_cast<std::uint32_t>((total + mtu - 1) / mtu);

  for (std::uint32_t i = 0; i < nfrags; ++i) {
    const Bytes off = static_cast<Bytes>(i) * mtu;
    const Bytes chunk = std::min<Bytes>(mtu, total - off);
    co_await fw_.consume(cm_.nic_tx_frag, trace_op, "nic/tx_frag");
    if (charge_dma && chunk > 0) co_await dma_transfer(chunk, trace_op);

    net::Packet p;
    p.src = node_id_;
    p.dst = dst;
    p.proto = net::Proto::gm;
    p.header_bytes = cm_.gm_header;
    p.payload = total == 0 ? net::Buffer() : payload.slice(off, chunk);
    p.msg_id = msg_id;
    p.frag_index = i;
    p.frag_count = nfrags;
    p.msg_total = total;
    p.ctrl = ctrl;
    p.trace_op = trace_op;
    fabric_.send(std::move(p));
  }
}

void Nic::send_ctrl_packet(net::NodeId dst, GmCtrl ctrl, Bytes extra_bytes,
                           obs::OpId trace_op) {
  net::Packet p;
  p.src = node_id_;
  p.dst = dst;
  p.proto = net::Proto::gm;
  p.header_bytes = cm_.gm_header + extra_bytes;
  p.msg_id = next_msg_id_++;
  p.msg_total = 0;
  p.ctrl = ctrl;
  p.trace_op = trace_op;
  fabric_.send(std::move(p));
}

sim::Channel<Nic::GmMessage>& Nic::open_port(std::uint32_t port) {
  auto& slot = ports_[port];
  if (!slot) slot = std::make_unique<sim::Channel<GmMessage>>(eng_);
  return *slot;
}

sim::Task<void> Nic::gm_send(net::NodeId dst, std::uint32_t port,
                             std::uint32_t user_tag, net::Buffer data,
                             obs::OpId trace_op) {
  co_await ring_doorbell(trace_op);
  obs::flow(fw_.trace_track(), trace_op, "gm_send", eng_.now());
  GmCtrl ctrl;
  ctrl.op = GmOp::data;
  ctrl.port = port;
  ctrl.user_tag = user_tag;
  co_await send_fragments(dst, std::move(data), ctrl, /*charge_dma=*/true,
                          trace_op);
}

sim::Task<Result<net::Buffer>> Nic::gm_get(net::NodeId dst, mem::Vaddr va,
                                           Bytes len,
                                           const crypto::Capability& cap,
                                           obs::OpId trace_op) {
  co_await ring_doorbell(trace_op);
  obs::flow(fw_.trace_track(), trace_op, "gm_get", eng_.now());
  co_await fw_.consume(cm_.nic_tx_frag, trace_op, "nic/tx_frag");

  const std::uint64_t op_id = next_op_id_++;
  auto op = std::make_unique<PendingOp>(eng_);
  auto* op_ptr = op.get();
  pending_.emplace(op_id, std::move(op));

  GmCtrl ctrl;
  ctrl.op = GmOp::get_req;
  ctrl.op_id = op_id;
  ctrl.remote_va = va;
  ctrl.rdma_len = len;
  ctrl.cap = cap;
  // capability on the wire
  send_ctrl_packet(dst, ctrl, /*extra_bytes=*/40, trace_op);

  Result<net::Buffer> result = Errc::timed_out;
  if (cfg_.op_timeout.ns > 0) {
    auto got = co_await op_ptr->done.wait_for(cfg_.op_timeout);
    if (got) {
      result = std::move(*got);
    } else {
      ++ordma_timeouts_;  // lost request/reply; the caller falls back
      host_.flight().record(eng_.now().ns,
                            obs::flight::Ev::nic_ordma_timeout, op_id);
    }
  } else {
    result = co_await op_ptr->done.wait();
  }
  pending_.erase(op_id);
  co_return result;
}

sim::Task<Status> Nic::gm_put(net::NodeId dst, mem::Vaddr va,
                              net::Buffer data,
                              const crypto::Capability& cap,
                              bool wait_ack, obs::OpId trace_op) {
  co_await ring_doorbell(trace_op);
  obs::flow(fw_.trace_track(), trace_op, "gm_put", eng_.now());

  const std::uint64_t op_id = next_op_id_++;
  GmCtrl ctrl;
  ctrl.op = GmOp::put_req;
  ctrl.op_id = op_id;
  ctrl.remote_va = va;
  ctrl.rdma_len = data.size();
  ctrl.cap = cap;

  if (!wait_ack) {
    co_await send_fragments(dst, std::move(data), ctrl, /*charge_dma=*/true,
                            trace_op);
    co_return Status::Ok();  // the ack, when it arrives, is ignored
  }

  auto op = std::make_unique<PendingOp>(eng_);
  auto* op_ptr = op.get();
  pending_.emplace(op_id, std::move(op));
  co_await send_fragments(dst, std::move(data), ctrl, /*charge_dma=*/true,
                          trace_op);
  Result<net::Buffer> result = Errc::timed_out;
  if (cfg_.op_timeout.ns > 0) {
    auto got = co_await op_ptr->done.wait_for(cfg_.op_timeout);
    if (got) {
      result = std::move(*got);
    } else {
      ++ordma_timeouts_;
      host_.flight().record(eng_.now().ns,
                            obs::flight::Ev::nic_ordma_timeout, op_id);
    }
  } else {
    result = co_await op_ptr->done.wait();
  }
  pending_.erase(op_id);
  co_return result.status();
}

// ---------------------------------------------------------------------------
// Receive demux
// ---------------------------------------------------------------------------

sim::Task<void> Nic::rx_loop() {
  for (;;) {
    net::Packet p = co_await rx_queue_.recv();
    co_await fw_.consume(cm_.nic_rx_frag, p.trace_op, "nic/rx_frag");
    if (p.proto == net::Proto::ethernet) {
      co_await handle_eth(std::move(p));
      continue;
    }
    const auto ctrl = p.ctrl.get<GmCtrl>();
    switch (ctrl.op) {
      case GmOp::data:
        co_await handle_gm_data(std::move(p));
        break;
      case GmOp::get_req:
        // Service asynchronously; the fw resource serialises actual work.
        eng_.spawn(service_get(std::move(p)));
        break;
      case GmOp::get_reply:
        co_await handle_get_reply(std::move(p));
        break;
      case GmOp::put_req:
        co_await handle_put_req(std::move(p));
        break;
      case GmOp::put_ack:
        handle_put_ack(std::move(p));
        break;
    }
  }
}

sim::Task<void> Nic::handle_gm_data(net::Packet p) {
  const auto ctrl = p.ctrl.get<GmCtrl>();
  const RxKey key{p.src, p.msg_id};
  auto& tr = gm_rx_received_[key];
  if (tr.seen.empty()) tr.seen.resize(p.frag_count, false);
  if (p.frag_index >= tr.seen.size() || tr.seen[p.frag_index]) {
    co_return;  // duplicated fragment: already placed
  }
  tr.seen[p.frag_index] = true;
  auto& buf = gm_rx_[key];
  if (buf.size() != p.msg_total) buf = net::Buffer::alloc(p.msg_total);

  if (!p.payload.empty()) {
    // into host receive buffer
    co_await dma_transfer(p.payload.size(), p.trace_op);
    const auto v = p.payload.view();
    const Bytes off = static_cast<Bytes>(p.frag_index) * cm_.gm_mtu;
    std::copy(v.begin(), v.end(), buf.mutable_view().begin() + off);
  }
  auto& got = gm_rx_received_[key].got;
  got += 1;
  if (got == p.frag_count) {
    GmMessage msg;
    msg.src = p.src;
    msg.user_tag = ctrl.user_tag;
    msg.data = std::move(buf);
    msg.trace_op = p.trace_op;
    gm_rx_.erase(key);
    gm_rx_received_.erase(key);
    obs::flow(fw_.trace_track(), p.trace_op, "gm_deliver", eng_.now());
    auto it = ports_.find(ctrl.port);
    if (it != ports_.end()) {
      it->second->send(std::move(msg));
    } else {
      ORDMA_LOG_ERROR("nic", "%s: GM message to closed port %u dropped",
                      host_.name().c_str(), ctrl.port);
    }
  }
}

// ---------------------------------------------------------------------------
// ORDMA target paths
// ---------------------------------------------------------------------------

void Nic::tlb_insert_pinned(const Segment& seg, mem::Vpn nic_vpn,
                            mem::Pfn pfn) {
  seg.as->pin(mem::page_of(seg.host_va) + (nic_vpn - mem::page_of(seg.nic_va)));
  NicTlb::Entry e;
  e.nic_vpn = nic_vpn;
  e.pfn = pfn;
  e.seg_id = seg.id;
  e.as = seg.as;
  e.host_vpn =
      mem::page_of(seg.host_va) + (nic_vpn - mem::page_of(seg.nic_va));
  if (auto evicted = tlb_.insert(e)) unpin_evicted(*evicted);
}

void Nic::unpin_evicted(const NicTlb::Entry& e) { e.as->unpin(e.host_vpn); }

sim::Task<Result<NicTlb::Entry*>> Nic::tlb_load(const Segment& seg,
                                                mem::Vpn nic_vpn,
                                                obs::OpId trace_op) {
  tlb_.count_miss();
  const mem::Vpn host_vpn =
      mem::page_of(seg.host_va) + (nic_vpn - mem::page_of(seg.nic_va));
  const auto* pte = seg.as->lookup(host_vpn);
  if (!pte || !pte->present) co_return Errc::access_fault;
  if (pte->locked) co_return Errc::access_fault;

  // Miss path (§4.1): the NIC interrupts the host, which loads the TPT
  // entry into the TLB by programmed I/O. The full penalty (interrupt,
  // scheduling, PIO) is the paper's measured ~9 ms; only the CPU-visible
  // part is charged to the host CPU.
  host_.post_interrupt([this]() -> sim::Task<void> {
    co_await host_.cpu_consume(cm_.cpu_schedule);
  });
  const SimTime miss_begin = eng_.now();
  host_.flight().record(miss_begin.ns, obs::flight::Ev::nic_tlb_miss,
                        nic_vpn);
  co_await eng_.delay(cm_.nic_tlb_miss);
  obs::span(fw_.trace_track(), trace_op, "nic/tlb_miss", miss_begin,
            eng_.now());

  // Revalidate after the delay: the segment may have been revoked while we
  // waited (the race the exception mechanism exists for), or a concurrent
  // miss for the same page may have loaded the entry already.
  if (NicTlb::Entry* raced = tlb_.lookup(nic_vpn)) co_return raced;
  const Segment* fresh = tpt_.segment_of_page(nic_vpn);
  if (!fresh || fresh->id != seg.id) co_return Errc::access_fault;
  const auto* pte2 = fresh->as->lookup(host_vpn);
  if (!pte2 || !pte2->present || pte2->locked) co_return Errc::access_fault;

  tlb_insert_pinned(*fresh, nic_vpn, pte2->pfn);
  NicTlb::Entry* e = tlb_.lookup(nic_vpn);
  ORDMA_CHECK(e != nullptr);
  co_return e;
}

sim::Task<Result<std::vector<Nic::PageRun>>> Nic::resolve_ordma(
    mem::Vaddr va, Bytes len, const crypto::Capability& cap, bool write,
    obs::OpId trace_op) {
  if (len == 0) co_return Errc::invalid_argument;

  // Locate the segment named by the capability.
  const Segment* seg = tpt_.find_segment(cap.segment_id);
  if (!seg) co_return Errc::access_fault;

  // Injected NIC misbehaviour: a spurious revocation fails the op exactly
  // like a genuine one (the initiator falls back to RPC); a spurious TPT/TLB
  // shootdown drops this segment's translations so the op replays the miss
  // path — both recoverable NIC-to-NIC exceptions of §4.1.
  if (faults_) {
    if (faults_->spurious_cap_revoke()) co_return Errc::revoked;
    // Revoke-during-put: fired only on the write path, so plans can keep
    // puts under fire while reads stay clean. The put's bytes are fully
    // reassembled but never placed — an all-or-nothing rollback the
    // initiator recovers from by replaying the put (or falling back to
    // RPC write).
    if (write && faults_->spurious_put_revoke()) co_return Errc::revoked;
    if (faults_->spurious_tlb_invalidate()) {
      for (const auto& e : tlb_.invalidate_segment(seg->id)) unpin_evicted(e);
    }
  }

  // Verify the capability (MAC + generation) — firmware cost.
  if (cm_.capabilities_enabled) {
    co_await fw_.consume(cm_.nic_cap_verify, trace_op, "nic/cap_verify");
    if (!authority_.verify(cap, seg->generation)) co_return Errc::revoked;
    if (!crypto::allows(cap.perm, write ? crypto::SegPerm::write
                                        : crypto::SegPerm::read)) {
      co_return Errc::access_fault;
    }
  }

  // Range check against the segment.
  if (va < seg->nic_va || va + len > seg->nic_va + seg->len) {
    co_return Errc::access_fault;
  }

  std::vector<PageRun> runs;
  Bytes done = 0;
  while (done < len) {
    const mem::Vaddr cur = va + done;
    const mem::Vpn nic_vpn = mem::page_of(cur);
    const std::uint64_t off = mem::page_offset(cur);
    const Bytes chunk = std::min<Bytes>(len - done, mem::kPageSize - off);

    NicTlb::Entry* e = tlb_.lookup(nic_vpn);
    if (e) {
      co_await fw_.consume(cm_.nic_tlb_hit, trace_op, "nic/tlb_hit");
    } else {
      // Confirm the page still belongs to this segment, then take the miss.
      const Segment* owner = tpt_.segment_of_page(nic_vpn);
      if (!owner || owner->id != seg->id) co_return Errc::access_fault;
      auto loaded = co_await tlb_load(*owner, nic_vpn, trace_op);
      if (!loaded.ok()) co_return loaded.status();
      e = loaded.value();
    }

    // Write permission is also enforced at the host page level.
    if (write) {
      const auto* pte = e->as->lookup(e->host_vpn);
      if (!pte || !pte->writable) co_return Errc::access_fault;
    }
    runs.push_back(PageRun{e->pfn, off, chunk});
    done += chunk;
  }
  co_return runs;
}

sim::Task<void> Nic::service_get(net::Packet p) {
  const auto ctrl = p.ctrl.get<GmCtrl>();
  co_await fw_.consume(cm_.nic_get_service, p.trace_op, "nic/get_service");

  auto runs = co_await resolve_ordma(ctrl.remote_va, ctrl.rdma_len, ctrl.cap,
                                     /*write=*/false, p.trace_op);
  GmCtrl reply;
  reply.op = GmOp::get_reply;
  reply.op_id = ctrl.op_id;

  if (!runs.ok()) {
    ++ordma_faults_;
    host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_ordma_fault,
                          ctrl.op_id, static_cast<std::uint64_t>(runs.code()));
    reply.fault = runs.code();
    send_ctrl_packet(p.src, reply, 0, p.trace_op);
    co_return;
  }

  // The segment may have been revoked while resolve awaited (TLB miss
  // path); treat that as a fault too.
  const Segment* seg = tpt_.find_segment(ctrl.cap.segment_id);
  if (!seg) {
    ++ordma_faults_;
    host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_ordma_fault,
                          ctrl.op_id,
                          static_cast<std::uint64_t>(Errc::access_fault));
    reply.fault = Errc::access_fault;
    send_ctrl_packet(p.src, reply, 0, p.trace_op);
    co_return;
  }

  ++ordma_served_;
  // Gather the real bytes out of host physical memory.
  net::Buffer data = net::Buffer::alloc(ctrl.rdma_len);
  const auto w = data.mutable_view();
  Bytes off = 0;
  auto& phys = seg->as->phys();
  for (const auto& run : runs.value()) {
    phys.read(mem::frame_base(run.pfn) + run.offset,
              w.subspan(off, run.chunk));
    off += run.chunk;
  }
  co_await send_fragments(p.src, std::move(data), reply,
                          /*charge_dma=*/true, p.trace_op);
}

sim::Task<void> Nic::handle_put_req(net::Packet p) {
  const auto ctrl = p.ctrl.get<GmCtrl>();
  const RxKey key{p.src, p.msg_id};
  auto& tr = gm_rx_received_[key];
  if (tr.seen.empty()) tr.seen.resize(p.frag_count, false);
  if (p.frag_index >= tr.seen.size() || tr.seen[p.frag_index]) {
    co_return;  // duplicated fragment: already placed
  }
  tr.seen[p.frag_index] = true;
  auto& buf = gm_rx_[key];
  if (buf.size() != p.msg_total) buf = net::Buffer::alloc(p.msg_total);
  if (!p.payload.empty()) {
    // Each fragment is DMA'd towards host memory as it arrives, so the
    // bulk transfer overlaps with reception of later fragments.
    co_await dma_transfer(p.payload.size(), p.trace_op);
    const auto v = p.payload.view();
    const Bytes off = static_cast<Bytes>(p.frag_index) * cm_.gm_mtu;
    std::copy(v.begin(), v.end(), buf.mutable_view().begin() + off);
  }
  auto& got = gm_rx_received_[key].got;
  got += 1;
  if (got != p.frag_count) co_return;

  net::Buffer data = std::move(buf);
  gm_rx_.erase(key);
  gm_rx_received_.erase(key);

  // A duplicated frame arriving after the tracker above was erased would
  // reassemble the whole message again (single-fragment puts trivially so)
  // and re-apply stale bytes over whatever landed since. Drop replays of
  // recently completed puts instead; the original's ack already answers
  // the initiator.
  const RxKey put_key{p.src, ctrl.op_id};
  if (put_done_.count(put_key) != 0) {
    ++put_dups_dropped_;
    co_return;
  }
  put_done_.emplace(put_key, true);
  put_done_order_.push_back(put_key);
  while (put_done_order_.size() > kPutDedupCap) {
    put_done_.erase(put_done_order_.front());
    put_done_order_.pop_front();
  }

  co_await fw_.consume(cm_.nic_put_service, p.trace_op, "nic/put_service");
  auto runs = co_await resolve_ordma(ctrl.remote_va, data.size(), ctrl.cap,
                                     /*write=*/true, p.trace_op);
  GmCtrl reply;
  reply.op = GmOp::put_ack;
  reply.op_id = ctrl.op_id;
  if (!runs.ok()) {
    ++ordma_faults_;
    host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_ordma_fault,
                          ctrl.op_id, static_cast<std::uint64_t>(runs.code()));
    reply.fault = runs.code();
    send_ctrl_packet(p.src, reply, 0, p.trace_op);
    co_return;
  }
  const Segment* seg = tpt_.find_segment(ctrl.cap.segment_id);
  if (!seg) {
    ++ordma_faults_;
    host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_ordma_fault,
                          ctrl.op_id,
                          static_cast<std::uint64_t>(Errc::access_fault));
    reply.fault = Errc::access_fault;
    send_ctrl_packet(p.src, reply, 0, p.trace_op);
    co_return;
  }
  ++ordma_served_;
  ++puts_served_;
  const auto dv = data.view();
  Bytes off = 0;
  auto& phys = seg->as->phys();
  for (const auto& run : runs.value()) {
    phys.write(mem::frame_base(run.pfn) + run.offset,
               dv.subspan(off, run.chunk));
    off += run.chunk;
  }
  // Remember what landed (checksummed during placement — no host CPU):
  // the server's put-commit handler verifies a client's claim against this
  // record instead of re-reading the data.
  last_put_[seg->id] =
      PutRecord{p.src, ctrl.op_id, ctrl.remote_va, data.size(),
                rpc::checksum32(dv)};
  send_ctrl_packet(p.src, reply, 0, p.trace_op);
}

sim::Task<void> Nic::handle_get_reply(net::Packet p) {
  const auto ctrl = p.ctrl.get<GmCtrl>();
  auto it = pending_.find(ctrl.op_id);
  if (it == pending_.end()) co_return;  // initiator gave up
  if (it->second->done.is_set()) co_return;  // duplicate after completion

  if (ctrl.fault != Errc::ok) {
    it->second->done.set(Result<net::Buffer>(ctrl.fault));
    co_return;
  }
  {
    PendingOp& op = *it->second;
    if (op.reassembly.size() != p.msg_total) {
      op.reassembly = net::Buffer::alloc(p.msg_total);
    }
    if (op.frag_seen.empty()) op.frag_seen.resize(p.frag_count, false);
    if (p.frag_index >= op.frag_seen.size() || op.frag_seen[p.frag_index]) {
      co_return;  // duplicated fragment
    }
    op.frag_seen[p.frag_index] = true;
  }
  if (!p.payload.empty()) {
    // Fragments are DMA'd into the initiator's buffer as they arrive.
    co_await dma_transfer(p.payload.size(), p.trace_op);
    // The initiator may have timed out and erased the op while we DMA'd.
    it = pending_.find(ctrl.op_id);
    if (it == pending_.end()) co_return;
    const auto v = p.payload.view();
    const Bytes off = static_cast<Bytes>(p.frag_index) * cm_.gm_mtu;
    std::copy(v.begin(), v.end(),
              it->second->reassembly.mutable_view().begin() + off);
  }
  PendingOp& op = *it->second;
  op.received += 1;
  if (op.received == p.frag_count) {
    op.done.set(Result<net::Buffer>(std::move(op.reassembly)));
  }
}

void Nic::handle_put_ack(net::Packet p) {
  const auto ctrl = p.ctrl.get<GmCtrl>();
  auto it = pending_.find(ctrl.op_id);
  if (it == pending_.end()) return;
  if (it->second->done.is_set()) return;  // duplicate ack
  if (ctrl.fault != Errc::ok) {
    it->second->done.set(Result<net::Buffer>(ctrl.fault));
  } else {
    it->second->done.set(Result<net::Buffer>(net::Buffer()));
  }
}

// ---------------------------------------------------------------------------
// Export / revoke
// ---------------------------------------------------------------------------

Result<crypto::Capability> Nic::export_segment(mem::AddressSpace& as,
                                               mem::Vaddr host_va, Bytes len,
                                               crypto::SegPerm perm,
                                               bool pin_now) {
  if (mem::page_offset(host_va) != 0 || len == 0) {
    return Errc::invalid_argument;
  }
  const Bytes aligned = (len + mem::kPageSize - 1) & ~(mem::kPageSize - 1);

  Segment seg;
  seg.id = next_seg_id_++;
  seg.as = &as;
  seg.host_va = host_va;
  seg.nic_va = next_nic_va_;
  seg.len = aligned;
  seg.perm = perm;
  seg.generation = 1;
  seg.pinned_on_export = pin_now;
  next_nic_va_ += aligned;

  // Validate pages exist before installing.
  const auto pages = aligned / mem::kPageSize;
  for (std::uint64_t i = 0; i < pages; ++i) {
    const auto* pte = as.lookup(mem::page_of(host_va) + i);
    if (!pte || !pte->present) return Errc::access_fault;
  }

  tpt_.install(seg);

  if (pin_now || cfg_.preload_tlb) {
    for (std::uint64_t i = 0; i < pages; ++i) {
      const mem::Vpn nic_vpn = mem::page_of(seg.nic_va) + i;
      if (tlb_.lookup(nic_vpn)) continue;
      const auto* pte = as.lookup(mem::page_of(host_va) + i);
      tlb_insert_pinned(seg, nic_vpn, pte->pfn);
    }
  }
  return authority_.mint(seg.id, seg.nic_va, seg.len, perm, seg.generation);
}

void Nic::revoke_segment(std::uint64_t seg_id) {
  host_.flight().record(eng_.now().ns, obs::flight::Ev::nic_cap_revoke,
                        seg_id);
  for (const auto& e : tlb_.invalidate_segment(seg_id)) unpin_evicted(e);
  tpt_.remove(seg_id);
  // A put into a revoked segment can never commit: drop its record so a
  // commit racing the revocation is rejected instead of blessing bytes
  // whose backing memory is being reused.
  last_put_.erase(seg_id);
}

Result<crypto::Capability> Nic::capability_for(std::uint64_t seg_id) const {
  const Segment* seg = tpt_.find_segment(seg_id);
  if (!seg) return Errc::not_found;
  return authority_.mint(seg->id, seg->nic_va, seg->len, seg->perm,
                         seg->generation);
}

// ---------------------------------------------------------------------------
// Ethernet emulation & RDDP-RPC
// ---------------------------------------------------------------------------

sim::Task<void> Nic::eth_send(net::NodeId dst, net::Buffer dgram,
                              std::uint32_t rddp_xid, Bytes rddp_data_offset,
                              Bytes rddp_data_len, obs::OpId trace_op) {
  const std::uint64_t dgram_id = next_dgram_id_++;
  const Bytes total = dgram.size();
  const Bytes mtu = cm_.eth_mtu;
  const std::uint32_t nfrags =
      total == 0 ? 1 : static_cast<std::uint32_t>((total + mtu - 1) / mtu);

  obs::flow(fw_.trace_track(), trace_op, "eth_send", eng_.now());
  for (std::uint32_t i = 0; i < nfrags; ++i) {
    const Bytes off = static_cast<Bytes>(i) * mtu;
    const Bytes chunk = std::min<Bytes>(mtu, total - off);
    co_await fw_.consume(cm_.nic_tx_frag, trace_op, "nic/tx_frag");
    if (chunk > 0) co_await dma_transfer(chunk, trace_op);

    EthCtrl ctrl;
    ctrl.dgram_id = dgram_id;
    ctrl.dgram_total = total;
    ctrl.frag_offset = off;
    ctrl.rddp_xid = rddp_xid;
    ctrl.rddp_data_offset = rddp_data_offset;
    ctrl.rddp_data_len = rddp_data_len;

    net::Packet p;
    p.src = node_id_;
    p.dst = dst;
    p.proto = net::Proto::ethernet;
    p.header_bytes = cm_.eth_header;
    p.payload = total == 0 ? net::Buffer() : dgram.slice(off, chunk);
    p.msg_id = dgram_id;
    p.frag_index = i;
    p.frag_count = nfrags;
    p.msg_total = total;
    p.ctrl = ctrl;
    p.trace_op = trace_op;
    fabric_.send(std::move(p));
  }
}

void Nic::prepost(std::uint32_t xid, mem::AddressSpace& as, mem::Vaddr va,
                  Bytes len) {
  preposts_[xid] = PrepostEntry{&as, va, len};
}

void Nic::cancel_prepost(std::uint32_t xid) { preposts_.erase(xid); }

sim::Task<void> Nic::handle_eth(net::Packet p) {
  const auto ctrl = p.ctrl.get<EthCtrl>();
  const RxKey key{p.src, p.msg_id};
  auto& r = eth_rx_[key];
  if (r.bytes.size() != p.msg_total) {
    r.bytes = net::Buffer::alloc(p.msg_total);
    r.rddp_xid = ctrl.rddp_xid;
    r.rddp_data_len = ctrl.rddp_data_len;
    // Header splitting is active iff a matching buffer was pre-posted.
    if (ctrl.rddp_xid != 0 && ctrl.rddp_data_len > 0) {
      auto it = preposts_.find(ctrl.rddp_xid);
      if (it != preposts_.end() && it->second.len >= ctrl.rddp_data_len) {
        r.rddp_active = true;
      }
    }
  }
  if (r.frag_seen.empty()) r.frag_seen.resize(p.frag_count, false);
  if (p.frag_index >= r.frag_seen.size() || r.frag_seen[p.frag_index]) {
    co_return;  // duplicated fragment: already accounted
  }
  r.frag_seen[p.frag_index] = true;

  const auto v = p.payload.view();
  if (!v.empty()) {
    const Bytes frag_start = ctrl.frag_offset;
    const Bytes frag_end = frag_start + v.size();
    const Bytes data_start = ctrl.rddp_data_offset;
    const Bytes data_end = data_start + ctrl.rddp_data_len;

    if (r.rddp_active) {
      // Split the fragment into up to three disjoint pieces relative to the
      // bulk-data window [data_start, data_end): head (headers before the
      // data), body (data → pre-posted buffer), tail (trailer after it).
      const Bytes head_end = std::min(frag_end, data_start);
      if (head_end > frag_start) {
        const Bytes n = head_end - frag_start;
        co_await dma_transfer(n, p.trace_op);
        std::copy(v.begin(), v.begin() + n,
                  r.bytes.mutable_view().begin() + frag_start);
      }
      const Bytes body_start = std::max(frag_start, data_start);
      const Bytes body_end = std::min(frag_end, data_end);
      if (body_end > body_start) {
        const Bytes n = body_end - body_start;
        co_await dma_transfer(n, p.trace_op);  // placement into user buffer
        auto pit = preposts_.find(ctrl.rddp_xid);
        if (pit == preposts_.end()) {
          // The caller cancelled the prepost mid-reassembly (gave up on
          // this attempt). Stop splitting: the datagram completes inline
          // with holes where already-placed bytes went, and the end-to-end
          // RPC checksum rejects it.
          r.rddp_active = false;
          std::copy(v.begin() + (body_start - frag_start),
                    v.begin() + (body_end - frag_start),
                    r.bytes.mutable_view().begin() + body_start);
        } else {
          const Status st =
              pit->second.as->write(pit->second.va + (body_start - data_start),
                                    v.subspan(body_start - frag_start, n));
          ORDMA_CHECK_MSG(st.ok(), "pre-posted buffer not writable");
          r.placed += n;
        }
      }
      const Bytes tail_start = std::max(frag_start, data_end);
      if (frag_end > tail_start) {
        const Bytes n = frag_end - tail_start;
        co_await dma_transfer(n, p.trace_op);
        std::copy(v.begin() + (tail_start - frag_start), v.end(),
                  r.bytes.mutable_view().begin() + tail_start);
      }
    } else {
      co_await dma_transfer(v.size(), p.trace_op);
      std::copy(v.begin(), v.end(),
                r.bytes.mutable_view().begin() + frag_start);
    }
    r.received += v.size();
  }

  if (r.received == p.msg_total) {
    EthDatagram d;
    d.src = p.src;
    d.trace_op = p.trace_op;
    d.rddp_xid = r.rddp_xid;
    d.rddp_placed = r.rddp_active;
    d.rddp_data_len = r.rddp_active ? r.rddp_data_len : 0;
    if (r.rddp_active) {
      preposts_.erase(r.rddp_xid);
      // Deliver only the header bytes (the payload was placed directly);
      // a zero-copy view suffices — the rep is recycled when it drops.
      const Bytes hdr = p.msg_total - r.rddp_data_len;
      d.data = r.bytes.slice(0, hdr);
    } else {
      d.data = std::move(r.bytes);
    }
    eth_rx_.erase(key);
    eth_pending_.push_back(std::move(d));
    raise_eth_interrupt();
  }
}

void Nic::raise_eth_interrupt() {
  if (eth_intr_pending_) return;  // coalesced into the pending interrupt
  eth_intr_pending_ = true;
  host_.post_interrupt([this]() -> sim::Task<void> {
    while (!eth_pending_.empty()) {
      EthDatagram d = std::move(eth_pending_.front());
      eth_pending_.pop_front();
      if (eth_sink_) co_await eth_sink_(std::move(d));
    }
    eth_intr_pending_ = false;
    if (!eth_pending_.empty()) raise_eth_interrupt();
  });
}

}  // namespace ordma::nic
