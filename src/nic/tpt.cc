#include "nic/tpt.h"

namespace ordma::nic {

void Tpt::install(const Segment& seg) {
  ORDMA_CHECK(mem::page_offset(seg.nic_va) == 0);
  ORDMA_CHECK(mem::page_offset(seg.host_va) == 0);
  auto [it, inserted] = segments_.emplace(seg.id, seg);
  ORDMA_CHECK_MSG(inserted, "duplicate segment id in TPT");
  const auto pages = (seg.len + mem::kPageSize - 1) / mem::kPageSize;
  for (std::uint64_t i = 0; i < pages; ++i) {
    page_to_seg_[mem::page_of(seg.nic_va) + i] = seg.id;
  }
}

std::optional<Segment> Tpt::remove(std::uint64_t seg_id) {
  auto it = segments_.find(seg_id);
  if (it == segments_.end()) return std::nullopt;
  Segment seg = it->second;
  const auto pages = (seg.len + mem::kPageSize - 1) / mem::kPageSize;
  for (std::uint64_t i = 0; i < pages; ++i) {
    page_to_seg_.erase(mem::page_of(seg.nic_va) + i);
  }
  segments_.erase(it);
  return seg;
}

const Segment* Tpt::find_segment(std::uint64_t seg_id) const {
  auto it = segments_.find(seg_id);
  return it == segments_.end() ? nullptr : &it->second;
}

Segment* Tpt::find_segment_mutable(std::uint64_t seg_id) {
  auto it = segments_.find(seg_id);
  return it == segments_.end() ? nullptr : &it->second;
}

const Segment* Tpt::segment_of_page(mem::Vpn nic_vpn) const {
  auto it = page_to_seg_.find(nic_vpn);
  if (it == page_to_seg_.end()) return nullptr;
  return find_segment(it->second);
}

NicTlb::~NicTlb() {
  while (auto* e = lru_.pop_front()) {
    map_.erase(e->nic_vpn);
    delete e;
  }
}

NicTlb::Entry* NicTlb::lookup(mem::Vpn nic_vpn) {
  auto it = map_.find(nic_vpn);
  if (it == map_.end()) return nullptr;
  lru_.touch(it->second);
  ++hits_;
  return it->second;
}

std::optional<NicTlb::Entry> NicTlb::insert(const Entry& e) {
  ORDMA_CHECK_MSG(map_.find(e.nic_vpn) == map_.end(),
                  "TLB insert over existing entry");
  std::optional<Entry> evicted;
  if (map_.size() >= capacity_) {
    Entry* victim = lru_.pop_front();
    ORDMA_CHECK(victim);
    map_.erase(victim->nic_vpn);
    evicted = *victim;
    delete victim;
  }
  auto* owned = new Entry(e);
  // Copying an Entry copies the (unlinked) ListNode base; make sure the new
  // node starts unlinked regardless of source state.
  owned->prev = owned->next = nullptr;
  map_[owned->nic_vpn] = owned;
  lru_.push_back(owned);
  return evicted;
}

std::vector<NicTlb::Entry> NicTlb::invalidate_segment(std::uint64_t seg_id) {
  std::vector<Entry> out;
  std::vector<Entry*> victims;
  lru_.for_each([&](Entry* e) {
    if (e->seg_id == seg_id) victims.push_back(e);
  });
  for (Entry* e : victims) {
    out.push_back(*e);
    lru_.erase(e);
    map_.erase(e->nic_vpn);
    delete e;
  }
  return out;
}

}  // namespace ordma::nic
