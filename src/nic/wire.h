// Control words the NIC firmware attaches to link packets.
//
// GmCtrl models the GM protocol header (message sends, get/put requests and
// replies, NIC-to-NIC exception reports — §4.1). EthCtrl models the
// Ethernet-emulation framing used by the UDP/IP path, including the fields
// an RDDP-RPC capable NIC needs for header splitting (§3.2): which RPC
// transaction the payload belongs to and where the payload starts inside the
// datagram.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/units.h"
#include "crypto/capability.h"
#include "mem/physical_memory.h"

namespace ordma::nic {

enum class GmOp : std::uint8_t {
  data = 0,       // ordinary message send
  get_req = 1,    // RDMA read request
  get_reply = 2,  // RDMA read data (or fault report)
  put_req = 3,    // RDMA write data
  put_ack = 4,    // RDMA write completion (or fault report)
};

struct GmCtrl {
  GmOp op = GmOp::data;
  std::uint64_t op_id = 0;   // initiator-chosen id matching reply to request
  std::uint32_t port = 0;    // destination GM port (data messages)
  std::uint32_t user_tag = 0;

  // get/put addressing (target NIC address space) + protection.
  mem::Vaddr remote_va = 0;
  Bytes rdma_len = 0;
  crypto::Capability cap;

  // Fault code carried by get_reply / put_ack (Errc::ok on success). This is
  // the paper's "recoverable RDMA failure semantics" extension to VI (§4.1).
  Errc fault = Errc::ok;
};

struct EthCtrl {
  std::uint64_t dgram_id = 0;
  Bytes dgram_total = 0;     // datagram payload bytes overall
  Bytes frag_offset = 0;     // this fragment's offset within the datagram

  // RDDP-RPC framing (zero when not in use): the RPC transaction this
  // datagram answers and the offset where bulk data starts. A pre-posting
  // NIC uses these to split headers from payload and place the payload
  // directly into the tagged application buffer.
  std::uint32_t rddp_xid = 0;
  Bytes rddp_data_offset = 0;
  Bytes rddp_data_len = 0;
};

}  // namespace ordma::nic
