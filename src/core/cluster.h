// Experiment wiring: one server plus N client hosts on a 2 Gb/s fabric,
// mirroring the paper's 4-node Myrinet cluster. Owns engine, cost model,
// hosts, NICs, the server file system and whichever protocol services an
// experiment instantiates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "fs/server_fs.h"
#include "host/cost_model.h"
#include "host/host.h"
#include "msg/udp.h"
#include "nas/dafs/dafs_client.h"
#include "nas/dafs/dafs_server.h"
#include "nas/nfs/nfs_client.h"
#include "nas/nfs/nfs_server.h"
#include "nas/odafs/odafs_client.h"
#include "net/fabric.h"
#include "nic/nic.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace ordma::core {

struct ClusterConfig {
  unsigned num_clients = 1;
  host::CostModel cm{};
  host::HostConfig server_host{MiB(768)};
  host::HostConfig client_host{MiB(512)};
  fs::ServerFsConfig fs{};
  nic::NicConfig nic{};
  // Optional deterministic fault plan: when set, a FaultInjector is created
  // and hooked into every link, NIC and the server disk.
  std::optional<fault::FaultPlan> faults;
  // Retry policy handed to every NFS-family RPC client the factories build.
  rpc::RpcRetryPolicy rpc_retry{};
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg = {})
      : cfg_(cfg),
        cm_(cfg.cm),
        injector_(cfg.faults
                      ? std::make_unique<fault::FaultInjector>(*cfg.faults)
                      : nullptr),
        fabric_(eng_, fabric_config(cfg, injector_.get())) {
    if (injector_) injector_->bind_flight(&eng_);
    server_host_ = std::make_unique<host::Host>(eng_, "server", cm_,
                                                cfg.server_host);
    server_nic_ = std::make_unique<nic::Nic>(*server_host_, fabric_, cfg.nic,
                                             crypto::SipKey{0xA5, 0x5A});
    server_nic_->set_fault_injector(injector_.get());
    server_fs_ = std::make_unique<fs::ServerFs>(*server_host_, cfg.fs);
    server_fs_->disk().set_fault_injector(injector_.get());
    for (unsigned i = 0; i < cfg.num_clients; ++i) {
      auto h = std::make_unique<host::Host>(
          eng_, "client" + std::to_string(i), cm_, cfg.client_host);
      client_nics_.push_back(std::make_unique<nic::Nic>(
          *h, fabric_, cfg.nic, crypto::SipKey{0xC0 + i, 0x0C}));
      client_nics_.back()->set_fault_injector(injector_.get());
      client_hosts_.push_back(std::move(h));
    }
  }

  sim::Engine& engine() { return eng_; }
  host::CostModel& costs() { return cm_; }
  net::Fabric& fabric() { return fabric_; }
  host::Host& server() { return *server_host_; }
  host::Host& client(unsigned i = 0) { return *client_hosts_.at(i); }
  fs::ServerFs& server_fs() { return *server_fs_; }
  net::NodeId server_node() const { return server_nic_->node_id(); }
  nic::Nic& server_nic() { return *server_nic_; }
  nic::Nic& client_nic(unsigned i = 0) { return *client_nics_.at(i); }
  unsigned num_clients() const { return cfg_.num_clients; }
  fault::FaultInjector* fault_injector() { return injector_.get(); }

  // --- services -------------------------------------------------------------
  // NFS: one UDP stack per host; server bound at the well-known port.
  void start_nfs() {
    server_udp_ = std::make_unique<msg::UdpStack>(*server_host_);
    nfs_server_ = std::make_unique<nas::nfs::NfsServer>(
        *server_host_, *server_udp_, *server_fs_);
    client_udp_.resize(client_hosts_.size());
  }
  msg::UdpStack& client_udp(unsigned i) {
    auto& slot = client_udp_.at(i);
    if (!slot) slot = std::make_unique<msg::UdpStack>(*client_hosts_[i]);
    return *slot;
  }

  void start_dafs(nas::dafs::DafsServerConfig cfg = {}) {
    dafs_server_ =
        std::make_unique<nas::dafs::DafsServer>(*server_host_, *server_fs_,
                                                cfg);
  }
  nas::dafs::DafsServer& dafs_server() { return *dafs_server_; }
  nas::nfs::NfsServer& nfs_server() { return *nfs_server_; }

  // --- client factories ----------------------------------------------------
  // Every factory wires the server-CPU echo for the client's signal plane:
  // the client differences this cumulative busy time between its own ops.
  void attach_server_cpu_probe(core::FileClient& cl) {
    host::Host& srv = *server_host_;
    cl.set_server_cpu_probe(
        [&srv] { return static_cast<double>(srv.cpu().busy_time().ns) / 1e3; });
  }
  std::unique_ptr<nas::nfs::NfsClient> make_nfs_client(
      unsigned i, Bytes transfer = KiB(512)) {
    auto cl = std::make_unique<nas::nfs::NfsClient>(
        *client_hosts_[i], client_udp(i), server_node(),
        static_cast<std::uint16_t>(700 + next_port_++), transfer,
        cfg_.rpc_retry);
    attach_server_cpu_probe(*cl);
    return cl;
  }
  std::unique_ptr<nas::nfs::NfsPrepostClient> make_prepost_client(
      unsigned i, Bytes transfer = KiB(512)) {
    auto cl = std::make_unique<nas::nfs::NfsPrepostClient>(
        *client_hosts_[i], client_udp(i), server_node(),
        static_cast<std::uint16_t>(700 + next_port_++), transfer,
        cfg_.rpc_retry);
    attach_server_cpu_probe(*cl);
    return cl;
  }
  std::unique_ptr<nas::nfs::NfsHybridClient> make_hybrid_client(
      unsigned i, Bytes transfer = KiB(512)) {
    auto cl = std::make_unique<nas::nfs::NfsHybridClient>(
        *client_hosts_[i], client_udp(i), server_node(),
        static_cast<std::uint16_t>(700 + next_port_++), transfer,
        cfg_.rpc_retry);
    attach_server_cpu_probe(*cl);
    return cl;
  }
  std::unique_ptr<nas::dafs::DafsClient> make_dafs_client(
      unsigned i, nas::dafs::DafsClientConfig cfg = {}) {
    auto cl = std::make_unique<nas::dafs::DafsClient>(*client_hosts_[i],
                                                      server_node(), cfg);
    attach_server_cpu_probe(*cl);
    return cl;
  }
  std::unique_ptr<nas::odafs::OdafsClient> make_odafs_client(
      unsigned i, nas::odafs::OdafsClientConfig cfg = {}) {
    auto cl = std::make_unique<nas::odafs::OdafsClient>(*client_hosts_[i],
                                                        server_node(), cfg);
    attach_server_cpu_probe(*cl);
    return cl;
  }

  // Register pull-gauges for every component's counters under
  // "<host>/<component>/<stat>" paths. Sampled when the registry writes its
  // snapshot (or when a timeseries sampler closes a window), so this costs
  // nothing during the run itself. Monotone totals are registered as
  // *cumulative* gauges so obs/timeseries.h differences them into
  // per-window rates; instantaneous levels (queue depths) stay point
  // samples.
  void export_metrics(obs::MetricsRegistry& reg) {
    constexpr bool kCumulative = true;
    auto host_gauges = [&reg](host::Host& h, nic::Nic& n) {
      const std::string p = h.name();
      reg.gauge(p + "/cpu/busy_us",
                [&h] { return h.cpu().busy_time().ns / 1e3; }, kCumulative);
      reg.gauge(p + "/nic/fw_busy_us",
                [&n] { return n.fw_busy().ns / 1e3; }, kCumulative);
      reg.gauge(p + "/nic/ordma_served",
                [&n] { return static_cast<double>(n.ordma_served()); },
                kCumulative);
      reg.gauge(p + "/nic/ordma_faults",
                [&n] { return static_cast<double>(n.ordma_faults()); },
                kCumulative);
      reg.gauge(p + "/nic/ordma_timeouts",
                [&n] { return static_cast<double>(n.ordma_timeouts()); },
                kCumulative);
      reg.gauge(p + "/nic/rx_queue",
                [&n] { return static_cast<double>(n.rx_backlog()); });
    };
    host_gauges(*server_host_, *server_nic_);
    for (std::size_t i = 0; i < client_hosts_.size(); ++i) {
      host_gauges(*client_hosts_[i], *client_nics_[i]);
    }
    fs::ServerFs& sfs = *server_fs_;
    reg.gauge("server/cache/hits", [&sfs] {
      return static_cast<double>(sfs.cache().hits());
    }, kCumulative);
    reg.gauge("server/cache/misses", [&sfs] {
      return static_cast<double>(sfs.cache().misses());
    }, kCumulative);
    reg.gauge("server/disk/reads", [&sfs] {
      return static_cast<double>(sfs.disk().reads());
    }, kCumulative);
    reg.gauge("server/disk/writes", [&sfs] {
      return static_cast<double>(sfs.disk().writes());
    }, kCumulative);
    if (nfs_server_) {
      nas::nfs::NfsServer& srv = *nfs_server_;
      reg.gauge("server/rpc/dup_replays", [&srv] {
        return static_cast<double>(srv.rpc_server().dup_replays());
      }, kCumulative);
      reg.gauge("server/rpc/dup_drops", [&srv] {
        return static_cast<double>(srv.rpc_server().dup_drops());
      }, kCumulative);
      reg.gauge("server/rpc/cksum_drops", [&srv] {
        return static_cast<double>(srv.rpc_server().cksum_drops());
      }, kCumulative);
    }
    if (dafs_server_) {
      nas::dafs::DafsServer& srv = *dafs_server_;
      reg.gauge("server/dafs/put_commits", [&srv] {
        return static_cast<double>(srv.put_commits());
      }, kCumulative);
      reg.gauge("server/dafs/put_rejects", [&srv] {
        return static_cast<double>(srv.put_rejects());
      }, kCumulative);
      reg.gauge("server/dafs/invalidations_sent", [&srv] {
        return static_cast<double>(srv.invalidations_sent());
      }, kCumulative);
      reg.gauge("server/dafs/invalidation_giveups", [&srv] {
        return static_cast<double>(srv.invalidation_giveups());
      }, kCumulative);
      reg.gauge("server/dafs/wb_syncs", [&srv] {
        return static_cast<double>(srv.wb_syncs());
      }, kCumulative);
      nic::Nic& snic = *server_nic_;
      reg.gauge("server/nic/puts_served", [&snic] {
        return static_cast<double>(snic.puts_served());
      }, kCumulative);
      reg.gauge("server/nic/put_dups_dropped", [&snic] {
        return static_cast<double>(snic.put_dups_dropped());
      }, kCumulative);
    }
    if (injector_) {
      fault::FaultInjector& inj = *injector_;
      reg.gauge("fault/frames_dropped", [&inj] {
        return static_cast<double>(inj.frames_dropped());
      }, kCumulative);
      reg.gauge("fault/frames_corrupted", [&inj] {
        return static_cast<double>(inj.frames_corrupted() +
                                   inj.frames_corrupt_dropped());
      }, kCumulative);
      reg.gauge("fault/frames_duplicated", [&inj] {
        return static_cast<double>(inj.frames_duplicated());
      }, kCumulative);
      reg.gauge("fault/frames_delayed", [&inj] {
        return static_cast<double>(inj.frames_delayed());
      }, kCumulative);
      reg.gauge("fault/doorbell_stalls", [&inj] {
        return static_cast<double>(inj.doorbell_stalls());
      }, kCumulative);
      reg.gauge("fault/cap_revokes", [&inj] {
        return static_cast<double>(inj.cap_revokes());
      }, kCumulative);
      reg.gauge("fault/tlb_invalidates", [&inj] {
        return static_cast<double>(inj.tlb_invalidates());
      }, kCumulative);
      reg.gauge("fault/disk_errors", [&inj] {
        return static_cast<double>(inj.disk_errors());
      }, kCumulative);
      reg.gauge("fault/put_revokes", [&inj] {
        return static_cast<double>(inj.put_revokes());
      }, kCumulative);
    }
    net::Fabric& fab = fabric_;
    for (net::NodeId id = 0; id < fab.num_nodes(); ++id) {
      const std::string p = "net/" + std::to_string(id);
      reg.gauge(p + "/up_bytes", [&fab, id] {
        return static_cast<double>(fab.uplink(id).bytes_delivered());
      }, kCumulative);
      reg.gauge(p + "/down_bytes", [&fab, id] {
        return static_cast<double>(fab.downlink(id).bytes_delivered());
      }, kCumulative);
      reg.gauge(p + "/up_backlog", [&fab, id] {
        return static_cast<double>(fab.uplink(id).backlog());
      });
      reg.gauge(p + "/down_backlog", [&fab, id] {
        return static_cast<double>(fab.downlink(id).backlog());
      });
    }
  }

  // Uniform per-client op accounting: op/error/retry rates plus the op
  // latency histogram, under "<client>/io/...". Works for every protocol
  // client (core::FileClient::OpStats); these are the series the health
  // engine's stock SLOs (obs/health.h) suffix-match on.
  void export_file_client_metrics(obs::MetricsRegistry& reg, unsigned i,
                                  const core::FileClient& cl) {
    constexpr bool kCumulative = true;
    const std::string p = client_hosts_.at(i)->name();
    const core::FileClient::OpStats& st = cl.op_stats();
    reg.gauge(p + "/io/ops",
              [&st] { return static_cast<double>(st.ops); }, kCumulative);
    reg.gauge(p + "/io/errors",
              [&st] { return static_cast<double>(st.errors); }, kCumulative);
    reg.gauge(p + "/io/retries",
              [&st] { return static_cast<double>(st.retries); }, kCumulative);
    reg.histogram_view(p + "/io/latency_us", &st.latency_us);
    // Signal plane (obs/signals.h): the EWMA estimators the adaptive policy
    // (policy/policy.h) reads. Exported for every protocol so benches can
    // trace comparable signal blocks across arms; ORDMA-only series stay at
    // their unprimed zero for protocols without an ORDMA path. Point
    // samples, not deltas.
    const obs::OpSignals& sig = cl.signals();
    reg.gauge(p + "/signals/ref_hit_rate",
              [&sig] { return sig.ref_hit_rate.value(); });
    reg.gauge(p + "/signals/op_bytes",
              [&sig] { return sig.op_bytes.value(); });
    reg.gauge(p + "/signals/server_cpu",
              [&sig] { return sig.server_cpu.value(); });
    reg.gauge(p + "/signals/exception_rate",
              [&sig] { return sig.exception_rate.value(); });
  }

  // Per-ODAFS-client series. The client objects are built by the caller
  // (they live outside the cluster), so they are exported separately; the
  // reference-directory hit behaviour these expose — data hits vs RPC
  // fallbacks — is the signal the ROADMAP item 4 policy engine keys on.
  void export_odafs_client_metrics(obs::MetricsRegistry& reg, unsigned i,
                                   nas::odafs::OdafsClient& cl) {
    constexpr bool kCumulative = true;
    const std::string p = client_hosts_.at(i)->name();
    reg.gauge(p + "/odafs/rpc_reads",
              [&cl] { return static_cast<double>(cl.rpc_reads()); },
              kCumulative);
    reg.gauge(p + "/odafs/ordma_reads",
              [&cl] { return static_cast<double>(cl.ordma_reads()); },
              kCumulative);
    reg.gauge(p + "/cache/data_hits", [&cl] {
      return static_cast<double>(cl.block_cache().data_hits());
    }, kCumulative);
    reg.gauge(p + "/cache/data_misses", [&cl] {
      return static_cast<double>(cl.block_cache().data_misses());
    }, kCumulative);
    reg.gauge(p + "/cache/refs_held", [&cl] {
      return static_cast<double>(cl.block_cache().refs_held());
    });
    // Write path / coherence traffic.
    reg.gauge(p + "/odafs/puts_issued",
              [&cl] { return static_cast<double>(cl.puts_issued()); },
              kCumulative);
    reg.gauge(p + "/odafs/put_commits",
              [&cl] { return static_cast<double>(cl.put_commits()); },
              kCumulative);
    reg.gauge(p + "/odafs/put_fallbacks",
              [&cl] { return static_cast<double>(cl.put_fallbacks()); },
              kCumulative);
    reg.gauge(p + "/odafs/invalidates_rx",
              [&cl] { return static_cast<double>(cl.invalidates_rx()); },
              kCumulative);
    reg.gauge(p + "/odafs/inval_drops",
              [&cl] { return static_cast<double>(cl.inval_drops()); },
              kCumulative);
    reg.gauge(p + "/odafs/wb_flushes",
              [&cl] { return static_cast<double>(cl.wb_flushes()); },
              kCumulative);
    // Adaptive policy engine (policy/policy.h): decision/flip/exploration
    // counters as cumulative series, plus the current read preference as a
    // point gauge (1.0 = ORDMA, 0.0 = RPC) so a timeseries trace shows the
    // mid-run mechanism flip as a step edge.
    const policy::PolicyEngine& pol = cl.protocol_policy();
    const policy::PolicyEngine::Counters& pn = pol.counters();
    reg.gauge(p + "/policy/read_decisions",
              [&pn] { return static_cast<double>(pn.read_decisions); },
              kCumulative);
    reg.gauge(p + "/policy/read_flips",
              [&pn] { return static_cast<double>(pn.read_flips); },
              kCumulative);
    reg.gauge(p + "/policy/read_explored",
              [&pn] { return static_cast<double>(pn.read_explored); },
              kCumulative);
    reg.gauge(p + "/policy/read_vetoes",
              [&pn] { return static_cast<double>(pn.read_vetoes); },
              kCumulative);
    reg.gauge(p + "/policy/write_decisions",
              [&pn] { return static_cast<double>(pn.write_decisions); },
              kCumulative);
    reg.gauge(p + "/policy/write_flips",
              [&pn] { return static_cast<double>(pn.write_flips); },
              kCumulative);
    reg.gauge(p + "/policy/write_explored",
              [&pn] { return static_cast<double>(pn.write_explored); },
              kCumulative);
    reg.gauge(p + "/policy/read_pref", [&pol] {
      return pol.read_pref() == policy::ReadMech::ordma ? 1.0 : 0.0;
    });
  }

  // --- experiment helpers ---------------------------------------------------
  // Create a file of `size` bytes of deterministic content directly in the
  // server fs (setup outside measured time) and optionally warm the cache.
  sim::Task<fs::Ino> make_file(std::string name, Bytes size, bool warm,
                               std::uint64_t seed = 1) {
    auto ino =
        server_fs_->create(fs::ServerFs::kRootIno, name, fs::FileType::regular);
    ORDMA_CHECK(ino.ok());
    std::vector<std::byte> chunk(KiB(64));
    Bytes off = 0;
    std::uint64_t x = seed;
    while (off < size) {
      const Bytes n = std::min<Bytes>(chunk.size(), size - off);
      for (Bytes i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        chunk[i] = static_cast<std::byte>(x >> 56);
      }
      auto wrote = co_await server_fs_->write(ino.value(), off,
                                              {chunk.data(), n});
      ORDMA_CHECK(wrote.ok());
      off += n;
    }
    if (warm) ORDMA_CHECK((co_await server_fs_->warm(ino.value())).ok());
    co_return ino.value();
  }

 private:
  static net::FabricConfig fabric_config(const ClusterConfig&,
                                         fault::FaultInjector* inj) {
    net::FabricConfig c;
    c.injector = inj;
    return c;
  }

  ClusterConfig cfg_;
  sim::Engine eng_;
  host::CostModel cm_;
  std::unique_ptr<fault::FaultInjector> injector_;  // before fabric_
  net::Fabric fabric_;
  std::unique_ptr<host::Host> server_host_;
  std::unique_ptr<nic::Nic> server_nic_;
  std::unique_ptr<fs::ServerFs> server_fs_;
  std::vector<std::unique_ptr<host::Host>> client_hosts_;
  std::vector<std::unique_ptr<nic::Nic>> client_nics_;
  std::unique_ptr<msg::UdpStack> server_udp_;
  std::vector<std::unique_ptr<msg::UdpStack>> client_udp_;
  std::unique_ptr<nas::nfs::NfsServer> nfs_server_;
  std::unique_ptr<nas::dafs::DafsServer> dafs_server_;
  unsigned next_port_ = 0;
};

}  // namespace ordma::core
