// The uniform file-access interface every protocol client implements, so
// workloads (streaming reader, Berkeley-DB stand-in, PostMark) are
// protocol-agnostic. Reads and writes move real bytes to/from user-space
// buffers in the client host's address space.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/stats.h"
#include "common/units.h"
#include "fs/server_fs.h"
#include "mem/physical_memory.h"
#include "obs/sampler.h"
#include "obs/signals.h"
#include "sim/task.h"

namespace ordma::core {

struct OpenResult {
  std::uint64_t fh = 0;
  Bytes size = 0;
};

class FileClient {
 public:
  virtual ~FileClient() = default;

  // Uniform per-client op accounting, fed by each protocol's op wrappers
  // via record_op(). The cluster exports these as "<client>/io/..." —
  // the series the health engine's stock SLOs (obs/health.h) watch.
  struct OpStats {
    std::uint64_t ops = 0;      // completed file ops (any outcome)
    std::uint64_t errors = 0;   // ops that returned a failure Status
    std::uint64_t retries = 0;  // protocol-level retries within ops
    LatencyHistogram latency_us;
  };
  const OpStats& op_stats() const { return stats_; }

  // --- Signal plane (obs/signals.h) ----------------------------------------
  // Always-on EWMA estimators of the mechanism-selection signals (ref hit
  // rate, op size, server CPU echo, ORDMA exception rate), populated by
  // every protocol's op wrappers and exported as "<client>/signals/..."
  // gauges. ORDMA-specific series (ref_hit_rate, exception_rate) stay at
  // their unprimed zero for protocols without an ORDMA path, so the policy
  // bench can trace comparable signal blocks for every arm.
  const obs::OpSignals& signals() const { return signals_; }
  // `fn` returns the server's cumulative CPU busy time in us; the client
  // differences it against wall time between its own ops (the utilization
  // a real server would echo in replies).
  void set_server_cpu_probe(std::function<double()> fn) {
    server_cpu_probe_ = std::move(fn);
  }

  virtual sim::Task<Result<OpenResult>> open(const std::string& path) = 0;
  virtual sim::Task<Status> close(std::uint64_t fh) = 0;

  // Read/write `len` bytes at file offset `off` into/from the user buffer
  // at `user_va` (in the client host's user address space). Returns bytes
  // transferred (reads may be short at EOF).
  virtual sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                         mem::Vaddr user_va, Bytes len) = 0;
  virtual sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                          mem::Vaddr user_va, Bytes len) = 0;

  virtual sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) = 0;
  virtual sim::Task<Result<OpenResult>> create(const std::string& path) = 0;
  virtual sim::Task<Status> unlink(const std::string& path) = 0;

  // Push any client-side buffered writes to the server (write-back
  // caches). Write-through protocols have nothing buffered.
  virtual sim::Task<Status> sync() { co_return Status::Ok(); }

  virtual const char* protocol_name() const = 0;

 protected:
  // Called by protocol op wrappers at op completion, after the op's trace
  // root (so the sampler has decided keep/drop and the exemplar resolves).
  // Marks the op errored for the trace sampler *iff* !ok has not already
  // been noted — callers that classify failures earlier (retry give-ups)
  // call obs::note_op_error at the decision site instead.
  void record_op(obs::OpId op, Duration d, bool ok) {
    ++stats_.ops;
    if (!ok) ++stats_.errors;
    stats_.latency_us.add(d, obs::exemplar_for(op));
  }
  void note_retry() { ++stats_.retries; }

  // Fold a data op's size and a fresh server-CPU sample into the signal
  // block (call from pread/pwrite wrappers; `wall_us` = engine now in us).
  void update_op_signals(Bytes op_len, double wall_us) {
    signals_.op_bytes.update(static_cast<double>(op_len));
    sample_server_cpu(wall_us);
  }
  // Difference the cumulative busy-time echo into a utilization sample
  // (call alone from metadata-op wrappers, which have no op size).
  void sample_server_cpu(double wall_us) {
    if (!server_cpu_probe_) return;
    const double busy_us = server_cpu_probe_();
    if (probe_primed_ && wall_us > last_probe_wall_us_) {
      const double util = std::clamp(
          (busy_us - last_probe_busy_us_) / (wall_us - last_probe_wall_us_),
          0.0, 1.0);
      signals_.server_cpu.update(util);
    }
    last_probe_busy_us_ = busy_us;
    last_probe_wall_us_ = wall_us;
    probe_primed_ = true;
  }

  OpStats stats_;
  obs::OpSignals signals_;

 private:
  std::function<double()> server_cpu_probe_;
  double last_probe_busy_us_ = 0;
  double last_probe_wall_us_ = 0;
  bool probe_primed_ = false;
};

}  // namespace ordma::core
