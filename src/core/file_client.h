// The uniform file-access interface every protocol client implements, so
// workloads (streaming reader, Berkeley-DB stand-in, PostMark) are
// protocol-agnostic. Reads and writes move real bytes to/from user-space
// buffers in the client host's address space.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/units.h"
#include "fs/server_fs.h"
#include "mem/physical_memory.h"
#include "sim/task.h"

namespace ordma::core {

struct OpenResult {
  std::uint64_t fh = 0;
  Bytes size = 0;
};

class FileClient {
 public:
  virtual ~FileClient() = default;

  virtual sim::Task<Result<OpenResult>> open(const std::string& path) = 0;
  virtual sim::Task<Status> close(std::uint64_t fh) = 0;

  // Read/write `len` bytes at file offset `off` into/from the user buffer
  // at `user_va` (in the client host's user address space). Returns bytes
  // transferred (reads may be short at EOF).
  virtual sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                         mem::Vaddr user_va, Bytes len) = 0;
  virtual sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                          mem::Vaddr user_va, Bytes len) = 0;

  virtual sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) = 0;
  virtual sim::Task<Result<OpenResult>> create(const std::string& path) = 0;
  virtual sim::Task<Status> unlink(const std::string& path) = 0;

  // Push any client-side buffered writes to the server (write-back
  // caches). Write-through protocols have nothing buffered.
  virtual sim::Task<Status> sync() { co_return Status::Ok(); }

  virtual const char* protocol_name() const = 0;
};

}  // namespace ordma::core
