// The uniform file-access interface every protocol client implements, so
// workloads (streaming reader, Berkeley-DB stand-in, PostMark) are
// protocol-agnostic. Reads and writes move real bytes to/from user-space
// buffers in the client host's address space.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/stats.h"
#include "common/units.h"
#include "fs/server_fs.h"
#include "mem/physical_memory.h"
#include "obs/sampler.h"
#include "sim/task.h"

namespace ordma::core {

struct OpenResult {
  std::uint64_t fh = 0;
  Bytes size = 0;
};

class FileClient {
 public:
  virtual ~FileClient() = default;

  // Uniform per-client op accounting, fed by each protocol's op wrappers
  // via record_op(). The cluster exports these as "<client>/io/..." —
  // the series the health engine's stock SLOs (obs/health.h) watch.
  struct OpStats {
    std::uint64_t ops = 0;      // completed file ops (any outcome)
    std::uint64_t errors = 0;   // ops that returned a failure Status
    std::uint64_t retries = 0;  // protocol-level retries within ops
    LatencyHistogram latency_us;
  };
  const OpStats& op_stats() const { return stats_; }

  virtual sim::Task<Result<OpenResult>> open(const std::string& path) = 0;
  virtual sim::Task<Status> close(std::uint64_t fh) = 0;

  // Read/write `len` bytes at file offset `off` into/from the user buffer
  // at `user_va` (in the client host's user address space). Returns bytes
  // transferred (reads may be short at EOF).
  virtual sim::Task<Result<Bytes>> pread(std::uint64_t fh, Bytes off,
                                         mem::Vaddr user_va, Bytes len) = 0;
  virtual sim::Task<Result<Bytes>> pwrite(std::uint64_t fh, Bytes off,
                                          mem::Vaddr user_va, Bytes len) = 0;

  virtual sim::Task<Result<fs::Attr>> getattr(std::uint64_t fh) = 0;
  virtual sim::Task<Result<OpenResult>> create(const std::string& path) = 0;
  virtual sim::Task<Status> unlink(const std::string& path) = 0;

  // Push any client-side buffered writes to the server (write-back
  // caches). Write-through protocols have nothing buffered.
  virtual sim::Task<Status> sync() { co_return Status::Ok(); }

  virtual const char* protocol_name() const = 0;

 protected:
  // Called by protocol op wrappers at op completion, after the op's trace
  // root (so the sampler has decided keep/drop and the exemplar resolves).
  // Marks the op errored for the trace sampler *iff* !ok has not already
  // been noted — callers that classify failures earlier (retry give-ups)
  // call obs::note_op_error at the decision site instead.
  void record_op(obs::OpId op, Duration d, bool ok) {
    ++stats_.ops;
    if (!ok) ++stats_.errors;
    stats_.latency_us.add(d, obs::exemplar_for(op));
  }
  void note_retry() { ++stats_.retries; }

  OpStats stats_;
};

}  // namespace ordma::core
