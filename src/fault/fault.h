// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is a pure description: per-class probabilities for network
// frame loss/duplication/corruption/delay, NIC misbehaviour (doorbell
// stalls, spurious TPT/TLB shootdowns, capability revocation mid-transfer)
// and disk transients. A FaultInjector turns the plan into decisions, drawing
// from Rng streams forked off the plan seed, so a run replays bit-identically
// from one integer. With an all-zero plan the injector makes no draws at all
// — behaviour (and the golden event-stream hash) is identical to running
// with no injector installed.
//
// Corruption model: GM frames carry a link-level CRC, so a damaged GM frame
// is always detected and dropped (the initiator recovers via timeout).
// Ethernet frames escape the link CRC with probability `corrupt_escape`;
// escaped frames are delivered with a flipped bit and it is the RPC-layer
// end-to-end checksum's job to catch them.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "obs/flight.h"

namespace ordma::sim {
class Engine;
}

namespace ordma::fault {

struct NetFaults {
  double drop = 0.0;            // P(frame silently lost)
  double corrupt = 0.0;         // P(frame damaged in flight)
  double corrupt_escape = 0.0;  // P(damaged frame escapes the link CRC)
  double duplicate = 0.0;       // P(frame delivered twice)
  double delay_spike = 0.0;     // P(frame held back — overtaken = reordered)
  Duration delay = usec(80);    // extra latency applied to a held-back frame
};

struct NicFaults {
  double doorbell_stall = 0.0;  // P(doorbell write stalls the host)
  Duration stall = usec(20);
  double tlb_invalidate = 0.0;  // P(spurious TPT/TLB shootdown in resolve)
  double cap_revoke = 0.0;      // P(capability spuriously revoked mid-op)
  // P(capability spuriously revoked while a put resolves) — fires only on
  // the write path, so revoke-during-put recovery (partial-put rollback at
  // the target, replay at the initiator) stays exercised even in plans
  // that keep reads clean.
  double put_cap_revoke = 0.0;
};

struct DiskFaults {
  double transient_error = 0.0;  // P(media op fails with io_error once)
  double latency_spike = 0.0;    // P(media op takes a service-time outlier)
  Duration spike = msec(2);
};

struct FaultPlan {
  std::uint64_t seed = 1;
  NetFaults gm;
  NetFaults eth;
  NicFaults nic;
  DiskFaults disk;

  // The torture-matrix plan: 1% drop, 0.1% corrupt (always escaping on
  // ethernet), plus duplication and delay spikes on both fabrics and
  // spurious NIC exceptions — every recovery path stays busy.
  static FaultPlan adversarial(std::uint64_t seed);
};

// Verdict for one frame at its delivery point.
struct NetAction {
  bool drop = false;
  bool duplicate = false;
  Duration extra{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan),
        root_(plan.seed),
        net_rng_(root_.fork()),
        nic_rng_(root_.fork()),
        disk_rng_(root_.fork()) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Attach a flight-recorder ring ("fault") stamped from `eng`'s simulated
  // clock; every decision that fires is recorded (obs/flight.h). Purely
  // observational — no RNG draws, no scheduling — so hashes are unchanged.
  void bind_flight(sim::Engine* eng);

  // Arm/disarm the injector. While disarmed every hook is a benign no-op
  // and makes no RNG draws; the torture harness disarms around setup
  // (connection handshakes, file creation) and final verification so only
  // the measured workload runs under fire. Arming points are at
  // deterministic sim times, so replays stay bit-identical.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  // Link delivery hook, called once per frame. May replace the packet's
  // payload with a privately corrupted copy (payload Reps are shared with
  // retransmit buffers and must never be mutated in place).
  NetAction on_packet(net::Packet& p);

  // NIC hooks.
  Duration doorbell_stall();      // zero = no stall
  bool spurious_cap_revoke();     // pretend the capability was revoked
  bool spurious_put_revoke();     // revoke-during-put (write resolve only)
  bool spurious_tlb_invalidate();  // shoot down the segment's TLB entries

  // Disk hooks.
  bool disk_transient_error();
  Duration disk_latency_spike();  // zero = no outlier

  // Counters (exported as fault/* metrics).
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_corrupt_dropped() const {
    return frames_corrupt_dropped_;
  }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }
  std::uint64_t doorbell_stalls() const { return doorbell_stalls_; }
  std::uint64_t cap_revokes() const { return cap_revokes_; }
  std::uint64_t put_revokes() const { return put_revokes_; }
  std::uint64_t tlb_invalidates() const { return tlb_invalidates_; }
  std::uint64_t disk_errors() const { return disk_errors_; }
  std::uint64_t disk_spikes() const { return disk_spikes_; }

 private:
  void note(obs::flight::Ev ev, std::uint64_t a = 0, std::uint64_t b = 0);

  FaultPlan plan_;
  bool armed_ = true;
  sim::Engine* eng_ = nullptr;
  std::unique_ptr<obs::flight::Ring> ring_;
  Rng root_;
  Rng net_rng_;
  Rng nic_rng_;
  Rng disk_rng_;

  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_corrupt_dropped_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_delayed_ = 0;
  std::uint64_t doorbell_stalls_ = 0;
  std::uint64_t cap_revokes_ = 0;
  std::uint64_t put_revokes_ = 0;
  std::uint64_t tlb_invalidates_ = 0;
  std::uint64_t disk_errors_ = 0;
  std::uint64_t disk_spikes_ = 0;
};

}  // namespace ordma::fault
