#include "fault/fault.h"

#include "sim/engine.h"

namespace ordma::fault {

void FaultInjector::bind_flight(sim::Engine* eng) {
  eng_ = eng;
  if (eng_ && !ring_) {
    ring_ = std::make_unique<obs::flight::Ring>("fault");
  }
}

void FaultInjector::note(obs::flight::Ev ev, std::uint64_t a,
                         std::uint64_t b) {
  if (ring_) ring_->record(eng_->now().ns, ev, a, b);
}

FaultPlan FaultPlan::adversarial(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.gm.drop = 0.01;
  p.gm.corrupt = 0.001;  // GM CRC catches these: they become drops
  p.gm.duplicate = 0.005;
  p.gm.delay_spike = 0.005;
  p.gm.delay = usec(80);
  p.eth.drop = 0.01;
  p.eth.corrupt = 0.001;
  p.eth.corrupt_escape = 1.0;  // worst case: every damaged frame escapes CRC
  p.eth.duplicate = 0.005;
  p.eth.delay_spike = 0.005;
  p.eth.delay = usec(80);
  p.nic.doorbell_stall = 0.002;
  p.nic.stall = usec(20);
  p.nic.tlb_invalidate = 0.01;
  p.nic.cap_revoke = 0.01;
  p.nic.put_cap_revoke = 0.01;
  return p;
}

NetAction FaultInjector::on_packet(net::Packet& p) {
  NetAction a;
  if (!armed_) return a;
  const NetFaults& f = p.proto == net::Proto::gm ? plan_.gm : plan_.eth;
  const auto proto = static_cast<std::uint64_t>(p.proto);
  if (f.drop > 0 && net_rng_.chance(f.drop)) {
    ++frames_dropped_;
    note(obs::flight::Ev::fault_drop, proto, p.dst);
    a.drop = true;
    return a;
  }
  if (f.corrupt > 0 && net_rng_.chance(f.corrupt)) {
    const bool escapes = p.proto == net::Proto::ethernet &&
                         f.corrupt_escape > 0 &&
                         net_rng_.chance(f.corrupt_escape);
    if (!escapes || p.payload.size() == 0) {
      // Link CRC caught it (or there is no payload to damage): the frame
      // is discarded exactly like a drop.
      ++frames_corrupt_dropped_;
      note(obs::flight::Ev::fault_corrupt, proto, 0);
      a.drop = true;
      return a;
    }
    net::Buffer copy = net::Buffer::copy_of(p.payload.view());
    auto w = copy.mutable_view();
    const std::uint64_t at = net_rng_.below(w.size());
    const std::uint64_t bit = net_rng_.below(8);
    w[at] ^= static_cast<std::byte>(1u << bit);
    p.payload = std::move(copy);
    ++frames_corrupted_;
    note(obs::flight::Ev::fault_corrupt, proto, 1);
  }
  if (f.duplicate > 0 && net_rng_.chance(f.duplicate)) {
    ++frames_duplicated_;
    note(obs::flight::Ev::fault_duplicate, proto);
    a.duplicate = true;
  }
  if (f.delay_spike > 0 && net_rng_.chance(f.delay_spike)) {
    ++frames_delayed_;
    note(obs::flight::Ev::fault_delay, proto,
         static_cast<std::uint64_t>(f.delay.ns));
    a.extra = f.delay;
  }
  return a;
}

Duration FaultInjector::doorbell_stall() {
  if (armed_ && plan_.nic.doorbell_stall > 0 && nic_rng_.chance(plan_.nic.doorbell_stall)) {
    ++doorbell_stalls_;
    note(obs::flight::Ev::fault_stall, 0,
         static_cast<std::uint64_t>(plan_.nic.stall.ns));
    return plan_.nic.stall;
  }
  return Duration{0};
}

bool FaultInjector::spurious_cap_revoke() {
  if (armed_ && plan_.nic.cap_revoke > 0 && nic_rng_.chance(plan_.nic.cap_revoke)) {
    ++cap_revokes_;
    note(obs::flight::Ev::fault_cap_revoke);
    return true;
  }
  return false;
}

bool FaultInjector::spurious_put_revoke() {
  if (armed_ && plan_.nic.put_cap_revoke > 0 &&
      nic_rng_.chance(plan_.nic.put_cap_revoke)) {
    ++put_revokes_;
    note(obs::flight::Ev::fault_put_revoke);
    return true;
  }
  return false;
}

bool FaultInjector::spurious_tlb_invalidate() {
  if (armed_ && plan_.nic.tlb_invalidate > 0 &&
      nic_rng_.chance(plan_.nic.tlb_invalidate)) {
    ++tlb_invalidates_;
    note(obs::flight::Ev::fault_tlb_inval);
    return true;
  }
  return false;
}

bool FaultInjector::disk_transient_error() {
  if (armed_ && plan_.disk.transient_error > 0 &&
      disk_rng_.chance(plan_.disk.transient_error)) {
    ++disk_errors_;
    note(obs::flight::Ev::fault_disk_error);
    return true;
  }
  return false;
}

Duration FaultInjector::disk_latency_spike() {
  if (armed_ && plan_.disk.latency_spike > 0 &&
      disk_rng_.chance(plan_.disk.latency_spike)) {
    ++disk_spikes_;
    note(obs::flight::Ev::fault_disk_spike, 0,
         static_cast<std::uint64_t>(plan_.disk.spike.ns));
    return plan_.disk.spike;
  }
  return Duration{0};
}

}  // namespace ordma::fault
