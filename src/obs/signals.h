// Per-client signal plane: the windowed estimators ROADMAP item 4's
// adaptive protocol policy will read.
//
// The paper's Fig. 7 crossover (and RFP's RPC-vs-remote-read analysis)
// says mechanism selection hinges on a handful of runtime signals: does
// this client's reference directory hit, how big are its ops, how loaded
// is the server, how often do its ORDMA accesses fault. This header gives
// clients a tiny always-on estimator block for exactly those signals —
// exponentially weighted moving averages, O(1) state, a few flops per op,
// no RNG, no scheduling, no observability dependency — and the cluster
// exports them as plain gauges ("<client>/signals/...") so the timeseries
// sampler, the health engine, and (eventually) the in-process policy
// engine all read the same numbers.
#pragma once

#include <cstdint>

namespace ordma::obs {

// Exponentially weighted moving average; the first sample initializes.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void update(double x) {
    v_ = primed_ ? alpha_ * x + (1.0 - alpha_) * v_ : x;
    primed_ = true;
  }
  double value() const { return v_; }
  bool primed() const { return primed_; }

 private:
  double alpha_;
  double v_ = 0;
  bool primed_ = false;
};

// One protocol client's signal block. Updated inline at op completion /
// fetch sites; read via gauges at snapshot boundaries.
struct OpSignals {
  // Fraction of block fetches served by client-initiated ORDMA (a held
  // reference hit) rather than server RPC. The Fig. 7 win condition.
  Ewma ref_hit_rate{0.2};
  // Bytes per file op — RFP's crossover moves with request size.
  Ewma op_bytes{0.2};
  // Server CPU utilization estimate in [0,1]: the busy-time gauge echoed
  // to the client, differenced between this client's ops.
  Ewma server_cpu{0.2};
  // Fraction of ORDMA attempts that faulted (stale/revoked reference).
  Ewma exception_rate{0.2};
};

}  // namespace ordma::obs
