// Tail-based trace sampling: keep the interesting 1% at ~0% cost.
//
// Full-span tracing (obs/trace.h) records every span of every op — perfect
// for one diagnosed run, too heavy to leave on across a fleet-scale sweep.
// A TraceSampler attaches to a TraceRecorder and turns it into a
// keep-the-tail recorder: every op's spans *stage* into a small per-op ring
// and the keep/drop decision happens at op completion (the "op/..." root
// span, which clients record last). An op is kept when it
//
//   * exceeded the rolling latency quantile (cfg.tail_quantile, default
//     p99) over recently completed ops (an exponentially decayed window,
//     cfg.decay_every — so the threshold tracks workload shifts mid-sweep),
//   * errored (note_error), retried (note_retry), or suffered an ORDMA
//     exception (note_exception) — marked at the recovery sites themselves,
//   * or wins the 1-in-N reservoir draw for otherwise-boring ops
//     (cfg.reservoir_n), so the body of the distribution stays represented.
//
// Everything else is dropped before it ever reaches trace storage.
//
// Determinism contract (same as every obs surface): the sampler is an
// observer. It never schedules, never reads the engine clock (decision
// thresholds come from the simulated-time stamps already on the events),
// and its reservoir draws come from a private Rng forked off a fixed
// config seed — zero draws are made from any simulation stream, and zero
// draws at all when no sampler is attached, so golden event-stream hashes
// are bit-identical with sampling on vs off (pinned by
// tests/sampler_test.cc and tests/integration/parallel_determinism_test.cc).
//
// Memory is bounded by construction: ops stage into a direct-mapped table
// of max_staged_ops slots (rounded up to a power of two; a newly arriving
// op evicts whatever op collides with its slot) and each op stages at most
// max_events_per_op events (ring overwrite beyond that) — staging never
// grows with run length. The direct map keeps the per-event cost to one
// masked index + compare, which is what lets sampling stay within the ~5%
// overhead budget of running with observability off.
//
// Kept events are committed to the recorder at finish() (or destruction):
// staged events are replayed in nondecreasing end_ns order through
// TraceRecorder::record_direct(), which preserves the recorder's
// nondecreasing-end-order lane discipline, so sampled traces pass
// scripts/validate_trace.py unchanged.
//
// Every decision is also dropped into a flight-recorder ring ("sampler"),
// so a postmortem dump shows why a trace was (or was not) retained.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace ordma::obs {

class TraceSampler {
 public:
  struct Config {
    // Keep every op at or above this rolling quantile of completed-op
    // latency. The threshold is the histogram bucket upper edge — a
    // conservative bound, so the sampler over-keeps rather than losing a
    // genuine tail op. The first completed op always keeps (no history).
    double tail_quantile = 0.99;
    // Halve the threshold histogram every this many decisions, making the
    // quantile genuinely *rolling* (an exponential window of roughly
    // 2 × decay_every ops). Without decay a long sweep's early cells
    // pollute the threshold for later, slower cells and every one of their
    // ops keeps as "tail" until the cumulative histogram catches up.
    // 0 disables decay (cumulative-since-start threshold).
    std::uint32_t decay_every = 2048;
    // Keep 1-in-N of the unmarked (fast, clean) ops. 0 disables the
    // reservoir entirely — and with it every RNG draw.
    std::uint32_t reservoir_n = 64;
    // Seed for the private reservoir stream. Fixed default: sampling the
    // same run twice keeps the same ops.
    std::uint64_t seed = 0x5eedda7a;
    // Staging bounds (see header comment). Both are rounded up to powers
    // of two so the hot path is a mask, not a division. max_staged_ops is
    // an in-flight-op concurrency bound, not a volume bound — it is kept
    // small deliberately so the slot headers and recycled rings the
    // staging path cycles through stay cache-resident (sequential op ids
    // walk the whole table even at concurrency 1).
    std::size_t max_staged_ops = 128;
    std::size_t max_events_per_op = 256;
  };

  // Why an op was kept (bitmask; 0 = no reason, dropped unless reservoir).
  enum Reason : std::uint32_t {
    kTail = 1u << 0,       // latency >= rolling quantile threshold
    kError = 1u << 1,      // note_error
    kRetry = 1u << 2,      // note_retry
    kException = 1u << 3,  // note_exception (ORDMA fault path)
    kReservoir = 1u << 4,  // won the 1-in-N draw
  };

  struct Decision {
    OpId op = 0;
    std::int64_t latency_ns = 0;
    std::int64_t threshold_ns = 0;  // rolling threshold the op was judged by
    std::uint32_t reasons = 0;
    bool kept = false;
  };

  // Attaches to `rec` (rec.set_sampler(this)). The recorder must outlive
  // the sampler; the sampler detaches and flushes kept events on
  // destruction.
  explicit TraceSampler(TraceRecorder& rec);
  TraceSampler(TraceRecorder& rec, const Config& cfg);
  ~TraceSampler();
  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  // Called by TraceRecorder::record() while attached. Kind::root triggers
  // the keep/drop decision for `op`; everything else stages. This runs once
  // per trace event of the whole run, so the body is inline and branch-lean:
  // a masked slot lookup, a struct store, and counter bumps.
  void stage(TraceRecorder::Kind kind, TrackId track, OpId op,
             const char* name, std::int64_t begin_ns, std::int64_t end_ns) {
    if (finished_) {  // post-flush stragglers bypass staging
      stage_slow(kind, track, op, name, begin_ns, end_ns);
      return;
    }
    if (op == 0) {
      // Ambient work has no completion point to decide at; under sampling
      // it is dropped (and counted) rather than staged forever.
      ++ambient_dropped_;
      return;
    }
    Slot& s = slots_[static_cast<std::size_t>(op & slot_mask_)];
    if (s.op != op) admit(s, op);
    if (kind == TraceRecorder::Kind::root) {
      decide(s, name, track, begin_ns, end_ns);
      return;
    }
    ++events_staged_;
    const std::size_t pos = s.count & ev_mask_;
    const RingEv ev{begin_ns, end_ns, name, track,
                    static_cast<std::uint32_t>(kind)};
    if (s.ring.size() <= pos) {
      s.ring.push_back(ev);
    } else {
      s.ring[pos] = ev;
      ++events_overwritten_;
    }
    ++s.count;
  }

  // Mark the in-flight op as interesting; any mark forces retention at
  // completion. Safe for op 0 / unstaged ops (no-ops / creates the slot).
  void note_error(OpId op) { mark(op, kError); }
  void note_retry(OpId op) { mark(op, kRetry); }
  void note_exception(OpId op) { mark(op, kException); }

  // True iff `op` completed and was kept. (In-flight ops report false.)
  bool kept(OpId op) const { return kept_ops_.count(op) != 0; }

  // Commit kept events to the recorder (idempotent; destruction calls it).
  // Ops still in flight are discarded — their decision never happened.
  void finish();

  // The rolling keep threshold the *next* completing op will be judged by.
  std::int64_t threshold_ns() const;

  // --- accounting --------------------------------------------------------
  std::uint64_t ops_decided() const { return ops_decided_; }
  std::uint64_t ops_kept() const { return ops_kept_; }
  std::uint64_t ops_evicted() const { return ops_evicted_; }
  std::uint64_t events_staged() const { return events_staged_; }
  std::uint64_t events_kept() const { return events_kept_; }
  std::uint64_t events_overwritten() const { return events_overwritten_; }
  std::uint64_t ambient_dropped() const { return ambient_dropped_; }

  // Test hook: observe every Decision as it is made.
  void set_decision_hook(void* ctx, void (*fn)(void*, const Decision&)) {
    hook_ctx_ = ctx;
    hook_ = fn;
  }

 private:
  // Ring entries are deliberately 32 bytes: staging happens once per trace
  // event of the whole run, so the write traffic per event is the cost
  // floor. The op id lives on the Slot (identical for every entry in one
  // ring) and is re-attached when a kept ring is copied out.
  struct RingEv {
    std::int64_t begin_ns;
    std::int64_t end_ns;
    const char* name;
    TrackId track;
    std::uint32_t kind;  // TraceRecorder::Kind
  };
  struct KeptEv {
    RingEv ev;
    OpId op;
  };
  // One cache line per slot: the per-event lookup touches exactly this
  // line plus the ring's write position.
  struct alignas(64) Slot {
    OpId op = 0;
    std::uint32_t marks = 0;
    std::size_t count = 0;      // events ever staged (ring head)
    std::vector<RingEv> ring;   // grows to max_events_per_op, then wraps
  };

  // (Re)claim a direct-map slot for `op`. Whoever occupied it loses: with
  // sequential op ids, a collision means the occupant outlived
  // max_staged_ops newer ops without completing — the bounded-memory
  // bargain sacrifices its staged spans (counted in ops_evicted_).
  void admit(Slot& s, OpId op) {
    if (s.op != 0) ++ops_evicted_;
    s.op = op;
    s.marks = 0;
    s.count = 0;
    s.ring.clear();
  }

  void stage_slow(TraceRecorder::Kind kind, TrackId track, OpId op,
                  const char* name, std::int64_t begin_ns,
                  std::int64_t end_ns);
  void mark(OpId op, std::uint32_t bit);
  void decide(Slot& s, const char* name, TrackId track,
              std::int64_t begin_ns, std::int64_t end_ns);

  // Hot per-event state first, packed together: stage() touches only these,
  // the pool slot, and the ring line.
  Slot* slots_ = nullptr;  // = pool_.data(); direct map: slot = op & mask
  OpId slot_mask_ = 0;
  std::size_t ev_mask_ = 0;
  bool finished_ = false;
  std::uint64_t events_staged_ = 0;
  std::uint64_t events_overwritten_ = 0;

  TraceRecorder& rec_;
  Config cfg_;
  Rng rng_;
  std::vector<Slot> pool_;

  std::vector<KeptEv> kept_;  // decided-keep events awaiting flush
  std::unordered_set<OpId> kept_ops_;
  // Rolling completed-op latency histogram, the threshold source: raw
  // power-of-two bucket counts (LatencyHistogram's convention), halved in
  // place every cfg.decay_every decisions.
  std::uint64_t lat_counts_[LatencyHistogram::bucket_count()] = {};
  std::uint64_t lat_n_ = 0;
  std::size_t top_bucket_ = 0;  // highest occupied bucket + 1
  std::uint32_t since_decay_ = 0;

  std::uint64_t ops_decided_ = 0;
  std::uint64_t ops_kept_ = 0;
  std::uint64_t ops_evicted_ = 0;
  std::uint64_t events_kept_ = 0;
  std::uint64_t ambient_dropped_ = 0;

  void* hook_ctx_ = nullptr;
  void (*hook_)(void*, const Decision&) = nullptr;

  flight::Ring flight_{"sampler"};
};

// --- instrumentation helpers ------------------------------------------------
// Route retention marks through the installed recorder's sampler; all
// compile to a couple of well-predicted null checks when observability is
// off (the common case).

inline TraceSampler* sampler() {
  TraceRecorder* r = tls().recorder;
  return r ? r->sampler() : nullptr;
}

inline void note_op_error(OpId op) {
  if (op == 0) return;
  if (TraceSampler* s = sampler()) s->note_error(op);
}

inline void note_op_retry(OpId op) {
  if (op == 0) return;
  if (TraceSampler* s = sampler()) s->note_retry(op);
}

inline void note_op_exception(OpId op) {
  if (op == 0) return;
  if (TraceSampler* s = sampler()) s->note_exception(op);
}

// Exemplar tag for a *completed* op: the op id when its trace is (or will
// be) inspectable — tracing on and either unsampled or kept — else 0.
// Clients call this right after recording the op root, i.e. right after
// the sampler's decision.
inline OpId exemplar_for(OpId op) {
  TraceRecorder* r = tls().recorder;
  if (r == nullptr || op == 0) return 0;
  TraceSampler* s = r->sampler();
  return (s == nullptr || s->kept(op)) ? op : 0;
}

// Out-of-line declaration lives in obs/trace.h; defined here so the
// sampler staging fast path inlines straight into the span()/root()
// helpers (trace.h includes this header at its bottom).
inline void TraceRecorder::record(Kind kind, TrackId track, OpId op,
                                  const char* name, std::int64_t begin_ns,
                                  std::int64_t end_ns) {
  if (sampler_ != nullptr) {
    sampler_->stage(kind, track, op, name, begin_ns, end_ns);
    return;
  }
  record_direct(kind, track, op, name, begin_ns, end_ns);
}

}  // namespace ordma::obs
