#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace ordma::obs {

void install(MetricsRegistry* r) { tls().registry = r; }

MetricsRegistry::~MetricsRegistry() {
  if (tls().registry == this) install(nullptr);
}

Counter& MetricsRegistry::counter(const std::string& path) {
  Entry& e = entries_[path];
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& path) {
  Entry& e = entries_[path];
  if (!e.h) e.h = std::make_unique<LatencyHistogram>();
  return *e.h;
}

void MetricsRegistry::histogram_view(const std::string& path,
                                     const LatencyHistogram* h) {
  entries_[path].hv = h;
}

void MetricsRegistry::gauge(const std::string& path,
                            std::function<double()> fn, bool cumulative) {
  Entry& e = entries_[path];
  e.g = std::move(fn);
  e.g_cumulative = cumulative;
}

void MetricsRegistry::delta_snapshot(DeltaCursor& cursor,
                                     std::vector<Delta>& out) const {
  out.clear();
  for (const auto& [path, e] : entries_) {
    Delta d;
    d.path = &path;
    DeltaCursor::Base& base = cursor.base[path];
    if (e.g) {
      const double v = e.g();
      if (e.g_cumulative) {
        d.kind = Kind::cumulative_gauge;
        d.value = v - base.value;
        base.value = v;
      } else {
        d.kind = Kind::gauge;
        d.value = v;
      }
    } else if (e.c) {
      d.kind = Kind::counter;
      const double v = static_cast<double>(e.c->get());
      d.value = v - base.value;
      base.value = v;
    } else if (const LatencyHistogram* h = e.hist()) {
      d.kind = Kind::histogram;
      const double sum = h->sum_us();
      d.h_sum_us = sum - base.h_sum_us;
      base.h_sum_us = sum;
      std::uint64_t count = 0;
      for (std::size_t b = 0; b < LatencyHistogram::bucket_count(); ++b) {
        const std::uint64_t n = h->bucket_value(b);
        d.h_buckets[b] = n - base.h_buckets[b];
        base.h_buckets[b] = n;
        count += d.h_buckets[b];
      }
      d.value = static_cast<double>(count);
    } else {
      continue;  // placeholder entry with no instrument yet
    }
    out.push_back(d);
  }
}

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void emit_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  // Nest '/'-separated paths into an object tree. std::map keeps both the
  // tree and the output deterministic.
  struct Node {
    std::map<std::string, Node> kids;
    const Entry* leaf = nullptr;
  };
  Node root;
  for (const auto& [path, entry] : entries_) {
    Node* n = &root;
    std::size_t start = 0;
    for (;;) {
      const auto slash = path.find('/', start);
      const std::string part =
          path.substr(start, slash == std::string::npos ? std::string::npos
                                                        : slash - start);
      n = &n->kids[part];
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    n->leaf = &entry;
  }

  auto emit_entry = [&](const Entry& e) {
    const LatencyHistogram* h = e.hist();
    if (e.g) {
      emit_number(os, e.g());
    } else if (e.c) {
      os << e.c->get();
    } else if (h) {
      os << R"({"count":)" << h->count() << R"(,"mean_us":)";
      emit_number(os, h->mean_us());
      os << R"(,"max_us":)";
      emit_number(os, h->max_us());
      os << R"(,"buckets":[)";
      bool first = true;
      for (std::size_t b = 0; b < LatencyHistogram::bucket_count(); ++b) {
        if (h->bucket_value(b) == 0) continue;
        if (!first) os << ",";
        first = false;
        os << R"({"le_us":)";
        emit_number(os, LatencyHistogram::upper_edge_us(b));
        os << R"(,"n":)" << h->bucket_value(b);
        // Exemplar: the most recent *retained* trace op that landed in
        // this bucket — the p99-bucket-to-trace hop (obs/sampler.h).
        if (h->bucket_exemplar(b) != 0) {
          os << R"(,"exemplar":)" << h->bucket_exemplar(b);
        }
        os << "}";
      }
      os << "]}";
    } else {
      os << "null";
    }
  };

  auto emit_node = [&](auto&& self, const Node& n) -> void {
    if (n.leaf) {
      emit_entry(*n.leaf);
      return;
    }
    os << "{";
    bool first = true;
    for (const auto& [name, kid] : n.kids) {
      if (!first) os << ",";
      first = false;
      os << "\"";
      json_escaped(os, name);
      os << "\":";
      self(self, kid);
    }
    os << "}";
  };
  emit_node(emit_node, root);
  os << "\n";
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return f.good();
}

// ---------------------------------------------------------------------------
// MetricsSink
// ---------------------------------------------------------------------------

namespace {
MetricsSink* g_metrics_sink = nullptr;
}  // namespace

MetricsSink* metrics_sink() { return g_metrics_sink; }
void install_metrics_sink(MetricsSink* s) { g_metrics_sink = s; }

void MetricsSink::add(const std::string& label, std::string doc) {
  // Trim the trailing newline write_json appends: docs embed in an object.
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
    doc.pop_back();
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = label;
  for (int n = 2; docs_.count(key) != 0; ++n) {
    key = label + "#" + std::to_string(n);
  }
  docs_.emplace(std::move(key), std::move(doc));
}

std::size_t MetricsSink::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

void MetricsSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << R"({"schema":"ordma.metrics.v1","runs":{)";
  bool first = true;
  for (const auto& [label, doc] : docs_) {
    if (!first) os << ",";
    first = false;
    os << "\n\"";
    json_escaped(os, label);
    os << "\":" << doc;
  }
  os << (docs_.empty() ? "}}" : "\n}}") << "\n";
}

bool MetricsSink::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return f.good();
}

}  // namespace ordma::obs
