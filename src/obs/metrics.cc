#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace ordma::obs {

void install(MetricsRegistry* r) { tls().registry = r; }

MetricsRegistry::~MetricsRegistry() {
  if (tls().registry == this) install(nullptr);
}

Counter& MetricsRegistry::counter(const std::string& path) {
  Entry& e = entries_[path];
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& path) {
  Entry& e = entries_[path];
  if (!e.h) e.h = std::make_unique<LatencyHistogram>();
  return *e.h;
}

void MetricsRegistry::gauge(const std::string& path,
                            std::function<double()> fn) {
  entries_[path].g = std::move(fn);
}

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void emit_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  // Nest '/'-separated paths into an object tree. std::map keeps both the
  // tree and the output deterministic.
  struct Node {
    std::map<std::string, Node> kids;
    const Entry* leaf = nullptr;
  };
  Node root;
  for (const auto& [path, entry] : entries_) {
    Node* n = &root;
    std::size_t start = 0;
    for (;;) {
      const auto slash = path.find('/', start);
      const std::string part =
          path.substr(start, slash == std::string::npos ? std::string::npos
                                                        : slash - start);
      n = &n->kids[part];
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    n->leaf = &entry;
  }

  auto emit_entry = [&](const Entry& e) {
    if (e.g) {
      emit_number(os, e.g());
    } else if (e.c) {
      os << e.c->get();
    } else if (e.h) {
      os << R"({"count":)" << e.h->count() << R"(,"mean_us":)";
      emit_number(os, e.h->mean_us());
      os << R"(,"max_us":)";
      emit_number(os, e.h->max_us());
      os << R"(,"buckets":[)";
      bool first = true;
      for (std::size_t b = 0; b < LatencyHistogram::bucket_count(); ++b) {
        if (e.h->bucket_value(b) == 0) continue;
        if (!first) os << ",";
        first = false;
        os << R"({"le_us":)";
        emit_number(os, LatencyHistogram::upper_edge_us(b));
        os << R"(,"n":)" << e.h->bucket_value(b) << "}";
      }
      os << "]}";
    } else {
      os << "null";
    }
  };

  auto emit_node = [&](auto&& self, const Node& n) -> void {
    if (n.leaf) {
      emit_entry(*n.leaf);
      return;
    }
    os << "{";
    bool first = true;
    for (const auto& [name, kid] : n.kids) {
      if (!first) os << ",";
      first = false;
      os << "\"";
      json_escaped(os, name);
      os << "\":";
      self(self, kid);
    }
    os << "}";
  };
  emit_node(emit_node, root);
  os << "\n";
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f);
  return f.good();
}

}  // namespace ordma::obs
