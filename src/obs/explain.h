// Critical-path tail-latency explainer: why was *this* operation slow?
//
// The Table-1 attributor (obs/attribution.h) answers "where does the mean
// op spend its time" in the paper's cost categories. Tail analysis needs a
// different vocabulary: the p99 op is slow because of *contention and
// recovery* — it waited behind other ops for the disk arm or a DMA engine,
// lost an RPC datagram and sat out a retransmit backoff, or missed a cache
// and paid a fill — not because copies got more expensive. The explainer
// walks the same span trees and charges every instant of an op's envelope
// to one of these causes:
//
//   disk_media      the disk arm actually transferring ("disk/...")
//   disk_queue      waiting behind other ops for the arm ("queue/wait"
//                   on a "...disk.q" track)
//   wire            link serialization + propagation ("wire/...")
//   nic             NIC firmware / DMA / TPT work ("nic/...")
//   nic_queue       waiting for a NIC firmware or DMA slot ("queue/wait"
//                   on a "...nic.*.q" track)
//   server_cpu      host CPU work on any process other than the op's own
//                   (the issuing client's root span names its process)
//   cache_fill      client cache-miss bookkeeping ("io/cache_miss")
//   client_cpu      host CPU work on the op's own process
//   rpc_retransmit  dead air between a lost RPC attempt and its
//                   retransmission ("io/rpc_retransmit"): lowest priority
//                   above `other`, so live work during the wait window
//                   (the doomed attempt's tx, server execution whose reply
//                   was lost) keeps its real cause and only the backoff
//                   idle time is blamed on the loss
//   other           nothing active (scheduling gaps, sync points)
//
// Priorities are the enum order (lower wins), mirroring the attributor's
// deepest-stage-wins rule; the sweep partitions the envelope exactly, so
// per-cause times sum to the end-to-end latency (pinned ≤2% in
// tests/explain_test.cc and bench/table1_attribution.cc).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <vector>

#include "obs/trace.h"

namespace ordma::obs {

enum class Cause : std::uint8_t {
  disk_media,
  disk_queue,
  wire,
  nic,
  nic_queue,
  server_cpu,
  cache_fill,
  client_cpu,
  rpc_retransmit,
  other,
};
inline constexpr std::size_t kCauseCount = 10;

const char* cause_name(Cause c);

struct CauseBreakdown {
  double us[kCauseCount] = {};
  double total_us = 0;         // root span duration (end-to-end latency)
  const char* root_name = "";  // e.g. "op/pread"
  OpId op = 0;

  double& operator[](Cause c) { return us[static_cast<std::size_t>(c)]; }
  double operator[](Cause c) const {
    return us[static_cast<std::size_t>(c)];
  }
  double sum_us() const;
  // The largest single cause (ties to the earlier enum value).
  Cause dominant() const;
};

// Explain every traced op (ops with a root span) in `rec`. Key = op id.
std::map<OpId, CauseBreakdown> explain(const TraceRecorder& rec);

// The k slowest ops, slowest first (ties broken by op id for determinism).
std::vector<CauseBreakdown> slowest(
    const std::map<OpId, CauseBreakdown>& ops, std::size_t k);

// The "p99 explainer" JSON document: per-cause totals over all ops, the
// latency distribution (p50/p90/p99/max over op end-to-end times), and the
// slowest-k ops with full per-cause detail. `label` names the workload
// (e.g. protocol and transfer size). Schema: ordma.explain.v1.
void write_explain_json(std::ostream& os, const char* label,
                        const std::map<OpId, CauseBreakdown>& ops,
                        std::size_t k = 8);
bool write_explain_json_file(const std::string& path, const char* label,
                             const std::map<OpId, CauseBreakdown>& ops,
                             std::size_t k = 8);

}  // namespace ordma::obs
