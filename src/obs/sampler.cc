#include "obs/sampler.h"

#include <algorithm>
#include <cmath>

namespace ordma::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceSampler::TraceSampler(TraceRecorder& rec) : TraceSampler(rec, Config()) {}

TraceSampler::TraceSampler(TraceRecorder& rec, const Config& cfg)
    : rec_(rec), cfg_(cfg), rng_(Rng(cfg.seed).fork()) {
  if (cfg_.max_staged_ops == 0) cfg_.max_staged_ops = 1;
  if (cfg_.max_events_per_op == 0) cfg_.max_events_per_op = 1;
  cfg_.max_staged_ops = round_up_pow2(cfg_.max_staged_ops);
  cfg_.max_events_per_op = round_up_pow2(cfg_.max_events_per_op);
  slot_mask_ = static_cast<OpId>(cfg_.max_staged_ops - 1);
  ev_mask_ = cfg_.max_events_per_op - 1;
  pool_.resize(cfg_.max_staged_ops);
  slots_ = pool_.data();
  rec_.set_sampler(this);
}

TraceSampler::~TraceSampler() {
  finish();
  if (rec_.sampler() == this) rec_.set_sampler(nullptr);
}

std::int64_t TraceSampler::threshold_ns() const {
  const std::uint64_t n = lat_n_;
  if (n == 0) return 0;
  // Walk the histogram top-down: the keep threshold is the upper edge of
  // the bucket holding the tail quantile. The tail lives in the top few
  // buckets, so this stops after a handful of iterations.
  const auto above_budget = static_cast<std::uint64_t>(
      static_cast<double>(n) * (1.0 - cfg_.tail_quantile));
  std::uint64_t above = 0;
  std::size_t b = top_bucket_;  // buckets above the max-so-far are empty
  while (b > 0) {
    above += lat_counts_[b - 1];
    if (above > above_budget) break;
    --b;
  }
  if (b == 0) b = 1;
  // The overflow bucket has no finite upper edge; clamp to its lower edge
  // (matching histogram_quantile_from_counts).
  if (b == LatencyHistogram::bucket_count()) --b;
  // Bucket i spans [2^(i-1), 2^i) us (bucket 0 is < 1us); the upper edge of
  // bucket b-1 is 2^(b-1) us.
  const double edge_us = std::ldexp(1.0, static_cast<int>(b) - 1);
  return static_cast<std::int64_t>(edge_us * 1000.0);
}

void TraceSampler::stage_slow(TraceRecorder::Kind kind, TrackId track,
                              OpId op, const char* name,
                              std::int64_t begin_ns, std::int64_t end_ns) {
  // Only reached post-finish(): stragglers bypass staging entirely.
  rec_.record_direct(kind, track, op, name, begin_ns, end_ns);
}

void TraceSampler::mark(OpId op, std::uint32_t bit) {
  if (op == 0 || finished_) return;
  Slot& s = slots_[static_cast<std::size_t>(op & slot_mask_)];
  if (s.op != op) admit(s, op);
  s.marks |= bit;
}

void TraceSampler::decide(Slot& s, const char* name, TrackId track,
                          std::int64_t begin_ns, std::int64_t end_ns) {
  Decision d;
  d.op = s.op;
  d.latency_ns = end_ns - begin_ns;
  d.threshold_ns = threshold_ns();
  if (d.latency_ns >= d.threshold_ns) d.reasons |= kTail;
  d.reasons |= s.marks & (kError | kRetry | kException);
  if (d.reasons == 0 && cfg_.reservoir_n != 0 &&
      rng_.below(cfg_.reservoir_n) == 0) {
    d.reasons |= kReservoir;
  }
  d.kept = d.reasons != 0;
  ++ops_decided_;
  if (d.kept) {
    ++ops_kept_;
    // No exact-size reserve here: push_back's geometric growth keeps the
    // total copy cost linear over a long run (an exact reserve per kept op
    // would reallocate + copy the whole kept set every time).
    for (const RingEv& ev : s.ring) kept_.push_back(KeptEv{ev, d.op});
    kept_.push_back(KeptEv{
        RingEv{begin_ns, end_ns, name, track,
               static_cast<std::uint32_t>(TraceRecorder::Kind::root)},
        d.op});
    events_kept_ += s.ring.size() + 1;
    kept_ops_.insert(d.op);
  }
  // The threshold is over *previously* completed ops; fold this op in only
  // after its own decision.
  const std::size_t b = LatencyHistogram::bucket_for(Duration{d.latency_ns});
  if (b >= top_bucket_) top_bucket_ = b + 1;
  ++lat_counts_[b];
  ++lat_n_;
  if (cfg_.decay_every != 0 && ++since_decay_ >= cfg_.decay_every) {
    since_decay_ = 0;
    lat_n_ = 0;
    std::size_t top = 0;
    for (std::size_t i = 0; i < top_bucket_; ++i) {
      lat_counts_[i] >>= 1;
      lat_n_ += lat_counts_[i];
      if (lat_counts_[i] != 0) top = i + 1;
    }
    top_bucket_ = top;
  }
  flight_.record(end_ns,
                 d.kept ? flight::Ev::sample_keep : flight::Ev::sample_drop,
                 d.op, static_cast<std::uint64_t>(d.latency_ns), d.reasons);
  if (hook_ != nullptr) hook_(hook_ctx_, d);
  s.op = 0;  // release the slot; ring storage stays for reuse
  s.marks = 0;
  s.count = 0;
  s.ring.clear();
}

void TraceSampler::finish() {
  if (finished_) return;
  finished_ = true;
  // Replay kept events in nondecreasing end order, the contract
  // record_direct()'s lane assignment relies on. Ties keep kept_ append
  // order (ring order within an op, decision order across ops) — itself
  // deterministic, so sampled replays are reproducible.
  std::stable_sort(kept_.begin(), kept_.end(),
                   [](const KeptEv& a, const KeptEv& b) {
                     return a.ev.end_ns < b.ev.end_ns;
                   });
  for (const KeptEv& k : kept_) {
    rec_.record_direct(static_cast<TraceRecorder::Kind>(k.ev.kind),
                       k.ev.track, k.op, k.ev.name, k.ev.begin_ns,
                       k.ev.end_ns);
  }
  kept_.clear();
  kept_.shrink_to_fit();
  pool_.clear();
  pool_.shrink_to_fit();
  slots_ = nullptr;
}

}  // namespace ordma::obs
