// Always-on flight recorder: a fixed-size binary ring of recent events per
// host (plus one for the fault injector), dumped as a readable postmortem
// when something goes wrong.
//
// Purpose: a failing torture seed, a clean-error give-up after exhausted
// retries, or an ORDMA_CHECK abort leaves *evidence* — the last kCapacity
// events each host saw (RPC xids issued/answered/retransmitted, NIC
// doorbells and DMA transfers, TLB misses, cache hits/misses, disk I/O,
// every fault-injector decision that fired) with simulated-time stamps, so
// a postmortem can reconstruct what the cluster was doing when it died
// without re-running under a tracer.
//
// Design rules (tighter than obs/trace.h, because this is never off in
// normal runs):
//  * Recording is allocation-free and branch-cheap: one well-predicted
//    enabled check, then stores into a preallocated ring slot. No
//    formatting, no interning, no clock reads (callers stamp simulated
//    time they already have).
//  * The recorder is an observer only: it makes zero RNG draws, never
//    schedules, and never reads state it doesn't own, so golden
//    event-stream hashes are identical with recording on or off
//    (pinned by tests/torture_test.cc).
//  * Rings register themselves in a *thread-local* list at construction
//    (deterministic order: cluster construction order) and unregister at
//    destruction; dump_all() walks the calling thread's live rings. Each
//    simulation is single-threaded; parallel-runner workers
//    (run/runner.h) each see only their own simulation's rings, so
//    concurrent jobs can never interleave flight records.
//  * The first ring to register installs a (thread-local) ORDMA_CHECK
//    failure hook (common/assert.h) that writes a postmortem dump before
//    abort.
//  * set_run_label() names the job (e.g. "nfs.seed17") on the calling
//    thread; dumps carry it in their header and environment-driven dump
//    paths (ORDMA_FLIGHT_DUMP) are suffixed with it so concurrent jobs
//    don't clobber one file.
//
// Dump format (validated by scripts/validate_trace.py --flight):
//
//   ordma-flight-dump v1 reason=<reason> [job=<label>]
//   ring <name> recorded=<total> capacity=<cap> dropped=<total-kept>
//   <seq> <t_ns> <event-name> a=<a> b=<b> aux=<aux>
//   ...
//   end
//
// Sequence numbers are per-ring, 0-based over the ring's whole history;
// the first dumped seq equals `dropped` and timestamps are nondecreasing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/tls_ctx.h"

namespace ordma::obs::flight {

// Event vocabulary. Payload words a/b/aux are event-specific (documented
// at the recording sites); xids, op ids, byte counts and block numbers are
// the usual cargo.
enum class Ev : std::uint16_t {
  none = 0,
  // RPC client
  rpc_call,        // a=xid b=proc
  rpc_reply,       // a=xid b=status
  rpc_retransmit,  // a=xid aux=attempt
  rpc_timeout,     // a=xid aux=attempt
  rpc_cksum_drop,  // a=xid
  rpc_giveup,      // a=xid aux=attempts
  // RPC server
  srv_serve,       // a=xid b=proc
  srv_dup_replay,  // a=xid
  srv_dup_drop,    // a=xid
  srv_cksum_drop,  // a=xid
  // NIC
  nic_doorbell,     // a=trace op
  nic_dma,          // a=bytes b=trace op
  nic_tlb_miss,     // a=nic vpn
  nic_ordma_fault,  // a=op_id b=errc
  nic_ordma_timeout,  // a=op_id
  nic_cap_revoke,     // a=seg id
  // Caches
  cache_hit,   // a=ino/handle b=block
  cache_miss,  // a=ino/handle b=block
  // Disk
  disk_read,   // a=block b=1 if error
  disk_write,  // a=block b=1 if error
  // Fault injector decisions (only fired ones)
  fault_drop,        // a=proto b=dst
  fault_corrupt,     // a=proto b=escaped
  fault_duplicate,   // a=proto
  fault_delay,       // a=proto b=extra ns
  fault_stall,       // b=stall ns
  fault_cap_revoke,  //
  fault_tlb_inval,   //
  fault_disk_error,  //
  fault_disk_spike,  // b=spike ns
  // Protocol clients
  op_giveup,  // a=trace op b=errc — bounded whole-op retries exhausted
  // ORDMA write path + coherence protocol
  put_commit,  // a=ino b=fbn aux=version (server accepted an optimistic put)
  put_reject,  // a=ino b=fbn aux=errc (NIC record mismatch / not resident)
  inval_send,  // a=ino b=fbn aux=attempt (server → holder)
  inval_recv,  // a=ino b=fbn aux=version (client received invalidation)
  inval_ack,   // a=srv req id (client acked)
  wb_flush,    // a=file b=block (client write-back flush issued)
  fault_put_revoke,  // injected revoke-during-put
  // Tail sampler decisions (obs/sampler.h)
  sample_keep,  // a=trace op b=latency ns aux=reason bitmask
  sample_drop,  // a=trace op b=latency ns aux=0
  // SLO burn-rate alerting (obs/health.h)
  slo_trip,   // a=slo index b=window index aux=burn rate x1000
  slo_clear,  // a=slo index b=window index
};

const char* ev_name(Ev e);

// The enable bit is thread-local like the ring registry, so one job
// toggling recording can't disturb a concurrent job; it lives in the
// consolidated per-thread context (common/tls_ctx.h). Rings resolve the
// context address once at construction, so the one branch recording pays
// is a plain pointer load — no TLS machinery per record.
inline bool enabled() { return tls().flight_enabled; }
// Turn recording off/on for the calling thread (the determinism pin runs
// both ways; the rings themselves stay registered and keep their
// contents).
void set_enabled(bool on);

class Ring {
 public:
  // 32-byte records; kDefaultCapacity of them per host ≈ 128 KiB — cheap
  // enough to be always-on, deep enough to replay the last few thousand
  // protocol steps leading up to a failure.
  static constexpr std::size_t kDefaultCapacity = 4096;

  struct Record {
    std::int64_t t_ns;
    std::uint64_t a;
    std::uint64_t b;
    Ev code;
    std::uint16_t pad = 0;
    std::uint32_t aux;
  };
  static_assert(sizeof(Record) == 32);

  explicit Ring(std::string name, std::size_t capacity = kDefaultCapacity);
  ~Ring();
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  // Total events ever recorded (kept = min(recorded, capacity)).
  std::uint64_t recorded() const { return head_; }
  std::uint64_t dropped() const {
    return head_ > capacity_ ? head_ - capacity_ : 0;
  }

  void record(std::int64_t t_ns, Ev code, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint32_t aux = 0) {
    if (!tls_->flight_enabled) return;
    Record& r = buf_[head_ & mask_];
    r.t_ns = t_ns;
    r.a = a;
    r.b = b;
    r.code = code;
    r.aux = aux;
    ++head_;
  }

  // Oldest-first replay of the retained window.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t first = dropped();
    for (std::uint64_t s = first; s < head_; ++s) {
      fn(s, buf_[s & mask_]);
    }
  }

  void dump(std::ostream& os) const;

 private:
  // Resolved once at construction (rings are built per run, on the thread
  // that runs the simulation) so record() never touches TLS.
  TlsCtx* tls_ = &::ordma::tls();
  std::string name_;
  std::size_t capacity_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;
  std::unique_ptr<Record[]> buf_;
};

// --- run labels -------------------------------------------------------------

// Name the job running on the calling thread (e.g. "odafs.seed12"). The
// label appears in dump headers and is appended to environment-configured
// dump paths so each parallel job's postmortem lands in its own file.
// Empty clears. The parallel runner labels jobs "job<N>" by default;
// harnesses overwrite that with the (config, seed) identity they know.
void set_run_label(std::string label);
const std::string& run_label();

// RAII label for one job's scope; restores the previous label on exit, so
// a harness's precise label ("nfs.seed17") can nest inside the runner's
// default ("job4").
class ScopedRunLabel {
 public:
  explicit ScopedRunLabel(std::string label) : prev_(run_label()) {
    set_run_label(std::move(label));
  }
  ~ScopedRunLabel() { set_run_label(std::move(prev_)); }
  ScopedRunLabel(const ScopedRunLabel&) = delete;
  ScopedRunLabel& operator=(const ScopedRunLabel&) = delete;

 private:
  std::string prev_;
};

// --- postmortem dumps -------------------------------------------------------

// Dump every ring live on the calling thread, oldest events first, with a
// header naming `reason` (and the thread's run label, when set).
void dump_all(std::ostream& os, const char* reason);
std::string dump_all_string(const char* reason);
bool dump_all_file(const std::string& path, const char* reason);

// Give-up postmortems: when a client exhausts its bounded retries and
// surfaces a clean error, it calls note_giveup(). If ORDMA_FLIGHT_DUMP
// names a path (or set_giveup_dump_path() was called), a dump is written
// there — at most once per thread, so a brutal-plan run doesn't rewrite
// it per failed op. Environment paths get the run label appended so
// concurrent jobs don't fight over one file. Without a configured path
// this is just a ring event.
void set_giveup_dump_path(std::string path);
void note_giveup(Ring& ring, std::int64_t t_ns, std::uint64_t op,
                 std::uint64_t errc);

}  // namespace ordma::obs::flight
