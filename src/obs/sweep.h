// Generic priority sweep over one operation's interval.
//
// Both the Table-1 overhead attributor (obs/attribution.h) and the
// tail-latency cause explainer (obs/explain.h) answer the same question:
// given a root interval [begin, end] and a pile of possibly-overlapping
// leaf intervals each tagged with a lane, charge every instant of the root
// to exactly one lane — the highest-priority lane active at that instant —
// so the per-lane totals partition the end-to-end time exactly. This header
// is that shared machinery; the two callers differ only in how they map
// spans to lanes.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace ordma::obs {

// One leaf interval: [begin, end] in simulated ns, charged to `lane`.
struct SweepInterval {
  std::int64_t begin;
  std::int64_t end;
  std::uint8_t lane;
};

// Charge every instant of [root_begin, root_end] to exactly one of N lanes:
// the active lane with the smallest `priority` value, or `fallback` when
// nothing is active. `priority[fallback]` must be the (strictly) largest
// value so any active lane beats the idle default. Leaves are clipped to the
// root interval. On return, out_ns sums exactly to root_end - root_begin
// (the partition property the ≤2% acceptance checks lean on).
template <std::size_t N>
void priority_sweep(std::int64_t root_begin, std::int64_t root_end,
                    const std::vector<SweepInterval>& leaves,
                    const std::array<int, N>& priority, std::size_t fallback,
                    std::array<std::int64_t, N>& out_ns) {
  struct Boundary {
    std::int64_t at;
    std::uint8_t lane;
    std::int8_t delta;  // +1 open, -1 close
  };
  std::vector<Boundary> bounds;
  bounds.reserve(leaves.size() * 2);
  for (const SweepInterval& iv : leaves) {
    const std::int64_t b = std::max(iv.begin, root_begin);
    const std::int64_t e = std::min(iv.end, root_end);
    if (e <= b) continue;
    bounds.push_back(Boundary{b, iv.lane, +1});
    bounds.push_back(Boundary{e, iv.lane, -1});
  }
  std::sort(bounds.begin(), bounds.end(),
            [](const Boundary& a, const Boundary& b) { return a.at < b.at; });

  std::array<int, N> active{};
  auto charge = [&](std::int64_t from, std::int64_t to) {
    if (to <= from) return;
    std::size_t best = fallback;
    for (std::size_t i = 0; i < N; ++i) {
      if (active[i] > 0 && priority[i] < priority[best]) best = i;
    }
    out_ns[best] += to - from;
  };

  std::int64_t cursor = root_begin;
  for (const Boundary& b : bounds) {
    charge(cursor, b.at);
    cursor = std::max(cursor, b.at);
    active[b.lane] += b.delta;
  }
  charge(cursor, root_end);
}

}  // namespace ordma::obs
