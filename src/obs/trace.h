// Simulation-wide tracing against *simulated* time.
//
// A TraceRecorder collects completed spans (begin/end in simulated
// nanoseconds) on named tracks and exports Chrome trace-event JSON loadable
// in Perfetto: one "process" per simulated host, one "track" (thread) per
// component (cpu, nic.fw, nic.dma, disk, ...), plus flow arrows stitching a
// single file operation into one causal tree across hosts.
//
// Design rules:
//  * Disabled by default. All instrumentation goes through the inline
//    helpers below, which compile to a single well-predicted null check
//    when no recorder is installed (verified by bench/bench_engine vs
//    BENCH_engine.json).
//  * Recording never perturbs the simulation: spans are recorded with
//    explicit timestamps taken from the engine clock; the recorder itself
//    never schedules, sleeps or reads wall-clock time. Determinism with
//    tracing on vs off is pinned by tests/engine_determinism_test.cc and
//    tests/obs_test.cc.
//  * Allocation-free steady state: events live in fixed-size chunks that
//    are retained across clear(); track interning happens once per
//    (component, recorder) via the Track cache below.
//  * Span names are string literals (the recorder stores the pointer).
//    The prefix up to the first '/' is the span's category and drives the
//    per-I/O overhead attributor (obs/attribution.h): "io/", "byte/",
//    "pkt/", "nic/", "wire/", "disk/" map to the paper's Table-1 buckets;
//    "op/" marks an operation's root (envelope) span.
//
// Overlap discipline: Chrome "X" slices on one track must nest or be
// disjoint — partial overlap renders wrong and fails the CI validator
// (scripts/validate_trace.py). Most spans here are resource *holds*
// (capacity-1 CPU/firmware/DMA/disk slots), which are serialized by
// construction. For the rest (operation envelopes, pipelined wire
// segments), the recorder splits a track into overflow lanes ("cpu~2")
// on the fly: events arrive in nondecreasing end order (they are recorded
// at their end instant), so assigning each span to the first lane whose
// previous end precedes the span's begin guarantees disjointness per lane.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/tls_ctx.h"
#include "common/units.h"

namespace ordma::obs {

// Identity of one logical file operation (FileClient::pread etc.). Carried
// through RPC headers, VI/GM messages, NIC work descriptors, server fs and
// disk so every cost a single read pays lands in one span tree. 0 means
// "not traced" / ambient work.
using OpId = std::uint64_t;

using TrackId = std::uint32_t;

class TraceSampler;  // obs/sampler.h — tail-based keep/drop at op completion

class TraceRecorder {
 public:
  enum class Kind : std::uint8_t {
    span,     // leaf cost interval (attributed by category prefix)
    root,     // operation envelope ("op/...")
    instant,  // point annotation
    flow,     // causal handoff point; exported as Chrome flow s/t/f chain
  };

  struct Event {
    std::int64_t begin_ns;
    std::int64_t end_ns;  // == begin_ns for instant/flow
    const char* name;     // string literal; prefix before '/' = category
    OpId op;
    TrackId track;
    Kind kind;
  };

  TraceRecorder() = default;
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- op ids -----------------------------------------------------------
  OpId new_op() { return next_op_++; }

  // --- tracks -----------------------------------------------------------
  // Intern (process, component) and return its track. Use the Track cache
  // below from instrumentation sites instead of calling this per event.
  TrackId track(std::string_view process, std::string_view component);

  // --- recording (simulated-time stamps, ns) ----------------------------
  // With a sampler attached, events are *staged* per op and only the kept
  // ops' events reach storage (at sampler finish); without one this is
  // record_direct().
  // Defined inline at the bottom of obs/sampler.h (which this header
  // includes at its end): the sampler's staging fast path runs once per
  // trace event of the whole run, and keeping span() → record() → stage()
  // one fully inlined chain is part of the sampling overhead budget.
  void record(Kind kind, TrackId track, OpId op, const char* name,
              std::int64_t begin_ns, std::int64_t end_ns);
  // Bypass the sampler and commit an event to storage. Callers must
  // preserve the recorder-wide nondecreasing-end-order contract (the
  // sampler's flush sorts by end instant before replaying through here).
  void record_direct(Kind kind, TrackId track, OpId op, const char* name,
                     std::int64_t begin_ns, std::int64_t end_ns);

  // Attach/detach a tail sampler (obs/sampler.h owns the lifecycle; the
  // recorder never deletes it). Null detaches.
  void set_sampler(TraceSampler* s) { sampler_ = s; }
  TraceSampler* sampler() const { return sampler_; }

  // --- inspection -------------------------------------------------------
  std::size_t event_count() const { return count_; }
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn(chunks_[i >> kChunkShift][i & (kChunkEvents - 1)]);
    }
  }
  std::size_t track_count() const { return tracks_.size(); }
  const std::string& track_process(TrackId t) const {
    return processes_[tracks_[t].pid];
  }
  const std::string& track_component(TrackId t) const {
    return tracks_[t].component;
  }

  // --- export -----------------------------------------------------------
  void write_chrome_json(std::ostream& os) const;
  bool write_chrome_json_file(const std::string& path) const;

  // Drop all events (track interning and chunk capacity are retained).
  void clear();

 private:
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkEvents = std::size_t{1} << kChunkShift;

  struct TrackInfo {
    std::string component;
    std::uint32_t pid;            // index into processes_
    std::int64_t last_end = 0;    // max end recorded on this lane
    TrackId overflow = 0;         // next lane for this component (0 = none)
    std::uint32_t lane = 1;       // 1-based lane number within component
  };

  void push(const Event& ev);
  TrackId overflow_lane(TrackId t);

  OpId next_op_ = 1;
  TraceSampler* sampler_ = nullptr;
  std::vector<std::string> processes_;
  std::vector<TrackInfo> tracks_;
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::size_t count_ = 0;
};

// The installed recorder and its install epoch live in the consolidated
// per-thread context (common/tls_ctx.h — tls().recorder / .trace_epoch).
// The epoch invalidates Track caches when a new recorder (or the same one
// re-) installs. Both are thread-local (net::packet.h Pool precedent):
// each parallel-runner worker (run/runner.h) installs its own recorder,
// so concurrent simulations can never interleave spans. Track epochs are
// compared against the calling thread's epoch, so a Track cache resolved
// on one thread re-resolves when its component records on another.

inline TraceRecorder* recorder() { return tls().recorder; }
inline bool enabled() { return tls().recorder != nullptr; }

// Install `r` as the calling thread's recorder (nullptr disables tracing).
// The caller keeps ownership; a recorder uninstalls itself on destruction
// if it is still installed on the destroying thread.
void install(TraceRecorder* r);

// Cached (process, component) → TrackId resolution. Embed one per
// instrumented component; id() is a single epoch compare once resolved.
// Only call id() while enabled().
class Track {
 public:
  Track() = default;
  Track(std::string process, std::string component)
      : process_(std::move(process)), component_(std::move(component)) {}

  void set(std::string process, std::string component) {
    process_ = std::move(process);
    component_ = std::move(component);
    epoch_ = 0;
  }

  TrackId id() {
    if (epoch_ != tls().trace_epoch) {
      id_ = tls().recorder->track(process_, component_);
      epoch_ = tls().trace_epoch;
    }
    return id_;
  }

 private:
  std::string process_{"sim"};
  std::string component_{"main"};
  TrackId id_ = 0;
  std::uint32_t epoch_ = 0;  // g_epoch starts at 1; 0 = never resolved
};

// --- instrumentation helpers (single predictable branch when disabled) ---

inline OpId new_op() {
  TraceRecorder* r = tls().recorder;
  return r ? r->new_op() : 0;
}

inline void span(Track& t, OpId op, const char* name, SimTime begin,
                 SimTime end) {
  if (TraceRecorder* r = tls().recorder) {
    r->record(TraceRecorder::Kind::span, t.id(), op, name, begin.ns, end.ns);
  }
}

inline void root(Track& t, OpId op, const char* name, SimTime begin,
                 SimTime end) {
  if (TraceRecorder* r = tls().recorder) {
    r->record(TraceRecorder::Kind::root, t.id(), op, name, begin.ns, end.ns);
  }
}

inline void instant(Track& t, OpId op, const char* name, SimTime at) {
  if (TraceRecorder* r = tls().recorder) {
    r->record(TraceRecorder::Kind::instant, t.id(), op, name, at.ns, at.ns);
  }
}

// Mark a causal handoff (message send/receive). All flow points of one op,
// ordered by time, are exported as a Chrome flow chain (ph s/t/f) keyed by
// the op id, which Perfetto renders as arrows across hosts. Untraced work
// (op 0) has no identity to chain on and is skipped.
inline void flow(Track& t, OpId op, const char* name, SimTime at) {
  if (TraceRecorder* r = tls().recorder; r && op != 0) {
    r->record(TraceRecorder::Kind::flow, t.id(), op, name, at.ns, at.ns);
  }
}

}  // namespace ordma::obs

// Completes the inline definition of TraceRecorder::record() (see the
// declaration above). Safe against inclusion order: when sampler.h is the
// entry header its include of trace.h finishes first, so TraceSampler is
// always complete by the time the definition appears.
#include "obs/sampler.h"  // IWYU pragma: keep
