#include "obs/attribution.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ordma::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::per_byte:
      return "per_byte";
    case Category::per_packet:
      return "per_packet";
    case Category::per_io:
      return "per_io";
    case Category::nic:
      return "nic";
    case Category::wire:
      return "wire";
    case Category::disk:
      return "disk";
    case Category::other:
      return "other";
  }
  return "?";
}

Category categorize(const char* span_name) {
  auto has = [&](const char* prefix) {
    return std::strncmp(span_name, prefix, std::strlen(prefix)) == 0;
  };
  if (has("byte/")) return Category::per_byte;
  if (has("pkt/")) return Category::per_packet;
  if (has("io/")) return Category::per_io;
  if (has("nic/")) return Category::nic;
  if (has("wire/")) return Category::wire;
  if (has("disk/")) return Category::disk;
  return Category::other;
}

double Breakdown::sum_us() const {
  double s = 0;
  for (double u : us) s += u;
  return s;
}

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  for (std::size_t i = 0; i < kCategoryCount; ++i) us[i] += o.us[i];
  total_us += o.total_us;
  ops += o.ops;
  if (*root_name == '\0') root_name = o.root_name;
  return *this;
}

Breakdown Breakdown::averaged() const {
  Breakdown b = *this;
  if (ops > 1) {
    const double n = static_cast<double>(ops);
    for (double& u : b.us) u /= n;
    b.total_us /= n;
  }
  return b;
}

namespace {

// Priority when several categories are active at one instant: charge the
// deepest pipeline stage. Lower value wins.
int priority(Category c) {
  switch (c) {
    case Category::disk:
      return 0;
    case Category::wire:
      return 1;
    case Category::nic:
      return 2;
    case Category::per_byte:
      return 3;
    case Category::per_packet:
      return 4;
    case Category::per_io:
      return 5;
    case Category::other:
      return 6;
  }
  return 6;
}

struct Interval {
  std::int64_t begin;
  std::int64_t end;
  Category cat;
};

struct Boundary {
  std::int64_t at;
  Category cat;
  int delta;  // +1 open, -1 close
};

// Sweep [root_begin, root_end]; each elementary interval is charged to the
// highest-priority active category, or `other` when none is active.
void sweep(std::int64_t root_begin, std::int64_t root_end,
           std::vector<Interval>& leaves, Breakdown& out) {
  std::vector<Boundary> bounds;
  bounds.reserve(leaves.size() * 2);
  for (const Interval& iv : leaves) {
    const std::int64_t b = std::max(iv.begin, root_begin);
    const std::int64_t e = std::min(iv.end, root_end);
    if (e <= b) continue;
    bounds.push_back(Boundary{b, iv.cat, +1});
    bounds.push_back(Boundary{e, iv.cat, -1});
  }
  std::sort(bounds.begin(), bounds.end(),
            [](const Boundary& a, const Boundary& b) { return a.at < b.at; });

  int active[kCategoryCount] = {};
  auto charge = [&](std::int64_t from, std::int64_t to) {
    if (to <= from) return;
    Category best = Category::other;
    for (std::size_t i = 0; i < kCategoryCount; ++i) {
      const auto c = static_cast<Category>(i);
      if (active[i] > 0 && priority(c) < priority(best)) best = c;
    }
    out[best] += static_cast<double>(to - from) / 1000.0;
  };

  std::int64_t cursor = root_begin;
  for (const Boundary& b : bounds) {
    charge(cursor, b.at);
    cursor = std::max(cursor, b.at);
    active[static_cast<std::size_t>(b.cat)] += b.delta;
  }
  charge(cursor, root_end);
}

}  // namespace

std::map<OpId, Breakdown> attribute(const TraceRecorder& rec) {
  struct OpSpans {
    const TraceRecorder::Event* root = nullptr;
    std::vector<Interval> leaves;
  };
  std::map<OpId, OpSpans> ops;
  std::vector<Interval> ambient;  // op id 0 leaf spans

  rec.for_each_event([&](const TraceRecorder::Event& ev) {
    if (ev.kind == TraceRecorder::Kind::root) {
      auto& slot = ops[ev.op];
      if (!slot.root) slot.root = &ev;
      return;
    }
    if (ev.kind != TraceRecorder::Kind::span) return;
    const Interval iv{ev.begin_ns, ev.end_ns, categorize(ev.name)};
    if (ev.op == 0) {
      ambient.push_back(iv);
    } else {
      ops[ev.op].leaves.push_back(iv);
    }
  });
  // Events are recorded at their end instant, so `ambient` is already
  // ordered by nondecreasing end — binary search below relies on it.

  std::map<OpId, Breakdown> result;
  for (auto& [op, spans] : ops) {
    if (!spans.root) continue;  // leaf spans without an envelope
    const std::int64_t b = spans.root->begin_ns;
    const std::int64_t e = spans.root->end_ns;
    // Ambient (op-0) work overlapping the envelope is charged to this op.
    const auto lo = std::lower_bound(
        ambient.begin(), ambient.end(), b,
        [](const Interval& iv, std::int64_t t) { return iv.end < t; });
    for (auto it = lo; it != ambient.end(); ++it) {
      if (it->begin < e) spans.leaves.push_back(*it);
    }
    Breakdown out;
    out.root_name = spans.root->name;
    out.total_us = static_cast<double>(e - b) / 1000.0;
    sweep(b, e, spans.leaves, out);
    result.emplace(op, out);
  }
  return result;
}

}  // namespace ordma::obs
