#include "obs/attribution.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "obs/sweep.h"

namespace ordma::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::per_byte:
      return "per_byte";
    case Category::per_packet:
      return "per_packet";
    case Category::per_io:
      return "per_io";
    case Category::nic:
      return "nic";
    case Category::wire:
      return "wire";
    case Category::disk:
      return "disk";
    case Category::other:
      return "other";
  }
  return "?";
}

Category categorize(const char* span_name) {
  auto has = [&](const char* prefix) {
    return std::strncmp(span_name, prefix, std::strlen(prefix)) == 0;
  };
  if (has("byte/")) return Category::per_byte;
  if (has("pkt/")) return Category::per_packet;
  if (has("io/")) return Category::per_io;
  if (has("nic/")) return Category::nic;
  if (has("wire/")) return Category::wire;
  if (has("disk/")) return Category::disk;
  return Category::other;
}

double Breakdown::sum_us() const {
  double s = 0;
  for (double u : us) s += u;
  return s;
}

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  for (std::size_t i = 0; i < kCategoryCount; ++i) us[i] += o.us[i];
  total_us += o.total_us;
  ops += o.ops;
  if (*root_name == '\0') root_name = o.root_name;
  return *this;
}

Breakdown Breakdown::averaged() const {
  Breakdown b = *this;
  if (ops > 1) {
    const double n = static_cast<double>(ops);
    for (double& u : b.us) u /= n;
    b.total_us /= n;
  }
  return b;
}

namespace {

// Priority when several categories are active at one instant: charge the
// deepest pipeline stage. Lower value wins; `other` (the sweep fallback)
// must stay last. Indexed by Category.
constexpr std::array<int, kCategoryCount> kPriority = {
    3,  // per_byte
    4,  // per_packet
    5,  // per_io
    2,  // nic
    1,  // wire
    0,  // disk
    6,  // other
};

using Interval = SweepInterval;  // lane = Category

}  // namespace

std::map<OpId, Breakdown> attribute(const TraceRecorder& rec) {
  struct OpSpans {
    const TraceRecorder::Event* root = nullptr;
    std::vector<Interval> leaves;
  };
  std::map<OpId, OpSpans> ops;
  std::vector<Interval> ambient;  // op id 0 leaf spans

  rec.for_each_event([&](const TraceRecorder::Event& ev) {
    if (ev.kind == TraceRecorder::Kind::root) {
      auto& slot = ops[ev.op];
      if (!slot.root) slot.root = &ev;
      return;
    }
    if (ev.kind != TraceRecorder::Kind::span) return;
    const Interval iv{ev.begin_ns, ev.end_ns,
                      static_cast<std::uint8_t>(categorize(ev.name))};
    if (ev.op == 0) {
      ambient.push_back(iv);
    } else {
      ops[ev.op].leaves.push_back(iv);
    }
  });
  // Events are recorded at their end instant, so `ambient` is already
  // ordered by nondecreasing end — binary search below relies on it.

  std::map<OpId, Breakdown> result;
  for (auto& [op, spans] : ops) {
    if (!spans.root) continue;  // leaf spans without an envelope
    const std::int64_t b = spans.root->begin_ns;
    const std::int64_t e = spans.root->end_ns;
    // Ambient (op-0) work overlapping the envelope is charged to this op.
    const auto lo = std::lower_bound(
        ambient.begin(), ambient.end(), b,
        [](const Interval& iv, std::int64_t t) { return iv.end < t; });
    for (auto it = lo; it != ambient.end(); ++it) {
      if (it->begin < e) spans.leaves.push_back(*it);
    }
    Breakdown out;
    out.root_name = spans.root->name;
    out.total_us = static_cast<double>(e - b) / 1000.0;
    std::array<std::int64_t, kCategoryCount> ns{};
    priority_sweep(b, e, spans.leaves, kPriority,
                   static_cast<std::size_t>(Category::other), ns);
    for (std::size_t i = 0; i < kCategoryCount; ++i) {
      out.us[i] = static_cast<double>(ns[i]) / 1000.0;
    }
    result.emplace(op, out);
  }
  return result;
}

}  // namespace ordma::obs
