// Per-I/O overhead attribution: fold one operation's trace spans into the
// paper's Table-1 cost categories.
//
// The paper (Sec. 2, Table 1) decomposes end-system overhead into per-byte
// (memory copies), per-packet (network stack work proportional to fragment
// count) and per-I/O (fixed protocol work) components; the simulation adds
// explicit NIC, wire and disk stages. Span names map to categories by
// prefix:
//
//   "byte/..."  → per_byte    host memory copies, NFS staging
//   "pkt/..."   → per_packet  UDP/IP per-fragment stack work, rx interrupts
//   "io/..."    → per_io      syscalls, protocol procs, RPC issue/dispatch/
//                             complete, VI pickup, registration
//   "nic/..."   → nic         doorbells, firmware frag handling, DMA,
//                             TPT/TLB lookups and faults, get/put service
//   "wire/..."  → wire        link serialization + propagation
//   "disk/..."  → disk        disk arm + media transfer
//   "op/..."    → (root)      the operation envelope; defines [begin, end]
//
// Because NIC firmware, DMA and the wire pipeline fragments, raw span
// durations over-count overlapped stages. The attributor instead sweeps the
// root interval once and charges every instant to exactly one bucket: the
// highest-priority category with an active span (disk > wire > nic >
// per_byte > per_packet > per_io), or `other` when nothing is active (sync
// gaps, scheduling, costs recorded without an op id). Buckets therefore sum
// to the end-to-end latency exactly. Ambient spans (op id 0, e.g. coalesced
// receive-interrupt entry) overlapping the root interval are counted as if
// they belonged to the op — exact for one-op-at-a-time workloads, an
// approximation under concurrency (see DESIGN.md).
#pragma once

#include <cstddef>
#include <map>

#include "obs/trace.h"

namespace ordma::obs {

enum class Category : std::uint8_t {
  per_byte,
  per_packet,
  per_io,
  nic,
  wire,
  disk,
  other,
};
inline constexpr std::size_t kCategoryCount = 7;

const char* category_name(Category c);

// Category of a span name by prefix; names without a known prefix (and
// "op/" roots) map to `other`.
Category categorize(const char* span_name);

struct Breakdown {
  double us[kCategoryCount] = {};
  double total_us = 0;        // root span duration
  const char* root_name = ""; // e.g. "op/pread"
  std::size_t ops = 1;        // number of ops folded in (for averages)

  double& operator[](Category c) { return us[static_cast<std::size_t>(c)]; }
  double operator[](Category c) const {
    return us[static_cast<std::size_t>(c)];
  }
  double sum_us() const;

  // Accumulate another op's breakdown (for averaging over samples).
  Breakdown& operator+=(const Breakdown& o);
  // Divide all buckets and the total by `ops` (turn a sum into a mean).
  Breakdown averaged() const;
};

// Fold every traced op (ops with a root span) in `rec`. Key = op id.
std::map<OpId, Breakdown> attribute(const TraceRecorder& rec);

}  // namespace ordma::obs
