#include "obs/flight.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace ordma::obs::flight {

namespace {

// Live rings in registration order (cluster construction order, so dumps
// are deterministic for a deterministic run). Thread-local: each
// parallel-runner worker owns the rings of the simulation it is running,
// so concurrent jobs cannot interleave registration or dumps.
std::vector<Ring*>& rings() {
  static thread_local std::vector<Ring*> r;
  return r;
}

thread_local bool g_giveup_dumped = false;
std::string& giveup_path() {
  static thread_local std::string p;
  return p;
}

std::string& label() {
  static thread_local std::string l;
  return l;
}

// Suffix environment-driven dump paths with the job label (".<label>"
// before nothing — the paths are free-form, so a plain suffix keeps the
// whole family next to each other) so concurrent jobs write distinct
// files.
std::string labelled_path(std::string path) {
  if (!label().empty()) path += "." + label();
  return path;
}

// ORDMA_CHECK failure hook: leave a postmortem before abort. Written to
// ORDMA_FLIGHT_DUMP if set, else ordma_flight_postmortem.txt in the cwd;
// either way the file is suffixed with the run label when one is set, so
// a parallel job's postmortem names the (config, seed) that died.
void dump_on_check_failure() noexcept {
  const char* env = std::getenv("ORDMA_FLIGHT_DUMP");
  const std::string path =
      labelled_path(env && *env ? env : "ordma_flight_postmortem.txt");
  if (dump_all_file(path, "ORDMA_CHECK failure")) {
    std::fprintf(stderr, "flight recorder: postmortem written to %s\n",
                 path.c_str());
  }
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ev_name(Ev e) {
  switch (e) {
    case Ev::none: return "none";
    case Ev::rpc_call: return "rpc_call";
    case Ev::rpc_reply: return "rpc_reply";
    case Ev::rpc_retransmit: return "rpc_retransmit";
    case Ev::rpc_timeout: return "rpc_timeout";
    case Ev::rpc_cksum_drop: return "rpc_cksum_drop";
    case Ev::rpc_giveup: return "rpc_giveup";
    case Ev::srv_serve: return "srv_serve";
    case Ev::srv_dup_replay: return "srv_dup_replay";
    case Ev::srv_dup_drop: return "srv_dup_drop";
    case Ev::srv_cksum_drop: return "srv_cksum_drop";
    case Ev::nic_doorbell: return "nic_doorbell";
    case Ev::nic_dma: return "nic_dma";
    case Ev::nic_tlb_miss: return "nic_tlb_miss";
    case Ev::nic_ordma_fault: return "nic_ordma_fault";
    case Ev::nic_ordma_timeout: return "nic_ordma_timeout";
    case Ev::nic_cap_revoke: return "nic_cap_revoke";
    case Ev::cache_hit: return "cache_hit";
    case Ev::cache_miss: return "cache_miss";
    case Ev::disk_read: return "disk_read";
    case Ev::disk_write: return "disk_write";
    case Ev::fault_drop: return "fault_drop";
    case Ev::fault_corrupt: return "fault_corrupt";
    case Ev::fault_duplicate: return "fault_duplicate";
    case Ev::fault_delay: return "fault_delay";
    case Ev::fault_stall: return "fault_stall";
    case Ev::fault_cap_revoke: return "fault_cap_revoke";
    case Ev::fault_tlb_inval: return "fault_tlb_inval";
    case Ev::fault_disk_error: return "fault_disk_error";
    case Ev::fault_disk_spike: return "fault_disk_spike";
    case Ev::op_giveup: return "op_giveup";
    case Ev::put_commit: return "put_commit";
    case Ev::put_reject: return "put_reject";
    case Ev::inval_send: return "inval_send";
    case Ev::inval_recv: return "inval_recv";
    case Ev::inval_ack: return "inval_ack";
    case Ev::wb_flush: return "wb_flush";
    case Ev::fault_put_revoke: return "fault_put_revoke";
    case Ev::sample_keep: return "sample_keep";
    case Ev::sample_drop: return "sample_drop";
    case Ev::slo_trip: return "slo_trip";
    case Ev::slo_clear: return "slo_clear";
  }
  return "?";
}

void set_enabled(bool on) { tls().flight_enabled = on; }

Ring::Ring(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      buf_(new Record[capacity_]) {
  if (rings().empty()) tls().check_failed_hook = &dump_on_check_failure;
  rings().push_back(this);
}

Ring::~Ring() {
  auto& rs = rings();
  for (auto it = rs.begin(); it != rs.end(); ++it) {
    if (*it == this) {
      rs.erase(it);
      break;
    }
  }
  if (rs.empty()) tls().check_failed_hook = nullptr;
}

void Ring::dump(std::ostream& os) const {
  os << "ring " << name_ << " recorded=" << recorded()
     << " capacity=" << capacity_ << " dropped=" << dropped() << "\n";
  for_each([&os](std::uint64_t seq, const Record& r) {
    os << seq << ' ' << r.t_ns << ' ' << ev_name(r.code) << " a=" << r.a
       << " b=" << r.b << " aux=" << r.aux << "\n";
  });
}

void set_run_label(std::string l) { label() = std::move(l); }
const std::string& run_label() { return label(); }

void dump_all(std::ostream& os, const char* reason) {
  os << "ordma-flight-dump v1 reason=" << (reason ? reason : "unspecified");
  if (!label().empty()) os << " job=" << label();
  os << "\n";
  for (const Ring* r : rings()) r->dump(os);
  os << "end\n";
}

std::string dump_all_string(const char* reason) {
  std::ostringstream os;
  dump_all(os, reason);
  return os.str();
}

bool dump_all_file(const std::string& path, const char* reason) {
  std::ofstream f(path);
  if (!f) return false;
  dump_all(f, reason);
  return static_cast<bool>(f);
}

void set_giveup_dump_path(std::string path) {
  giveup_path() = std::move(path);
  g_giveup_dumped = false;
}

void note_giveup(Ring& ring, std::int64_t t_ns, std::uint64_t op,
                 std::uint64_t errc) {
  ring.record(t_ns, Ev::op_giveup, op, errc);
  std::string path = giveup_path();
  if (path.empty()) {
    if (const char* env = std::getenv("ORDMA_FLIGHT_DUMP"); env && *env) {
      path = labelled_path(env);
    }
  }
  if (path.empty() || g_giveup_dumped) return;
  g_giveup_dumped = true;
  if (dump_all_file(path, "clean-error give-up")) {
    std::fprintf(stderr, "flight recorder: give-up postmortem written to %s\n",
                 path.c_str());
  }
}

}  // namespace ordma::obs::flight
