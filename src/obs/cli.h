// Shared observability command-line handling for bench/ and examples/
// binaries:
//
//   --trace=<file>     record a Chrome trace (open in Perfetto / chrome://tracing)
//   --metrics=<file>   write a metrics-registry JSON snapshot on exit
//   --flight=<file>    dump the flight-recorder rings on exit (obs/flight.h)
//   --timeseries=<file>[:interval]
//                      windowed time-series telemetry (obs/timeseries.h):
//                      every RunScope-wired run emits per-interval deltas,
//                      point samples and a phase report as
//                      ordma.timeseries.v1 JSON (or CSV if <file> ends in
//                      .csv). interval takes ns/us/ms/s suffixes, default
//                      1ms of simulated time.
//   --log=<level>      off | error | info | trace (simulated-time stamped)
//   --jobs=<n>         sweep worker threads (default: ORDMA_JOBS, else all
//                      cores; forced to 1 while --trace/--metrics/--flight/
//                      --timeseries is active, since those install on the
//                      main thread)
//   --help             print these shared flags and exit
//
// Usage: construct one ObsSession at the top of main(). It consumes its own
// flags (compacting argc/argv so positional parsing downstream is
// unaffected), ignores everything else, installs the calling thread's
// TraceRecorder / MetricsRegistry / TimeseriesSink as requested, and writes
// the output files when it goes out of scope.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace ordma::obs {

class ObsSession {
 public:
  ObsSession(int& argc, char** argv);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return recorder_ != nullptr; }
  bool metrics() const { return registry_ != nullptr; }
  bool timeseries() const { return ts_sink_ != nullptr; }
  TraceRecorder* recorder() { return recorder_.get(); }
  MetricsRegistry* registry() { return registry_.get(); }
  ts::TimeseriesSink* timeseries_sink() { return ts_sink_.get(); }

  // Worker count for this binary's sweep (bench/bench_util.h sweep()).
  // Never 0; 1 whenever an observability sink is installed, because the
  // session installs it on the main thread only and a worker-thread
  // simulation would silently record nothing.
  unsigned jobs() const { return jobs_; }

  // Write the outputs now (instead of at destruction) — used by binaries
  // that want to report file paths before printing their own results.
  void flush();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string flight_path_;
  std::string timeseries_path_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<ts::TimeseriesSink> ts_sink_;
  unsigned jobs_ = 1;
  bool flushed_ = false;
};

}  // namespace ordma::obs
