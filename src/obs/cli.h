// Shared observability command-line handling for bench/ and examples/
// binaries:
//
//   --trace=<file>     record a Chrome trace (open in Perfetto / chrome://tracing)
//   --sample-traces=<file>[:N]
//                      tail-based sampled tracing (obs/sampler.h): spans
//                      stage per op and the keep/drop decision happens at
//                      op completion — ops slower than the rolling p99,
//                      errored, retried, or ORDMA-faulted are always kept,
//                      plus a deterministic 1-in-N reservoir of the rest
//                      (default N=64; :0 disables the reservoir). Output
//                      is the same Chrome trace format as --trace.
//   --metrics=<file>   ordma.metrics.v1 JSON: one registry snapshot per
//                      RunScope-wired run, merged across sweep workers
//   --flight=<file>    dump the flight-recorder rings on exit (obs/flight.h)
//   --timeseries=<file>[:interval]
//                      windowed time-series telemetry (obs/timeseries.h):
//                      every RunScope-wired run emits per-interval deltas,
//                      point samples and a phase report as
//                      ordma.timeseries.v1 JSON (or CSV if <file> ends in
//                      .csv). interval takes ns/us/ms/s suffixes, default
//                      1ms of simulated time.
//   --health=<file>[:interval]
//                      online SLO evaluation (obs/health.h): per run, the
//                      stock SLOs (op p99 latency, op error rate, ORDMA
//                      exception rate) are judged over delta windows with
//                      multi-window burn-rate alerting; one
//                      ordma.health.v1 document per run.
//   --log=<level>      off | error | info | trace (simulated-time stamped)
//   --jobs=<n>         sweep worker threads (default: ORDMA_JOBS, else all
//                      cores; forced to 1 while --trace/--sample-traces/
//                      --flight is active, since those install on the main
//                      thread — --metrics/--timeseries/--health merge
//                      thread-safely and sweep in parallel)
//   --help             print these shared flags and exit
//
// Usage: construct one ObsSession at the top of main(). It consumes its own
// flags (compacting argc/argv so positional parsing downstream is
// unaffected), ignores everything else, installs the requested recorders
// and sinks, and writes the output files when it goes out of scope.
#pragma once

#include <memory>
#include <string>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace ordma::obs {

class ObsSession {
 public:
  ObsSession(int& argc, char** argv);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return recorder_ != nullptr; }
  bool sampling() const { return sampler_ != nullptr; }
  bool metrics() const { return msink_ != nullptr; }
  bool timeseries() const { return ts_sink_ != nullptr; }
  bool health() const { return hsink_ != nullptr; }
  TraceRecorder* recorder() { return recorder_.get(); }
  TraceSampler* sampler() { return sampler_.get(); }
  MetricsSink* metrics_sink() { return msink_.get(); }
  ts::TimeseriesSink* timeseries_sink() { return ts_sink_.get(); }
  health::HealthSink* health_sink() { return hsink_.get(); }

  // Worker count for this binary's sweep (bench/bench_util.h sweep()).
  // Never 0; 1 whenever a trace surface is on, because the recorder is a
  // main-thread single-timeline instrument — the snapshot-driven sinks
  // (--metrics/--timeseries/--health) are thread-safe and don't force
  // serial.
  unsigned jobs() const { return jobs_; }

  // Write the outputs now (instead of at destruction) — used by binaries
  // that want to report file paths before printing their own results.
  void flush();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string flight_path_;
  std::string timeseries_path_;
  std::string health_path_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<TraceSampler> sampler_;  // after recorder_: detaches first
  std::unique_ptr<MetricsSink> msink_;
  std::unique_ptr<ts::TimeseriesSink> ts_sink_;
  std::unique_ptr<health::HealthSink> hsink_;
  unsigned jobs_ = 1;
  bool flushed_ = false;
};

}  // namespace ordma::obs
