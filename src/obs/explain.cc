#include "obs/explain.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string_view>

#include "obs/sweep.h"

namespace ordma::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::disk_media:
      return "disk_media";
    case Cause::disk_queue:
      return "disk_queue";
    case Cause::wire:
      return "wire";
    case Cause::nic:
      return "nic";
    case Cause::nic_queue:
      return "nic_queue";
    case Cause::server_cpu:
      return "server_cpu";
    case Cause::cache_fill:
      return "cache_fill";
    case Cause::client_cpu:
      return "client_cpu";
    case Cause::rpc_retransmit:
      return "rpc_retransmit";
    case Cause::other:
      return "other";
  }
  return "?";
}

double CauseBreakdown::sum_us() const {
  double s = 0;
  for (double u : us) s += u;
  return s;
}

Cause CauseBreakdown::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kCauseCount; ++i) {
    if (us[i] > us[best]) best = i;
  }
  return static_cast<Cause>(best);
}

namespace {

// Priorities are the enum order: deepest pipeline stage first, queueing for
// a stage right behind it, rpc_retransmit just above the idle fallback.
constexpr std::array<int, kCauseCount> kPriority = {0, 1, 2, 3, 4,
                                                    5, 6, 7, 8, 9};

bool has_prefix(const char* name, const char* prefix) {
  return std::strncmp(name, prefix, std::strlen(prefix)) == 0;
}

// Map one leaf span to its cause. `on_root_process` says whether the span's
// track lives on the same simulated host as the op's envelope (the issuing
// client): host CPU work splits into client_cpu vs server_cpu on that.
// `component` distinguishes whose queue a "queue/wait" span waited in; it
// may carry an overflow-lane suffix ("disk.q~2"), hence substring matching.
Cause classify(const char* name, std::string_view component,
               bool on_root_process) {
  if (has_prefix(name, "disk/")) return Cause::disk_media;
  if (has_prefix(name, "queue/")) {
    if (component.find("disk.q") != std::string_view::npos) {
      return Cause::disk_queue;
    }
    if (component.find("nic.") != std::string_view::npos &&
        component.find(".q") != std::string_view::npos) {
      return Cause::nic_queue;
    }
    // CPU (or other host resource) queueing: charge like the work itself.
    return on_root_process ? Cause::client_cpu : Cause::server_cpu;
  }
  if (has_prefix(name, "wire/")) return Cause::wire;
  if (has_prefix(name, "nic/")) return Cause::nic;
  if (std::strcmp(name, "io/rpc_retransmit") == 0) {
    return Cause::rpc_retransmit;
  }
  if (std::strcmp(name, "io/cache_miss") == 0) return Cause::cache_fill;
  // Everything else ("io/", "byte/", "pkt/", unknown prefixes) is host
  // processing charged to whichever side ran it.
  return on_root_process ? Cause::client_cpu : Cause::server_cpu;
}

void json_escape(std::ostream& os, const char* s) {
  for (const char* p = s; *p; ++p) {
    if (*p == '"' || *p == '\\') os << '\\';
    os << *p;
  }
}

void write_causes(std::ostream& os, const double (&us)[kCauseCount]) {
  os << "{";
  for (std::size_t i = 0; i < kCauseCount; ++i) {
    if (i) os << ", ";
    os << "\"" << cause_name(static_cast<Cause>(i)) << "\": " << us[i];
  }
  os << "}";
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

std::map<OpId, CauseBreakdown> explain(const TraceRecorder& rec) {
  struct OpSpans {
    const TraceRecorder::Event* root = nullptr;
    std::vector<const TraceRecorder::Event*> leaves;
  };
  std::map<OpId, OpSpans> ops;
  std::vector<const TraceRecorder::Event*> ambient;  // op id 0 leaf spans

  rec.for_each_event([&](const TraceRecorder::Event& ev) {
    if (ev.kind == TraceRecorder::Kind::root) {
      auto& slot = ops[ev.op];
      if (!slot.root) slot.root = &ev;
      return;
    }
    if (ev.kind != TraceRecorder::Kind::span) return;
    if (ev.op == 0) {
      ambient.push_back(&ev);
    } else {
      ops[ev.op].leaves.push_back(&ev);
    }
  });
  // Events are recorded at their end instant, so `ambient` is ordered by
  // nondecreasing end — the binary search below relies on it.

  std::map<OpId, CauseBreakdown> result;
  for (auto& [op, spans] : ops) {
    if (!spans.root) continue;  // leaf spans without an envelope
    const std::int64_t b = spans.root->begin_ns;
    const std::int64_t e = spans.root->end_ns;
    const std::string& root_process = rec.track_process(spans.root->track);

    // Ambient (op-0) work overlapping the envelope is charged to this op,
    // same approximation as the Table-1 attributor.
    const auto lo = std::lower_bound(
        ambient.begin(), ambient.end(), b,
        [](const TraceRecorder::Event* ev, std::int64_t t) {
          return ev->end_ns < t;
        });
    std::vector<SweepInterval> leaves;
    leaves.reserve(spans.leaves.size() + (ambient.end() - lo));
    auto add = [&](const TraceRecorder::Event* ev) {
      const Cause c =
          classify(ev->name, rec.track_component(ev->track),
                   rec.track_process(ev->track) == root_process);
      leaves.push_back(SweepInterval{ev->begin_ns, ev->end_ns,
                                     static_cast<std::uint8_t>(c)});
    };
    for (const auto* ev : spans.leaves) add(ev);
    for (auto it = lo; it != ambient.end(); ++it) {
      if ((*it)->begin_ns < e) add(*it);
    }

    CauseBreakdown out;
    out.op = op;
    out.root_name = spans.root->name;
    out.total_us = static_cast<double>(e - b) / 1000.0;
    std::array<std::int64_t, kCauseCount> ns{};
    priority_sweep(b, e, leaves, kPriority,
                   static_cast<std::size_t>(Cause::other), ns);
    for (std::size_t i = 0; i < kCauseCount; ++i) {
      out.us[i] = static_cast<double>(ns[i]) / 1000.0;
    }
    result.emplace(op, out);
  }
  return result;
}

std::vector<CauseBreakdown> slowest(
    const std::map<OpId, CauseBreakdown>& ops, std::size_t k) {
  std::vector<CauseBreakdown> all;
  all.reserve(ops.size());
  for (const auto& [op, bd] : ops) all.push_back(bd);
  std::sort(all.begin(), all.end(),
            [](const CauseBreakdown& a, const CauseBreakdown& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.op < b.op;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void write_explain_json(std::ostream& os, const char* label,
                        const std::map<OpId, CauseBreakdown>& ops,
                        std::size_t k) {
  std::vector<double> totals;
  totals.reserve(ops.size());
  double causes[kCauseCount] = {};
  double mean = 0;
  for (const auto& [op, bd] : ops) {
    totals.push_back(bd.total_us);
    mean += bd.total_us;
    for (std::size_t i = 0; i < kCauseCount; ++i) causes[i] += bd.us[i];
  }
  std::sort(totals.begin(), totals.end());
  if (!totals.empty()) mean /= static_cast<double>(totals.size());

  os << "{\n  \"schema\": \"ordma.explain.v1\",\n  \"label\": \"";
  json_escape(os, label);
  os << "\",\n  \"ops\": " << totals.size() << ",\n";
  os << "  \"latency_us\": {\"p50\": " << percentile(totals, 0.50)
     << ", \"p90\": " << percentile(totals, 0.90) << ", \"p99\": "
     << percentile(totals, 0.99) << ", \"max\": "
     << (totals.empty() ? 0.0 : totals.back()) << ", \"mean\": " << mean
     << "},\n";
  os << "  \"causes_us\": ";
  write_causes(os, causes);
  // Per-cause exemplar: the slowest op dominated by each cause. With the
  // tail sampler on, these are by construction *kept* op ids — a reader can
  // jump from "disk_queue is the tail's problem" straight to a retained
  // trace that shows it (ties to the smaller op id for determinism).
  OpId exemplar[kCauseCount] = {};
  double exemplar_us[kCauseCount] = {};
  for (const auto& [op, bd] : ops) {
    const auto d = static_cast<std::size_t>(bd.dominant());
    if (exemplar[d] == 0 || bd.total_us > exemplar_us[d]) {
      exemplar[d] = op;
      exemplar_us[d] = bd.total_us;
    }
  }
  os << ",\n  \"exemplars\": {";
  for (std::size_t i = 0; i < kCauseCount; ++i) {
    if (i) os << ", ";
    os << "\"" << cause_name(static_cast<Cause>(i))
       << "\": " << exemplar[i];
  }
  os << "},\n  \"slowest\": [";
  const auto top = slowest(ops, k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const CauseBreakdown& bd = top[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"op\": " << bd.op << ", \"root\": \"";
    json_escape(os, bd.root_name);
    os << "\", \"total_us\": " << bd.total_us << ", \"dominant\": \""
       << cause_name(bd.dominant()) << "\", \"causes_us\": ";
    write_causes(os, bd.us);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

bool write_explain_json_file(const std::string& path, const char* label,
                             const std::map<OpId, CauseBreakdown>& ops,
                             std::size_t k) {
  std::ofstream f(path);
  if (!f) return false;
  write_explain_json(f, label, ops, k);
  return f.good();
}

}  // namespace ordma::obs
