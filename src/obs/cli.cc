#include "obs/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/log.h"
#include "obs/flight.h"
#include "run/runner.h"

namespace ordma::obs {

namespace {
bool take_value(std::string_view arg, std::string_view flag,
                std::string* out) {
  if (arg.substr(0, flag.size()) != flag) return false;
  *out = std::string(arg.substr(flag.size()));
  return true;
}

void print_help(const char* prog) {
  std::printf(
      "usage: %s [shared observability flags]\n"
      "\n"
      "shared observability flags (obs/cli.h, consumed before the binary's\n"
      "own argument parsing):\n"
      "  --trace=<file>     record a Chrome trace against simulated time\n"
      "  --sample-traces=<file>[:N]\n"
      "                     tail-based sampled tracing: keep every op that\n"
      "                     exceeded the rolling p99, errored, retried, or\n"
      "                     took an ORDMA exception, plus a deterministic\n"
      "                     1-in-N reservoir of the rest (default N=64,\n"
      "                     :0 disables the reservoir). Same Chrome trace\n"
      "                     output as --trace, a fraction of the size.\n"
      "  --metrics=<file>   ordma.metrics.v1 JSON: one registry snapshot\n"
      "                     per run, merged across sweep workers\n"
      "  --flight=<file>    dump the flight-recorder rings on exit\n"
      "  --timeseries=<file>[:interval]\n"
      "                     windowed time-series telemetry: per-interval\n"
      "                     rates/deltas, point samples and a run-phase\n"
      "                     report per run, as ordma.timeseries.v1 JSON\n"
      "                     (CSV if <file> ends in .csv). interval takes\n"
      "                     ns/us/ms/s suffixes; default 1ms of simulated\n"
      "                     time. Example: --timeseries=ts.json:500us\n"
      "  --health=<file>[:interval]\n"
      "                     online SLO/burn-rate evaluation per run (op p99\n"
      "                     latency, op error rate, ORDMA exception rate)\n"
      "                     as ordma.health.v1 JSON. interval as above.\n"
      "  --log=<level>      off | error | info | trace\n"
      "  --jobs=<n>         sweep worker threads (default: ORDMA_JOBS, else\n"
      "                     all cores; forced to 1 while --trace/\n"
      "                     --sample-traces/--flight is active)\n"
      "  --help             this message\n",
      prog);
}
}  // namespace

ObsSession::ObsSession(int& argc, char** argv) {
  std::string log_level;
  std::string jobs_arg;
  std::string ts_arg;
  std::string sample_arg;
  std::string health_arg;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      std::exit(0);
    }
    const bool consumed =
        take_value(arg, "--trace=", &trace_path_) ||
        take_value(arg, "--sample-traces=", &sample_arg) ||
        take_value(arg, "--metrics=", &metrics_path_) ||
        take_value(arg, "--flight=", &flight_path_) ||
        take_value(arg, "--timeseries=", &ts_arg) ||
        take_value(arg, "--health=", &health_arg) ||
        take_value(arg, "--log=", &log_level) ||
        take_value(arg, "--jobs=", &jobs_arg);
    if (!consumed) argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;
  if (log_level == "off") {
    Log::set_default_level(LogLevel::off);
  } else if (log_level == "error") {
    Log::set_default_level(LogLevel::error);
  } else if (log_level == "info") {
    Log::set_default_level(LogLevel::info);
  } else if (log_level == "trace") {
    Log::set_default_level(LogLevel::trace);
  } else if (!log_level.empty()) {
    std::fprintf(stderr, "obs: unknown --log level '%s' (want off|error|info|trace)\n",
                 log_level.c_str());
  }
  jobs_ = run::env_jobs();
  if (!jobs_arg.empty()) {
    const int n = std::atoi(jobs_arg.c_str());
    if (n >= 1) {
      jobs_ = static_cast<unsigned>(n);
    } else {
      std::fprintf(stderr, "obs: ignoring bad --jobs value '%s'\n",
                   jobs_arg.c_str());
    }
  }
  if (!sample_arg.empty() && !trace_path_.empty()) {
    std::fprintf(stderr,
                 "obs: --trace and --sample-traces are exclusive; keeping "
                 "--trace (full recording)\n");
    sample_arg.clear();
  }
  if (!trace_path_.empty()) {
    recorder_ = std::make_unique<TraceRecorder>();
    install(recorder_.get());
  }
  if (!sample_arg.empty()) {
    // --sample-traces=<file>[:N] — the suffix after the last ':' is the
    // reservoir period iff it parses as a non-negative integer.
    trace_path_ = sample_arg;
    TraceSampler::Config cfg;
    const auto colon = sample_arg.rfind(':');
    if (colon != std::string::npos && colon + 1 < sample_arg.size()) {
      char* end = nullptr;
      const std::string tail = sample_arg.substr(colon + 1);
      const long n = std::strtol(tail.c_str(), &end, 10);
      if (end != tail.c_str() && *end == '\0' && n >= 0) {
        cfg.reservoir_n = static_cast<std::uint32_t>(n);
        trace_path_ = sample_arg.substr(0, colon);
      }
    }
    recorder_ = std::make_unique<TraceRecorder>();
    install(recorder_.get());
    sampler_ = std::make_unique<TraceSampler>(*recorder_, cfg);
  }
  if (!metrics_path_.empty()) {
    msink_ = std::make_unique<MetricsSink>();
    install_metrics_sink(msink_.get());
  }
  if (!ts_arg.empty()) {
    // --timeseries=<file>[:interval] — the suffix after the last ':' is an
    // interval iff it parses as a duration, so paths containing ':' still
    // work.
    ts::TimeseriesConfig cfg;
    timeseries_path_ = ts_arg;
    const auto colon = ts_arg.rfind(':');
    if (colon != std::string::npos) {
      Duration iv;
      if (ts::parse_duration(ts_arg.substr(colon + 1), &iv)) {
        cfg.interval = iv;
        timeseries_path_ = ts_arg.substr(0, colon);
      }
    }
    const bool csv = timeseries_path_.size() >= 4 &&
                     timeseries_path_.compare(timeseries_path_.size() - 4, 4,
                                              ".csv") == 0;
    ts_sink_ = std::make_unique<ts::TimeseriesSink>(
        csv ? ts::TimeseriesSink::Format::csv
            : ts::TimeseriesSink::Format::json,
        cfg);
    ts::install_global(ts_sink_.get());
  }
  if (!health_arg.empty()) {
    Duration iv = msec(1);
    health_path_ = health_arg;
    const auto colon = health_arg.rfind(':');
    if (colon != std::string::npos) {
      Duration parsed;
      if (ts::parse_duration(health_arg.substr(colon + 1), &parsed)) {
        iv = parsed;
        health_path_ = health_arg.substr(0, colon);
      }
    }
    hsink_ = std::make_unique<health::HealthSink>(iv);
    health::install_health_sink(hsink_.get());
  }
  // Trace surfaces are installed on this (the main) thread and record one
  // timeline; a simulation running on a pool worker would bypass them.
  // Force the sweep serial so every cell is observed — and name the
  // specific flag(s) that forced it. The snapshot-driven sinks
  // (--metrics/--timeseries/--health) merge thread-safely and keep
  // parallel sweeps.
  if (jobs_ > 1 && (recorder_ || !flight_path_.empty())) {
    std::string cause;
    if (recorder_) cause += sampler_ ? "--sample-traces" : "--trace";
    if (!flight_path_.empty()) {
      cause += std::string(cause.empty() ? "" : ", ") + "--flight";
    }
    std::fprintf(stderr,
                 "obs: %s installs a main-thread sink; running serial "
                 "(--jobs=%u ignored — drop %s to sweep in parallel)\n",
                 cause.c_str(), jobs_, cause.c_str());
    jobs_ = 1;
  }
}

void ObsSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (recorder_) {
    // Replay kept spans for any ops still staged (nothing should be, after
    // a clean run) before serializing.
    if (sampler_) sampler_->finish();
    if (recorder_->write_chrome_json_file(trace_path_)) {
      if (sampler_) {
        std::fprintf(
            stderr,
            "obs: sampled trace written to %s (%zu events; kept %zu of "
            "%zu ops, %zu of %zu events)\n",
            trace_path_.c_str(), recorder_->event_count(),
            sampler_->ops_kept(), sampler_->ops_decided(),
            sampler_->events_kept(), sampler_->events_staged());
      } else {
        std::fprintf(stderr, "obs: trace written to %s (%zu events)\n",
                     trace_path_.c_str(), recorder_->event_count());
      }
    } else {
      std::fprintf(stderr, "obs: failed to write trace to %s\n",
                   trace_path_.c_str());
    }
  }
  if (!flight_path_.empty()) {
    // Rings live inside the simulated hosts: binaries using --flight must
    // call flush() before their Cluster goes out of scope, or the dump
    // will list no rings.
    if (flight::dump_all_file(flight_path_, "cli_flush")) {
      std::fprintf(stderr, "obs: flight dump written to %s\n",
                   flight_path_.c_str());
    } else {
      std::fprintf(stderr, "obs: failed to write flight dump to %s\n",
                   flight_path_.c_str());
    }
  }
  if (msink_) {
    if (msink_->runs() == 0) {
      std::fprintf(stderr,
                   "obs: --metrics produced no runs — this binary has no "
                   "obs::ts::RunScope around its measured region yet\n");
    }
    if (msink_->write_file(metrics_path_)) {
      std::fprintf(stderr, "obs: metrics written to %s (%zu runs)\n",
                   metrics_path_.c_str(), msink_->runs());
    } else {
      std::fprintf(stderr, "obs: failed to write metrics to %s\n",
                   metrics_path_.c_str());
    }
  }
  if (ts_sink_) {
    if (ts_sink_->runs() == 0) {
      std::fprintf(stderr,
                   "obs: --timeseries produced no runs — this binary has no "
                   "obs::ts::RunScope around its measured region yet\n");
    }
    if (ts_sink_->write_file(timeseries_path_)) {
      std::fprintf(stderr, "obs: timeseries written to %s (%zu runs)\n",
                   timeseries_path_.c_str(), ts_sink_->runs());
    } else {
      std::fprintf(stderr, "obs: failed to write timeseries to %s\n",
                   timeseries_path_.c_str());
    }
  }
  if (hsink_) {
    if (hsink_->runs() == 0) {
      std::fprintf(stderr,
                   "obs: --health produced no runs — this binary has no "
                   "obs::ts::RunScope around its measured region yet\n");
    }
    if (hsink_->write_file(health_path_)) {
      std::fprintf(stderr, "obs: health written to %s (%zu runs%s)\n",
                   health_path_.c_str(), hsink_->runs(),
                   hsink_->any_trips() ? ", SLO trips recorded" : "");
    } else {
      std::fprintf(stderr, "obs: failed to write health to %s\n",
                   health_path_.c_str());
    }
  }
}

ObsSession::~ObsSession() { flush(); }

}  // namespace ordma::obs
