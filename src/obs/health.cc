#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/assert.h"
#include "sim/engine.h"

namespace ordma::obs::health {

namespace {

const char* kind_name(SloSpec::Kind k) {
  switch (k) {
    case SloSpec::Kind::p99_latency: return "p99_latency";
    case SloSpec::Kind::ratio: return "ratio";
  }
  return "?";
}

void json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void emit_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

// Does `path` end in "/<suffix>" (or equal it)? Returns the component
// prefix via *component on match.
bool suffix_match(const std::string& path, const std::string& suffix,
                  std::string* component) {
  if (path.size() == suffix.size()) {
    if (path != suffix) return false;
    component->clear();
    return true;
  }
  if (path.size() < suffix.size() + 1) return false;
  const std::size_t at = path.size() - suffix.size();
  if (path[at - 1] != '/' || path.compare(at, suffix.size(), suffix) != 0) {
    return false;
  }
  *component = path.substr(0, at - 1);
  return true;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

std::vector<SloSpec> default_slos() {
  std::vector<SloSpec> v;
  {
    SloSpec s;
    s.name = "io_p99";
    s.kind = SloSpec::Kind::p99_latency;
    s.series_suffix = "io/latency_us";
    s.threshold = 0;  // auto-calibrate per component
    v.push_back(std::move(s));
  }
  {
    SloSpec s;
    s.name = "io_errors";
    s.kind = SloSpec::Kind::ratio;
    s.series_suffix = "io/errors";
    s.total_suffix = "io/ops";
    s.threshold = 0.01;
    v.push_back(std::move(s));
  }
  {
    SloSpec s;
    s.name = "ordma_exceptions";
    s.kind = SloSpec::Kind::ratio;
    s.series_suffix = "nic/ordma_faults";
    s.total_suffix = "nic/ordma_served";
    s.threshold = 0.05;
    v.push_back(std::move(s));
  }
  return v;
}

HealthMonitor::HealthMonitor(MetricsRegistry& reg, std::vector<SloSpec> slos)
    : reg_(reg), slos_(std::move(slos)) {
  scratch_.reserve(64);
}

HealthMonitor::~HealthMonitor() { finish(); }

void HealthMonitor::arm(sim::Engine& eng, Duration interval) {
  ORDMA_CHECK(eng_ == nullptr && !finished_);
  eng_ = &eng;
  eng.set_sampling_hook(interval, this, &HealthMonitor::hook);
}

void HealthMonitor::hook(void* self) {
  auto* m = static_cast<HealthMonitor*>(self);
  m->sample_window(m->eng_->now().ns);
}

HealthMonitor::Instance* HealthMonitor::instance_for(
    std::size_t spec, const std::string& series) {
  for (Instance& inst : instances_) {
    if (inst.spec == spec && inst.series == series) return &inst;
  }
  return nullptr;
}

double HealthMonitor::trailing_burn(const Instance& inst,
                                    std::size_t n) const {
  const std::size_t have = std::min(n, inst.evaluated);
  if (have == 0) return 0;
  const std::size_t cap = inst.bad.size();
  std::uint64_t bad = 0;
  for (std::size_t i = 0; i < have; ++i) {
    // bad_head is the next write position == oldest entry once wrapped;
    // walk backwards from the most recent entry.
    const std::size_t idx = (inst.bad_head + cap - 1 - i) % cap;
    bad += inst.bad[idx];
  }
  const SloSpec& spec = slos_[inst.spec];
  const double frac = static_cast<double>(bad) / static_cast<double>(have);
  return spec.budget > 0 ? frac / spec.budget : (frac > 0 ? 1e9 : 0.0);
}

void HealthMonitor::evaluate(Instance& inst, double value,
                             std::int64_t t_ns) {
  const SloSpec& spec = slos_[inst.spec];
  if (!inst.calibrated) {
    if (spec.threshold > 0) {
      inst.threshold = spec.threshold;
      inst.calibrated = true;
    } else {
      inst.calib.push_back(value);
      if (inst.calib.size() >= spec.calib_windows) {
        inst.threshold = spec.auto_multiplier * median_of(inst.calib);
        inst.calibrated = true;
      }
      return;  // calibration windows are not judged
    }
  }
  const std::uint8_t bad = value > inst.threshold ? 1 : 0;
  const std::size_t cap = std::max<std::size_t>(spec.slow_windows, 1);
  if (inst.bad.size() < cap) {
    inst.bad.push_back(bad);
    inst.bad_head = inst.bad.size() % cap;
  } else {
    inst.bad[inst.bad_head] = bad;
    inst.bad_head = (inst.bad_head + 1) % cap;
  }
  ++inst.evaluated;
  inst.bad_total += bad;
  inst.burn_fast = trailing_burn(inst, spec.fast_windows);
  inst.burn_slow = trailing_burn(inst, spec.slow_windows);
  const bool firing = inst.burn_fast >= spec.burn_threshold &&
                      inst.burn_slow >= spec.burn_threshold &&
                      inst.evaluated >= spec.fast_windows;
  if (firing && !inst.tripped) {
    inst.tripped = true;
    inst.open_trip = trips_.size();
    Trip t;
    t.slo = spec.name;
    t.component = inst.component;
    t.begin = windows_;
    t.end = 0;
    t.peak_burn = inst.burn_fast;
    trips_.push_back(std::move(t));
    flight_.record(t_ns, flight::Ev::slo_trip, inst.spec, windows_,
                   static_cast<std::uint32_t>(inst.burn_fast * 1000.0));
  } else if (inst.tripped) {
    Trip& t = trips_[inst.open_trip];
    t.peak_burn = std::max(t.peak_burn, inst.burn_fast);
    if (inst.burn_fast < spec.burn_threshold) {
      inst.tripped = false;
      t.end = windows_;
      flight_.record(t_ns, flight::Ev::slo_clear, inst.spec, windows_);
    }
  }
}

void HealthMonitor::sample_window(std::int64_t t_ns) {
  if (finished_) return;
  reg_.delta_snapshot(cursor_, scratch_);
  // Path -> row lookup for ratio denominators (rows are path-sorted).
  auto find_row = [&](const std::string& path) -> const
      MetricsRegistry::Delta* {
        for (const MetricsRegistry::Delta& d : scratch_) {
          if (*d.path == path) return &d;
        }
        return nullptr;
      };
  for (std::size_t si = 0; si < slos_.size(); ++si) {
    const SloSpec& spec = slos_[si];
    std::string component;
    for (const MetricsRegistry::Delta& d : scratch_) {
      if (!suffix_match(*d.path, spec.series_suffix, &component)) continue;
      Instance* inst = instance_for(si, *d.path);
      if (inst == nullptr) {
        Instance fresh;
        fresh.spec = si;
        fresh.component = component;
        fresh.series = *d.path;
        if (spec.kind == SloSpec::Kind::ratio) {
          fresh.total = component.empty()
                            ? spec.total_suffix
                            : component + "/" + spec.total_suffix;
        }
        instances_.push_back(std::move(fresh));
        inst = &instances_.back();
      }
      switch (spec.kind) {
        case SloSpec::Kind::p99_latency: {
          if (d.kind != MetricsRegistry::Kind::histogram || d.value <= 0) {
            continue;  // empty window: nothing to judge
          }
          evaluate(*inst,
                   histogram_quantile_from_counts(
                       d.h_buckets, LatencyHistogram::bucket_count(), 0.99),
                   t_ns);
          break;
        }
        case SloSpec::Kind::ratio: {
          const MetricsRegistry::Delta* total = find_row(inst->total);
          if (total == nullptr || total->value <= 0) continue;
          evaluate(*inst, d.value / total->value, t_ns);
          break;
        }
      }
    }
  }
  ++windows_;
}

void HealthMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  for (Instance& inst : instances_) {
    if (inst.tripped) {
      inst.tripped = false;
      trips_[inst.open_trip].end = windows_;
    }
  }
  if (eng_ != nullptr) {
    eng_->clear_sampling_hook();
    eng_ = nullptr;
  }
}

void HealthMonitor::write_json(std::ostream& os, const std::string& run) {
  finish();
  os << R"({"schema":"ordma.health.v1","run":")";
  json_escaped(os, run);
  os << R"(","windows":)" << windows_;
  os << R"(,"healthy":)" << (trips_.empty() ? "true" : "false");
  os << R"(,"slos":[)";
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const SloSpec& spec = slos_[inst.spec];
    if (i) os << ",";
    os << R"({"name":")";
    json_escaped(os, spec.name);
    os << R"(","kind":")" << kind_name(spec.kind) << R"(","component":")";
    json_escaped(os, inst.component);
    os << R"(","series":")";
    json_escaped(os, inst.series);
    os << R"(","threshold":)";
    emit_number(os, inst.threshold);
    os << R"(,"calibrated":)" << (inst.calibrated ? "true" : "false");
    os << R"(,"evaluated":)" << inst.evaluated;
    os << R"(,"bad_windows":)" << inst.bad_total;
    os << R"(,"burn_fast":)";
    emit_number(os, inst.burn_fast);
    os << R"(,"burn_slow":)";
    emit_number(os, inst.burn_slow);
    os << "}";
  }
  os << R"(],"trips":[)";
  for (std::size_t i = 0; i < trips_.size(); ++i) {
    const Trip& t = trips_[i];
    if (i) os << ",";
    os << R"({"slo":")";
    json_escaped(os, t.slo);
    os << R"(","component":")";
    json_escaped(os, t.component);
    os << R"(","begin":)" << t.begin << R"(,"end":)" << t.end
       << R"(,"peak_burn":)";
    emit_number(os, t.peak_burn);
    os << "}";
  }
  os << "]}";
}

// ---------------------------------------------------------------------------
// HealthSink
// ---------------------------------------------------------------------------

namespace {
HealthSink* g_health_sink = nullptr;
}  // namespace

HealthSink* health_sink() { return g_health_sink; }
void install_health_sink(HealthSink* s) { g_health_sink = s; }

void HealthSink::add(const std::string& label, std::string doc) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = label;
  for (int n = 2; docs_.count(key) != 0; ++n) {
    key = label + "#" + std::to_string(n);
  }
  docs_.emplace(std::move(key), std::move(doc));
}

std::size_t HealthSink::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

bool HealthSink::any_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_ != 0;
}

void HealthSink::note_trips(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  trips_ += n;
}

void HealthSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "[";
  bool first = true;
  for (const auto& [label, doc] : docs_) {
    os << (first ? "\n" : ",\n") << doc;
    first = false;
  }
  os << (docs_.empty() ? "]" : "\n]") << "\n";
}

bool HealthSink::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return f.good();
}

}  // namespace ordma::obs::health
