#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "common/assert.h"
#include "obs/sampler.h"

namespace ordma::obs {

void install(TraceRecorder* r) {
  tls().recorder = r;
  ++tls().trace_epoch;
}

TraceRecorder::~TraceRecorder() {
  if (tls().recorder == this) install(nullptr);
}

TrackId TraceRecorder::track(std::string_view process,
                             std::string_view component) {
  for (TrackId t = 0; t < tracks_.size(); ++t) {
    if (tracks_[t].lane == 1 && tracks_[t].component == component &&
        processes_[tracks_[t].pid] == process) {
      return t;
    }
  }
  std::uint32_t pid = 0;
  for (; pid < processes_.size(); ++pid) {
    if (processes_[pid] == process) break;
  }
  if (pid == processes_.size()) processes_.emplace_back(process);
  TrackInfo info;
  info.component = std::string(component);
  info.pid = pid;
  tracks_.push_back(std::move(info));
  return static_cast<TrackId>(tracks_.size() - 1);
}

TrackId TraceRecorder::overflow_lane(TrackId t) {
  if (tracks_[t].overflow != 0) return tracks_[t].overflow;
  TrackInfo info;
  info.pid = tracks_[t].pid;
  info.lane = tracks_[t].lane + 1;
  info.component =
      tracks_[t].component.substr(0, tracks_[t].component.find('~')) + "~" +
      std::to_string(info.lane);
  tracks_.push_back(std::move(info));
  const auto lane = static_cast<TrackId>(tracks_.size() - 1);
  tracks_[t].overflow = lane;
  return lane;
}

void TraceRecorder::record_direct(Kind kind, TrackId track, OpId op,
                                  const char* name, std::int64_t begin_ns,
                                  std::int64_t end_ns) {
  ORDMA_CHECK(track < tracks_.size() && end_ns >= begin_ns);
  if (kind == Kind::span || kind == Kind::root) {
    // Keep each lane's slices disjoint (see overlap discipline in trace.h).
    // Events arrive in nondecreasing end order, so every span already on a
    // lane ends at or before that lane's last_end.
    while (tracks_[track].last_end > begin_ns) {
      track = overflow_lane(track);
    }
    tracks_[track].last_end = std::max(tracks_[track].last_end, end_ns);
  }
  push(Event{begin_ns, end_ns, name, op, track, kind});
}

void TraceRecorder::push(const Event& ev) {
  const std::size_t chunk = count_ >> kChunkShift;
  if (chunk == chunks_.size()) {
    chunks_.emplace_back(std::make_unique<Event[]>(kChunkEvents));
  }
  chunks_[chunk][count_ & (kChunkEvents - 1)] = ev;
  ++count_;
}

void TraceRecorder::clear() {
  count_ = 0;
  for (auto& t : tracks_) t.last_end = 0;
}

namespace {

// Span names and track names are ASCII identifiers by convention; escape
// defensively anyway so the output is always valid JSON.
void json_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void emit_ts(std::ostream& os, std::int64_t ns) {
  // Chrome trace timestamps are microseconds; print with ns precision.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

// Category = name prefix up to the first '/'.
std::string_view category_of(const char* name) {
  std::string_view s(name);
  const auto slash = s.find('/');
  return slash == std::string_view::npos ? s : s.substr(0, slash);
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: process (host) and thread (component track) names. tids are
  // globally unique track ids; sort index keeps lane order stable.
  for (std::uint32_t pid = 0; pid < processes_.size(); ++pid) {
    sep();
    os << R"({"ph":"M","name":"process_name","pid":)" << pid
       << R"(,"tid":0,"args":{"name":")";
    json_escaped(os, processes_[pid]);
    os << "\"}}";
  }
  for (TrackId t = 0; t < tracks_.size(); ++t) {
    sep();
    os << R"({"ph":"M","name":"thread_name","pid":)" << tracks_[t].pid
       << R"(,"tid":)" << t + 1 << R"(,"args":{"name":")";
    json_escaped(os, tracks_[t].component);
    os << "\"}}";
    sep();
    os << R"({"ph":"M","name":"thread_sort_index","pid":)" << tracks_[t].pid
       << R"(,"tid":)" << t + 1 << R"(,"args":{"sort_index":)" << t + 1
       << "}}";
  }

  // Flow chains are grouped per op and ordered by (time, record order).
  struct FlowPoint {
    std::int64_t at;
    TrackId track;
    const char* name;
  };
  std::map<OpId, std::vector<FlowPoint>> flows;

  for_each_event([&](const Event& ev) {
    switch (ev.kind) {
      case Kind::span:
      case Kind::root: {
        sep();
        os << R"({"ph":"X","name":")";
        json_escaped(os, ev.name);
        os << R"(","cat":")";
        json_escaped(os, category_of(ev.name));
        os << R"(","pid":)" << tracks_[ev.track].pid << R"(,"tid":)"
           << ev.track + 1 << R"(,"ts":)";
        emit_ts(os, ev.begin_ns);
        os << R"(,"dur":)";
        emit_ts(os, ev.end_ns - ev.begin_ns);
        os << R"(,"args":{"op":)" << ev.op << "}}";
        break;
      }
      case Kind::instant: {
        sep();
        os << R"({"ph":"i","s":"t","name":")";
        json_escaped(os, ev.name);
        os << R"(","cat":")";
        json_escaped(os, category_of(ev.name));
        os << R"(","pid":)" << tracks_[ev.track].pid << R"(,"tid":)"
           << ev.track + 1 << R"(,"ts":)";
        emit_ts(os, ev.begin_ns);
        os << R"(,"args":{"op":)" << ev.op << "}}";
        break;
      }
      case Kind::flow:
        flows[ev.op].push_back(FlowPoint{ev.begin_ns, ev.track, ev.name});
        break;
    }
  });

  for (const auto& [op, points] : flows) {
    if (points.size() < 2) continue;  // an arrow needs two ends
    for (std::size_t i = 0; i < points.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      sep();
      os << R"({"ph":")" << ph << R"(","cat":"flow","id":)" << op
         << R"(,"name":")";
      json_escaped(os, points[i].name);
      os << R"(","pid":)" << tracks_[points[i].track].pid << R"(,"tid":)"
         << points[i].track + 1 << R"(,"ts":)";
      emit_ts(os, points[i].at);
      if (ph[0] == 'f') os << R"(,"bp":"e")";
      os << "}";
    }
  }

  os << "\n]\n";
}

bool TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_json(f);
  return f.good();
}

}  // namespace ordma::obs
