// Windowed time-series telemetry over simulated time.
//
// Every other observability surface here (metrics JSON, Table 1
// attribution, the p99 explainer) is an end-of-run aggregate; the paper's
// central phenomena — server CPU saturating under load (Fig. 7), ORDMA
// wins tracking the reference hit rate — are time-varying. This module
// adds the time axis: a TimeseriesSampler rides the engine's periodic
// sampling hook (sim/engine.h set_sampling_hook) and, at every boundary of
// a fixed simulated-time grid, takes a MetricsRegistry::delta_snapshot —
// counters and cumulative gauges become per-window deltas (rates), plain
// gauges become point samples, latency histograms become per-window delta
// histograms with nearest-rank p50/p99 — into per-series ring storage
// pre-allocated at series creation.
//
// The observer contract matches trace/flight: sampling draws no random
// numbers, schedules no events (the engine hook lives outside the event
// queues), and allocates nothing in steady state, so a run with sampling
// on is bit-identical to the same run with it off — golden-hash pinned by
// tests/timeseries_test.cc and the torture suite.
//
// Output is the `ordma.timeseries.v1` schema: a JSON array with one
// document per run (sweep cell), each carrying the window grid, every
// series, and the run-phase report produced by summarize_phases() — a
// deterministic windowed mean-shift segmentation labeling each stretch of
// the key series warmup / steady / saturation / degraded. A `.csv` output
// path selects a flat one-block-per-run CSV rendering instead.
// scripts/validate_timeseries.py checks the invariants (monotone
// timestamps, constant interval, rate non-negativity); ROADMAP item 4's
// adaptive protocol policy is the intended in-process consumer.
//
// Wiring: obs/cli.h parses --timeseries=<file>[:interval], installs a
// thread-local TimeseriesSink, and writes the file at session end. A
// binary opts a run in by constructing a RunScope around the measured
// region and exporting its components into the scope's registry; with no
// sink installed the scope is inert and costs two pointer reads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/tls_ctx.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace ordma::sim {
class Engine;
}

namespace ordma::obs::health {
class HealthMonitor;
class HealthSink;
}  // namespace ordma::obs::health

namespace ordma::obs {
class MetricsSink;
}  // namespace ordma::obs

namespace ordma::obs::ts {

// ---------------------------------------------------------------------------
// Run-phase summarizer
// ---------------------------------------------------------------------------

enum class Phase { warmup, steady, saturation, degraded };
const char* phase_name(Phase p);

struct PhaseSegment {
  Phase label{};
  std::size_t begin = 0;  // window index, inclusive
  std::size_t end = 0;    // window index, exclusive
  double mean = 0;        // mean of the key series over [begin, end)
  // Violated SLO name when an obs/health.h trip overlaps this segment
  // (annotate_slo); such segments are relabeled degraded.
  std::string slo;
};

struct PhaseParams {
  // Segmentation: a new segment opens at the first of `confirm`
  // consecutive windows whose value deviates from the running segment mean
  // by more than `shift` (relative to max(|mean|, floor), so an all-zero
  // prefix doesn't divide by zero).
  double shift = 0.25;
  std::size_t confirm = 3;
  double floor = 1e-9;
  // Labeling: the longest segment is "steady" (earliest wins ties).
  // Earlier segments are "warmup". Later segments at >= saturation_frac of
  // the peak segment mean and above the steady mean are "saturation";
  // below degraded_frac of the steady mean, "degraded"; otherwise they
  // stay "steady".
  double saturation_frac = 0.9;
  double degraded_frac = 0.75;
};

// Deterministic windowed mean-shift segmentation + labeling of one series.
// Pure function of its inputs; unit-tested on synthetic series.
std::vector<PhaseSegment> summarize_phases(const std::vector<double>& v,
                                           const PhaseParams& p = {});

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

struct TimeseriesConfig {
  Duration interval = msec(1);
  // Ring capacity per series, reserved up front: with more than
  // `max_windows` windows the oldest are dropped (and counted) so steady
  // state never reallocates however long the run.
  std::size_t max_windows = 4096;
  // Key series for the phase report; "" picks "server/cpu/busy_us" when
  // present, else the first delta-kind series in path order.
  std::string phase_series;
  PhaseParams phase_params{};
};

// "500us", "2ms", "1s", "250000ns" or a bare nanosecond count.
bool parse_duration(const std::string& s, Duration* out);

// Drives one run's windows: arms the engine's sampling hook on
// construction, closes a window at every grid boundary the run crosses,
// and on finish() captures the trailing partial window (so window sums
// partition run totals exactly) and computes the phase report.
class TimeseriesSampler {
 public:
  TimeseriesSampler(sim::Engine& eng, MetricsRegistry& reg,
                    TimeseriesConfig cfg = {});
  ~TimeseriesSampler();  // disarms the hook
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  // Close the window ending at the engine's current instant. Called by the
  // engine hook at grid boundaries; tests may call it directly.
  void sample_window();
  // Capture the trailing partial window and compute phases. Idempotent;
  // called automatically by the first write_*().
  void finish();

  // Chain a second windowed consumer onto this sampler's grid: `fn` fires
  // after every closed window (including the trailing partial one) with
  // the engine's current time. The engine allows one sampling hook, so
  // obs/health.h rides this instead of arming its own when both are on.
  void set_window_observer(void* ctx, void (*fn)(void*, std::int64_t)) {
    obs_ctx_ = ctx;
    obs_fn_ = fn;
  }

  // Fold SLO trips (window-index ranges from obs/health.h) into the phase
  // report: segments overlapping a trip are relabeled degraded and carry
  // the violated SLO's name. Call after finish(); end == 0 means
  // still-open (extends to the last window).
  struct SloMark {
    std::string slo;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  void annotate_slo(const std::vector<SloMark>& marks);

  std::size_t windows() const { return windows_; }
  std::size_t dropped_windows() const {
    return windows_ > cfg_.max_windows ? windows_ - cfg_.max_windows : 0;
  }
  // Value of series `path` in (absolute) window w; 0 before the series
  // existed. For histograms, the delta event count.
  double value(const std::string& path, std::size_t w) const;
  const std::vector<PhaseSegment>& phases() const { return phases_; }
  const std::string& phase_series() const { return phase_key_; }

  // One `ordma.timeseries.v1` document / CSV block for this run.
  void write_json(std::ostream& os, const std::string& run);
  void write_csv(std::ostream& os, const std::string& run);

 private:
  struct Column {
    MetricsRegistry::Kind kind{};
    std::size_t first = 0;       // window index when the series appeared
    std::vector<double> v;       // delta / sample value (hist: count)
    std::vector<double> h_sum_us, h_p50_us, h_p99_us;  // histogram only
    void store(std::size_t w, std::size_t cap, double x,
               std::vector<double>& ring) {
      if (ring.size() < cap) {
        ring.push_back(x);
      } else {
        ring[(w - first) % cap] = x;
      }
    }
  };

  static void hook(void* self);
  double col_value(const Column& c, const std::vector<double>& ring,
                   std::size_t w) const;
  std::size_t first_kept() const { return dropped_windows(); }

  sim::Engine& eng_;
  MetricsRegistry& reg_;
  TimeseriesConfig cfg_;
  std::int64_t base_ns_ = 0;  // grid start of window 0 (multiple of interval)
  std::size_t windows_ = 0;
  bool finished_ = false;
  std::int64_t end_ns_ = 0;  // engine now at finish()
  MetricsRegistry::DeltaCursor cursor_;
  std::vector<MetricsRegistry::Delta> scratch_;
  std::map<std::string, Column> cols_;  // deterministic series order
  std::vector<PhaseSegment> phases_;
  std::string phase_key_;
  void* obs_ctx_ = nullptr;
  void (*obs_fn_)(void*, std::int64_t) = nullptr;
};

// ---------------------------------------------------------------------------
// Session sink + per-run scope
// ---------------------------------------------------------------------------

// Session-level collector: holds the output format/config and accumulates
// one serialized document per finished run, keyed and emitted in label
// order. add() is thread-safe, so a single process-global sink can merge
// parallel sweep workers deterministically; the thread-local install
// (common/tls_ctx.h) still wins when present, giving tests an isolated
// domain per thread.
class TimeseriesSink {
 public:
  enum class Format { json, csv };

  explicit TimeseriesSink(Format f = Format::json, TimeseriesConfig cfg = {})
      : format_(f), cfg_(cfg) {}
  ~TimeseriesSink();

  Format format() const { return format_; }
  const TimeseriesConfig& config() const { return cfg_; }

  // Thread-safe; duplicate labels get a "#n" suffix.
  void add(const std::string& label, std::string doc);
  std::size_t runs() const;
  // i-th document in label order (copy; test convenience).
  std::string doc(std::size_t i) const;

  // JSON: array of run documents. CSV: run blocks concatenated.
  // Both in label order.
  void write(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  Format format_;
  TimeseriesConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> docs_;
};

// Thread-local sink first (test isolation), then the process global.
TimeseriesSink* sink();
// Install `s` as the calling thread's sink (nullptr disables). Caller
// keeps ownership; a sink uninstalls itself on destruction if still
// installed on the destroying thread.
void install(TimeseriesSink* s);
// Install `s` process-wide (obs/cli.h does this so every parallel worker
// feeds one deterministic merged document).
void install_global(TimeseriesSink* s);

// Per-run RAII wiring for every snapshot-driven obs surface: when a
// timeseries, metrics, or health sink is present, owns a fresh
// MetricsRegistry for the run's gauges (so gauge closures never outlive
// the components they read) plus — per sink — a TimeseriesSampler on the
// run's engine and/or a HealthMonitor (chained off the sampler's window
// observer when both are on, since the engine allows one sampling hook).
// On destruction: the trace sampler (if any) finalizes first so exemplars
// resolve, then the monitor closes its trips, trip ranges annotate the
// phase report, and each surface's serialized document lands in its sink
// under `label`. With no sink installed every member stays null and the
// scope is free. Destroy the scope *before* the cluster whose components
// were exported into registry().
class RunScope {
 public:
  RunScope(sim::Engine& eng, std::string label);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  bool active() const { return reg_ != nullptr; }
  MetricsRegistry& registry() { return *reg_; }  // valid iff active()
  // Valid iff a timeseries sink was installed at construction.
  TimeseriesSampler& sampler() { return *sampler_; }
  bool has_sampler() const { return sampler_ != nullptr; }
  // Valid iff a health sink was installed at construction.
  health::HealthMonitor& monitor() { return *monitor_; }
  bool has_monitor() const { return monitor_ != nullptr; }

 private:
  std::string label_;
  TimeseriesSink* sink_ = nullptr;
  MetricsSink* msink_ = nullptr;
  health::HealthSink* hsink_ = nullptr;
  std::unique_ptr<MetricsRegistry> reg_;
  std::unique_ptr<TimeseriesSampler> sampler_;
  std::unique_ptr<health::HealthMonitor> monitor_;
};

}  // namespace ordma::obs::ts
