// Hierarchical metrics registry.
//
// Components register counters, pull-gauges and latency histograms under
// '/'-separated paths ("server/nic/tpt_miss", "client0/cache/hits"); a
// snapshot nests the paths into a JSON object tree. Entries are owned by
// the registry and stable for its lifetime (node-based map), so components
// can hold references. Gauges are sampled at snapshot time via a callback,
// which lets existing component counters (cache hit counts, resource busy
// time, ...) be exported without touching their owners' hot paths.
//
// Like tracing (obs/trace.h), a registry is installed per thread and absent
// by default; helpers no-op on a null registry.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/tls_ctx.h"

namespace ordma::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& path);
  LatencyHistogram& histogram(const std::string& path);
  // Register (or replace) a gauge sampled at snapshot time.
  void gauge(const std::string& path, std::function<double()> fn);

  std::size_t size() const { return entries_.size(); }

  // Snapshot as nested JSON. Counters render as integers, gauges as
  // numbers, histograms as {count, mean_us, max_us, buckets:[{le_us,n}]}.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  struct Entry {
    std::unique_ptr<Counter> c;
    std::unique_ptr<LatencyHistogram> h;
    std::function<double()> g;
  };
  // std::map: deterministic order and stable addresses.
  std::map<std::string, Entry> entries_;
};

// Thread-local (net::packet.h Pool precedent; storage in the consolidated
// common/tls_ctx.h context): each parallel-runner worker installs its own
// registry, so concurrent simulations never mix metrics.
inline MetricsRegistry* registry() { return tls().registry; }

// Install `r` as the calling thread's registry (nullptr disables). Caller
// keeps ownership; a registry uninstalls itself on destruction if still
// installed on the destroying thread.
void install(MetricsRegistry* r);

}  // namespace ordma::obs
