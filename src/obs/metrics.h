// Hierarchical metrics registry.
//
// Components register counters, pull-gauges and latency histograms under
// '/'-separated paths ("server/nic/tpt_miss", "client0/cache/hits"); a
// snapshot nests the paths into a JSON object tree. Entries are owned by
// the registry and stable for its lifetime (node-based map), so components
// can hold references. Gauges are sampled at snapshot time via a callback,
// which lets existing component counters (cache hit counts, resource busy
// time, ...) be exported without touching their owners' hot paths.
//
// Like tracing (obs/trace.h), a registry is installed per thread and absent
// by default; helpers no-op on a null registry.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/tls_ctx.h"

namespace ordma::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // What an entry is, from a windowed consumer's point of view: counters
  // and cumulative gauges are monotone totals (difference them per window
  // for a rate); plain gauges are instantaneous levels (sample the point
  // value); histograms difference per bucket.
  enum class Kind { counter, gauge, cumulative_gauge, histogram };

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& path);
  LatencyHistogram& histogram(const std::string& path);
  // Register a *view* of a histogram owned elsewhere (a component's op
  // stats): snapshots read through the pointer, which must outlive the
  // registry. Same snapshot/delta semantics as an owned histogram.
  void histogram_view(const std::string& path, const LatencyHistogram* h);
  // Register (or replace) a gauge sampled at snapshot time. A *cumulative*
  // gauge exposes a monotonically nondecreasing total (resource busy time,
  // hit counts exported from component-owned counters); delta consumers
  // treat it like a counter, where a plain gauge (queue depth, occupancy)
  // is reported as a point sample.
  void gauge(const std::string& path, std::function<double()> fn,
             bool cumulative = false);

  std::size_t size() const { return entries_.size(); }

  // --- windowed deltas (obs/timeseries.h) ------------------------------
  // One per-entry row produced by delta_snapshot().
  struct Delta {
    const std::string* path;  // stable for the registry's lifetime
    Kind kind;
    // counter/cumulative_gauge: change since the cursor's last snapshot;
    // gauge: current point value; histogram: delta event count.
    double value = 0;
    // Histogram only: per-window change of the cumulative totals.
    double h_sum_us = 0;
    std::uint64_t h_buckets[LatencyHistogram::bucket_count()] = {};
  };

  // Per-consumer baseline for delta_snapshot(). One cursor per sampler;
  // snapshots never mutate the registry, so any number of cursors can
  // window the same registry independently.
  struct DeltaCursor {
    struct Base {
      double value = 0;
      double h_sum_us = 0;
      std::uint64_t h_buckets[LatencyHistogram::bucket_count()] = {};
    };
    std::map<std::string, Base> base;
  };

  // Append one Delta per entry to `out` (cleared first), differencing
  // against — then advancing — `cursor`. An entry added since the cursor's
  // previous snapshot differences against an implicit zero baseline, i.e.
  // its full current total becomes its first delta, so per-window sums
  // always partition run totals exactly however late an entry appears.
  // Entry order is deterministic (path-sorted). Once the cursor has seen
  // every entry and `out` has grown to registry size, calls allocate
  // nothing.
  void delta_snapshot(DeltaCursor& cursor, std::vector<Delta>& out) const;

  // Snapshot as nested JSON. Counters render as integers, gauges as
  // numbers, histograms as {count, mean_us, max_us, buckets:[{le_us,n}]}.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  struct Entry {
    std::unique_ptr<Counter> c;
    std::unique_ptr<LatencyHistogram> h;
    const LatencyHistogram* hv = nullptr;  // non-owned view
    std::function<double()> g;
    bool g_cumulative = false;
    const LatencyHistogram* hist() const { return h ? h.get() : hv; }
  };
  // std::map: deterministic order and stable addresses.
  std::map<std::string, Entry> entries_;
};

// Thread-local (net::packet.h Pool precedent; storage in the consolidated
// common/tls_ctx.h context): each parallel-runner worker installs its own
// registry, so concurrent simulations never mix metrics.
inline MetricsRegistry* registry() { return tls().registry; }

// Install `r` as the calling thread's registry (nullptr disables). Caller
// keeps ownership; a registry uninstalls itself on destruction if still
// installed on the destroying thread.
void install(MetricsRegistry* r);

// ---------------------------------------------------------------------------
// Session-level metrics sink
// ---------------------------------------------------------------------------
// Collects one serialized metrics document per finished run (sweep cell)
// under a run label, and writes them all as one
//   {"schema":"ordma.metrics.v1","runs":{<label>:<snapshot>,...}}
// object at session end. Unlike the per-thread registry install, the sink
// is *process-global* and add() is thread-safe, so parallel sweep workers
// each snapshot their own run's registry and merge here — `--metrics` no
// longer forces a serial sweep. Output order is label-sorted, hence
// deterministic at any worker count.
class MetricsSink {
 public:
  // Thread-safe. `doc` is one JSON value (a registry write_json snapshot);
  // a duplicate label gets a "#<n>" suffix so no run is silently lost.
  void add(const std::string& label, std::string doc);
  std::size_t runs() const;

  void write(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> docs_;
};

// Process-global sink installed by obs/cli.h under --metrics (nullptr when
// absent). Reads are racy-free: the pointer is set once before workers
// start and cleared after they join.
MetricsSink* metrics_sink();
void install_metrics_sink(MetricsSink* s);

}  // namespace ordma::obs
