// Online SLO evaluation with multi-window burn-rate alerting.
//
// Every obs surface so far explains a run *postmortem*; nothing watches a
// run while it happens. A HealthMonitor evaluates declarative SLOs online
// over the same MetricsRegistry::delta_snapshot windows the timeseries
// sampler uses: at each window boundary it snapshots its own DeltaCursor
// (cursors are independent — the timeseries sampler's windows are
// untouched), judges each SLO instance's window as good or bad, and feeds
// a fast and a slow trailing window of badness into the classic burn-rate
// rule: an alert *trips* when both windows burn error budget faster than
// the threshold, and clears when the fast window recovers. Trips and
// clears land in a flight-recorder ring ("health") and in the
// `ordma.health.v1` JSON document; obs/timeseries.h folds the trip ranges
// into its run-phase report so a "degraded" phase names the violated SLO.
//
// SLO specs are declarative and *suffix-matched*: "io/latency_us" matches
// every component exporting that series (client0, client1, ...), so one
// spec instantiates per component at runtime — add a client and it is
// watched, no config change. p99-latency thresholds auto-calibrate by
// default (multiplier x the median of the first calibration windows), so
// the same spec works across a 4 KB NFS cell and a 512 KB DAFS cell while
// still tripping when a fault-injected run degrades.
//
// Observer contract (same as trace/flight/timeseries): evaluation draws no
// random numbers, schedules nothing, and reads only registry snapshots —
// a run with --health on is bit-identical to the same run without it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace ordma::sim {
class Engine;
}

namespace ordma::obs::health {

struct SloSpec {
  enum class Kind {
    p99_latency,  // per-window nearest-rank p99 of a latency histogram
    ratio,        // per-window bad-event count over total-event count
  };

  std::string name;  // e.g. "io_p99"
  Kind kind = Kind::p99_latency;
  // Series path suffix this SLO instantiates over: the histogram series
  // for p99_latency, the bad-event series for ratio. One instance per
  // matching component ("client0/io/latency_us" -> component "client0").
  std::string series_suffix;
  // ratio only: the denominator series suffix on the same component.
  std::string total_suffix;
  // p99_latency: threshold in us; 0 auto-calibrates to auto_multiplier x
  // the median window-p99 of the first calib_windows non-empty windows.
  // ratio: bad fraction threshold.
  double threshold = 0;
  double auto_multiplier = 4.0;
  std::size_t calib_windows = 5;
  // Burn-rate alerting: a window is "bad" when it violates the threshold;
  // budget is the tolerated bad-window fraction; burn = bad fraction /
  // budget over the trailing window. Trip when both the fast and the slow
  // burn reach burn_threshold; clear when the fast burn drops below it.
  double budget = 0.1;
  double burn_threshold = 1.0;
  std::size_t fast_windows = 3;
  std::size_t slow_windows = 12;
};

// The stock fleet SLOs: per-component op p99 latency (auto-calibrated),
// op error rate, and ORDMA exception rate.
std::vector<SloSpec> default_slos();

// One tripped alert's active range, in window indices.
struct Trip {
  std::string slo;
  std::string component;
  std::size_t begin = 0;  // first tripped window (inclusive)
  std::size_t end = 0;    // first recovered window (exclusive)
  double peak_burn = 0;   // max fast burn while active
};

class HealthMonitor {
 public:
  explicit HealthMonitor(MetricsRegistry& reg,
                         std::vector<SloSpec> slos = default_slos());
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Standalone driving: arm the engine's periodic sampling hook. Only for
  // runs without a TimeseriesSampler (the engine has one hook); when both
  // are active the monitor chains off the sampler's window observer
  // instead (obs/timeseries.h RunScope does this wiring).
  void arm(sim::Engine& eng, Duration interval);

  // Evaluate the window ending now. `t_ns` stamps flight-ring records.
  void sample_window(std::int64_t t_ns);
  // Close open trips and disarm; idempotent.
  void finish();

  std::size_t windows() const { return windows_; }
  const std::vector<Trip>& trips() const { return trips_; }
  bool healthy() const { return trips_.empty(); }

  // One `ordma.health.v1` document for this run.
  void write_json(std::ostream& os, const std::string& run);

 private:
  struct Instance {
    std::size_t spec = 0;  // index into slos_
    std::string component;
    std::string series;  // full matched path
    std::string total;   // ratio only
    double threshold = 0;
    bool calibrated = false;
    std::vector<double> calib;
    std::vector<std::uint8_t> bad;  // trailing badness ring
    std::size_t bad_head = 0;       // ring cursor once full
    std::size_t evaluated = 0;
    std::uint64_t bad_total = 0;
    double burn_fast = 0, burn_slow = 0;
    bool tripped = false;
    std::size_t open_trip = 0;  // index into trips_ while tripped
  };

  static void hook(void* self);
  Instance* instance_for(std::size_t spec, const std::string& series);
  void evaluate(Instance& inst, double value, std::int64_t t_ns);
  double trailing_burn(const Instance& inst, std::size_t n) const;

  MetricsRegistry& reg_;
  std::vector<SloSpec> slos_;
  MetricsRegistry::DeltaCursor cursor_;
  std::vector<MetricsRegistry::Delta> scratch_;
  std::vector<Instance> instances_;
  std::vector<Trip> trips_;
  std::size_t windows_ = 0;
  bool finished_ = false;
  sim::Engine* eng_ = nullptr;  // set iff armed standalone
  flight::Ring flight_{"health"};
};

// ---------------------------------------------------------------------------
// Session sink
// ---------------------------------------------------------------------------
// Process-global collector for per-run health documents, written as a JSON
// array at session end (obs/cli.h --health). add() is thread-safe and the
// output is label-sorted, so parallel sweep workers merge deterministically.
class HealthSink {
 public:
  explicit HealthSink(Duration interval = msec(1),
                      std::vector<SloSpec> slos = default_slos())
      : interval_(interval), slos_(std::move(slos)) {}

  Duration interval() const { return interval_; }
  const std::vector<SloSpec>& slos() const { return slos_; }

  void add(const std::string& label, std::string doc);
  std::size_t runs() const;
  // True iff any collected run recorded at least one trip.
  bool any_trips() const;
  void note_trips(std::size_t n);

  void write(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  Duration interval_;
  std::vector<SloSpec> slos_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> docs_;
  std::size_t trips_ = 0;
};

HealthSink* health_sink();
void install_health_sink(HealthSink* s);

}  // namespace ordma::obs::health
