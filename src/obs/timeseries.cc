#include "obs/timeseries.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "common/assert.h"
#include "obs/health.h"
#include "sim/engine.h"

namespace ordma::obs::ts {

// ---------------------------------------------------------------------------
// Phase summarizer
// ---------------------------------------------------------------------------

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::warmup: return "warmup";
    case Phase::steady: return "steady";
    case Phase::saturation: return "saturation";
    case Phase::degraded: return "degraded";
  }
  return "?";
}

std::vector<PhaseSegment> summarize_phases(const std::vector<double>& v,
                                           const PhaseParams& p) {
  std::vector<PhaseSegment> segs;
  const std::size_t n = v.size();
  if (n == 0) return segs;
  const std::size_t confirm = p.confirm == 0 ? 1 : p.confirm;

  // Greedy mean-shift segmentation: grow the current segment's mean over
  // its conforming members; a run of `confirm` consecutive deviating
  // windows closes the segment at the run's first index. A deviating run
  // shorter than `confirm` is absorbed into the segment's *span* but kept
  // out of its mean — a single-window blip neither splits a phase nor
  // drags the mean enough to make the phase's own windows look deviant.
  std::size_t start = 0;
  double sum = 0;
  std::size_t count = 0;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  auto close = [&](std::size_t end) {
    segs.push_back({Phase::steady, start, end,
                    count ? sum / static_cast<double>(count) : 0.0});
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = count ? sum / static_cast<double>(count) : v[i];
    const double scale = std::max(std::abs(mean), p.floor);
    const bool deviates =
        count > 0 && std::abs(v[i] - mean) > p.shift * scale;
    if (deviates) {
      if (run_len == 0) run_start = i;
      if (++run_len >= confirm) {
        close(run_start);
        start = run_start;
        sum = 0;
        count = 0;
        for (std::size_t j = run_start; j <= i; ++j) {
          sum += v[j];
          ++count;
        }
        run_len = 0;
      }
    } else {
      run_len = 0;  // short blip: spanned by the segment, not in its mean
      sum += v[i];
      ++count;
    }
  }
  close(n);

  // Labeling. Longest segment is the steady phase (earliest wins ties);
  // everything before it is warmup; later segments are judged against the
  // peak and steady means.
  std::size_t steady = 0;
  double peak = segs[0].mean;
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].end - segs[i].begin >
        segs[steady].end - segs[steady].begin) {
      steady = i;
    }
    peak = std::max(peak, segs[i].mean);
  }
  const double steady_mean = segs[steady].mean;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i == steady) continue;
    if (i < steady) {
      segs[i].label = Phase::warmup;
    } else if (segs[i].mean >= p.saturation_frac * peak &&
               segs[i].mean > steady_mean) {
      segs[i].label = Phase::saturation;
    } else if (segs[i].mean < p.degraded_frac * steady_mean) {
      segs[i].label = Phase::degraded;
    }  // else: stays steady
  }
  return segs;
}

// ---------------------------------------------------------------------------
// Small emit helpers (same conventions as obs/metrics.cc)
// ---------------------------------------------------------------------------

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void emit_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

bool parse_duration(const std::string& s, Duration* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long n = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || n <= 0) return false;
  const std::string unit(end);
  std::int64_t mult;
  if (unit.empty() || unit == "ns") {
    mult = 1;
  } else if (unit == "us") {
    mult = 1000;
  } else if (unit == "ms") {
    mult = 1000 * 1000;
  } else if (unit == "s") {
    mult = 1000 * 1000 * 1000;
  } else {
    return false;
  }
  *out = Duration{n * mult};
  return true;
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TimeseriesSampler::TimeseriesSampler(sim::Engine& eng, MetricsRegistry& reg,
                                     TimeseriesConfig cfg)
    : eng_(eng), reg_(reg), cfg_(cfg) {
  ORDMA_CHECK(cfg_.interval.ns > 0);
  if (cfg_.max_windows == 0) cfg_.max_windows = 1;
  // Window 0 starts at the grid boundary at or before arming; its delta
  // absorbs everything the run did before the sampler existed (the cursor
  // baselines start at zero), so window sums always equal run totals.
  base_ns_ = (eng.now().ns / cfg_.interval.ns) * cfg_.interval.ns;
  scratch_.reserve(64);
  eng_.set_sampling_hook(cfg_.interval, this, &TimeseriesSampler::hook);
}

TimeseriesSampler::~TimeseriesSampler() { finish(); }

void TimeseriesSampler::hook(void* self) {
  static_cast<TimeseriesSampler*>(self)->sample_window();
}

void TimeseriesSampler::sample_window() {
  reg_.delta_snapshot(cursor_, scratch_);
  const std::size_t w = windows_;
  const std::size_t cap = cfg_.max_windows;
  for (const MetricsRegistry::Delta& d : scratch_) {
    auto it = cols_.find(*d.path);
    if (it == cols_.end()) {
      it = cols_.emplace(*d.path, Column{}).first;
      Column& fresh = it->second;
      fresh.kind = d.kind;
      fresh.first = w;
      fresh.v.reserve(cap);
      if (d.kind == MetricsRegistry::Kind::histogram) {
        fresh.h_sum_us.reserve(cap);
        fresh.h_p50_us.reserve(cap);
        fresh.h_p99_us.reserve(cap);
      }
    }
    Column& c = it->second;
    c.store(w, cap, d.value, c.v);
    if (c.kind == MetricsRegistry::Kind::histogram) {
      c.store(w, cap, d.h_sum_us, c.h_sum_us);
      c.store(w, cap,
              histogram_quantile_from_counts(
                  d.h_buckets, LatencyHistogram::bucket_count(), 0.5),
              c.h_p50_us);
      c.store(w, cap,
              histogram_quantile_from_counts(
                  d.h_buckets, LatencyHistogram::bucket_count(), 0.99),
              c.h_p99_us);
    }
  }
  ++windows_;
  if (obs_fn_ != nullptr) obs_fn_(obs_ctx_, eng_.now().ns);
}

void TimeseriesSampler::finish() {
  if (finished_) return;
  finished_ = true;
  end_ns_ = eng_.now().ns;
  // Trailing partial window [base + windows*interval, now]. Taken even
  // when empty so the window set partitions the run unconditionally.
  sample_window();
  eng_.clear_sampling_hook();

  // Pick the key series for the phase report.
  auto usable = [](const Column& c) {
    return c.kind == MetricsRegistry::Kind::counter ||
           c.kind == MetricsRegistry::Kind::cumulative_gauge;
  };
  const Column* key = nullptr;
  if (!cfg_.phase_series.empty()) {
    auto it = cols_.find(cfg_.phase_series);
    if (it != cols_.end()) {
      key = &it->second;
      phase_key_ = it->first;
    }
  }
  if (!key) {
    auto it = cols_.find("server/cpu/busy_us");
    if (it != cols_.end() && usable(it->second)) {
      key = &it->second;
      phase_key_ = it->first;
    }
  }
  if (!key) {
    for (const auto& [name, c] : cols_) {
      if (usable(c)) {
        key = &c;
        phase_key_ = name;
        break;
      }
    }
  }
  if (!key && !cols_.empty()) {
    key = &cols_.begin()->second;
    phase_key_ = cols_.begin()->first;
  }
  if (key) {
    const std::size_t fk = first_kept();
    std::vector<double> vals;
    vals.reserve(windows_ - fk);
    for (std::size_t w = fk; w < windows_; ++w) {
      vals.push_back(col_value(*key, key->v, w));
    }
    phases_ = summarize_phases(vals, cfg_.phase_params);
    for (PhaseSegment& s : phases_) {
      s.begin += fk;
      s.end += fk;
    }
  }
}

void TimeseriesSampler::annotate_slo(const std::vector<SloMark>& marks) {
  for (PhaseSegment& s : phases_) {
    for (const SloMark& m : marks) {
      const std::size_t m_end = m.end == 0 ? windows_ : m.end;
      if (s.begin < m_end && m.begin < s.end) {
        s.label = Phase::degraded;
        s.slo = m.slo;
        break;
      }
    }
  }
}

double TimeseriesSampler::col_value(const Column& c,
                                    const std::vector<double>& ring,
                                    std::size_t w) const {
  if (w < c.first || ring.empty()) return 0.0;
  const std::size_t l = w - c.first;
  const std::size_t idx =
      ring.size() == cfg_.max_windows ? l % cfg_.max_windows : l;
  if (idx >= ring.size()) return 0.0;
  return ring[idx];
}

double TimeseriesSampler::value(const std::string& path,
                                std::size_t w) const {
  auto it = cols_.find(path);
  if (it == cols_.end() || w >= windows_) return 0.0;
  return col_value(it->second, it->second.v, w);
}

void TimeseriesSampler::write_json(std::ostream& os, const std::string& run) {
  finish();
  const std::size_t fk = first_kept();
  const std::int64_t iv = cfg_.interval.ns;
  os << R"({"schema":"ordma.timeseries.v1","run":")";
  json_escaped(os, run);
  os << R"(","interval_ns":)" << iv;
  os << R"(,"start_ns":)" << base_ns_ + static_cast<std::int64_t>(fk) * iv;
  os << R"(,"end_ns":)" << end_ns_;
  os << R"(,"windows":)" << windows_ - fk;
  os << R"(,"dropped_windows":)" << fk;
  os << R"(,"t_ns":[)";
  for (std::size_t w = fk; w < windows_; ++w) {
    if (w != fk) os << ",";
    os << base_ns_ + static_cast<std::int64_t>(w) * iv;
  }
  os << R"(],"series":{)";
  bool first_col = true;
  auto emit_ring = [&](const Column& c, const std::vector<double>& ring) {
    os << "[";
    for (std::size_t w = fk; w < windows_; ++w) {
      if (w != fk) os << ",";
      emit_number(os, col_value(c, ring, w));
    }
    os << "]";
  };
  for (const auto& [name, c] : cols_) {
    if (!first_col) os << ",";
    first_col = false;
    os << "\"";
    json_escaped(os, name);
    os << "\":{";
    switch (c.kind) {
      case MetricsRegistry::Kind::counter:
      case MetricsRegistry::Kind::cumulative_gauge:
        os << R"("kind":"delta","v":)";
        emit_ring(c, c.v);
        break;
      case MetricsRegistry::Kind::gauge:
        os << R"("kind":"sample","v":)";
        emit_ring(c, c.v);
        break;
      case MetricsRegistry::Kind::histogram:
        os << R"("kind":"hist","count":)";
        emit_ring(c, c.v);
        os << R"(,"sum_us":)";
        emit_ring(c, c.h_sum_us);
        os << R"(,"p50_us":)";
        emit_ring(c, c.h_p50_us);
        os << R"(,"p99_us":)";
        emit_ring(c, c.h_p99_us);
        break;
    }
    os << "}";
  }
  os << R"(},"phases":{"series":")";
  json_escaped(os, phase_key_);
  os << R"(","segments":[)";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const PhaseSegment& s = phases_[i];
    if (i) os << ",";
    os << R"({"label":")" << phase_name(s.label) << R"(","begin":)"
       << s.begin - fk << R"(,"end":)" << s.end - fk;
    const std::int64_t b_ns =
        base_ns_ + static_cast<std::int64_t>(s.begin) * iv;
    const std::int64_t e_ns = std::min(
        base_ns_ + static_cast<std::int64_t>(s.end) * iv, end_ns_);
    os << R"(,"begin_ns":)" << b_ns << R"(,"end_ns":)" << e_ns
       << R"(,"mean":)";
    emit_number(os, s.mean);
    if (!s.slo.empty()) {
      os << R"(,"slo":")";
      json_escaped(os, s.slo);
      os << "\"";
    }
    os << "}";
  }
  os << "]}}";
}

void TimeseriesSampler::write_csv(std::ostream& os, const std::string& run) {
  finish();
  const std::size_t fk = first_kept();
  const std::int64_t iv = cfg_.interval.ns;
  os << "# run " << run << " interval_ns " << iv << " dropped_windows "
     << fk << "\n";
  for (const PhaseSegment& s : phases_) {
    os << "# phase " << phase_name(s.label) << " " << s.begin - fk << " "
       << s.end - fk << " mean " << s.mean;
    if (!s.slo.empty()) os << " slo " << s.slo;
    os << "\n";
  }
  os << "t_ns";
  for (const auto& [name, c] : cols_) {
    if (c.kind == MetricsRegistry::Kind::histogram) {
      os << "," << name << ".count"
         << "," << name << ".sum_us"
         << "," << name << ".p50_us"
         << "," << name << ".p99_us";
    } else {
      os << "," << name;
    }
  }
  os << "\n";
  char buf[64];
  auto cell = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << "," << buf;
  };
  for (std::size_t w = fk; w < windows_; ++w) {
    os << base_ns_ + static_cast<std::int64_t>(w) * iv;
    for (const auto& [name, c] : cols_) {
      cell(col_value(c, c.v, w));
      if (c.kind == MetricsRegistry::Kind::histogram) {
        cell(col_value(c, c.h_sum_us, w));
        cell(col_value(c, c.h_p50_us, w));
        cell(col_value(c, c.h_p99_us, w));
      }
    }
    os << "\n";
  }
}

// ---------------------------------------------------------------------------
// Sink + RunScope
// ---------------------------------------------------------------------------

namespace {
TimeseriesSink* g_ts_sink = nullptr;
}  // namespace

TimeseriesSink* sink() {
  TimeseriesSink* s = tls().ts_sink;
  return s != nullptr ? s : g_ts_sink;
}

void install(TimeseriesSink* s) { tls().ts_sink = s; }
void install_global(TimeseriesSink* s) { g_ts_sink = s; }

TimeseriesSink::~TimeseriesSink() {
  if (tls().ts_sink == this) install(nullptr);
  if (g_ts_sink == this) g_ts_sink = nullptr;
}

void TimeseriesSink::add(const std::string& label, std::string doc) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = label;
  for (int n = 2; docs_.count(key) != 0; ++n) {
    key = label + "#" + std::to_string(n);
  }
  docs_.emplace(std::move(key), std::move(doc));
}

std::size_t TimeseriesSink::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

std::string TimeseriesSink::doc(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.begin();
  std::advance(it, i);
  return it->second;
}

void TimeseriesSink::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (format_ == Format::csv) {
    for (const auto& [label, d] : docs_) os << d;
    return;
  }
  os << "[";
  bool first = true;
  for (const auto& [label, d] : docs_) {
    os << (first ? "\n" : ",\n") << d;
    first = false;
  }
  os << (docs_.empty() ? "]" : "\n]") << "\n";
}

bool TimeseriesSink::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return f.good();
}

RunScope::RunScope(sim::Engine& eng, std::string label)
    : label_(std::move(label)),
      sink_(sink()),
      msink_(metrics_sink()),
      hsink_(health::health_sink()) {
  if (sink_ == nullptr && msink_ == nullptr && hsink_ == nullptr) return;
  reg_ = std::make_unique<MetricsRegistry>();
  if (sink_ != nullptr) {
    sampler_ =
        std::make_unique<TimeseriesSampler>(eng, *reg_, sink_->config());
  }
  if (hsink_ != nullptr) {
    monitor_ =
        std::make_unique<health::HealthMonitor>(*reg_, hsink_->slos());
    if (sampler_) {
      // One engine hook: the monitor rides the sampler's window grid.
      sampler_->set_window_observer(
          monitor_.get(), [](void* m, std::int64_t t_ns) {
            static_cast<health::HealthMonitor*>(m)->sample_window(t_ns);
          });
    } else {
      monitor_->arm(eng, hsink_->interval());
    }
  }
}

RunScope::~RunScope() {
  if (!reg_) return;
  // The trace sampler (if any) decided keeps at op completion already;
  // nothing here depends on trace state, but the monitor must close its
  // trips before the phase report is annotated and serialized.
  if (sampler_) sampler_->finish();
  if (monitor_) {
    monitor_->finish();
    if (sampler_ && !monitor_->trips().empty()) {
      std::vector<TimeseriesSampler::SloMark> marks;
      marks.reserve(monitor_->trips().size());
      for (const health::Trip& t : monitor_->trips()) {
        marks.push_back({t.slo, t.begin, t.end});
      }
      sampler_->annotate_slo(marks);
    }
    std::ostringstream hos;
    monitor_->write_json(hos, label_);
    hsink_->add(label_, std::move(hos).str());
    hsink_->note_trips(monitor_->trips().size());
  }
  if (sampler_) {
    std::ostringstream os;
    if (sink_->format() == TimeseriesSink::Format::csv) {
      sampler_->write_csv(os, label_);
    } else {
      sampler_->write_json(os, label_);
    }
    sink_->add(label_, std::move(os).str());
  }
  if (msink_ != nullptr) {
    std::ostringstream os;
    reg_->write_json(os);
    msink_->add(label_, std::move(os).str());
  }
  monitor_.reset();
  sampler_.reset();  // gauge closures die with reg_ before the components
  reg_.reset();
}

}  // namespace ordma::obs::ts
