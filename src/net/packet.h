// Wire units for the simulated fabric.
//
// Payload bytes are held in shared immutable buffers; fragments are
// zero-copy views (offset/length) into the message buffer, exactly like a
// NIC DMA-ing out of one host buffer. Header bytes are modelled as wire
// overhead (they cost bandwidth) without being materialised — protocol
// *contents* that matter (RPC headers) are real marshalled bytes inside the
// payload.
//
// Buffer backing store is pooled: each Buffer points at a manually
// refcounted Rep (the simulation is single-threaded, so the count is a
// plain integer — no shared_ptr atomics), and Reps whose last reference
// dies return to a free list with their byte capacity intact. Hot paths
// allocate with Buffer::alloc(n), fill through mutable_view(), and reach
// steady state with zero heap allocations per packet.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace ordma::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

// Immutable-once-shared byte buffer with cheap sub-views.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() { unref(); }

  Buffer(const Buffer& o) : rep_(o.rep_), off_(o.off_), len_(o.len_) {
    if (rep_) ++rep_->refs;
  }
  Buffer& operator=(const Buffer& o) {
    if (this != &o) {
      if (o.rep_) ++o.rep_->refs;
      unref();
      rep_ = o.rep_;
      off_ = o.off_;
      len_ = o.len_;
    }
    return *this;
  }
  Buffer(Buffer&& o) noexcept
      : rep_(std::exchange(o.rep_, nullptr)),
        off_(std::exchange(o.off_, 0)),
        len_(std::exchange(o.len_, 0)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      unref();
      rep_ = std::exchange(o.rep_, nullptr);
      off_ = std::exchange(o.off_, 0);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }

  // Fresh buffer of `len` zeroed bytes drawn from the pool; fill it through
  // mutable_view() before sharing. The allocation-free hot path.
  static Buffer alloc(std::size_t len) {
    Buffer b;
    b.rep_ = Pool::instance().acquire(len);
    b.len_ = len;
    return b;
  }

  static Buffer copy_of(std::span<const std::byte> data) {
    Buffer b = alloc(data.size());
    if (!data.empty()) {
      std::memcpy(b.rep_->bytes.data(), data.data(), data.size());
    }
    return b;
  }

  static Buffer take(std::vector<std::byte> data) {
    Buffer b;
    b.len_ = data.size();
    b.rep_ = Pool::instance().acquire_empty();
    b.rep_->bytes = std::move(data);
    return b;
  }

  Buffer slice(std::size_t offset, std::size_t len) const {
    ORDMA_CHECK(offset <= len_ && len <= len_ - offset);
    Buffer b = *this;
    b.off_ += offset;
    b.len_ = len;
    return b;
  }

  std::span<const std::byte> view() const {
    if (!rep_) return {};
    return std::span<const std::byte>(rep_->bytes.data() + off_, len_);
  }

  // Writable access; only valid while this Buffer is the sole reference
  // (i.e. before it has been sliced, copied or sent anywhere).
  std::span<std::byte> mutable_view() {
    if (!rep_) return {};
    ORDMA_CHECK_MSG(rep_->refs == 1, "Buffer::mutable_view on shared buffer");
    return std::span<std::byte>(rep_->bytes.data() + off_, len_);
  }

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

 private:
  struct Rep {
    std::vector<std::byte> bytes;
    std::uint32_t refs = 0;
    Rep* next_free = nullptr;
  };

  // Free list of Reps with their vector capacity retained; single-threaded
  // by design (thread_local guards against accidental cross-thread use).
  class Pool {
   public:
    static Pool& instance() {
      static thread_local Pool p;
      return p;
    }
    ~Pool() {
      while (free_) {
        Rep* r = free_;
        free_ = r->next_free;
        delete r;
      }
    }

    Rep* acquire(std::size_t len) {
      Rep* r = acquire_empty();
      // resize() zero-fills; capacity from the Rep's previous life is
      // reused, so steady state costs a memset but no allocation.
      r->bytes.resize(len);
      return r;
    }
    Rep* acquire_empty() {
      Rep* r;
      if (free_) {
        r = free_;
        free_ = r->next_free;
        --free_count_;
        r->next_free = nullptr;
        r->bytes.clear();
      } else {
        r = new Rep;
      }
      r->refs = 1;
      return r;
    }
    void release(Rep* r) {
      if (free_count_ >= kMaxFree) {
        delete r;
        return;
      }
      r->next_free = free_;
      free_ = r;
      ++free_count_;
    }

   private:
    static constexpr std::size_t kMaxFree = 4096;
    Rep* free_ = nullptr;
    std::size_t free_count_ = 0;
  };

  void unref() {
    if (rep_ && --rep_->refs == 0) Pool::instance().release(rep_);
  }

  Rep* rep_ = nullptr;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

// Link-level protocol carried by a packet; the receiving NIC firmware
// demuxes on this.
enum class Proto : std::uint8_t {
  gm = 0,        // GM messaging (sends, get/put requests & replies)
  ethernet = 1,  // Ethernet emulation (UDP/IP path)
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Proto proto = Proto::gm;

  // Wire overhead bytes in front of the payload (link + transport headers).
  Bytes header_bytes = 0;
  Buffer payload;

  // Fragmentation metadata (set by the sending NIC).
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  Bytes msg_total = 0;  // payload bytes of the whole message

  // Opaque per-message tag the sender's firmware attaches; receivers use it
  // for demux above the link layer (e.g. GM opcode).
  std::uint32_t tag = 0;

  // Trace context (obs/trace.h): the file-op id this packet works for.
  // Simulation metadata like `ctrl` — carried regardless of tracing state,
  // never counted against wire size, zero for untraced traffic.
  std::uint64_t trace_op = 0;

  // Link-protocol control words (GmCtrl / EthCtrl from nic/wire.h). Their
  // wire size is accounted in header_bytes; carrying them as a typed value
  // instead of re-marshalling keeps the firmware model readable. The NAS
  // protocols above RPC marshal real bytes.
  std::any ctrl;

  Bytes wire_size() const { return header_bytes + payload.size(); }
};

}  // namespace ordma::net
