// Wire units for the simulated fabric.
//
// Payload bytes are held in shared immutable buffers; fragments are
// zero-copy views (offset/length) into the message buffer, exactly like a
// NIC DMA-ing out of one host buffer. Header bytes are modelled as wire
// overhead (they cost bandwidth) without being materialised — protocol
// *contents* that matter (RPC headers) are real marshalled bytes inside the
// payload.
//
// Buffer backing store is pooled: each Buffer points at a manually
// refcounted Rep (the simulation is single-threaded, so the count is a
// plain integer — no shared_ptr atomics), and Reps whose last reference
// dies return to a free list with their byte capacity intact. Hot paths
// allocate with Buffer::alloc(n), fill through mutable_view(), and reach
// steady state with zero heap allocations per packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace ordma::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

// Immutable-once-shared byte buffer with cheap sub-views.
class Buffer {
  friend class BufferBuilder;

 public:
  Buffer() = default;
  ~Buffer() { unref(); }

  Buffer(const Buffer& o) : rep_(o.rep_), off_(o.off_), len_(o.len_) {
    if (rep_) ++rep_->refs;
  }
  Buffer& operator=(const Buffer& o) {
    if (this != &o) {
      if (o.rep_) ++o.rep_->refs;
      unref();
      rep_ = o.rep_;
      off_ = o.off_;
      len_ = o.len_;
    }
    return *this;
  }
  Buffer(Buffer&& o) noexcept
      : rep_(std::exchange(o.rep_, nullptr)),
        off_(std::exchange(o.off_, 0)),
        len_(std::exchange(o.len_, 0)) {}
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      unref();
      rep_ = std::exchange(o.rep_, nullptr);
      off_ = std::exchange(o.off_, 0);
      len_ = std::exchange(o.len_, 0);
    }
    return *this;
  }

  // Fresh buffer of `len` zeroed bytes drawn from the pool; fill it through
  // mutable_view() before sharing. The allocation-free hot path.
  static Buffer alloc(std::size_t len) {
    Buffer b;
    b.rep_ = Pool::instance().acquire(len);
    b.len_ = len;
    return b;
  }

  static Buffer copy_of(std::span<const std::byte> data) {
    Buffer b = alloc(data.size());
    if (!data.empty()) {
      std::memcpy(b.rep_->bytes.data(), data.data(), data.size());
    }
    return b;
  }

  static Buffer take(std::vector<std::byte> data) {
    Buffer b;
    b.len_ = data.size();
    b.rep_ = Pool::instance().acquire_empty();
    b.rep_->bytes = std::move(data);
    return b;
  }

  Buffer slice(std::size_t offset, std::size_t len) const {
    ORDMA_CHECK(offset <= len_ && len <= len_ - offset);
    Buffer b = *this;
    b.off_ += offset;
    b.len_ = len;
    return b;
  }

  std::span<const std::byte> view() const {
    if (!rep_) return {};
    return std::span<const std::byte>(rep_->bytes.data() + off_, len_);
  }

  // Writable access; only valid while this Buffer is the sole reference
  // (i.e. before it has been sliced, copied or sent anywhere).
  std::span<std::byte> mutable_view() {
    if (!rep_) return {};
    ORDMA_CHECK_MSG(rep_->refs == 1, "Buffer::mutable_view on shared buffer");
    return std::span<std::byte>(rep_->bytes.data() + off_, len_);
  }

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

 private:
  struct Rep {
    std::vector<std::byte> bytes;
    std::uint32_t refs = 0;
    Rep* next_free = nullptr;
  };

  // Free list of Reps with their vector capacity retained; single-threaded
  // by design (thread_local guards against accidental cross-thread use).
  // Rep headers are carved from slabs owned by the pool, so steady state
  // never touches the process allocator for them and one worker thread's
  // reps never share an allocation (or a cache line) with another's.
  class Pool {
   public:
    static Pool& instance() {
      static thread_local Pool p;
      return p;
    }

    Rep* acquire(std::size_t len) {
      Rep* r = acquire_empty();
      // resize() zero-fills; capacity from the Rep's previous life is
      // reused, so steady state costs a memset but no allocation.
      r->bytes.resize(len);
      return r;
    }
    Rep* acquire_empty() {
      if (!free_) grow();
      Rep* r = free_;
      free_ = r->next_free;
      --free_count_;
      r->next_free = nullptr;
      r->bytes.clear();
      r->refs = 1;
      return r;
    }
    void release(Rep* r) {
      // Reps live in slabs and are never individually freed; past the cap,
      // drop the byte storage so a burst of huge messages doesn't pin its
      // capacity forever.
      if (free_count_ >= kMaxFree) {
        r->bytes = std::vector<std::byte>();
      }
      r->next_free = free_;
      free_ = r;
      ++free_count_;
    }

   private:
    static constexpr std::size_t kMaxFree = 4096;
    static constexpr std::size_t kSlabReps = 64;

    void grow() {
      slabs_.push_back(std::make_unique<Rep[]>(kSlabReps));
      Rep* slab = slabs_.back().get();
      for (std::size_t i = kSlabReps; i-- > 0;) {
        slab[i].next_free = free_;
        free_ = &slab[i];
      }
      free_count_ += kSlabReps;
    }

    Rep* free_ = nullptr;
    std::size_t free_count_ = 0;
    std::vector<std::unique_ptr<Rep[]>> slabs_;
  };

  void unref() {
    if (rep_ && --rep_->refs == 0) Pool::instance().release(rep_);
  }

  Rep* rep_ = nullptr;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

// Build a Buffer's bytes in place inside a pooled rep. The rep's vector
// keeps the capacity from its previous life, so steady-state message
// encoding (rpc/xdr.h XdrEncoder) allocates nothing, and finish() is
// zero-copy: the built bytes *are* the buffer. The previous encoder path
// (grow a fresh std::vector, move it into a rep with Buffer::take) paid a
// malloc for the vector and a free for the rep's displaced capacity on
// every message.
class BufferBuilder {
 public:
  BufferBuilder() { b_.rep_ = Buffer::Pool::instance().acquire_empty(); }
  BufferBuilder(BufferBuilder&&) noexcept = default;
  BufferBuilder& operator=(BufferBuilder&&) noexcept = default;

  // Append storage. Only valid while the builder still owns its rep (i.e.
  // before finish()/take()).
  std::vector<std::byte>& bytes() { return b_.rep_->bytes; }
  const std::vector<std::byte>& bytes() const { return b_.rep_->bytes; }

  // Stamp the length and hand the buffer over; the builder is empty after.
  Buffer finish() {
    b_.len_ = b_.rep_->bytes.size();
    return std::move(b_);
  }

  // Move the raw bytes out (for callers that splice them into another
  // message); the rep returns to the pool without its capacity.
  std::vector<std::byte> take() {
    std::vector<std::byte> out = std::move(b_.rep_->bytes);
    b_.rep_->bytes.clear();
    b_ = Buffer();
    return out;
  }

 private:
  Buffer b_;
};

// Link-level protocol carried by a packet; the receiving NIC firmware
// demuxes on this.
enum class Proto : std::uint8_t {
  gm = 0,        // GM messaging (sends, get/put requests & replies)
  ethernet = 1,  // Ethernet emulation (UDP/IP path)
};

// Inline, heap-free stand-in for the std::any that used to carry the
// link-protocol control words (nic/wire.h GmCtrl / EthCtrl). std::any
// heap-allocates anything larger than two pointers, which put a
// malloc/free pair on every control-carrying packet — profiling showed
// those allocations among the top costs of a protocol sweep. The control
// structs are small trivially-copyable PODs, so they live inline here; the
// type tag is the address of a per-type marker, checked on every get().
class CtrlAny {
 public:
  // Exactly sizeof(GmCtrl), the larger of the two control structs; the
  // static_assert in operator= catches a control struct outgrowing this.
  // Keeping it tight matters: Packet is captured by value in the fabric
  // delivery lambdas, which live inline in engine timer nodes — every
  // byte here is a byte of per-event cache footprint.
  static constexpr std::size_t kMaxSize = 88;

  CtrlAny() = default;

  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, CtrlAny> &&
             std::is_trivially_copyable_v<std::remove_cvref_t<T>>)
  CtrlAny& operator=(const T& v) {
    using U = std::remove_cvref_t<T>;
    static_assert(sizeof(U) <= kMaxSize);
    static_assert(alignof(U) <= alignof(std::max_align_t));
    std::memcpy(store_, &v, sizeof(U));
    tag_ = tag_of<U>();
    return *this;
  }

  bool has_value() const { return tag_ != nullptr; }
  void reset() { tag_ = nullptr; }

  template <typename T>
  bool holds() const {
    return tag_ == tag_of<std::remove_cvref_t<T>>();
  }

  // By-value read (a memcpy): no lifetime games, and the control structs
  // are register-cheap to copy compared to the malloc they used to cost.
  template <typename T>
  T get() const {
    using U = std::remove_cvref_t<T>;
    ORDMA_CHECK_MSG(tag_ == tag_of<U>(), "CtrlAny: wrong control type");
    U out;
    std::memcpy(&out, store_, sizeof(U));
    return out;
  }

 private:
  template <typename T>
  static const void* tag_of() {
    return &kTag<T>;
  }
  template <typename T>
  static constexpr char kTag = 0;  // unique address per instantiation

  alignas(std::max_align_t) std::byte store_[kMaxSize];
  const void* tag_ = nullptr;
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Proto proto = Proto::gm;

  // Wire overhead bytes in front of the payload (link + transport headers).
  Bytes header_bytes = 0;
  Buffer payload;

  // Fragmentation metadata (set by the sending NIC).
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  Bytes msg_total = 0;  // payload bytes of the whole message

  // Opaque per-message tag the sender's firmware attaches; receivers use it
  // for demux above the link layer (e.g. GM opcode).
  std::uint32_t tag = 0;

  // Trace context (obs/trace.h): the file-op id this packet works for.
  // Simulation metadata like `ctrl` — carried regardless of tracing state,
  // never counted against wire size, zero for untraced traffic.
  std::uint64_t trace_op = 0;

  // Link-protocol control words (GmCtrl / EthCtrl from nic/wire.h). Their
  // wire size is accounted in header_bytes; carrying them as a typed value
  // instead of re-marshalling keeps the firmware model readable. The NAS
  // protocols above RPC marshal real bytes.
  CtrlAny ctrl;

  Bytes wire_size() const { return header_bytes + payload.size(); }
};

}  // namespace ordma::net
