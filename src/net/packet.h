// Wire units for the simulated fabric.
//
// Payload bytes are held in shared immutable buffers; fragments are
// zero-copy views (offset/length) into the message buffer, exactly like a
// NIC DMA-ing out of one host buffer. Header bytes are modelled as wire
// overhead (they cost bandwidth) without being materialised — protocol
// *contents* that matter (RPC headers) are real marshalled bytes inside the
// payload.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace ordma::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffff;

// Immutable shared byte buffer with cheap sub-views.
class Buffer {
 public:
  Buffer() = default;

  static Buffer copy_of(std::span<const std::byte> data) {
    Buffer b;
    b.data_ = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                       data.end());
    b.len_ = b.data_->size();
    return b;
  }
  static Buffer take(std::vector<std::byte> data) {
    Buffer b;
    b.data_ = std::make_shared<std::vector<std::byte>>(std::move(data));
    b.len_ = b.data_->size();
    return b;
  }

  Buffer slice(std::size_t offset, std::size_t len) const {
    ORDMA_CHECK(offset + len <= len_);
    Buffer b = *this;
    b.off_ += offset;
    b.len_ = len;
    return b;
  }

  std::span<const std::byte> view() const {
    if (!data_) return {};
    return std::span<const std::byte>(data_->data() + off_, len_);
  }

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

 private:
  std::shared_ptr<const std::vector<std::byte>> data_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

// Link-level protocol carried by a packet; the receiving NIC firmware
// demuxes on this.
enum class Proto : std::uint8_t {
  gm = 0,        // GM messaging (sends, get/put requests & replies)
  ethernet = 1,  // Ethernet emulation (UDP/IP path)
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Proto proto = Proto::gm;

  // Wire overhead bytes in front of the payload (link + transport headers).
  Bytes header_bytes = 0;
  Buffer payload;

  // Fragmentation metadata (set by the sending NIC).
  std::uint64_t msg_id = 0;
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  Bytes msg_total = 0;  // payload bytes of the whole message

  // Opaque per-message tag the sender's firmware attaches; receivers use it
  // for demux above the link layer (e.g. GM opcode).
  std::uint32_t tag = 0;

  // Link-protocol control words (GmCtrl / EthCtrl from nic/wire.h). Their
  // wire size is accounted in header_bytes; carrying them as a typed value
  // instead of re-marshalling keeps the firmware model readable. The NAS
  // protocols above RPC marshal real bytes.
  std::any ctrl;

  Bytes wire_size() const { return header_bytes + payload.size(); }
};

}  // namespace ordma::net
