// A unidirectional serialising link: packets queue for the wire (bandwidth
// contention is real — two flows into one port share it), each takes
// wire_size/bandwidth to serialise, then arrives after the propagation
// latency. Delivery order is FIFO per link.
#pragma once

#include <functional>
#include <string>

#include "common/units.h"
#include "fault/fault.h"
#include "net/packet.h"
#include "obs/trace.h"
#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace ordma::net {

class Link {
 public:
  using DeliverFn = std::function<void(Packet)>;

  Link(sim::Engine& eng, Bandwidth bw, Duration latency, std::string name)
      : eng_(eng),
        bw_(bw),
        latency_(latency),
        name_(std::move(name)),
        trace_track_("net", name_),
        queue_(eng) {
    eng_.spawn(pump());
  }
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_sink(DeliverFn sink) { sink_ = std::move(sink); }
  // Optional fault-injection hook consulted at the delivery point. Not
  // owned; must outlive the link. Null (the default) means a perfect wire.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  void send(Packet p) {
    bytes_offered_ += p.wire_size();
    queue_.send(std::move(p));
  }

  const std::string& name() const { return name_; }
  Bandwidth bandwidth() const { return bw_; }
  Bytes bytes_offered() const { return bytes_offered_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }
  std::size_t backlog() const { return queue_.pending(); }

 private:
  sim::Task<void> pump() {
    for (;;) {
      Packet p = co_await queue_.recv();
      // Serialise onto the wire (head-of-line for this link)...
      const SimTime ser_begin = eng_.now();
      co_await eng_.delay(bw_.time_for(p.wire_size()));
      bytes_delivered_ += p.wire_size();
      // One wire span per packet covering serialisation + propagation; the
      // recorder lane-splits the track where pipelined packets overlap.
      obs::span(trace_track_, p.trace_op, "wire/tx", ser_begin,
                eng_.now() + latency_);
      // ...then propagate; delivery happens latency later without blocking
      // the next packet's serialisation (pipelining).
      if (sink_) {
        Duration extra{0};
        if (faults_) {
          const fault::NetAction act = faults_->on_packet(p);
          if (act.drop) continue;  // lost on the wire
          extra = act.extra;
          if (act.duplicate) {
            // Deliver a second copy back-to-back (payload Rep is shared).
            eng_.schedule_fn(latency_ + extra, [this, p]() mutable {
              sink_(std::move(p));
            });
          }
        }
        // Copy into the closure; the link does not own packets in flight.
        eng_.schedule_fn(latency_ + extra, [this, p = std::move(p)]() mutable {
          sink_(std::move(p));
        });
      }
    }
  }

  sim::Engine& eng_;
  Bandwidth bw_;
  Duration latency_;
  std::string name_;
  obs::Track trace_track_;
  sim::Channel<Packet> queue_;
  DeliverFn sink_;
  fault::FaultInjector* faults_ = nullptr;
  Bytes bytes_offered_ = 0;
  Bytes bytes_delivered_ = 0;
};

}  // namespace ordma::net
