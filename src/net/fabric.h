// The cluster fabric: a full-duplex crossbar switch like the paper's 2 Gb/s
// Myrinet switch. Every node has an uplink (node→switch) and a downlink
// (switch→node); the switch forwards cut-through with a fixed latency.
// Contention is physical: all traffic to one node serialises on that node's
// downlink, which is what congests the server port in the multi-client
// experiments (Fig. 7).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/units.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/engine.h"

namespace ordma::net {

struct FabricConfig {
  Bandwidth link_bw = Gbps(2);       // paper: 2 Gb/s full-duplex ports
  Duration cable_latency = nsec(200);  // per hop propagation
  Duration switch_latency = nsec(500); // cut-through forwarding latency
  // Optional deterministic fault injection (not owned; must outlive the
  // fabric). Installed on each node's downlink so every frame passes the
  // injector exactly once end-to-end.
  fault::FaultInjector* injector = nullptr;
};

class Fabric {
 public:
  using DeliverFn = std::function<void(Packet)>;

  Fabric(sim::Engine& eng, FabricConfig cfg = {}) : eng_(eng), cfg_(cfg) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Register a node; `sink` receives packets addressed to it.
  NodeId add_node(const std::string& name, DeliverFn sink) {
    const NodeId id = static_cast<NodeId>(ports_.size());
    auto port = std::make_unique<Port>();
    port->up = std::make_unique<Link>(eng_, cfg_.link_bw, cfg_.cable_latency,
                                      name + ".up");
    port->down = std::make_unique<Link>(
        eng_, cfg_.link_bw, cfg_.switch_latency + cfg_.cable_latency,
        name + ".down");
    port->down->set_sink(std::move(sink));
    port->down->set_fault_injector(cfg_.injector);
    // Uplink terminates at the switch, which forwards onto the destination
    // downlink.
    port->up->set_sink([this](Packet p) { forward(std::move(p)); });
    ports_.push_back(std::move(port));
    return id;
  }

  void send(Packet p) {
    ORDMA_CHECK(p.src < ports_.size());
    ORDMA_CHECK(p.dst < ports_.size());
    ports_[p.src]->up->send(std::move(p));
  }

  std::size_t num_nodes() const { return ports_.size(); }
  const Link& downlink(NodeId id) const { return *ports_[id]->down; }
  const Link& uplink(NodeId id) const { return *ports_[id]->up; }

 private:
  struct Port {
    std::unique_ptr<Link> up;
    std::unique_ptr<Link> down;
  };

  void forward(Packet p) {
    ORDMA_CHECK(p.dst < ports_.size());
    ports_[p.dst]->down->send(std::move(p));
  }

  sim::Engine& eng_;
  FabricConfig cfg_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace ordma::net
