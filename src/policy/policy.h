// Adaptive per-op protocol selection (ROADMAP item 4).
//
// The paper's Fig. 7 shows client-initiated ORDMA only wins while the
// client's reference directory hits in the server cache; RFP's analysis
// says the RPC-vs-remote-read crossover moves with request size and server
// load. So no static mechanism choice is right across a run — this engine
// decides *per I/O* which mechanism to issue, from a small cost model over
// the live per-client signal block (obs/signals.h) plus its own
// per-mechanism latency estimators.
//
// Design constraints, in order:
//  * Deterministic. No RNG, no scheduling, no simulated time consumed by a
//    decision: choices are pure functions of (config, observed history), so
//    golden-hash determinism holds at any worker count, and a run with the
//    engine disabled is bit-identical to one without it.
//  * No flapping. Preferences are sticky: a challenger mechanism must
//    undercut the incumbent's modeled cost by a guard band before the
//    preference flips (hysteresis), so noise near the crossover does not
//    ping-pong the client between mechanisms.
//  * Estimates stay fresh. A mechanism the policy stops using would never
//    be re-measured and could be shunned forever; a forced-exploration
//    trickle (every Nth decision, a plain op counter — no RNG) issues the
//    disfavored mechanism so its estimate tracks reality.
#pragma once

#include <cstdint>

#include "obs/signals.h"

namespace ordma::policy {

// Read mechanism for one block fetch that holds a usable remote reference
// (without a reference RPC is forced and no decision is made).
enum class ReadMech { ordma, rpc };

// Write arm for one pwrite (mirrors nas::odafs::WritePolicy).
enum class WriteArm { rpc, put, write_back };

struct PolicyConfig {
  bool enabled = false;

  // Latency priors (us) seeding the per-mechanism estimators, so the first
  // decisions are sane before any observation lands. Values are in the
  // ballpark of the simulated cost model's small-block round trips; they
  // wash out after a handful of ops.
  double prior_ordma_us = 40.0;
  double prior_rpc_read_us = 80.0;
  double prior_exception_us = 30.0;
  double prior_put_us = 50.0;
  double prior_rpc_write_us = 80.0;
  double prior_wb_us = 20.0;

  // Smoothing for the engine's own latency / fault-rate estimators.
  double alpha = 0.25;
  // Fast-release factor for the binary fault/fallback-rate estimators:
  // faults attack at `alpha`, clean observations release by this fraction.
  // Faults arrive in phases (a revoked region, a churned server cache), and
  // once a mechanism is shunned it is only re-measured every
  // `explore_every` decisions — a symmetric EWMA would need dozens of
  // probes to rehabilitate it after the phase ends.
  double fault_decay = 0.5;
  // Hysteresis: a challenger must undercut the incumbent's modeled cost by
  // this fraction before the preference flips.
  double guard_band = 0.15;
  // Forced-exploration trickle: every Nth decision issues the disfavored
  // mechanism (0 disables exploration — estimates can go stale).
  unsigned explore_every = 64;

  // Consult the engine for the write arm too (else only reads adapt).
  bool adapt_writes = true;
  // Let the engine pick the write-back arm. Off by default: write-back
  // changes durability semantics (dirty data survives in the client until
  // flush/sync), so callers opt in explicitly.
  bool allow_write_back = false;

  // Server-CPU pressure term: above `server_cpu_knee` utilization, modeled
  // RPC cost is scaled by (1 + server_cpu_weight * (cpu - knee)) — the CPU
  // gauge is fresher than a stale RPC latency estimate when the policy has
  // been avoiding RPC.
  double server_cpu_knee = 0.85;
  double server_cpu_weight = 2.0;
};

class PolicyEngine {
 public:
  struct Counters {
    std::uint64_t read_decisions = 0;   // choose_read calls
    std::uint64_t read_flips = 0;       // read preference changes
    std::uint64_t read_explored = 0;    // forced-exploration reads
    std::uint64_t read_vetoes = 0;      // ref held but RPC chosen
    std::uint64_t write_decisions = 0;  // choose_write calls
    std::uint64_t write_flips = 0;      // write preference changes
    std::uint64_t write_explored = 0;   // forced-exploration writes
  };

  // `signals` is the owning client's live signal block (may be null in
  // tests); the engine reads it, never writes it.
  PolicyEngine(const PolicyConfig& cfg, const obs::OpSignals* signals);

  bool enabled() const { return cfg_.enabled; }
  bool adapts_writes() const { return cfg_.enabled && cfg_.adapt_writes; }
  bool may_write_back() const {
    return adapts_writes() && cfg_.allow_write_back;
  }

  // Decide the mechanism for one block fetch holding a usable reference.
  ReadMech choose_read();
  // Feed back what the mechanism actually cost. A faulted ORDMA attempt's
  // latency is the wasted exception round trip (the RPC recovery that
  // follows is observed separately as an rpc read).
  void observe_read(ReadMech m, double latency_us, bool faulted);

  // Decide the arm for one pwrite.
  WriteArm choose_write();
  // `fell_back` — a put-family arm degraded to RPC (no/revoked reference).
  void observe_write(WriteArm arm, double latency_us, bool fell_back);
  // Deferred cost of the write-back arm: a dirty-block flush completed.
  void observe_flush(double latency_us);

  // Modeled costs (us) — the numbers choose_* compares; exposed for tests
  // and bench traces.
  double read_cost(ReadMech m) const;
  double write_cost(WriteArm arm) const;

  ReadMech read_pref() const { return read_pref_; }
  WriteArm write_pref() const { return write_pref_; }
  double exception_rate() const { return exc_rate_; }
  const Counters& counters() const { return n_; }

 private:
  double load_scale() const;
  // Asymmetric update for a binary rate: attack at cfg_.alpha, release by
  // cfg_.fault_decay (see PolicyConfig::fault_decay).
  void rate_update(double& rate, bool hit);

  PolicyConfig cfg_;
  const obs::OpSignals* sig_;

  // Per-mechanism latency estimators (seeded from the priors).
  obs::Ewma ordma_us_;
  obs::Ewma rpc_read_us_;
  obs::Ewma exception_us_;  // cost of a faulted ORDMA attempt
  obs::Ewma put_us_;
  obs::Ewma rpc_write_us_;
  obs::Ewma wb_us_;
  obs::Ewma flush_us_;
  // Engine-owned fault-rate estimators (asymmetric: see rate_update), kept
  // as raw doubles and updated exactly at observation sites.
  double exc_rate_ = 0.0;
  double put_fallback_rate_ = 0.0;

  ReadMech read_pref_ = ReadMech::ordma;
  WriteArm write_pref_ = WriteArm::put;
  Counters n_;
};

}  // namespace ordma::policy
