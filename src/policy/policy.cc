#include "policy/policy.h"

#include <algorithm>

namespace ordma::policy {

PolicyEngine::PolicyEngine(const PolicyConfig& cfg,
                           const obs::OpSignals* signals)
    : cfg_(cfg),
      sig_(signals),
      ordma_us_(cfg.alpha),
      rpc_read_us_(cfg.alpha),
      exception_us_(cfg.alpha),
      put_us_(cfg.alpha),
      rpc_write_us_(cfg.alpha),
      wb_us_(cfg.alpha),
      flush_us_(cfg.alpha) {
  // Seed the estimators so cost comparisons are defined from decision one.
  ordma_us_.update(cfg.prior_ordma_us);
  rpc_read_us_.update(cfg.prior_rpc_read_us);
  exception_us_.update(cfg.prior_exception_us);
  put_us_.update(cfg.prior_put_us);
  rpc_write_us_.update(cfg.prior_rpc_write_us);
  wb_us_.update(cfg.prior_wb_us);
  flush_us_.update(cfg.prior_put_us);
}

void PolicyEngine::rate_update(double& rate, bool hit) {
  if (hit) {
    rate += cfg_.alpha * (1.0 - rate);
  } else {
    rate *= 1.0 - cfg_.fault_decay;
  }
}

double PolicyEngine::load_scale() const {
  const double cpu =
      sig_ && sig_->server_cpu.primed() ? sig_->server_cpu.value() : 0.0;
  return 1.0 + cfg_.server_cpu_weight *
                   std::max(0.0, cpu - cfg_.server_cpu_knee);
}

double PolicyEngine::read_cost(ReadMech m) const {
  if (m == ReadMech::ordma) {
    // Expected cost of trying ORDMA first: the get itself, plus — at the
    // current fault rate — a wasted exception round trip and the RPC that
    // recovers it.
    return ordma_us_.value() +
           exc_rate_ * (exception_us_.value() + rpc_read_us_.value());
  }
  // RPC consumes server CPU per byte; under saturation the latency
  // estimate lags (queueing grows while the policy avoids RPC), so the
  // fresher CPU gauge scales the modeled cost up past the knee.
  return rpc_read_us_.value() * load_scale();
}

double PolicyEngine::write_cost(WriteArm arm) const {
  switch (arm) {
    case WriteArm::rpc:
      return rpc_write_us_.value() * load_scale();
    case WriteArm::put:
      // A put that finds no usable write reference degrades to RPC; charge
      // that path at the observed degradation rate.
      return put_us_.value() +
             put_fallback_rate_ * rpc_write_us_.value();
    case WriteArm::write_back:
      // The op itself is a cache dirty + return; the deferred flush is the
      // real bill. Charging one flush per op is conservative (sequential
      // writes coalesce many ops into one flush), which keeps the engine
      // from treating write-back as free.
      return wb_us_.value() + flush_us_.value();
  }
  return 0.0;
}

ReadMech PolicyEngine::choose_read() {
  ++n_.read_decisions;
  const double cost_ordma = read_cost(ReadMech::ordma);
  const double cost_rpc = read_cost(ReadMech::rpc);
  // Hysteresis: the challenger must undercut the incumbent by the guard
  // band; ties and near-ties keep the current preference.
  if (read_pref_ == ReadMech::ordma) {
    if (cost_rpc < cost_ordma * (1.0 - cfg_.guard_band)) {
      read_pref_ = ReadMech::rpc;
      ++n_.read_flips;
    }
  } else if (cost_ordma < cost_rpc * (1.0 - cfg_.guard_band)) {
    read_pref_ = ReadMech::ordma;
    ++n_.read_flips;
  }
  ReadMech pick = read_pref_;
  if (cfg_.explore_every != 0 &&
      n_.read_decisions % cfg_.explore_every == 0) {
    // Forced exploration (deterministic op-counter cadence): re-measure
    // the disfavored mechanism so its estimate tracks reality.
    pick = read_pref_ == ReadMech::ordma ? ReadMech::rpc : ReadMech::ordma;
    ++n_.read_explored;
  }
  if (pick == ReadMech::rpc) ++n_.read_vetoes;
  return pick;
}

void PolicyEngine::observe_read(ReadMech m, double latency_us, bool faulted) {
  if (m == ReadMech::rpc) {
    rpc_read_us_.update(latency_us);
    return;
  }
  rate_update(exc_rate_, faulted);
  if (faulted) {
    exception_us_.update(latency_us);
  } else {
    ordma_us_.update(latency_us);
  }
}

WriteArm PolicyEngine::choose_write() {
  ++n_.write_decisions;
  const WriteArm arms[] = {WriteArm::rpc, WriteArm::put,
                           WriteArm::write_back};
  const std::size_t n_arms = cfg_.allow_write_back ? 3 : 2;
  // Cheapest challenger vs the incumbent, with the same guard band.
  WriteArm best = write_pref_;
  double best_cost = write_cost(write_pref_);
  for (std::size_t i = 0; i < n_arms; ++i) {
    if (arms[i] == write_pref_) continue;
    const double c = write_cost(arms[i]);
    if (c < best_cost) {
      best = arms[i];
      best_cost = c;
    }
  }
  if (best != write_pref_ &&
      best_cost < write_cost(write_pref_) * (1.0 - cfg_.guard_band)) {
    write_pref_ = best;
    ++n_.write_flips;
  }
  WriteArm pick = write_pref_;
  if (cfg_.explore_every != 0 &&
      n_.write_decisions % cfg_.explore_every == 0) {
    // Rotate deterministically through the non-preferred arms.
    std::size_t alt =
        (n_.write_decisions / cfg_.explore_every) % (n_arms - 1);
    for (std::size_t i = 0; i < n_arms; ++i) {
      if (arms[i] == write_pref_) continue;
      if (alt-- == 0) {
        pick = arms[i];
        break;
      }
    }
    ++n_.write_explored;
  }
  return pick;
}

void PolicyEngine::observe_write(WriteArm arm, double latency_us,
                                 bool fell_back) {
  switch (arm) {
    case WriteArm::rpc:
      rpc_write_us_.update(latency_us);
      break;
    case WriteArm::put:
      rate_update(put_fallback_rate_, fell_back);
      // A degraded op's latency is put-attempt + RPC — charging it to the
      // put estimator would double-count the fallback term, so only clean
      // puts update it.
      if (!fell_back) put_us_.update(latency_us);
      break;
    case WriteArm::write_back:
      wb_us_.update(latency_us);
      break;
  }
}

void PolicyEngine::observe_flush(double latency_us) {
  flush_us_.update(latency_us);
}

}  // namespace ordma::policy
