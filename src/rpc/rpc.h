// ONC-RPC-style remote procedure call over the UDP stack, with the
// RDDP-RPC extension of §3.2: a caller may pre-post an application buffer
// tagged by the call's transaction id, and a responding server marks where
// bulk data lies in its reply so the client NIC header-splits it directly
// into that buffer.
//
// Wire format (all XDR):
//   call:  xid u32 | type=0 u32 | proc u32 | trace u32 | args...
//   reply: xid u32 | type=1 u32 | status u32 | trace u32 | results...
//          [| bulk data]
// The trace word carries the issuing file operation's trace-context id
// (obs/trace.h; 0 = untraced) so server-side work lands in the caller's
// span tree. Op ids are sequential from 1 and fit u32 at simulation scales.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "host/host.h"
#include "msg/udp.h"
#include "rpc/xdr.h"
#include "sim/event.h"
#include "sim/task.h"

namespace ordma::rpc {

inline constexpr std::uint32_t kRpcCall = 0;
inline constexpr std::uint32_t kRpcReply = 1;
inline constexpr Bytes kRpcHeaderBytes = 16;

struct RpcReplyInfo {
  std::uint32_t status = 0;      // protocol-level status (Errc as u32)
  net::Buffer results;           // decoded results region (after header)
  bool rddp_placed = false;      // bulk data landed in the pre-posted buffer
  Bytes rddp_data_len = 0;
};

// Optional direct-placement request for one call.
struct Prepost {
  mem::AddressSpace* as = nullptr;
  mem::Vaddr va = 0;
  Bytes len = 0;
};

class RpcClient {
 public:
  RpcClient(host::Host& host, msg::UdpStack& stack, std::uint16_t local_port)
      : host_(host), socket_(stack.bind(local_port)) {
    host.engine().spawn(rx_loop());
  }
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Issue one call and await its reply. `trace_op` is marshalled into the
  // call header and echoed by the server's reply.
  sim::Task<Result<RpcReplyInfo>> call(net::NodeId server,
                                       std::uint16_t server_port,
                                       std::uint32_t proc, net::Buffer args,
                                       const Prepost* prepost = nullptr,
                                       obs::OpId trace_op = 0);

  std::uint64_t calls_issued() const { return next_xid_ - 1; }

 private:
  sim::Task<void> rx_loop();

  struct Waiter {
    explicit Waiter(sim::Engine& eng) : done(eng) {}
    sim::Event<RpcReplyInfo> done;
  };

  host::Host& host_;
  msg::UdpStack::Socket& socket_;
  std::uint32_t next_xid_ = 1;
  std::unordered_map<std::uint32_t, std::unique_ptr<Waiter>> waiting_;
};

// A server-side reply: results plus an optional bulk-data region that
// RDDP-capable client NICs may place directly.
struct RpcServerReply {
  std::uint32_t status = 0;
  XdrEncoder results;         // fixed-size result fields
  net::Buffer bulk;           // bulk data appended after results
  bool gather_send = true;    // NIC gathers bulk from pinned pages (no copy)
};

struct RpcCallCtx {
  net::NodeId client = net::kInvalidNode;
  std::uint16_t client_port = 0;
  std::uint32_t xid = 0;
  std::uint32_t proc = 0;
  obs::OpId trace_op = 0;  // decoded from the call header
  net::Buffer args;
};

class RpcServer {
 public:
  using Handler =
      std::function<sim::Task<RpcServerReply>(const RpcCallCtx&)>;

  RpcServer(host::Host& host, msg::UdpStack& stack, std::uint16_t port)
      : host_(host), socket_(stack.bind(port)) {
    host.engine().spawn(rx_loop());
  }
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_handler(std::uint32_t proc, Handler h) {
    handlers_[proc] = std::move(h);
  }

  std::uint64_t requests_served() const { return served_; }

 private:
  sim::Task<void> rx_loop();
  sim::Task<void> serve_one(msg::UdpDatagram d);

  host::Host& host_;
  msg::UdpStack::Socket& socket_;
  std::unordered_map<std::uint32_t, Handler> handlers_;
  std::uint64_t served_ = 0;
};

}  // namespace ordma::rpc
