// ONC-RPC-style remote procedure call over the UDP stack, with the
// RDDP-RPC extension of §3.2: a caller may pre-post an application buffer
// tagged by the call's transaction id, and a responding server marks where
// bulk data lies in its reply so the client NIC header-splits it directly
// into that buffer.
//
// Wire format (all XDR):
//   call:  xid u32 | type=0 u32 | proc u32 | trace u32 | cksum u32 | args...
//   reply: xid u32 | type=1 u32 | status u32 | trace u32 | cksum u32
//          | results... [| bulk data]
// The trace word carries the issuing file operation's trace-context id
// (obs/trace.h; 0 = untraced) so server-side work lands in the caller's
// span tree. Op ids are sequential from 1 and fit u32 at simulation scales.
// The cksum word is an end-to-end FNV-1a over the whole message with the
// cksum field itself skipped — for replies whose bulk was RDDP-placed, the
// client continues the checksum over the landed bytes — catching corruption
// that escapes the link-level CRC. A failed check is treated as a lost
// datagram and recovered by retransmission.
//
// Reliability (exercised by fault injection, free of cost otherwise): a
// client retransmits after a timeout with exponential backoff (RpcRetryPolicy;
// the default policy waits forever, preserving classic behaviour), and the
// server suppresses duplicate execution with a bounded per-(client,port,xid)
// reply cache that replays the original reply for completed requests and
// drops duplicates of requests still in progress.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "host/host.h"
#include "msg/udp.h"
#include "rpc/xdr.h"
#include "sim/event.h"
#include "sim/task.h"

namespace ordma::rpc {

inline constexpr std::uint32_t kRpcCall = 0;
inline constexpr std::uint32_t kRpcReply = 1;
inline constexpr Bytes kRpcHeaderBytes = 20;
inline constexpr Bytes kRpcCksumOffset = 16;

// Client-side timeout/retransmission policy. The default (timeout 0) waits
// forever and never retransmits — the classic lossless-fabric behaviour.
struct RpcRetryPolicy {
  Duration timeout{0};        // initial reply timeout; 0 = wait forever
  unsigned max_attempts = 1;  // total transmissions before giving up
  double backoff = 2.0;       // timeout multiplier per retransmission
  Duration max_timeout = msec(100);
};

struct RpcReplyInfo {
  std::uint32_t status = 0;      // protocol-level status (Errc as u32)
  net::Buffer results;           // decoded results region (after header)
  net::Buffer raw;               // whole datagram (for checksum verification)
  bool rddp_placed = false;      // bulk data landed in the pre-posted buffer
  Bytes rddp_data_len = 0;
};

// Optional direct-placement request for one call.
struct Prepost {
  mem::AddressSpace* as = nullptr;
  mem::Vaddr va = 0;
  Bytes len = 0;
};

class RpcClient {
 public:
  RpcClient(host::Host& host, msg::UdpStack& stack, std::uint16_t local_port,
            RpcRetryPolicy retry = {})
      : host_(host),
        socket_(stack.bind(local_port)),
        retry_(retry),
        rpc_track_(host.name(), "rpc") {
    host.engine().spawn(rx_loop());
  }
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  void set_retry_policy(RpcRetryPolicy retry) { retry_ = retry; }

  // Issue one call and await its reply. `trace_op` is marshalled into the
  // call header and echoed by the server's reply.
  sim::Task<Result<RpcReplyInfo>> call(net::NodeId server,
                                       std::uint16_t server_port,
                                       std::uint32_t proc, net::Buffer args,
                                       const Prepost* prepost = nullptr,
                                       obs::OpId trace_op = 0);

  std::uint64_t calls_issued() const { return next_xid_ - 1; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t cksum_drops() const { return cksum_drops_; }

 private:
  sim::Task<void> rx_loop();
  bool reply_checksum_ok(const RpcReplyInfo& info, const Prepost* prepost);

  struct Waiter {
    explicit Waiter(sim::Engine& eng) : done(eng) {}
    sim::Event<RpcReplyInfo> done;
  };

  host::Host& host_;
  msg::UdpStack::Socket& socket_;
  RpcRetryPolicy retry_;
  // Track for retransmit-backoff spans ("io/rpc_retransmit"): the dead
  // window between a lost attempt and its retransmission, which the tail
  // explainer (obs/explain.h) surfaces as a first-class cause.
  obs::Track rpc_track_;
  std::uint32_t next_xid_ = 1;
  std::unordered_map<std::uint32_t, std::unique_ptr<Waiter>> waiting_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t cksum_drops_ = 0;
};

// A server-side reply: results plus an optional bulk-data region that
// RDDP-capable client NICs may place directly.
struct RpcServerReply {
  std::uint32_t status = 0;
  XdrEncoder results;         // fixed-size result fields
  net::Buffer bulk;           // bulk data appended after results
  bool gather_send = true;    // NIC gathers bulk from pinned pages (no copy)
};

struct RpcCallCtx {
  net::NodeId client = net::kInvalidNode;
  std::uint16_t client_port = 0;
  std::uint32_t xid = 0;
  std::uint32_t proc = 0;
  obs::OpId trace_op = 0;  // decoded from the call header
  net::Buffer args;
};

class RpcServer {
 public:
  using Handler =
      std::function<sim::Task<RpcServerReply>(const RpcCallCtx&)>;

  RpcServer(host::Host& host, msg::UdpStack& stack, std::uint16_t port)
      : host_(host), socket_(stack.bind(port)) {
    host.engine().spawn(rx_loop());
  }
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  void register_handler(std::uint32_t proc, Handler h) {
    handlers_[proc] = std::move(h);
  }

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t dup_replays() const { return dup_replays_; }
  std::uint64_t dup_drops() const { return dup_drops_; }
  std::uint64_t cksum_drops() const { return cksum_drops_; }

 private:
  // Duplicate-request suppression (classic NFS xid cache). Entries for
  // requests still executing drop duplicates; completed entries replay the
  // sealed reply datagram. Bounded FIFO; replies above kMaxCachedReply are
  // not retained (re-executing a large read is idempotent and cheaper than
  // pinning megabytes of reply buffers).
  static constexpr std::size_t kReplyCacheCap = 256;
  static constexpr Bytes kMaxCachedReply = KiB(64);

  struct ReplyKey {
    net::NodeId client = net::kInvalidNode;
    std::uint16_t port = 0;
    std::uint32_t xid = 0;
    bool operator==(const ReplyKey&) const = default;
  };
  struct ReplyKeyHash {
    std::size_t operator()(const ReplyKey& k) const {
      std::uint64_t h = (std::uint64_t(k.client) << 48) ^
                        (std::uint64_t(k.port) << 32) ^ k.xid;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };
  struct ReplyEntry {
    bool in_progress = true;
    net::Buffer reply;  // sealed datagram (header | results | bulk)
    std::uint32_t rddp_xid = 0;
    Bytes data_offset = 0;
    Bytes data_len = 0;
    bool gather_send = false;
  };

  sim::Task<void> rx_loop();
  sim::Task<void> serve_one(msg::UdpDatagram d);
  void trim_reply_cache();

  host::Host& host_;
  msg::UdpStack::Socket& socket_;
  std::unordered_map<std::uint32_t, Handler> handlers_;
  std::unordered_map<ReplyKey, ReplyEntry, ReplyKeyHash> reply_cache_;
  std::deque<ReplyKey> reply_order_;  // completed entries only, FIFO
  std::uint64_t served_ = 0;
  std::uint64_t dup_replays_ = 0;
  std::uint64_t dup_drops_ = 0;
  std::uint64_t cksum_drops_ = 0;
};

}  // namespace ordma::rpc
