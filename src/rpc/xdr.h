// XDR-style marshalling: big-endian integers, length-prefixed opaques.
// Every RPC and NAS protocol message in this codebase is real bytes encoded
// through these helpers — protocol correctness is testable on the wire.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/crc32.h"
#include "common/result.h"
#include "net/packet.h"

namespace ordma::rpc {

// End-to-end payload checksum (CRC-32, slicing-by-8 — common/crc32.h).
// Chainable at *any* split point: pass the previous return value as
// `state` to checksum discontiguous regions as one stream (e.g. an RPC
// header + results + RDDP-placed data), and the result is identical
// however the stream is chunked — sealer and verifier walk the same bytes
// in different pieces (pinned by tests/wire_fuzz_test.cc). Simulated
// NICs/links model CRC at the frame level; this is the end-to-end check
// that catches corruption escaping the link CRC.
inline std::uint32_t checksum32(std::span<const std::byte> data,
                                std::uint32_t state = 0x811c9dc5u) {
  return crc32_update(state, data);
}

namespace detail {
inline std::uint32_t to_be32(std::uint32_t x) {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap32(x);
  } else {
    return x;
  }
}
}  // namespace detail

// Encodes straight into a pooled buffer rep (net::BufferBuilder): the
// vector capacity is recycled through the buffer pool, so steady-state
// encoding allocates nothing and finish() hands the bytes over zero-copy.
class XdrEncoder {
 public:
  void u32(std::uint32_t x) {
    auto& b = bld_.bytes();
    const std::size_t n = b.size();
    b.resize(n + 4);
    const std::uint32_t be = detail::to_be32(x);
    std::memcpy(b.data() + n, &be, 4);
  }
  void u64(std::uint64_t x) {
    u32(static_cast<std::uint32_t>(x >> 32));
    u32(static_cast<std::uint32_t>(x & 0xffffffffu));
  }
  void i64(std::int64_t x) { u64(static_cast<std::uint64_t>(x)); }

  void opaque(std::span<const std::byte> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) {
    opaque(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()), s.size()));
  }
  // Raw append without length prefix (for framing payloads whose length is
  // carried elsewhere).
  void raw(std::span<const std::byte> data) {
    auto& b = bld_.bytes();
    b.insert(b.end(), data.begin(), data.end());
  }

  std::size_t size() const { return bld_.bytes().size(); }
  net::Buffer finish() { return bld_.finish(); }
  std::vector<std::byte> take() { return bld_.take(); }

 private:
  net::BufferBuilder bld_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::byte> data) : data_(data) {}
  explicit XdrDecoder(const net::Buffer& b) : data_(b.view()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t x;
    std::memcpy(&x, data_.data() + pos_, 4);
    pos_ += 4;
    return detail::to_be32(x);
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::span<const std::byte> opaque() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::string str() {
    auto s = opaque();
    // An empty opaque (or a truncated buffer) yields an empty span whose
    // data() may be null; constructing std::string from (nullptr, 0) is UB.
    if (s.empty()) return {};
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::span<const std::byte> rest() {
    auto s = data_.subspan(pos_);
    pos_ = data_.size();
    return s;
  }

 private:
  bool need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ordma::rpc
