// XDR-style marshalling: big-endian integers, length-prefixed opaques.
// Every RPC and NAS protocol message in this codebase is real bytes encoded
// through these helpers — protocol correctness is testable on the wire.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/result.h"
#include "net/packet.h"

namespace ordma::rpc {

// End-to-end payload checksum (FNV-1a/32). Chainable: pass the previous
// return value as `state` to checksum discontiguous regions as one stream
// (e.g. an RPC header + results + RDDP-placed data). Simulated NICs/links
// model CRC at the frame level; this is the end-to-end check that catches
// corruption escaping the link CRC.
inline std::uint32_t checksum32(std::span<const std::byte> data,
                                std::uint32_t state = 0x811c9dc5u) {
  std::uint32_t h = state;
  for (const std::byte b : data) {
    h ^= std::to_integer<std::uint32_t>(b);
    h *= 16777619u;
  }
  return h;
}

class XdrEncoder {
 public:
  void u32(std::uint32_t x) {
    for (int i = 3; i >= 0; --i) {
      buf_.push_back(static_cast<std::byte>((x >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t x) {
    u32(static_cast<std::uint32_t>(x >> 32));
    u32(static_cast<std::uint32_t>(x & 0xffffffffu));
  }
  void i64(std::int64_t x) { u64(static_cast<std::uint64_t>(x)); }

  void opaque(std::span<const std::byte> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    opaque(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()), s.size()));
  }
  // Raw append without length prefix (for framing payloads whose length is
  // carried elsewhere).
  void raw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }
  net::Buffer finish() { return net::Buffer::take(std::move(buf_)); }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::byte> data) : data_(data) {}
  explicit XdrDecoder(const net::Buffer& b) : data_(b.view()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x = (x << 8) | std::to_integer<std::uint32_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return x;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::span<const std::byte> opaque() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::string str() {
    auto s = opaque();
    // An empty opaque (or a truncated buffer) yields an empty span whose
    // data() may be null; constructing std::string from (nullptr, 0) is UB.
    if (s.empty()) return {};
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::span<const std::byte> rest() {
    auto s = data_.subspan(pos_);
    pos_ = data_.size();
    return s;
  }

 private:
  bool need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ordma::rpc
